package wire

import (
	"testing"
)

// FuzzFrameRoundTrip drives arbitrary payloads through Frame/Unframe and
// requires lossless round-tripping, segment handle included. The seeds
// cover the kinds and word shapes every protocol in the repository
// actually produces (signals, node-id words, negative sentinels, int64
// weights, segments).
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint16(1), uint16(2), 0, int64(0), int64(0), int64(0), int64(0), 0)
	f.Add(uint16(1), uint16(10), 3, int64(17), int64(0), int64(0), int64(0), 0)     // bfs join
	f.Add(uint16(2), uint16(31), 9, int64(4), int64(2), int64(-1), int64(1), 0)     // leader verdict
	f.Add(uint16(1), uint16(41), 63, int64(3), int64(1<<40), int64(7), int64(9), 0) // mst moe (int64 weight)
	f.Add(uint16(7), uint16(3), 1<<20, int64(-9), int64(1<<62), int64(-1<<62), int64(5), 12)
	f.Fuzz(func(t *testing.T, outer16, inner16 uint16, pulse int, a, b, c, d int64, segLen int) {
		if pulse < 0 || pulse > 1<<30 || segLen < 0 || segLen > 1<<10 {
			return
		}
		var arena Arena
		seg, view := arena.Alloc(segLen)
		for i := range view {
			view[i] = int32(i) ^ 0x5a
		}
		inner := Body{Kind: Kind(inner16), A: a, B: b, C: c, D: d, Seg: seg}
		outer := Frame(Kind(outer16), pulse, inner)
		gotPulse, got := outer.Unframe()
		if gotPulse != pulse {
			t.Fatalf("pulse %d -> %d", pulse, gotPulse)
		}
		if !Equal(got, inner) {
			t.Fatalf("round trip lost data: %+v vs %+v", got, inner)
		}
		for i, v := range arena.Data(got.Seg) {
			if v != int32(i)^0x5a {
				t.Fatalf("segment corrupted at %d: %d", i, v)
			}
		}
	})
}

// FuzzArena exercises interleaved Alloc/Release sequences: every live
// segment must keep the requested length, arrive zeroed, and never alias
// another live segment's storage.
func FuzzArena(f *testing.F) {
	f.Add([]byte{3, 0, 9, 1, 0, 200, 2})
	f.Add([]byte{1, 1, 1, 0, 0, 0, 255, 128, 64})
	f.Fuzz(func(t *testing.T, script []byte) {
		var a Arena
		type live struct {
			seg   Seg
			owner int32
		}
		var segs []live
		next := int32(1)
		for _, op := range script {
			if op%2 == 0 || len(segs) == 0 {
				n := int(op >> 1)
				seg, view := a.Alloc(n)
				if n <= 0 {
					if !seg.IsZero() {
						t.Fatal("Alloc(<=0) returned a segment")
					}
					continue
				}
				if seg.Len() != n || len(view) != n {
					t.Fatalf("Alloc(%d) returned len %d/%d", n, seg.Len(), len(view))
				}
				for i, v := range view {
					if v != 0 {
						t.Fatalf("segment not zeroed at %d: %d", i, v)
					}
					view[i] = next // stamp with owner id
				}
				segs = append(segs, live{seg: seg, owner: next})
				next++
			} else {
				i := int(op>>1) % len(segs)
				a.Release(segs[i].seg)
				segs[i] = segs[len(segs)-1]
				segs = segs[:len(segs)-1]
			}
		}
		// No live segment may have been clobbered by a recycled one.
		for _, l := range segs {
			for j, v := range a.Data(l.seg) {
				if v != l.owner {
					t.Fatalf("live segment corrupted at %d: %d vs %d", j, v, l.owner)
				}
			}
		}
	})
}
