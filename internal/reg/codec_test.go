package reg

import (
	"testing"

	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/wire"
)

// TestPayloadCodecRoundTrips covers every wave-registration kind.
func TestPayloadCodecRoundTrips(t *testing.T) {
	for _, k := range []wire.Kind{kindRegUp, kindRegDone, kindDeregUp, kindGoAhead} {
		b := encPayload(k, 17, 3)
		if b.Kind != k {
			t.Fatalf("kind = %d, want %d", b.Kind, k)
		}
		c, s := decPayload(b)
		if c != 17 || s != 3 {
			t.Fatalf("round trip: (%d, %d)", c, s)
		}
	}
}

// TestNaiveCodecRoundTrips covers every naive-scheme kind, origin included.
func TestNaiveCodecRoundTrips(t *testing.T) {
	for _, k := range []wire.Kind{nkReg, nkRegAck, nkDereg, nkDeregAck, nkGo} {
		m := naivePayload{Kind: k, Cluster: cover.ClusterID(5), Session: 2, Origin: graph.NodeID(31)}
		if got := decNaive(encNaive(m)); got != m {
			t.Fatalf("round trip: %+v vs %+v", got, m)
		}
	}
}
