package cover

import (
	"reflect"
	"testing"

	"repro/internal/graph"
)

// faultPick deterministically selects k distinct fault nodes from n via a
// multiplicative hash walk.
func faultPick(n, k int, seed uint64) []graph.NodeID {
	picked := make(map[graph.NodeID]bool, k)
	out := make([]graph.NodeID, 0, k)
	x := seed*0x9E3779B97F4A7C15 + 1
	for len(out) < k {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		v := graph.NodeID((x * 0x2545F4914F6CDD1D) >> 33 % uint64(n))
		if !picked[v] {
			picked[v] = true
			out = append(out, v)
		}
	}
	return out
}

func aliveMask(n int, faulted []graph.NodeID) []bool {
	m := make([]bool, n)
	for i := range m {
		m[i] = true
	}
	for _, v := range faulted {
		m[v] = false
	}
	return m
}

// TestRepairGolden: a repaired cover must be deeply equal to the cover a
// from-scratch masked build produces over the combined alive set — the
// tentpole invariant of the self-healing construction layer.
func TestRepairGolden(t *testing.T) {
	cases := []struct {
		name   string
		g      *graph.Graph
		d      int
		faults int
	}{
		{"grid10x10-d2", graph.Grid(10, 10), 2, 5},
		{"path64-d4", graph.Path(64), 4, 3},
		{"er80-d3", graph.RandomConnected(80, 200, 17), 3, 6},
		{"tree63-d2", graph.CompleteBinaryTree(63), 2, 4},
	}
	for _, tc := range cases {
		for seed := uint64(1); seed <= 2; seed++ {
			t.Run(tc.name, func(t *testing.T) {
				n := tc.g.N()
				base := Build(tc.g, tc.d, nil)
				faulted := faultPick(n, tc.faults, seed)
				rep, st := Repair(base, faulted)
				if st.Faulted != tc.faults {
					t.Fatalf("applied %d of %d faults", st.Faulted, tc.faults)
				}
				if st.Reused+st.Dirty != len(base.Clusters) {
					t.Fatalf("reused %d + dirty %d != %d base clusters",
						st.Reused, st.Dirty, len(base.Clusters))
				}
				if st.Rebuilt+st.Dropped != st.Dirty {
					t.Fatalf("rebuilt %d + dropped %d != dirty %d", st.Rebuilt, st.Dropped, st.Dirty)
				}
				scratch := BuildMasked(tc.g, tc.d, nil, aliveMask(n, faulted))
				if !reflect.DeepEqual(rep, scratch) {
					t.Fatalf("repaired cover differs from from-scratch masked build (%d vs %d clusters)",
						len(rep.Clusters), len(scratch.Clusters))
				}
			})
		}
	}
}

// TestRepairChainedGolden: repair applied on top of an earlier repair
// must still equal the from-scratch build over the union of both fault
// rounds.
func TestRepairChainedGolden(t *testing.T) {
	g := graph.Grid(9, 11)
	n := g.N()
	base := Build(g, 2, nil)
	r1 := faultPick(n, 4, 3)
	rep1, _ := Repair(base, r1)
	r2 := faultPick(n, 4, 9)
	rep2, st := Repair(rep1, r2)
	all := append(append([]graph.NodeID(nil), r1...), r2...)
	scratch := BuildMasked(g, 2, nil, aliveMask(n, all))
	if !reflect.DeepEqual(rep2, scratch) {
		t.Fatalf("chained repair differs from from-scratch build")
	}
	// Second-round faults overlapping the first are no-ops; the stats
	// must only count newly-applied ones.
	dup := append(append([]graph.NodeID(nil), r1...), r2...)
	rep2b, st2 := Repair(rep1, dup)
	if st2.Faulted != st.Faulted {
		t.Fatalf("duplicate faults counted: %d vs %d", st2.Faulted, st.Faulted)
	}
	if !reflect.DeepEqual(rep2b, rep2) {
		t.Fatalf("repair with duplicate faults diverged")
	}
}

// TestRepairLayeredGolden: every level of a repaired layered cover
// matches the from-scratch layered masked build.
func TestRepairLayeredGolden(t *testing.T) {
	g := graph.Grid(8, 8)
	n := g.N()
	base := BuildLayered(g, 4, nil)
	faulted := faultPick(n, 3, 5)
	rep, stats := RepairLayered(base, faulted)
	if len(stats) != len(base.Levels) {
		t.Fatalf("stats for %d levels, want %d", len(stats), len(base.Levels))
	}
	scratch := BuildLayeredMasked(g, 4, nil, aliveMask(n, faulted))
	if !reflect.DeepEqual(rep, scratch) {
		t.Fatalf("repaired layered cover differs from from-scratch build")
	}
}

// TestRepairIsIncremental: a single localized fault on a sizable graph
// must leave most clusters untouched — the whole point of the dirty
// certificate.
func TestRepairIsIncremental(t *testing.T) {
	g := graph.Path(256)
	base := Build(g, 2, nil)
	_, st := Repair(base, []graph.NodeID{17})
	if st.Reused == 0 {
		t.Fatalf("single fault rebuilt every one of %d clusters", len(base.Clusters))
	}
	if st.Reused <= st.Dirty {
		t.Fatalf("single fault dirtied %d of %d clusters — certificate too loose",
			st.Dirty, len(base.Clusters))
	}
}

// TestRepairNoOp: faulting only already-dead nodes returns the base
// cover itself, all clusters reused.
func TestRepairNoOp(t *testing.T) {
	g := graph.Path(32)
	base := Build(g, 2, nil)
	rep1, _ := Repair(base, []graph.NodeID{5})
	rep2, st := Repair(rep1, []graph.NodeID{5, 5})
	if rep2 != rep1 {
		t.Fatalf("no-op repair returned a new cover")
	}
	if st.Faulted != 0 || st.Reused != len(rep1.Clusters) {
		t.Fatalf("no-op repair stats: %+v", st)
	}
}

// TestMaskedCoverProperties: a masked cover still satisfies the covering
// property over the alive subgraph — every alive node's home cluster
// contains its entire alive-restricted d-ball.
func TestMaskedCoverProperties(t *testing.T) {
	g := graph.Grid(8, 8)
	n := g.N()
	faulted := faultPick(n, 6, 11)
	alive := aliveMask(n, faulted)
	cov := BuildMasked(g, 2, nil, alive)
	for v := 0; v < n; v++ {
		if !alive[v] {
			if cov.Home(graph.NodeID(v)) != -1 {
				t.Fatalf("dead node %d has a home cluster", v)
			}
			continue
		}
		id := cov.Home(graph.NodeID(v))
		if id < 0 {
			t.Fatalf("alive node %d has no home cluster", v)
		}
		cl := cov.Cluster(id)
		for _, u := range maskedBall(g, graph.NodeID(v), cov.D, alive) {
			if !cl.Has(u) {
				t.Fatalf("home of %d misses alive node %d within masked distance %d", v, u, cov.D)
			}
		}
		// No dead node is ever a member.
		for _, m := range cl.Members {
			if !alive[m] {
				t.Fatalf("cluster %d contains dead member %d", id, m)
			}
		}
	}
}

// maskedBall returns the nodes within masked distance d of v, BFS over
// alive nodes only.
func maskedBall(g *graph.Graph, v graph.NodeID, d int, alive []bool) []graph.NodeID {
	dist := map[graph.NodeID]int{v: 0}
	queue := []graph.NodeID{v}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		if dist[u] == d {
			continue
		}
		for _, nb := range g.Neighbors(u) {
			if !alive[nb.Node] {
				continue
			}
			if _, seen := dist[nb.Node]; !seen {
				dist[nb.Node] = dist[u] + 1
				queue = append(queue, nb.Node)
			}
		}
	}
	return queue
}
