// Package bench implements the experiment harness: one function per
// experiment in DESIGN.md's index (E1–E13), each regenerating its table of
// measured time/message complexities against the paper's predicted shape.
// Root bench_test.go and cmd/syncbench both call into this package.
package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// table accumulates aligned rows.
type table struct {
	w   *tabwriter.Writer
	out io.Writer
}

func newTable(out io.Writer, title, note string) *table {
	fmt.Fprintf(out, "\n=== %s ===\n", title)
	if note != "" {
		fmt.Fprintf(out, "%s\n", note)
	}
	return &table{w: tabwriter.NewWriter(out, 2, 4, 2, ' ', 0), out: out}
}

func (t *table) row(cols ...any) {
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(t.w, "\t")
		}
		switch v := c.(type) {
		case float64:
			fmt.Fprintf(t.w, "%.1f", v)
		default:
			fmt.Fprintf(t.w, "%v", v)
		}
	}
	fmt.Fprintln(t.w)
}

func (t *table) flush() { t.w.Flush() }

// All runs every experiment.
func All(w io.Writer) {
	E1SynchronizerOverheads(w)
	E2BFSTimeVsD(w)
	E3BFSMessagesVsM(w)
	E4MultiSourceD1(w)
	E5LeaderElection(w)
	E6MST(w)
	E7RegistrationCongestion(w)
	E8AlphaBlowup(w)
	E9AdversaryRobustness(w)
	E10CoverQuality(w)
	E11StagePipelining(w)
	E12GatherCost(w)
	E13EngineThroughput(w)
}

// ByName runs one experiment by its id ("E1".."E13"); it reports whether
// the id was known.
func ByName(w io.Writer, id string) bool {
	fns := map[string]func(io.Writer){
		"E1": E1SynchronizerOverheads, "E2": E2BFSTimeVsD,
		"E3": E3BFSMessagesVsM, "E4": E4MultiSourceD1,
		"E5": E5LeaderElection, "E6": E6MST,
		"E7": E7RegistrationCongestion, "E8": E8AlphaBlowup,
		"E9": E9AdversaryRobustness, "E10": E10CoverQuality,
		"E11": E11StagePipelining, "E12": E12GatherCost,
		"E13": E13EngineThroughput,
	}
	fn, ok := fns[id]
	if !ok {
		return false
	}
	fn(w)
	return true
}
