package wire

import (
	"fmt"
	"unsafe"
)

// Cross-shard frame codec. A Body is 48 pointer-free scalar bytes, so a
// frame is its raw in-memory image plus the referenced arena segment's
// words — serialization is memcpy, which is the whole point of the typed
// wire plane at multi-process scale.
//
// Frames are a same-machine transport (unix-domain sockets between
// processes forked from one binary): byte order and struct layout are
// whatever this build uses, asserted below to be exactly BodyWireSize
// bytes with no padding. They are not a storage or network format.

// BodyWireSize is the exact in-memory (and on-wire) size of a Body.
const BodyWireSize = 48

// Compile-time layout assertions, both directions: a field added to Body
// without updating the codec fails the build rather than truncating
// frames.
var (
	_ [BodyWireSize - unsafe.Sizeof(Body{})]byte
	_ [unsafe.Sizeof(Body{}) - BodyWireSize]byte
)

// AppendBody appends the raw image of b to dst. The Seg handle rides
// along verbatim; it is only meaningful to a decoder sharing the same
// arena (intra-process staging). Cross-process frames use AppendBodySeg.
func AppendBody(dst []byte, b Body) []byte {
	img := (*[BodyWireSize]byte)(unsafe.Pointer(&b))
	return append(dst, img[:]...)
}

// DecodeBody reads the Body at the front of src (which must hold at least
// BodyWireSize bytes). The copy through a stack image keeps the unsafe
// reinterpretation on aligned memory regardless of src's alignment.
func DecodeBody(src []byte) Body {
	var img [BodyWireSize]byte
	copy(img[:], src[:BodyWireSize])
	return *(*Body)(unsafe.Pointer(&img[0]))
}

// AppendBodySeg appends b's raw image followed by its segment words
// resolved against a. The segment is read, not released — the caller
// decides when the local handle dies. Returns the extended buffer.
func AppendBodySeg(dst []byte, b Body, a *Arena) []byte {
	dst = AppendBody(dst, b)
	if b.Seg.IsZero() {
		return dst
	}
	w := a.Data(b.Seg)
	return append(dst, unsafe.Slice((*byte)(unsafe.Pointer(&w[0])), 4*len(w))...)
}

// DecodeBodySeg decodes a frame written by AppendBodySeg, re-homing the
// segment into a: a fresh segment is carved from the receiving arena, the
// wire words are copied in, and the returned Body's Seg points at the
// local copy. Returns the body, the number of bytes consumed, and an
// error on a short or malformed buffer.
func DecodeBodySeg(src []byte, a *Arena) (Body, int, error) {
	if len(src) < BodyWireSize {
		return Body{}, 0, fmt.Errorf("wire: frame truncated: %d bytes, body needs %d", len(src), BodyWireSize)
	}
	b := DecodeBody(src)
	n := b.Seg.Len()
	if n == 0 {
		b.Seg = Seg{}
		return b, BodyWireSize, nil
	}
	if n < 0 || len(src)-BodyWireSize < 4*n {
		return Body{}, 0, fmt.Errorf("wire: frame truncated: segment of %d words needs %d bytes, have %d",
			n, 4*n, len(src)-BodyWireSize)
	}
	seg, w := a.Alloc(n)
	copy(unsafe.Slice((*byte)(unsafe.Pointer(&w[0])), 4*n), src[BodyWireSize:])
	b.Seg = seg
	return b, BodyWireSize + 4*n, nil
}

// FrameLen returns the encoded size of a frame carrying b.
func FrameLen(b Body) int { return BodyWireSize + 4*b.Seg.Len() }
