package graph

import "fmt"

// This file holds the structure-implicit generators: topology families
// whose node count, edge count, and per-node degree are known in closed
// form, so the finalized CSR arrays are emitted directly with exact
// preallocation — no intermediate adjacency lists, no per-edge AddEdge
// bookkeeping, no maps. These are the generators that reach the
// ten-million-node scale; they validate their size against MaxNodes /
// MaxEdges and return an error BEFORE allocating anything.
//
// Contract shared with the materialized path (New+AddEdge+Finalize), and
// pinned by the golden tests: for the same parameters the two builders
// produce byte-identical CSR (same EdgeIDs, same LinkIDs, same rev table).
// EdgeIDs follow the enumeration order of the generator; adjacency rows
// are ascending by neighbor id.

// buildCSR assembles a finalized graph from one exact edge enumeration.
// n and m are the exact node and edge counts (validated against the 32-bit
// id space before any allocation); edges must call emit exactly m times in
// canonical EdgeID order. When lex is true the enumeration is promised to
// be lexicographic — ascending u, then ascending v within u, with u < v —
// which makes the scattered adjacency rows sorted for free; otherwise each
// row is sorted afterwards. Duplicate edges are caught by a final
// adjacent-equal scan.
func buildCSR(n, m int64, lex bool, edges func(emit func(u, v NodeID))) (*Graph, error) {
	if n < 0 || n > MaxNodes {
		return nil, fmt.Errorf("graph: node count %d outside [0, %d] (32-bit NodeID space)", n, int64(MaxNodes))
	}
	if m < 0 || m > MaxEdges {
		return nil, fmt.Errorf("graph: edge count %d outside [0, %d] (2m directed links must fit 32-bit LinkID space)", m, int64(MaxEdges))
	}
	g := &Graph{n: int(n), final: true}
	g.edgeU = make([]NodeID, 0, m)
	g.edgeV = make([]NodeID, 0, m)
	g.off = make([]int32, n+1)
	// Pass 1: record the edge table and count degrees (off holds counts,
	// shifted one slot right so the prefix sum can run in place).
	edges(func(u, v NodeID) {
		if u == v {
			panic(fmt.Sprintf("graph: self-loop at node %d", u))
		}
		if u < 0 || v < 0 || int64(u) >= n || int64(v) >= n {
			panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, n))
		}
		if u > v {
			u, v = v, u
		}
		g.edgeU = append(g.edgeU, u)
		g.edgeV = append(g.edgeV, v)
		g.off[u+1]++
		g.off[v+1]++
	})
	if int64(len(g.edgeU)) != m {
		panic(fmt.Sprintf("graph: implicit generator emitted %d edges, promised %d", len(g.edgeU), m))
	}
	for v := int64(0); v < n; v++ {
		g.off[v+1] += g.off[v]
	}
	// Pass 2: scatter both directions. cursor[v] walks v's row.
	g.flat = make([]Neighbor, 2*m)
	cursor := make([]int32, n)
	copy(cursor, g.off[:n])
	for e := range g.edgeU {
		u, v := g.edgeU[e], g.edgeV[e]
		g.flat[cursor[u]] = Neighbor{Node: v, Edge: EdgeID(e)}
		cursor[u]++
		g.flat[cursor[v]] = Neighbor{Node: u, Edge: EdgeID(e)}
		cursor[v]++
	}
	if !lex {
		for v := int64(0); v < n; v++ {
			sortNeighborsByNode(g.flat[g.off[v]:g.off[v+1]])
		}
	}
	for i := range g.flat {
		g.flat[i].Link = LinkID(i)
	}
	// Simplicity check: a duplicate edge lands as two equal consecutive
	// targets in a sorted row.
	for v := int64(0); v < n; v++ {
		row := g.flat[g.off[v]:g.off[v+1]]
		for i := 1; i < len(row); i++ {
			if row[i].Node <= row[i-1].Node {
				if row[i].Node == row[i-1].Node {
					panic(fmt.Sprintf("graph: parallel edge {%d,%d}", v, row[i].Node))
				}
				panic(fmt.Sprintf("graph: implicit generator emitted unsorted row at node %d", v))
			}
		}
	}
	g.rev = make([]LinkID, 2*m)
	for v := int64(0); v < n; v++ {
		for _, nb := range g.flat[g.off[v]:g.off[v+1]] {
			g.rev[nb.Link] = g.LinkBetween(nb.Node, NodeID(v))
		}
	}
	return g, nil
}

// sortNeighborsByNode is an allocation-free sift-down heapsort of one
// adjacency row by neighbor id (rows built from a non-lexicographic edge
// enumeration arrive unsorted; sort.Slice would allocate a closure per
// row, which the generator alloc pins forbid at scale).
func sortNeighborsByNode(row []Neighbor) {
	n := len(row)
	for root := n/2 - 1; root >= 0; root-- {
		siftNeighbor(row, root, n)
	}
	for end := n - 1; end > 0; end-- {
		row[0], row[end] = row[end], row[0]
		siftNeighbor(row, 0, end)
	}
}

func siftNeighbor(row []Neighbor, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && row[child+1].Node > row[child].Node {
			child++
		}
		if row[root].Node >= row[child].Node {
			return
		}
		row[root], row[child] = row[child], row[root]
		root = child
	}
}

// Grid3D returns the x×y×z axis-aligned grid: node (ix,iy,iz) has id
// (ix·y + iy)·z + iz and is adjacent to the ±1 lattice neighbors in each
// dimension. Diameter (x-1)+(y-1)+(z-1). The CSR is emitted implicitly:
// construction retains only the finalized arrays.
func Grid3D(x, y, z int) (*Graph, error) {
	if x < 1 || y < 1 || z < 1 {
		return nil, fmt.Errorf("graph: Grid3D needs positive dimensions, got %d×%d×%d", x, y, z)
	}
	// Overflow-safe size computation: each factor fits an int64 product of
	// two, so guard the chain step by step.
	n := int64(x) * int64(y)
	if n > MaxNodes {
		return nil, fmt.Errorf("graph: Grid3D %d×%d×%d exceeds MaxNodes (%d, the 32-bit NodeID space)", x, y, z, int64(MaxNodes))
	}
	n *= int64(z)
	if n > MaxNodes {
		return nil, fmt.Errorf("graph: Grid3D %d×%d×%d exceeds MaxNodes (%d, the 32-bit NodeID space)", x, y, z, int64(MaxNodes))
	}
	m := int64(x-1)*int64(y)*int64(z) + int64(x)*int64(y-1)*int64(z) + int64(x)*int64(y)*int64(z-1)
	return buildCSR(n, m, true, func(emit func(u, v NodeID)) {
		u := int64(0)
		for ix := 0; ix < x; ix++ {
			for iy := 0; iy < y; iy++ {
				for iz := 0; iz < z; iz++ {
					if iz+1 < z {
						emit(NodeID(u), NodeID(u+1))
					}
					if iy+1 < y {
						emit(NodeID(u), NodeID(u+int64(z)))
					}
					if ix+1 < x {
						emit(NodeID(u), NodeID(u+int64(y)*int64(z)))
					}
					u++
				}
			}
		}
	})
}

// PowerLaw returns a deterministic Barabási–Albert preferential-attachment
// graph: a seed clique on m+1 nodes, then each node v = m+1..n-1 attaches
// to m distinct earlier nodes sampled proportionally to degree (by drawing
// uniformly from the running edge-endpoint list, resampling batch
// duplicates). Degree distribution is power-law with heavy-tailed hubs;
// diameter O(log n). Deterministic in seed.
func PowerLaw(n, m int, seed uint64) (*Graph, error) {
	if m < 1 {
		return nil, fmt.Errorf("graph: PowerLaw needs m >= 1, got %d", m)
	}
	if n < m+1 {
		return nil, fmt.Errorf("graph: PowerLaw needs n >= m+1 (n=%d, m=%d)", n, m)
	}
	if int64(n) > MaxNodes {
		return nil, fmt.Errorf("graph: PowerLaw n=%d exceeds MaxNodes (%d, the 32-bit NodeID space)", n, int64(MaxNodes))
	}
	edges := int64(m)*int64(m+1)/2 + int64(n-m-1)*int64(m)
	if edges > MaxEdges {
		return nil, fmt.Errorf("graph: PowerLaw n=%d m=%d needs %d edges, exceeding MaxEdges (%d, the 32-bit LinkID space)", n, m, edges, int64(MaxEdges))
	}
	return buildCSR(int64(n), edges, false, func(emit func(u, v NodeID)) {
		powerLawEdges(n, m, seed, emit)
	})
}

// powerLawEdges enumerates the preferential-attachment edge sequence in
// generation order. Factored out so the golden test's naive materialized
// builder replays the exact same sampling.
func powerLawEdges(n, m int, seed uint64, emit func(u, v NodeID)) {
	r := newRNG(seed)
	// ends is the flattened endpoint multiset: two entries per edge, so a
	// uniform draw lands on a node with probability proportional to degree.
	edges := int64(m)*int64(m+1)/2 + int64(n-m-1)*int64(m)
	ends := make([]NodeID, 0, 2*edges)
	stamp := make([]int32, n)
	for i := range stamp {
		stamp[i] = -1
	}
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			emit(NodeID(i), NodeID(j))
			ends = append(ends, NodeID(i), NodeID(j))
		}
	}
	batch := make([]NodeID, m)
	for v := m + 1; v < n; v++ {
		for picked := 0; picked < m; {
			t := ends[r.Intn(len(ends))]
			if stamp[t] == int32(v) {
				continue // already chosen in this batch; resample
			}
			stamp[t] = int32(v)
			batch[picked] = t
			picked++
		}
		// Emit in sampling order; endpoints join the multiset only after
		// the whole batch, so a node's new edges don't bias its own batch.
		for _, t := range batch {
			emit(t, NodeID(v))
			ends = append(ends, t, NodeID(v))
		}
	}
}

// RingOfCliques returns k cliques of c nodes each (clique i owns the id
// range [i·c, (i+1)·c)), with one road edge from each clique's last node
// to the next clique's first node, closing into a ring. Road-like: locally
// dense, globally a long cycle — diameter Θ(k). Requires k >= 3 (a 2-ring
// would double the connecting edge).
func RingOfCliques(k, c int) (*Graph, error) {
	if k < 3 || c < 1 {
		return nil, fmt.Errorf("graph: RingOfCliques needs k >= 3 cliques of c >= 1 nodes, got k=%d c=%d", k, c)
	}
	n := int64(k) * int64(c)
	if n > MaxNodes {
		return nil, fmt.Errorf("graph: RingOfCliques k=%d c=%d exceeds MaxNodes (%d, the 32-bit NodeID space)", k, c, int64(MaxNodes))
	}
	m := int64(k)*int64(c)*int64(c-1)/2 + int64(k)
	if m > MaxEdges {
		return nil, fmt.Errorf("graph: RingOfCliques k=%d c=%d needs %d edges, exceeding MaxEdges (%d, the 32-bit LinkID space)", k, c, m, int64(MaxEdges))
	}
	return buildCSR(n, m, true, func(emit func(u, v NodeID)) {
		for u := int64(0); u < n; u++ {
			i, pos := u/int64(c), u%int64(c)
			for w := u + 1; w < (i+1)*int64(c); w++ {
				emit(NodeID(u), NodeID(w))
			}
			if pos == int64(c-1) && i < int64(k-1) {
				emit(NodeID(u), NodeID(u+1)) // road to the next clique
			}
			if u == 0 {
				emit(NodeID(0), NodeID(n-1)) // ring-closing road
			}
		}
	})
}
