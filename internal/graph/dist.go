package graph

// BFS returns the distance from src to every node; unreachable nodes get -1.
func (g *Graph) BFS(src NodeID) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, nb := range g.Neighbors(v) {
			if dist[nb.Node] < 0 {
				dist[nb.Node] = dist[v] + 1
				queue = append(queue, nb.Node)
			}
		}
	}
	return dist
}

// MultiBFS returns, for every node, the distance to the closest source and
// the NodeID of that closest source (smallest-ID source wins ties, matching
// the deterministic tie-break used by the distributed algorithms).
// Unreachable nodes get distance -1 and source -1.
func (g *Graph) MultiBFS(sources []NodeID) (dist []int, closest []NodeID) {
	dist = make([]int, g.n)
	closest = make([]NodeID, g.n)
	for i := range dist {
		dist[i] = -1
		closest[i] = -1
	}
	var queue []NodeID
	for _, s := range sources {
		if dist[s] != 0 {
			dist[s] = 0
			closest[s] = s
			queue = append(queue, s)
		}
	}
	order := append([]NodeID(nil), queue...)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, nb := range g.Neighbors(v) {
			if dist[nb.Node] < 0 {
				dist[nb.Node] = dist[v] + 1
				queue = append(queue, nb.Node)
				order = append(order, nb.Node)
			}
		}
	}
	// Second pass in non-decreasing distance order: the closest source of u
	// is the minimum closest source among neighbors one level below.
	for _, u := range order {
		if dist[u] == 0 {
			continue
		}
		for _, nb := range g.Neighbors(u) {
			v := nb.Node
			if dist[v] == dist[u]-1 && (closest[u] < 0 || closest[v] < closest[u]) {
				closest[u] = closest[v]
			}
		}
	}
	return dist, closest
}

// Ecc returns the eccentricity of v (max distance to any reachable node).
func (g *Graph) Ecc(v NodeID) int {
	max := 0
	for _, d := range g.BFS(v) {
		if d > max {
			max = d
		}
	}
	return max
}

// Diameter returns the exact diameter (max over all pairs). O(n·m); fine at
// experiment scale. Returns 0 for n <= 1; panics on disconnected graphs.
func (g *Graph) Diameter() int {
	diam := 0
	for v := 0; v < g.n; v++ {
		dist := g.BFS(NodeID(v))
		for _, d := range dist {
			if d < 0 {
				panic("graph: Diameter on disconnected graph")
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// BallRadius returns max over nodes v of dist(v, sources): the paper's D1
// for multi-source BFS (Thm 4.24).
func (g *Graph) BallRadius(sources []NodeID) int {
	dist, _ := g.MultiBFS(sources)
	max := 0
	for _, d := range dist {
		if d > max {
			max = d
		}
	}
	return max
}

// Ball returns all nodes within distance d of v, in ascending ID order.
func (g *Graph) Ball(v NodeID, d int) []NodeID {
	dist := g.bfsBounded(v, d)
	var out []NodeID
	for u, du := range dist {
		if du >= 0 {
			out = append(out, NodeID(u))
		}
	}
	return out
}

// bfsBounded is BFS truncated at depth bound; unreached nodes get -1.
func (g *Graph) bfsBounded(src NodeID, bound int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if dist[v] == bound {
			continue
		}
		for _, nb := range g.Neighbors(v) {
			if dist[nb.Node] < 0 {
				dist[nb.Node] = dist[v] + 1
				queue = append(queue, nb.Node)
			}
		}
	}
	return dist
}

// DistanceBetweenSets returns min over a in A, b in B of dist(a,b).
// Returns -1 if unreachable.
func (g *Graph) DistanceBetweenSets(a, b []NodeID) int {
	if len(a) == 0 || len(b) == 0 {
		return -1
	}
	inB := make(map[NodeID]bool, len(b))
	for _, v := range b {
		inB[v] = true
	}
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	var queue []NodeID
	for _, v := range a {
		if dist[v] != 0 {
			dist[v] = 0
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if inB[v] {
			return dist[v]
		}
		for _, nb := range g.Neighbors(v) {
			if dist[nb.Node] < 0 {
				dist[nb.Node] = dist[v] + 1
				queue = append(queue, nb.Node)
			}
		}
	}
	return -1
}
