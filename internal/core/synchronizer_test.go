package core

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/async"
	"repro/internal/graph"
	"repro/internal/syncrun"
	"repro/internal/wire"
)

// --- synchronous test algorithms -----------------------------------------

// Wire kinds of the test algorithms (each algorithm owns its namespace).
const (
	tkJoin  wire.Kind = 100 // bfsAlgo / msBFSAlgo join
	tkToken wire.Kind = 101 // echoAlgo token, chainAlgo hop
	tkCount wire.Kind = 102 // echoAlgo subtree count (A = size)
	tkPing  wire.Kind = 103 // pingAlgo counter (A = k)
)

// bfsAlgo is the event-driven synchronous BFS: the source floods "join";
// each node adopts the pulse of the first join as its distance.
type bfsAlgo struct {
	src  graph.NodeID
	dist int
}

func (h *bfsAlgo) Init(n syncrun.API) {
	h.dist = -1
	if n.ID() == h.src {
		h.dist = 0
		n.Output(0)
		for _, nb := range n.Neighbors() {
			n.Send(nb.Node, wire.Tag(tkJoin))
		}
	}
}

func (h *bfsAlgo) Pulse(n syncrun.API, p int, recvd []syncrun.Incoming) {
	if h.dist >= 0 || len(recvd) == 0 {
		return
	}
	h.dist = p
	n.Output(p)
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, wire.Tag(tkJoin))
	}
}

// echoAlgo floods a token out and converges acks back to the initiator,
// which outputs the total node count. Exercises down-and-up traffic and
// send-triggered pulses.
type echoAlgo struct {
	root    graph.NodeID
	par     graph.NodeID
	joined  bool
	pending int
	count   int
}

func (h *echoAlgo) Init(n syncrun.API) {
	h.par = -1
	if n.ID() == h.root {
		h.joined = true
		h.count = 1
		h.pending = n.Degree()
		for _, nb := range n.Neighbors() {
			n.Send(nb.Node, wire.Tag(tkToken))
		}
	}
}

// Pulse implements the classic echo with crossing tokens: a token received
// while already joined answers the token we sent over that edge, so no
// explicit declines are needed and each edge carries at most one message
// per direction per pulse (CONGEST-safe).
func (h *echoAlgo) Pulse(n syncrun.API, p int, recvd []syncrun.Incoming) {
	for _, in := range recvd {
		switch in.Body.Kind {
		case tkToken:
			if h.joined {
				h.pending-- // crossing token answers ours
				continue
			}
			h.joined = true
			h.par = in.From
			h.count = 1
			for _, nb := range n.Neighbors() {
				if nb.Node != h.par {
					n.Send(nb.Node, wire.Tag(tkToken))
					h.pending++
				}
			}
		case tkCount:
			h.pending--
			h.count += int(in.Body.A)
		}
	}
	if h.joined && h.pending == 0 && !n.HasOutput() {
		if h.par >= 0 {
			n.Send(h.par, wire.Body{Kind: tkCount, A: int64(h.count)})
		}
		n.Output(h.count)
	}
}

// chainAlgo walks a token node 0 -> 1 -> ... -> n-1 along a path, with each
// hop outputting its visit pulse. Long dependency chains, few messages:
// the worst case for α's message overhead and a good Lemma 5.1 stressor.
type chainAlgo struct{}

func (h *chainAlgo) Init(n syncrun.API) {
	if n.ID() == 0 {
		n.Output(0)
		n.Send(1, wire.Tag(tkToken))
	}
}

func (h *chainAlgo) Pulse(n syncrun.API, p int, recvd []syncrun.Incoming) {
	if len(recvd) == 0 || n.HasOutput() {
		return
	}
	n.Output(p)
	next := n.ID() + 1
	for _, nb := range n.Neighbors() {
		if nb.Node == next {
			n.Send(next, wire.Tag(tkToken))
		}
	}
}

// --- equivalence harness ---------------------------------------------------

// runBoth executes the algorithm in the lockstep runner and under the
// synchronizer and requires identical outputs.
func runBoth(t *testing.T, g *graph.Graph, bound int, adv async.Adversary,
	mk func(id graph.NodeID) syncrun.Handler) (syncrun.Result, async.Result) {
	t.Helper()
	syncRes := syncrun.New(g, mk).Run()
	asyncRes := Synchronize(Config{Graph: g, Bound: bound, Adversary: adv}, mk)
	if len(syncRes.Outputs) != len(asyncRes.Outputs) {
		t.Fatalf("output counts differ: sync %d, async %d", len(syncRes.Outputs), len(asyncRes.Outputs))
	}
	for v, want := range syncRes.Outputs {
		if got := asyncRes.Outputs[v]; !reflect.DeepEqual(got, want) {
			t.Fatalf("node %d: async output %v, sync output %v", v, got, want)
		}
	}
	return syncRes, asyncRes
}

func TestSynchronizedBFSMatchesSyncOutputs(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"path12":  graph.Path(12),
		"cycle9":  graph.Cycle(9),
		"grid4x4": graph.Grid(4, 4),
		"star10":  graph.Star(10),
		"er20":    graph.RandomConnected(20, 40, 7),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			bound := g.Diameter() + 2
			mk := func(graph.NodeID) syncrun.Handler { return &bfsAlgo{src: 0} }
			syncRes, _ := runBoth(t, g, bound, async.SeededRandom{Seed: 3}, mk)
			want := g.BFS(0)
			for v := 0; v < g.N(); v++ {
				if syncRes.Outputs[graph.NodeID(v)] != want[v] {
					t.Fatalf("node %d: BFS output %v, want %d", v, syncRes.Outputs[graph.NodeID(v)], want[v])
				}
			}
		})
	}
}

func TestSynchronizedBFSAllAdversaries(t *testing.T) {
	g := graph.Grid(4, 5)
	bound := g.Diameter() + 2
	mk := func(graph.NodeID) syncrun.Handler { return &bfsAlgo{src: 0} }
	for _, adv := range async.StandardAdversaries(g.N(), 11) {
		t.Run(adv.Name(), func(t *testing.T) {
			runBoth(t, g, bound, adv, mk)
		})
	}
}

func TestSynchronizedBFSSeedSweep(t *testing.T) {
	g := graph.RandomConnected(24, 50, 19)
	bound := g.Diameter() + 2
	mk := func(graph.NodeID) syncrun.Handler { return &bfsAlgo{src: 5} }
	for seed := uint64(1); seed <= 15; seed++ {
		runBoth(t, g, bound, async.SeededRandom{Seed: seed}, mk)
	}
}

func TestSynchronizedEcho(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"path10", graph.Path(10)},
		{"grid3x4", graph.Grid(3, 4)},
		{"tree15", graph.CompleteBinaryTree(15)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Echo takes up to ~2D+2 pulses.
			bound := 2*tc.g.Diameter() + 4
			mk := func(graph.NodeID) syncrun.Handler { return &echoAlgo{root: 0} }
			syncRes, _ := runBoth(t, tc.g, bound, async.SeededRandom{Seed: 2}, mk)
			if syncRes.Outputs[0] != tc.g.N() {
				t.Fatalf("echo root counted %v, want %d", syncRes.Outputs[0], tc.g.N())
			}
		})
	}
}

func TestSynchronizedChain(t *testing.T) {
	g := graph.Path(16)
	mk := func(graph.NodeID) syncrun.Handler { return &chainAlgo{} }
	for _, adv := range async.StandardAdversaries(g.N(), 4) {
		t.Run(adv.Name(), func(t *testing.T) {
			syncRes, _ := runBoth(t, g, 17, adv, mk)
			for v := 0; v < g.N(); v++ {
				if syncRes.Outputs[graph.NodeID(v)] != v {
					t.Fatalf("chain node %d visited at %v", v, syncRes.Outputs[graph.NodeID(v)])
				}
			}
		})
	}
}

func TestMultiOriginator(t *testing.T) {
	// Several originators start BFS floods at once (multi-source BFS):
	// each node outputs its distance to the closest source.
	g := graph.Grid(5, 5)
	sources := []graph.NodeID{0, 24, 12}
	mk := func(id graph.NodeID) syncrun.Handler { return &msBFSAlgo{sources: sources} }
	bound := g.Diameter() + 2
	syncRes, _ := runBoth(t, g, bound, async.SeededRandom{Seed: 8}, mk)
	dist, _ := g.MultiBFS(sources)
	for v := 0; v < g.N(); v++ {
		if syncRes.Outputs[graph.NodeID(v)] != dist[v] {
			t.Fatalf("node %d: multi-source output %v, want %d", v, syncRes.Outputs[graph.NodeID(v)], dist[v])
		}
	}
}

type msBFSAlgo struct {
	sources []graph.NodeID
	dist    int
}

func (h *msBFSAlgo) Init(n syncrun.API) {
	h.dist = -1
	for _, s := range h.sources {
		if n.ID() == s {
			h.dist = 0
			n.Output(0)
			for _, nb := range n.Neighbors() {
				n.Send(nb.Node, wire.Tag(tkJoin))
			}
		}
	}
}

func (h *msBFSAlgo) Pulse(n syncrun.API, p int, recvd []syncrun.Incoming) {
	if h.dist >= 0 || len(recvd) == 0 {
		return
	}
	h.dist = p
	n.Output(p)
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, wire.Tag(tkJoin))
	}
}

func TestScheduleTables(t *testing.T) {
	s := NewSchedule(64)
	// Every pulse 1..64 is either a barrier pulse or has a registrant
	// entry at (prev2(p), prev(p)).
	for p := 1; p <= 64; p++ {
		if s.IsBarrier(p) {
			continue
		}
		found := false
		for _, rp := range s.RegisterSessions(prevPrev(p), prevOf(p)) {
			if rp == p {
				found = true
			}
		}
		if !found {
			t.Fatalf("pulse %d has neither barrier nor registrant entry", p)
		}
	}
	// Tracked sets are consistent with Lemma 4.14's O(log) size.
	for pi := 0; pi <= 64; pi++ {
		if len(s.Tracked(pi)) > 8*8 {
			t.Fatalf("Tracked(%d) has %d entries", pi, len(s.Tracked(pi)))
		}
		if !sort.IntsAreSorted(s.Tracked(pi)) {
			t.Fatalf("Tracked(%d) not sorted", pi)
		}
	}
}

func TestSynchronizerDeterminism(t *testing.T) {
	g := graph.Grid(4, 4)
	mk := func(graph.NodeID) syncrun.Handler { return &bfsAlgo{src: 0} }
	cfg := Config{Graph: g, Bound: g.Diameter() + 2, Adversary: async.SeededRandom{Seed: 5}}
	a := Synchronize(cfg, mk)
	b := Synchronize(cfg, mk)
	if a.Time != b.Time || a.Msgs != b.Msgs {
		t.Fatalf("nondeterministic synchronizer: %+v vs %+v", a, b)
	}
}

func TestBoundTooSmallPanics(t *testing.T) {
	g := graph.Path(8)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic for undersized bound")
		} else if _, ok := r.(string); !ok {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	Synchronize(Config{Graph: g, Bound: 2, Adversary: async.Fixed{D: 1}},
		func(graph.NodeID) syncrun.Handler { return &bfsAlgo{src: 0} })
}

func TestTimeToOutputReported(t *testing.T) {
	g := graph.Path(10)
	res := Synchronize(Config{Graph: g, Bound: 12, Adversary: async.Fixed{D: 1}},
		func(graph.NodeID) syncrun.Handler { return &bfsAlgo{src: 0} })
	if res.Time <= 0 || res.Time > res.QuiesceTime {
		t.Fatalf("implausible times: %+v", res)
	}
	fmt.Printf("path10 BFS: time=%.1f quiesce=%.1f msgs=%d\n", res.Time, res.QuiesceTime, res.Msgs)
}
