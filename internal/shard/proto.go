// Package shard runs one bounded-lag async engine per OS process over a
// contiguous node partition and merges their executions into a result
// byte-identical to the single-process serial engine.
//
// The protocol is hub-and-spoke over unix-domain sockets with one round
// trip per global window:
//
//	worker k                       coordinator
//	--------                       -----------
//	JOIN{k}           ──────▶
//	                  ◀──────      HELLO{spec, cuts, self, adversary, ...}
//	ShardInit
//	FLUSH{log, minT}  ──────▶      k-way merge all logs by (trigT, trigSeq),
//	                               grant seqs in merge order, route remote
//	                  ◀──────      OPEN{wStart, grants, inbound frames}
//	ShardRunWindow
//	FLUSH{...}        ──────▶      ... until no shard has pending events ...
//	                  ◀──────      FINISH
//	RESULT{...}       ──────▶      merge per-shard results
//
// Correctness rests on the bounded-lag safety argument extended across
// processes: every event executed in window [wStart, wStart+MinDelay)
// schedules only events at t ≥ wStart+MinDelay (the adversary's declared
// MinDelay, enforced at dispatch, plus fl(t+d) monotonicity in exact
// floating point), so a window's staged schedule calls — sorted by their
// triggering event's (t, seq) — are exactly the calls the serial engine
// would issue, in its order. Merge keys are globally unique: trigSeq is a
// granted (hence unique) event seq during windows and the global node id
// during Init, and node ownership is disjoint. The coordinator's merge
// therefore assigns seqs exactly as the serial engine's schedule calls
// would, and seqs drive every tie-break downstream.
//
// Frames are raw copies of wire.Body plus the referenced arena segment's
// words (see wire.AppendBodySeg): serialization is memcpy. Segments are
// re-homed into the receiving engine's arena on the way in and released
// from the sender's on the way out, so each arena's Live() count settles
// to zero exactly as in a single-process run.
package shard

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/async"
	"repro/internal/graph"
	"repro/internal/wire"
)

// Message types. Every message is [type u8][payload len u32][payload],
// little-endian, same-machine only (the workers are re-execs of this very
// binary).
const (
	msgJoin byte = 1 + iota
	msgHello
	msgFlush
	msgOpen
	msgFinish
	msgResult
	// msgSnapFrame carries one worker's engine frame to the coordinator
	// when an OPEN's snapshot flag was set (worker → coordinator).
	msgSnapFrame
	// msgFrame ships one resumed worker its restored engine frame right
	// after HELLO (coordinator → worker).
	msgFrame
)

// maxMsgLen bounds a single protocol message; a 10M-node shard's flush
// stays far below this, so anything larger is a corrupt stream.
const maxMsgLen = 1 << 31

func writeMsg(w *bufio.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

func readMsg(r *bufio.Reader, buf []byte) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxMsgLen {
		return 0, nil, fmt.Errorf("shard: oversized %d-byte message", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return hdr[0], buf, nil
}

// Little-endian append/read helpers. The envelope fields go through
// encoding/binary; the Body+segment bulk goes through wire's memcpy
// codec.

func appendU8(b []byte, v uint8) []byte { return append(b, v) }

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendI32(b []byte, v int32) []byte { return appendU32(b, uint32(v)) }

func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}

// reader is a cursor over a received payload; short reads poison it and
// surface once at err().
type reader struct {
	b   []byte
	off int
	bad bool
}

func (r *reader) take(n int) []byte {
	if r.bad || r.off+n > len(r.b) {
		r.bad = true
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *reader) u8() uint8 {
	v := r.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

func (r *reader) u32() uint32 {
	v := r.take(4)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v)
}

func (r *reader) u64() uint64 {
	v := r.take(8)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}

func (r *reader) i32() int32   { return int32(r.u32()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *reader) done() bool   { return r.off == len(r.b) && !r.bad }
func (r *reader) err(what string) error {
	if r.bad {
		return fmt.Errorf("shard: truncated %s message", what)
	}
	if r.off != len(r.b) {
		return fmt.Errorf("shard: %d trailing bytes in %s message", len(r.b)-r.off, what)
	}
	return nil
}

// Event frames: one cross-shard event in flight. Layout:
//
//	kind u8 | proto i32 | stage i32 | src i32 | dst i32 | Body+segment
//
// The timestamp and granted seq travel in the enclosing envelope (the
// flush entry / open inbound record); the local LinkID deliberately does
// not travel — link ids are shard-local, so the receiver recomputes its
// own (see async.ShardInject).
const eventFrameHead = 1 + 4 + 4 + 4 + 4

func appendEventFrame(dst []byte, kind uint8, src, to graph.NodeID, m async.Msg, a *wire.Arena) []byte {
	dst = appendU8(dst, kind)
	dst = appendI32(dst, int32(m.Proto))
	dst = appendI32(dst, int32(m.Stage))
	dst = appendI32(dst, int32(src))
	dst = appendI32(dst, int32(to))
	return wire.AppendBodySeg(dst, m.Body, a)
}

// decodeEventFrame decodes one event frame, re-homing any segment into a.
// Returns the event fields, the bytes consumed, and an error on a
// malformed buffer.
func decodeEventFrame(b []byte, a *wire.Arena) (kind uint8, src, to graph.NodeID, m async.Msg, n int, err error) {
	if len(b) < eventFrameHead {
		return 0, 0, 0, m, 0, fmt.Errorf("shard: event frame truncated at %d bytes", len(b))
	}
	kind = b[0]
	m.Proto = async.Proto(int32(binary.LittleEndian.Uint32(b[1:])))
	m.Stage = int(int32(binary.LittleEndian.Uint32(b[5:])))
	src = graph.NodeID(int32(binary.LittleEndian.Uint32(b[9:])))
	to = graph.NodeID(int32(binary.LittleEndian.Uint32(b[13:])))
	body, used, err := wire.DecodeBodySeg(b[eventFrameHead:], a)
	if err != nil {
		return 0, 0, 0, async.Msg{}, 0, err
	}
	m.Body = body
	return kind, src, to, m, eventFrameHead + used, nil
}
