package core

import (
	"repro/internal/async"
	"repro/internal/graph"
	"repro/internal/syncrun"
)

// Pulse watchdog: post-run stall observability for synchronized
// executions. Under a fault schedule a run can quiesce without
// completing — a message whose retransmit budget is exhausted
// (Undeliverable) silently starves every pulse that transitively waited
// on it — and the engine's counters alone cannot distinguish that from
// a short completed run. The watchdog inspects each node's synchronizer
// core after the run and reports how far its pulse frontier got.

// StallReport summarizes per-node pulse progress after a synchronized
// run.
type StallReport struct {
	// Bound is the run's pulse bound B.
	Bound int
	// Nodes is the number of nodes inspected.
	Nodes int
	// MinPulse and MaxPulse are the least and greatest pulse any node
	// reached (-1 when a node created no pulse at all).
	MinPulse int
	MaxPulse int
	// StalledCount is the number of nodes strictly behind MaxPulse;
	// Stalled samples up to 8 of them, ascending.
	StalledCount int
	Stalled      []graph.NodeID
	// Undeliverable is the run's count of messages abandoned with their
	// retransmit budget exhausted.
	Undeliverable uint64
	// Outputs is the number of nodes that produced an output.
	Outputs int
}

// IsStalled reports whether the run shows fault-induced starvation: at
// least one message was undeliverable and the pulse frontier is ragged
// (some nodes run behind the furthest) or output production is
// incomplete. A heuristic observability signal, not a proof — an
// algorithm that legitimately outputs on a strict node subset can
// trigger the Outputs clause only together with lost messages.
func (r *StallReport) IsStalled() bool {
	return r.Undeliverable > 0 && (r.MinPulse < r.MaxPulse || r.Outputs < r.Nodes)
}

const stallSampleCap = 8

// watchdogReport walks the synchronizer stacks of a completed run.
func watchdogReport(sim *async.Sim, res *async.Result, bound int) StallReport {
	g := sim.Graph()
	rep := StallReport{Bound: bound, MinPulse: -1, MaxPulse: -1, Undeliverable: res.Undeliverable, Outputs: len(res.Outputs)}
	pulses := make([]int, 0, g.N())
	ids := make([]graph.NodeID, 0, g.N())
	for v := 0; v < g.N(); v++ {
		id := graph.NodeID(v)
		mux, ok := sim.Handler(id).(*async.Mux)
		if !ok {
			continue
		}
		nc, ok := mux.Module(ProtoAlgo).(*nodeCore)
		if !ok {
			continue
		}
		p := -1
		for q := range nc.vnodes {
			if q > p {
				p = q
			}
		}
		pulses = append(pulses, p)
		ids = append(ids, id)
	}
	rep.Nodes = len(pulses)
	for i, p := range pulses {
		if i == 0 || p < rep.MinPulse {
			rep.MinPulse = p
		}
		if i == 0 || p > rep.MaxPulse {
			rep.MaxPulse = p
		}
	}
	for i, p := range pulses {
		if p < rep.MaxPulse {
			rep.StalledCount++
			if len(rep.Stalled) < stallSampleCap {
				rep.Stalled = append(rep.Stalled, ids[i])
			}
		}
	}
	return rep
}

// SynchronizeWatched is Synchronize plus the pulse watchdog: it runs the
// synchronized execution and inspects every node's pulse frontier after
// quiescence.
func SynchronizeWatched(cfg Config, mk func(id graph.NodeID) syncrun.Handler) (async.Result, StallReport) {
	sim := newSynchronizedSim(cfg, mk)
	res := sim.Run()
	return res, watchdogReport(sim, &res, cfg.Bound)
}
