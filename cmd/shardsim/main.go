// Command shardsim runs one workload across K node-partitioned engine
// processes — the multi-process sharded executor — and reports the merged
// result plus the coordinator's per-window time ledger.
//
// Usage:
//
//	shardsim -graph grid3d:100x100x100 -shards 2 -workload flood
//	shardsim -graph pa:n=200000,m=3,seed=7 -shards 4 -workload bfs -adv random:9
//	shardsim -graph grid3d:32x32x32 -shards 2 -verify     # compare vs serial
//	shardsim -graph grid3d:100x100x100 -shards 2 -ceiling-mb 1024
//	shardsim -graph grid3d:32x32x32 -shards 2 -faults drop:p=0.05,budget=3,seed=7 -verify
//	shardsim -graph grid:200x200 -shards 2 -snapshot-every 50000 -snapshot-path run.ckpt
//	shardsim -resume run.ckpt -shards 4    # continue at a different K
//
// Workers are re-execs of this binary: the coordinator spawns K copies
// with REPRO_SHARD_SOCKET/REPRO_SHARD_INDEX set (plus a cosmetic
// -shard-worker argv so ps identifies them), each builds the graph from
// the same spec string, carves its contiguous node range, and serves the
// bounded-lag window protocol over a unix socket. Results — outputs,
// message counts, per-protocol totals, delivery traces — are byte-
// identical to the single-process serial engine; -verify re-runs the
// workload serially and enforces exactly that. -ceiling-mb fails the run
// if any worker's settled heap exceeds the bound, which is how CI holds
// the per-process memory promise. -inproc serves workers on goroutines
// over the same sockets (no processes; heap self-reports are disabled
// because the workers share one heap).
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"sort"
	"strconv"
	"strings"

	"repro/internal/async"
	"repro/internal/graph"
	"repro/internal/shard"
)

func main() {
	shard.MaybeWorker() // worker re-execs never return from this
	os.Exit(run())
}

func run() int {
	var (
		spec     = flag.String("graph", "grid3d:32x32x32", "graph spec (graph.FromSpec form, e.g. grid3d:100x100x100)")
		shards   = flag.Int("shards", 0, "worker count K; 0 picks execpolicy.AutoShards for the graph")
		workload = flag.String("workload", "flood", "workload: "+strings.Join(shard.Workloads(), "|"))
		adv      = flag.String("adv", "fixed:1", "delay adversary: fixed:<d>|random:<seed>|skew:cut=<n>,fast=<d>|flaky:<seed>|edge:<seed>")
		faults   = flag.String("faults", "", "fault schedule (e.g. crash:p=0.01,drop:p=0.05,budget=3,seed=7); empty = fault-free")
		sources  = flag.String("sources", "0", "comma-separated source node ids")
		segWords = flag.Int("seg-words", 0, "segment words per message (segflood; 0 = workload default)")
		inproc   = flag.Bool("inproc", false, "serve workers on goroutines instead of spawned processes")
		ceiling  = flag.Int64("ceiling-mb", 0, "fail if any worker's settled heap exceeds this many MB (process workers; 0 = off)")
		verify   = flag.Bool("verify", false, "also run the serial single-process engine and require byte-identical results")
		snapN    = flag.Uint64("snapshot-every", 0, "checkpoint the run every N executed events (requires -snapshot-path)")
		snapP    = flag.String("snapshot-path", "", "checkpoint file (atomically replaced at each checkpoint)")
		resume   = flag.String("resume", "", "resume from a checkpoint file; graph/workload/adversary/faults come from the file, -shards stays yours")
		_        = flag.Bool("shard-worker", false, "(internal) cosmetic marker on re-exec'd worker argv; workers are configured via environment")
	)
	flag.Parse()

	srcs, err := parseSources(*sources)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *resume != "" && *verify {
		fmt.Fprintln(os.Stderr, "-verify needs the full workload spec, which a -resume run takes from the checkpoint file; run -verify on the uninterrupted configuration instead")
		return 2
	}
	cfg := shard.Config{
		GraphSpec: *spec,
		Shards:    *shards,
		Workload:  *workload,
		Adversary: *adv,
		Faults:    *faults,
		Sources:   srcs,
		SegWords:  *segWords,
		// Traces are only needed for -verify, and segment-carrying traces
		// hold arena-local handles that never compare equal across
		// processes — the documented caveat — so they stay off for segflood.
		KeepTrace:     *verify && *workload != "segflood",
		CeilingMB:     *ceiling,
		Launch:        shard.LaunchProcess,
		WorkerArgs:    []string{"-shard-worker"},
		SnapshotEvery: *snapN,
		SnapshotPath:  *snapP,
		ResumeFrom:    *resume,
	}
	if *inproc {
		cfg.Launch = shard.LaunchInProc
	}
	rep, err := shard.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	res := rep.Result
	st := rep.Stats
	if *resume != "" {
		fmt.Printf("resumed=%s shards=%d cuts=%v crossLinks=%d\n",
			*resume, st.Shards, rep.Cuts, st.CrossLinks)
	} else {
		fmt.Printf("graph=%s workload=%s adv=%s shards=%d cuts=%v crossLinks=%d\n",
			*spec, *workload, *adv, st.Shards, rep.Cuts, st.CrossLinks)
	}
	if *faults != "" {
		fmt.Printf("faults=%s dropped=%d retrans=%d undeliverable=%d\n",
			*faults, res.Dropped, res.Retrans, res.Undeliverable)
	}
	fmt.Printf("time=%.3f quiesce=%.3f msgs=%d acks=%d events=%d outputs=%d\n",
		res.Time, res.QuiesceTime, res.Msgs, res.Acks, st.TotalEvents, len(res.Outputs))
	protos := make([]int, 0, len(res.PerProto))
	for p := range res.PerProto {
		protos = append(protos, int(p))
	}
	sort.Ints(protos)
	for _, p := range protos {
		fmt.Printf("  proto %d: %d msgs\n", p, res.PerProto[async.Proto(p)])
	}
	fmt.Printf("windows=%d frames=%d frameKB=%d\n", st.Windows, st.Frames, st.FrameBytes>>10)
	if st.Snapshots > 0 {
		fmt.Printf("snapshots=%d snapshotMs=%.1f path=%s\n", st.Snapshots, ms(st.SnapshotNs), *snapP)
	}
	fmt.Printf("startup=%.1fms worker=%.1fms comm=%.1fms merge=%.1fms", ms(st.StartupNs), ms(st.WorkerNs), ms(st.CommNs), ms(st.MergeNs))
	if st.Windows > 0 {
		fmt.Printf("  (per window: worker=%.1fµs comm=%.1fµs merge=%.1fµs)",
			us(st.WorkerNs)/float64(st.Windows), us(st.CommNs)/float64(st.Windows), us(st.MergeNs)/float64(st.Windows))
	}
	fmt.Println()
	for i, si := range rep.Shards {
		fmt.Printf("shard %d: nodes=%d links=%d boundary=%d steps=%d graphMB=%.1f", i,
			si.Nodes, si.Links, si.Boundary, si.Steps, float64(si.GraphBytes)/(1<<20))
		if si.HeapMB > 0 {
			fmt.Printf(" engineMB=%.1f heapMB=%d", float64(si.EngineBytes)/(1<<20), si.HeapMB)
		}
		fmt.Println()
	}

	if *verify {
		want, err := serialReference(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if !reflect.DeepEqual(res, want) {
			fmt.Fprintf(os.Stderr, "VERIFY FAILED: sharded result diverges from the serial engine\n"+
				"  sharded: time=%v msgs=%d acks=%d outputs=%d\n"+
				"  serial:  time=%v msgs=%d acks=%d outputs=%d\n",
				res.Time, res.Msgs, res.Acks, len(res.Outputs),
				want.Time, want.Msgs, want.Acks, len(want.Outputs))
			return 1
		}
		fmt.Println("verify: OK — byte-identical to the serial single-process engine")
	}
	return 0
}

// serialReference runs the same (graph, adversary, workload) through the
// serial engine.
func serialReference(cfg shard.Config) (async.Result, error) {
	g, err := graph.FromSpec(cfg.GraphSpec)
	if err != nil {
		return async.Result{}, err
	}
	a, err := shard.ParseAdversary(cfg.Adversary)
	if err != nil {
		return async.Result{}, err
	}
	fs, err := async.ParseFaultSpec(cfg.Faults)
	if err != nil {
		return async.Result{}, err
	}
	a = async.WithFaults(a, fs)
	mk, err := shard.NewWorkload(cfg.Workload, shard.WorkloadConfig{Sources: cfg.Sources, SegWords: cfg.SegWords})
	if err != nil {
		return async.Result{}, err
	}
	sim := async.New(g, a, mk).WithMode(async.ModeSingle)
	if cfg.KeepTrace {
		sim.KeepTrace()
	}
	return sim.Run(), nil
}

func parseSources(s string) ([]graph.NodeID, error) {
	var out []graph.NodeID
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad source %q", part)
		}
		out = append(out, graph.NodeID(v))
	}
	return out, nil
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }
func us(ns int64) float64 { return float64(ns) / 1e3 }
