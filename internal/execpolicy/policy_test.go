package execpolicy

import (
	"runtime"
	"testing"
)

// withProcs runs f under a pinned GOMAXPROCS, restoring the old value —
// the policy functions read GOMAXPROCS, so every test must control it.
func withProcs(p int, f func()) {
	old := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(old)
	f()
}

func TestDefaultWorkers(t *testing.T) {
	withProcs(3, func() {
		if w := DefaultWorkers(); w != 3 {
			t.Fatalf("DefaultWorkers at 3 CPUs = %d", w)
		}
	})
	withProcs(MaxWorkers+8, func() {
		if w := DefaultWorkers(); w != MaxWorkers {
			t.Fatalf("DefaultWorkers must cap at MaxWorkers, got %d", w)
		}
	})
}

func TestValidateWorkers(t *testing.T) {
	ValidateWorkers("engine", 1) // must not panic
	for _, k := range []int{0, -2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("ValidateWorkers(%d) should panic", k)
				}
			}()
			ValidateWorkers("engine", k)
		}()
	}
}

func TestAutoWorkers(t *testing.T) {
	withProcs(2, func() {
		if w := AutoWorkers(8); w != 2 {
			t.Fatalf("AutoWorkers must clamp an oversubscribed pool to GOMAXPROCS, got %d", w)
		}
		if w := AutoWorkers(1); w != 1 {
			t.Fatalf("AutoWorkers(1) = %d", w)
		}
	})
}

func TestAsyncAuto(t *testing.T) {
	withProcs(4, func() {
		cases := []struct {
			name      string
			workers   int
			links     int
			lookahead float64
			cloneable bool
			want      AsyncChoice
		}{
			{"one worker", 1, AutoMultiLinks, 1, true, AsyncSerial},
			{"small graph", 4, AutoMultiLinks - 1, 1, true, AsyncSerial},
			{"wide lookahead", 4, AutoMultiLinks, AutoMinLookahead, true, AsyncWindows},
			{"tiny lookahead, cloneable", 4, AutoMultiLinks, AutoMinLookahead / 2, true, AsyncSpec},
			{"tiny lookahead, opaque state", 4, AutoMultiLinks, AutoMinLookahead / 2, false, AsyncSerial},
		}
		for _, c := range cases {
			if got := AsyncAuto(c.workers, c.links, c.lookahead, c.cloneable); got != c.want {
				t.Errorf("%s: AsyncAuto = %v, want %v", c.name, got, c.want)
			}
		}
	})
	// The clamp applies inside Auto too: a big configured pool on one CPU
	// must not volunteer parallelism.
	withProcs(1, func() {
		if got := AsyncAuto(8, AutoMultiLinks, 1, true); got != AsyncSerial {
			t.Fatalf("AsyncAuto on 1 CPU = %v, want AsyncSerial", got)
		}
	})
}

// TestHugeGraphGate pins the huge-graph Auto thresholds and the gate's
// shape: drifting either constant or the lookahead×links product test
// changes which mode million-link benchmarks silently run under.
func TestHugeGraphGate(t *testing.T) {
	if AutoHugeLinks != 1<<21 {
		t.Fatalf("AutoHugeLinks drifted to %d", AutoHugeLinks)
	}
	if AutoHugeEventsPerWindow != 4096 {
		t.Fatalf("AutoHugeEventsPerWindow drifted to %d", AutoHugeEventsPerWindow)
	}
	withProcs(4, func() {
		tiny := AutoMinLookahead / 2 // below the ordinary windowed gate
		cases := []struct {
			name      string
			links     int
			lookahead float64
			cloneable bool
			want      AsyncChoice
		}{
			// At the huge threshold, tiny lookahead × 2^21 links = 2^12
			// expected events — exactly the gate.
			{"huge graph, product at gate", AutoHugeLinks, tiny, false, AsyncWindows},
			{"huge graph, product below gate", AutoHugeLinks, tiny / 2, false, AsyncSerial},
			{"huge graph, product below gate, cloneable", AutoHugeLinks, tiny / 2, true, AsyncSpec},
			{"just under huge", AutoHugeLinks - 1, tiny, false, AsyncSerial},
			{"just under huge, cloneable", AutoHugeLinks - 1, tiny, true, AsyncSpec},
		}
		for _, c := range cases {
			if got := AsyncAuto(4, c.links, c.lookahead, c.cloneable); got != c.want {
				t.Errorf("%s: AsyncAuto = %v, want %v", c.name, got, c.want)
			}
		}
	})
}

func TestLockstepMulti(t *testing.T) {
	withProcs(4, func() {
		if !LockstepMulti(4, AutoMultiNodes) {
			t.Fatal("big graph with a real pool should go parallel")
		}
		if LockstepMulti(4, AutoMultiNodes-1) {
			t.Fatal("small graph should stay serial")
		}
		if LockstepMulti(1, AutoMultiNodes) {
			t.Fatal("one worker should stay serial")
		}
	})
	withProcs(1, func() {
		if LockstepMulti(8, AutoMultiNodes) {
			t.Fatal("oversubscribed pool on 1 CPU should stay serial in Auto")
		}
	})
}

func TestAutoShards(t *testing.T) {
	cases := []struct {
		procs, links, want int
	}{
		{8, 0, 1},
		{8, AutoShardLinks - 1, 1},                   // below the gate: never shard
		{8, AutoShardLinks, 2},                       // at the gate: 4M links = 2 shards
		{8, 4 * AutoShardLinksPerShard, 4},           // grows with the graph
		{2, 8 * AutoShardLinksPerShard, 2},           // clamped to processors
		{64, 64 * AutoShardLinksPerShard, MaxShards}, // clamped to the process cap
		{1, 1 << 30, 1},                              // single core: sharding never wins
	}
	for _, c := range cases {
		if got := AutoShards(c.procs, c.links); got != c.want {
			t.Errorf("AutoShards(procs=%d, links=%d) = %d, want %d", c.procs, c.links, got, c.want)
		}
	}
}
