package graph

import "testing"

func TestLinkIndexing(t *testing.T) {
	for _, g := range []*Graph{
		Path(9),
		Grid(4, 5),
		RandomConnected(40, 100, 3),
		Complete(7),
	} {
		if g.Links() != 2*g.M() {
			t.Fatalf("Links() = %d, want %d", g.Links(), 2*g.M())
		}
		seen := make([]bool, g.Links())
		next := 0
		for v := 0; v < g.N(); v++ {
			if got := int(g.LinkOffset(NodeID(v))); got != next {
				t.Fatalf("LinkOffset(%d) = %d, want %d", v, got, next)
			}
			for i, nb := range g.Neighbors(NodeID(v)) {
				l := nb.Link
				if int(l) != next {
					t.Fatalf("node %d entry %d: link %d, want dense %d", v, i, l, next)
				}
				if seen[l] {
					t.Fatalf("link %d assigned twice", l)
				}
				seen[l] = true
				next++
				if got := g.LinkBetween(NodeID(v), nb.Node); got != l {
					t.Errorf("LinkBetween(%d,%d) = %d, want %d", v, nb.Node, got, l)
				}
				if g.LinkSrc(l) != NodeID(v) || g.LinkDst(l) != nb.Node {
					t.Errorf("link %d endpoints = (%d,%d), want (%d,%d)",
						l, g.LinkSrc(l), g.LinkDst(l), v, nb.Node)
				}
				r := g.ReverseLink(l)
				if g.LinkSrc(r) != nb.Node || g.LinkDst(r) != NodeID(v) {
					t.Errorf("ReverseLink(%d) = %d with endpoints (%d,%d), want (%d,%d)",
						l, r, g.LinkSrc(r), g.LinkDst(r), nb.Node, v)
				}
				if g.ReverseLink(r) != l {
					t.Errorf("ReverseLink not involutive at %d", l)
				}
			}
		}
		for v := 0; v < g.N(); v++ {
			for u := 0; u < g.N(); u++ {
				has := g.HasEdge(NodeID(v), NodeID(u))
				l := g.LinkBetween(NodeID(v), NodeID(u))
				if has != (l >= 0) {
					t.Fatalf("LinkBetween(%d,%d) = %d but HasEdge = %v", v, u, l, has)
				}
			}
		}
	}
}

func TestLinkBeforeFinalizePanics(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from LinkBetween before Finalize")
		}
	}()
	g.LinkBetween(0, 1)
}
