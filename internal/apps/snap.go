package apps

import (
	"sort"

	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/wire"
)

// State codecs (wire.StateCodec) for every algorithm in this package: the
// engine state plane serializes each handler's complete mutable state at a
// pulse (or event) boundary and reloads it into a freshly constructed
// handler. Configuration fields set by the constructor (Sources, Threshold,
// Covers, Barrier, Weights, callbacks) stay out of the stream — the
// restoring side rebuilds handlers with the same constructor, so only the
// run-varying state travels. Maps are written in sorted key order so the
// frame bytes are a pure function of the logical state.

var (
	_ wire.StateCodec = (*Flood)(nil)
	_ wire.StateCodec = (*Echo)(nil)
	_ wire.StateCodec = (*BFS)(nil)
	_ wire.StateCodec = (*TBFS)(nil)
	_ wire.StateCodec = (*Leader)(nil)
	_ wire.StateCodec = (*MST)(nil)
)

// --- shared helpers --------------------------------------------------------

// saveNodeSet writes a node-membership set (every stored value is true) as
// a sorted key list.
func saveNodeSet(e *wire.Enc, set map[graph.NodeID]bool) {
	keys := sortedKeys(set)
	e.U32(uint32(len(keys)))
	for _, v := range keys {
		e.I32(int32(v))
	}
}

func loadNodeSet(d *wire.Dec) map[graph.NodeID]bool {
	n := int(d.U32())
	set := make(map[graph.NodeID]bool, n)
	for i := 0; i < n && !d.Failed(); i++ {
		set[graph.NodeID(d.I32())] = true
	}
	return set
}

func sortedIntKeys[T any](m map[int]T) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// saveState writes the queue's pending messages per target, targets sorted.
func (s *sendQueue) saveState(e *wire.Enc) {
	targets := make([]graph.NodeID, 0, len(s.q))
	for to := range s.q {
		targets = append(targets, to)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	e.U32(uint32(len(targets)))
	for _, to := range targets {
		buf := s.q[to]
		e.I32(int32(to))
		e.U32(uint32(len(buf)))
		for _, b := range buf {
			e.Body(b)
		}
	}
}

func (s *sendQueue) loadState(d *wire.Dec) {
	s.q = nil
	nTargets := int(d.U32())
	for i := 0; i < nTargets && !d.Failed(); i++ {
		to := graph.NodeID(d.I32())
		cnt := int(d.U32())
		for j := 0; j < cnt && !d.Failed(); j++ {
			b := d.Body()
			if !d.Failed() {
				s.Send(to, b)
			}
		}
	}
}

// --- Flood -----------------------------------------------------------------

// SaveState implements wire.StateCodec.
func (h *Flood) SaveState(e *wire.Enc) { e.Bool(h.seen) }

// LoadState implements wire.StateCodec.
func (h *Flood) LoadState(d *wire.Dec) { h.seen = d.Bool() }

// --- Echo ------------------------------------------------------------------

// SaveState implements wire.StateCodec.
func (h *Echo) SaveState(e *wire.Enc) {
	e.I32(int32(h.parent))
	e.Bool(h.joined)
	e.Int(h.pending)
	e.Int(h.count)
}

// LoadState implements wire.StateCodec.
func (h *Echo) LoadState(d *wire.Dec) {
	h.parent = graph.NodeID(d.I32())
	h.joined = d.Bool()
	h.pending = d.Int()
	h.count = d.Int()
}

// --- BFS -------------------------------------------------------------------

// SaveState implements wire.StateCodec.
func (h *BFS) SaveState(e *wire.Enc) {
	e.Bool(h.set)
	e.Int(h.res.Dist)
	e.I32(int32(h.res.Parent))
	e.I32(int32(h.res.Source))
}

// LoadState implements wire.StateCodec.
func (h *BFS) LoadState(d *wire.Dec) {
	h.set = d.Bool()
	h.res.Dist = d.Int()
	h.res.Parent = graph.NodeID(d.I32())
	h.res.Source = graph.NodeID(d.I32())
}

// --- TBFS ------------------------------------------------------------------

// SaveState implements wire.StateCodec.
func (h *TBFS) SaveState(e *wire.Enc) {
	e.Int(h.dist)
	e.I32(int32(h.parent))
	e.I32(int32(h.src))
	e.Int(h.pending)
	e.Int(h.children)
	e.Bool(h.frontier)
	e.Bool(h.reported)
	e.Bool(h.isSource)
	saveNodeSet(e, h.probed)
	h.out.saveState(e)
}

// LoadState implements wire.StateCodec.
func (h *TBFS) LoadState(d *wire.Dec) {
	h.dist = d.Int()
	h.parent = graph.NodeID(d.I32())
	h.src = graph.NodeID(d.I32())
	h.pending = d.Int()
	h.children = d.Int()
	h.frontier = d.Bool()
	h.reported = d.Bool()
	h.isSource = d.Bool()
	h.probed = loadNodeSet(d)
	h.out.loadState(d)
}

// --- Leader ----------------------------------------------------------------

// SaveState implements wire.StateCodec.
func (h *Leader) SaveState(e *wire.Enc) {
	e.Int(h.epoch)
	e.Bool(h.candidate)
	e.Bool(h.done)
	keys := make([]lcKey, 0, len(h.st))
	for k := range h.st {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].level != keys[j].level {
			return keys[i].level < keys[j].level
		}
		return keys[i].cluster < keys[j].cluster
	})
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		st := h.st[k]
		e.Int(k.level)
		e.I64(int64(k.cluster))
		e.Int(st.reports)
		e.I32(int32(st.minSeen))
		e.Bool(st.sent)
		e.Bool(st.began)
		e.Bool(st.verdictIn)
	}
	h.out.saveState(e)
}

// LoadState implements wire.StateCodec.
func (h *Leader) LoadState(d *wire.Dec) {
	h.epoch = d.Int()
	h.candidate = d.Bool()
	h.done = d.Bool()
	n := int(d.U32())
	h.st = make(map[lcKey]*leadState, n)
	for i := 0; i < n && !d.Failed(); i++ {
		k := lcKey{level: d.Int(), cluster: cover.ClusterID(d.I64())}
		st := &leadState{
			reports:   d.Int(),
			minSeen:   graph.NodeID(d.I32()),
			sent:      d.Bool(),
			began:     d.Bool(),
			verdictIn: d.Bool(),
		}
		if !d.Failed() {
			h.st[k] = st
		}
	}
	h.out.loadState(d)
}

// --- MST -------------------------------------------------------------------

// SaveState implements wire.StateCodec.
func (h *MST) SaveState(e *wire.Enc) {
	e.I32(int32(h.frag))
	e.I32(int32(h.parent))
	saveNodeSet(e, h.treeNbrs)
	e.Int(h.phase)
	e.Bool(h.fragDone)

	phases := sortedIntKeys(h.st)
	e.U32(uint32(len(phases)))
	for _, k := range phases {
		st := h.st[k]
		e.Int(k)
		tests := make([]graph.NodeID, 0, len(st.tests))
		for nb := range st.tests {
			tests = append(tests, nb)
		}
		sort.Slice(tests, func(i, j int) bool { return tests[i] < tests[j] })
		e.U32(uint32(len(tests)))
		for _, nb := range tests {
			e.I32(int32(nb))
			e.I32(int32(st.tests[nb]))
		}
		e.Int(st.moeReports)
		saveMSTEdge(e, st.best)
		e.Bool(st.reported)
		e.Bool(st.decided)
		saveMSTEdge(e, st.decision)
		e.Bool(st.decisionNon)
		e.I32(int32(st.sentConnect))
		saveNodeSet(e, st.connectIn)
		e.Bool(st.merged)
		e.Bool(st.pendingNF != nil)
		if st.pendingNF != nil {
			e.Int(st.pendingNF.Phase)
			e.I32(int32(st.pendingNF.Frag))
			e.I32(int32(st.pendingNFFrom))
		}
	}

	seqs := sortedIntKeys(h.bar)
	e.U32(uint32(len(seqs)))
	for _, k := range seqs {
		b := h.bar[k]
		e.Int(k)
		e.Int(b.reports)
		e.Bool(b.sent)
		e.Bool(b.ready)
		e.Bool(b.done)
	}
	h.out.saveState(e)
}

// LoadState implements wire.StateCodec.
func (h *MST) LoadState(d *wire.Dec) {
	h.frag = graph.NodeID(d.I32())
	h.parent = graph.NodeID(d.I32())
	h.treeNbrs = loadNodeSet(d)
	h.phase = d.Int()
	h.fragDone = d.Bool()

	nPhases := int(d.U32())
	h.st = make(map[int]*mstPhase, nPhases)
	for i := 0; i < nPhases && !d.Failed(); i++ {
		k := d.Int()
		st := &mstPhase{sentConnect: -1}
		nTests := int(d.U32())
		st.tests = make(map[graph.NodeID]graph.NodeID, nTests)
		for j := 0; j < nTests && !d.Failed(); j++ {
			nb := graph.NodeID(d.I32())
			st.tests[nb] = graph.NodeID(d.I32())
		}
		st.moeReports = d.Int()
		st.best = loadMSTEdge(d)
		st.reported = d.Bool()
		st.decided = d.Bool()
		st.decision = loadMSTEdge(d)
		st.decisionNon = d.Bool()
		st.sentConnect = graph.NodeID(d.I32())
		st.connectIn = loadNodeSet(d)
		st.merged = d.Bool()
		if d.Bool() {
			nf := mstNewFrag{Phase: d.Int(), Frag: graph.NodeID(d.I32())}
			st.pendingNF = &nf
			st.pendingNFFrom = graph.NodeID(d.I32())
		}
		if !d.Failed() {
			h.st[k] = st
		}
	}

	nBars := int(d.U32())
	h.bar = make(map[int]*mstBarrier, nBars)
	for i := 0; i < nBars && !d.Failed(); i++ {
		k := d.Int()
		b := &mstBarrier{
			reports: d.Int(),
			sent:    d.Bool(),
			ready:   d.Bool(),
			done:    d.Bool(),
		}
		if !d.Failed() {
			h.bar[k] = b
		}
	}
	h.out.loadState(d)
}

func saveMSTEdge(e *wire.Enc, m mstEdge) {
	e.I64(m.W)
	e.I32(int32(m.U))
	e.I32(int32(m.V))
	e.Bool(m.None)
}

func loadMSTEdge(d *wire.Dec) mstEdge {
	return mstEdge{
		W:    d.I64(),
		U:    graph.NodeID(d.I32()),
		V:    graph.NodeID(d.I32()),
		None: d.Bool(),
	}
}
