package core

import (
	"strings"

	"repro/internal/async"
	"repro/internal/graph"
	"repro/internal/syncrun"
)

// SynchronizeUnknownBound is the Theorem 5.4 setting: no bound on T(A) is
// known. It runs doubling attempts — pulse bounds 8, 16, 32, … — summing
// time and message costs across attempts, until one attempt completes
// within its bound. The paper interleaves cover construction with the
// simulation inside a single execution; this harness restarts instead,
// which Lemma 2.5's sequential-composition argument prices identically up
// to a constant factor (Σ 2^t ≤ 2·2^T; DESIGN.md records the
// substitution). Deterministic algorithms make restarts exact replays, so
// the final outputs are unchanged.
//
// Accounting covers every attempt, not just the winner: a failed attempt's
// costs are snapshotted from the simulator (Sim.Stats) before its state
// unwinds, and PerProto merges across attempts, so the reported totals are
// the Σ 2^t sum the theorem prices. Time sums each attempt's elapsed
// simulation time (the failed attempts' full span plus the final attempt's
// time-to-output); QuiesceTime adds only the final attempt's.
func SynchronizeUnknownBound(g *graph.Graph, adv async.Adversary,
	mk func(id graph.NodeID) syncrun.Handler) (async.Result, int) {
	res, bound, _ := SynchronizeUnknownBoundWatched(g, adv, mk)
	return res, bound
}

// SynchronizeUnknownBoundWatched is SynchronizeUnknownBound plus
// fault-aware stall detection: when an attempt quiesces *without*
// hitting its pulse bound but the watchdog shows fault-induced
// starvation (undeliverable messages froze part of the pulse frontier),
// doubling stops — a larger bound cannot resurrect a message whose
// retransmit budget is spent, so continuing would bill unbounded retries
// for no progress. The returned report is the final attempt's; billing
// stays honest either way (every attempt's full costs are summed, the
// stalled attempt's included).
func SynchronizeUnknownBoundWatched(g *graph.Graph, adv async.Adversary,
	mk func(id graph.NodeID) syncrun.Handler) (async.Result, int, StallReport) {
	var total async.Result
	total.PerProto = make(map[async.Proto]uint64)
	for bound := 8; ; bound *= 2 {
		res, rep, ok := tryBound(g, bound, adv, mk)
		total.Time += res.Time
		total.Msgs += res.Msgs
		total.Acks += res.Acks
		total.Dropped += res.Dropped
		total.Retrans += res.Retrans
		total.Undeliverable += res.Undeliverable
		for p, n := range res.PerProto {
			total.PerProto[p] += n
		}
		if ok {
			total.QuiesceTime += res.QuiesceTime
			total.Outputs = res.Outputs
			return total, bound, rep
		}
		if bound > 64*g.N() {
			panic("core: unknown-bound doubling ran away")
		}
	}
}

// tryBound attempts one synchronized run; ok=false when the algorithm hit
// the pulse bound (the only recoverable panic; everything else re-panics).
// A failed attempt still reports the costs it accrued up to the abort.
// A quiesced-but-stalled attempt returns ok=true with the stall visible
// in the report: the bound was not the problem, so doubling must stop.
// Attempts run in ModeSingle: an abort unwinds mid-window in the parallel
// mode, whose partially-merged counters would make the billed totals
// depend on worker scheduling — serial event order is the definition of
// what an aborted attempt cost.
func tryBound(g *graph.Graph, bound int, adv async.Adversary,
	mk func(id graph.NodeID) syncrun.Handler) (res async.Result, rep StallReport, ok bool) {
	sim := newSynchronizedSim(Config{Graph: g, Bound: bound, Adversary: adv, Mode: async.ModeSingle}, mk)
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		msg, isStr := r.(string)
		if !isStr || !strings.Contains(msg, "bound too small") {
			panic(r)
		}
		// Bill the aborted attempt: the simulation unwinds, but its
		// counters are still readable. Time is the span the attempt ran
		// (every event up to the abort really happened).
		now, msgs, acks, perProto := sim.Stats()
		dropped, retrans, undeliv := sim.FaultStats()
		res = async.Result{Time: now, Msgs: msgs, Acks: acks, PerProto: perProto,
			Dropped: dropped, Retrans: retrans, Undeliverable: undeliv}
		ok = false
	}()
	res = sim.Run()
	return res, watchdogReport(sim, &res, bound), true
}
