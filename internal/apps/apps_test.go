package apps

import (
	"fmt"
	"testing"

	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/syncrun"
)

func TestFloodOutputsDistances(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Path(20), graph.Grid(5, 6), graph.RandomConnected(40, 100, 3)} {
		res := syncrun.New(g, func(graph.NodeID) syncrun.Handler { return &Flood{Source: 0} }).Run()
		want := g.BFS(0)
		for v := 0; v < g.N(); v++ {
			if res.Outputs[graph.NodeID(v)] != want[v] {
				t.Fatalf("node %d: %v, want %d", v, res.Outputs[graph.NodeID(v)], want[v])
			}
		}
		if res.M != uint64(2*g.M()) {
			t.Errorf("flood M = %d, want 2m = %d", res.M, 2*g.M())
		}
	}
}

func TestEchoCountsNodes(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Path(15), graph.Grid(4, 5), graph.CompleteBinaryTree(31)} {
		res := syncrun.New(g, func(graph.NodeID) syncrun.Handler { return &Echo{Root: 0} }).Run()
		if res.Outputs[0] != g.N() {
			t.Fatalf("echo root counted %v, want %d", res.Outputs[0], g.N())
		}
		total := 0
		for v := 0; v < g.N(); v++ {
			if res.Outputs[graph.NodeID(v)] == nil {
				t.Fatalf("node %d has no output", v)
			}
			total += res.Outputs[graph.NodeID(v)].(int)
		}
		// Sum of subtree sizes = sum over nodes of their depth+1 <= n^2;
		// just sanity-check every node participated.
	}
}

func TestBFSSingleSource(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Path(25), graph.Grid(6, 6), graph.RandomConnected(50, 120, 7)} {
		res := syncrun.New(g, func(graph.NodeID) syncrun.Handler { return &BFS{Sources: []graph.NodeID{0}} }).Run()
		if bad := CheckBFSOutputs(g, []graph.NodeID{0}, res.Outputs); bad >= 0 {
			t.Fatalf("BFS wrong at node %d", bad)
		}
		if res.T != g.Ecc(0) {
			t.Errorf("T = %d, want %d", res.T, g.Ecc(0))
		}
		if res.M != uint64(2*g.M()) {
			t.Errorf("M = %d, want %d", res.M, 2*g.M())
		}
	}
}

func TestBFSMultiSource(t *testing.T) {
	g := graph.Grid(7, 7)
	sources := []graph.NodeID{0, 48, 24}
	res := syncrun.New(g, func(graph.NodeID) syncrun.Handler { return &BFS{Sources: sources} }).Run()
	if bad := CheckBFSOutputs(g, sources, res.Outputs); bad >= 0 {
		t.Fatalf("multi-source BFS wrong at node %d", bad)
	}
	if res.T != g.BallRadius(sources) {
		t.Errorf("T = %d, want D1 = %d", res.T, g.BallRadius(sources))
	}
}

func mkLeader(g *graph.Graph) (func(graph.NodeID) syncrun.Handler, *cover.Layered) {
	d := g.Diameter()
	if d < 1 {
		d = 1
	}
	layered := cover.BuildLayered(g, d, nil)
	spans := LeaderSpansAll(g, layered)
	return func(graph.NodeID) syncrun.Handler {
		return &Leader{Covers: layered, SpansAll: spans}
	}, layered
}

func TestLeaderElectsGlobalMin(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Path(20),
		graph.Cycle(17),
		graph.Grid(5, 5),
		graph.RandomConnected(40, 90, 13),
		graph.Star(12),
	} {
		mk, _ := mkLeader(g)
		res := syncrun.New(g, mk).Run()
		if len(res.Outputs) != g.N() {
			t.Fatalf("only %d/%d nodes output a leader", len(res.Outputs), g.N())
		}
		for v := 0; v < g.N(); v++ {
			if res.Outputs[graph.NodeID(v)] != graph.NodeID(0) {
				t.Fatalf("node %d elected %v, want 0", v, res.Outputs[graph.NodeID(v)])
			}
		}
	}
}

func TestLeaderComplexityShape(t *testing.T) {
	// M(A) should stay Õ(m): check it doesn't explode relative to m.
	g := graph.RandomConnected(60, 150, 21)
	mk, _ := mkLeader(g)
	res := syncrun.New(g, mk).Run()
	if res.M > uint64(200*g.M()) {
		t.Fatalf("leader election used %d messages on m=%d", res.M, g.M())
	}
}

func mkMST(g *graph.Graph) func(graph.NodeID) syncrun.Handler {
	tree := cover.BFSTreeCluster(g, 0)
	weights := make([]int64, g.M())
	for i := range weights {
		weights[i] = g.Weight(graph.EdgeID(i))
	}
	return func(graph.NodeID) syncrun.Handler {
		return &MST{Barrier: tree, Weights: weights}
	}
}

// checkMST verifies outputs against Kruskal.
func checkMST(t *testing.T, g *graph.Graph, outputs map[graph.NodeID]any) {
	t.Helper()
	want := make(map[[2]graph.NodeID]bool)
	for _, id := range g.KruskalMST() {
		want[[2]graph.NodeID{g.EdgeU(id), g.EdgeV(id)}] = true
	}
	var leader graph.NodeID = -1
	got := make(map[[2]graph.NodeID]bool)
	for v := 0; v < g.N(); v++ {
		out, ok := outputs[graph.NodeID(v)]
		if !ok {
			t.Fatalf("node %d has no MST output", v)
		}
		res := out.(MSTResult)
		if res.Parent < 0 {
			if leader >= 0 {
				t.Fatalf("two leaders: %d and %d", leader, v)
			}
			leader = graph.NodeID(v)
		}
		for _, nb := range res.TreeNeighbors {
			key := [2]graph.NodeID{graph.NodeID(v), nb}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			got[key] = true
		}
	}
	if leader < 0 {
		t.Fatal("no leader in MST outputs")
	}
	if len(got) != len(want) {
		t.Fatalf("MST has %d edges, want %d", len(got), len(want))
	}
	for e := range want {
		if !got[e] {
			t.Fatalf("MST missing edge %v", e)
		}
	}
}

func TestMSTMatchesKruskal(t *testing.T) {
	cases := []*graph.Graph{
		graph.WithRandomWeights(graph.Path(12), 1),
		graph.WithRandomWeights(graph.Cycle(10), 2),
		graph.WithRandomWeights(graph.Grid(4, 5), 3),
		graph.WithRandomWeights(graph.Complete(8), 4),
		graph.WithRandomWeights(graph.RandomConnected(30, 80, 5), 6),
		graph.WithRandomWeights(graph.Dumbbell(5, 4), 7),
	}
	for i, g := range cases {
		t.Run(fmt.Sprintf("case%d", i), func(t *testing.T) {
			res := syncrun.New(g, mkMST(g)).Run()
			checkMST(t, g, res.Outputs)
		})
	}
}

func TestMSTSeedSweep(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		g := graph.WithRandomWeights(graph.RandomConnected(25, 60, seed), seed*31)
		res := syncrun.New(g, mkMST(g)).Run()
		checkMST(t, g, res.Outputs)
	}
}

func TestMSTMessageShape(t *testing.T) {
	// Õ(m): messages should scale like m·log n, not m·n.
	g := graph.WithRandomWeights(graph.RandomConnected(50, 200, 9), 17)
	res := syncrun.New(g, mkMST(g)).Run()
	if res.M > uint64(60*g.M()) {
		t.Fatalf("MST used %d messages on m=%d", res.M, g.M())
	}
}
