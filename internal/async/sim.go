package async

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/wire"
)

// Sim is a deterministic discrete-event simulation of one asynchronous
// execution: a graph, one Handler per node, and a delay adversary.
//
// All per-link state is dense: the graph's CSR link index (graph.LinkID)
// addresses a flat []outbox and []uint64 transmission-sequence array, both
// pre-sized at New, and message bodies are wire.Body values end to end —
// the send/dispatch/deliver hot path performs no map operations, no
// interface boxing, and no steady-state allocations. Variable-length
// segments come from a per-run arena and are recycled when each message's
// lifecycle ends (after the sender's Ack callback).
type Sim struct {
	g        *graph.Graph
	adv      Adversary
	handlers []Handler
	nodes    []Node

	events  eventQueue
	eventSq uint64
	now     float64

	// One outbox and one transmission counter per directed link, indexed
	// by graph.LinkID.
	out   []outbox
	txSeq []uint64

	outputs        []any
	hasOut         []bool
	outCount       int
	lastOutputTime float64
	msgs           uint64
	acks           uint64
	perProto       map[Proto]uint64

	maxEvents uint64
	steps     uint64
	running   bool

	// arena backs Body.Seg segments; sent segments return to it after the
	// ack completes the message's lifecycle.
	arena wire.Arena
}

// Result summarizes one asynchronous run.
type Result struct {
	// Time is the normalized time (τ = 1) at which the last node produced
	// its output — the paper's time complexity measure (Appendix B).
	Time float64
	// QuiesceTime is when the last event of any kind fired (auxiliary
	// cleanup may continue after outputs, §1.3.1).
	QuiesceTime float64
	// Msgs counts algorithm messages (excludes link-level acks).
	Msgs uint64
	// Acks counts link-level acknowledgments (the model's 2x factor).
	Acks uint64
	// PerProto breaks Msgs down by protocol tag.
	PerProto map[Proto]uint64
	// Outputs maps node -> output for nodes that called Output.
	Outputs map[graph.NodeID]any
}

// New builds a simulation. mk is called once per node, in ascending node
// order, to create that node's Handler. The graph is finalized if it was
// not already (the dense link index requires it).
func New(g *graph.Graph, adv Adversary, mk func(id graph.NodeID) Handler) *Sim {
	g.Finalize()
	s := &Sim{
		g:         g,
		adv:       adv,
		handlers:  make([]Handler, g.N()),
		nodes:     make([]Node, g.N()),
		out:       make([]outbox, g.Links()),
		txSeq:     make([]uint64, g.Links()),
		outputs:   make([]any, g.N()),
		hasOut:    make([]bool, g.N()),
		perProto:  make(map[Proto]uint64),
		maxEvents: 1 << 34,
	}
	for i := 0; i < g.N(); i++ {
		id := graph.NodeID(i)
		s.nodes[i] = Node{id: id, sim: s}
		s.handlers[i] = mk(id)
	}
	return s
}

// SetMaxEvents caps the number of processed events; exceeding it panics
// (runaway protocols are bugs, not conditions to limp through).
func (s *Sim) SetMaxEvents(limit uint64) { s.maxEvents = limit }

// Handler returns node v's handler (tests use this to inspect final state).
func (s *Sim) Handler(v graph.NodeID) Handler { return s.handlers[v] }

// Stats snapshots the costs accrued so far: the current simulation time
// and the message/ack counters, with a copy of the per-protocol breakdown.
// It is safe to call mid-run — core.SynchronizeUnknownBound uses it to
// bill doubling attempts that abort before Run returns (Theorem 5.4's
// Σ 2^t accounting).
func (s *Sim) Stats() (now float64, msgs, acks uint64, perProto map[Proto]uint64) {
	pp := make(map[Proto]uint64, len(s.perProto))
	for p, n := range s.perProto {
		pp[p] = n
	}
	return s.now, s.msgs, s.acks, pp
}

// Run executes the simulation to quiescence and returns the result.
func (s *Sim) Run() Result {
	if s.running {
		panic("async: Run called twice")
	}
	s.running = true
	for i := range s.handlers {
		s.handlers[i].Init(&s.nodes[i])
	}
	for !s.events.empty() {
		ev := s.events.pop()
		if ev.t < s.now {
			panic(fmt.Sprintf("async: time went backwards: %g < %g", ev.t, s.now))
		}
		s.now = ev.t
		s.steps++
		if s.steps > s.maxEvents {
			panic(fmt.Sprintf("async: exceeded %d events at t=%g (livelock?)", s.maxEvents, s.now))
		}
		switch ev.kind {
		case evDeliver:
			s.handlers[ev.dst].Recv(&s.nodes[ev.dst], ev.src, ev.msg)
			// Ack travels back; its arrival frees the link.
			s.acks++
			back := s.g.ReverseLink(ev.link)
			d := s.adv.Delay(ev.dst, ev.src, s.txSeq[back], ev.msg.Proto)
			s.txSeq[back]++
			s.schedule(event{t: s.now + d, kind: evAckArrive, link: ev.link, src: ev.src, dst: ev.dst, msg: ev.msg})
		case evAckArrive:
			// ev.src is the original sender whose link is now free.
			ob := &s.out[ev.link]
			ob.busy = false
			s.dispatch(ev.src, ev.dst, ev.link, ob)
			s.handlers[ev.src].Ack(&s.nodes[ev.src], ev.dst, ev.msg)
			// The ack ends the message's lifecycle; recycle any segment
			// (receivers copy data out if they keep it). No-op without one.
			s.arena.Release(ev.msg.Body.Seg)
		}
	}
	outputs := make(map[graph.NodeID]any, s.outCount)
	for i, has := range s.hasOut {
		if has {
			outputs[graph.NodeID(i)] = s.outputs[i]
		}
	}
	return Result{
		Time:        s.lastOutputTime,
		QuiesceTime: s.now,
		Msgs:        s.msgs,
		Acks:        s.acks,
		PerProto:    s.perProto,
		Outputs:     outputs,
	}
}

func (s *Sim) send(from, to graph.NodeID, m Msg) {
	l := s.g.LinkBetween(from, to)
	if l < 0 {
		panic(fmt.Sprintf("async: node %d sending to non-neighbor %d", from, to))
	}
	s.msgs++
	s.perProto[m.Proto]++
	ob := &s.out[l]
	ob.push(m)
	if !ob.busy {
		s.dispatch(from, to, l, ob)
	}
}

// dispatch injects the next scheduled message of the (from,to) link, if any.
func (s *Sim) dispatch(from, to graph.NodeID, l graph.LinkID, ob *outbox) {
	m, ok := ob.pop()
	if !ok {
		return
	}
	ob.busy = true
	d := s.adv.Delay(from, to, s.txSeq[l], m.Proto)
	s.txSeq[l]++
	if d <= 0 || d > 1 {
		panic(fmt.Sprintf("async: adversary %q returned delay %g outside (0,1]", s.adv.Name(), d))
	}
	s.schedule(event{t: s.now + d, kind: evDeliver, link: l, src: from, dst: to, msg: m})
}

func (s *Sim) setOutput(id graph.NodeID, v any) {
	if !s.hasOut[id] {
		s.hasOut[id] = true
		s.outCount++
		if s.now > s.lastOutputTime {
			s.lastOutputTime = s.now
		}
	}
	s.outputs[id] = v
}

func (s *Sim) schedule(ev event) {
	ev.seq = s.eventSq
	s.eventSq++
	s.events.push(ev)
}

const (
	evDeliver = iota + 1
	evAckArrive
)

type event struct {
	t    float64
	seq  uint64
	kind int
	link graph.LinkID // the forward link src→dst
	src  graph.NodeID // sender of the original message
	dst  graph.NodeID // receiver of the original message
	msg  Msg
}
