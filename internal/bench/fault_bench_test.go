package bench

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/syncrun"
)

// BenchmarkFaultSweep is the committed BENCH_8 sweep: the synchronized
// BFS under a crash × drop × budget grid of fault schedules (E17's
// benchmark sibling). Each row reports the delivery ledger — delivered,
// dropped, retransmitted, undeliverable — plus the pulse watchdog's
// stalled-node count, and for crash schedules the self-healing cost:
// incremental layered-cover repair vs a from-scratch masked rebuild
// (repairMs must stay below rebuildMs; the repaired cover is checked
// deep-equal to the rebuild before any metric is reported).
func BenchmarkFaultSweep(b *testing.B) {
	g := graph.Grid(16, 16)
	mk := bfsMk([]graph.NodeID{0})
	bound := syncrun.New(g, mk).Run().Rounds + 2
	specs := []string{
		"none",
		"drop:p=0.02,budget=3",
		"drop:p=0.1,budget=3",
		"drop:p=0.1,budget=1",
		"drop:p=0.1,budget=0",
		"crash:p=0.01,budget=3",
		"crash:p=0.01,drop:p=0.1,budget=3",
		"crash:p=0.02,drop:p=0.1,budget=1",
	}
	for _, spec := range specs {
		b.Run(fmt.Sprintf("grid16x16/faults=%s", spec), func(b *testing.B) {
			fs, err := async.ParseFaultSpec(spec)
			if err != nil {
				b.Fatal(err)
			}
			if fs != nil && fs.Seed == 0 {
				fs.Seed = 7
			}
			adv := async.WithFaults(async.SeededRandom{Seed: 7}, fs)
			var res async.Result
			var rep core.StallReport
			for i := 0; i < b.N; i++ {
				res, rep = core.SynchronizeWatched(core.Config{Graph: g, Bound: bound, Adversary: adv}, mk)
			}
			b.ReportMetric(float64(res.Msgs-res.Undeliverable), "delivered")
			b.ReportMetric(float64(res.Dropped), "dropped")
			b.ReportMetric(float64(res.Retrans), "retrans")
			b.ReportMetric(float64(res.Undeliverable), "undeliv")
			stalled := 0.0
			if rep.IsStalled() {
				stalled = 1
			}
			b.ReportMetric(stalled, "stalled")
			b.ReportMetric(float64(len(res.Outputs)), "outputs")
			b.ReportMetric(res.Time, "simTime")
			if fs.Active() && fs.CrashP > 0 {
				repairMs, rebuildMs, reuse := faultRepairMetrics(b, g, fs)
				b.ReportMetric(repairMs, "repairMs")
				b.ReportMetric(rebuildMs, "rebuildMs")
				b.ReportMetric(reuse, "clusterReuse")
			}
		})
	}
}

// faultRepairMetrics prices incremental repair against a from-scratch
// masked rebuild for the schedule's epoch-0 crashed set, failing the
// benchmark if the two covers diverge.
func faultRepairMetrics(b *testing.B, g *graph.Graph, fs *async.FaultSchedule) (repairMs, rebuildMs, reuse float64) {
	b.Helper()
	const d = 8
	faulted := fs.CrashedSet(g.N(), 0)
	if len(faulted) == 0 {
		return 0, 0, 1
	}
	base := cover.BuildLayered(g, d, nil)
	t0 := time.Now()
	repaired, stats := cover.RepairLayered(base, faulted)
	repairMs = float64(time.Since(t0).Microseconds()) / 1000
	alive := make([]bool, g.N())
	for i := range alive {
		alive[i] = true
	}
	for _, v := range faulted {
		alive[v] = false
	}
	t1 := time.Now()
	rebuilt := cover.BuildLayeredMasked(g, d, nil, alive)
	rebuildMs = float64(time.Since(t1).Microseconds()) / 1000
	if !reflect.DeepEqual(repaired, rebuilt) {
		b.Fatal("incremental repair diverged from the from-scratch rebuild")
	}
	var total, reused int
	for _, st := range stats {
		total += st.Reused + st.Dirty
		reused += st.Reused
	}
	if total > 0 {
		reuse = float64(reused) / float64(total)
	}
	return repairMs, rebuildMs, reuse
}
