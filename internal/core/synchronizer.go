package core

import (
	"fmt"
	"sort"

	"repro/internal/async"
	"repro/internal/cover"
	"repro/internal/gather"
	"repro/internal/graph"
	"repro/internal/reg"
	"repro/internal/syncrun"
	"repro/internal/wire"
)

// nodeCore is the per-node synchronizer engine. It owns the embedded
// synchronous algorithm, the execution-forest state (vnodes), and drives
// the per-cover-level registration and barrier modules.
type nodeCore struct {
	sched   *Schedule
	layered *cover.Layered
	algo    syncrun.Handler

	regMods map[int]*reg.Module
	barMods map[int]*gather.Module

	vnodes      map[int]*vnode
	recvd       map[int][]syncrun.Incoming
	recvdClosed map[int]bool

	started        bool
	originator     bool
	initSends      []capturedSend
	barrierRegWait int
	cs             congestStamp
}

type capturedSend struct {
	to   graph.NodeID
	body wire.Body
}

var _ async.Module = (*nodeCore)(nil)
var _ reg.Callbacks = (*nodeCore)(nil)
var _ gather.Callbacks = (*nodeCore)(nil)

// Start implements async.Module: run Init in capture mode, then join the
// originator barriers of §4.2 (one register-barrier and one
// dereg-barrier gather session per originator pulse).
func (c *nodeCore) Start(n *async.Node) {
	if c.started {
		return // registered under two protos; Mux starts each once
	}
	c.started = true
	c.algo.Init(c.newAPI(n, nil, true))
	c.originator = len(c.initSends) > 0
	c.barrierRegWait = len(c.sched.Barrier())
	for _, p := range c.sched.Barrier() {
		bm := c.barMods[c.sched.CoverLevel(p)]
		bm.MarkDone(n, barrierRegSession(p))
		if c.originator {
			bm.Begin(n, barrierDeregSession(p))
		} else {
			bm.MarkDone(n, barrierDeregSession(p))
		}
	}
	if c.barrierRegWait == 0 && c.originator {
		c.releaseOriginator(n)
	}
}

func barrierRegSession(p int) int   { return 2 * p }
func barrierDeregSession(p int) int { return 2*p + 1 }

// releaseOriginator creates the pulse-0 vnode and sends the buffered Init
// messages (all originator-pulse registrations are confirmed).
func (c *nodeCore) releaseOriginator(n *async.Node) {
	v := newVnode(c.sched, 0)
	c.vnodes[0] = v
	v.evaluated = true
	for _, s := range c.initSends {
		c.sendAlgo(n, v, s.to, s.body)
	}
	v.sentAny = true
	c.initSends = nil
	if c.vnodes[1] == nil {
		c.createVnode(n, 1, -1, true)
	}
	c.afterAnswersMaybe(n, v)
}

// createVnode tentatively instantiates (me, p) with the given parent and
// emits the creation report (q = p, ready) plus the chosen reply.
func (c *nodeCore) createVnode(n *async.Node, p int, parentPhys graph.NodeID, parentSelf bool) *vnode {
	if p > c.sched.B {
		panic(fmt.Sprintf("core: node %d reached pulse %d beyond bound %d", n.ID(), p, c.sched.B))
	}
	v := newVnode(c.sched, p)
	v.parentPhys = parentPhys
	v.parentSelf = parentSelf
	v.hasParent = true
	c.vnodes[p] = v
	if parentSelf {
		parent := c.vnodes[p-1]
		parent.selfChild = true
		c.onChildStatus(n, parent, statusMsg{Q: p, ChildPulse: p, Ready: true}, -1, true)
	} else {
		n.Send(parentPhys, async.Msg{Proto: ProtoAlgo, Stage: p - 1, Body: encReply(replyMsg{Pulse: p - 1, Chosen: true})})
		n.Send(parentPhys, async.Msg{Proto: ProtoTree, Stage: p, Body: encStatus(statusMsg{Q: p, ChildPulse: p, Ready: true})})
	}
	return v
}

// sendAlgo transmits one synchronous-algorithm message of pulse v.pulse,
// framed as kindAlgo (the pulse rides in P, the payload stays in place).
func (c *nodeCore) sendAlgo(n *async.Node, v *vnode, to graph.NodeID, body wire.Body) {
	v.outstandingReplies++
	n.Send(to, async.Msg{Proto: ProtoAlgo, Stage: v.pulse, Body: frameAlgo(v.pulse, body)})
}

// Recv implements async.Module for ProtoAlgo and ProtoTree.
func (c *nodeCore) Recv(n *async.Node, from graph.NodeID, m async.Msg) {
	switch m.Body.Kind {
	case kindAlgo:
		pulse, inner := m.Body.Unframe()
		c.onAlgoMsg(n, from, pulse, inner)
	case kindReply:
		c.onReply(n, from, decReply(m.Body))
	case kindStatus:
		body := decStatus(m.Body)
		parent := c.vnodes[body.ChildPulse-1]
		if parent == nil {
			panic(fmt.Sprintf("core: node %d got report for absent vnode %d", n.ID(), body.ChildPulse-1))
		}
		c.onChildStatus(n, parent, body, from, false)
	case kindGA:
		body := decGA(m.Body)
		v := c.vnodes[body.ChildPulse]
		if v == nil {
			panic(fmt.Sprintf("core: node %d got GA(%d) for absent vnode %d", n.ID(), body.Q, body.ChildPulse))
		}
		c.onGA(n, v, body.Q)
	default:
		panic(fmt.Sprintf("core: node %d got unknown payload kind %d", n.ID(), m.Body.Kind))
	}
}

// Ack implements async.Module.
func (c *nodeCore) Ack(*async.Node, graph.NodeID, async.Msg) {}

func (c *nodeCore) onAlgoMsg(n *async.Node, from graph.NodeID, pulse int, body wire.Body) {
	p := pulse + 1
	if c.recvdClosed[pulse] {
		panic(fmt.Sprintf("core: node %d got pulse-%d message after Go-Ahead(%d) — synchronization broken", n.ID(), pulse, p))
	}
	// The batch is retained until Go-Ahead(p) evaluates the pulse — long
	// past the carrying message's lifecycle — which is why frameAlgo
	// rejects seg-carrying algorithm payloads at the send side.
	c.recvd[pulse] = append(c.recvd[pulse], syncrun.Incoming{From: from, Body: body})
	if c.vnodes[p] != nil {
		// Already triggered: decline.
		n.Send(from, async.Msg{Proto: ProtoAlgo, Stage: pulse, Body: encReply(replyMsg{Pulse: pulse, Chosen: false})})
		return
	}
	c.createVnode(n, p, from, false)
}

func (c *nodeCore) onReply(n *async.Node, from graph.NodeID, r replyMsg) {
	v := c.vnodes[r.Pulse]
	if v == nil {
		panic(fmt.Sprintf("core: node %d got reply for absent vnode %d", n.ID(), r.Pulse))
	}
	if r.Chosen {
		v.childPhys = append(v.childPhys, from)
	}
	v.outstandingReplies--
	if v.outstandingReplies < 0 {
		panic(fmt.Sprintf("core: node %d got surplus reply for pulse %d", n.ID(), r.Pulse))
	}
	c.afterAnswersMaybe(n, v)
}

// afterAnswersMaybe fires the q-resolutions that were waiting for the
// children set to become final.
func (c *nodeCore) afterAnswersMaybe(n *async.Node, v *vnode) {
	if !v.answersDone() {
		return
	}
	qs := make([]int, 0, len(v.q))
	for q := range v.q {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	for _, q := range qs {
		c.tryResolve(n, v, v.q[q])
	}
}

func (c *nodeCore) onChildStatus(n *async.Node, v *vnode, s statusMsg, fromPhys graph.NodeID, fromSelf bool) {
	qs := v.qstate(s.Q)
	qs.reports++
	if s.Ready {
		qs.anyReady = true
		if fromSelf {
			qs.readySelf = true
		} else {
			qs.readyPhys = append(qs.readyPhys, fromPhys)
		}
	}
	c.tryResolve(n, v, qs)
}

// tryResolve completes the q-status at v once answers and child reports
// are all in, then performs the §4.1.2 actions: deregister (consumer),
// register-and-gate (prev(q) pulse), and forward the report.
func (c *nodeCore) tryResolve(n *async.Node, v *vnode, qs *qstate) {
	if qs.resolved || !v.answersDone() || qs.reports < v.childCount() {
		return
	}
	if qs.reports > v.childCount() {
		panic(fmt.Sprintf("core: node %d pulse %d got %d reports for %d children (q=%d)",
			n.ID(), v.pulse, qs.reports, v.childCount(), qs.q))
	}
	qs.resolved = true
	qs.ready = qs.anyReady

	if c.sched.Consumer(v.pulse, qs.q) {
		c.consumeStatus(n, v, qs)
		return
	}
	sessions := c.sched.RegisterSessions(v.pulse, qs.q)
	if qs.ready && len(sessions) > 0 {
		qs.gateOutstanding = len(sessions)
		for _, p := range sessions {
			c.registerSession(n, v, p)
		}
		return
	}
	c.forwardStatus(n, v, qs)
}

// registerSession joins every cluster of session p's cover level.
func (c *nodeCore) registerSession(n *async.Node, v *vnode, p int) {
	lvl := c.sched.CoverLevel(p)
	ids := c.layered.Level(lvl).MemberOf(n.ID())
	if len(ids) == 0 {
		panic(fmt.Sprintf("core: node %d is in no cluster at level %d", n.ID(), lvl))
	}
	v.regOutstanding[p] = len(ids)
	for _, cid := range ids {
		c.regMods[lvl].Register(n, cid, p)
	}
}

// consumeStatus handles resolution at the convergecast top (π = prev2(q)):
// deregister session q (wave pulses) or complete the dereg barrier
// (originator pulses).
func (c *nodeCore) consumeStatus(n *async.Node, v *vnode, qs *qstate) {
	q := qs.q
	if v.pulse == 0 {
		if !c.sched.IsBarrier(q) {
			panic(fmt.Sprintf("core: pulse-0 consumer for non-barrier pulse %d", q))
		}
		c.barMods[c.sched.CoverLevel(q)].MarkDone(n, barrierDeregSession(q))
		return
	}
	if !v.registered[q] {
		// Never registered: prev(q) was empty below us, so q is too; no
		// Go-Ahead is owed to this subtree.
		if qs.ready {
			panic(fmt.Sprintf("core: node %d pulse %d resolved q=%d ready without registration", n.ID(), v.pulse, q))
		}
		return
	}
	lvl := c.sched.CoverLevel(q)
	ids := c.layered.Level(lvl).MemberOf(n.ID())
	v.gaOutstanding[q] = len(ids)
	for _, cid := range ids {
		c.regMods[lvl].Deregister(n, cid, q)
	}
}

// forwardStatus sends the resolved q-report to the execution-forest parent.
func (c *nodeCore) forwardStatus(n *async.Node, v *vnode, qs *qstate) {
	if qs.forwarded {
		return
	}
	qs.forwarded = true
	report := statusMsg{Q: qs.q, ChildPulse: v.pulse, Ready: qs.ready}
	if v.parentSelf {
		c.onChildStatus(n, c.vnodes[v.pulse-1], report, -1, true)
		return
	}
	n.Send(v.parentPhys, async.Msg{Proto: ProtoTree, Stage: qs.q, Body: encStatus(report)})
}

// onGA handles Go-Ahead(q) at vnode v (pulse <= q): evaluate when this is
// the target pulse, otherwise route down to q-ready children.
func (c *nodeCore) onGA(n *async.Node, v *vnode, q int) {
	if v.pulse == q {
		c.evaluate(n, v)
		return
	}
	c.propagateGA(n, v, q)
}

func (c *nodeCore) propagateGA(n *async.Node, v *vnode, q int) {
	qs := v.qstate(q)
	if !qs.resolved {
		panic(fmt.Sprintf("core: node %d pulse %d forwarding GA(%d) before resolution", n.ID(), v.pulse, q))
	}
	for _, w := range qs.readyPhys {
		n.Send(w, async.Msg{Proto: ProtoTree, Stage: q, Body: encGA(gaMsg{Q: q, ChildPulse: v.pulse + 1})})
	}
	if qs.readySelf {
		c.onGA(n, c.vnodes[v.pulse+1], q)
	}
}

// evaluate runs the synchronous algorithm's pulse at v (Go-Ahead(pulse)
// arrived: every pulse <= v.pulse-1 message is in hand, Lemma 5.1).
func (c *nodeCore) evaluate(n *async.Node, v *vnode) {
	if v.evaluated {
		panic(fmt.Sprintf("core: node %d pulse %d evaluated twice", n.ID(), v.pulse))
	}
	v.evaluated = true
	p := v.pulse
	batch := c.recvd[p-1]
	c.recvdClosed[p-1] = true
	sort.Slice(batch, func(i, j int) bool { return batch[i].From < batch[j].From })
	api := c.newAPI(n, v, false)
	c.algo.Pulse(api, p, batch)
	if v.sentAny {
		if p == c.sched.B {
			panic(fmt.Sprintf("core: node %d sent at pulse %d = bound — bound too small", n.ID(), p))
		}
		if c.vnodes[p+1] == nil {
			c.createVnode(n, p+1, -1, true)
		}
	}
	c.afterAnswersMaybe(n, v)
}

// Registered implements reg.Callbacks: one cluster of a wave session
// confirmed; when the last does, the gated q-report is released.
func (c *nodeCore) Registered(n *async.Node, _ cover.ClusterID, session int) {
	v := c.vnodes[prevPrev(session)]
	v.regOutstanding[session]--
	if v.regOutstanding[session] > 0 {
		return
	}
	v.registered[session] = true
	qs := v.qstate(prevOf(session))
	qs.gateOutstanding--
	if qs.gateOutstanding == 0 {
		c.forwardStatus(n, v, qs)
	}
}

// GoAhead implements reg.Callbacks: one cluster's Go-Ahead for a wave
// session; when the last arrives, GA(session) flows down the forest.
func (c *nodeCore) GoAhead(n *async.Node, _ cover.ClusterID, session int) {
	v := c.vnodes[prevPrev(session)]
	v.gaOutstanding[session]--
	if v.gaOutstanding[session] > 0 {
		return
	}
	c.propagateGA(n, v, session)
}

// NeighborhoodDone implements gather.Callbacks for the originator barriers.
func (c *nodeCore) NeighborhoodDone(n *async.Node, session int) {
	if session%2 == 0 { // register barrier
		c.barrierRegWait--
		if c.barrierRegWait == 0 && c.originator {
			c.releaseOriginator(n)
		}
		return
	}
	// Dereg barrier: Go-Ahead(p) for this originator.
	if !c.originator {
		return
	}
	p := (session - 1) / 2
	c.propagateGA(n, c.vnodes[0], p)
}
