package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"repro/internal/shard"
)

func TestMain(m *testing.M) {
	// The sharded-footprint tests launch worker processes by re-execing
	// this test binary; MaybeWorker turns those children into shard
	// workers and never returns in them.
	shard.MaybeWorker()
	os.Exit(m.Run())
}

// TestShardOptionsInvariance is the -shards=1 contract: turning the shard
// option on must change nothing outside E14's extra rows, so the
// deterministic experiments' tables and JSON are byte-identical with and
// without it.
func TestShardOptionsInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweeps")
	}
	var plain, sharded bytes.Buffer
	if err := Run(&plain, deterministicSubset, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := Run(&sharded, deterministicSubset, Options{Shards: 1}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), sharded.Bytes()) {
		t.Fatalf("-shards=1 changed deterministic tables:\n--- plain ---\n%s\n--- shards=1 ---\n%s",
			plain.String(), sharded.String())
	}

	var plainJSON, shardedJSON bytes.Buffer
	if err := Run(&plainJSON, deterministicSubset, Options{JSON: true}); err != nil {
		t.Fatal(err)
	}
	if err := Run(&shardedJSON, deterministicSubset, Options{JSON: true, Shards: 1}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plainJSON.Bytes(), shardedJSON.Bytes()) {
		t.Fatal("-shards=1 changed deterministic JSON records")
	}

	if err := Run(new(bytes.Buffer), nil, Options{Shards: -1}); err == nil {
		t.Fatal("negative shards must fail Run")
	}
	if err := Run(new(bytes.Buffer), nil, Options{Shards: 99}); err == nil {
		t.Fatal("out-of-range shards must fail Run")
	}
}

// TestE14ShardRows runs E14 with the shard option and checks the extra
// rows: one per case, labeled with the shard count, det (the DeepEqual of
// the merged sharded Result against the serial engine) always true. K=1
// is the degenerate full-protocol run whose byte-identity the -shards=1
// flag promises.
func TestE14ShardRows(t *testing.T) {
	if testing.Short() {
		t.Skip("engine sweeps with sharded reruns")
	}
	for _, k := range []int{1, 2} {
		var buf bytes.Buffer
		if err := Run(&buf, []string{"E14"}, Options{JSON: true, Shards: k}); err != nil {
			t.Fatal(err)
		}
		var out Output
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		if len(out.Experiments) != 1 {
			t.Fatalf("got %d experiments", len(out.Experiments))
		}
		shardRows := 0
		for _, r := range out.Experiments[0].Rows {
			ks, ok := r["shards"]
			if !ok {
				continue
			}
			shardRows++
			if got := ks.(float64); int(got) != k {
				t.Errorf("shard row has shards=%v, want %d", ks, k)
			}
			if det, _ := r["deterministic"].(bool); !det {
				t.Errorf("shard row %v not byte-identical to the serial engine", r["graph"])
			}
		}
		if shardRows == 0 {
			t.Fatalf("E14 with Shards=%d produced no shard rows", k)
		}
	}
}

// TestFootprintPinsSharded is TestFootprintPins' multi-process companion:
// with the graph split across K worker processes, each worker's
// self-reported graph plane must still respect the per-link pin (the
// sub-CSR view carries the same tables plus one boundary flag per link),
// and each settled process heap must sit far below the smoke ceiling —
// the per-process memory promise that makes K-way sharding a footprint
// win rather than a K-fold copy.
func TestFootprintPinsSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	const spec = "grid3d:32x32x32"
	rep, err := shard.Run(shard.Config{
		GraphSpec: spec,
		Workload:  "flood",
		Adversary: "fixed:1",
		Shards:    2,
		Launch:    shard.LaunchProcess,
		CeilingMB: smokeHeapCeilingMB,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := mustSpec(spec)
	if rep.Result.Msgs != uint64(g.Links()) {
		t.Errorf("sharded flood msgs = %d, want %d", rep.Result.Msgs, g.Links())
	}
	nodes := 0
	for i, si := range rep.Shards {
		nodes += si.Nodes
		if si.Links == 0 {
			t.Fatalf("shard %d reports no links", i)
		}
		perLink := float64(si.GraphBytes) / float64(si.Links)
		if perLink > pinGraphBytesPerLink*footprintHeadroom {
			t.Errorf("shard %d graph plane %.2f B/link, pin %.1f (+10%% ceiling %.1f)",
				i, perLink, pinGraphBytesPerLink, pinGraphBytesPerLink*footprintHeadroom)
		}
		if si.HeapMB <= 0 || si.HeapMB > smokeHeapCeilingMB {
			t.Errorf("shard %d settled heap %d MB outside (0, %d]", i, si.HeapMB, smokeHeapCeilingMB)
		}
	}
	if nodes != g.N() {
		t.Errorf("shards hold %d nodes, graph has %d", nodes, g.N())
	}
}
