// Package apps provides the event-driven synchronous algorithms the paper
// feeds to the synchronizer: flooding/echo, single- and multi-source BFS,
// the epoch-based leader election of §6, and a Borůvka-style minimum
// spanning tree. All of them follow the event-driven interpretation of
// Appendix B — no node ever references the round number; every send is
// triggered by a receive (or by Init).
package apps

import (
	"repro/internal/graph"
	"repro/internal/syncrun"
	"repro/internal/wire"
)

// Flood broadcasts a token from Source; every node outputs the pulse at
// which the token reached it (its BFS distance). T = ecc(Source), M = 2m.
type Flood struct {
	Source graph.NodeID
	seen   bool
}

var _ syncrun.Handler = (*Flood)(nil)

// Init implements syncrun.Handler.
func (h *Flood) Init(n syncrun.API) {
	if n.ID() == h.Source {
		h.seen = true
		n.Output(0)
		for _, nb := range n.Neighbors() {
			n.Send(nb.Node, wire.Tag(kindFlood))
		}
	}
}

// Pulse implements syncrun.Handler.
func (h *Flood) Pulse(n syncrun.API, p int, recvd []syncrun.Incoming) {
	if h.seen || len(recvd) == 0 {
		return
	}
	h.seen = true
	n.Output(p)
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, wire.Tag(kindFlood))
	}
}

// Echo floods a token from Root and converges acknowledgments back up the
// resulting tree; every node outputs its subtree size, the root's output
// is n. Crossing tokens answer each other, so each edge carries at most
// one message per direction per pulse.
type Echo struct {
	Root    graph.NodeID
	parent  graph.NodeID
	joined  bool
	pending int
	count   int
}

var _ syncrun.Handler = (*Echo)(nil)

// Init implements syncrun.Handler.
func (h *Echo) Init(n syncrun.API) {
	h.parent = -1
	if n.ID() == h.Root {
		h.joined = true
		h.count = 1
		h.pending = n.Degree()
		for _, nb := range n.Neighbors() {
			n.Send(nb.Node, wire.Tag(kindEchoToken))
		}
	}
}

// Pulse implements syncrun.Handler.
func (h *Echo) Pulse(n syncrun.API, p int, recvd []syncrun.Incoming) {
	for _, in := range recvd {
		switch in.Body.Kind {
		case kindEchoToken:
			if h.joined {
				h.pending-- // crossing token answers ours
				continue
			}
			h.joined = true
			h.parent = in.From
			h.count = 1
			for _, nb := range n.Neighbors() {
				if nb.Node != h.parent {
					n.Send(nb.Node, wire.Tag(kindEchoToken))
					h.pending++
				}
			}
		case kindEchoCount:
			h.pending--
			h.count += int(in.Body.A)
		}
	}
	if h.joined && h.pending == 0 && !n.HasOutput() {
		if h.parent >= 0 {
			n.Send(h.parent, wire.Body{Kind: kindEchoCount, A: int64(h.count)})
		}
		n.Output(h.count)
	}
}
