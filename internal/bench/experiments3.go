package bench

import (
	"reflect"
	"time"

	"repro/internal/apps"
	"repro/internal/graph"
	"repro/internal/syncrun"
)

// e13EngineThroughput measures the dense lockstep engine itself: one BFS
// per row, wall-clock per execution mode, messages per second in Single
// mode, and a determinism check that Single and Multi agree bit-for-bit on
// (T, M). It is the experiment-table view of the engine microbenchmarks in
// internal/async and internal/syncrun.
//
// E13 runs as one serial job: its measurements are wall-clock, so running
// its rows concurrently (or concurrently with other experiments' jobs)
// would contend for cores and distort the numbers. The timing columns are
// inherently non-reproducible across runs; every other experiment's table
// is byte-identical regardless of Options.Workers.
func e13EngineThroughput(c *Ctx) {
	t := c.table("BFS from node 0; msgs = 2m; modes must agree exactly (det column).")
	t.head("graph", "n", "m", "rounds", "single(ms)", "multi(ms)", "Kmsg/s", "det")
	cases := []namedGraph{
		{"grid 50x50", func() *graph.Graph { return graph.Grid(50, 50) }},
		{"er n=10k m=40k", func() *graph.Graph { return graph.RandomConnected(10_000, 40_000, 11) }},
		{"er n=40k m=160k", func() *graph.Graph { return graph.RandomConnected(40_000, 160_000, 12) }},
	}
	if c.custom != nil {
		cases = append(cases, namedGraph{c.gspec, func() *graph.Graph { return c.custom }})
	}
	t.emit(c.jobs(1, func(int) []row {
		rows := make([]row, 0, len(cases))
		for _, r := range cases {
			g := r.mk()
			mk := func(graph.NodeID) syncrun.Handler {
				return &apps.BFS{Sources: []graph.NodeID{0}}
			}
			t0 := time.Now()
			single := syncrun.New(g, mk).WithMode(syncrun.ModeSingle).Run()
			dSingle := time.Since(t0)
			t1 := time.Now()
			multi := syncrun.New(g, mk).WithMode(syncrun.ModeMulti).Run()
			dMulti := time.Since(t1)
			det := single.T == multi.T && single.M == multi.M &&
				single.Rounds == multi.Rounds &&
				reflect.DeepEqual(single.Outputs, multi.Outputs)
			singleMs := float64(dSingle.Microseconds()) / 1000
			multiMs := float64(dMulti.Microseconds()) / 1000
			kmsgs := float64(single.M) / dSingle.Seconds() / 1000
			rows = append(rows, row{
				cols: []any{r.name, g.N(), g.M(), single.Rounds, singleMs, multiMs, kmsgs, det},
				rec: Rec{"graph": r.name, "n": g.N(), "m": g.M(), "rounds": single.Rounds,
					"singleMs": singleMs, "multiMs": multiMs, "kMsgPerSec": kmsgs,
					"deterministic": det},
			})
		}
		return rows
	}))
}
