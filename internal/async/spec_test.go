package async

import (
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/execpolicy"
	"repro/internal/graph"
	"repro/internal/wire"
)

// TestSpecMatrix is the determinism contract of the speculative mode,
// mirroring TestBoundedLagMatrix: across adversaries x graphs x seeds x
// workloads, a speculative run with a forced 4-worker pool — both with the
// adaptive horizon and with a pinned full-unit horizon that forces deep
// speculation and heavy rollback — must produce a Result deep-equal to the
// serial run's. Run with -race: workers really run concurrently here
// (WithMinParallel(1)). The matrix must also actually exercise rollback:
// the summed Rejected count is asserted non-zero.
func TestSpecMatrix(t *testing.T) {
	workloads := []struct {
		name string
		mk   func() func(graph.NodeID) Handler
	}{
		{"flood", func() func(graph.NodeID) Handler {
			return func(graph.NodeID) Handler { return &floodHandler{} }
		}},
		{"multiflood4", func() func(graph.NodeID) Handler {
			return func(graph.NodeID) Handler { return &multiFlood{k: 4} }
		}},
	}
	var rejected, committed uint64
	for _, seed := range []uint64{3, 17} {
		for _, tg := range matrixGraphs(seed) {
			for _, adv := range matrixAdversaries(tg.g.N(), seed) {
				for _, wl := range workloads {
					serial := New(tg.g, adv, wl.mk()).WithMode(ModeSingle).KeepTrace().Run()
					if len(serial.Trace) == 0 || serial.Msgs == 0 {
						t.Fatalf("seed=%d graph=%s adv=%s workload=%s: degenerate run (msgs=%d trace=%d)",
							seed, tg.name, adv.Name(), wl.name, serial.Msgs, len(serial.Trace))
					}
					for _, horizon := range []float64{0, 1} {
						sim := New(tg.g, adv, wl.mk()).WithMode(ModeSpec).
							WithWorkers(4).WithMinParallel(1).WithSpecHorizon(horizon).KeepTrace()
						spec := sim.Run()
						if !reflect.DeepEqual(serial, spec) {
							t.Fatalf("seed=%d graph=%s adv=%s workload=%s horizon=%g: speculative Result differs from serial\nserial: %+v\nspec:   %+v",
								seed, tg.name, adv.Name(), wl.name, horizon, summarize(serial), summarize(spec))
						}
						st := sim.SpecStats()
						if st.FellBack || st.Rounds == 0 {
							t.Fatalf("seed=%d graph=%s adv=%s workload=%s horizon=%g: speculation did not run (stats %+v)",
								seed, tg.name, adv.Name(), wl.name, horizon, st)
						}
						if st.Executed != st.Committed+st.Rejected {
							t.Fatalf("spec stats do not balance: %+v", st)
						}
						rejected += st.Rejected
						committed += st.Committed
					}
				}
			}
		}
	}
	if rejected == 0 {
		t.Fatalf("matrix never exercised rollback (committed=%d)", committed)
	}
}

// TestSpecWorkerSweep pins determinism across pool sizes, including the
// degenerate one-worker pool (speculation without concurrency).
func TestSpecWorkerSweep(t *testing.T) {
	g := graph.RandomConnected(50, 120, 9)
	mk := func() func(graph.NodeID) Handler {
		return func(graph.NodeID) Handler { return &multiFlood{k: 3} }
	}
	adv := SeededRandom{Seed: 11}
	want := New(g, adv, mk()).WithMode(ModeSingle).KeepTrace().Run()
	for _, w := range []int{1, 2, 3, 8, 16} {
		got := New(g, adv, mk()).WithMode(ModeSpec).
			WithWorkers(w).WithMinParallel(1).KeepTrace().Run()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: speculative Result differs from serial", w)
		}
	}
}

// plainFlood is floodHandler without StateCloner: a deliberately
// speculation-ineligible workload for the fallback test.
type plainFlood struct {
	seen bool
}

func (h *plainFlood) Init(n *Node) {
	if n.ID() == 0 {
		h.seen = true
		for _, nb := range n.Neighbors() {
			n.Send(nb.Node, Msg{Proto: 1, Body: wire.Tag(1)})
		}
		n.Output(0)
	}
}

func (h *plainFlood) Recv(n *Node, _ graph.NodeID, m Msg) {
	if h.seen {
		return
	}
	h.seen = true
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, m)
	}
	n.Output(0)
}

func (h *plainFlood) Ack(*Node, graph.NodeID, Msg) {}

// TestSpecFallback: a forced ModeSpec run over handlers that do not opt in
// must downgrade to the bounded-lag executor, report it in SpecStats, and
// still match serial exactly.
func TestSpecFallback(t *testing.T) {
	g := graph.RandomConnected(40, 100, 13)
	mk := func() func(graph.NodeID) Handler {
		return func(graph.NodeID) Handler { return &plainFlood{} }
	}
	want := New(g, Fixed{D: 0.37}, mk()).WithMode(ModeSingle).KeepTrace().Run()
	sim := New(g, Fixed{D: 0.37}, mk()).WithMode(ModeSpec).
		WithWorkers(4).WithMinParallel(1).KeepTrace()
	got := sim.Run()
	if !reflect.DeepEqual(want, got) {
		t.Fatal("fallback Result differs from serial")
	}
	st := sim.SpecStats()
	if !st.FellBack || st.Rounds != 0 {
		t.Fatalf("expected a recorded fallback with no speculative rounds, got %+v", st)
	}
}

// TestSpecHorizonValidation pins the WithSpecHorizon argument contract.
func TestSpecHorizonValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative horizon should panic")
		}
	}()
	New(graph.Path(2), Fixed{D: 1}, func(graph.NodeID) Handler { return &floodHandler{} }).
		WithSpecHorizon(-0.5)
}

// TestSpecPanicSerialEquivalent pins the speculative panic contract: a
// handler panic surfaces from Run with the serial panic value, and the
// post-panic Stats snapshot — the committed prefix — equals the serial
// engine's at its point of death. (The commit walk certifies the panic in
// serial order before re-raising it, replaying the partial effects.)
func TestSpecPanicSerialEquivalent(t *testing.T) {
	g := graph.RandomConnected(40, 100, 7)
	mkBoom := func() func(graph.NodeID) Handler {
		return func(graph.NodeID) Handler { return &panicAt{trigger: 20} }
	}
	run := func(s *Sim) (p any, now float64, msgs, acks uint64, pp map[Proto]uint64) {
		defer func() {
			p = recover()
			now, msgs, acks, pp = s.Stats()
		}()
		s.Run()
		return
	}
	serial := New(g, SeededRandom{Seed: 4}, mkBoom()).WithMode(ModeSingle)
	sp, snow, smsgs, sacks, spp := run(serial)
	if sp == nil {
		t.Fatal("serial run did not panic")
	}
	spec := New(g, SeededRandom{Seed: 4}, mkBoom()).WithMode(ModeSpec).
		WithWorkers(4).WithMinParallel(1).WithSpecHorizon(1)
	gp, gnow, gmsgs, gacks, gpp := run(spec)
	if !reflect.DeepEqual(sp, gp) {
		t.Fatalf("panic values differ: serial %v, spec %v", sp, gp)
	}
	if snow != gnow || smsgs != gmsgs || sacks != gacks || !reflect.DeepEqual(spp, gpp) {
		t.Fatalf("post-panic Stats differ: serial (%g,%d,%d,%v), spec (%g,%d,%d,%v)",
			snow, smsgs, sacks, spp, gnow, gmsgs, gacks, gpp)
	}
}

// TestResetAfterMidSpecPanic is TestResetAfterMidWindowPanic for the
// speculative executor: after a run dies mid-round, Reset must clear the
// op logs, clones, and recorded worker panic so the rearmed engine
// reproduces a fresh engine's Result exactly.
func TestResetAfterMidSpecPanic(t *testing.T) {
	g := graph.RandomConnected(40, 100, 7)
	mkBoom := func(graph.NodeID) Handler { return &panicAt{trigger: 20} }
	mk := func(graph.NodeID) Handler { return &floodHandler{} }
	want := New(g, Fixed{D: 1}, mk).Run()

	s := New(g, Fixed{D: 1}, mkBoom).WithMode(ModeSpec).WithWorkers(4).WithMinParallel(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the trigger panic")
			}
		}()
		s.Run()
	}()
	s.Reset(Fixed{D: 1}, mk)
	if got := s.Run(); !reflect.DeepEqual(want, got) {
		t.Fatalf("rearmed engine after mid-round panic differs from fresh engine:\n%+v\nvs\n%+v", want, got)
	}
}

// statsProbe calls Sim.Stats from inside a handler callback and records
// whether the mid-window guard fired, then floods normally so the run
// terminates. The flag is atomic: in the parallel modes many workers'
// probes fire concurrently.
type statsProbe struct {
	floodHandler
	sim      **Sim
	panicked *atomic.Bool
}

func (h *statsProbe) Recv(n *Node, from graph.NodeID, m Msg) {
	func() {
		defer func() {
			if recover() != nil {
				h.panicked.Store(true)
			}
		}()
		(*h.sim).Stats()
	}()
	h.floodHandler.Recv(n, from, m)
}

func (h *statsProbe) CloneStateInto(dst Handler) {
	d := dst.(*statsProbe)
	d.sim, d.panicked = h.sim, h.panicked
	d.seen = h.seen
}

// TestStatsMidWindowGuard: Stats called while a parallel window or
// speculative round is in flight must panic instead of returning counters
// that are stale by an unknowable amount; in ModeSingle the same call is a
// well-defined snapshot and must not panic.
func TestStatsMidWindowGuard(t *testing.T) {
	g := graph.Grid(6, 6)
	for _, mode := range []ExecutionMode{ModeSingle, ModeMulti, ModeSpec} {
		var sim *Sim
		var panicked atomic.Bool
		mk := func(graph.NodeID) Handler { return &statsProbe{sim: &sim, panicked: &panicked} }
		sim = New(g, Fixed{D: 1}, mk).WithMode(mode).WithWorkers(2).WithMinParallel(1)
		sim.Run()
		if mode == ModeSingle && panicked.Load() {
			t.Fatal("ModeSingle: mid-run Stats should be a valid snapshot, not a panic")
		}
		if mode != ModeSingle && !panicked.Load() {
			t.Fatalf("%s: Stats inside an in-flight window should panic", mode)
		}
	}
}

// twoRate drives two ping chains at incommensurate periods so speculation
// past the safe window keeps executing the slow chain's queued events
// before the fast chain's next hop is scheduled — every such event is
// rolled back and retried, exercising the rollback path once per few
// messages.
type twoRate struct{}

func (twoRate) MinDelay() float64 { return 0.5 }
func (twoRate) Name() string      { return "tworate" }
func (twoRate) Delay(from, to graph.NodeID, _ uint64, _ Proto) float64 {
	if from == 0 || to == 0 {
		return 0.9 // slow chain on link 0–1
	}
	return 0.51 // fast chain on link 1–2
}

// pingChain: nodes 0 and 2 each drive `remaining` messages to node 1, one
// at a time (next send on ack), like allocPing but with two independent
// chains through different owner shards.
type pingChain struct {
	remaining int
}

func (h *pingChain) Init(n *Node) {
	if n.ID() == 0 || n.ID() == 2 {
		h.remaining--
		n.Send(1, Msg{Proto: Proto(1 + n.ID()), Body: wire.Body{Kind: 1, A: int64(h.remaining)}})
	}
}

func (h *pingChain) Recv(*Node, graph.NodeID, Msg) {}

func (h *pingChain) Ack(n *Node, to graph.NodeID, m Msg) {
	if h.remaining > 0 {
		h.remaining--
		n.Send(to, Msg{Proto: m.Proto, Body: wire.Body{Kind: 1, A: int64(h.remaining)}})
	} else if h.remaining == 0 {
		h.remaining--
		n.Output(true)
	}
}

func (h *pingChain) CloneStateInto(dst Handler) { dst.(*pingChain).remaining = h.remaining }

// TestSpecRollbackSteadyStateAllocs is the rollback-path alloc regression:
// once the spec structures are warm, a rolled-back-and-retried event must
// cost zero steady-state allocations — the op logs, requeue wheel slots,
// release batch, and clone ping-pong all reuse their capacity. Same
// two-length differencing idiom as the engine's other alloc pins; the
// workload is rollback-heavy by construction (asserted via SpecStats).
func TestSpecRollbackSteadyStateAllocs(t *testing.T) {
	g := graph.Path(3)
	cycle := func(msgs int) (*Sim, func()) {
		mk := func(graph.NodeID) Handler { return &pingChain{remaining: msgs} }
		s := New(g, twoRate{}, mk).WithMode(ModeSpec).WithWorkers(2).WithSpecHorizon(1)
		s.Run()
		st := s.SpecStats()
		if st.Rejected == 0 {
			t.Fatalf("workload did not exercise rollback: %+v", st)
		}
		return s, func() {
			s.Reset(twoRate{}, mk)
			if res := s.Run(); res.Msgs != uint64(2*msgs) {
				t.Fatalf("sent %d messages, want %d", res.Msgs, 2*msgs)
			}
		}
	}
	const short, long = 200, 2200
	_, runShort := cycle(short)
	_, runLong := cycle(long)
	a1 := testing.AllocsPerRun(5, runShort)
	a2 := testing.AllocsPerRun(5, runLong)
	const slack = 8
	if extra := a2 - a1; extra > slack {
		t.Fatalf("the %d extra messages allocated %.1f times across Reset (%.4f allocs/msg); want 0",
			2*(long-short), extra, extra/float64(2*(long-short)))
	}
}

// TestSpecResetReuse cycles one engine through spec runs across adversaries
// and back to serial, requiring fresh-engine reproduction each time.
func TestSpecResetReuse(t *testing.T) {
	g := graph.RandomConnected(40, 100, 21)
	mk := func(graph.NodeID) Handler { return &multiFlood{k: 3} }
	advs := []Adversary{SeededRandom{Seed: 5}, Fixed{D: 1}, Skew{Cut: 20, FastD: 1.0 / 16}}
	var reused *Sim
	for i, adv := range advs {
		want := New(g, adv, mk).Run()
		if reused == nil {
			reused = New(g, adv, mk).WithMode(ModeSpec).WithWorkers(3).WithMinParallel(1)
		} else {
			reused.Reset(adv, mk)
		}
		if got := reused.Run(); !reflect.DeepEqual(want, got) {
			t.Fatalf("cycle %d (%s): reused spec engine differs from fresh serial engine", i, adv.Name())
		}
	}
	// Back to serial on the same engine.
	want := New(g, Fixed{D: 1}, mk).Run()
	reused.Reset(Fixed{D: 1}, mk)
	reused.WithMode(ModeSingle)
	if got := reused.Run(); !reflect.DeepEqual(want, got) {
		t.Fatal("reused engine back in ModeSingle differs from fresh serial engine")
	}
}

// TestSpecAutoUpgrade: with CPUs available, cloneable handlers, a large
// graph, and a tiny-lookahead adversary, ModeAuto must pick the
// speculative executor (observable via SpecStats) and still match serial.
func TestSpecAutoUpgrade(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	g := graph.RandomConnected(80, 2100, 5) // 4200 directed links >= AutoMultiLinks
	mk := func() func(graph.NodeID) Handler {
		return func(graph.NodeID) Handler { return &floodHandler{} }
	}
	adv := SeededRandom{Seed: 3} // MinDelay 2^-20 < AutoMinLookahead
	want := New(g, adv, mk()).WithMode(ModeSingle).Run()
	sim := New(g, adv, mk()).WithMode(ModeAuto)
	got := sim.Run()
	if !reflect.DeepEqual(want, got) {
		t.Fatal("ModeAuto Result differs from serial")
	}
	if st := sim.SpecStats(); st.Rounds == 0 || st.FellBack {
		t.Fatalf("ModeAuto did not engage speculation: %+v", st)
	}
}

// TestAutoPolicyWheelDrift pins the shared policy constant to the calendar
// wheel's resolution — the two must move together or Auto's window
// heuristic stops meaning "one wheel tick".
func TestAutoPolicyWheelDrift(t *testing.T) {
	if execpolicy.AutoMinLookahead != 1.0/cqBuckets {
		t.Fatalf("execpolicy.AutoMinLookahead = %g, wheel tick = %g",
			execpolicy.AutoMinLookahead, 1.0/cqBuckets)
	}
}

// fuzzDelays is an adversary whose per-hop delays are drawn from the fuzz
// input, hashed over (from, to, seq, proto) — random straggler patterns by
// construction, honoring the declared MinDelay.
type fuzzDelays struct {
	data []byte
}

func (f fuzzDelays) MinDelay() float64 { return 1.0 / (1 << 20) }
func (f fuzzDelays) Name() string      { return "fuzz" }
func (f fuzzDelays) Delay(from, to graph.NodeID, seq uint64, p Proto) float64 {
	if len(f.data) == 0 {
		return 0.5
	}
	i := (uint64(from)*2654435761 + uint64(to)*40503 + seq*9176 + uint64(p)) % uint64(len(f.data))
	min := f.MinDelay()
	return min + (1-min)*(float64(f.data[i])+0.5)/256
}

// FuzzSpecRollback injects fuzzer-chosen delay patterns — maximal freedom
// to create cross-shard stragglers — and asserts the speculative executor
// reproduces the serial Result byte-for-byte, at both the adaptive horizon
// and a pinned full-unit horizon.
func FuzzSpecRollback(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{255, 0})
	f.Add([]byte{3, 200, 17, 90, 255, 1, 128})
	f.Add([]byte("speculate responsibly"))
	g := graph.RandomConnected(24, 50, 11)
	f.Fuzz(func(t *testing.T, data []byte) {
		adv := fuzzDelays{data: data}
		mk := func() func(graph.NodeID) Handler {
			return func(graph.NodeID) Handler { return &multiFlood{k: 2} }
		}
		serial := New(g, adv, mk()).WithMode(ModeSingle).KeepTrace().Run()
		for _, horizon := range []float64{0, 1} {
			spec := New(g, adv, mk()).WithMode(ModeSpec).
				WithWorkers(3).WithMinParallel(1).WithSpecHorizon(horizon).KeepTrace().Run()
			if !reflect.DeepEqual(serial, spec) {
				t.Fatalf("horizon=%g: speculative Result differs from serial under fuzzed delays %v",
					horizon, data)
			}
		}
	})
}
