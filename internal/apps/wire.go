package apps

import (
	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/outval"
	"repro/internal/wire"
)

// Wire kinds of every algorithm in this package. Each algorithm owns its
// own namespace (one algorithm per run; under the synchronizer the kind
// rides in the frame's Sub field), but the values are kept globally
// distinct anyway so mixed traces stay unambiguous when debugging.
const (
	kindFlood     wire.Kind = 1 // Flood token (signal)
	kindEchoToken wire.Kind = 2 // Echo join token (signal)
	kindEchoCount wire.Kind = 3 // Echo subtree count; A = size

	kindBFSJoin wire.Kind = 10 // BFS join proposal; A = claimed source

	kindTBFSJoin       wire.Kind = 20 // A = source
	kindTBFSAccept     wire.Kind = 21 // signal
	kindTBFSReject     wire.Kind = 22 // signal
	kindTBFSProbe      wire.Kind = 23 // signal
	kindTBFSProbeReply wire.Kind = 24 // A = reached
	kindTBFSEcho       wire.Kind = 25 // A = frontier

	kindLeadUp   wire.Kind = 30 // A = level, B = cluster, C = min
	kindLeadDown wire.Kind = 31 // A = level, B = cluster, C = min, D = isLeader

	kindMSTTest     wire.Kind = 40 // A = phase, B = fragment
	kindMSTMOE      wire.Kind = 41 // A = phase<<1|none, B = weight, C = U, D = V
	kindMSTDecision wire.Kind = 42 // same layout as kindMSTMOE
	kindMSTConnect  wire.Kind = 43 // A = phase
	kindMSTNewFrag  wire.Kind = 44 // A = phase, B = fragment
	kindMSTBarUp    wire.Kind = 45 // A = barrier sequence
	kindMSTBarDown  wire.Kind = 46 // A = barrier sequence
)

// Output kinds: fixed-size per-node results encoded as typed Bodies so the
// engines store them in their dense output arrays (no interface boxing at
// Output time; outval.Decode materializes the structs only at the Result
// boundary). Output kinds share one global namespace across packages —
// outval's registry — so they live in a high range of their own.
const (
	// KindOutBFS carries a BFSResult: A = dist, B = parent, C = source.
	KindOutBFS wire.Kind = 0x7E01
	// KindOutTBFS carries a TBFSResult with the same layout.
	KindOutTBFS wire.Kind = 0x7E02
	// KindOutTBFSSourceDone carries a TBFSSourceDone: A = frontier.
	KindOutTBFSSourceDone wire.Kind = 0x7E03
)

func init() {
	outval.Register(KindOutBFS, func(b wire.Body) any {
		return BFSResult{Dist: int(b.A), Parent: graph.NodeID(b.B), Source: graph.NodeID(b.C)}
	})
	outval.Register(KindOutTBFS, func(b wire.Body) any {
		return TBFSResult{Dist: int(b.A), Parent: graph.NodeID(b.B), Source: graph.NodeID(b.C)}
	})
	outval.Register(KindOutTBFSSourceDone, func(b wire.Body) any {
		return TBFSSourceDone{Frontier: wire.ToBool(b.A)}
	})
}

func encBFSOut(r BFSResult) wire.Body {
	return wire.Body{Kind: KindOutBFS, A: int64(r.Dist), B: int64(r.Parent), C: int64(r.Source)}
}

func encTBFSOut(r TBFSResult) wire.Body {
	return wire.Body{Kind: KindOutTBFS, A: int64(r.Dist), B: int64(r.Parent), C: int64(r.Source)}
}

func encTBFSSourceDone(r TBFSSourceDone) wire.Body {
	return wire.Body{Kind: KindOutTBFSSourceDone, A: wire.FromBool(r.Frontier)}
}

// --- leader codec ----------------------------------------------------------

func encLeadUp(m leadUp) wire.Body {
	return wire.Body{Kind: kindLeadUp, A: int64(m.Level), B: int64(m.Cluster), C: int64(m.Min)}
}

func decLeadUp(b wire.Body) leadUp {
	return leadUp{Level: int(b.A), Cluster: cover.ClusterID(b.B), Min: graph.NodeID(b.C)}
}

func encLeadDown(m leadDown) wire.Body {
	return wire.Body{Kind: kindLeadDown, A: int64(m.Level), B: int64(m.Cluster),
		C: int64(m.Min), D: wire.FromBool(m.IsLeader)}
}

func decLeadDown(b wire.Body) leadDown {
	return leadDown{Level: int(b.A), Cluster: cover.ClusterID(b.B),
		Min: graph.NodeID(b.C), IsLeader: wire.ToBool(b.D)}
}

// --- MST codec -------------------------------------------------------------

// encMSTEdge packs an MOE candidate with its phase: the None bit shares A
// with the phase (a None edge's W/U/V are meaningless and encode as zero).
func encMSTEdge(k wire.Kind, phase int, e mstEdge) wire.Body {
	a := int64(phase) << 1
	if e.None {
		return wire.Body{Kind: k, A: a | 1}
	}
	return wire.Body{Kind: k, A: a, B: e.W, C: int64(e.U), D: int64(e.V)}
}

func decMSTEdge(b wire.Body) (phase int, e mstEdge) {
	phase = int(b.A >> 1)
	if b.A&1 != 0 {
		return phase, mstEdge{None: true}
	}
	return phase, mstEdge{W: b.B, U: graph.NodeID(b.C), V: graph.NodeID(b.D)}
}
