package bench

import (
	"reflect"
	"time"

	"repro/internal/async"
	"repro/internal/graph"
)

// e15SpeculativeExecution measures the speculative executor against the
// serial loop and the bounded-lag windows on the adversary spectrum that
// motivates it. Under Fixed{1} the safe window is a full time unit and the
// conservative windows are near-optimal; under SeededRandom the MinDelay
// lookahead is 2^-20, safe windows degenerate to single events, and only
// speculation past the window exposes parallelism. Each row reports
// wall-clock per mode plus the speculation accounting: rounds, the
// fraction of speculatively executed events that committed, the rollback
// rate, swallow-replays (straddler repair), and the determinism check
// against the serial Result.
//
// Like E13/E14 this runs as one serial job and its timing columns are not
// reproducible; the det column must always read true. On a single-core
// host every parallel column measures pure coordination overhead — the
// honest baseline for multicore speedup, which the CI multicore job and
// the committed BENCH_5.json -cpu sweep track.
func e15SpeculativeExecution(c *Ctx) {
	t := c.table("flood from node 0, grid 40x40; commit% = committed/executed; rb/kev = rejected per 1000 committed events.")
	t.head("adversary", "single(ms)", "multi(ms)", "spec(ms)", "rounds", "commit%", "rb/kev", "replays", "det")
	g := graph.Grid(40, 40)
	advs := []async.Adversary{
		async.Fixed{D: 1},
		async.SeededRandom{Seed: c.seedOr(7)},
		async.Skew{Cut: graph.NodeID(g.N() / 2), FastD: 1.0 / 64},
	}
	t.emit(c.jobs(1, func(int) []row {
		rows := make([]row, 0, len(advs))
		for _, adv := range advs {
			mk := func(graph.NodeID) async.Handler { return &floodK{k: 1} }
			timed := func(mode async.ExecutionMode) (async.Result, time.Duration, async.SpecStats) {
				sim := async.New(g, adv, mk).WithMode(mode)
				t0 := time.Now()
				res := sim.Run()
				return res, time.Since(t0), sim.SpecStats()
			}
			single, dSingle, _ := timed(async.ModeSingle)
			multi, dMulti, _ := timed(async.ModeMulti)
			spec, dSpec, st := timed(async.ModeSpec)
			det := reflect.DeepEqual(single, multi) && reflect.DeepEqual(single, spec)
			commitPct := 0.0
			if st.Executed > 0 {
				commitPct = 100 * float64(st.Committed) / float64(st.Executed)
			}
			rbPerKev := 0.0
			if st.Committed > 0 {
				rbPerKev = 1000 * float64(st.Rejected) / float64(st.Committed)
			}
			singleMs := float64(dSingle.Microseconds()) / 1000
			multiMs := float64(dMulti.Microseconds()) / 1000
			specMs := float64(dSpec.Microseconds()) / 1000
			rows = append(rows, row{
				cols: []any{adv.Name(), singleMs, multiMs, specMs,
					st.Rounds, commitPct, rbPerKev, st.Replayed, det},
				rec: Rec{"adversary": adv.Name(), "singleMs": singleMs,
					"multiMs": multiMs, "specMs": specMs,
					"rounds": st.Rounds, "executed": st.Executed,
					"committed": st.Committed, "rejected": st.Rejected,
					"replays": st.Replayed, "commitPct": commitPct,
					"fellBack": st.FellBack, "deterministic": det},
			})
		}
		return rows
	}))
}
