package abfs

import (
	"testing"

	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/graph"
)

// BenchmarkFullBFS measures the complete doubling BFS end to end: five-ish
// thresholded iterations per op, all on one engine rearmed with Sim.Reset,
// intermediate iterations in dense-output mode. The interesting trend is
// allocs/op and bytes/op versus the rebuild-everything-per-iteration
// baseline this replaced.
func BenchmarkFullBFS(b *testing.B) {
	g := graph.Grid(8, 12)
	core.BuildLayeredFor(g, 100) // warm the cover cache like a sweep does
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Full(g, []graph.NodeID{0}, async.SeededRandom{Seed: 5})
		if len(res.Outputs) != g.N() {
			b.Fatal("incomplete")
		}
	}
}

// BenchmarkFullBFSModes runs the same doubling BFS once per engine
// execution mode on a larger grid. The synchronizer stack's handlers do
// not implement async.StateCloner yet, so the spec rows measure the
// forced-spec path falling back to the bounded-lag executor — identical
// results, and honest numbers for what `-mode spec` costs on this workload
// today (see ROADMAP for making the Mux stack cloneable).
func BenchmarkFullBFSModes(b *testing.B) {
	g := graph.Grid(16, 24)
	core.BuildLayeredFor(g, 100)
	for _, mode := range []async.ExecutionMode{
		async.ModeSingle, async.ModeMulti, async.ModeSpec,
	} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := FullMode(g, []graph.NodeID{0}, async.SeededRandom{Seed: 5}, mode)
				if len(res.Outputs) != g.N() {
					b.Fatal("incomplete")
				}
			}
		})
	}
}
