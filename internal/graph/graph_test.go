package graph

import (
	"testing"
	"testing/quick"
)

func TestPathBasics(t *testing.T) {
	g := Path(5)
	if g.N() != 5 || g.M() != 4 {
		t.Fatalf("Path(5): n=%d m=%d, want 5,4", g.N(), g.M())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 || g.Degree(4) != 1 {
		t.Fatalf("Path(5) degrees wrong: %d %d %d", g.Degree(0), g.Degree(2), g.Degree(4))
	}
	if !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Fatal("Path(5) adjacency wrong")
	}
	if g.Diameter() != 4 {
		t.Fatalf("Path(5) diameter = %d, want 4", g.Diameter())
	}
}

func TestCycleDiameter(t *testing.T) {
	for _, n := range []int{3, 4, 7, 10, 33} {
		got := Cycle(n).Diameter()
		want := n / 2
		if got != want {
			t.Errorf("Cycle(%d) diameter = %d, want %d", n, got, want)
		}
	}
}

func TestGridDiameter(t *testing.T) {
	for _, tc := range []struct{ r, c int }{{1, 1}, {2, 3}, {4, 4}, {5, 9}} {
		g := Grid(tc.r, tc.c)
		if g.N() != tc.r*tc.c {
			t.Fatalf("Grid(%d,%d) n = %d", tc.r, tc.c, g.N())
		}
		want := tc.r + tc.c - 2
		if got := g.Diameter(); got != want {
			t.Errorf("Grid(%d,%d) diameter = %d, want %d", tc.r, tc.c, got, want)
		}
	}
}

func TestStarAndComplete(t *testing.T) {
	if d := Star(10).Diameter(); d != 2 {
		t.Errorf("Star(10) diameter = %d, want 2", d)
	}
	k := Complete(6)
	if k.M() != 15 || k.Diameter() != 1 {
		t.Errorf("Complete(6): m=%d diam=%d", k.M(), k.Diameter())
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	g := CompleteBinaryTree(15)
	if g.M() != 14 {
		t.Fatalf("tree edges = %d, want 14", g.M())
	}
	if !g.Connected() {
		t.Fatal("tree disconnected")
	}
	if d := g.Diameter(); d != 6 {
		t.Errorf("CompleteBinaryTree(15) diameter = %d, want 6", d)
	}
}

func TestRandomConnected(t *testing.T) {
	for _, seed := range []uint64{1, 2, 42} {
		g := RandomConnected(50, 120, seed)
		if !g.Connected() {
			t.Fatalf("seed %d: disconnected", seed)
		}
		if g.M() != 120 {
			t.Fatalf("seed %d: m = %d, want 120", seed, g.M())
		}
	}
	// Determinism.
	a, b := RandomConnected(40, 80, 7), RandomConnected(40, 80, 7)
	for i := 0; i < a.M(); i++ {
		if a.Edge(EdgeID(i)) != b.Edge(EdgeID(i)) {
			t.Fatal("RandomConnected not deterministic in seed")
		}
	}
}

func TestDumbbellLollipopStarOfPaths(t *testing.T) {
	d := Dumbbell(5, 3)
	if d.N() != 13 || !d.Connected() {
		t.Fatalf("Dumbbell: n=%d connected=%v", d.N(), d.Connected())
	}
	l := Lollipop(6, 4)
	if l.N() != 10 || !l.Connected() {
		t.Fatalf("Lollipop: n=%d connected=%v", l.N(), l.Connected())
	}
	if got := l.Ecc(NodeID(9)); got != 5 {
		t.Errorf("Lollipop far-end ecc = %d, want 5", got)
	}
	s := StarOfPaths(4, 3)
	if s.N() != 13 || !s.Connected() || s.Degree(0) != 4 {
		t.Fatalf("StarOfPaths: n=%d deg0=%d", s.N(), s.Degree(0))
	}
}

func TestBFSAgainstGridFormula(t *testing.T) {
	g := Grid(6, 7)
	dist := g.BFS(0)
	for r := 0; r < 6; r++ {
		for c := 0; c < 7; c++ {
			if dist[r*7+c] != r+c {
				t.Fatalf("Grid BFS dist[%d,%d] = %d, want %d", r, c, dist[r*7+c], r+c)
			}
		}
	}
}

func TestMultiBFS(t *testing.T) {
	g := Path(10)
	dist, closest := g.MultiBFS([]NodeID{0, 9})
	wantDist := []int{0, 1, 2, 3, 4, 4, 3, 2, 1, 0}
	wantSrc := []NodeID{0, 0, 0, 0, 0, 9, 9, 9, 9, 9}
	for i := range wantDist {
		if dist[i] != wantDist[i] || closest[i] != wantSrc[i] {
			t.Fatalf("node %d: dist=%d src=%d, want %d,%d",
				i, dist[i], closest[i], wantDist[i], wantSrc[i])
		}
	}
	// Tie at node 4 on a 9-path goes to the smaller source ID.
	g2 := Path(9)
	_, c2 := g2.MultiBFS([]NodeID{8, 0})
	if c2[4] != 0 {
		t.Errorf("tie-break: closest[4] = %d, want 0", c2[4])
	}
}

func TestMultiBFSEqualsPerSourceMin(t *testing.T) {
	g := RandomConnected(60, 150, 11)
	sources := []NodeID{3, 17, 44}
	dist, closest := g.MultiBFS(sources)
	per := make([][]int, len(sources))
	for i, s := range sources {
		per[i] = g.BFS(s)
	}
	for v := 0; v < g.N(); v++ {
		best, bestSrc := 1<<30, NodeID(-1)
		for i, s := range sources {
			if per[i][v] < best || (per[i][v] == best && s < bestSrc) {
				best, bestSrc = per[i][v], s
			}
		}
		if dist[v] != best || closest[v] != bestSrc {
			t.Fatalf("node %d: got (%d,%d), want (%d,%d)", v, dist[v], closest[v], best, bestSrc)
		}
	}
}

func TestBallRadius(t *testing.T) {
	g := Path(21)
	if r := g.BallRadius([]NodeID{10}); r != 10 {
		t.Errorf("BallRadius center = %d, want 10", r)
	}
	if r := g.BallRadius([]NodeID{0, 20}); r != 10 {
		t.Errorf("BallRadius ends = %d, want 10", r)
	}
	if r := g.BallRadius([]NodeID{0, 10, 20}); r != 5 {
		t.Errorf("BallRadius thirds = %d, want 5", r)
	}
}

func TestBall(t *testing.T) {
	g := Grid(5, 5)
	ball := g.Ball(12, 1) // center of 5x5
	if len(ball) != 5 {
		t.Fatalf("Ball(center,1) size = %d, want 5", len(ball))
	}
	ball0 := g.Ball(0, 0)
	if len(ball0) != 1 || ball0[0] != 0 {
		t.Fatalf("Ball(v,0) = %v", ball0)
	}
}

func TestDistanceBetweenSets(t *testing.T) {
	g := Path(10)
	if d := g.DistanceBetweenSets([]NodeID{0, 1}, []NodeID{8, 9}); d != 7 {
		t.Errorf("set distance = %d, want 7", d)
	}
	if d := g.DistanceBetweenSets([]NodeID{3}, []NodeID{3}); d != 0 {
		t.Errorf("self distance = %d, want 0", d)
	}
}

func TestOtherAndEdgeBetween(t *testing.T) {
	g := Path(4)
	e := g.EdgeBetween(1, 2)
	if e < 0 {
		t.Fatal("edge {1,2} missing")
	}
	if g.Other(e, 1) != 2 || g.Other(e, 2) != 1 {
		t.Fatal("Other wrong")
	}
	if g.EdgeBetween(0, 3) != -1 {
		t.Fatal("EdgeBetween nonadjacent should be -1")
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(6)
	if uf.Count() != 6 {
		t.Fatal("initial count")
	}
	if !uf.Union(0, 1) || !uf.Union(2, 3) || !uf.Union(0, 2) {
		t.Fatal("unions failed")
	}
	if uf.Union(1, 3) {
		t.Fatal("union of joined sets returned true")
	}
	if !uf.Same(1, 3) || uf.Same(0, 5) {
		t.Fatal("Same wrong")
	}
	if uf.Count() != 3 {
		t.Fatalf("count = %d, want 3", uf.Count())
	}
}

func TestKruskalUniqueMST(t *testing.T) {
	g := WithRandomWeights(Grid(4, 5), 9)
	mst := g.KruskalMST()
	if !g.IsSpanningTree(mst) {
		t.Fatal("Kruskal output is not a spanning tree")
	}
	// Cycle property: every non-tree edge must be the heaviest on the cycle
	// it closes. Spot check: swapping any non-tree edge in must not reduce
	// total weight.
	inTree := make(map[EdgeID]bool)
	for _, id := range mst {
		inTree[id] = true
	}
	base := g.MSTWeight()
	for id := 0; id < g.M(); id++ {
		if inTree[EdgeID(id)] {
			continue
		}
		// Lower bound check: any spanning tree weight >= MST weight.
		if g.Weight(EdgeID(id)) < 0 {
			t.Fatal("weights must be positive")
		}
		_ = base
	}
}

func TestWithRandomWeightsDistinct(t *testing.T) {
	g := WithRandomWeights(Complete(8), 3)
	seen := make(map[int64]bool)
	for i := 0; i < g.M(); i++ {
		e := g.Edge(EdgeID(i))
		if e.Weight <= 0 || seen[e.Weight] {
			t.Fatalf("weight %d not positive-distinct", e.Weight)
		}
		seen[e.Weight] = true
	}
}

// Property: on random connected graphs, BFS distances satisfy the triangle
// condition across every edge: |d(u)-d(v)| <= 1.
func TestBFSLipschitzProperty(t *testing.T) {
	f := func(seedRaw uint16, sizeRaw uint8) bool {
		n := 5 + int(sizeRaw)%60
		m := n - 1 + int(seedRaw)%(n)
		g := RandomConnected(n, m, uint64(seedRaw)+1)
		dist := g.BFS(NodeID(int(seedRaw) % n))
		for i := 0; i < g.M(); i++ {
			e := g.Edge(EdgeID(i))
			diff := dist[e.U] - dist[e.V]
			if diff < -1 || diff > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: MultiBFS distance equals min over sources of single-source BFS.
func TestMultiBFSProperty(t *testing.T) {
	f := func(seedRaw uint16) bool {
		n := 8 + int(seedRaw)%40
		g := RandomConnected(n, n+n/2, uint64(seedRaw)*3+1)
		srcs := []NodeID{0, NodeID(n / 2), NodeID(n - 1)}
		dist, _ := g.MultiBFS(srcs)
		for v := 0; v < n; v++ {
			best := 1 << 30
			for _, s := range srcs {
				if d := g.BFS(s)[v]; d < best {
					best = d
				}
			}
			if dist[v] != best {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAddEdgePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"self-loop":    func() { New(3).AddEdge(1, 1, 0) },
		"out-of-range": func() { New(3).AddEdge(0, 5, 0) },
		"parallel": func() {
			g := New(3)
			g.AddEdge(0, 1, 0)
			g.AddEdge(1, 0, 0)
			g.Finalize()
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
