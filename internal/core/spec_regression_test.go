package core

import (
	"reflect"
	"testing"

	"repro/internal/async"
	"repro/internal/graph"
	"repro/internal/syncrun"
	"repro/internal/wire"
)

// bfsAlgo's wire codec (dist is its only mutable field; src is config).
// Declared here so the stack built over it is fully serializable — the
// precondition for both the state plane and speculative execution.
func (h *bfsAlgo) SaveState(e *wire.Enc) { e.Int(h.dist) }
func (h *bfsAlgo) LoadState(d *wire.Dec) { h.dist = d.Int() }

// TestSynchronizerSpecNoFallback is the regression guard for the state
// plane's StateCloner: the full synchronizer stack (node core + per-level
// register and gather modules under one Mux) snapshots through its wire
// codecs, which double as the speculative executor's clone path. ModeSpec
// must therefore actually speculate — a FellBack downgrade means some
// module lost its codec or the Mux stopped advertising cloneability.
func TestSynchronizerSpecNoFallback(t *testing.T) {
	g := graph.RandomConnected(30, 70, 6)
	mk := func(graph.NodeID) syncrun.Handler { return &bfsAlgo{src: 0} }
	cfg := Config{Graph: g, Bound: g.Diameter() + 2, Adversary: async.SeededRandom{Seed: 3}}

	want := Synchronize(cfg, mk)

	specCfg := cfg
	specCfg.Mode = async.ModeSpec
	sim := newSynchronizedSim(specCfg, mk)
	got := sim.Run()

	st := sim.SpecStats()
	if st.FellBack {
		t.Fatal("ModeSpec fell back: the synchronizer stack no longer advertises StateCloner")
	}
	if st.Executed == 0 {
		t.Fatal("ModeSpec executed no speculative rounds on a synchronized run")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("speculative synchronized run diverged from the default mode")
	}
}

// TestSynchronizedSnapshotSpecMatrix snapshots a mid-flight synchronized
// run — the deepest stack the state plane serializes (node core, per-level
// register and gather modules, all under one Mux) — and resumes it in
// every engine mode. The continuation must be byte-identical to the
// uninterrupted run.
func TestSynchronizedSnapshotSpecMatrix(t *testing.T) {
	g := graph.RandomConnected(24, 55, 9)
	mk := func(graph.NodeID) syncrun.Handler { return &bfsAlgo{src: 0} }
	cfg := Config{Graph: g, Bound: g.Diameter() + 2, Adversary: async.SeededRandom{Seed: 8}}
	want := Synchronize(cfg, mk)

	for _, k := range []uint64{0, 1, 40, 200, 1000, 5000} {
		a := newSynchronizedSim(cfg, mk)
		a.RunSteps(k)
		snap, err := a.Snapshot()
		if err != nil {
			t.Fatalf("snapshot at event %d: %v", k, err)
		}
		for _, mode := range []async.ExecutionMode{async.ModeSingle, async.ModeMulti, async.ModeSpec} {
			b := newSynchronizedSim(cfg, mk)
			if err := b.Restore(snap); err != nil {
				t.Fatalf("restore at event %d: %v", k, err)
			}
			if got := b.WithMode(mode).Run(); !reflect.DeepEqual(got, want) {
				t.Fatalf("synchronized run resumed at event %d in mode %d diverged", k, mode)
			}
		}
	}
}
