package async

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/wire"
)

// echoHandler: node 0 sends "ping" to all neighbors at Init; every node
// outputs on first message received, forwarding once (flooding).
type floodHandler struct {
	NopAck
	seen bool
}

func (h *floodHandler) Init(n *Node) {
	if n.ID() == 0 {
		h.seen = true
		n.Output(0)
		for _, nb := range n.Neighbors() {
			n.Send(nb.Node, Msg{Proto: 1, Body: wire.Tag(1)})
		}
	}
}

func (h *floodHandler) Recv(n *Node, _ graph.NodeID, m Msg) {
	if h.seen {
		return
	}
	h.seen = true
	n.Output(0)
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, m)
	}
}

func (h *floodHandler) CloneStateInto(dst Handler) { dst.(*floodHandler).seen = h.seen }

func runFlood(g *graph.Graph, adv Adversary) Result {
	s := New(g, adv, func(graph.NodeID) Handler { return &floodHandler{} })
	return s.Run()
}

func TestFloodReachesEveryone(t *testing.T) {
	g := graph.RandomConnected(40, 90, 5)
	for _, adv := range StandardAdversaries(g.N(), 7) {
		res := runFlood(g, adv)
		if len(res.Outputs) != g.N() {
			t.Errorf("%s: %d/%d nodes output", adv.Name(), len(res.Outputs), g.N())
		}
		if res.Msgs == 0 || res.Acks != res.Msgs {
			t.Errorf("%s: msgs=%d acks=%d (acks must equal delivered msgs)",
				adv.Name(), res.Msgs, res.Acks)
		}
	}
}

func TestFloodTimeBoundedByDiameter(t *testing.T) {
	// With delays <= 1 and no contention beyond degree, flooding completes
	// within D * (small constant) time; with Fixed{1} delays it is exactly
	// the BFS depth per hop plus serialization at multi-degree nodes.
	g := graph.Path(30)
	res := runFlood(g, Fixed{D: 1})
	// On a path there is no contention: one hop per time unit, D=29.
	if res.Time != 29 {
		t.Errorf("path flood time = %g, want 29", res.Time)
	}
}

func TestDeterminism(t *testing.T) {
	g := graph.RandomConnected(30, 70, 3)
	a := runFlood(g, SeededRandom{Seed: 99})
	b := runFlood(g, SeededRandom{Seed: 99})
	if a.Time != b.Time || a.Msgs != b.Msgs || a.QuiesceTime != b.QuiesceTime {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

// ackCounter checks that Ack fires exactly once per sent message, with the
// original payload.
type ackCounter struct {
	sent, acked int
	lastBody    wire.Body
}

func (h *ackCounter) Init(n *Node) {
	if n.ID() != 0 {
		return
	}
	for i := 0; i < 5; i++ {
		n.Send(1, Msg{Proto: 2, Body: wire.Body{Kind: 1, A: int64(i)}})
		h.sent++
	}
}
func (h *ackCounter) Recv(n *Node, _ graph.NodeID, _ Msg) { n.Output(true) }
func (h *ackCounter) Ack(n *Node, _ graph.NodeID, m Msg) {
	h.acked++
	h.lastBody = m.Body
	if h.acked == h.sent {
		n.Output(true)
	}
}

func TestAcksDeliveredPerMessage(t *testing.T) {
	g := graph.Path(2)
	hs := make([]*ackCounter, 2)
	s := New(g, SeededRandom{Seed: 4}, func(id graph.NodeID) Handler {
		hs[id] = &ackCounter{}
		return hs[id]
	})
	res := s.Run()
	if hs[0].acked != 5 {
		t.Fatalf("acked = %d, want 5", hs[0].acked)
	}
	if hs[0].lastBody.A != 4 {
		t.Fatalf("last acked body = %v, want A=4", hs[0].lastBody)
	}
	if res.Msgs != 5 || res.Acks != 5 {
		t.Fatalf("msgs=%d acks=%d", res.Msgs, res.Acks)
	}
}

// orderProbe records delivery order at node 1.
type orderProbe struct {
	NopAck
	got []int64
}

func (h *orderProbe) Init(n *Node) {}
func (h *orderProbe) Recv(n *Node, _ graph.NodeID, m Msg) {
	h.got = append(h.got, m.Body.A)
	n.Output(len(h.got))
}

// stageSender sends, from node 0 at Init, interleaved messages of stages
// 2,1,0 — all queued before the link frees — so the outbox must reorder
// them by stage.
type stageSender struct {
	NopAck
}

func (h *stageSender) Init(n *Node) {
	if n.ID() != 0 {
		return
	}
	n.Send(1, Msg{Proto: 1, Stage: 2, Body: wire.Body{Kind: 1, A: 2}})  // s2
	n.Send(1, Msg{Proto: 1, Stage: 1, Body: wire.Body{Kind: 1, A: 11}}) // s1a
	n.Send(1, Msg{Proto: 1, Stage: 0, Body: wire.Body{Kind: 1, A: 0}})  // s0
	n.Send(1, Msg{Proto: 1, Stage: 1, Body: wire.Body{Kind: 1, A: 12}}) // s1b
	n.Output(true)
}
func (h *stageSender) Recv(*Node, graph.NodeID, Msg) {}

func TestStagePriority(t *testing.T) {
	g := graph.Path(2)
	var probe *orderProbe
	s := New(g, Fixed{D: 1}, func(id graph.NodeID) Handler {
		if id == 0 {
			return &stageSender{}
		}
		probe = &orderProbe{}
		return probe
	})
	s.Run()
	// First send dispatches immediately (link idle): s2 goes first. The
	// remaining three are scheduled by stage: s0, s1a, s1b.
	want := []int64{2, 0, 11, 12}
	if len(probe.got) != len(want) {
		t.Fatalf("delivered %v", probe.got)
	}
	for i := range want {
		if probe.got[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", probe.got, want)
		}
	}
}

// protoSender queues 3 messages of proto A then 3 of proto B (same stage),
// all while the link is busy; round-robin must interleave them.
type protoSender struct{ NopAck }

func (h *protoSender) Init(n *Node) {
	if n.ID() != 0 {
		return
	}
	n.Send(1, Msg{Proto: 7, Body: wire.Body{Kind: 1, A: 0}}) // dispatches immediately
	for i := 0; i < 3; i++ {
		n.Send(1, Msg{Proto: 10, Body: wire.Body{Kind: 1, A: 1}})
	}
	for i := 0; i < 3; i++ {
		n.Send(1, Msg{Proto: 20, Body: wire.Body{Kind: 1, A: 2}})
	}
	n.Output(true)
}
func (h *protoSender) Recv(*Node, graph.NodeID, Msg) {}

func TestRoundRobinAcrossProtos(t *testing.T) {
	g := graph.Path(2)
	var probe *orderProbe
	s := New(g, Fixed{D: 1}, func(id graph.NodeID) Handler {
		if id == 0 {
			return &protoSender{}
		}
		probe = &orderProbe{}
		return probe
	})
	s.Run()
	want := []int64{0, 1, 2, 1, 2, 1, 2}
	if len(probe.got) != len(want) {
		t.Fatalf("delivered %v", probe.got)
	}
	for i := range want {
		if probe.got[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", probe.got, want)
		}
	}
}

func TestPerLinkFIFO(t *testing.T) {
	// The ack discipline serializes a link, so same-proto same-stage
	// messages arrive in send order under every adversary.
	g := graph.Path(2)
	for _, adv := range StandardAdversaries(2, 13) {
		var probe *orderProbe
		s := New(g, adv, func(id graph.NodeID) Handler {
			if id == 0 {
				return &burstSender{}
			}
			probe = &orderProbe{}
			return probe
		})
		s.Run()
		for i := 0; i < 10; i++ {
			if probe.got[i] != int64(i) {
				t.Fatalf("%s: out-of-order delivery %v", adv.Name(), probe.got)
			}
		}
	}
}

type burstSender struct{ NopAck }

func (h *burstSender) Init(n *Node) {
	if n.ID() != 0 {
		return
	}
	for i := 0; i < 10; i++ {
		n.Send(1, Msg{Proto: 1, Body: wire.Body{Kind: 1, A: int64(i)}})
	}
	n.Output(true)
}
func (h *burstSender) Recv(*Node, graph.NodeID, Msg) {}

func TestSendToNonNeighborPanics(t *testing.T) {
	g := graph.Path(3)
	s := New(g, Fixed{D: 1}, func(id graph.NodeID) Handler {
		if id == 0 {
			return &badSender{}
		}
		return &floodHandler{}
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-neighbor send")
		}
	}()
	s.Run()
}

type badSender struct{ NopAck }

func (h *badSender) Init(n *Node)                  { n.Send(2, Msg{Proto: 1}) }
func (h *badSender) Recv(*Node, graph.NodeID, Msg) {}

func TestMuxRouting(t *testing.T) {
	g := graph.Path(2)
	recvd := map[Proto]int{}
	mkMod := func(p Proto) Module { return &countMod{p: p, recvd: recvd} }
	s := New(g, Fixed{D: 1}, func(id graph.NodeID) Handler {
		mux := NewMux()
		mux.Register(100, mkMod(100))
		mux.Register(200, mkMod(200))
		if id == 0 {
			mux.Register(1, &muxDriver{})
		} else {
			mux.Register(1, &idleMod{})
		}
		return mux
	})
	s.Run()
	if recvd[100] != 2 || recvd[200] != 1 {
		t.Fatalf("mux routing counts = %v", recvd)
	}
}

type countMod struct {
	p     Proto
	recvd map[Proto]int
}

func (m *countMod) Start(*Node)                         {}
func (m *countMod) Recv(n *Node, _ graph.NodeID, _ Msg) { m.recvd[m.p]++; n.Output(true) }
func (m *countMod) Ack(*Node, graph.NodeID, Msg)        {}

type muxDriver struct{}

func (m *muxDriver) Start(n *Node) {
	n.Send(1, Msg{Proto: 100, Body: wire.Tag(1)})
	n.Send(1, Msg{Proto: 200, Body: wire.Tag(2)})
	n.Send(1, Msg{Proto: 100, Body: wire.Tag(3)})
	n.Output(true)
}
func (m *muxDriver) Recv(*Node, graph.NodeID, Msg) {}
func (m *muxDriver) Ack(*Node, graph.NodeID, Msg)  {}

type idleMod struct{}

func (m *idleMod) Start(*Node)                   {}
func (m *idleMod) Recv(*Node, graph.NodeID, Msg) {}
func (m *idleMod) Ack(*Node, graph.NodeID, Msg)  {}

func TestPerProtoAccounting(t *testing.T) {
	g := graph.Path(2)
	s := New(g, Fixed{D: 1}, func(id graph.NodeID) Handler {
		if id == 0 {
			return &protoSender{}
		}
		return &orderProbe{}
	})
	res := s.Run()
	if res.PerProto[7] != 1 || res.PerProto[10] != 3 || res.PerProto[20] != 3 {
		t.Fatalf("per-proto counts = %v", res.PerProto)
	}
}
