# Build/test/bench entry points. CI runs the same targets.

# The engine microbenchmark suite committed as the bench trajectory.
# Serial benchmarks run at the host's default GOMAXPROCS; the
# mode-comparison benchmarks (bounded-lag windows and the speculative
# executor, flood + doubling BFS) additionally sweep -cpu so the committed
# document carries the worker-scaling curves. On a single-core host the
# sweep rows beyond -cpu 1 measure oversubscribed coordination overhead —
# still useful as the floor of the multicore trajectory, which the CI
# multicore job tracks on real parallel hardware.
ASYNC_BENCH       = BenchmarkSimFlood$$|BenchmarkSimFloodFixed|BenchmarkSimFloodReset
ASYNC_MODE_BENCH  = BenchmarkSimFloodParallel|BenchmarkSimFloodRandomModes
ABFS_MODE_BENCH   = BenchmarkFullBFSModes
SYNC_BENCH        = BenchmarkLockstepPulse$$|BenchmarkLockstepPulseMulti
# The footprint probe is deterministic (see footprint_test.go's exact
# pins), so one iteration suffices; its last case is the million-node row.
FOOTPRINT_BENCH   = BenchmarkFootprint
BENCH_CPUS       ?= 1,2,4,8
BENCH_OUT         = BENCH_6.json
BENCH_NOTE       ?= engine microbenchmark suite plus retained-footprint probe (graphB/link, asyncB/link, syncB/node; includes the grid3d 1M-node row); mode benchmarks sweep -cpu 1,2,4,8 — parallel rows at cpu counts beyond the host's cores measure oversubscribed coordination overhead, not speedup

# The fault-plane sweep committed as BENCH_8.json: the synchronized BFS
# under a crash × drop × budget grid of deterministic fault schedules,
# with the delivery ledger (delivered/dropped/retrans/undeliv), the pulse
# watchdog's stall verdict, and — on crash rows — incremental cover
# repair vs from-scratch rebuild cost; see internal/bench's
# BenchmarkFaultSweep and experiment E17.
FAULT_BENCH_OUT   = BENCH_8.json
FAULT_BENCH_NOTE ?= fault-plane sweep: synchronized BFS on grid16x16 under crash×drop×budget schedules (seed 7); delivered/dropped/retrans/undeliv ledger, watchdog stall verdict, and incremental layered-cover repair vs masked rebuild cost on crash rows — repair is checked deep-equal to the rebuild before metrics are reported

# The multi-process shard sweep committed as BENCH_7.json: one flood over
# the million-node smoke graph per shard count, real worker processes,
# with the coordinator's per-window ledger (workerNs/commNs/mergeNs per
# window) as custom metrics. fixed:1 delays give full-unit lookahead
# (~300 windows); see internal/shard/bench_test.go.
SHARD_BENCH_SPEC   ?= grid3d:100x100x100
SHARD_BENCH_SHARDS ?= 1,2,4,8
SHARD_BENCH_OUT     = BENCH_7.json
SHARD_BENCH_NOTE   ?= multi-process shard sweep: flood on $(SHARD_BENCH_SPEC), K=$(SHARD_BENCH_SHARDS) worker processes over unix sockets, fixed:1 delays; per-window workerNs (critical path), commNs (barrier wait), mergeNs (coordinator) metrics — on hosts with fewer cores than K the extra processes timeshare and the comm column absorbs the oversubscription

# The state-plane overhead sweep committed as BENCH_9.json: the flood
# checkpointed at interval fractions of its event count, reporting frame
# bytes, serialization cost per checkpoint, restore cost, and the
# checkpointed run's wall-clock ratio against the uninterrupted baseline;
# the SNAP_BENCH_SPEC case is the million-node row. Every row asserts the
# round-trip invariant (restore-and-finish byte-identical to the baseline)
# before reporting; see internal/bench's BenchmarkSnapshotSweep and
# experiment E18.
SNAP_BENCH_SPEC  ?= grid3d:100x100x100
SNAP_BENCH_OUT    = BENCH_9.json
SNAP_BENCH_NOTE  ?= state-plane overhead sweep: flood checkpointed at est/8, est/2, est event intervals on grid:40x40 and er:n=500 plus a single-interval $(SNAP_BENCH_SPEC) million-node row; frameBytes, saveMsPerSnap, restoreMs, timeX vs the uninterrupted baseline — every row requires the run restored from the last checkpoint to finish byte-identical to the baseline before metrics are reported

.PHONY: build test race bench bench-shard bench-faults bench-snapshot fmt vet

build:
	go build ./...

test: build
	go test ./...

race:
	go test -race ./internal/async/ ./internal/syncrun/ ./internal/apps/ ./internal/bench/ ./internal/core/ ./internal/shard/

fmt:
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then echo "gofmt needed on:"; echo "$$fmt"; exit 1; fi

vet:
	go vet ./...

# Separate recipe lines so a failing benchmark suite fails the target
# instead of being swallowed by a pipe (benchjson would happily emit a
# truncated document from whatever lines did arrive).
bench:
	go test -run '^$$' -bench '$(ASYNC_BENCH)' -benchmem ./internal/async/ > .bench-async.out
	go test -run '^$$' -bench '$(ASYNC_MODE_BENCH)' -benchmem -cpu $(BENCH_CPUS) ./internal/async/ > .bench-async-modes.out
	go test -run '^$$' -bench '$(ABFS_MODE_BENCH)' -benchmem -cpu $(BENCH_CPUS) ./internal/abfs/ > .bench-abfs-modes.out
	go test -run '^$$' -bench '$(SYNC_BENCH)' -benchmem ./internal/syncrun/ > .bench-sync.out
	go test -run '^$$' -bench '$(FOOTPRINT_BENCH)' -benchtime 1x -timeout 30m ./internal/bench/ > .bench-footprint.out
	cat .bench-async.out .bench-async-modes.out .bench-abfs-modes.out .bench-sync.out .bench-footprint.out | go run ./cmd/benchjson -note "$(BENCH_NOTE)" > $(BENCH_OUT)
	rm -f .bench-async.out .bench-async-modes.out .bench-abfs-modes.out .bench-sync.out .bench-footprint.out
	@cat $(BENCH_OUT)

bench-faults:
	go test -run '^$$' -bench BenchmarkFaultSweep -benchtime 1x -timeout 30m ./internal/bench/ > .bench-faults.out
	cat .bench-faults.out | go run ./cmd/benchjson -note "$(FAULT_BENCH_NOTE)" > $(FAULT_BENCH_OUT)
	rm -f .bench-faults.out
	@cat $(FAULT_BENCH_OUT)

bench-shard:
	SHARD_BENCH_SPEC=$(SHARD_BENCH_SPEC) SHARD_BENCH_SHARDS=$(SHARD_BENCH_SHARDS) \
		go test -run '^$$' -bench BenchmarkShardSweep -benchtime 1x -timeout 60m ./internal/shard/ > .bench-shard.out
	cat .bench-shard.out | go run ./cmd/benchjson -note "$(SHARD_BENCH_NOTE)" > $(SHARD_BENCH_OUT)
	rm -f .bench-shard.out
	@cat $(SHARD_BENCH_OUT)

bench-snapshot:
	SNAP_BENCH_SPEC=$(SNAP_BENCH_SPEC) \
		go test -run '^$$' -bench BenchmarkSnapshotSweep -benchtime 1x -timeout 60m ./internal/bench/ > .bench-snapshot.out
	cat .bench-snapshot.out | go run ./cmd/benchjson -note "$(SNAP_BENCH_NOTE)" > $(SNAP_BENCH_OUT)
	rm -f .bench-snapshot.out
	@cat $(SNAP_BENCH_OUT)
