package core

import (
	"fmt"
	"sort"

	"repro/internal/async"
	"repro/internal/decomp"
	"repro/internal/graph"
	"repro/internal/syncrun"
	"repro/internal/wire"
)

// GammaSynchronizer is Awerbuch's γ (Appendix A): a low-diameter partition
// runs β inside each cluster and α between adjacent clusters over one
// designated edge per cluster pair. Per pulse p, each cluster (1)
// convergecasts member safety to its root, (2) broadcasts CLUSTER-SAFE and
// exchanges it over designated inter-cluster edges, (3) convergecasts
// "every member heard all its designated peers", and (4) broadcasts
// ADVANCE(p+1).
//
// Cluster trees are the weak-diameter Steiner trees of the decomposition,
// so a node may relay traffic for clusters it is not a member of; all tree
// messages therefore carry the cluster index.
type gammaNode struct {
	algo  syncrun.Handler
	bound int
	part  *GammaPartition

	pulse     int
	recvd     [][]syncrun.Incoming // bound-indexed, allocated once
	sendAcked []int
	safe      []bool // own pulse-p sends all acked
	cs        congestStamp

	ph map[gKey]*gammaPhase
}

type gKey struct {
	cluster int
	pulse   int
}

// gammaPhase is per-(cluster,pulse) convergecast state at one tree node.
type gammaPhase struct {
	p1Count int
	p1Sent  bool
	cSafe   bool
	extSafe int
	p2Count int
	p2Sent  bool
}

// GammaPartition is the γ clustering: a vertex partition into weak-diameter
// clusters with Steiner trees, plus one designated edge per adjacent
// cluster pair. All per-node state is dense and node-indexed.
type GammaPartition struct {
	clusters []*decomp.Cluster
	// clusterOf[v] is the cluster index of member v.
	clusterOf []int32
	// treesOf[v] lists the cluster indices whose Steiner tree v
	// participates in.
	treesOf [][]int32
	// designated[v] lists peers v exchanges CLUSTER-SAFE with.
	designated [][]graph.NodeID
}

// NewGammaPartition builds the clustering (γ's initialization).
func NewGammaPartition(g *graph.Graph) *GammaPartition {
	dec := decomp.Build(g, 1, nil)
	p := &GammaPartition{
		clusterOf:  make([]int32, g.N()),
		treesOf:    make([][]int32, g.N()),
		designated: make([][]graph.NodeID, g.N()),
	}
	p.clusters = dec.Clusters()
	for i, c := range p.clusters {
		for _, v := range c.Members {
			p.clusterOf[v] = int32(i)
		}
		for _, tv := range c.Tree.Nodes() {
			p.treesOf[tv] = append(p.treesOf[tv], int32(i))
		}
	}
	seen := make(map[[2]int32]bool)
	for ei := 0; ei < g.M(); ei++ {
		e := g.Edge(graph.EdgeID(ei))
		a, b := p.clusterOf[e.U], p.clusterOf[e.V]
		if a == b {
			continue
		}
		key := [2]int32{a, b}
		if a > b {
			key = [2]int32{b, a}
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		p.designated[e.U] = append(p.designated[e.U], e.V)
		p.designated[e.V] = append(p.designated[e.V], e.U)
	}
	return p
}

// DesignatedEdgeCount returns the number of designated inter-cluster edges.
func (p *GammaPartition) DesignatedEdgeCount() int {
	total := 0
	for _, peers := range p.designated {
		total += len(peers)
	}
	return total / 2
}

// ClusterCount returns the number of clusters.
func (p *GammaPartition) ClusterCount() int { return len(p.clusters) }

const protoGammaTree async.Proto = 5

// encGamma encodes one γ tree/edge message (A = cluster, B = pulse).
func encGamma(k wire.Kind, cluster, pulse int) wire.Body {
	return wire.Body{Kind: k, A: int64(cluster), B: int64(pulse)}
}

var _ async.Handler = (*gammaNode)(nil)

// NewGamma builds the γ-synchronized handler for one node.
func NewGamma(algo syncrun.Handler, bound int, part *GammaPartition) async.Handler {
	return &gammaNode{
		algo:      algo,
		bound:     bound,
		part:      part,
		recvd:     make([][]syncrun.Incoming, bound+1),
		sendAcked: make([]int, bound+1),
		safe:      make([]bool, bound+1),
		ph:        make(map[gKey]*gammaPhase),
	}
}

func (gm *gammaNode) phase(c, p int) *gammaPhase {
	k := gKey{cluster: c, pulse: p}
	st := gm.ph[k]
	if st == nil {
		st = &gammaPhase{}
		gm.ph[k] = st
	}
	return st
}

func (gm *gammaNode) tree(c int) *decomp.Tree { return gm.part.clusters[c].Tree }

func (gm *gammaNode) isMember(n *async.Node, c int) bool {
	return gm.part.clusterOf[n.ID()] == int32(c)
}

// Init implements async.Handler.
func (gm *gammaNode) Init(n *async.Node) { gm.runPulse(n, 0) }

func (gm *gammaNode) runPulse(n *async.Node, p int) {
	gm.pulse = p
	api := &gammaAPI{n: n, g: gm, pulse: p, epoch: gm.cs.begin(n.Degree())}
	if p == 0 {
		gm.algo.Init(api)
	} else {
		batch := gm.recvd[p-1]
		sort.Slice(batch, func(i, j int) bool { return batch[i].From < batch[j].From })
		gm.algo.Pulse(api, p, batch)
	}
	gm.maybeSelfSafe(n, p)
}

func (gm *gammaNode) maybeSelfSafe(n *async.Node, p int) {
	if gm.safe[p] || gm.sendAcked[p] > 0 || gm.pulse < p {
		return
	}
	gm.safe[p] = true
	// Kick the convergecast in every tree this node serves: members gate
	// on their own safety, pure relays (Steiner nonterminals) just needed
	// a trigger to report their (empty) subtrees for pulse p.
	for _, c := range gm.part.treesOf[n.ID()] {
		gm.maybeP1(n, int(c), p)
	}
}

// maybeP1 advances the member-safety convergecast at this tree node.
func (gm *gammaNode) maybeP1(n *async.Node, c, p int) {
	st := gm.phase(c, p)
	if st.p1Sent {
		return
	}
	if gm.isMember(n, c) && !gm.safe[p] {
		return
	}
	if st.p1Count < len(gm.tree(c).ChildrenOf(n.ID())) {
		return
	}
	st.p1Sent = true
	if par, ok := gm.tree(c).ParentOf(n.ID()); ok {
		n.Send(par, async.Msg{Proto: protoGammaTree, Stage: p, Body: encGamma(kindGammaP1Up, c, p)})
		return
	}
	gm.onClusterSafe(n, c, p)
}

// onClusterSafe handles the CLUSTER-SAFE broadcast at a tree node.
func (gm *gammaNode) onClusterSafe(n *async.Node, c, p int) {
	st := gm.phase(c, p)
	st.cSafe = true
	for _, ch := range gm.tree(c).ChildrenOf(n.ID()) {
		n.Send(ch, async.Msg{Proto: protoGammaTree, Stage: p, Body: encGamma(kindGammaClusterSafe, c, p)})
	}
	if gm.isMember(n, c) {
		for _, peer := range gm.part.designated[n.ID()] {
			n.Send(peer, async.Msg{Proto: protoGammaTree, Stage: p, Body: encGamma(kindGammaCSafe, 0, p)})
		}
	}
	gm.maybeP2(n, c, p)
}

// maybeP2 advances the all-neighbors-safe convergecast.
func (gm *gammaNode) maybeP2(n *async.Node, c, p int) {
	st := gm.phase(c, p)
	if st.p2Sent || !st.cSafe {
		return
	}
	if gm.isMember(n, c) && st.extSafe < len(gm.part.designated[n.ID()]) {
		return
	}
	if st.p2Count < len(gm.tree(c).ChildrenOf(n.ID())) {
		return
	}
	st.p2Sent = true
	if par, ok := gm.tree(c).ParentOf(n.ID()); ok {
		n.Send(par, async.Msg{Proto: protoGammaTree, Stage: p, Body: encGamma(kindGammaP2Up, c, p)})
		return
	}
	gm.broadcastAdvance(n, c, p+1)
}

func (gm *gammaNode) broadcastAdvance(n *async.Node, c, next int) {
	if next > gm.bound {
		return
	}
	for _, ch := range gm.tree(c).ChildrenOf(n.ID()) {
		n.Send(ch, async.Msg{Proto: protoGammaTree, Stage: next, Body: encGamma(kindGammaAdvance, c, next)})
	}
	if gm.isMember(n, c) {
		gm.runPulse(n, next)
	}
}

// Recv implements async.Handler.
func (gm *gammaNode) Recv(n *async.Node, from graph.NodeID, m async.Msg) {
	cluster, pulse := int(m.Body.A), int(m.Body.B)
	switch m.Body.Kind {
	case kindAlgo:
		p, inner := m.Body.Unframe()
		gm.recvd[p] = append(gm.recvd[p], syncrun.Incoming{From: from, Body: inner})
	case kindGammaP1Up:
		gm.phase(cluster, pulse).p1Count++
		gm.maybeP1(n, cluster, pulse)
	case kindGammaClusterSafe:
		gm.onClusterSafe(n, cluster, pulse)
	case kindGammaCSafe:
		c := int(gm.part.clusterOf[n.ID()])
		gm.phase(c, pulse).extSafe++
		gm.maybeP2(n, c, pulse)
	case kindGammaP2Up:
		gm.phase(cluster, pulse).p2Count++
		gm.maybeP2(n, cluster, pulse)
	case kindGammaAdvance:
		gm.broadcastAdvance(n, cluster, pulse)
	default:
		panic(fmt.Sprintf("core: gamma node %d got payload kind %d", n.ID(), m.Body.Kind))
	}
}

// Ack implements async.Handler.
func (gm *gammaNode) Ack(n *async.Node, _ graph.NodeID, m async.Msg) {
	if m.Body.Kind != kindAlgo {
		return
	}
	pulse := int(m.Body.P)
	gm.sendAcked[pulse]--
	gm.maybeSelfSafe(n, pulse)
}

type gammaAPI struct {
	n     *async.Node
	g     *gammaNode
	pulse int
	epoch int32
}

var _ syncrun.API = (*gammaAPI)(nil)

func (x *gammaAPI) ID() graph.NodeID            { return x.n.ID() }
func (x *gammaAPI) Neighbors() []graph.Neighbor { return x.n.Neighbors() }
func (x *gammaAPI) Degree() int                 { return x.n.Degree() }
func (x *gammaAPI) Output(v any)                { x.n.Output(v) }
func (x *gammaAPI) OutputBody(b wire.Body)      { x.n.OutputBody(b) }
func (x *gammaAPI) HasOutput() bool             { return x.n.HasOutput() }
func (x *gammaAPI) Arena() *wire.Arena          { return x.n.Arena() }

func (x *gammaAPI) Send(to graph.NodeID, body wire.Body) {
	x.g.cs.mark(x.n, to, x.epoch, "gamma")
	x.g.sendAcked[x.pulse]++
	x.n.Send(to, async.Msg{Proto: ProtoAlgo, Stage: x.pulse, Body: frameAlgo(x.pulse, body)})
}

// SynchronizeGamma runs the algorithm under γ for exactly `bound` pulses.
func SynchronizeGamma(g *graph.Graph, bound int, adv async.Adversary,
	mk func(id graph.NodeID) syncrun.Handler) async.Result {
	if adv == nil {
		adv = async.SeededRandom{Seed: 1}
	}
	part := NewGammaPartition(g)
	sim := async.New(g, adv, func(id graph.NodeID) async.Handler {
		return NewGamma(mk(id), bound, part)
	})
	return sim.Run()
}
