package core

import (
	"fmt"

	"repro/internal/graph"
)

// vnode is one virtual node (v, pulse) of the execution forest (§5.2): the
// pulse-π send-step of a physical node. It is created tentatively at the
// first pulse-(π-1) trigger (message received, or own send at π-1) and
// evaluated — the synchronous algorithm run and its pulse-π messages
// released — when Go-Ahead(π) arrives.
type vnode struct {
	pulse int

	// Execution-forest parentage. Originator vnodes (pulse 0) have neither.
	parentPhys graph.NodeID
	parentSelf bool
	hasParent  bool

	// evaluated: Go-Ahead(pulse) processed and the algorithm's Pulse run.
	evaluated bool
	// sentAny: the algorithm sent >= 1 message at this pulse.
	sentAny bool
	// outstandingReplies counts sent pulse-π messages not yet answered
	// with a chosen/declined reply.
	outstandingReplies int

	// childPhys lists neighbors whose (w, π+1) chose this vnode as parent.
	childPhys []graph.NodeID
	// selfChild: (v, π+1) exists with this vnode as parent.
	selfChild bool

	// q holds one safety-convergecast state per tracked pulse.
	q map[int]*qstate

	// Wave-registration bookkeeping (consumer/gate pulses only).
	regOutstanding map[int]int  // session -> clusters awaiting Registered
	registered     map[int]bool // session -> fully registered
	gaOutstanding  map[int]int  // session -> clusters awaiting GoAhead
}

// qstate tracks the q-status convergecast at one vnode: resolved when the
// vnode's own sends are all answered and every execution-forest child has
// reported; ready when the subtree contains a pulse-q vnode (and, per the
// report semantics of §4.1.2, everything of pulse < q in it is safe).
type qstate struct {
	q               int
	reports         int
	anyReady        bool
	resolved        bool
	ready           bool
	forwarded       bool
	gateOutstanding int // sessions still registering before forwarding
	// GA routing: children that reported q-ready.
	readyPhys []graph.NodeID
	readySelf bool
}

func newVnode(s *Schedule, p int) *vnode {
	v := &vnode{
		pulse:          p,
		parentPhys:     -1,
		q:              make(map[int]*qstate),
		regOutstanding: make(map[int]int),
		registered:     make(map[int]bool),
		gaOutstanding:  make(map[int]int),
	}
	for _, q := range s.Tracked(p) {
		v.q[q] = &qstate{q: q}
	}
	return v
}

// answersDone reports whether the vnode's children set is final: it has
// evaluated (so its sends happened) and every send was answered.
func (v *vnode) answersDone() bool {
	return v.evaluated && v.outstandingReplies == 0
}

// childCount returns the final number of execution-forest children; only
// meaningful once answersDone.
func (v *vnode) childCount() int {
	n := len(v.childPhys)
	if v.selfChild {
		n++
	}
	return n
}

func (v *vnode) qstate(q int) *qstate {
	qs := v.q[q]
	if qs == nil {
		panic(fmt.Sprintf("core: vnode pulse %d has no q-state for %d", v.pulse, q))
	}
	return qs
}
