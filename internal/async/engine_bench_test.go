package async

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/wire"
)

// benchFlood broadcasts once: the source sends to every neighbor at Init;
// every node forwards the first message it receives. 2m messages total, so
// one benchmark iteration exercises the send/dispatch/deliver/ack path on
// every directed link exactly once.
type benchFlood struct {
	NopAck
	seen bool
}

func (h *benchFlood) Init(n *Node) {
	if n.ID() == 0 {
		h.seen = true
		for _, nb := range n.Neighbors() {
			n.Send(nb.Node, Msg{Proto: 1, Body: wire.Body{Kind: 1, A: int64(n.ID())}})
		}
		n.Output(0)
	}
}

func (h *benchFlood) Recv(n *Node, from graph.NodeID, m Msg) {
	if h.seen {
		return
	}
	h.seen = true
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, Msg{Proto: 1, Body: wire.Body{Kind: 1, A: int64(n.ID())}})
	}
	n.Output(0)
}

func (h *benchFlood) CloneStateInto(dst Handler) { dst.(*benchFlood).seen = h.seen }

// BenchmarkSimFlood measures the full simulator hot path — send, outbox,
// event push/pop, deliver, ack — via a flood broadcast. The interesting
// number is allocs/op divided by the ~4m simulated events per iteration.
func BenchmarkSimFlood(b *testing.B) {
	g := graph.Grid(20, 20)
	adv := SeededRandom{Seed: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := New(g, adv, func(graph.NodeID) Handler { return &benchFlood{} }).Run()
		if len(res.Outputs) != g.N() {
			b.Fatalf("flood reached %d/%d nodes", len(res.Outputs), g.N())
		}
	}
	// Each edge carries one message per direction plus one ack per message.
	b.ReportMetric(float64(4*g.M()), "events/op")
}

// BenchmarkSimFloodFixed is the same workload under the degenerate Fixed
// adversary: every event lands in the same queue bucket, the worst case for
// a calendar queue and the best case for a binary heap.
func BenchmarkSimFloodFixed(b *testing.B) {
	g := graph.Grid(20, 20)
	adv := Fixed{D: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := New(g, adv, func(graph.NodeID) Handler { return &benchFlood{} }).Run()
		if len(res.Outputs) != g.N() {
			b.Fatalf("flood reached %d/%d nodes", len(res.Outputs), g.N())
		}
	}
	b.ReportMetric(float64(4*g.M()), "events/op")
}

// BenchmarkSimFloodParallel runs the flood on a larger grid under Fixed{1}
// — full-unit lookahead, the bounded-lag executor's best case — in both
// execution modes. On a single-core host the multi numbers measure pure
// window/staging overhead; on real hardware they are the parallel speedup.
func BenchmarkSimFloodParallel(b *testing.B) {
	g := graph.Grid(60, 60)
	adv := Fixed{D: 1}
	mk := func(graph.NodeID) Handler { return &benchFlood{} }
	for _, mode := range []ExecutionMode{ModeSingle, ModeMulti, ModeSpec} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := New(g, adv, mk).WithMode(mode).Run()
				if len(res.Outputs) != g.N() {
					b.Fatalf("flood reached %d/%d nodes", len(res.Outputs), g.N())
				}
			}
			b.ReportMetric(float64(4*g.M()), "events/op")
		})
	}
}

// BenchmarkSimFloodRandomModes is the adversary regime the speculative
// executor exists for: SeededRandom's MinDelay is 2^-20, so the bounded-lag
// safe window almost never holds more than one event and ModeMulti
// degenerates to barrier overhead, while ModeSpec drains whole horizons
// optimistically and pays for the occasional rollback instead. On one core
// every parallel row is pure overhead; the -cpu sweep in `make bench` is
// where the spec-over-single crossover appears.
func BenchmarkSimFloodRandomModes(b *testing.B) {
	g := graph.Grid(60, 60)
	adv := SeededRandom{Seed: 7}
	mk := func(graph.NodeID) Handler { return &benchFlood{} }
	for _, mode := range []ExecutionMode{ModeSingle, ModeMulti, ModeSpec} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := New(g, adv, mk).WithMode(mode).Run()
				if len(res.Outputs) != g.N() {
					b.Fatalf("flood reached %d/%d nodes", len(res.Outputs), g.N())
				}
			}
			b.ReportMetric(float64(4*g.M()), "events/op")
		})
	}
}

// BenchmarkSimFloodReset measures the engine-reuse path: one engine,
// rearmed with Reset per iteration, versus the fresh-engine construction
// the other benchmarks pay.
func BenchmarkSimFloodReset(b *testing.B) {
	g := graph.Grid(20, 20)
	adv := SeededRandom{Seed: 7}
	mk := func(graph.NodeID) Handler { return &benchFlood{} }
	sim := New(g, adv, mk)
	sim.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Reset(adv, mk)
		res := sim.Run()
		if len(res.Outputs) != g.N() {
			b.Fatalf("flood reached %d/%d nodes", len(res.Outputs), g.N())
		}
	}
	b.ReportMetric(float64(4*g.M()), "events/op")
}
