package async

import (
	"fmt"

	"repro/internal/wire"
)

// StateCodecProbe is an optional refinement for composite handlers whose
// snapshot support depends on their runtime composition: a Mux is only as
// serializable as the modules registered on it, which the type system
// cannot see. The engine consults the probe before trusting a handler's
// wire.StateCodec or StateCloner methods — a failing probe turns Snapshot
// into a clean error and ModeSpec into the conservative fallback instead
// of a panic inside SaveState.
type StateCodecProbe interface {
	// StateCodecOK reports whether the handler's complete state is
	// serializable right now.
	StateCodecOK() bool
}

// Rebinder is an optional handler/module interface for state restore:
// Rebind is invoked after a snapshot is loaded into a resumed engine (one
// whose Init/Start phase already ran before the snapshot), re-establishing
// cached *Node references that Start would normally capture. Modules that
// never cache the node don't need it.
type Rebinder interface {
	Rebind(n *Node)
}

var (
	_ wire.StateCodec = (*Mux)(nil)
	_ StateCodecProbe = (*Mux)(nil)
	_ StateCloner     = (*Mux)(nil)
	_ Rebinder        = (*Mux)(nil)
)

// eachUniqueModule visits registered modules in registration order, once
// per instance — a module registered under several protos (the
// synchronizer core owns both ProtoAlgo and ProtoTree) serializes once.
func (x *Mux) eachUniqueModule(fn func(p Proto, mod Module) bool) {
	for i, p := range x.order {
		mod := x.modules[p]
		dup := false
		for _, q := range x.order[:i] {
			if x.modules[q] == mod {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if !fn(p, mod) {
			return
		}
	}
}

// StateCodecOK implements StateCodecProbe: every registered module must
// carry a state codec (and pass its own probe, if it has one).
func (x *Mux) StateCodecOK() bool {
	ok := true
	x.eachUniqueModule(func(_ Proto, mod Module) bool {
		if _, is := mod.(wire.StateCodec); !is {
			ok = false
		} else if pr, is := mod.(StateCodecProbe); is && !pr.StateCodecOK() {
			ok = false
		}
		return ok
	})
	return ok
}

// SaveState implements wire.StateCodec: each unique module's state rides
// in its own blob, in registration order. Callers gate on StateCodecOK —
// a non-codec module here is a programming error and panics.
func (x *Mux) SaveState(e *wire.Enc) {
	x.eachUniqueModule(func(p Proto, mod Module) bool {
		sc, ok := mod.(wire.StateCodec)
		if !ok {
			panic(fmt.Sprintf("async: module %T (proto %d) does not implement wire.StateCodec", mod, p))
		}
		mark := e.BeginBlob()
		sc.SaveState(e)
		e.EndBlob(mark)
		return true
	})
}

// LoadState implements wire.StateCodec. The restoring Mux must have been
// built by the same constructor, so the registration order matches.
func (x *Mux) LoadState(d *wire.Dec) {
	x.eachUniqueModule(func(p Proto, mod Module) bool {
		sc, ok := mod.(wire.StateCodec)
		if !ok {
			d.Fail("async: module %T (proto %d) does not implement wire.StateCodec", mod, p)
			return false
		}
		end := d.BeginBlob()
		if d.Failed() {
			return false
		}
		sc.LoadState(d)
		d.EndBlob(end)
		return !d.Failed()
	})
}

// Rebind implements Rebinder, forwarding to modules that cache the node.
func (x *Mux) Rebind(n *Node) {
	x.eachUniqueModule(func(_ Proto, mod Module) bool {
		if rb, ok := mod.(Rebinder); ok {
			rb.Rebind(n)
		}
		return true
	})
}

// CloneStateInto implements StateCloner via the state codec: the module
// stack's state round-trips through a scratch frame into the clone. This
// is what lets the full synchronizer stack run under ModeSpec — the
// per-module codecs written for the snapshot plane double as the clone
// path, so no Mux-hosted stack falls back to the conservative executor
// anymore.
func (x *Mux) CloneStateInto(dst Handler) {
	dx, ok := dst.(*Mux)
	if !ok {
		panic(fmt.Sprintf("async: Mux clone target is %T", dst))
	}
	x.cloneBuf.Reset()
	x.SaveState(&x.cloneBuf)
	d := wire.NewDec(x.cloneBuf.Bytes(), nil)
	dx.LoadState(d)
	if err := d.Err(); err != nil {
		panic(fmt.Sprintf("async: Mux state clone failed: %v", err))
	}
	if d.Remaining() != 0 {
		panic(fmt.Sprintf("async: Mux state clone left %d bytes unread", d.Remaining()))
	}
}
