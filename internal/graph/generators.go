package graph

import "fmt"

// The generators are all deterministic: random families take an explicit
// seed and use the local xorshift PRNG below, so every experiment is
// reproducible bit-for-bit without pulling in math/rand global state.

// rng is a small deterministic xorshift64* generator.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Intn returns a uniform int in [0, n).
func (r *rng) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.next() % uint64(n))
}

// Path returns the path graph 0-1-2-…-(n-1). Diameter n-1.
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1), 0)
	}
	return g.Finalize()
}

// Cycle returns the n-cycle. Diameter floor(n/2). Requires n >= 3.
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: Cycle needs n >= 3, got %d", n))
	}
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(NodeID(i), NodeID((i+1)%n), 0)
	}
	return g.Finalize()
}

// Grid returns the rows×cols grid. Diameter rows+cols-2.
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1), 0)
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c), 0)
			}
		}
	}
	return g.Finalize()
}

// Star returns the star with center 0 and n-1 leaves. Diameter 2.
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, NodeID(i), 0)
	}
	return g.Finalize()
}

// CompleteBinaryTree returns a complete binary tree on n nodes
// (node i has children 2i+1 and 2i+2 when in range).
func CompleteBinaryTree(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		if l := 2*i + 1; l < n {
			g.AddEdge(NodeID(i), NodeID(l), 0)
		}
		if r := 2*i + 2; r < n {
			g.AddEdge(NodeID(i), NodeID(r), 0)
		}
	}
	return g.Finalize()
}

// Complete returns K_n.
func Complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(NodeID(i), NodeID(j), 0)
		}
	}
	return g.Finalize()
}

// RandomConnected returns a connected graph: a random spanning tree plus
// extra random edges until reaching approximately m edges total.
// Deterministic in seed.
func RandomConnected(n, m int, seed uint64) *Graph {
	if m < n-1 {
		panic(fmt.Sprintf("graph: RandomConnected needs m >= n-1 (n=%d, m=%d)", n, m))
	}
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	r := newRNG(seed)
	g := New(n)
	have := make(map[[2]NodeID]bool, m)
	addIfNew := func(u, v NodeID) bool {
		if u == v {
			return false
		}
		if u > v {
			u, v = v, u
		}
		key := [2]NodeID{u, v}
		if have[key] {
			return false
		}
		have[key] = true
		g.AddEdge(u, v, 0)
		return true
	}
	// Random spanning tree: attach node i to a uniformly random earlier node.
	for i := 1; i < n; i++ {
		addIfNew(NodeID(r.Intn(i)), NodeID(i))
	}
	for g.M() < m {
		addIfNew(NodeID(r.Intn(n)), NodeID(r.Intn(n)))
	}
	return g.Finalize()
}

// Dumbbell returns two K_k cliques joined by a path of pathLen extra nodes.
// Total nodes: 2k + pathLen. Good for congestion experiments: all
// clique-to-clique traffic funnels through the path.
func Dumbbell(k, pathLen int) *Graph {
	n := 2*k + pathLen
	g := New(n)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddEdge(NodeID(i), NodeID(j), 0)
			g.AddEdge(NodeID(k+pathLen+i), NodeID(k+pathLen+j), 0)
		}
	}
	prev := NodeID(0)
	for i := 0; i < pathLen; i++ {
		g.AddEdge(prev, NodeID(k+i), 0)
		prev = NodeID(k + i)
	}
	g.AddEdge(prev, NodeID(k+pathLen), 0)
	return g.Finalize()
}

// Lollipop returns K_k with a path of pathLen nodes hanging off node 0.
func Lollipop(k, pathLen int) *Graph {
	n := k + pathLen
	g := New(n)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddEdge(NodeID(i), NodeID(j), 0)
		}
	}
	prev := NodeID(0)
	for i := 0; i < pathLen; i++ {
		g.AddEdge(prev, NodeID(k+i), 0)
		prev = NodeID(k + i)
	}
	return g.Finalize()
}

// StarOfPaths returns deg paths of length pathLen all attached to a hub
// (node 0). This is the worst case for the "natural" registration approach
// (§3.2): Θ(n) registrants behind one hub edge. n = 1 + deg*pathLen.
func StarOfPaths(deg, pathLen int) *Graph {
	n := 1 + deg*pathLen
	g := New(n)
	for d := 0; d < deg; d++ {
		prev := NodeID(0)
		for i := 0; i < pathLen; i++ {
			v := NodeID(1 + d*pathLen + i)
			g.AddEdge(prev, v, 0)
			prev = v
		}
	}
	return g.Finalize()
}

// WithRandomWeights returns a copy of g whose edge weights are distinct
// values in [1, 10*m], a random permutation determined by seed. Distinct
// weights make the MST unique, which the tests rely on.
func WithRandomWeights(g *Graph, seed uint64) *Graph {
	r := newRNG(seed)
	out := New(g.N())
	perm := make([]int64, g.M())
	for i := range perm {
		perm[i] = int64(i + 1)
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < g.M(); i++ {
		out.AddEdge(g.edgeU[i], g.edgeV[i], perm[i])
	}
	return out.Finalize()
}
