package wire

import (
	"bytes"
	"testing"
)

func TestBodyRawRoundTrip(t *testing.T) {
	b := Body{Kind: 7, Sub: 9, P: -3, A: 1, B: -2, C: 1 << 40, D: -1 << 50}
	enc := AppendBody(nil, b)
	if len(enc) != BodyWireSize {
		t.Fatalf("encoded %d bytes, want %d", len(enc), BodyWireSize)
	}
	if got := DecodeBody(enc); got != b {
		t.Fatalf("round trip %+v -> %+v", b, got)
	}
	// Decoding from an odd offset must still work: frames land at
	// arbitrary positions in a socket read buffer.
	shifted := append(make([]byte, 3), enc...)
	if got := DecodeBody(shifted[3:]); got != b {
		t.Fatalf("unaligned round trip %+v -> %+v", b, got)
	}
}

func TestBodySegRoundTrip(t *testing.T) {
	var src, dst Arena
	for _, n := range []int{0, 1, 5, 1000} {
		b := Body{Kind: 3, A: int64(n)}
		if n > 0 {
			seg, w := src.Alloc(n)
			for i := range w {
				w[i] = int32(i * 3)
			}
			b.Seg = seg
		}
		enc := AppendBodySeg(nil, b, &src)
		if len(enc) != FrameLen(b) {
			t.Fatalf("n=%d: encoded %d bytes, FrameLen says %d", n, len(enc), FrameLen(b))
		}
		got, used, err := DecodeBodySeg(enc, &dst)
		if err != nil || used != len(enc) {
			t.Fatalf("n=%d: decode used %d/%d, err %v", n, used, len(enc), err)
		}
		if got.Seg.Len() != n {
			t.Fatalf("n=%d: re-homed seg has %d words", n, got.Seg.Len())
		}
		if n > 0 {
			w := dst.Data(got.Seg)
			for i := range w {
				if w[i] != int32(i*3) {
					t.Fatalf("n=%d: word %d = %d after re-homing", n, i, w[i])
				}
			}
			dst.Release(got.Seg)
		}
		got.Seg, b.Seg = Seg{}, Seg{}
		if got != b {
			t.Fatalf("n=%d: scalar fields %+v -> %+v", n, b, got)
		}
	}
	if dst.Live() != 0 {
		t.Fatalf("receiving arena leaks %d segments", dst.Live())
	}
	// Truncated buffers error instead of panicking.
	b := Body{Kind: 1}
	seg, _ := src.Alloc(4)
	b.Seg = seg
	enc := AppendBodySeg(nil, b, &src)
	for _, cut := range []int{0, BodyWireSize - 1, BodyWireSize + 3, len(enc) - 1} {
		if _, _, err := DecodeBodySeg(enc[:cut], &dst); err == nil {
			t.Fatalf("cut=%d: truncated frame decoded without error", cut)
		}
	}
	if !bytes.Equal(AppendBody(nil, Body{}), make([]byte, BodyWireSize)) {
		t.Fatal("zero Body does not encode to zero bytes")
	}
}
