package async

import (
	"math/rand"
	"sort"
	"testing"
)

// TestEventQueueOrder drives the calendar queue with a randomized
// open-system workload — pops interleaved with pushes at now+d, d in (0,1]
// like the simulator — and checks it yields exactly the (t, seq) order of a
// reference sort.
func TestEventQueueOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var q eventQueue
	var seq uint64
	var now float64
	var pushed, popped []event

	push := func(d float64) {
		ev := event{t: now + d, seq: seq}
		seq++
		pushed = append(pushed, ev)
		q.push(ev)
	}
	// Seed a burst, then run pop-then-maybe-push cycles.
	for i := 0; i < 50; i++ {
		push(rng.Float64()*0.999 + 0.001)
	}
	for !q.empty() {
		ev := q.pop()
		if ev.t < now {
			t.Fatalf("time went backwards: %g after %g", ev.t, now)
		}
		now = ev.t
		popped = append(popped, ev)
		if len(pushed) < 5000 {
			for k := rng.Intn(3); k > 0; k-- {
				switch rng.Intn(4) {
				case 0:
					push(1.0) // maximal delay: lands exactly one unit out
				case 1:
					push(1.0 / (1 << 16)) // near-instant
				default:
					push(rng.Float64()*0.999 + 0.001)
				}
			}
		}
	}
	if len(popped) != len(pushed) {
		t.Fatalf("popped %d events, pushed %d", len(popped), len(pushed))
	}
	// The pop sequence must equal the (t, seq)-sorted push sequence.
	sort.Slice(pushed, func(i, j int) bool { return evLess(pushed[i], pushed[j]) })
	for i := range pushed {
		if popped[i].seq != pushed[i].seq || popped[i].t != pushed[i].t {
			t.Fatalf("pop %d = {t:%g seq:%d}, want {t:%g seq:%d}",
				i, popped[i].t, popped[i].seq, pushed[i].t, pushed[i].seq)
		}
	}
}

// TestEventQueueOverflow exercises the fallback path for events beyond the
// one-unit wheel horizon (only reachable by adversaries that break the
// delay contract; the queue must still order correctly).
func TestEventQueueOverflow(t *testing.T) {
	var q eventQueue
	for i := 0; i < 200; i++ {
		q.push(event{t: float64(i%17) * 1.7, seq: uint64(i)})
	}
	var last event
	first := true
	for !q.empty() {
		ev := q.pop()
		if !first && evLess(ev, last) {
			t.Fatalf("out of order: {t:%g seq:%d} after {t:%g seq:%d}",
				ev.t, ev.seq, last.t, last.seq)
		}
		last, first = ev, false
	}
}

// BenchmarkEventQueuePushPop measures the queue's steady-state hold
// pattern (one push per pop, delays spread over the unit interval), the
// simulator's dominant operation mix.
func BenchmarkEventQueuePushPop(b *testing.B) {
	var q eventQueue
	rng := rand.New(rand.NewSource(7))
	delays := make([]float64, 1024)
	for i := range delays {
		delays[i] = rng.Float64()*0.999 + 0.001
	}
	now := 0.0
	var seq uint64
	for i := 0; i < 512; i++ {
		q.push(event{t: now + delays[i], seq: seq})
		seq++
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := q.pop()
		now = ev.t
		q.push(event{t: now + delays[i&1023], seq: seq})
		seq++
	}
}

// TestEventQueuePopBefore drives the window-draining primitive against a
// reference sort: popBefore(limit) must yield exactly the events with
// t < limit, in (t, seq) order, and leave the rest poppable afterwards.
func TestEventQueuePopBefore(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var q eventQueue
	var all []event
	now := 0.0
	for i := 0; i < 400; i++ {
		ev := event{t: now + rng.Float64()*0.999 + 0.001, seq: uint64(i)}
		all = append(all, ev)
		q.push(ev)
		if i%7 == 0 { // keep the clock moving like the simulator does
			now += 0.05
		}
	}
	sort.Slice(all, func(i, j int) bool { return evLess(all[i], all[j]) })
	limit := all[len(all)/3].t // boundary event: t >= limit stays queued
	var before []event
	for {
		ev, ok := q.popBefore(limit)
		if !ok {
			break
		}
		before = append(before, ev)
	}
	// minT on the remainder must report the first at-or-beyond-limit event.
	if mt, ok := q.minT(); !ok || mt < limit {
		t.Fatalf("minT after window = %g, want >= %g", mt, limit)
	}
	i := 0
	for ; i < len(all) && all[i].t < limit; i++ {
		if i >= len(before) || before[i].seq != all[i].seq {
			t.Fatalf("popBefore order diverges at %d", i)
		}
	}
	if i != len(before) {
		t.Fatalf("popBefore yielded %d events, want %d", len(before), i)
	}
	for ; i < len(all); i++ {
		ev := q.pop()
		if ev.seq != all[i].seq || ev.t != all[i].t {
			t.Fatalf("post-window pop %d = {t:%g seq:%d}, want {t:%g seq:%d}",
				i, ev.t, ev.seq, all[i].t, all[i].seq)
		}
	}
	if !q.empty() {
		t.Fatal("queue not drained")
	}
}

// TestEventQueueReset verifies reset yields an empty, reusable queue whose
// retained capacity still orders correctly.
func TestEventQueueReset(t *testing.T) {
	var q eventQueue
	for i := 0; i < 300; i++ {
		q.push(event{t: float64(i%13) * 0.07, seq: uint64(i)})
	}
	q.pop()
	q.reset()
	if !q.empty() {
		t.Fatal("queue not empty after reset")
	}
	if _, ok := q.minT(); ok {
		t.Fatal("minT reported an event after reset")
	}
	for i := 0; i < 100; i++ {
		q.push(event{t: float64((i*31)%97) / 97, seq: uint64(i)})
	}
	last := -1.0
	for !q.empty() {
		ev := q.pop()
		if ev.t < last {
			t.Fatalf("out of order after reset: %g after %g", ev.t, last)
		}
		last = ev.t
	}
}
