package dsync

import (
	"reflect"
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	g := Grid(4, 4)
	mk := NewFlood(0)
	sres := RunSync(g, mk)
	if sres.T != g.Diameter() {
		t.Fatalf("flood T = %d, want %d", sres.T, g.Diameter())
	}
	ares := Synchronize(g, sres.Rounds+2, RandomDelays(1), mk)
	for v, want := range sres.Outputs {
		if ares.Outputs[v] != want {
			t.Fatalf("node %d: async %v, sync %v", v, ares.Outputs[v], want)
		}
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	g := Cycle(10)
	mk := NewBFS([]NodeID{0})
	sres := RunSync(g, mk)
	bound := sres.Rounds + 2
	for name, res := range map[string]AsyncResult{
		"alpha": SynchronizeAlpha(g, bound, FixedDelays(1), mk),
		"beta":  SynchronizeBeta(g, bound, FixedDelays(1), mk),
		"gamma": SynchronizeGamma(g, bound, FixedDelays(1), mk),
	} {
		for v, want := range sres.Outputs {
			if res.Outputs[v] != want {
				t.Fatalf("%s: node %d mismatch", name, v)
			}
		}
	}
}

func TestPublicAPILeaderAndMST(t *testing.T) {
	g := WithRandomWeights(Grid(4, 4), 3)
	lres := AsyncLeaderElection(g, RandomDelays(2))
	for v := 0; v < g.N(); v++ {
		if lres.Outputs[NodeID(v)] != NodeID(0) {
			t.Fatalf("node %d elected %v", v, lres.Outputs[NodeID(v)])
		}
	}
	mres := AsyncMST(g, RandomDelays(2))
	edges := map[[2]NodeID]bool{}
	for v := 0; v < g.N(); v++ {
		out := mres.Outputs[NodeID(v)].(MSTResult)
		for _, nb := range out.TreeNeighbors {
			key := [2]NodeID{NodeID(v), nb}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			edges[key] = true
		}
	}
	if len(edges) != g.N()-1 {
		t.Fatalf("MST edge count %d, want %d", len(edges), g.N()-1)
	}
}

func TestPublicAPIThresholdedBFS(t *testing.T) {
	g := Path(12)
	res := ThresholdedBFS(g, []NodeID{0}, 4, RandomDelays(5))
	if res.Complete {
		t.Fatal("threshold 4 on path 12 cannot be complete")
	}
	reached, beyond := 0, 0
	for v := 0; v < g.N(); v++ {
		switch res.Outputs[NodeID(v)].(type) {
		case Unreachable:
			beyond++
		default:
			reached++
		}
	}
	if reached != 5 || beyond != 7 {
		t.Fatalf("reached=%d beyond=%d, want 5/7", reached, beyond)
	}
}

func TestPublicAPIAsyncBFS(t *testing.T) {
	g := Cycle(12)
	res := AsyncBFS(g, []NodeID{0}, RandomDelays(9))
	if len(res.Outputs) != g.N() {
		t.Fatalf("outputs %d, want %d", len(res.Outputs), g.N())
	}
	if res.FinalThreshold < g.Diameter() {
		t.Fatalf("final threshold %d < D %d", res.FinalThreshold, g.Diameter())
	}
}

func TestCoverReuseAcrossRuns(t *testing.T) {
	g := Grid(4, 4)
	mk := NewBFS([]NodeID{0})
	sres := RunSync(g, mk)
	bound := sres.Rounds + 2
	l := BuildCovers(g, bound)
	a := SynchronizeWithCovers(g, bound, RandomDelays(3), l, mk)
	b := SynchronizeWithCovers(g, bound, RandomDelays(3), l, mk)
	if a.Time != b.Time || a.Msgs != b.Msgs {
		t.Fatal("cover reuse broke determinism")
	}
}

func TestPublicAPIAsyncModes(t *testing.T) {
	g := Grid(5, 5)
	mk := NewBFS([]NodeID{0})
	sres := RunSync(g, mk)
	bound := sres.Rounds + 2
	serial := SynchronizeMode(g, bound, FixedDelays(1), AsyncModeSingle, mk)
	multi := SynchronizeMode(g, bound, FixedDelays(1), AsyncModeMulti, mk)
	if !reflect.DeepEqual(serial, multi) {
		t.Fatal("SynchronizeMode results differ across async execution modes")
	}
	bfsSerial := AsyncBFSMode(g, []NodeID{0}, RandomDelays(4), AsyncModeSingle)
	bfsMulti := AsyncBFSMode(g, []NodeID{0}, RandomDelays(4), AsyncModeMulti)
	if !reflect.DeepEqual(bfsSerial, bfsMulti) {
		t.Fatal("AsyncBFSMode results differ across async execution modes")
	}
}

func TestPublicAPISnapshotReplay(t *testing.T) {
	g := Grid(5, 5)
	mk := NewBFS([]NodeID{0})
	sres := RunSync(g, mk)
	bound := sres.Rounds + 2

	// Synchronized (asynchronous-engine) checkpoint: step, snapshot,
	// replay twice through the same handle.
	want := Synchronize(g, bound, RandomDelays(2), mk)
	run := NewSynchronizedRun(g, bound, RandomDelays(2), mk)
	run.RunSteps(100)
	snap, err := run.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	replayer := NewSynchronizedRun(g, bound, RandomDelays(2), mk)
	for i := 0; i < 2; i++ {
		got, err := Replay(replayer, snap)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("replay %d diverged from the uninterrupted synchronized run", i)
		}
	}

	// Lockstep checkpoint: snapshot at a pulse boundary, replay.
	swant := RunSync(g, mk)
	lr := NewLockstepRun(g, mk)
	lr.RunPulses(2)
	lsnap, err := lr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sgot, err := ReplayLockstep(g, mk, lsnap)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sgot, swant) {
		t.Fatal("lockstep replay diverged from the uninterrupted run")
	}
}
