package async

import "repro/internal/graph"

// Adversary chooses message delays. Delays must lie in (0, 1]: 1 is the
// normalized time unit τ of the model (§1.1). The adversary sees everything
// the model allows it to see — endpoints, a per-link sequence number, and
// the protocol tag — and must be deterministic so experiments reproduce.
//
// Every adversary additionally declares a positive lower bound on its
// delays via MinDelay. The model itself guarantees such a bound exists
// (delays are drawn from a fixed deterministic rule over a finite value
// set), and the bounded-lag parallel execution mode turns it into
// lookahead: all events within one MinDelay-wide time window are causally
// independent across nodes, so they may execute concurrently. The engine
// enforces the declaration at dispatch time — returning a delay below the
// declared bound panics, in every execution mode.
type Adversary interface {
	// Delay returns the transit delay for the seq-th transmission (message
	// or ack) on the directed link from→to.
	Delay(from, to graph.NodeID, seq uint64, p Proto) float64
	// MinDelay returns a positive lower bound d_min <= 1 such that every
	// Delay call returns at least d_min. It is the conservative-simulation
	// lookahead: larger bounds admit wider parallel windows.
	MinDelay() float64
	// Name identifies the adversary in experiment tables.
	Name() string
}

// Fixed delays every message by exactly D.
type Fixed struct{ D float64 }

// Delay implements Adversary.
func (f Fixed) Delay(_, _ graph.NodeID, _ uint64, _ Proto) float64 { return clamp(f.D) }

// MinDelay implements Adversary: every delay is exactly D (clamped), so the
// lookahead is the whole delay — the best case for the parallel mode.
func (f Fixed) MinDelay() float64 { return clamp(f.D) }

// Name implements Adversary.
func (f Fixed) Name() string { return "fixed" }

// SeededRandom draws each delay independently from (0,1], deterministically
// from (seed, from, to, seq).
type SeededRandom struct{ Seed uint64 }

// Delay implements Adversary.
func (a SeededRandom) Delay(from, to graph.NodeID, seq uint64, _ Proto) float64 {
	h := mix(a.Seed, uint64(from)*0x9E3779B97F4A7C15^uint64(to)*0xC2B2AE3D27D4EB4F^seq)
	// Map to (0,1]: (h mod 2^20 + 1) / 2^20.
	return float64(h%(1<<20)+1) / (1 << 20)
}

// MinDelay implements Adversary: the delay map's smallest value is
// (0+1)/2^20.
func (a SeededRandom) MinDelay() float64 { return 1.0 / (1 << 20) }

// Name implements Adversary.
func (a SeededRandom) Name() string { return "random" }

// Skew makes links toward low-ID nodes fast and links toward high-ID nodes
// slow, creating a persistent asymmetry in information propagation speed —
// the classic stress for synchronizer safety logic.
type Skew struct {
	// Cut separates fast from slow destinations.
	Cut graph.NodeID
	// FastD is the delay toward nodes below Cut; slow links get 1.0.
	FastD float64
}

// Delay implements Adversary.
func (a Skew) Delay(_, to graph.NodeID, _ uint64, _ Proto) float64 {
	if to < a.Cut {
		return clamp(a.FastD)
	}
	return 1.0
}

// MinDelay implements Adversary: min(FastD, 1), via the same clamping
// Delay applies (clamp never exceeds 1, and slow links pay exactly 1).
func (a Skew) MinDelay() float64 { return clamp(a.FastD) }

// Name implements Adversary.
func (a Skew) Name() string { return "skew" }

// Flaky alternates between near-instant and maximal delay per transmission
// on each link, maximizing cross-link reordering while still honoring the
// per-link FIFO that the ack discipline induces.
type Flaky struct{ Seed uint64 }

// Delay implements Adversary.
func (a Flaky) Delay(from, to graph.NodeID, seq uint64, _ Proto) float64 {
	h := mix(a.Seed, uint64(from)<<32^uint64(to)^seq<<7)
	if h&1 == 0 {
		return 1.0 / (1 << 16)
	}
	return 1.0
}

// MinDelay implements Adversary: the near-instant branch's 1/2^16.
func (a Flaky) MinDelay() float64 { return 1.0 / (1 << 16) }

// Name implements Adversary.
func (a Flaky) Name() string { return "flaky" }

// EdgeLottery assigns each directed link one fixed random speed for the
// whole run: some paths are persistently fast, others persistently slow.
type EdgeLottery struct{ Seed uint64 }

// Delay implements Adversary.
func (a EdgeLottery) Delay(from, to graph.NodeID, _ uint64, _ Proto) float64 {
	h := mix(a.Seed, uint64(from)*0xD6E8FEB86659FD93^uint64(to))
	return float64(h%(1<<16)+1) / (1 << 16)
}

// MinDelay implements Adversary: the speed map's smallest value is
// (0+1)/2^16.
func (a EdgeLottery) MinDelay() float64 { return 1.0 / (1 << 16) }

// Name implements Adversary.
func (a EdgeLottery) Name() string { return "edge-lottery" }

func clamp(d float64) float64 {
	if d <= 0 {
		return 1.0 / (1 << 20)
	}
	if d > 1 {
		return 1
	}
	return d
}

// mix is a 64-bit finalizer (splitmix64 style).
func mix(a, b uint64) uint64 {
	z := a + 0x9E3779B97F4A7C15 + b
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// StandardAdversaries returns the suite used by robustness experiments.
func StandardAdversaries(n int, seed uint64) []Adversary {
	return []Adversary{
		Fixed{D: 1},
		SeededRandom{Seed: seed},
		Skew{Cut: graph.NodeID(n / 2), FastD: 1.0 / 64},
		Flaky{Seed: seed ^ 0xABCD},
		EdgeLottery{Seed: seed ^ 0x1234},
	}
}
