package bench

import (
	"reflect"
	"time"

	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/graph"
)

// e17FaultOverhead measures the deterministic fault plane end to end: the
// same synchronized BFS runs under a grid of crash × drop × budget
// schedules, and each row reports what the faults cost — delivery
// counters (delivered / dropped / retransmitted / undeliverable), the
// pulse watchdog's stall verdict, and time/message overhead against the
// fault-free baseline. Expected shape: generous budgets convert drops
// into bounded time overhead (delivered stays full, timeX grows with the
// drop rate); a starved budget converts them into Undeliverable
// abandonments and pulse stalls instead (the overhead columns then price
// a *partial* execution and can undershoot).
//
// Crash rows additionally price self-healing: the epoch-0 crashed set is
// fed to the layered-cover repair path, and repair(ms) vs rebuild(ms)
// compares incremental repair against a from-scratch masked build of the
// identical cover (det column asserts the two are deep-equal — the
// golden invariant from internal/cover's repair tests). reuse is the
// fraction of clusters the repair kept without rebuilding.
//
// Like E13/E14 this runs as one serial job: wall-clock columns would
// distort under concurrent trials. With Options.Faults set, the spec is
// appended as an extra row after the built-in grid.
func e17FaultOverhead(c *Ctx) {
	t := c.table("overhead vs fault rate; budget turns drops into delay, exhaustion into stalls; repair must equal rebuild (det)")
	t.head("graph", "faults", "delivered", "dropped", "retrans", "undeliv", "stalled", "timeX", "msgX", "repair(ms)", "rebuild(ms)", "reuse", "det")
	seed := c.seedOr(7)
	specs := []string{
		"none",
		"drop:p=0.02,budget=3",
		"drop:p=0.1,budget=3",
		"drop:p=0.1,budget=1",
		"drop:p=0.1,budget=0",
		"crash:p=0.01,budget=3",
		"crash:p=0.01,drop:p=0.1,budget=3",
		"crash:p=0.02,drop:p=0.1,budget=1",
	}
	if c.fspec != "" {
		specs = append(specs, c.fspec)
	}
	cases := []namedGraph{
		{"grid16x16", func() *graph.Graph { return graph.Grid(16, 16) }},
		{"er n=300 m=900", func() *graph.Graph { return graph.RandomConnected(300, 900, 9) }},
	}
	t.emit(c.jobs(1, func(int) []row {
		var rows []row
		for _, tc := range cases {
			g := tc.mk()
			mk := bfsMk([]graph.NodeID{0})
			sres := c.runSync(g, mk)
			bound := sres.Rounds + 2
			var base async.Result
			for i, spec := range specs {
				fs, err := async.ParseFaultSpec(spec)
				if err != nil {
					panic(err) // unreachable: the grid specs are literals, c.fspec is pre-validated by Run
				}
				if fs != nil && fs.Seed == 0 {
					fs.Seed = seed
				}
				adv := async.WithFaults(async.SeededRandom{Seed: seed}, fs)
				res, rep := core.SynchronizeWatched(c.coreCfg(g, bound, adv), mk)
				if i == 0 {
					base = res
				}
				delivered := res.Msgs - res.Undeliverable
				timeX := res.Time / base.Time
				msgX := float64(res.Msgs) / float64(base.Msgs)
				repairMs, rebuildMs, reuse, det := e17RepairCost(g, fs)
				rows = append(rows, row{
					cols: []any{tc.name, spec, delivered, res.Dropped, res.Retrans, res.Undeliverable,
						rep.IsStalled(), timeX, msgX, repairMs, rebuildMs, reuse, det},
					rec: Rec{"graph": tc.name, "faults": spec, "n": g.N(), "m": g.M(),
						"delivered": delivered, "dropped": res.Dropped, "retrans": res.Retrans,
						"undeliverable": res.Undeliverable, "stalledNodes": rep.StalledCount,
						"stalled": rep.IsStalled(), "time": res.Time, "msgs": res.Msgs,
						"timeOverhead": timeX, "msgOverhead": msgX,
						"repairMs": repairMs, "rebuildMs": rebuildMs, "clusterReuse": reuse,
						"repairDeterministic": det},
				})
			}
		}
		return rows
	}))
}

// e17RepairCost prices self-healing for one schedule: incremental repair
// of the fault-free layered cover against a from-scratch masked rebuild,
// for the schedule's epoch-0 crashed set. Schedules with no crash faults
// have nothing to heal and report zeros with reuse 1 (the repair path
// short-circuits to the base cover).
func e17RepairCost(g *graph.Graph, fs *async.FaultSchedule) (repairMs, rebuildMs, reuse float64, det bool) {
	const d = 8 // layered radii 1,2,4,8 — the synchronizer's small levels
	if !fs.Active() || fs.CrashP == 0 {
		return 0, 0, 1, true
	}
	faulted := fs.CrashedSet(g.N(), 0)
	if len(faulted) == 0 {
		return 0, 0, 1, true
	}
	base := cover.BuildLayered(g, d, nil)
	t0 := time.Now()
	repaired, stats := cover.RepairLayered(base, faulted)
	repairMs = float64(time.Since(t0).Microseconds()) / 1000
	alive := make([]bool, g.N())
	for i := range alive {
		alive[i] = true
	}
	for _, v := range faulted {
		alive[v] = false
	}
	t1 := time.Now()
	rebuilt := cover.BuildLayeredMasked(g, d, nil, alive)
	rebuildMs = float64(time.Since(t1).Microseconds()) / 1000
	det = reflect.DeepEqual(repaired, rebuilt)
	var total, reused int
	for _, st := range stats {
		total += st.Reused + st.Dirty
		reused += st.Reused
	}
	if total > 0 {
		reuse = float64(reused) / float64(total)
	}
	return repairMs, rebuildMs, reuse, det
}
