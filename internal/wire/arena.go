package wire

import (
	"fmt"
	"math/bits"
	"sync"
)

// Seg references a variable-length []int32 segment inside an Arena. It is
// a pointer-free 8-byte handle — (chunk, offset) packed with a length —
// so Bodies, and the engine inbox/outbox/event buffers that carry them by
// value, contain no pointers at all: the GC neither scans them nor pays
// write barriers when they are copied. The zero Seg means "no segment".
type Seg struct {
	off uint32 // chunk index << chunkBits | word offset within the chunk
	n   int32  // length in words; 0 = no segment
}

// Len returns the segment length in words (0 for the zero Seg).
func (s Seg) Len() int { return int(s.n) }

// IsZero reports whether s references no segment.
func (s Seg) IsZero() bool { return s.n == 0 }

// Arena owns the backing store Seg handles point into and recycles
// released segments, the same way the engines' outbox and inbox buffers
// recycle their capacity: once a run reaches steady state, Alloc stops
// hitting the heap entirely.
//
// Storage is chunked — chunks never move once allocated — so the []int32
// view returned by Alloc (and by Data) stays valid until the segment is
// released. Segments are carved at power-of-two granularity; Release
// files them into per-class free lists for reuse. A released segment must
// not be released again or read afterwards — see package wire for the
// ownership rules the engines enforce.
//
// An Arena is safe for concurrent use (the lockstep runner's worker pool
// allocates from several goroutines). The zero value is ready to use.
type Arena struct {
	mu     sync.Mutex
	chunks [][]int32
	std    []bool             // std[i]: chunks[i] is a standard bump chunk (not a dedicated oversize chunk)
	free   [maxClass][]uint32 // released segment offsets, by size class
	cursor int                // bump offset into the current standard chunk
	last   int                // 1 + index of the current standard chunk; 0 = none

	carves, recycles uint64
	live             int // outstanding segments: allocations minus releases
}

// chunkBits sizes a standard chunk: 2^chunkBits words (256 KiB). Segments
// of a larger class get a dedicated chunk of exactly their class size.
const chunkBits = 16

// maxClass bounds the size classes; the largest segment is 2^(maxClass-1)
// words (~128 MiB), far beyond any message payload.
const maxClass = 25

// class returns the smallest c with 1<<c >= n.
func class(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Alloc carves a zeroed segment of length n and returns its handle plus a
// writable view. The view stays valid until Release. For n <= 0 it
// returns the zero Seg and a nil view.
func (a *Arena) Alloc(n int) (Seg, []int32) {
	if n <= 0 {
		return Seg{}, nil
	}
	c := class(n)
	if c >= maxClass {
		panic(fmt.Sprintf("wire: segment of %d words exceeds the arena's maximum", n))
	}
	a.mu.Lock()
	a.live++
	if l := a.free[c]; len(l) > 0 {
		off := l[len(l)-1]
		a.free[c] = l[:len(l)-1]
		a.recycles++
		view := a.viewLocked(off, n)
		a.mu.Unlock()
		for i := range view {
			view[i] = 0
		}
		return Seg{off: off, n: int32(n)}, view
	}
	a.carves++
	size := 1 << c
	var off uint32
	if c >= chunkBits {
		// Oversize class: dedicated chunk. It is tracked as non-standard
		// even when its size happens to equal a standard chunk's
		// (c == chunkBits), so the bump cursor can never re-carve it while
		// its segment is live.
		a.appendChunkLocked(size, false)
		off = uint32(len(a.chunks)-1) << chunkBits
	} else {
		if a.last == 0 || a.cursor+size > 1<<chunkBits {
			a.advanceChunkLocked()
		}
		off = uint32(a.last-1)<<chunkBits | uint32(a.cursor)
		a.cursor += size
	}
	view := a.viewLocked(off, n)
	a.mu.Unlock()
	return Seg{off: off, n: int32(n)}, view
}

// advanceChunkLocked moves the bump cursor to the next standard-size chunk:
// after a Reset the existing chunks are re-carved in order (oversize chunks
// interleaved in the table are skipped); only when none remain does the
// table grow.
func (a *Arena) advanceChunkLocked() {
	for i := a.last; i < len(a.chunks); i++ {
		if a.std[i] {
			a.last = i + 1
			a.cursor = 0
			return
		}
	}
	a.appendChunkLocked(1<<chunkBits, true)
	a.last = len(a.chunks)
	a.cursor = 0
}

// Reset invalidates every outstanding handle and rearms the arena for a
// fresh run while keeping its standard chunks for reuse — the engine-reuse
// analogue of the per-segment free lists. Oversize chunks (dedicated to a
// single large segment) are dropped so repeated runs with occasional big
// payloads do not accumulate them. All views and Segs obtained before
// Reset are dead afterwards.
func (a *Arena) Reset() {
	a.mu.Lock()
	// Scrub only the carved prefix — the chunks the bump cursor walked
	// through this cycle, the current one up to its cursor. Everything
	// beyond the frontier is still zero (fresh from make, or scrubbed by
	// an earlier Reset and never re-carved), and Alloc's bump path hands
	// out views without zeroing, so this restores its zeroed-storage
	// contract at cost proportional to use, not to retained capacity.
	for i := 0; i < a.last && i < len(a.chunks); i++ {
		ch := a.chunks[i]
		if !a.std[i] {
			continue // oversize: dropped below
		}
		if i == a.last-1 {
			ch = ch[:a.cursor]
		}
		for j := range ch {
			ch[j] = 0
		}
	}
	kept := a.chunks[:0]
	for i, ch := range a.chunks {
		if a.std[i] {
			kept = append(kept, ch)
		}
	}
	for i := len(kept); i < len(a.chunks); i++ {
		a.chunks[i] = nil
	}
	a.chunks = kept
	a.std = a.std[:len(kept)]
	for i := range a.std {
		a.std[i] = true
	}
	for c := range a.free {
		a.free[c] = a.free[c][:0]
	}
	a.cursor = 0
	a.last = 0
	if len(kept) > 0 {
		a.last = 1
	}
	a.live = 0
	a.mu.Unlock()
}

// appendChunkLocked grows the chunk table, guarding the handle encoding:
// the chunk index must fit the high bits of a Seg offset, or handles would
// silently wrap onto chunk 0's storage. Hitting the bound means ~16 GiB of
// live segments — a leak, not a workload — so fail loudly like the
// size-class guard does.
func (a *Arena) appendChunkLocked(size int, standard bool) {
	if len(a.chunks) >= 1<<(32-chunkBits) {
		panic(fmt.Sprintf("wire: arena exceeded %d chunks (segments are being leaked, not released)", 1<<(32-chunkBits)))
	}
	a.chunks = append(a.chunks, make([]int32, size))
	a.std = append(a.std, standard)
}

func (a *Arena) viewLocked(off uint32, n int) []int32 {
	chunk := a.chunks[off>>chunkBits]
	i := int(off & (1<<chunkBits - 1))
	return chunk[i : i+n : i+n]
}

// Data resolves a handle to its segment contents. The view is read/write
// and stays valid until the segment is released. The zero Seg yields nil.
func (a *Arena) Data(s Seg) []int32 {
	if s.n == 0 {
		return nil
	}
	a.mu.Lock()
	v := a.viewLocked(s.off, int(s.n))
	a.mu.Unlock()
	return v
}

// Release returns a segment to the arena for reuse. Releasing the zero
// Seg is a no-op. The caller must not use the handle (or any view of it)
// afterwards.
func (a *Arena) Release(s Seg) {
	if s.n == 0 {
		return
	}
	c := class(int(s.n))
	a.mu.Lock()
	a.free[c] = append(a.free[c], s.off)
	a.live--
	a.mu.Unlock()
}

// ReleaseAll releases a batch of segments under one lock acquisition —
// the async engine's speculative rollback path returns every rejected
// event's sent segments wholesale. Zero Segs are skipped; the same
// single-release ownership rules apply to each element.
func (a *Arena) ReleaseAll(segs []Seg) {
	if len(segs) == 0 {
		return
	}
	a.mu.Lock()
	for _, s := range segs {
		if s.n == 0 {
			continue
		}
		a.free[class(int(s.n))] = append(a.free[class(int(s.n))], s.off)
		a.live--
	}
	a.mu.Unlock()
}

// Stats reports how many Alloc calls carved fresh storage and how many
// were served from the free lists.
func (a *Arena) Stats() (carves, recycles uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.carves, a.recycles
}

// Live reports the number of outstanding segments — allocated and neither
// released nor invalidated by Reset. Leak tests pin it: after a run whose
// every message lifecycle completed, it should be exactly the number of
// segments intentionally retained (usually zero).
func (a *Arena) Live() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.live
}
