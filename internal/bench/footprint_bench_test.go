package bench

import "testing"

// BenchmarkFootprint reports the resident-memory trajectory `make bench`
// commits into BENCH_N.json: retained heap bytes of the graph plane and of
// each engine after one completed flood, normalized per directed link and
// per node. The probe is deterministic (the pinned values in
// footprint_test.go are exact across runs), so the Makefile runs it with
// -benchtime 1x; ns/op on these rows is probe time, not engine time — the
// footprint metrics are the payload. The last case is the million-node
// row the acceptance bar asks for.
func BenchmarkFootprint(b *testing.B) {
	specs := []string{
		"grid3d:32x32x32",
		"ring:k=4000,c=8",
		"pa:n=50000,m=4,seed=7",
		"grid3d:100x100x100",
	}
	for _, spec := range specs {
		b.Run(spec, func(b *testing.B) {
			g := mustSpec(spec)
			var gb, ab, sb int64
			for i := 0; i < b.N; i++ {
				var err error
				gb, err = GraphRetainedBytes(spec)
				if err != nil {
					b.Fatal(err)
				}
				ab = AsyncRetainedBytes(g)
				sb = SyncRetainedBytes(g)
			}
			links, n := float64(g.Links()), float64(g.N())
			b.ReportMetric(float64(gb)/links, "graphB/link")
			b.ReportMetric(float64(ab)/links, "asyncB/link")
			b.ReportMetric(float64(sb)/n, "syncB/node")
		})
	}
}
