//go:build !race

package bench

// raceEnabled reports whether the race detector instruments this build.
// Race shadow state inflates allocation sizes, so byte-exact footprint
// pins only hold on uninstrumented builds.
const raceEnabled = false
