package async

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/wire"
)

// Module is a sub-protocol that can be composed with others on one node.
// It is the same shape as Handler, except Start replaces Init to avoid
// confusion about who owns simulator initialization.
type Module interface {
	Start(n *Node)
	Recv(n *Node, from graph.NodeID, m Msg)
	Ack(n *Node, to graph.NodeID, m Msg)
}

// Mux composes several Modules into one Handler, routing each message to
// the module registered for its Proto tag. The paper's algorithms are
// stacks of subroutines (covers, registration, gather, BFS, synchronizer
// core) sharing the same physical links; Mux is how one node hosts them.
type Mux struct {
	modules map[Proto]Module
	order   []Proto
	// cloneBuf is CloneStateInto's scratch frame (see muxsnap.go); clone
	// pairs are per-node, so per-Mux scratch is race-free under ModeSpec's
	// concurrent per-node cloning.
	cloneBuf wire.Enc
}

var _ Handler = (*Mux)(nil)

// NewMux returns an empty Mux.
func NewMux() *Mux {
	return &Mux{modules: make(map[Proto]Module)}
}

// Register attaches mod to proto p. Registering the same proto twice panics.
func (x *Mux) Register(p Proto, mod Module) {
	if _, dup := x.modules[p]; dup {
		panic(fmt.Sprintf("async: proto %d registered twice", p))
	}
	x.modules[p] = mod
	x.order = append(x.order, p)
}

// Module returns the module registered for p, or nil.
func (x *Mux) Module(p Proto) Module { return x.modules[p] }

// Init implements Handler: starts modules in registration order.
func (x *Mux) Init(n *Node) {
	for _, p := range x.order {
		x.modules[p].Start(n)
	}
}

// Recv implements Handler.
func (x *Mux) Recv(n *Node, from graph.NodeID, m Msg) {
	mod := x.modules[m.Proto]
	if mod == nil {
		panic(fmt.Sprintf("async: node %d got message for unregistered proto %d", n.ID(), m.Proto))
	}
	mod.Recv(n, from, m)
}

// Ack implements Handler.
func (x *Mux) Ack(n *Node, to graph.NodeID, m Msg) {
	mod := x.modules[m.Proto]
	if mod == nil {
		panic(fmt.Sprintf("async: node %d got ack for unregistered proto %d", n.ID(), m.Proto))
	}
	mod.Ack(n, to, m)
}
