package core

import (
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/async"
	"repro/internal/graph"
	"repro/internal/syncrun"
)

// TestSynchronizedBoundedLagMatchesSerial runs the full synchronizer stack
// — pulse core, per-level registration and barrier modules, the algorithm
// payload — under the bounded-lag parallel engine with a forced 4-worker
// pool and requires the complete async.Result (costs, per-proto breakdown,
// outputs) to deep-equal the serial run's. This is the integration face of
// the engine-level determinism matrix: tens of protocols, stage
// priorities, and heavy per-link contention instead of a bare flood. Run
// with -race for the stack's data-race regression.
func TestSynchronizedBoundedLagMatchesSerial(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid6x6", graph.Grid(6, 6)},
		{"cycle32", graph.Cycle(32)},
		{"er40", graph.RandomConnected(40, 100, 13)},
	}
	for _, tg := range graphs {
		mk := func(graph.NodeID) syncrun.Handler {
			return &apps.BFS{Sources: []graph.NodeID{0}}
		}
		bound := syncrun.New(tg.g, mk).Run().Rounds + 2
		for _, adv := range []async.Adversary{
			async.Fixed{D: 1},
			async.Skew{Cut: graph.NodeID(tg.g.N() / 2), FastD: 1.0 / 64},
			async.SeededRandom{Seed: 11},
		} {
			serial := Synchronize(Config{Graph: tg.g, Bound: bound, Adversary: adv,
				Mode: async.ModeSingle}, mk)
			par := Synchronize(Config{Graph: tg.g, Bound: bound, Adversary: adv,
				Mode: async.ModeMulti, Workers: 4}, mk)
			if !reflect.DeepEqual(serial, par) {
				t.Fatalf("%s/%s: parallel synchronized Result differs from serial\nserial:   Time=%v Msgs=%d PerProto=%v\nparallel: Time=%v Msgs=%d PerProto=%v",
					tg.name, adv.Name(), serial.Time, serial.Msgs, serial.PerProto,
					par.Time, par.Msgs, par.PerProto)
			}
		}
	}
}
