package async

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/wire"
)

// allocPing drives R messages over one link, one at a time (each next send
// triggered by the previous ack), so the marginal cost between two run
// lengths is purely the per-message hot path: send, outbox, event
// push/pop, deliver, ack. Sends rotate across three protocol tags so the
// dense per-proto counters are exercised on every message — the counter
// slice must grow once per proto and never again.
type allocPing struct {
	remaining int
}

func (h *allocPing) proto() Proto { return Proto(1 + h.remaining%3) }

func (h *allocPing) Init(n *Node) {
	if n.ID() == 0 {
		h.remaining--
		n.Send(1, Msg{Proto: h.proto(), Body: wire.Body{Kind: 1, A: int64(h.remaining)}})
	}
}

func (h *allocPing) Recv(*Node, graph.NodeID, Msg) {}

func (h *allocPing) Ack(n *Node, _ graph.NodeID, m Msg) {
	if h.remaining > 0 {
		h.remaining--
		n.Send(1, Msg{Proto: h.proto(), Body: wire.Body{Kind: 1, A: int64(h.remaining)}})
	} else {
		n.Output(true)
	}
}

// TestZeroSteadyStateAllocsPerMessage is the regression test for the typed
// message plane: once the per-run structures are warm, delivering a
// message must not allocate. It measures whole-run allocations at two run
// lengths on the same topology — construction costs cancel, so the
// difference is the steady-state cost of the extra messages. With boxed
// `any` bodies this difference was ~1 alloc per message; with wire.Body it
// must be (close to) zero. The workload rotates protocol tags, so the
// dense per-proto counter slice (the map it replaced cost a hash per send)
// is pinned to zero steady-state allocations too. A small absolute slack
// absorbs runtime noise.
func TestZeroSteadyStateAllocsPerMessage(t *testing.T) {
	g := graph.Path(2)
	run := func(msgs int) func() {
		return func() {
			s := New(g, Fixed{D: 1}, func(graph.NodeID) Handler { return &allocPing{remaining: msgs} })
			res := s.Run()
			if res.Msgs != uint64(msgs) {
				t.Fatalf("sent %d messages, want %d", res.Msgs, msgs)
			}
			if len(res.PerProto) != 3 {
				t.Fatalf("per-proto breakdown %v, want 3 protos", res.PerProto)
			}
		}
	}
	const short, long = 200, 2200
	a1 := testing.AllocsPerRun(5, run(short))
	a2 := testing.AllocsPerRun(5, run(long))
	const slack = 8
	if extra := a2 - a1; extra > slack {
		t.Fatalf("the %d extra messages allocated %.1f times (%.4f allocs/msg); want 0",
			long-short, extra, extra/float64(long-short))
	}
}

// TestZeroSteadyStateAllocsReset is the engine-reuse analogue: after the
// first Run warms every structure, a Reset/Run cycle's allocations must
// not scale with the message count — the wheel, outboxes, counters, and
// arena all retain their capacity across Reset. (Each cycle still pays
// O(1) allocs plus the handler remakes; the per-message cost is pinned.)
func TestZeroSteadyStateAllocsReset(t *testing.T) {
	g := graph.Path(2)
	cycle := func(msgs int) (*Sim, func()) {
		mk := func(graph.NodeID) Handler { return &allocPing{remaining: msgs} }
		s := New(g, Fixed{D: 1}, mk)
		s.Run()
		return s, func() {
			s.Reset(Fixed{D: 1}, mk)
			if res := s.Run(); res.Msgs != uint64(msgs) {
				t.Fatalf("sent %d messages, want %d", res.Msgs, msgs)
			}
		}
	}
	const short, long = 200, 2200
	_, runShort := cycle(short)
	_, runLong := cycle(long)
	a1 := testing.AllocsPerRun(5, runShort)
	a2 := testing.AllocsPerRun(5, runLong)
	const slack = 8
	if extra := a2 - a1; extra > slack {
		t.Fatalf("the %d extra messages allocated %.1f times across Reset (%.4f allocs/msg); want 0",
			long-short, extra, extra/float64(long-short))
	}
}
