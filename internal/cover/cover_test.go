package cover

import (
	"math/bits"
	"testing"

	"repro/internal/graph"
)

// checkCover validates Definition 2.1 plus the §2.1 congestion properties.
func checkCover(t *testing.T, g *graph.Graph, c *Cover) {
	t.Helper()
	n := g.N()
	logn := bits.Len(uint(n))

	// Sparseness: each node in O(log n) clusters (one per color).
	for v := 0; v < n; v++ {
		if len(c.MemberOf(graph.NodeID(v))) > 4*logn+4 {
			t.Fatalf("node %d in %d clusters", v, len(c.MemberOf(graph.NodeID(v))))
		}
	}

	// Strengthened covering: Home(v) contains Ball(v, D).
	for v := 0; v < n; v++ {
		id := c.Home(graph.NodeID(v))
		if id < 0 {
			t.Fatalf("node %d has no home cluster", v)
		}
		cl := c.Cluster(id)
		for _, u := range g.Ball(graph.NodeID(v), c.D) {
			if !cl.Has(u) {
				t.Fatalf("home of %d misses %d (dist <= %d)", v, u, c.D)
			}
		}
		if !contains(c.MemberOf(graph.NodeID(v)), id) {
			t.Fatalf("home of %d not in its member list", v)
		}
	}

	// Tree sanity: spans members; parent edges are graph edges; radius
	// O(D·log³n).
	bound := 3*c.D*logn*logn*logn + 4*c.D + 8
	for _, cl := range c.Clusters {
		for _, v := range cl.Members {
			if !cl.Tree.Has(v) {
				t.Fatalf("cluster %d member %d missing from tree", cl.ID, v)
			}
		}
		for _, child := range cl.Tree.Nodes() {
			par, ok := cl.Tree.ParentOf(child)
			if !ok {
				continue
			}
			if g.EdgeBetween(child, par) < 0 {
				t.Fatalf("tree edge {%d,%d} not in graph", child, par)
			}
		}
		if d := cl.Tree.Depth(); d > bound {
			t.Fatalf("cluster %d tree depth %d > bound %d", cl.ID, d, bound)
		}
	}

	// Edge congestion: each edge in O(log⁴n) cluster trees.
	cong := make(map[[2]graph.NodeID]int)
	for _, cl := range c.Clusters {
		for _, e := range cl.Tree.Edges() {
			key := e
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			cong[key]++
		}
	}
	congBound := logn*logn*logn*logn + 8
	for e, cnt := range cong {
		if cnt > congBound {
			t.Fatalf("edge %v in %d trees (bound %d)", e, cnt, congBound)
		}
	}

	// treeOf ⊇ memberOf.
	for v := 0; v < n; v++ {
		for _, id := range c.MemberOf(graph.NodeID(v)) {
			if !contains(c.TreeOf(graph.NodeID(v)), id) {
				t.Fatalf("node %d member of %d but not in its tree list", v, id)
			}
		}
	}
}

func contains(s []ClusterID, id ClusterID) bool {
	for _, x := range s {
		if x == id {
			return true
		}
	}
	return false
}

// mustGraph unwraps an implicit-generator result for test tables.
func mustGraph(g *graph.Graph, err error) *graph.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

func TestCoverFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		d    int
	}{
		{"path48-d4", graph.Path(48), 4},
		{"cycle60-d4", graph.Cycle(60), 4},
		{"grid7x9-d3", graph.Grid(7, 9), 3},
		{"tree63-d5", graph.CompleteBinaryTree(63), 5},
		{"er70-d3", graph.RandomConnected(70, 170, 23), 3},
		{"dumbbell-d4", graph.Dumbbell(6, 8), 4},
		{"complete16-d1", graph.Complete(16), 1},
		// Implicit-generator topologies: covers must build directly on CSR
		// graphs that never went through AddEdge.
		{"grid3d-3x4x5-d2", mustGraph(graph.Grid3D(3, 4, 5)), 2},
		{"pa-n80-m2-d2", mustGraph(graph.PowerLaw(80, 2, 7)), 2},
		{"ring-k5-c4-d2", mustGraph(graph.RingOfCliques(5, 4)), 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkCover(t, tc.g, Build(tc.g, tc.d, nil))
		})
	}
}

// Explicit Definition 2.1 pair condition: any u,v at distance <= d share a
// cluster.
func TestPairCovering(t *testing.T) {
	g := graph.Grid(6, 6)
	c := Build(g, 2, nil)
	for u := 0; u < g.N(); u++ {
		du := g.BFS(graph.NodeID(u))
		for v := u + 1; v < g.N(); v++ {
			if du[v] > 2 {
				continue
			}
			shared := false
			for _, id := range c.MemberOf(graph.NodeID(u)) {
				if c.Cluster(id).Has(graph.NodeID(v)) {
					shared = true
					break
				}
			}
			if !shared {
				t.Fatalf("nodes %d,%d at distance %d share no cluster", u, v, du[v])
			}
		}
	}
}

func TestCoverOnSubset(t *testing.T) {
	g := graph.Grid(8, 8)
	// Only the left half is "alive".
	var s []graph.NodeID
	for r := 0; r < 8; r++ {
		for c := 0; c < 4; c++ {
			s = append(s, graph.NodeID(r*8+c))
		}
	}
	cov := Build(g, 3, s)
	inS := make(map[graph.NodeID]bool)
	for _, v := range s {
		inS[v] = true
	}
	for _, cl := range cov.Clusters {
		for _, v := range cl.Members {
			if !inS[v] {
				t.Fatalf("cover cluster contains non-subset node %d", v)
			}
		}
	}
	// Every subset node still has a home covering its subset-restricted
	// d-ball (distances in G).
	for _, v := range s {
		cl := cov.Cluster(cov.Home(v))
		for _, u := range g.Ball(v, 3) {
			if inS[u] && !cl.Has(u) {
				t.Fatalf("home of %d misses subset node %d", v, u)
			}
		}
	}
}

func TestLayered(t *testing.T) {
	g := graph.Grid(6, 6)
	l := BuildLayered(g, 8, nil)
	if l.MaxLevel() != 3 {
		t.Fatalf("MaxLevel = %d, want 3 (covers 1,2,4,8)", l.MaxLevel())
	}
	for j := 0; j <= l.MaxLevel(); j++ {
		c := l.Level(j)
		if c.D != 1<<uint(j) {
			t.Fatalf("level %d has D=%d", j, c.D)
		}
		checkCover(t, g, c)
	}
}

func TestLayeredLevelPanics(t *testing.T) {
	l := BuildLayered(graph.Path(8), 2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range level")
		}
	}()
	l.Level(10)
}

func TestMaxTreeDepth(t *testing.T) {
	g := graph.Path(32)
	c := Build(g, 4, nil)
	if c.MaxTreeDepth() <= 0 {
		t.Fatal("MaxTreeDepth must be positive for a path cover")
	}
}

func TestCoverDeterminism(t *testing.T) {
	g := graph.RandomConnected(50, 110, 31)
	a, b := Build(g, 3, nil), Build(g, 3, nil)
	if len(a.Clusters) != len(b.Clusters) {
		t.Fatal("cluster counts differ")
	}
	for i := range a.Clusters {
		if a.Clusters[i].Root != b.Clusters[i].Root ||
			len(a.Clusters[i].Members) != len(b.Clusters[i].Members) {
			t.Fatal("covers differ between identical builds")
		}
	}
}
