package async

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/wire"
)

// Engine state plane: versioned snapshot / restore of a Sim between
// events. A snapshot serializes the complete mutable engine state — the
// calendar queue, per-link busy/txSeq/outbox state, node outputs, fault
// and message counters, the delivery trace, and every handler's protocol
// state via its wire.StateCodec — into one pointer-free frame. Restoring
// the frame into an engine built over the same graph, adversary, and
// handler constructor reproduces the interrupted run exactly: the
// continuation's Results, outputs, and traces are byte-identical to the
// uninterrupted run, in every execution mode.
//
// The frame is relocatable: nodes are keyed by global id, links by their
// (from, to) endpoint pair, and events carry (src, dst) with the dense
// LinkID recomputed at restore against whatever graph view the restoring
// engine holds. A per-shard frame can therefore be split and re-merged
// across a different shard count (ResplitEngineFrames) — the basis of the
// shard coordinator's distributed snapshot.
//
// Arena segments never serialize as handles: a Body's segment words are
// inlined in the frame and re-carved from the restoring engine's arena, so
// the restored engine's segment lifecycle accounting (Live) matches the
// uninterrupted run's. Trace entries are the one exception — their bodies
// are record-only, never resolved again, so they keep handle images
// verbatim (the same caveat ModeMulti's concurrent allocation already
// places on seg-carrying traced runs).

// Snapshot serializes the engine's complete state into a sealed frame.
// Legal on a quiescent engine, before Run, or between RunSteps calls —
// never while a parallel window is in flight, and not in shard mode (the
// shard coordinator drives per-shard frames itself).
func (s *Sim) Snapshot() ([]byte, error) {
	if s.inWindow {
		return nil, fmt.Errorf("async: Snapshot while a parallel window is in flight")
	}
	if s.shardMode {
		return nil, fmt.Errorf("async: Snapshot on a shard engine (the coordinator snapshots at FLUSH barriers)")
	}
	e := wire.NewEnc(&s.arena)
	if err := s.encodeEngine(e); err != nil {
		return nil, err
	}
	return wire.SealSnapshot(e.Bytes()), nil
}

// Restore loads a Snapshot frame into this engine, which must have been
// built over the same graph, adversary, and handler constructor as the
// snapshotted one (validated against the frame header). Any existing run
// state is discarded first. After a successful restore the next Run (any
// mode) or RunSteps continues the interrupted run; on error the engine is
// left reset and reusable, with no arena segments leaked.
func (s *Sim) Restore(data []byte) error {
	payload, err := wire.OpenSnapshot(data)
	if err != nil {
		return err
	}
	s.Reset(s.adv, s.specMk)
	d := wire.NewDec(payload, &s.arena)
	if err := s.decodeEngine(d); err != nil {
		s.Reset(s.adv, s.specMk) // releases everything the partial decode carved
		return err
	}
	return nil
}

// RunSteps processes up to n events serially, initializing handlers on the
// first call (unless the engine was restored from a snapshot). It reports
// whether the engine is quiescent — callers interleave Snapshot between
// calls to checkpoint at any event index, then FinishResult at the end.
// Stepped runs are ModeSingle by definition; a restored engine may instead
// be continued with Run in any mode.
func (s *Sim) RunSteps(n uint64) bool {
	if s.g.Sub() {
		panic("async: RunSteps on a Subrange view; shard engines are driven by the internal/shard protocol")
	}
	if s.shardMode {
		panic("async: RunSteps on a shard engine")
	}
	if !s.running {
		s.running = true
		if !s.resumed {
			for i := range s.handlers {
				s.handlers[i].Init(&s.nodes[i])
			}
		}
	}
	for ; n > 0 && !s.events.empty(); n-- {
		ev := s.events.pop()
		if ev.t < s.now {
			panic(fmt.Sprintf("async: time went backwards: %g < %g", ev.t, s.now))
		}
		s.now = ev.t
		s.steps++
		if s.steps > s.maxEvents {
			panic(fmt.Sprintf("async: exceeded %d events at t=%g (livelock?)", s.maxEvents, s.now))
		}
		s.direct.processEvent(&ev)
	}
	return s.events.empty()
}

// FinishResult materializes the Result of a stepped run after RunSteps
// reached quiescence.
func (s *Sim) FinishResult() Result {
	if !s.events.empty() {
		panic("async: FinishResult before quiescence")
	}
	return s.result()
}

// ShardSnapshotFrame serializes a shard engine's state as one unsealed
// engine frame (the coordinator seals the assembled multi-shard file).
// Must be called at a FLUSH barrier after grants were applied: the staged
// log is empty then, so every pending event lives in exactly one shard's
// queue and the frame set is complete.
func (s *Sim) ShardSnapshotFrame(e *wire.Enc) error {
	if len(s.shardLog) != 0 {
		return fmt.Errorf("async: shard snapshot with %d staged-but-ungranted events", len(s.shardLog))
	}
	return s.encodeEngine(e)
}

// ShardRestoreFrame loads one engine frame into a freshly built shard
// engine (after BeginShard, instead of ShardInit). On error the engine is
// unusable; the coordinator aborts the resume.
func (s *Sim) ShardRestoreFrame(frame []byte) error {
	d := wire.NewDec(frame, &s.arena)
	return s.decodeEngine(d)
}

// encodeEngine appends the engine's state sections: header, counters,
// nodes (output + handler state), links (busy/txSeq/outbox), events, and
// trace.
func (s *Sim) encodeEngine(e *wire.Enc) error {
	// Header: enough to reject a restore into a mismatched engine.
	e.U32(uint32(s.g.N()))
	e.Str(s.adv.Name())
	e.F64(s.lookahead)
	e.Bool(s.keepTrace)
	// Whether Init already ran (false only for a pre-run snapshot, whose
	// restore must still run Init rather than resume).
	e.Bool(s.running || s.resumed)

	// Counters.
	e.F64(s.now)
	e.F64(s.lastOutputTime)
	e.U64(s.eventSq)
	e.U64(s.steps)
	e.U64(s.msgs)
	e.U64(s.acks)
	e.U64(s.dropped)
	e.U64(s.retrans)
	e.U64(s.undeliv)
	e.I64(int64(s.outCount))
	e.U32(uint32(len(s.perProto)))
	for _, n := range s.perProto {
		e.U64(n)
	}

	// Nodes: output slot plus handler state, keyed by global id.
	outB, outA := s.loadedOutBodies(), s.loadedOutAnys()
	e.U32(uint32(s.g.NLocal()))
	for i := 0; i < s.g.NLocal(); i++ {
		id := s.nodeBase + graph.NodeID(i)
		e.I32(int32(id))
		e.Bool(s.hasOut[i])
		if s.hasOut[i] {
			var b wire.Body
			if outB != nil {
				b = outB[i]
			}
			if b.Kind == 0 {
				var v any
				if outA != nil {
					v = outA[i]
				}
				return fmt.Errorf("async: node %d output a boxed %T; snapshots carry only outval-encodable outputs", id, v)
			}
			e.Body(b)
		}
		sc, ok := s.handlers[i].(wire.StateCodec)
		if !ok {
			return fmt.Errorf("async: handler %T of node %d does not implement wire.StateCodec; engine state cannot be snapshotted", s.handlers[i], id)
		}
		if pr, ok := s.handlers[i].(StateCodecProbe); ok && !pr.StateCodecOK() {
			return fmt.Errorf("async: handler %T of node %d hosts a module without a state codec; engine state cannot be snapshotted", s.handlers[i], id)
		}
		mark := e.BeginBlob()
		sc.SaveState(e)
		e.EndBlob(mark)
	}

	// Links: every locally-owned directed link with non-default state,
	// keyed by its (from, to) endpoints. The whole section rides in a blob
	// with a trailing count because the filter runs inside the single pass.
	mark := e.BeginBlob()
	nLinks := 0
	for i := 0; i < s.g.NLocal(); i++ {
		from := s.nodeBase + graph.NodeID(i)
		base := s.g.LinkOffset(from)
		for j := 0; j < s.g.Degree(from); j++ {
			l := base + graph.LinkID(j)
			ob := s.boxes[l]
			if !s.busy[l] && s.txSeq[l] == 0 && (ob == nil || ob.queued == 0) {
				continue
			}
			nLinks++
			e.I32(int32(from))
			e.I32(int32(s.g.LinkDst(l)))
			e.Bool(s.busy[l])
			e.U32(s.txSeq[l])
			if ob == nil || ob.queued == 0 {
				// A drained outbox holds no live rotation state (empty front
				// stages retire on their final pop), so only busy/txSeq carry.
				e.U32(0)
				continue
			}
			e.U32(uint32(len(ob.stages)))
			for si := range ob.stages {
				sq := &ob.stages[si]
				e.I64(int64(sq.stage))
				e.U32(uint32(sq.next))
				e.U32(uint32(len(sq.protos)))
				for pi := range sq.protos {
					pf := &sq.protos[pi]
					e.I32(int32(pf.proto))
					e.U32(uint32(len(pf.msgs) - pf.head))
					for mi := pf.head; mi < len(pf.msgs); mi++ {
						e.Body(pf.msgs[mi].Body)
					}
				}
			}
		}
	}
	e.EndBlob(mark)
	e.U32(uint32(nLinks))

	// Events, from whichever store holds them (serial queue, or the owner
	// shards if the engine last ran a parallel mode — mutually exclusive).
	nEvents := s.events.size
	for k := range s.shards {
		nEvents += s.shards[k].size
	}
	e.U32(uint32(nEvents))
	encodeEv := func(ev *event) {
		e.U8(ev.kind)
		e.U8(ev.attempt)
		e.F64(ev.t)
		e.U64(ev.seq)
		e.I32(int32(ev.src))
		e.I32(int32(ev.dst))
		e.I32(int32(ev.msg.Proto))
		e.I64(int64(ev.msg.Stage))
		e.Body(ev.msg.Body)
	}
	s.events.forEach(encodeEv)
	for k := range s.shards {
		s.shards[k].forEach(encodeEv)
	}

	// Trace: record-only bodies, handle images verbatim.
	e.U32(uint32(len(s.trace)))
	for i := range s.trace {
		te := &s.trace[i]
		e.F64(te.T)
		e.U64(te.Seq)
		e.I32(int32(te.From))
		e.I32(int32(te.To))
		e.I32(int32(te.Msg.Proto))
		e.I64(int64(te.Msg.Stage))
		e.RawBody(te.Msg.Body)
		e.U8(uint8(te.Kind))
	}
	return nil
}

// localNode reports whether v is hosted by this engine.
func (s *Sim) localNode(v graph.NodeID) bool {
	i := int(v - s.nodeBase)
	return i >= 0 && i < s.g.NLocal()
}

// decodeEngine reads an encodeEngine frame into a just-reset engine. On
// failure the caller resets the engine, which releases every segment the
// partial decode carved.
func (s *Sim) decodeEngine(d *wire.Dec) error {
	if n := d.U32(); !d.Failed() && int(n) != s.g.N() {
		return fmt.Errorf("async: snapshot of a %d-node graph restored into %d nodes", n, s.g.N())
	}
	if name := d.Str(); !d.Failed() && name != s.adv.Name() {
		return fmt.Errorf("async: snapshot under adversary %q restored under %q", name, s.adv.Name())
	}
	if la := d.F64(); !d.Failed() && la != s.lookahead {
		return fmt.Errorf("async: snapshot lookahead %g, engine has %g", la, s.lookahead)
	}
	if kt := d.Bool(); !d.Failed() && kt != s.keepTrace {
		return fmt.Errorf("async: snapshot traced=%v, engine traced=%v", kt, s.keepTrace)
	}
	inited := d.Bool()

	s.now = d.F64()
	s.lastOutputTime = d.F64()
	s.eventSq = d.U64()
	s.steps = d.U64()
	s.msgs = d.U64()
	s.acks = d.U64()
	s.dropped = d.U64()
	s.retrans = d.U64()
	s.undeliv = d.U64()
	s.outCount = int(d.I64())
	for i, n := 0, int(d.U32()); i < n && !d.Failed(); i++ {
		s.perProto = bumpProtoBy(s.perProto, Proto(i), d.U64())
	}

	nNodes := int(d.U32())
	if !d.Failed() && nNodes != s.g.NLocal() {
		return fmt.Errorf("async: snapshot carries %d node records, engine hosts %d", nNodes, s.g.NLocal())
	}
	for i := 0; i < nNodes && !d.Failed(); i++ {
		id := graph.NodeID(d.I32())
		if d.Failed() {
			break
		}
		if !s.localNode(id) {
			d.Fail("node record %d outside this engine's range", id)
			break
		}
		li := s.li(id)
		if d.Bool() {
			b := d.Body()
			if !d.Failed() && b.Kind == 0 {
				d.Fail("node %d output record has zero kind", id)
				break
			}
			s.hasOut[li] = true
			s.outBodies()[li] = b
		}
		sc, ok := s.handlers[li].(wire.StateCodec)
		if !ok {
			return fmt.Errorf("async: handler %T of node %d does not implement wire.StateCodec; snapshot cannot be restored", s.handlers[li], id)
		}
		end := d.BeginBlob()
		if d.Failed() {
			break
		}
		sc.LoadState(d)
		d.EndBlob(end)
	}

	linkBlob := d.SkipBlob()
	nLinks := int(d.U32())
	ld := wire.NewDec(linkBlob, &s.arena)
	for i := 0; i < nLinks && !ld.Failed(); i++ {
		from := graph.NodeID(ld.I32())
		to := graph.NodeID(ld.I32())
		if ld.Failed() {
			break
		}
		if !s.localNode(from) {
			ld.Fail("link record %d->%d not owned by this engine", from, to)
			break
		}
		l := s.g.LinkBetween(from, to)
		if l < 0 {
			ld.Fail("link record %d->%d along a non-edge", from, to)
			break
		}
		s.busy[l] = ld.Bool()
		s.txSeq[l] = ld.U32()
		nStages := int(ld.U32())
		if nStages == 0 {
			continue
		}
		// Reconstruct the outbox structure verbatim — including drained
		// protoFIFO rotation slots and the round-robin cursor — because the
		// rotation's first-appearance order decides future injection order.
		ob := s.boxes[l]
		if ob == nil {
			ob = &outbox{}
			s.boxes[l] = ob
		}
		prevStage := 0
		for si := 0; si < nStages && !ld.Failed(); si++ {
			stage := int(ld.I64())
			next := int(ld.U32())
			nProtos := int(ld.U32())
			if si > 0 && stage <= prevStage {
				ld.Fail("link %d->%d stages out of order (%d after %d)", from, to, stage, prevStage)
				break
			}
			prevStage = stage
			if next < 0 || (nProtos > 0 && next >= nProtos) || (nProtos == 0 && next != 0) {
				ld.Fail("link %d->%d stage %d rotation cursor %d outside %d protos", from, to, stage, next, nProtos)
				break
			}
			sq := stageQueue{stage: stage, next: next}
			for pi := 0; pi < nProtos && !ld.Failed(); pi++ {
				pf := protoFIFO{proto: Proto(ld.I32())}
				nMsgs := int(ld.U32())
				for mi := 0; mi < nMsgs && !ld.Failed(); mi++ {
					pf.msgs = append(pf.msgs, Msg{Proto: pf.proto, Stage: stage, Body: ld.Body()})
				}
				sq.queued += len(pf.msgs)
				sq.protos = append(sq.protos, pf)
			}
			ob.stages = append(ob.stages, sq)
			ob.queued += sq.queued
		}
	}
	if err := ld.Err(); err != nil {
		return err
	}

	nEvents := int(d.U32())
	for i := 0; i < nEvents && !d.Failed(); i++ {
		var ev event
		ev.kind = d.U8()
		ev.attempt = d.U8()
		ev.t = d.F64()
		ev.seq = d.U64()
		ev.src = graph.NodeID(d.I32())
		ev.dst = graph.NodeID(d.I32())
		ev.msg.Proto = Proto(d.I32())
		ev.msg.Stage = int(d.I64())
		ev.msg.Body = d.Body()
		if d.Failed() {
			break
		}
		switch ev.kind {
		case evDeliver:
			if !s.localNode(ev.dst) {
				d.Fail("delivery event for remote node %d", ev.dst)
			} else if s.localNode(ev.src) {
				if ev.link = s.g.LinkBetween(ev.src, ev.dst); ev.link < 0 {
					d.Fail("delivery event %d->%d along a non-edge", ev.src, ev.dst)
				}
			} else if back := s.g.LinkBetween(ev.dst, ev.src); back >= 0 {
				ev.link = ^back
			} else {
				d.Fail("delivery event %d->%d along a non-edge", ev.src, ev.dst)
			}
		case evAckArrive, evRetrans:
			if !s.localNode(ev.src) {
				d.Fail("event kind %d owned by remote node %d", ev.kind, ev.src)
			} else if ev.link = s.g.LinkBetween(ev.src, ev.dst); ev.link < 0 {
				d.Fail("event kind %d %d->%d along a non-edge", ev.kind, ev.src, ev.dst)
			}
		default:
			d.Fail("event of unknown kind %d", ev.kind)
		}
		if d.Failed() {
			break
		}
		s.events.push(ev)
	}

	nTrace := int(d.U32())
	for i := 0; i < nTrace && !d.Failed(); i++ {
		var te TraceEntry
		te.T = d.F64()
		te.Seq = d.U64()
		te.From = graph.NodeID(d.I32())
		te.To = graph.NodeID(d.I32())
		te.Msg.Proto = Proto(d.I32())
		te.Msg.Stage = int(d.I64())
		te.Msg.Body = d.RawBody()
		te.Kind = TraceKind(d.U8())
		if !d.Failed() {
			s.trace = append(s.trace, te)
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("async: snapshot frame has %d trailing bytes", d.Remaining())
	}
	if inited {
		// Init/Start will not run again on this engine; give modules that
		// cache the node reference during Start a chance to re-capture it.
		for i := range s.handlers {
			if rb, ok := s.handlers[i].(Rebinder); ok {
				rb.Rebind(&s.nodes[i])
			}
		}
	}
	s.resumed = inited
	return nil
}

// ResplitEngineFrames merges per-shard engine frames from a distributed
// snapshot and re-partitions them into k frames under a (possibly
// different) ownership function: node and link records route to the owner
// of their node (links to the sender's owner, matching the engine's
// owner-sharded link state), events to the owner of the node whose handler
// they invoke, and the trace — already sorted per frame — k-way merges by
// (T, Seq) into frame 0. Additive counters aggregate into frame 0 (the
// coordinator's RESULT merge sums them back); clocks take the global
// maximum everywhere, which every pending event's timestamp dominates
// (pending events all lie at or beyond the last window boundary, which
// bounds every engine's clock from above). nextSeq seeds frame 0's
// event-sequence counter for single-engine restores (shard engines take
// seqs from coordinator grants instead).
func ResplitEngineFrames(frames [][]byte, k int, owner func(graph.NodeID) int, nextSeq uint64) ([][]byte, error) {
	if k < 1 {
		return nil, fmt.Errorf("async: resplit into %d frames", k)
	}
	type secBufs struct {
		nodes, links, events    wire.Enc
		nNodes, nLinks, nEvents int
	}
	out := make([]secBufs, k)
	var (
		headN                                        uint32
		headAdv                                      string
		headLA                                       float64
		headTrace, headInited                        bool
		maxNow, maxLastOut                           float64
		steps, msgs, acks, dropped, retrans, undeliv uint64
		outCount                                     int64
		perProto                                     []uint64
		traces                                       [][]byte // per input frame: raw trace records
		traceCnt                                     []int
	)
	route := func(id graph.NodeID) (int, error) {
		o := owner(id)
		if o < 0 || o >= k {
			return 0, fmt.Errorf("async: resplit owner %d of node %d outside %d shards", o, id, k)
		}
		return o, nil
	}
	for fi, frame := range frames {
		d := wire.NewDec(frame, nil)
		n := d.U32()
		adv := d.Str()
		la := d.F64()
		kt := d.Bool()
		it := d.Bool()
		if fi == 0 {
			headN, headAdv, headLA, headTrace, headInited = n, adv, la, kt, it
		} else if n != headN || adv != headAdv || la != headLA || kt != headTrace || it != headInited {
			return nil, fmt.Errorf("async: resplit frames disagree on engine configuration")
		}
		if now := d.F64(); now > maxNow {
			maxNow = now
		}
		if lo := d.F64(); lo > maxLastOut {
			maxLastOut = lo
		}
		d.U64() // per-frame eventSq: shard engines take seqs from grants
		steps += d.U64()
		msgs += d.U64()
		acks += d.U64()
		dropped += d.U64()
		retrans += d.U64()
		undeliv += d.U64()
		outCount += d.I64()
		for i, pn := 0, int(d.U32()); i < pn && !d.Failed(); i++ {
			for len(perProto) <= i {
				perProto = append(perProto, 0)
			}
			perProto[i] += d.U64()
		}

		for i, nn := 0, int(d.U32()); i < nn && !d.Failed(); i++ {
			id := graph.NodeID(d.I32())
			hasOut := d.Bool()
			var body []byte
			if hasOut {
				body = d.SkipBody()
			}
			blob := d.SkipBlob()
			if d.Failed() {
				break
			}
			o, err := route(id)
			if err != nil {
				return nil, err
			}
			t := &out[o]
			t.nNodes++
			t.nodes.I32(int32(id))
			t.nodes.Bool(hasOut)
			t.nodes.Raw(body)
			bm := t.nodes.BeginBlob()
			t.nodes.Raw(blob)
			t.nodes.EndBlob(bm)
		}

		linkBlob := d.SkipBlob()
		nLinks := int(d.U32())
		ld := wire.NewDec(linkBlob, nil)
		for i := 0; i < nLinks && !ld.Failed(); i++ {
			from := graph.NodeID(ld.I32())
			if ld.Failed() {
				break
			}
			o, err := route(from)
			if err != nil {
				return nil, err
			}
			t := &out[o]
			t.nLinks++
			t.links.I32(int32(from))
			t.links.I32(ld.I32())
			t.links.Bool(ld.Bool())
			t.links.U32(ld.U32())
			nStages := int(ld.U32())
			t.links.U32(uint32(nStages))
			for si := 0; si < nStages && !ld.Failed(); si++ {
				t.links.I64(ld.I64())
				t.links.U32(ld.U32())
				nProtos := int(ld.U32())
				t.links.U32(uint32(nProtos))
				for pi := 0; pi < nProtos && !ld.Failed(); pi++ {
					t.links.I32(ld.I32())
					nMsgs := int(ld.U32())
					t.links.U32(uint32(nMsgs))
					for mi := 0; mi < nMsgs && !ld.Failed(); mi++ {
						t.links.Raw(ld.SkipBody())
					}
				}
			}
		}
		if err := ld.Err(); err != nil {
			return nil, err
		}

		for i, ne := 0, int(d.U32()); i < ne && !d.Failed(); i++ {
			kind := d.U8()
			attempt := d.U8()
			tm := d.F64()
			seq := d.U64()
			src := graph.NodeID(d.I32())
			dst := graph.NodeID(d.I32())
			proto := d.I32()
			stage := d.I64()
			body := d.SkipBody()
			if d.Failed() {
				break
			}
			ownNode := src
			if kind == evDeliver {
				ownNode = dst
			}
			o, err := route(ownNode)
			if err != nil {
				return nil, err
			}
			t := &out[o]
			t.nEvents++
			t.events.U8(kind)
			t.events.U8(attempt)
			t.events.F64(tm)
			t.events.U64(seq)
			t.events.I32(int32(src))
			t.events.I32(int32(dst))
			t.events.I32(proto)
			t.events.I64(stage)
			t.events.Raw(body)
		}

		// The trace section routes wholesale to frame 0, k-way merged below.
		tc := int(d.U32())
		traceStart := len(frame) - d.Remaining()
		for i := 0; i < tc && !d.Failed(); i++ {
			d.F64()
			d.U64()
			d.I32()
			d.I32()
			d.I32()
			d.I64()
			d.RawBody()
			d.U8()
		}
		if err := d.Err(); err != nil {
			return nil, err
		}
		if d.Remaining() != 0 {
			return nil, fmt.Errorf("async: resplit frame %d has %d trailing bytes", fi, d.Remaining())
		}
		traces = append(traces, frame[traceStart:])
		traceCnt = append(traceCnt, tc)
	}

	mergedTrace, nTrace := mergeTraceRecords(traces, traceCnt)

	result := make([][]byte, k)
	for i := 0; i < k; i++ {
		e := wire.NewEnc(nil)
		e.U32(headN)
		e.Str(headAdv)
		e.F64(headLA)
		e.Bool(headTrace)
		e.Bool(headInited)
		e.F64(maxNow)
		e.F64(maxLastOut)
		if i == 0 {
			e.U64(nextSeq)
			e.U64(steps)
			e.U64(msgs)
			e.U64(acks)
			e.U64(dropped)
			e.U64(retrans)
			e.U64(undeliv)
			e.I64(outCount)
			e.U32(uint32(len(perProto)))
			for _, n := range perProto {
				e.U64(n)
			}
		} else {
			for j := 0; j < 8; j++ { // eventSq + six counters + outCount
				e.U64(0)
			}
			e.U32(0)
		}
		t := &out[i]
		e.U32(uint32(t.nNodes))
		e.Raw(t.nodes.Bytes())
		lm := e.BeginBlob()
		e.Raw(t.links.Bytes())
		e.EndBlob(lm)
		e.U32(uint32(t.nLinks))
		e.U32(uint32(t.nEvents))
		e.Raw(t.events.Bytes())
		if i == 0 {
			e.U32(uint32(nTrace))
			e.Raw(mergedTrace)
		} else {
			e.U32(0)
		}
		result[i] = append([]byte(nil), e.Bytes()...)
	}
	return result, nil
}

// traceRecLen is the fixed wire size of one trace record.
const traceRecLen = 8 + 8 + 4 + 4 + 4 + 8 + wire.BodyWireSize + 1

// mergeTraceRecords k-way merges per-frame raw trace sections — each
// sorted by (T, Seq), keys globally unique — into one sorted byte run.
func mergeTraceRecords(sections [][]byte, counts []int) ([]byte, int) {
	var out []byte
	total := 0
	for _, c := range counts {
		total += c
	}
	cur := make([]int, len(sections))
	key := func(i int) (float64, uint64) {
		d := wire.NewDec(sections[i][cur[i]*traceRecLen:], nil)
		return d.F64(), d.U64()
	}
	for emitted := 0; emitted < total; emitted++ {
		best := -1
		var bt float64
		var bs uint64
		for i := range sections {
			if cur[i] == counts[i] {
				continue
			}
			t, sq := key(i)
			if best < 0 || t < bt || (t == bt && sq < bs) {
				best, bt, bs = i, t, sq
			}
		}
		out = append(out, sections[best][cur[best]*traceRecLen:(cur[best]+1)*traceRecLen]...)
		cur[best]++
	}
	return out, total
}
