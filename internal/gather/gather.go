// Package gather implements the information-collecting abstraction of §3.1
// (Theorems 3.1 and 3.2): given a sparse d-cover and a process P that every
// node eventually finishes locally, each node learns when every node in its
// d-neighborhood (or d·ℓ-neighborhood, via chained stages) is done with P.
//
// Per cluster the module runs a convergecast up the cluster tree — a node
// reports once it is locally done and all its tree children have reported —
// followed by a confirmation broadcast from the root. A member node's
// neighborhood is done once every cluster containing it has confirmed,
// because any node within distance d shares at least one cluster with it.
//
// Cost per session: O(1) messages per tree edge per cluster, i.e.
// O(m·log⁴n) messages and O(d·polylog) isolated time (Theorem 3.1).
package gather

import (
	"fmt"

	"repro/internal/async"
	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/wire"
)

// Callbacks receives gather completions.
type Callbacks interface {
	// NeighborhoodDone fires on a member node when, for the given session,
	// every cluster containing it has confirmed cluster-wide completion.
	NeighborhoodDone(n *async.Node, session int)
}

// Wire kinds of gather traffic (namespace: this module's proto). Every
// payload carries A = cluster, B = session.
const (
	kindDoneUp wire.Kind = iota + 1
	kindConfirmDown
)

func encPayload(k wire.Kind, c cover.ClusterID, session int) wire.Body {
	return wire.Body{Kind: k, A: int64(c), B: int64(session)}
}

func decPayload(b wire.Body) (cover.ClusterID, int) {
	return cover.ClusterID(b.A), int(b.B)
}

type clusterState struct {
	began     bool
	localDone bool
	childDone map[graph.NodeID]bool
	reported  bool
	confirmed bool
}

type nodeSession struct {
	began     bool
	markedAll bool
	confirmed int  // clusters containing me that confirmed
	fired     bool // callback delivered
}

type key struct {
	c cover.ClusterID
	s int
}

// Module is the per-node gather engine for one cover.
type Module struct {
	proto    async.Proto
	cov      *cover.Cover
	cb       Callbacks
	stageOf  func(session int) int
	states   map[key]*clusterState
	sessions map[int]*nodeSession
}

var _ async.Module = (*Module)(nil)

// New creates the per-node module. stageOf maps sessions to link stages
// (nil = all zero).
func New(proto async.Proto, cov *cover.Cover, cb Callbacks, stageOf func(int) int) *Module {
	if stageOf == nil {
		stageOf = func(int) int { return 0 }
	}
	return &Module{
		proto:    proto,
		cov:      cov,
		cb:       cb,
		stageOf:  stageOf,
		states:   make(map[key]*clusterState),
		sessions: make(map[int]*nodeSession),
	}
}

// Start implements async.Module.
func (m *Module) Start(*async.Node) {}

// Ack implements async.Module.
func (m *Module) Ack(*async.Node, graph.NodeID, async.Msg) {}

func (m *Module) state(c cover.ClusterID, s int) *clusterState {
	k := key{c: c, s: s}
	st := m.states[k]
	if st == nil {
		st = &clusterState{childDone: make(map[graph.NodeID]bool)}
		m.states[k] = st
	}
	return st
}

func (m *Module) session(s int) *nodeSession {
	ns := m.sessions[s]
	if ns == nil {
		ns = &nodeSession{}
		m.sessions[s] = ns
	}
	return ns
}

// Begin announces the session at this node: every cluster tree this node
// participates in becomes live here. Nonterminal nodes (pure relays) count
// as locally done. Idempotent. Every tree participant must eventually call
// Begin (or MarkDone) for every session, or convergecasts stall.
func (m *Module) Begin(n *async.Node, session int) {
	ns := m.session(session)
	if ns.began {
		return
	}
	ns.began = true
	for _, cid := range m.cov.TreeOf(n.ID()) {
		st := m.state(cid, session)
		st.began = true
		if !m.cov.Cluster(cid).Has(n.ID()) {
			st.localDone = true // nonterminals have no process to finish
		}
		m.maybeReport(n, cid, session, st)
	}
	// A node in no cluster at all has a trivially-done neighborhood.
	if len(m.cov.MemberOf(n.ID())) == 0 {
		m.maybeFire(n, session, ns)
	}
}

// MarkDone records that this node's local process P for the session is
// finished. Implies Begin.
func (m *Module) MarkDone(n *async.Node, session int) {
	m.Begin(n, session)
	ns := m.session(session)
	if ns.markedAll {
		return
	}
	ns.markedAll = true
	for _, cid := range m.cov.MemberOf(n.ID()) {
		st := m.state(cid, session)
		st.localDone = true
		m.maybeReport(n, cid, session, st)
	}
	m.maybeFire(n, session, ns)
}

// Recv implements async.Module.
func (m *Module) Recv(n *async.Node, from graph.NodeID, msg async.Msg) {
	c, session := decPayload(msg.Body)
	st := m.state(c, session)
	switch msg.Body.Kind {
	case kindDoneUp:
		st.childDone[from] = true
		m.maybeReport(n, c, session, st)
	case kindConfirmDown:
		m.confirm(n, c, session, st)
	default:
		panic(fmt.Sprintf("gather: unknown kind %d", msg.Body.Kind))
	}
}

// maybeReport sends the subtree-done report upward (or starts the
// confirmation broadcast at the root) once this node is locally done, has
// begun, and has heard from every tree child.
func (m *Module) maybeReport(n *async.Node, c cover.ClusterID, session int, st *clusterState) {
	if st.reported || !st.began || !st.localDone {
		return
	}
	cl := m.cov.Cluster(c)
	for _, ch := range cl.ChildrenOf(n.ID()) {
		if !st.childDone[ch] {
			return
		}
	}
	st.reported = true
	if cl.Root == n.ID() {
		m.confirm(n, c, session, st)
		return
	}
	par, _ := cl.ParentOf(n.ID())
	n.Send(par, async.Msg{Proto: m.proto, Stage: m.stageOf(session), Body: encPayload(kindDoneUp, c, session)})
}

// confirm marks the cluster complete at this node and forwards the
// broadcast to tree children.
func (m *Module) confirm(n *async.Node, c cover.ClusterID, session int, st *clusterState) {
	if st.confirmed {
		return
	}
	st.confirmed = true
	cl := m.cov.Cluster(c)
	for _, ch := range cl.ChildrenOf(n.ID()) {
		n.Send(ch, async.Msg{Proto: m.proto, Stage: m.stageOf(session), Body: encPayload(kindConfirmDown, c, session)})
	}
	if cl.Has(n.ID()) {
		ns := m.session(session)
		ns.confirmed++
		m.maybeFire(n, session, ns)
	}
}

// maybeFire delivers NeighborhoodDone when every containing cluster has
// confirmed and the local process finished (a member's own completion is
// part of "everyone within distance d is done").
func (m *Module) maybeFire(n *async.Node, session int, ns *nodeSession) {
	if ns.fired {
		return
	}
	member := m.cov.MemberOf(n.ID())
	if len(member) > 0 && (!ns.markedAll || ns.confirmed < len(member)) {
		return
	}
	if len(member) == 0 && !ns.began {
		return
	}
	ns.fired = true
	m.cb.NeighborhoodDone(n, session)
}

// Done reports whether the session's NeighborhoodDone fired at this node.
func (m *Module) Done(session int) bool {
	ns := m.sessions[session]
	return ns != nil && ns.fired
}

// Chain runs Theorem 3.2's staged gather: stage i learns that the
// (i+1)·d-neighborhood is done, by gathering "stage i-1 done" in the
// d-cover. Sessions used are base+0 … base+(L-1).
type Chain struct {
	Mod  *Module
	L    int // number of stages ℓ
	Base int // first session id
	// Final fires when the d·L-neighborhood is done with P.
	Final func(n *async.Node)

	marked bool
	stage  int
}

// Begin announces all chain sessions at this node (relays included).
func (ch *Chain) Begin(n *async.Node) {
	for i := 0; i < ch.L; i++ {
		ch.Mod.Begin(n, ch.Base+i)
	}
}

// MarkDone records local completion of P, starting stage 0.
func (ch *Chain) MarkDone(n *async.Node) {
	if ch.marked {
		return
	}
	ch.marked = true
	ch.Begin(n)
	ch.Mod.MarkDone(n, ch.Base)
}

// OnNeighborhoodDone must be called from the owner's Callbacks for sessions
// in [Base, Base+L); it advances the chain and fires Final at the end.
func (ch *Chain) OnNeighborhoodDone(n *async.Node, session int) {
	if session != ch.Base+ch.stage {
		panic(fmt.Sprintf("gather: chain got session %d at stage %d", session, ch.stage))
	}
	ch.stage++
	if ch.stage == ch.L {
		if ch.Final != nil {
			ch.Final(n)
		}
		return
	}
	ch.Mod.MarkDone(n, ch.Base+ch.stage)
}

// Owns reports whether the session belongs to this chain.
func (ch *Chain) Owns(session int) bool {
	return session >= ch.Base && session < ch.Base+ch.L
}
