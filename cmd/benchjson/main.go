// Command benchjson converts `go test -bench` output on stdin into the
// committed bench-trajectory artifact (BENCH_N.json): one record per
// benchmark with ns/op, allocs/op, bytes/op, any custom metrics, the
// execution mode inferred from the benchmark name, and the GOMAXPROCS the
// benchmark ran at (the -N name suffix). `make bench` pipes the engine
// microbenchmark suite through it.
//
// Usage:
//
//	go test -run '^$' -bench ... ./... | benchjson -note "..." > BENCH_4.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name without the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Mode is the engine execution mode inferred from the name ("single",
	// "multi", "spec", "shard", or "default" when the name carries none);
	// the last sub-benchmark path segment takes precedence over substring
	// matches, and a "shard"/"shards=K" segment anywhere in the path marks
	// a multi-process run.
	Mode string `json:"mode"`
	// Shards is the worker-process count parsed from a "shards=K" path
	// segment; 0 when the benchmark is not a sharded run.
	Shards int `json:"shards,omitempty"`
	// Gomaxprocs is the -N suffix go test appends to the name.
	Gomaxprocs int     `json:"gomaxprocs"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"nsPerOp"`
	AllocsOp   float64 `json:"allocsPerOp,omitempty"`
	BytesOp    float64 `json:"bytesPerOp,omitempty"`
	// Footprint columns: the retained-memory probe (BenchmarkFootprint)
	// reports these units, and they are promoted out of Metrics so the
	// committed trajectory tracks resident bytes per link/node by name —
	// the numbers that decide whether ten million nodes fit in RAM.
	GraphBPerLink float64 `json:"graphBytesPerLink,omitempty"`
	AsyncBPerLink float64 `json:"asyncBytesPerLink,omitempty"`
	SyncBPerNode  float64 `json:"syncBytesPerNode,omitempty"`
	// Metrics carries every other reported unit (events/op, msgs/op, …).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Output is the whole document.
type Output struct {
	Schema     string      `json:"schema"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	os.Exit(run())
}

func run() int {
	note := flag.String("note", "", "free-form provenance note embedded in the document")
	flag.Parse()
	out := Output{Schema: "enginebench/v1", Note: *note}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				out.Benchmarks = append(out.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if len(out.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		return 1
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// parseLine parses one result line:
//
//	BenchmarkName/sub-8  123  456.7 ns/op  89 B/op  1 allocs/op  2 events/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Gomaxprocs: 1, Mode: "default", Metrics: map[string]float64{}}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Gomaxprocs = p
			b.Name = b.Name[:i]
		}
	}
	b.Mode, b.Shards = inferMode(b.Name)
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "allocs/op":
			b.AllocsOp = v
		case "B/op":
			b.BytesOp = v
		case "graphB/link":
			b.GraphBPerLink = v
		case "asyncB/link":
			b.AsyncBPerLink = v
		case "syncB/node":
			b.SyncBPerNode = v
		default:
			b.Metrics[unit] = v
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}

// inferMode maps a benchmark name to the engine execution mode it ran,
// plus the shard count for multi-process runs. The final sub-benchmark
// path segment wins when it names a mode exactly —
// BenchmarkSimFloodRandomModes/single must not be misread as "spec" just
// because the parent name mentions a mode. A "shard" or "shards=K"
// segment anywhere in the path marks a sharded run; it is checked before
// the whole-name substring fallback so BenchmarkShardSweep/spec=…/shards=2
// is not misread as "spec". Only then does the older whole-name substring
// match apply.
func inferMode(name string) (string, int) {
	if i := strings.LastIndex(name, "/"); i >= 0 {
		switch seg := strings.ToLower(name[i+1:]); seg {
		case "single", "multi", "spec":
			return seg, 0
		}
	}
	for _, seg := range strings.Split(strings.ToLower(name), "/") {
		if seg == "shard" {
			return "shard", 0
		}
		if rest, ok := strings.CutPrefix(seg, "shards="); ok {
			if k, err := strconv.Atoi(rest); err == nil && k > 0 {
				return "shard", k
			}
		}
	}
	lower := strings.ToLower(name)
	switch {
	case strings.Contains(lower, "spec"):
		return "spec", 0
	case strings.Contains(lower, "multi"):
		return "multi", 0
	case strings.Contains(lower, "single"):
		return "single", 0
	}
	return "default", 0
}
