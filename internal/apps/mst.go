package apps

import (
	"fmt"

	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/syncrun"
	"repro/internal/wire"
)

// MST is an event-driven synchronous Borůvka/GHS-style minimum spanning
// tree (the Corollary 1.4 workload; DESIGN.md records the substitution of
// Elkin'20 by this algorithm — same Õ(m) message bound, weaker time
// bound). Edge weights must be distinct (graph.WithRandomWeights), which
// makes the MST unique and every Borůvka merge-cycle a 2-cycle.
//
// Each phase: (A) every node exchanges fragment IDs with its neighbors,
// (B) each fragment convergecasts its minimum-weight outgoing edge (MOE)
// to the fragment leader, which broadcasts the decision, (C) the MOE
// endpoint sends CONNECT across it, (barrier) (D) merge cores — edges
// whose two fragments chose each other — elect the max-ID endpoint as the
// new leader, which broadcasts the new fragment ID over the merged tree,
// (barrier) and the next phase begins. The two global barriers run on a
// given BFS tree and make the phases lockstep, so fragments never observe
// mixed-phase traffic. A fragment whose MOE search finds no outgoing edge
// spans the graph: every node outputs and the algorithm quiesces.
type MST struct {
	// Barrier is the global BFS-tree used for phase barriers (built once,
	// like β's tree; its construction is initialization).
	Barrier *cover.Cluster
	// Weights maps edge IDs to weights (local knowledge: a node only ever
	// reads its incident edges). Weights must be distinct.
	Weights []int64

	frag     graph.NodeID
	parent   graph.NodeID // fragment-tree parent (-1 at the leader)
	treeNbrs map[graph.NodeID]bool
	phase    int
	fragDone bool
	st       map[int]*mstPhase
	bar      map[int]*mstBarrier
	out      sendQueue
}

// MSTResult is the per-node output.
type MSTResult struct {
	// Frag is the final fragment ID (identical across nodes).
	Frag graph.NodeID
	// Parent is this node's MST-tree parent (-1 at the leader).
	Parent graph.NodeID
	// TreeNeighbors lists the MST edges incident to this node.
	TreeNeighbors []graph.NodeID
}

type mstPhase struct {
	tests       map[graph.NodeID]graph.NodeID // neighbor -> its fragment
	moeReports  int
	best        mstEdge
	reported    bool
	decided     bool
	decision    mstEdge
	decisionNon bool
	sentConnect graph.NodeID // -1 = none
	connectIn   map[graph.NodeID]bool
	merged      bool // stage D entered (connect edges adopted)
	// pendingNF buffers a NewFrag broadcast that arrived before this
	// node's first barrier release (it travels the fragment tree, not the
	// barrier tree, so it can be early).
	pendingNF     *mstNewFrag
	pendingNFFrom graph.NodeID
}

type mstBarrier struct {
	reports int
	sent    bool
	ready   bool
	done    bool
}

// mstEdge is an MOE candidate; None marks the identity of min-aggregation.
type mstEdge struct {
	W    int64
	U, V graph.NodeID // U is the in-fragment endpoint
	None bool
}

func (e mstEdge) better(o mstEdge) bool {
	if e.None || o.None {
		return !e.None
	}
	return e.W < o.W
}

// mstDecision is the decoded fragment-wide MOE broadcast.
type mstDecision struct {
	Phase int
	Best  mstEdge
}

// mstNewFrag is the decoded new-fragment-ID broadcast.
type mstNewFrag struct {
	Phase int
	Frag  graph.NodeID
}

var _ syncrun.Handler = (*MST)(nil)

// Init implements syncrun.Handler.
func (h *MST) Init(n syncrun.API) {
	h.frag = n.ID()
	h.parent = -1
	h.treeNbrs = make(map[graph.NodeID]bool)
	h.st = make(map[int]*mstPhase)
	h.bar = make(map[int]*mstBarrier)
	h.enterPhase(n, 1)
	h.out.Flush(n)
}

func (h *MST) phaseState(k int) *mstPhase {
	st := h.st[k]
	if st == nil {
		st = &mstPhase{
			tests:       make(map[graph.NodeID]graph.NodeID),
			best:        mstEdge{None: true},
			sentConnect: -1,
			connectIn:   make(map[graph.NodeID]bool),
		}
		h.st[k] = st
	}
	return st
}

func (h *MST) barrier(seq int) *mstBarrier {
	b := h.bar[seq]
	if b == nil {
		b = &mstBarrier{}
		h.bar[seq] = b
	}
	return b
}

// enterPhase starts stage A: fragment-ID exchange with every neighbor.
func (h *MST) enterPhase(n syncrun.API, k int) {
	h.phase = k
	for _, nb := range n.Neighbors() {
		h.out.Send(nb.Node, wire.Body{Kind: kindMSTTest, A: int64(k), B: int64(h.frag)})
	}
	h.maybeLocalMOE(n, k)
}

// Pulse implements syncrun.Handler.
func (h *MST) Pulse(n syncrun.API, p int, recvd []syncrun.Incoming) {
	for _, in := range recvd {
		switch in.Body.Kind {
		case kindMSTTest:
			phase := int(in.Body.A)
			st := h.phaseState(phase)
			st.tests[in.From] = graph.NodeID(in.Body.B)
			h.maybeLocalMOE(n, phase)
		case kindMSTMOE:
			phase, best := decMSTEdge(in.Body)
			st := h.phaseState(phase)
			st.moeReports++
			if best.better(st.best) {
				st.best = best
			}
			h.maybeReportMOE(n, phase)
		case kindMSTDecision:
			phase, best := decMSTEdge(in.Body)
			h.onDecision(n, mstDecision{Phase: phase, Best: best})
		case kindMSTConnect:
			h.phaseState(int(in.Body.A)).connectIn[in.From] = true
		case kindMSTNewFrag:
			h.onNewFrag(n, in.From, mstNewFrag{Phase: int(in.Body.A), Frag: graph.NodeID(in.Body.B)})
		case kindMSTBarUp:
			h.barrier(int(in.Body.A)).reports++
		case kindMSTBarDown:
			h.onBarrierRelease(n, int(in.Body.A))
		default:
			panic(fmt.Sprintf("apps: MST node %d got kind %d", n.ID(), in.Body.Kind))
		}
	}
	h.pump(n)
	h.out.Flush(n)
}

// pump advances whatever barrier progress became possible this pulse. The
// barrier report is gated on an empty send queue: everything this node
// queued earlier is then already delivered or one hop away, so the barrier
// release (two hops at minimum) cannot overtake any phase message.
func (h *MST) pump(n syncrun.API) {
	for seq := 0; seq <= 2*h.phase+1; seq++ {
		h.maybeBarrierReport(n, seq)
	}
}

func (h *MST) maybeBarrierReport(n syncrun.API, seq int) {
	b := h.barrier(seq)
	if b.sent || !b.ready || !h.out.Empty() {
		return
	}
	if b.reports < len(h.Barrier.ChildrenOf(n.ID())) {
		return
	}
	b.sent = true
	if par, ok := h.Barrier.ParentOf(n.ID()); ok {
		h.out.Send(par, wire.Body{Kind: kindMSTBarUp, A: int64(seq)})
		return
	}
	h.onBarrierRelease(n, seq) // root: broadcast and advance locally
}

func (h *MST) onBarrierRelease(n syncrun.API, seq int) {
	b := h.barrier(seq)
	if b.done {
		return
	}
	b.done = true
	for _, ch := range h.Barrier.ChildrenOf(n.ID()) {
		h.out.Send(ch, wire.Body{Kind: kindMSTBarDown, A: int64(seq)})
	}
	k := seq / 2
	if seq%2 == 0 {
		h.startMerge(n, k)
	} else if !h.fragDone {
		h.enterPhase(n, k+1)
	}
}

// maybeLocalMOE runs once all neighbor fragment IDs for the phase are in:
// compute the local MOE candidate and try to start the convergecast.
func (h *MST) maybeLocalMOE(n syncrun.API, k int) {
	if k != h.phase || h.fragDone {
		return
	}
	st := h.phaseState(k)
	if len(st.tests) < n.Degree() {
		return
	}
	h.maybeReportMOE(n, k)
}

// maybeReportMOE sends the fragment-subtree MOE up once local info and all
// fragment-children reports are in.
func (h *MST) maybeReportMOE(n syncrun.API, k int) {
	if k != h.phase || h.fragDone {
		return
	}
	st := h.phaseState(k)
	if st.reported || len(st.tests) < n.Degree() {
		return
	}
	fragChildren := 0
	for nb := range h.treeNbrs {
		if nb != h.parent {
			fragChildren++
		}
	}
	if st.moeReports < fragChildren {
		return
	}
	// Fold in the local candidate.
	local := mstEdge{None: true}
	for _, nb := range n.Neighbors() {
		if st.tests[nb.Node] == h.frag {
			continue
		}
		w := h.Weights[nb.Edge]
		cand := mstEdge{W: w, U: n.ID(), V: nb.Node}
		if cand.better(local) {
			local = cand
		}
	}
	if local.better(st.best) {
		st.best = local
	}
	st.reported = true
	if h.parent >= 0 {
		h.out.Send(h.parent, encMSTEdge(kindMSTMOE, k, st.best))
		return
	}
	// Fragment leader: decide and broadcast.
	h.onDecision(n, mstDecision{Phase: k, Best: st.best})
}

// onDecision handles the fragment-wide MOE broadcast.
func (h *MST) onDecision(n syncrun.API, m mstDecision) {
	st := h.phaseState(m.Phase)
	if st.decided {
		return
	}
	st.decided = true
	st.decision = m.Best
	st.decisionNon = m.Best.None
	for _, nb := range sortedKeys(h.treeNbrs) {
		if nb != h.parent {
			h.out.Send(nb, encMSTEdge(kindMSTDecision, m.Phase, m.Best))
		}
	}
	if m.Best.None {
		// No outgoing edge: the fragment spans the graph. Output.
		h.fragDone = true
		n.Output(h.result(n))
	} else if m.Best.U == n.ID() {
		st.sentConnect = m.Best.V
		h.out.Send(m.Best.V, wire.Body{Kind: kindMSTConnect, A: int64(m.Phase)})
	}
	h.barrier(2 * m.Phase).ready = true
}

// startMerge is stage D, entered at the first barrier: adopt connect edges
// into the tree and, at merge cores, elect the new leader and broadcast
// the new fragment ID.
func (h *MST) startMerge(n syncrun.API, k int) {
	st := h.phaseState(k)
	st.merged = true
	if st.decisionNon {
		// Nothing merged; release the second barrier immediately.
		h.barrier(2*k + 1).ready = true
		return
	}
	if st.sentConnect >= 0 {
		h.treeNbrs[st.sentConnect] = true
	}
	for _, from := range sortedKeys(st.connectIn) {
		h.treeNbrs[from] = true
	}
	core := st.sentConnect >= 0 && st.connectIn[st.sentConnect]
	if core && n.ID() > st.sentConnect {
		// New leader of the merged fragment.
		h.frag = n.ID()
		h.parent = -1
		for _, nb := range sortedKeys(h.treeNbrs) {
			h.out.Send(nb, wire.Body{Kind: kindMSTNewFrag, A: int64(k), B: int64(h.frag)})
		}
		h.barrier(2*k + 1).ready = true
		return
	}
	if st.pendingNF != nil {
		h.applyNewFrag(n, st.pendingNFFrom, *st.pendingNF)
	}
	// Everyone else waits for mstNewFrag.
}

func (h *MST) onNewFrag(n syncrun.API, from graph.NodeID, m mstNewFrag) {
	st := h.phaseState(m.Phase)
	if !st.merged {
		st.pendingNF = &m
		st.pendingNFFrom = from
		return
	}
	h.applyNewFrag(n, from, m)
}

func (h *MST) applyNewFrag(n syncrun.API, from graph.NodeID, m mstNewFrag) {
	h.frag = m.Frag
	h.parent = from
	for _, nb := range sortedKeys(h.treeNbrs) {
		if nb != from {
			h.out.Send(nb, wire.Body{Kind: kindMSTNewFrag, A: int64(m.Phase), B: int64(m.Frag)})
		}
	}
	h.barrier(2*m.Phase + 1).ready = true
}

func (h *MST) result(n syncrun.API) MSTResult {
	nbrs := make([]graph.NodeID, 0, len(h.treeNbrs))
	for _, nb := range n.Neighbors() {
		if h.treeNbrs[nb.Node] {
			nbrs = append(nbrs, nb.Node)
		}
	}
	return MSTResult{Frag: h.frag, Parent: h.parent, TreeNeighbors: nbrs}
}

// sortedKeys returns the keys of a node-set in ascending order, for
// deterministic send ordering.
func sortedKeys(set map[graph.NodeID]bool) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
