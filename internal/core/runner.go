package core

import (
	"fmt"
	"sync"

	"repro/internal/async"
	"repro/internal/cover"
	"repro/internal/gather"
	"repro/internal/graph"
	"repro/internal/reg"
	"repro/internal/syncrun"
)

// Config describes one synchronized run (the Theorem 5.5 setting: the
// pulse bound is known, covers are given or built up front).
type Config struct {
	// Graph is the network.
	Graph *graph.Graph
	// Bound B: the synchronous algorithm must send only at pulses 0..B-1.
	// Exceeding it panics (it is a correctness contract, Appendix B).
	Bound int
	// Adversary controls message delays; nil means SeededRandom{1}.
	Adversary async.Adversary
	// Layered optionally supplies prebuilt covers (they must reach level
	// ℓ(B)+5); nil builds them from the graph.
	Layered *cover.Layered
	// Mode selects the asynchronous engine's execution mode (default
	// ModeAuto). Results are byte-identical across modes; the parallel
	// modes only change wall-clock. The stack's state codec doubles as its
	// StateCloner, so ModeSpec runs the synchronizer speculatively like
	// any other cloneable workload.
	Mode async.ExecutionMode
	// Workers caps the engine's parallel worker pool (0 = engine default;
	// negative panics).
	Workers int
}

// coverCache memoizes BuildLayeredFor results. Covers are deterministic in
// (graph, radius) and immutable once built, so repeated trials on the same
// graph — the common shape of every experiment sweep — reuse one build.
// Entries key on the graph pointer plus the cover radius; a small FIFO
// bound keeps long-running sweeps over many graphs from pinning them all.
type coverCacheKey struct {
	g      *graph.Graph
	radius int
}

var coverCache = struct {
	sync.Mutex
	entries map[coverCacheKey]*cover.Layered
	order   []coverCacheKey
}{entries: make(map[coverCacheKey]*cover.Layered)}

const coverCacheCap = 64

// ResetCoverCache drops every memoized layered cover, releasing the graphs
// and covers it pins. Long-lived processes sweeping many graphs can call
// it between sweeps.
func ResetCoverCache() {
	coverCache.Lock()
	coverCache.entries = make(map[coverCacheKey]*cover.Layered)
	coverCache.order = nil
	coverCache.Unlock()
}

// BuildLayeredFor constructs the layered covers the synchronizer needs for
// pulse bound b on g. Building them is the synchronizer's initialization
// (§4.6 / Theorem 4.22 do it asynchronously; this implementation builds
// them centrally and reports their cost separately — see DESIGN.md).
// Results are memoized per (graph, radius) for finalized graphs — their
// topology can no longer change (AddEdge panics) and covers are immutable
// after construction, so the cached value is safe to share across
// concurrent runs (the parallel experiment harness relies on this).
// Unfinalized graphs bypass the cache.
func BuildLayeredFor(g *graph.Graph, b int) *cover.Layered {
	sched := NewSchedule(b)
	radius := 1 << uint(sched.MaxCoverLevel)
	if !g.Final() {
		return cover.BuildLayered(g, radius, nil)
	}
	key := coverCacheKey{g: g, radius: radius}
	coverCache.Lock()
	if l, ok := coverCache.entries[key]; ok {
		coverCache.Unlock()
		return l
	}
	coverCache.Unlock()
	// Build outside the lock: cover construction dominates and must not
	// serialize independent graphs. A concurrent duplicate build of the
	// same key is deterministic, so last-write-wins is harmless.
	l := cover.BuildLayered(g, radius, nil)
	coverCache.Lock()
	if cached, ok := coverCache.entries[key]; ok {
		l = cached
	} else {
		if len(coverCache.order) >= coverCacheCap {
			oldest := coverCache.order[0]
			coverCache.order = coverCache.order[1:]
			delete(coverCache.entries, oldest)
		}
		coverCache.entries[key] = l
		coverCache.order = append(coverCache.order, key)
	}
	coverCache.Unlock()
	return l
}

// Synchronize runs the synchronous algorithm produced by mk under the
// deterministic synchronizer on cfg.Graph and returns the asynchronous
// run's measurements. The outputs are exactly those of the synchronous
// execution (Theorem 5.2).
func Synchronize(cfg Config, mk func(id graph.NodeID) syncrun.Handler) async.Result {
	return newSynchronizedSim(cfg, mk).Run()
}

// NewSynchronizedSim assembles the synchronizer stack without running it,
// returning the engine handle for stepwise execution and the state plane:
// RunSteps / Snapshot / Restore / FinishResult (or plain Run). This is the
// root package's checkpointable synchronized run.
func NewSynchronizedSim(cfg Config, mk func(id graph.NodeID) syncrun.Handler) *async.Sim {
	return newSynchronizedSim(cfg, mk)
}

// newSynchronizedSim assembles the synchronizer stack without running it.
// SynchronizeUnknownBound keeps the sim handle so an attempt that aborts
// mid-run (pulse bound exceeded) can still be billed via Sim.Stats.
func newSynchronizedSim(cfg Config, mk func(id graph.NodeID) syncrun.Handler) *async.Sim {
	if cfg.Graph == nil {
		panic("core: Config.Graph is nil")
	}
	if cfg.Bound < 1 {
		panic(fmt.Sprintf("core: Config.Bound must be >= 1, got %d", cfg.Bound))
	}
	if cfg.Workers < 0 {
		panic(fmt.Sprintf("core: Config.Workers must be >= 0, got %d", cfg.Workers))
	}
	adv := cfg.Adversary
	if adv == nil {
		adv = async.SeededRandom{Seed: 1}
	}
	sched := NewSchedule(cfg.Bound)
	layered := cfg.Layered
	if layered == nil {
		layered = BuildLayeredFor(cfg.Graph, cfg.Bound)
	}
	if layered.MaxLevel() < sched.MaxCoverLevel {
		panic(fmt.Sprintf("core: layered covers reach level %d, need %d",
			layered.MaxLevel(), sched.MaxCoverLevel))
	}
	sim := async.New(cfg.Graph, adv, func(id graph.NodeID) async.Handler {
		return NewNodeHandler(sched, layered, mk(id))
	}).WithMode(cfg.Mode)
	if cfg.Workers > 0 {
		sim.WithWorkers(cfg.Workers)
	}
	return sim
}

// NewNodeHandler wires one node's synchronizer stack: the core engine plus
// one registration module and one barrier module per cover level in use.
// Callers may register additional modules on unused protos of the returned
// Mux before the simulation starts.
func NewNodeHandler(sched *Schedule, layered *cover.Layered, algo syncrun.Handler) *async.Mux {
	c := &nodeCore{
		sched:       sched,
		layered:     layered,
		algo:        algo,
		regMods:     make(map[int]*reg.Module),
		barMods:     make(map[int]*gather.Module),
		vnodes:      make(map[int]*vnode),
		recvd:       make(map[int][]syncrun.Incoming),
		recvdClosed: make(map[int]bool),
	}
	mux := async.NewMux()
	mux.Register(ProtoAlgo, c)
	mux.Register(ProtoTree, c)
	stagePulse := func(session int) int { return session }
	stageBarrier := func(session int) int { return session / 2 }
	for lvl := 5; lvl <= sched.MaxCoverLevel; lvl++ {
		cov := layered.Level(lvl)
		rm := reg.New(ProtoRegBase+async.Proto(lvl), cov, c, stagePulse)
		bm := gather.New(ProtoBarrierBase+async.Proto(lvl), cov, c, stageBarrier)
		c.regMods[lvl] = rm
		c.barMods[lvl] = bm
		mux.Register(ProtoRegBase+async.Proto(lvl), rm)
		mux.Register(ProtoBarrierBase+async.Proto(lvl), bm)
	}
	return mux
}
