package gather

import (
	"testing"

	"repro/internal/wire"
)

// TestPayloadCodecRoundTrips covers both gather kinds.
func TestPayloadCodecRoundTrips(t *testing.T) {
	for _, k := range []wire.Kind{kindDoneUp, kindConfirmDown} {
		b := encPayload(k, 9, 4)
		if b.Kind != k {
			t.Fatalf("kind = %d, want %d", b.Kind, k)
		}
		c, s := decPayload(b)
		if c != 9 || s != 4 {
			t.Fatalf("round trip: (%d, %d)", c, s)
		}
	}
}
