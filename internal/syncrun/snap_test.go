package syncrun

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/wire"
)

// codecBFS is syncBFS plus wire.StateCodec: src is config (rebuilt by the
// handler constructor), dist is the mutable state the frame carries.
type codecBFS struct {
	src  graph.NodeID
	dist int
}

func (h *codecBFS) Init(n API) {
	h.dist = -1
	if n.ID() == h.src {
		h.dist = 0
		n.Output(0)
		for _, nb := range n.Neighbors() {
			n.Send(nb.Node, wire.Tag(1))
		}
	}
}

func (h *codecBFS) Pulse(n API, p int, recvd []Incoming) {
	if h.dist >= 0 || len(recvd) == 0 {
		return
	}
	h.dist = p
	n.Output(p)
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, wire.Tag(1))
	}
}

func (h *codecBFS) SaveState(e *wire.Enc) { e.Int(h.dist) }
func (h *codecBFS) LoadState(d *wire.Dec) { h.dist = d.Int() }

func mkCodecBFS(graph.NodeID) Handler { return &codecBFS{src: 0} }

// TestLockstepSnapshotMatrix is the lockstep half of the round-trip
// invariant: snapshot after every pulse, restore into a fresh runner,
// finish in each execution mode — byte-identical to the uninterrupted run
// on every graph.
func TestLockstepSnapshotMatrix(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(17)},
		{"grid", graph.Grid(5, 8)},
		{"er", graph.RandomConnected(50, 130, 2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref := New(tc.g, mkCodecBFS).KeepTrace().WithMode(ModeSingle).Run()
			for k := 0; ; k++ {
				a := New(tc.g, mkCodecBFS).KeepTrace()
				active := a.RunPulses(k)
				snap, err := a.Snapshot()
				if err != nil {
					t.Fatalf("snapshot at pulse %d: %v", k, err)
				}
				for _, mode := range []ExecutionMode{ModeSingle, ModeMulti} {
					b := New(tc.g, mkCodecBFS).KeepTrace()
					if err := b.Restore(snap); err != nil {
						t.Fatalf("restore at pulse %d: %v", k, err)
					}
					res := b.WithMode(mode).Run()
					if !reflect.DeepEqual(res, ref) {
						t.Fatalf("snapshot at pulse %d resumed in %s diverged from uninterrupted run", k, mode)
					}
				}
				if !active {
					break
				}
			}
		})
	}
}

// TestLockstepSnapshotStepped continues a restored runner with RunPulses
// rather than Run: stepping and finishing must agree with the reference
// as well (checkpoint-of-a-checkpoint composes).
func TestLockstepSnapshotStepped(t *testing.T) {
	g := graph.Grid(6, 7)
	ref := New(g, mkCodecBFS).Run()

	a := New(g, mkCodecBFS)
	a.RunPulses(3)
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b := New(g, mkCodecBFS)
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for b.RunPulses(2) {
	}
	if res := b.FinishResult(); !reflect.DeepEqual(res, ref) {
		t.Fatal("stepped continuation diverged from uninterrupted run")
	}
}

// TestLockstepSnapshotErrors pins the validation surface: restores into a
// used or mismatched runner are rejected, truncated frames fail cleanly,
// and non-codec handlers refuse to snapshot.
func TestLockstepSnapshotErrors(t *testing.T) {
	g := graph.Path(9)
	a := New(g, mkCodecBFS)
	a.RunPulses(2)
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	if err := a.Restore(snap); err == nil {
		t.Error("Restore into a runner that already stepped was accepted")
	}
	if err := New(graph.Path(10), mkCodecBFS).Restore(snap); err == nil {
		t.Error("restore into a different-size graph accepted")
	}
	if err := New(g, mkCodecBFS).KeepTrace().Restore(snap); err == nil {
		t.Error("restore with a mismatched trace flag accepted")
	}
	for _, n := range []int{0, 1, len(snap) / 2, len(snap) - 1} {
		if err := New(g, mkCodecBFS).Restore(snap[:n]); err == nil {
			t.Errorf("restore of %d/%d bytes accepted", n, len(snap))
		}
	}

	nc := New(g, func(graph.NodeID) Handler { return &syncBFS{src: 0} })
	nc.RunPulses(1)
	if _, err := nc.Snapshot(); err == nil {
		t.Error("Snapshot accepted a handler without wire.StateCodec")
	}
}
