package decomp

import (
	"math/bits"
	"testing"

	"repro/internal/graph"
)

// checkDecomposition validates every guarantee of Theorem 4.20 on g.
func checkDecomposition(t *testing.T, g *graph.Graph, k int, d *Decomposition) {
	t.Helper()
	n := g.N()
	logn := bits.Len(uint(n))

	// Every node is clustered exactly once.
	seen := make(map[graph.NodeID]bool)
	for _, c := range d.Clusters() {
		for _, v := range c.Members {
			if seen[v] {
				t.Fatalf("node %d in two clusters", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != n {
		t.Fatalf("clustered %d of %d nodes", len(seen), n)
	}

	// O(log n) colors.
	if len(d.Colors) > 4*logn+4 {
		t.Fatalf("%d colors for n=%d", len(d.Colors), n)
	}

	// Separation: same-color clusters are more than k apart.
	for _, cs := range d.Colors {
		for i, a := range cs {
			for j, b := range cs {
				if i >= j {
					continue
				}
				if dist := g.DistanceBetweenSets(a.Members, b.Members); dist >= 0 && dist <= k {
					t.Fatalf("color-%d clusters %d,%d at distance %d <= k=%d",
						a.Color, i, j, dist, k)
				}
			}
		}
	}

	// Tree validity: spans members, parent edges are graph edges, depths
	// consistent, radius O(k·log³n).
	radiusBound := 3 * k * logn * logn * logn
	if radiusBound < 4*k {
		radiusBound = 4 * k
	}
	for _, c := range d.Clusters() {
		tr := c.Tree
		for _, v := range c.Members {
			if !tr.Has(v) {
				t.Fatalf("member %d missing from tree", v)
			}
		}
		for _, child := range tr.Nodes() {
			par, ok := tr.ParentOf(child)
			if !ok {
				continue
			}
			if g.EdgeBetween(child, par) < 0 {
				t.Fatalf("tree edge {%d,%d} not a graph edge", child, par)
			}
			if tr.DepthAt(child) != tr.DepthAt(par)+1 {
				t.Fatalf("depth inconsistency at %d", child)
			}
		}
		if tr.DepthAt(tr.Root) != 0 {
			t.Fatal("root depth nonzero")
		}
		if tr.Depth() > radiusBound {
			t.Fatalf("tree radius %d exceeds bound %d (k=%d, n=%d)",
				tr.Depth(), radiusBound, k, n)
		}
	}

	// Edge congestion: each edge in O(log⁴ n) Steiner trees.
	cong := make(map[[2]graph.NodeID]int)
	for _, c := range d.Clusters() {
		for _, e := range c.Tree.Edges() {
			key := e
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			cong[key]++
		}
	}
	congBound := logn*logn*logn*logn + 8
	for e, c := range cong {
		if c > congBound {
			t.Fatalf("edge %v in %d trees (bound %d)", e, c, congBound)
		}
	}
}

func TestDecompositionFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"path64-k3", graph.Path(64), 3},
		{"cycle50-k5", graph.Cycle(50), 5},
		{"grid8x8-k3", graph.Grid(8, 8), 3},
		{"tree63-k4", graph.CompleteBinaryTree(63), 4},
		{"er80-k3", graph.RandomConnected(80, 200, 17), 3},
		{"star40-k2", graph.Star(40), 2},
		{"complete20-k1", graph.Complete(20), 1},
		{"dumbbell-k3", graph.Dumbbell(8, 10), 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := Build(tc.g, tc.k, nil)
			checkDecomposition(t, tc.g, tc.k, d)
		})
	}
}

func TestDecompositionLargerK(t *testing.T) {
	g := graph.Grid(10, 10)
	for _, k := range []int{1, 2, 5, 9, 21} {
		d := Build(g, k, nil)
		checkDecomposition(t, g, k, d)
	}
}

func TestDecompositionSubset(t *testing.T) {
	g := graph.Grid(9, 9)
	// Cluster only the even nodes.
	var s []graph.NodeID
	for v := 0; v < g.N(); v += 2 {
		s = append(s, graph.NodeID(v))
	}
	d := Build(g, 3, s)
	clustered := make(map[graph.NodeID]bool)
	for _, c := range d.Clusters() {
		for _, v := range c.Members {
			clustered[v] = true
		}
	}
	if len(clustered) != len(s) {
		t.Fatalf("clustered %d of %d subset nodes", len(clustered), len(s))
	}
	for v := range clustered {
		if v%2 != 0 {
			t.Fatalf("non-subset node %d clustered", v)
		}
	}
}

func TestDecompositionDeterminism(t *testing.T) {
	g := graph.RandomConnected(60, 140, 4)
	a, b := Build(g, 3, nil), Build(g, 3, nil)
	ca, cb := a.Clusters(), b.Clusters()
	if len(ca) != len(cb) {
		t.Fatal("cluster counts differ")
	}
	for i := range ca {
		if ca[i].Label != cb[i].Label || len(ca[i].Members) != len(cb[i].Members) {
			t.Fatal("cluster contents differ between runs")
		}
	}
}

func TestFirstColorClustersHalf(t *testing.T) {
	// Invariant (III) aggregated: the first color must keep >= half the
	// nodes alive.
	for _, g := range []*graph.Graph{graph.Grid(8, 8), graph.Cycle(64), graph.RandomConnected(100, 250, 9)} {
		d := Build(g, 3, nil)
		first := 0
		for _, c := range d.Colors[0] {
			first += len(c.Members)
		}
		if 2*first < g.N() {
			t.Fatalf("first color clustered %d of %d", first, g.N())
		}
	}
}

func TestTreeHelperMethods(t *testing.T) {
	g := graph.Path(8)
	d := Build(g, 2, nil)
	c := d.Clusters()[0]
	nodes := c.Tree.Nodes()
	if len(nodes) == 0 || !c.Tree.Has(c.Tree.Root) {
		t.Fatal("tree nodes/Has broken")
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1] >= nodes[i] {
			t.Fatal("Nodes not sorted")
		}
	}
	if len(c.Tree.Edges()) != len(nodes)-1 {
		t.Fatalf("tree has %d edges for %d nodes", len(c.Tree.Edges()), len(nodes))
	}
}

func TestBuildPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	Build(graph.Path(4), 0, nil)
}
