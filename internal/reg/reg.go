// Package reg implements the cluster registration abstraction of §3.2
// (Definition 3.3) with the paper's dirty/waiting edge-marking waves:
//
//   - R(v): registration marks the path from v to the cluster root dirty.
//   - D(v): deregistration converts dirty marks to waiting marks upward
//     until it hits another dirty subtree, the root, or a node whose own
//     client is still mid-registration.
//   - G(r): when the root's last dirty child edge clears, a Go-Ahead wave
//     travels down waiting edges, freeing deregistered clients.
//
// The module provides Register Guarantees 1 and 2 (Lemmas 3.4, 3.5): a
// client that receives Go-Ahead knows every client that registered before
// it deregistered has already deregistered, each operation costs O(h) time
// and messages on an h-height cluster tree, and Go-Aheads arrive within
// O(h) after the last deregistration.
//
// One Module instance per node serves every (cluster, session) pair of one
// cover; sessions are independent state machines (the BFS uses one session
// per pulse). The fix the paper makes to [APSPS92] is reproduced here: a
// node whose own registration is in flight ("registering") blocks a
// passing deregistration wave exactly like a registered node does.
package reg

import (
	"fmt"
	"sort"

	"repro/internal/async"
	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/wire"
)

// localState tracks this node's own client within one (cluster, session).
type localState int8

const (
	idle localState = iota
	registering
	registered
	deregistered
	free
)

// edge marks, parent's view of the edge to a child.
type edgeMark int8

const (
	markNone edgeMark = iota
	markDirty
	markWaiting
)

// Wire kinds of registration traffic (namespace: this module's proto).
// Every payload carries A = cluster, B = session.
const (
	kindRegUp wire.Kind = iota + 1
	kindRegDone
	kindDeregUp
	kindGoAhead
)

// encPayload encodes one registration message.
func encPayload(k wire.Kind, c cover.ClusterID, session int) wire.Body {
	return wire.Body{Kind: k, A: int64(c), B: int64(session)}
}

// decPayload decodes the cluster and session words.
func decPayload(b wire.Body) (cover.ClusterID, int) {
	return cover.ClusterID(b.A), int(b.B)
}

// Callbacks receives client-visible events.
type Callbacks interface {
	// Registered fires when this node's registration in (c, session)
	// completes (the path to the root is dirty).
	Registered(n *async.Node, c cover.ClusterID, session int)
	// GoAhead fires when this node, having deregistered, receives the
	// cluster's Go-Ahead.
	GoAhead(n *async.Node, c cover.ClusterID, session int)
}

type key struct {
	c cover.ClusterID
	s int
}

type state struct {
	local     localState
	finished  bool
	pending   bool // R(me) invocation in flight to parent
	upDirty   bool // my view of the edge to my cluster parent
	invokers  []graph.NodeID
	childMark map[graph.NodeID]edgeMark
}

// Module is the per-node registration engine for one cover. It implements
// async.Module; route one Proto to it.
type Module struct {
	proto   async.Proto
	cov     *cover.Cover
	cb      Callbacks
	stageOf func(session int) int
	states  map[key]*state
}

var _ async.Module = (*Module)(nil)

// New creates the per-node module. stageOf maps a session to the link
// scheduling stage (Lemma 2.5); pass nil for all-stage-zero.
func New(proto async.Proto, cov *cover.Cover, cb Callbacks, stageOf func(int) int) *Module {
	if stageOf == nil {
		stageOf = func(int) int { return 0 }
	}
	return &Module{
		proto:   proto,
		cov:     cov,
		cb:      cb,
		stageOf: stageOf,
		states:  make(map[key]*state),
	}
}

// Start implements async.Module.
func (m *Module) Start(*async.Node) {}

// Ack implements async.Module.
func (m *Module) Ack(*async.Node, graph.NodeID, async.Msg) {}

func (m *Module) state(n *async.Node, c cover.ClusterID, session int) *state {
	k := key{c: c, s: session}
	st := m.states[k]
	if st == nil {
		st = &state{childMark: make(map[graph.NodeID]edgeMark)}
		if m.isRoot(n, c) {
			st.finished = true // the root is always finished
		}
		m.states[k] = st
	}
	return st
}

func (m *Module) isRoot(n *async.Node, c cover.ClusterID) bool {
	return m.cov.Cluster(c).Root == n.ID()
}

func (m *Module) parent(n *async.Node, c cover.ClusterID) graph.NodeID {
	p, ok := m.cov.Cluster(c).ParentOf(n.ID())
	if !ok {
		panic(fmt.Sprintf("reg: node %d has no parent in cluster %d", n.ID(), c))
	}
	return p
}

func (m *Module) send(n *async.Node, to graph.NodeID, kind wire.Kind, c cover.ClusterID, session int) {
	n.Send(to, async.Msg{
		Proto: m.proto,
		Stage: m.stageOf(session),
		Body:  encPayload(kind, c, session),
	})
}

// Register starts this node's registration in cluster c for the session.
// The node must be a tree node of c. Callbacks.Registered fires when done.
func (m *Module) Register(n *async.Node, c cover.ClusterID, session int) {
	st := m.state(n, c, session)
	if st.local != idle {
		panic(fmt.Sprintf("reg: node %d double-registers in cluster %d session %d", n.ID(), c, session))
	}
	st.local = registering
	if st.finished {
		st.local = registered
		m.cb.Registered(n, c, session)
		return
	}
	m.invokeRUp(n, c, session, st)
}

// invokeRUp sends (or relies on an already in-flight) R invocation to the
// parent, marking the parent edge dirty.
func (m *Module) invokeRUp(n *async.Node, c cover.ClusterID, session int, st *state) {
	if st.pending {
		return // an R(me) is already traveling; its completion serves all
	}
	st.pending = true
	st.upDirty = true
	m.send(n, m.parent(n, c), kindRegUp, c, session)
}

// Deregister ends this node's participation; Callbacks.GoAhead fires when
// the cluster's Go-Ahead arrives.
func (m *Module) Deregister(n *async.Node, c cover.ClusterID, session int) {
	st := m.state(n, c, session)
	if st.local != registered {
		panic(fmt.Sprintf("reg: node %d deregisters in cluster %d session %d without being registered", n.ID(), c, session))
	}
	st.local = deregistered
	m.runD(n, c, session, st)
}

// Recv implements async.Module.
func (m *Module) Recv(n *async.Node, from graph.NodeID, msg async.Msg) {
	c, session := decPayload(msg.Body)
	st := m.state(n, c, session)
	switch msg.Body.Kind {
	case kindRegUp:
		m.onRegUp(n, from, c, session, st)
	case kindRegDone:
		m.onRegDone(n, c, session, st)
	case kindDeregUp:
		m.onDeregUp(n, from, c, session, st)
	case kindGoAhead:
		m.runG(n, c, session, st)
	default:
		panic(fmt.Sprintf("reg: unknown kind %d", msg.Body.Kind))
	}
}

func (m *Module) onRegUp(n *async.Node, child graph.NodeID, c cover.ClusterID, session int, st *state) {
	st.childMark[child] = markDirty
	if st.finished {
		m.send(n, child, kindRegDone, c, session)
		return
	}
	st.invokers = append(st.invokers, child)
	m.invokeRUp(n, c, session, st)
}

func (m *Module) onRegDone(n *async.Node, c cover.ClusterID, session int, st *state) {
	st.finished = true
	st.pending = false
	for _, ch := range st.invokers {
		m.send(n, ch, kindRegDone, c, session)
	}
	st.invokers = st.invokers[:0]
	if st.local == registering {
		st.local = registered
		m.cb.Registered(n, c, session)
	}
}

func (m *Module) onDeregUp(n *async.Node, child graph.NodeID, c cover.ClusterID, session int, st *state) {
	if st.childMark[child] != markDirty {
		panic(fmt.Sprintf("reg: node %d got DeregUp on non-dirty edge from %d", n.ID(), child))
	}
	st.childMark[child] = markWaiting
	if m.isRoot(n, c) {
		m.maybeIssueGo(n, c, session, st)
		return
	}
	m.runD(n, c, session, st)
}

// runD is the deregistration wave step D(me).
func (m *Module) runD(n *async.Node, c cover.ClusterID, session int, st *state) {
	for _, mark := range st.childMark {
		if mark == markDirty {
			return
		}
	}
	if st.local == registering || st.local == registered {
		// The paper's fix: a node whose own registration is pending or
		// live keeps the path dirty; the wave stops here.
		return
	}
	if m.isRoot(n, c) {
		m.maybeIssueGo(n, c, session, st)
		return
	}
	if !st.upDirty {
		panic(fmt.Sprintf("reg: D at node %d with non-dirty parent edge", n.ID()))
	}
	st.upDirty = false
	st.finished = false
	m.send(n, m.parent(n, c), kindDeregUp, c, session)
}

// maybeIssueGo is the root's Go-Ahead trigger.
func (m *Module) maybeIssueGo(n *async.Node, c cover.ClusterID, session int, st *state) {
	for _, mark := range st.childMark {
		if mark == markDirty {
			return
		}
	}
	m.runG(n, c, session, st)
}

// runG is the Go-Ahead wave step G(me): free the local client if it is
// waiting, then forward through waiting child edges (consuming the marks).
func (m *Module) runG(n *async.Node, c cover.ClusterID, session int, st *state) {
	if st.local == deregistered {
		st.local = free
		m.cb.GoAhead(n, c, session)
	}
	var waiting []graph.NodeID
	for ch, mark := range st.childMark {
		if mark == markWaiting {
			waiting = append(waiting, ch)
		}
	}
	sort.Slice(waiting, func(i, j int) bool { return waiting[i] < waiting[j] })
	for _, ch := range waiting {
		st.childMark[ch] = markNone
		m.send(n, ch, kindGoAhead, c, session)
	}
}

// LocalDone reports whether this node's client in (c, session) has been
// freed (received its Go-Ahead). Tests use it for final-state checks.
func (m *Module) LocalDone(c cover.ClusterID, session int) bool {
	st := m.states[key{c: c, s: session}]
	return st != nil && st.local == free
}
