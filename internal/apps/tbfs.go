package apps

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/syncrun"
	"repro/internal/wire"
)

// TBFS is the event-driven synchronous τ-thresholded (multi-source) BFS of
// Definition 4.2 with built-in termination detection (the §4.6 Approach 2
// convergecast): joins stop at distance τ; nodes at exactly distance τ
// probe their neighbors for unreached ones; an echo wave carries
// "my subtree is complete" plus the frontier bit back to each source,
// which outputs TBFSSourceDone. Reached nodes output TBFSResult; nodes
// beyond τ output nothing here (the asynchronous wrapper's checking stage,
// §4.1.2, tells them that their distance exceeds τ).
type TBFS struct {
	// Sources are the BFS sources.
	Sources []graph.NodeID
	// Threshold is τ >= 1.
	Threshold int
	// OnSourceDone, if set, fires when this node is a source whose echo
	// completed (used by the asynchronous wrapper's checking stage).
	OnSourceDone func(frontier bool)

	dist     int
	parent   graph.NodeID
	src      graph.NodeID
	pending  int  // unanswered joins/probes
	children int  // accepted children yet to report
	frontier bool // some node beyond τ exists below/next to us
	reported bool
	isSource bool
	probed   map[graph.NodeID]bool // neighbors we sent joins/probes to
	out      sendQueue
}

// TBFSResult is the per-node output for reached nodes.
type TBFSResult struct {
	Dist   int
	Parent graph.NodeID
	Source graph.NodeID
}

// TBFSSourceDone is the additional source output carrying the Approach-2
// verdict: Frontier reports whether any node beyond the threshold exists
// adjacent to this source's BFS tree.
type TBFSSourceDone struct {
	Frontier bool
}

var _ syncrun.Handler = (*TBFS)(nil)

// Init implements syncrun.Handler.
func (h *TBFS) Init(n syncrun.API) {
	h.dist = -1
	h.parent = -1
	h.src = -1
	h.probed = make(map[graph.NodeID]bool)
	for _, s := range h.Sources {
		if n.ID() == s {
			h.isSource = true
			h.join(n, 0, -1, s)
		}
	}
	h.out.Flush(n)
}

// join adopts distance d and floods further (or probes at the threshold).
func (h *TBFS) join(n syncrun.API, d int, parent, src graph.NodeID) {
	h.dist = d
	h.parent = parent
	h.src = src
	n.OutputBody(encTBFSOut(TBFSResult{Dist: d, Parent: parent, Source: src}))
	if d < h.Threshold {
		for _, nb := range n.Neighbors() {
			if nb.Node == parent {
				continue
			}
			h.out.Send(nb.Node, wire.Body{Kind: kindTBFSJoin, A: int64(src)})
			h.probed[nb.Node] = true
			h.pending++
		}
	} else {
		for _, nb := range n.Neighbors() {
			if nb.Node == parent {
				continue
			}
			h.out.Send(nb.Node, wire.Tag(kindTBFSProbe))
			h.probed[nb.Node] = true
			h.pending++
		}
	}
}

// Pulse implements syncrun.Handler.
func (h *TBFS) Pulse(n syncrun.API, p int, recvd []syncrun.Incoming) {
	for _, in := range recvd {
		switch in.Body.Kind {
		case kindTBFSJoin:
			h.onJoin(n, in.From, graph.NodeID(in.Body.A), p)
		case kindTBFSAccept:
			h.pending--
			h.children++
		case kindTBFSReject:
			h.pending--
		case kindTBFSProbe:
			if h.dist >= 0 {
				if h.probed[in.From] {
					h.pending-- // crossing probe answers ours
				} else {
					h.out.Send(in.From, wire.Body{Kind: kindTBFSProbeReply, A: wire.FromBool(true)})
				}
			} else {
				h.out.Send(in.From, wire.Body{Kind: kindTBFSProbeReply, A: wire.FromBool(false)})
			}
		case kindTBFSProbeReply:
			h.pending--
			if !wire.ToBool(in.Body.A) {
				h.frontier = true
			}
		case kindTBFSEcho:
			h.children--
			if wire.ToBool(in.Body.A) {
				h.frontier = true
			}
		default:
			panic(fmt.Sprintf("apps: TBFS node %d got kind %d", n.ID(), in.Body.Kind))
		}
	}
	h.maybeEcho(n)
	h.out.Flush(n)
}

func (h *TBFS) onJoin(n syncrun.API, from graph.NodeID, src graph.NodeID, p int) {
	if h.dist >= 0 {
		// Already reached. A crossing join answers ours; otherwise reject.
		if h.probed[from] {
			h.pending--
		} else {
			h.out.Send(from, wire.Tag(kindTBFSReject))
		}
		return
	}
	h.join(n, p, from, src)
	h.out.Send(from, wire.Tag(kindTBFSAccept))
}

// maybeEcho reports completion up the BFS tree once all joins/probes are
// answered and all accepted children have echoed.
func (h *TBFS) maybeEcho(n syncrun.API) {
	if h.reported || h.dist < 0 || h.pending > 0 || h.children > 0 {
		return
	}
	h.reported = true
	if h.parent >= 0 {
		h.out.Send(h.parent, wire.Body{Kind: kindTBFSEcho, A: wire.FromBool(h.frontier)})
		return
	}
	// Source: the whole tree is done.
	if h.OnSourceDone != nil {
		h.OnSourceDone(h.frontier)
	}
	n.OutputBody(encTBFSSourceDone(TBFSSourceDone{Frontier: h.frontier}))
}

// Reached reports whether this node joined the BFS.
func (h *TBFS) Reached() bool { return h.dist >= 0 }

// Result returns the node's BFS result (valid only when Reached).
func (h *TBFS) Result() TBFSResult {
	return TBFSResult{Dist: h.dist, Parent: h.parent, Source: h.src}
}
