// Command synchronize runs a chosen synchronous algorithm under a chosen
// synchronizer and prints the measured overheads against the lockstep run.
//
// Usage:
//
//	synchronize -algo bfs    -sync main  -graph grid -rows 6 -cols 6
//	synchronize -algo leader -sync alpha -graph cycle -n 32
//	synchronize -algo mst    -sync main  -graph er -n 40 -m 120
package main

import (
	"flag"
	"fmt"
	"os"

	dsync "repro"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		algo = flag.String("algo", "bfs", "algorithm: bfs|flood|echo|leader|mst")
		sy   = flag.String("sync", "main", "synchronizer: main|alpha|beta|gamma")
		kind = flag.String("graph", "grid", "topology: path|cycle|grid|er|tree")
		n    = flag.Int("n", 36, "node count")
		m    = flag.Int("m", 0, "edge count (er)")
		rows = flag.Int("rows", 6, "grid rows")
		cols = flag.Int("cols", 6, "grid cols")
		seed = flag.Uint64("seed", 1, "delay adversary seed")
		mode = flag.String("mode", "auto", "lockstep execution mode: auto|single|multi")
	)
	flag.Parse()
	var execMode dsync.ExecutionMode
	switch *mode {
	case "auto":
		execMode = dsync.ModeAuto
	case "single":
		execMode = dsync.ModeSingle
	case "multi":
		execMode = dsync.ModeMulti
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q (want auto|single|multi)\n", *mode)
		return 2
	}
	g, err := buildGraph(*kind, *n, *m, *rows, *cols, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	mk, bound, err := buildAlgo(*algo, g)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	sres := dsync.RunSyncMode(g, execMode, mk)
	if bound == 0 {
		bound = sres.Rounds + 2
	}
	adv := dsync.RandomDelays(*seed)
	var ares dsync.AsyncResult
	switch *sy {
	case "main":
		ares = dsync.Synchronize(g, bound, adv, mk)
	case "alpha":
		ares = dsync.SynchronizeAlpha(g, bound, adv, mk)
	case "beta":
		ares = dsync.SynchronizeBeta(g, bound, adv, mk)
	case "gamma":
		ares = dsync.SynchronizeGamma(g, bound, adv, mk)
	default:
		fmt.Fprintf(os.Stderr, "unknown synchronizer %q\n", *sy)
		return 2
	}
	match := len(ares.Outputs) == len(sres.Outputs)
	for v, want := range sres.Outputs {
		if fmt.Sprint(ares.Outputs[v]) != fmt.Sprint(want) {
			match = false
		}
	}
	fmt.Printf("algo=%s sync=%s graph=%s n=%d m=%d D=%d\n", *algo, *sy, *kind, g.N(), g.M(), g.Diameter())
	fmt.Printf("synchronous:  T(A)=%d rounds, M(A)=%d messages\n", sres.T, sres.M)
	fmt.Printf("asynchronous: time=%.1f, msgs=%d (+%d acks)\n", ares.Time, ares.Msgs, ares.Acks)
	fmt.Printf("overheads:    time %.1fx, messages %.1fx, outputs-match=%v\n",
		ares.Time/float64(max(sres.T, 1)), float64(ares.Msgs)/float64(max64(sres.M, 1)), match)
	if !match {
		return 1
	}
	return 0
}

func buildAlgo(algo string, g *dsync.Graph) (func(dsync.NodeID) dsync.Algorithm, int, error) {
	switch algo {
	case "bfs":
		return dsync.NewBFS([]dsync.NodeID{0}), 0, nil
	case "flood":
		return dsync.NewFlood(0), 0, nil
	case "echo":
		return dsync.NewEcho(0), 0, nil
	case "leader":
		mk, bound := dsync.NewLeaderElection(g)
		return mk, bound, nil
	case "mst":
		wg := dsync.WithRandomWeights(g, 7)
		mk, bound := dsync.NewMST(wg)
		// MST runs on the weighted copy; topology is identical.
		return mk, bound, nil
	default:
		return nil, 0, fmt.Errorf("unknown algorithm %q", algo)
	}
}

func buildGraph(kind string, n, m, rows, cols int, seed uint64) (*dsync.Graph, error) {
	switch kind {
	case "path":
		return dsync.Path(n), nil
	case "cycle":
		return dsync.Cycle(n), nil
	case "grid":
		return dsync.Grid(rows, cols), nil
	case "tree":
		return dsync.CompleteBinaryTree(n), nil
	case "er":
		if m == 0 {
			m = 3 * n
		}
		return dsync.RandomConnected(n, m, seed), nil
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
