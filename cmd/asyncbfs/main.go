// Command asyncbfs runs the complete asynchronous BFS (Theorems 4.23/4.24)
// on a chosen topology and prints per-node distances plus the run's
// measured complexity.
//
// Usage:
//
//	asyncbfs -graph grid -rows 6 -cols 8 -sources 0,47 -seed 3
//	asyncbfs -graph cycle -n 64
//	asyncbfs -graph er -n 80 -m 240
//	asyncbfs -graph grid3d:215x215x215 -quiet   # spec form; ~10M nodes
//
// A -graph value containing ':' is parsed as a graph.FromSpec string
// (grid3d:XxYxZ, pa:n=…,m=…,seed=…, ring:k=…,c=…, and the classic
// families), which reaches the implicit CSR generators sized for
// ten-million-node runs. The header's exact-diameter column is computed
// only for graphs small enough for its O(n·m) sweep; huge graphs print
// D=- instead of stalling before the run starts.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	dsync "repro"
	"repro/internal/apps"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		kind    = flag.String("graph", "grid", "topology: path|cycle|grid|er|tree, or a spec like grid3d:100x100x100")
		n       = flag.Int("n", 36, "node count (path/cycle/er/tree)")
		m       = flag.Int("m", 0, "edge count (er; default 3n)")
		rows    = flag.Int("rows", 6, "grid rows")
		cols    = flag.Int("cols", 6, "grid cols")
		seed    = flag.Uint64("seed", 1, "delay adversary seed")
		sources = flag.String("sources", "0", "comma-separated source IDs")
		mode    = flag.String("mode", "auto", "async engine execution mode: auto|single|multi|spec")
		quiet   = flag.Bool("quiet", false, "suppress per-node output")
	)
	flag.Parse()
	var execMode dsync.AsyncExecutionMode
	switch *mode {
	case "auto":
		execMode = dsync.AsyncModeAuto
	case "single":
		execMode = dsync.AsyncModeSingle
	case "multi":
		execMode = dsync.AsyncModeMulti
	case "spec":
		// The BFS synchronizer stack does not implement StateCloner yet, so
		// this currently falls back to the bounded-lag executor; the flag
		// exists so the fallback path is reachable from the CLI.
		execMode = dsync.AsyncModeSpec
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q (want auto|single|multi|spec)\n", *mode)
		return 2
	}
	g, err := buildGraph(*kind, *n, *m, *rows, *cols, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	srcs, err := parseSources(*sources, g.N())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	res := dsync.AsyncBFSMode(g, srcs, dsync.RandomDelays(*seed), execMode)
	// The exact diameter is an O(n·m) all-pairs sweep — a header nicety on
	// small graphs, hours of preamble on ten million nodes. Skip it there.
	diam := "-"
	if g.N() <= maxDiameterNodes {
		diam = strconv.Itoa(g.Diameter())
	}
	fmt.Printf("graph=%s n=%d m=%d D=%s sources=%v\n", *kind, g.N(), g.M(), diam, srcs)
	fmt.Printf("iterations=%d final-threshold=%d time=%.1f msgs=%d\n",
		res.Iterations, res.FinalThreshold, res.Time, res.Msgs)
	if *quiet {
		return 0
	}
	for v := 0; v < g.N(); v++ {
		switch o := res.Outputs[dsync.NodeID(v)].(type) {
		case apps.TBFSResult:
			fmt.Printf("node %3d: dist=%d parent=%d source=%d\n", v, o.Dist, o.Parent, o.Source)
		case apps.TBFSSourceDone:
			fmt.Printf("node %3d: source (dist=0)\n", v)
		default:
			fmt.Printf("node %3d: %v\n", v, o)
		}
	}
	return 0
}

// maxDiameterNodes bounds the graphs whose exact diameter the header
// reports; above it the O(n·m) sweep would dwarf the BFS being measured.
const maxDiameterNodes = 1 << 14

func buildGraph(kind string, n, m, rows, cols int, seed uint64) (*dsync.Graph, error) {
	if strings.Contains(kind, ":") {
		return dsync.GraphFromSpec(kind)
	}
	switch kind {
	case "path":
		return dsync.Path(n), nil
	case "cycle":
		return dsync.Cycle(n), nil
	case "grid":
		return dsync.Grid(rows, cols), nil
	case "tree":
		return dsync.CompleteBinaryTree(n), nil
	case "er":
		if m == 0 {
			m = 3 * n
		}
		return dsync.RandomConnected(n, m, seed), nil
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}

func parseSources(s string, n int) ([]dsync.NodeID, error) {
	var out []dsync.NodeID
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 0 || v >= n {
			return nil, fmt.Errorf("bad source %q (need 0..%d)", part, n-1)
		}
		out = append(out, dsync.NodeID(v))
	}
	return out, nil
}
