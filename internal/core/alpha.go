package core

import (
	"fmt"
	"sort"

	"repro/internal/async"
	"repro/internal/graph"
	"repro/internal/syncrun"
)

// AlphaSynchronizer is Awerbuch's α synchronizer (Appendix A): every node
// generates every pulse 1..B. A node is safe for pulse p once all its
// pulse-p messages are acknowledged (the simulator's link acks already
// provide this), after which it tells every neighbor SAFE(p); a node
// generates pulse p+1 once it holds SAFE(p) from all neighbors.
//
// Time overhead is O(1) per pulse — optimal — but the safety traffic costs
// Θ(m) messages per pulse, i.e. M(A') = M(A) + Θ(T(A)·m): the blow-up
// experiment E8 measures exactly this term.
type alphaNode struct {
	algo  syncrun.Handler
	bound int

	pulse     int
	recvd     map[int][]syncrun.Incoming
	safeFrom  map[int]map[graph.NodeID]bool
	sendAcked map[int]int // pulse -> outstanding acks for algorithm sends
	selfSafe  map[int]bool
	sentSafe  map[int]bool
}

const protoAlphaSafe async.Proto = 3

type alphaSafe struct{ Pulse int }

var _ async.Handler = (*alphaNode)(nil)

// NewAlpha builds the α-synchronized handler for one node.
func NewAlpha(algo syncrun.Handler, bound int) async.Handler {
	return &alphaNode{
		algo:      algo,
		bound:     bound,
		recvd:     make(map[int][]syncrun.Incoming),
		safeFrom:  make(map[int]map[graph.NodeID]bool),
		sendAcked: make(map[int]int),
		selfSafe:  make(map[int]bool),
		sentSafe:  make(map[int]bool),
	}
}

// Init implements async.Handler: run pulse 0.
func (a *alphaNode) Init(n *async.Node) {
	a.runPulse(n, 0)
}

func (a *alphaNode) runPulse(n *async.Node, p int) {
	a.pulse = p
	api := &alphaAPI{n: n, a: a, pulse: p}
	if p == 0 {
		a.algo.Init(api)
	} else {
		batch := a.recvd[p-1]
		sort.Slice(batch, func(i, j int) bool { return batch[i].From < batch[j].From })
		a.algo.Pulse(api, p, batch)
	}
	a.maybeSafe(n, p)
}

// maybeSafe declares this node safe for pulse p once its pulse-p sends are
// all acknowledged, then floods SAFE(p) to neighbors.
func (a *alphaNode) maybeSafe(n *async.Node, p int) {
	if a.sentSafe[p] || a.sendAcked[p] > 0 {
		return
	}
	a.sentSafe[p] = true
	a.selfSafe[p] = true
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, async.Msg{Proto: protoAlphaSafe, Stage: p, Body: alphaSafe{Pulse: p}})
	}
	a.maybeAdvance(n, p)
}

func (a *alphaNode) maybeAdvance(n *async.Node, p int) {
	if a.pulse != p || p+1 > a.bound {
		return
	}
	if !a.selfSafe[p] || len(a.safeFrom[p]) < n.Degree() {
		return
	}
	a.runPulse(n, p+1)
}

// Recv implements async.Handler.
func (a *alphaNode) Recv(n *async.Node, from graph.NodeID, m async.Msg) {
	switch body := m.Body.(type) {
	case algoMsg:
		a.recvd[body.Pulse] = append(a.recvd[body.Pulse], syncrun.Incoming{From: from, Body: body.Body})
	case alphaSafe:
		set := a.safeFrom[body.Pulse]
		if set == nil {
			set = make(map[graph.NodeID]bool)
			a.safeFrom[body.Pulse] = set
		}
		set[from] = true
		a.maybeAdvance(n, body.Pulse)
	default:
		panic(fmt.Sprintf("core: alpha node %d got payload %T", n.ID(), m.Body))
	}
}

// Ack implements async.Handler: algorithm-message acks gate safety.
func (a *alphaNode) Ack(n *async.Node, _ graph.NodeID, m async.Msg) {
	body, ok := m.Body.(algoMsg)
	if !ok {
		return
	}
	a.sendAcked[body.Pulse]--
	a.maybeSafe(n, body.Pulse)
}

// alphaAPI is the synchronous API bound to one α pulse.
type alphaAPI struct {
	n      *async.Node
	a      *alphaNode
	pulse  int
	sentTo map[graph.NodeID]bool
}

var _ syncrun.API = (*alphaAPI)(nil)

func (x *alphaAPI) ID() graph.NodeID            { return x.n.ID() }
func (x *alphaAPI) Neighbors() []graph.Neighbor { return x.n.Neighbors() }
func (x *alphaAPI) Degree() int                 { return x.n.Degree() }
func (x *alphaAPI) Output(v any)                { x.n.Output(v) }
func (x *alphaAPI) HasOutput() bool             { return x.n.HasOutput() }

func (x *alphaAPI) Send(to graph.NodeID, body any) {
	if x.sentTo == nil {
		x.sentTo = make(map[graph.NodeID]bool)
	}
	if x.sentTo[to] {
		panic(fmt.Sprintf("core: alpha node %d sent twice to %d", x.n.ID(), to))
	}
	x.sentTo[to] = true
	x.a.sendAcked[x.pulse]++
	x.n.Send(to, async.Msg{Proto: ProtoAlgo, Stage: x.pulse, Body: algoMsg{Pulse: x.pulse, Body: body}})
}

// SynchronizeAlpha runs the algorithm under the α synchronizer for exactly
// `bound` pulses.
func SynchronizeAlpha(g *graph.Graph, bound int, adv async.Adversary,
	mk func(id graph.NodeID) syncrun.Handler) async.Result {
	if adv == nil {
		adv = async.SeededRandom{Seed: 1}
	}
	sim := async.New(g, adv, func(id graph.NodeID) async.Handler {
		return NewAlpha(mk(id), bound)
	})
	return sim.Run()
}
