package bench

import (
	"path/filepath"
	"reflect"
	"time"

	"repro/internal/async"
	"repro/internal/graph"
	"repro/internal/shard"
	"repro/internal/wire"
)

// e18Flood is E18's workload: a single codec'd wave, so the engine state
// the snapshot serializes is dominated by the engine planes (queue, links,
// outputs, counters) rather than protocol payloads — the overhead being
// priced is the state plane's, not the workload's.
type e18Flood struct {
	async.NopAck
	root bool
	seen bool
}

func (h *e18Flood) Init(n *async.Node) {
	if !h.root {
		return
	}
	h.seen = true
	n.Output(int64(0))
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, async.Msg{Proto: 1, Body: wire.Tag(1)})
	}
}

func (h *e18Flood) Recv(n *async.Node, _ graph.NodeID, m async.Msg) {
	if h.seen {
		return
	}
	h.seen = true
	n.Output(int64(0))
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, m)
	}
}

func (h *e18Flood) SaveState(e *wire.Enc) { e.Bool(h.seen) }
func (h *e18Flood) LoadState(d *wire.Dec) { h.seen = d.Bool() }

// e18SnapshotOverheads prices the state plane: the same flood runs
// uninterrupted (base) and checkpointed at three interval fractions of its
// event count, reporting frame size, serialization time per checkpoint,
// restore time, and the checkpointed run's wall-clock ratio. det asserts
// the tentpole invariant on every row — the run restored from the last
// checkpoint finishes byte-identical to the uninterrupted run, so the
// overhead columns price observation, never perturbation. Expected shape:
// frameMB tracks engine state (roughly linear in links), save cost is
// linear in frame size, and timeX decays toward 1 as the interval grows.
//
// Options.Graph appends one more case — how the committed BENCH_9.json
// gets its million-node row — and Options.SnapshotEvery appends an extra
// interval to every case. Options.Resume appends a final row that resumes
// a real checkpoint file through the sharded coordinator (in-process
// workers), pricing a full restore-to-completion. Like E13/E14/E17 this
// runs as one serial job: wall-clock columns would distort under
// concurrent trials.
func e18SnapshotOverheads(c *Ctx) {
	t := c.table("checkpoint cost vs interval; det requires restore-and-finish byte-identical to the uninterrupted run")
	t.head("graph", "n", "interval", "snaps", "frameMB", "save(ms/snap)", "restore(ms)", "run(ms)", "base(ms)", "timeX", "det")
	specs := []string{"grid:40x40", "er:n=500,m=1500,seed=3"}
	if c.gspec != "" {
		specs = append(specs, c.gspec)
	}
	mk := func(id graph.NodeID) async.Handler { return &e18Flood{root: id == 0} }
	t.emit(c.jobs(1, func(int) []row {
		var rows []row
		for _, spec := range specs {
			g := c.custom
			if spec != c.gspec || g == nil {
				g = mustSpec(spec)
			}
			adv := c.adv(11)

			t0 := time.Now()
			base := async.New(g, adv, mk)
			for !base.RunSteps(1 << 30) {
			}
			baseRes := base.FinishResult()
			baseMs := float64(time.Since(t0)) / 1e6
			// Event-count proxy: every message costs a delivery and an ack
			// event; it only has to land intervals in the right decade.
			est := baseRes.Msgs + baseRes.Acks

			intervals := []uint64{est/8 + 1, est/2 + 1, est + 1}
			if c.snapEvery > 0 {
				intervals = append(intervals, c.snapEvery)
			}
			for _, iv := range intervals {
				var (
					snaps  uint64
					saveNs int64
					last   []byte
				)
				t0 = time.Now()
				sim := async.New(g, adv, mk)
				for {
					done := sim.RunSteps(iv)
					s0 := time.Now()
					snap, err := sim.Snapshot()
					saveNs += int64(time.Since(s0))
					if err != nil {
						panic("bench: E18 snapshot failed: " + err.Error())
					}
					snaps++
					last = snap
					if done {
						break
					}
				}
				res := sim.FinishResult()
				runMs := float64(time.Since(t0)) / 1e6

				r0 := time.Now()
				cont := async.New(g, adv, mk)
				if err := cont.Restore(last); err != nil {
					panic("bench: E18 restore failed: " + err.Error())
				}
				restoreMs := float64(time.Since(r0)) / 1e6
				det := reflect.DeepEqual(res, baseRes) &&
					reflect.DeepEqual(cont.Run(), baseRes)

				frameMB := float64(len(last)) / (1 << 20)
				savePer := float64(saveNs) / 1e6 / float64(snaps)
				timeX := runMs / baseMs
				rows = append(rows, row{
					cols: []any{spec, g.N(), iv, snaps, frameMB, savePer, restoreMs, runMs, baseMs, timeX, det},
					rec: Rec{"graph": spec, "n": g.N(), "interval": iv, "snaps": snaps,
						"frameBytes": len(last), "saveMsPerSnap": savePer, "restoreMs": restoreMs,
						"runMs": runMs, "baseMs": baseMs, "timeX": timeX, "det": det},
				})
			}
		}
		if c.resume != "" {
			t0 := time.Now()
			rep, err := shard.Run(shard.Config{ResumeFrom: c.resume, Launch: shard.LaunchInProc})
			wallMs := float64(time.Since(t0)) / 1e6
			name := "resume:" + filepath.Base(c.resume)
			if err != nil {
				rows = append(rows, row{
					cols: []any{name, "-", "-", "-", "-", "-", "-", wallMs, "-", "-", false},
					rec:  Rec{"graph": name, "error": err.Error(), "det": false},
				})
			} else {
				rows = append(rows, row{
					cols: []any{name, len(rep.Result.Outputs), "-", "-", "-", "-", wallMs, wallMs, "-", "-", true},
					rec: Rec{"graph": name, "outputs": len(rep.Result.Outputs),
						"shards": rep.Stats.Shards, "windows": rep.Stats.Windows,
						"restoreMs": wallMs, "det": true},
				})
			}
		}
		return rows
	}))
}
