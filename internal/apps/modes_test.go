package apps

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/syncrun"
)

// TestModesByteIdentical is the cross-mode determinism matrix: for every
// algorithm × generator pair, the lockstep runner must produce a Result
// (outputs, T, M, Rounds, trace) byte-identical between Single mode and
// Multi mode with the worker pool forced on (threshold 1, several
// workers). This is the contract that makes the parallel engine safe to
// select automatically.
func TestModesByteIdentical(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"path40", graph.Path(40)},
		{"cycle33", graph.Cycle(33)},
		{"grid12x12", graph.Grid(12, 12)},
		{"star64", graph.Star(64)},
		{"tree127", graph.CompleteBinaryTree(127)},
		{"complete40", graph.Complete(40)},
		{"random150", graph.RandomConnected(150, 400, 5)},
		{"dumbbell", graph.Dumbbell(12, 9)},
		{"lollipop", graph.Lollipop(10, 14)},
	}
	algos := []struct {
		name string
		mk   func(g *graph.Graph) func(graph.NodeID) syncrun.Handler
	}{
		{"flood", func(g *graph.Graph) func(graph.NodeID) syncrun.Handler {
			return func(graph.NodeID) syncrun.Handler { return &Flood{Source: 0} }
		}},
		{"echo", func(g *graph.Graph) func(graph.NodeID) syncrun.Handler {
			return func(graph.NodeID) syncrun.Handler { return &Echo{Root: 0} }
		}},
		{"bfs", func(g *graph.Graph) func(graph.NodeID) syncrun.Handler {
			return func(graph.NodeID) syncrun.Handler { return &BFS{Sources: []graph.NodeID{0}} }
		}},
		{"bfs3src", func(g *graph.Graph) func(graph.NodeID) syncrun.Handler {
			srcs := []graph.NodeID{0, graph.NodeID(g.N() / 2), graph.NodeID(g.N() - 1)}
			return func(graph.NodeID) syncrun.Handler { return &BFS{Sources: srcs} }
		}},
		{"tbfs", func(g *graph.Graph) func(graph.NodeID) syncrun.Handler {
			return func(graph.NodeID) syncrun.Handler {
				return &TBFS{Sources: []graph.NodeID{0}, Threshold: 4}
			}
		}},
		{"leader", func(g *graph.Graph) func(graph.NodeID) syncrun.Handler {
			mk, _ := mkLeader(g)
			return mk
		}},
		{"mst", func(g *graph.Graph) func(graph.NodeID) syncrun.Handler {
			wg := graph.WithRandomWeights(g, 11)
			return mkMST(wg)
		}},
	}
	for _, tg := range graphs {
		for _, ta := range algos {
			t.Run(tg.name+"/"+ta.name, func(t *testing.T) {
				g := tg.g
				if ta.name == "mst" {
					// MST needs distinct weights; run on the weighted copy.
					g = graph.WithRandomWeights(tg.g, 11)
				}
				mk := ta.mk(g)
				single := syncrun.New(g, mk).WithMode(syncrun.ModeSingle).KeepTrace().Run()
				multi := syncrun.New(g, mk).
					WithMode(syncrun.ModeMulti).WithWorkers(4).WithMinParallel(1).
					KeepTrace().Run()
				compareResults(t, single, multi)
			})
		}
	}
}

func compareResults(t *testing.T, single, multi syncrun.Result) {
	t.Helper()
	if single.T != multi.T || single.Rounds != multi.Rounds || single.M != multi.M {
		t.Fatalf("scalars differ: single{T:%d R:%d M:%d} multi{T:%d R:%d M:%d}",
			single.T, single.Rounds, single.M, multi.T, multi.Rounds, multi.M)
	}
	if !reflect.DeepEqual(single.Outputs, multi.Outputs) {
		t.Fatal("outputs differ between Single and Multi modes")
	}
	if len(single.Trace) != len(multi.Trace) {
		t.Fatalf("trace length differs: %d vs %d", len(single.Trace), len(multi.Trace))
	}
	for i := range single.Trace {
		if !reflect.DeepEqual(single.Trace[i], multi.Trace[i]) {
			t.Fatalf("trace[%d] differs: %+v vs %+v", i, single.Trace[i], multi.Trace[i])
		}
	}
}

// TestModeAutoMatchesSingle pins ModeAuto (whatever it selects) to the
// Single-mode result on a graph past the auto-multi threshold.
func TestModeAutoMatchesSingle(t *testing.T) {
	g := graph.RandomConnected(3000, 9000, 3)
	mk := func(graph.NodeID) syncrun.Handler { return &BFS{Sources: []graph.NodeID{0}} }
	single := syncrun.New(g, mk).WithMode(syncrun.ModeSingle).KeepTrace().Run()
	auto := syncrun.New(g, mk).KeepTrace().Run()
	compareResults(t, single, auto)
}
