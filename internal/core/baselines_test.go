package core

import (
	"testing"

	"repro/internal/async"
	"repro/internal/graph"
	"repro/internal/syncrun"
	"repro/internal/wire"
)

// runAllSynchronizers executes the same algorithm under α, β, γ, and the
// main synchronizer, and checks every one reproduces the lockstep outputs.
func runAllSynchronizers(t *testing.T, g *graph.Graph, bound int, adv async.Adversary,
	mk func(id graph.NodeID) syncrun.Handler) map[string]async.Result {
	t.Helper()
	want := syncrun.New(g, mk).Run()
	results := map[string]async.Result{
		"alpha": SynchronizeAlpha(g, bound, adv, mk),
		"beta":  SynchronizeBeta(g, bound, adv, mk),
		"gamma": SynchronizeGamma(g, bound, adv, mk),
		"main":  Synchronize(Config{Graph: g, Bound: bound, Adversary: adv}, mk),
	}
	for name, res := range results {
		if len(res.Outputs) != len(want.Outputs) {
			t.Fatalf("%s: %d outputs, want %d", name, len(res.Outputs), len(want.Outputs))
		}
		for v, w := range want.Outputs {
			if res.Outputs[v] != w {
				t.Fatalf("%s: node %d output %v, want %v", name, v, res.Outputs[v], w)
			}
		}
	}
	return results
}

func TestAllSynchronizersBFS(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"path14", graph.Path(14)},
		{"grid4x5", graph.Grid(4, 5)},
		{"er25", graph.RandomConnected(25, 60, 3)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bound := tc.g.Diameter() + 2
			mk := func(graph.NodeID) syncrun.Handler { return &bfsAlgo{src: 0} }
			runAllSynchronizers(t, tc.g, bound, async.SeededRandom{Seed: 6}, mk)
		})
	}
}

func TestAllSynchronizersEcho(t *testing.T) {
	g := graph.Grid(3, 5)
	bound := 2*g.Diameter() + 4
	mk := func(graph.NodeID) syncrun.Handler { return &echoAlgo{root: 0} }
	runAllSynchronizers(t, g, bound, async.SeededRandom{Seed: 9}, mk)
}

func TestAllSynchronizersAdversaries(t *testing.T) {
	g := graph.Cycle(12)
	bound := g.Diameter() + 2
	mk := func(graph.NodeID) syncrun.Handler { return &bfsAlgo{src: 0} }
	for _, adv := range async.StandardAdversaries(g.N(), 21) {
		t.Run(adv.Name(), func(t *testing.T) {
			runAllSynchronizers(t, g, bound, adv, mk)
		})
	}
}

// pingAlgo bounces a token between nodes 0 and 1 for `rounds` pulses:
// T(A) = M(A) = rounds, independent of m. The worst case for α's
// M(A) + Θ(T·m) message complexity (Appendix A).
type pingAlgo struct{ rounds int }

func (h *pingAlgo) Init(n syncrun.API) {
	if n.ID() == 0 {
		n.Send(1, wire.Body{Kind: tkPing, A: 0})
	}
}

func (h *pingAlgo) Pulse(n syncrun.API, p int, recvd []syncrun.Incoming) {
	if len(recvd) == 0 {
		return
	}
	k := int(recvd[0].Body.A)
	if k+1 >= h.rounds {
		n.Output(k)
		return
	}
	n.Send(recvd[0].From, wire.Body{Kind: tkPing, A: int64(k + 1)})
}

// The α message blow-up (E8's claim): on a high-T(A), low-M(A) algorithm
// over a low-diameter graph, α pays Θ(T·m) safety messages while the main
// synchronizer pays only polylog per pulse actually used. α keeps its O(1)
// time overhead — the tradeoff the paper's Table-free Appendix A describes.
func TestAlphaBlowupShape(t *testing.T) {
	g := graph.RandomConnected(128, 6*128, 5)
	rounds := 128
	mk := func(graph.NodeID) syncrun.Handler { return &pingAlgo{rounds: rounds} }
	alpha := SynchronizeAlpha(g, rounds+1, async.Fixed{D: 1}, mk)
	main := Synchronize(Config{Graph: g, Bound: rounds + 1, Adversary: async.Fixed{D: 1}}, mk)
	if alpha.Msgs < uint64(rounds)*uint64(g.M())/2 {
		t.Fatalf("alpha used %d msgs; expected Θ(T·m) ≈ %d", alpha.Msgs, rounds*g.M())
	}
	t.Logf("ping on ER(128): alpha=%d main=%d (ratio %.1fx)", alpha.Msgs, main.Msgs,
		float64(alpha.Msgs)/float64(main.Msgs))
	if main.Msgs*2 >= alpha.Msgs {
		t.Fatalf("main synchronizer (%d msgs) should beat alpha (%d) by >2x here",
			main.Msgs, alpha.Msgs)
	}
	if alpha.Time >= main.Time {
		t.Fatalf("alpha time %f should beat main %f (O(1) vs polylog per pulse)",
			alpha.Time, main.Time)
	}
}

// β pays Θ(D) time per pulse; the main synchronizer must scale better on
// long paths for algorithms with short dependency chains per pulse.
func TestBetaTimeShape(t *testing.T) {
	g := graph.Path(40)
	bound := g.Diameter() + 2
	mk := func(graph.NodeID) syncrun.Handler { return &bfsAlgo{src: 0} }
	beta := SynchronizeBeta(g, bound, async.Fixed{D: 1}, mk)
	// T(A)=39 pulses, each costing ~2D time: ~2*39*39.
	if beta.Time < float64(g.Diameter())*float64(g.Diameter()) {
		t.Fatalf("beta time %f suspiciously small; per-pulse Θ(D) missing", beta.Time)
	}
}

func TestGammaPartitionShape(t *testing.T) {
	g := graph.Grid(6, 6)
	part := NewGammaPartition(g)
	if part.ClusterCount() < 1 {
		t.Fatal("no clusters")
	}
	if part.DesignatedEdgeCount() < part.ClusterCount()-1 {
		t.Fatalf("designated edges %d cannot connect %d clusters",
			part.DesignatedEdgeCount(), part.ClusterCount())
	}
}
