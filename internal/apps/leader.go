package apps

import (
	"fmt"

	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/syncrun"
)

// Leader is the deterministic leader-election algorithm of Corollary 1.3:
// epochs i = 0, 1, 2, …, where epoch i convergecasts the minimum surviving
// candidate ID inside every cluster of the sparse 2^i-cover and broadcasts
// it back; a candidate that is not the minimum in one of its clusters
// ceases to be a candidate. As soon as some cluster spans the whole graph
// (guaranteed at level ⌈log₂ D⌉ by the covering property), its minimum —
// the global minimum ID, which never stops being a candidate — is
// announced as the leader, and every node outputs it.
//
// The paper builds each epoch's cover inside the algorithm with the
// synchronous construction of [RG20]; here the layered covers are given as
// static input (the same substitution DESIGN.md records for the
// synchronizer) and the algorithm pays the real convergecast/broadcast
// message traffic over the cluster trees.
//
// T(A) = Õ(D), M(A) = Õ(m).
type Leader struct {
	// Covers supplies the layered sparse covers; Level(i) drives epoch i.
	Covers *cover.Layered
	// SpansAll[level][cluster] marks clusters containing every node
	// (precompute with LeaderSpansAll).
	SpansAll [][]bool

	epoch     int
	candidate bool
	done      bool
	st        map[lcKey]*leadState
	out       sendQueue
}

type lcKey struct {
	level   int
	cluster cover.ClusterID
}

type leadState struct {
	reports   int
	minSeen   graph.NodeID
	sent      bool
	began     bool
	verdictIn bool
}

type leadUp struct {
	Level   int
	Cluster cover.ClusterID
	Min     graph.NodeID
}

type leadDown struct {
	Level    int
	Cluster  cover.ClusterID
	Min      graph.NodeID
	IsLeader bool
}

// noCandidate is the identity of the min-aggregation.
const noCandidate = graph.NodeID(1 << 30)

var _ syncrun.Handler = (*Leader)(nil)

// LeaderSpansAll precomputes the spanning-cluster table for a graph.
func LeaderSpansAll(g *graph.Graph, l *cover.Layered) [][]bool {
	out := make([][]bool, len(l.Levels))
	for i, cov := range l.Levels {
		out[i] = make([]bool, len(cov.Clusters))
		for j, cl := range cov.Clusters {
			out[i][j] = len(cl.Members) == g.N()
		}
	}
	return out
}

// Init implements syncrun.Handler.
func (h *Leader) Init(n syncrun.API) {
	h.candidate = true
	h.st = make(map[lcKey]*leadState)
	h.enterEpoch(n, 0)
	h.out.Flush(n)
}

// Pulse implements syncrun.Handler.
func (h *Leader) Pulse(n syncrun.API, p int, recvd []syncrun.Incoming) {
	for _, in := range recvd {
		switch in.Body.Kind {
		case kindLeadUp:
			m := decLeadUp(in.Body)
			st := h.state(m.Level, m.Cluster)
			st.reports++
			if m.Min < st.minSeen {
				st.minSeen = m.Min
			}
			h.maybeReport(n, m.Level, m.Cluster, st)
		case kindLeadDown:
			h.deliverVerdict(n, decLeadDown(in.Body))
		default:
			panic(fmt.Sprintf("apps: leader node %d got kind %d", n.ID(), in.Body.Kind))
		}
	}
	h.out.Flush(n)
}

func (h *Leader) state(level int, c cover.ClusterID) *leadState {
	k := lcKey{level: level, cluster: c}
	st := h.st[k]
	if st == nil {
		st = &leadState{minSeen: noCandidate}
		h.st[k] = st
	}
	return st
}

// enterEpoch begins epoch i at this node: every cluster tree this node
// participates in at level i becomes live here, and leaves report.
func (h *Leader) enterEpoch(n syncrun.API, i int) {
	if h.done {
		return
	}
	if i > h.Covers.MaxLevel() {
		panic(fmt.Sprintf("apps: leader election ran out of cover levels at node %d", n.ID()))
	}
	h.epoch = i
	cov := h.Covers.Level(i)
	for _, cid := range cov.TreeOf(n.ID()) {
		st := h.state(i, cid)
		st.began = true
		if h.candidate && cov.Cluster(cid).Has(n.ID()) && n.ID() < st.minSeen {
			st.minSeen = n.ID()
		}
		h.maybeReport(n, i, cid, st)
	}
}

// maybeReport sends the subtree minimum up once all tree children have
// reported (leaves report immediately on epoch entry).
func (h *Leader) maybeReport(n syncrun.API, level int, cid cover.ClusterID, st *leadState) {
	if st.sent || !st.began {
		return
	}
	cl := h.Covers.Level(level).Cluster(cid)
	if st.reports < len(cl.ChildrenOf(n.ID())) {
		return
	}
	st.sent = true
	if cl.Root == n.ID() {
		h.deliverVerdict(n, leadDown{
			Level: level, Cluster: cid, Min: st.minSeen,
			IsLeader: h.SpansAll[level][cid],
		})
		return
	}
	par, _ := cl.ParentOf(n.ID())
	h.out.Send(par, encLeadUp(leadUp{Level: level, Cluster: cid, Min: st.minSeen}))
}

// deliverVerdict handles the broadcast at one tree node: forward to tree
// children, consume locally, and advance the epoch when every member
// cluster of the current level has reported its verdict.
func (h *Leader) deliverVerdict(n syncrun.API, v leadDown) {
	cl := h.Covers.Level(v.Level).Cluster(v.Cluster)
	for _, ch := range cl.ChildrenOf(n.ID()) {
		h.out.Send(ch, encLeadDown(v))
	}
	if !cl.Has(n.ID()) {
		return // pure relay
	}
	h.state(v.Level, v.Cluster).verdictIn = true
	if v.IsLeader && !h.done {
		h.done = true
		n.Output(v.Min)
	}
	if v.Min != n.ID() {
		h.candidate = false
	}
	if h.done || v.Level != h.epoch {
		return
	}
	cov := h.Covers.Level(v.Level)
	for _, cid := range cov.MemberOf(n.ID()) {
		if !h.state(v.Level, cid).verdictIn {
			return
		}
	}
	h.enterEpoch(n, v.Level+1)
}
