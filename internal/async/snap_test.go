package async

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/wire"
)

// snapRelax is the round-trip test workload: multi-source BFS by monotone
// relaxation. It implements both wire.StateCodec (snapshot/restore) and
// StateCloner (ModeSpec), so a snapshot taken mid-run can be resumed under
// every execution mode. root is config — the handler constructor rebuilds
// it — so only the mutable pair (have, dist) serializes.
type snapRelax struct {
	NopAck
	root bool
	have bool
	dist int64
}

func (h *snapRelax) Init(n *Node) {
	if !h.root {
		return
	}
	h.have, h.dist = true, 0
	n.Output(int64(0))
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, Msg{Proto: 1, Body: wire.Body{Kind: 1, A: 0}})
	}
}

func (h *snapRelax) Recv(n *Node, _ graph.NodeID, m Msg) {
	nd := m.Body.A + 1
	if h.have && nd >= h.dist {
		return
	}
	h.have, h.dist = true, nd
	n.Output(nd)
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, Msg{Proto: 1, Body: wire.Body{Kind: 1, A: nd}})
	}
}

func (h *snapRelax) SaveState(e *wire.Enc) {
	e.Bool(h.have)
	e.I64(h.dist)
}

func (h *snapRelax) LoadState(d *wire.Dec) {
	h.have = d.Bool()
	h.dist = d.I64()
}

func (h *snapRelax) CloneStateInto(dst Handler) {
	o := dst.(*snapRelax)
	o.have, o.dist = h.have, h.dist
}

func mkRelax(id graph.NodeID) Handler { return &snapRelax{root: id == 0} }

// snapAdversaries pairs each adversary with the fault schedules it runs
// under in the round-trip matrix.
func snapAdversaries(t *testing.T) []Adversary {
	t.Helper()
	specs := []string{"", "drop:p=0.15,budget=2,seed=7"}
	bases := []Adversary{Fixed{D: 1}, SeededRandom{Seed: 9}}
	var out []Adversary
	for _, b := range bases {
		for _, spec := range specs {
			fs, err := ParseFaultSpec(spec)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, WithFaults(b, fs))
		}
	}
	return out
}

// TestSnapshotRoundTripMatrix is the tentpole invariant: snapshot after
// every k-th event, restore into a fresh engine, run to the end in each
// execution mode — the continuation must be byte-identical (Result,
// outputs, PerProto, full delivery trace) to the uninterrupted run, for
// every adversary × fault-schedule cell. Snapshots are observation, not
// perturbation.
func TestSnapshotRoundTripMatrix(t *testing.T) {
	g := graph.RandomConnected(18, 44, 3)
	for _, adv := range snapAdversaries(t) {
		t.Run(adv.Name(), func(t *testing.T) {
			ref := New(g, adv, mkRelax).KeepTrace().Run()
			modes := []ExecutionMode{ModeSingle, ModeMulti, ModeSpec}
			for k := uint64(0); ; k++ {
				a := New(g, adv, mkRelax).KeepTrace()
				done := a.RunSteps(k)
				snap, err := a.Snapshot()
				if err != nil {
					t.Fatalf("snapshot at event %d: %v", k, err)
				}
				for _, mode := range modes {
					b := New(g, adv, mkRelax).KeepTrace()
					if err := b.Restore(snap); err != nil {
						t.Fatalf("restore at event %d: %v", k, err)
					}
					res := b.WithMode(mode).Run()
					if !reflect.DeepEqual(res, ref) {
						t.Fatalf("snapshot at event %d, resumed in mode %d: result diverged from uninterrupted run", k, mode)
					}
					if live := b.Arena().Live(); live != 0 {
						t.Fatalf("snapshot at event %d, mode %d: %d arena segments leaked", k, mode, live)
					}
				}
				if done {
					break
				}
			}
		})
	}
}

// TestSnapshotForkMatrix forks one mid-run snapshot three ways: the
// original engine continues stepping, and two restored clones run to the
// end independently. All three must agree with the uninterrupted run —
// a snapshot is a value, not a handoff.
func TestSnapshotForkMatrix(t *testing.T) {
	g := graph.RandomConnected(24, 60, 11)
	adv := Adversary(SeededRandom{Seed: 4})
	ref := New(g, adv, mkRelax).KeepTrace().Run()

	a := New(g, adv, mkRelax).KeepTrace()
	if a.RunSteps(37) {
		t.Fatal("run quiesced before the fork point; grow the graph")
	}
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for !a.RunSteps(1 << 20) {
	}
	if res := a.FinishResult(); !reflect.DeepEqual(res, ref) {
		t.Fatal("original engine diverged after being snapshotted")
	}
	for clone := 0; clone < 2; clone++ {
		b := New(g, adv, mkRelax).KeepTrace()
		if err := b.Restore(snap); err != nil {
			t.Fatal(err)
		}
		if res := b.Run(); !reflect.DeepEqual(res, ref) {
			t.Fatalf("clone %d diverged from uninterrupted run", clone)
		}
	}
}

// TestSnapshotReplay restores the same frame into the same engine twice:
// Restore discards prior run state, so one engine replays its own history
// deterministically.
func TestSnapshotReplay(t *testing.T) {
	g := graph.RandomConnected(20, 50, 8)
	adv := Adversary(Flaky{Seed: 2})
	ref := New(g, adv, mkRelax).Run()

	a := New(g, adv, mkRelax)
	a.RunSteps(25)
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b := New(g, adv, mkRelax)
	for replay := 0; replay < 2; replay++ {
		if err := b.Restore(snap); err != nil {
			t.Fatal(err)
		}
		if res := b.Run(); !reflect.DeepEqual(res, ref) {
			t.Fatalf("replay %d diverged", replay)
		}
	}
}

// TestSnapshotPreRun pins the inited header bit: a snapshot taken before
// any event ran restores into an engine that still owes its handlers
// their Init calls.
func TestSnapshotPreRun(t *testing.T) {
	g := graph.RandomConnected(16, 36, 6)
	adv := Adversary(Fixed{D: 1})
	ref := New(g, adv, mkRelax).Run()

	snap, err := New(g, adv, mkRelax).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b := New(g, adv, mkRelax)
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if res := b.Run(); !reflect.DeepEqual(res, ref) {
		t.Fatal("pre-run snapshot did not reproduce a from-scratch run")
	}
}

// TestSnapshotErrors pins the validation surface: mismatched engine shape
// or configuration is rejected with the engine left reset and leak-free,
// and a non-codec handler fails at Snapshot time, not at restore.
func TestSnapshotErrors(t *testing.T) {
	g := graph.RandomConnected(16, 36, 6)
	adv := Adversary(Fixed{D: 1})
	a := New(g, adv, mkRelax)
	a.RunSteps(10)
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	bad := []struct {
		name string
		sim  *Sim
	}{
		{"wrong-graph", New(graph.RandomConnected(17, 36, 6), adv, mkRelax)},
		{"wrong-adversary", New(g, SeededRandom{Seed: 1}, mkRelax)},
		{"wrong-trace-flag", New(g, adv, mkRelax).KeepTrace()},
	}
	for _, tc := range bad {
		if err := tc.sim.Restore(snap); err == nil {
			t.Errorf("%s: restore accepted a mismatched snapshot", tc.name)
		} else if live := tc.sim.arena.Live(); live != 0 {
			t.Errorf("%s: failed restore leaked %d arena segments", tc.name, live)
		}
	}

	// Truncation and corruption must error cleanly, never panic.
	for _, n := range []int{0, 1, len(snap) / 2, len(snap) - 1} {
		b := New(g, adv, mkRelax)
		if err := b.Restore(snap[:n]); err == nil {
			t.Errorf("restore of %d/%d bytes accepted", n, len(snap))
		} else if live := b.arena.Live(); live != 0 {
			t.Errorf("truncated restore at %d bytes leaked %d segments", n, live)
		}
	}
	flipped := append([]byte(nil), snap...)
	flipped[len(flipped)/2] ^= 0x10
	if err := New(g, adv, mkRelax).Restore(flipped); err == nil {
		t.Error("restore accepted a corrupted snapshot (checksum miss)")
	}

	// floodHandler clones but does not codec: Snapshot must refuse it.
	nc := New(g, adv, func(graph.NodeID) Handler { return &floodHandler{} })
	nc.RunSteps(5)
	if _, err := nc.Snapshot(); err == nil {
		t.Error("Snapshot accepted a handler without wire.StateCodec")
	}
}

// TestSnapshotSegRoundTrip covers segment-carrying state: events in flight
// at the snapshot hold arena payloads, which the frame inlines and the
// restoring engine re-carves. The restored run must agree and both
// engines must end with zero live segments.
func TestSnapshotSegRoundTrip(t *testing.T) {
	const words = 9
	mk := func(id graph.NodeID) Handler { return &segRelay{root: id == 0, words: words} }
	g := graph.RandomConnected(14, 30, 5)
	adv := Adversary(SeededRandom{Seed: 12})
	ref := New(g, adv, mk).Run()

	for _, k := range []uint64{0, 5, 17, 40} {
		a := New(g, adv, mk)
		a.RunSteps(k)
		snap, err := a.Snapshot()
		if err != nil {
			t.Fatalf("snapshot at event %d: %v", k, err)
		}
		b := New(g, adv, mk)
		if err := b.Restore(snap); err != nil {
			t.Fatalf("restore at event %d: %v", k, err)
		}
		if res := b.Run(); !reflect.DeepEqual(res, ref) {
			t.Fatalf("snapshot at event %d: segment run diverged", k)
		}
		if live := b.Arena().Live(); live != 0 {
			t.Fatalf("snapshot at event %d: %d segments leaked", k, live)
		}
	}
}

// segRelay floods one wave whose messages carry an arena segment; each
// receiver checksums the payload inside the delivery callback.
type segRelay struct {
	NopAck
	root  bool
	words int
	seen  bool
}

func (h *segRelay) flood(n *Node) {
	for _, nb := range n.Neighbors() {
		seg, w := n.Arena().Alloc(h.words)
		for i := range w {
			w[i] = int32(n.ID()) + int32(i)
		}
		n.Send(nb.Node, Msg{Proto: 2, Body: wire.Body{Kind: 1, A: int64(n.ID()), Seg: seg}})
	}
}

func (h *segRelay) Init(n *Node) {
	if !h.root {
		return
	}
	h.seen = true
	n.Output(int64(0))
	h.flood(n)
}

func (h *segRelay) Recv(n *Node, from graph.NodeID, m Msg) {
	w := n.Arena().Data(m.Body.Seg)
	sum := int64(0)
	for i, x := range w {
		if x != int32(from)+int32(i) {
			panic(fmt.Sprintf("async: segment corrupted across snapshot: word %d = %d from %d", i, x, from))
		}
		sum += int64(x)
	}
	if h.seen {
		return
	}
	h.seen = true
	n.Output(sum)
	h.flood(n)
}

func (h *segRelay) SaveState(e *wire.Enc) { e.Bool(h.seen) }
func (h *segRelay) LoadState(d *wire.Dec) { h.seen = d.Bool() }

// FuzzSnapshotRoundTrip feeds arbitrary bytes to Restore: any input must
// either restore an engine that runs to a clean finish or error without
// panicking, and in both cases the arena must end with zero live
// segments.
func FuzzSnapshotRoundTrip(f *testing.F) {
	g := graph.RandomConnected(12, 26, 3)
	adv := Adversary(Fixed{D: 1})
	mid := New(g, adv, mkRelax)
	mid.RunSteps(15)
	valid, err := mid.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("not a snapshot"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s := New(g, adv, mkRelax)
		if err := s.Restore(data); err != nil {
			if live := s.arena.Live(); live != 0 {
				t.Fatalf("failed restore leaked %d arena segments", live)
			}
			return
		}
		s.SetMaxEvents(1 << 20)
		clean := func() (ok bool) {
			// A forged-but-wellformed frame may decode into a state the
			// engine rejects at run time (time going backwards, livelock
			// ceilings); that guard firing is acceptable, corruption is
			// not. Leak accounting only applies to runs that finish.
			defer func() { ok = recover() == nil }()
			s.WithMode(ModeSingle).Run()
			return true
		}()
		if clean {
			if live := s.arena.Live(); live != 0 {
				t.Fatalf("restored run leaked %d arena segments", live)
			}
		}
	})
}
