// Leader election (Corollary 1.3): the first deterministic asynchronous
// leader election with Õ(D) time and Õ(m) messages. This example runs it
// under every standard delay adversary and shows the elected leader is
// identical — determinism in an asynchronous world.
package main

import (
	"fmt"

	dsync "repro"
)

func main() {
	// A wheel-ish network: ring plus chords. Node IDs are the "machine
	// identifiers"; the algorithm elects the global minimum.
	g := dsync.RandomConnected(48, 140, 11)
	fmt.Printf("network: n=%d m=%d D=%d\n", g.N(), g.M(), g.Diameter())

	for _, adv := range dsync.StandardAdversaries(g.N(), 5) {
		res := dsync.AsyncLeaderElection(g, adv)
		leader := res.Outputs[dsync.NodeID(17)] // any node knows the answer
		agree := true
		for v := 0; v < g.N(); v++ {
			if res.Outputs[dsync.NodeID(v)] != leader {
				agree = false
			}
		}
		fmt.Printf("adversary %-12s -> leader=%v, all-agree=%v, time=%.1f, msgs=%d\n",
			adv.Name(), leader, agree, res.Time, res.Msgs)
	}
}
