package syncrun

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/wire"
)

// allocBounce ping-pongs a counter between nodes 0 and 1 for `rounds`
// pulses: one message per pulse, so the marginal cost between two round
// counts is purely the per-pulse/per-message hot path — activation
// bookkeeping, inbox delivery, CONGEST stamp, double-buffer swap.
type allocBounce struct {
	rounds int
}

func (h *allocBounce) Init(n API) {
	if n.ID() == 0 {
		n.Send(1, wire.Body{Kind: 1, A: 0})
	}
}

func (h *allocBounce) Pulse(n API, p int, recvd []Incoming) {
	if len(recvd) == 0 {
		return
	}
	k := int(recvd[0].Body.A)
	if k+1 >= h.rounds {
		n.Output(k)
		return
	}
	n.Send(recvd[0].From, wire.Body{Kind: 1, A: int64(k + 1)})
}

// TestZeroSteadyStateAllocsPerMessage is the lockstep twin of the async
// engine's regression test: after warmup, a delivered message must not
// allocate. Whole-run allocations at two round counts on the same graph
// differ only by the steady-state cost of the extra messages; with boxed
// `any` bodies that was ~1 alloc per message, with wire.Body it must be
// (close to) zero.
func TestZeroSteadyStateAllocsPerMessage(t *testing.T) {
	g := graph.Path(2)
	run := func(rounds int) func() {
		return func() {
			res := New(g, func(graph.NodeID) Handler { return &allocBounce{rounds: rounds} }).Run()
			if res.M != uint64(rounds) {
				t.Fatalf("sent %d messages, want %d", res.M, rounds)
			}
		}
	}
	const short, long = 200, 2200
	a1 := testing.AllocsPerRun(5, run(short))
	a2 := testing.AllocsPerRun(5, run(long))
	const slack = 8
	if extra := a2 - a1; extra > slack {
		t.Fatalf("the %d extra messages allocated %.1f times (%.4f allocs/msg); want 0",
			long-short, extra, extra/float64(long-short))
	}
}
