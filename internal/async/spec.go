package async

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/graph"
)

// This file is the speculative executor (ModeSpec). The bounded-lag
// executor (sim.go) parallelizes only the adversary's safe window
// [wStart, wStart+MinDelay): with a tiny-lookahead adversary the window
// holds one event and the barrier is pure overhead. The speculative
// executor drains each owner shard past the window up to an adaptive
// horizon, betting that most events' relative order is already decided
// even though it is not yet provable.
//
// The design splits each round into a phase that is parallel but effect-
// free and a walk that is effectful but serial:
//
//   - Speculative phase (parallel): each worker pops its shard in (t, seq)
//     order and invokes ONLY the handler callback, on a per-node clone
//     (StateCloner) built from the committed handler at first touch. The
//     callback's Send/Output calls are logged as specOps; nothing in the
//     engine — outboxes, txSeq, counters, trace, arena lifecycle, seq
//     assignment — is touched. The one piece of engine state a handler can
//     observe, its own HasOutput, is served from a per-round overlay.
//
//   - Commit walk (serial): k-way merge the workers' logs by (t, seq) and
//     re-run each event through the serial engine's own processEvent on
//     the committed state, with the handler invocation replaced by a
//     replay of its logged ops. Trace entries, ack scheduling, adversary
//     consultation, outbox dispatch, sequence numbers, and counters are
//     therefore produced by the ModeSingle code path itself — byte-
//     identical results by construction, not by careful imitation.
//
//     Stragglers are detected on the fly: the walk tracks the minimum
//     timestamp it has scheduled (specNewMin); the first merged event with
//     t strictly greater than that minimum proves the remaining suffix was
//     executed out of order (a not-yet-executed event precedes it), so the
//     walk stops and the round commits the maximal clean prefix. Equality
//     is safe — a new event carries a larger seq than every logged one.
//     Every event inside the safe window always commits (nothing can be
//     scheduled before wStart+MinDelay), so a round commits at least as
//     much as a bounded-lag window would and termination is inherited.
//
//   - Rollback: rejected events are pushed back into their shard wheel
//     untouched — their (t, seq) identity survives, and push clamps
//     already-passed ticks into the current slot, which popBefore orders
//     correctly — and the segments their speculative sends carved are
//     batch-released. Handler state is repaired per node: a node whose
//     executed events all committed has its clone promoted (a pointer swap
//     — the displaced handler becomes the next round's clone target, so
//     steady-state speculation allocates nothing); a node with only
//     rejected events keeps its committed handler and the clone is simply
//     invalidated; a straddled node (some committed, some rejected) keeps
//     the committed handler and re-runs just its committed transitions on
//     it with effects swallowed, since the walk already applied them.
//
// A handler panic during speculation is not propagated immediately — the
// event may be a mis-speculation that serial execution never reaches in
// that state. The worker records it and stops; the walk treats it as a
// sentinel ordered at the panicking event's (t, seq). If the walk reaches
// it cleanly, the panic is real: the walk replays the event's pre-handler
// mechanics and partial ops, then re-panics, leaving exactly the committed
// state the serial engine would have at that point (Stats afterwards is
// serial-exact). If it is cut off, the event is rolled back and retried
// like any other.
//
// Costs, honestly: the walk re-executes every committed event's engine
// mechanics serially, so for trivial handlers the parallel phase offloads
// only the handler body and Amdahl caps the speedup (DESIGN.md carries the
// model). Rolled-back work is bounded by the adaptive horizon, which
// doubles after fully-committed rounds and shrinks to twice the observed
// commit span after a cut. Known leaks, bounded by Reset: a discarded
// clone's unsent segments, and output bodies carrying segments in rejected
// events.

// specOpKind discriminates logged handler effects.
type specOpKind uint8

const (
	opSend specOpKind = iota + 1
	opOutBody
	opOutAny
)

// specOp is one logged handler effect: a Send (to, msg) or an Output
// (to = the node itself, payload in msg.Body or val).
type specOp struct {
	kind specOpKind
	to   graph.NodeID
	msg  Msg
	val  any
}

// specExec records one speculatively executed event and the end of its op
// range in the worker's flat specOps log (the range starts at the previous
// entry's opEnd).
type specExec struct {
	ev    event
	opEnd int32
}

// specMaxSpan caps the adaptive horizon at one normalized time unit — all
// delays lie in (0,1], so no queued event is further out than that.
const specMaxSpan = 1.0

// runSpec executes the simulation to quiescence speculatively.
func (s *Sim) runSpec() {
	w := s.workers
	if w < 1 {
		w = 1
	}
	s.ensureWindowState(w)
	s.ensureSpecState()
	s.sharded = true
	for k := range s.wctx {
		s.wctx[k].spec = true
	}
	defer func() {
		s.sharded = false
		s.inWindow = false
		for k := range s.wctx {
			s.wctx[k].spec = false
		}
		for i := range s.nodes {
			s.nodes[i].ctxIdx = ctxDirect
		}
	}()
	// Init runs serially through the direct context (its schedules route
	// to the shards), exactly as in ModeSingle. A resumed run deals its
	// restored events to the owner shards instead.
	if s.resumed {
		s.dealRestoredEvents()
	} else {
		for i := range s.handlers {
			s.handlers[i].Init(&s.nodes[i])
		}
	}
	for i := range s.nodes {
		s.nodes[i].ctxIdx = int32(i%w) + 1
	}
	span := s.specFixedSpan
	if span == 0 {
		span = s.lookahead // adaptive: start at the provably-safe window
	}
	if span < s.lookahead {
		span = s.lookahead
	}
	if span > specMaxSpan {
		span = specMaxSpan
	}
	// Same fan-out gating as runWindows: goroutines only when the previous
	// round was populated enough to amortize them; small rounds run their
	// shards inline through the identical speculation path.
	prevRound := 0
	for {
		wStart, ok := s.minShardT()
		if !ok {
			break
		}
		if wStart < s.now {
			panic(fmt.Sprintf("async: time went backwards: %g < %g", wStart, s.now))
		}
		hEnd := wStart + span
		s.specRoundEp++
		s.specStats.Rounds++
		s.inWindow = true
		if w == 1 || prevRound < s.minParallel {
			for k := 0; k < w; k++ {
				s.specWorker(k, hEnd)
			}
		} else {
			var wg sync.WaitGroup
			for k := 0; k < w; k++ {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					s.specWorker(k, hEnd)
				}(k)
			}
			wg.Wait()
		}
		for k := range s.wctx {
			s.specStats.Executed += uint64(len(s.wctx[k].specLog))
		}
		committed, cut, cutT := s.specCommitWalk()
		s.inWindow = false
		s.specFinishRound()
		s.specStats.Committed += uint64(committed)
		prevRound = committed
		if s.specFixedSpan == 0 {
			if cut {
				// Aim at twice the span that actually committed: ~2/3 of
				// the next round's speculation should commit if event
				// density holds, bounding wasted work without collapsing
				// to the safe window.
				span = 2 * (cutT - wStart)
			} else {
				span *= 2
			}
			if span < s.lookahead {
				span = s.lookahead
			}
			if span > specMaxSpan {
				span = specMaxSpan
			}
		}
	}
}

// ensureSpecState sizes the per-node speculation arrays (once per Sim; the
// graph cannot change) and rearms the swallow context. Epoch arrays are
// invalidated by the ever-increasing round epoch, never scrubbed.
func (s *Sim) ensureSpecState() {
	n := s.g.N()
	if len(s.specClones) != n {
		s.specClones = make([]Handler, n)
		s.specCloneEp = make([]uint64, n)
		s.specSwapEp = make([]uint64, n)
		s.specRejEp = make([]uint64, n)
		s.specOutEp = make([]uint64, n)
		s.specOutView = make([]bool, n)
		s.specOutSaved = make([]bool, n)
	}
	s.swallowCtx = execCtx{s: s, swallow: true}
}

// specWorker drains shard k up to the horizon, running handler clones and
// logging their effects. A panic — usually from the handler, possibly a
// mis-speculation — is captured, not propagated: the commit walk decides
// whether serial execution actually reaches it.
func (s *Sim) specWorker(k int, hEnd float64) {
	c := &s.wctx[k]
	defer func() {
		if p := recover(); p != nil {
			c.specPanicked = true
			c.specPanic = p
		}
	}()
	q := &s.shards[k]
	for {
		ev, ok := q.popBefore(hEnd)
		if !ok {
			return
		}
		c.specCur = ev
		v := ownerOf(ev)
		// evRetrans runs no handler — it is pure engine mechanics (a new
		// transmission attempt), which only the commit walk may perform. It
		// still logs an empty-op entry so the walk merges it in order; the
		// clone is untouched, so pass 1/2 of specFinishRound skip it.
		switch ev.kind {
		case evDeliver:
			s.specHandlerFor(v).Recv(&s.nodes[v], ev.src, ev.msg)
		case evAckArrive:
			s.specHandlerFor(v).Ack(&s.nodes[v], ev.dst, ev.msg)
		}
		c.specLog = append(c.specLog, specExec{ev: ev, opEnd: int32(len(c.specOps))})
	}
}

// specHandlerFor returns node v's per-round clone, refreshing it from the
// committed handler on first touch. Clone targets are built lazily with
// the stored mk and ping-ponged with the committed instance on promotion,
// so a node pays one construction ever, then only CloneStateInto copies.
func (s *Sim) specHandlerFor(v graph.NodeID) Handler {
	if s.specCloneEp[v] != s.specRoundEp {
		cl := s.specClones[v]
		if cl == nil {
			cl = s.specMk(v)
			s.specClones[v] = cl
		}
		s.handlers[v].(StateCloner).CloneStateInto(cl)
		s.specCloneEp[v] = s.specRoundEp
	}
	return s.specClones[v]
}

// specTouchOut tracks a speculative Output call in the per-round overlay,
// saving the committed value on the round's first touch (the straddle
// repair replays from it).
func (s *Sim) specTouchOut(id graph.NodeID) {
	if s.specOutEp[id] != s.specRoundEp {
		s.specOutEp[id] = s.specRoundEp
		s.specOutSaved[id] = s.hasOut[id]
	}
	s.specOutView[id] = true
}

// specCommitWalk merges the workers' logs in global (t, seq) order and
// commits the maximal prefix that serial execution certifies, applying
// each event's engine mechanics through the direct context. Returns the
// committed count and, if the round was cut, the straggler frontier.
func (s *Sim) specCommitWalk() (committed int, cut bool, cutT float64) {
	w := len(s.wctx)
	cur := s.mergeCur
	for k := 0; k < w; k++ {
		cur[k] = 0
	}
	s.specNewMin = math.Inf(1)
	s.specWalking = true
	defer func() {
		s.specWalking = false
		s.direct.replayOn = false
		s.direct.replay = nil
	}()
	for {
		best := -1
		var bestEv *event
		for k := 0; k < w; k++ {
			c := &s.wctx[k]
			var ev *event
			switch {
			case cur[k] < len(c.specLog):
				ev = &c.specLog[cur[k]].ev
			case cur[k] == len(c.specLog) && c.specPanicked:
				// The panicking event: popped but never logged. It merges
				// like any other entry; its ops are the log's open tail.
				ev = &c.specCur
			default:
				continue
			}
			if best < 0 || evLess(*ev, *bestEv) {
				best, bestEv = k, ev
			}
		}
		if best < 0 {
			return committed, false, 0
		}
		if bestEv.t > s.specNewMin {
			// bestEv is the minimum of everything left, so the entire
			// remaining suffix is past the straggler frontier.
			return committed, true, s.specNewMin
		}
		c := &s.wctx[best]
		i := cur[best]
		var opStart int32
		if i > 0 {
			opStart = c.specLog[i-1].opEnd
		}
		ev := *bestEv
		s.now = ev.t
		s.steps++
		if s.steps > s.maxEvents {
			panic(fmt.Sprintf("async: exceeded %d events at t=%g (livelock?)", s.maxEvents, s.now))
		}
		if i == len(c.specLog) {
			// Certified panic: reproduce the serial engine's exact state at
			// the point of death, then die the same way.
			s.direct.replay = c.specOps[opStart:]
			s.direct.replayOn = true
			s.specReplayPanic(&ev, c.specPanic)
		}
		s.direct.replay = c.specOps[opStart:c.specLog[i].opEnd]
		s.direct.replayOn = true
		s.direct.processEvent(&ev)
		cur[best]++
		committed++
	}
}

// specReplayPanic applies the mechanics the serial engine performs before
// a handler callback that panics — the delivery trace entry, or the ack's
// link release and redispatch — plus the callback's partial effects, then
// re-raises the original panic value.
func (s *Sim) specReplayPanic(ev *event, p any) {
	c := &s.direct
	c.now = ev.t
	c.curSeq = ev.seq
	switch ev.kind {
	case evDeliver:
		if s.keepTrace {
			s.trace = append(s.trace, TraceEntry{T: ev.t, Seq: ev.seq, From: ev.src, To: ev.dst, Msg: ev.msg})
		}
	case evAckArrive:
		s.busy[ev.link] = false
		c.dispatch(ev.src, ev.dst, ev.link)
	}
	c.applyOps(ev)
	panic(p)
}

// specFinishRound repairs handler state and rolls back the rejected
// suffix after a commit walk.
func (s *Sim) specFinishRound() {
	w := len(s.wctx)
	round := s.specRoundEp
	// Pass 1: mark every node owning a rejected event — its clone ran past
	// the cut and is poisoned. evRetrans events never touch a clone, so a
	// rejected one poisons nothing (it simply requeues in pass 3).
	for k := 0; k < w; k++ {
		c := &s.wctx[k]
		for i := s.mergeCur[k]; i < len(c.specLog); i++ {
			if c.specLog[i].ev.kind == evRetrans {
				continue
			}
			s.specRejEp[ownerOf(c.specLog[i].ev)] = round
		}
		if c.specPanicked {
			s.specRejEp[ownerOf(c.specCur)] = round
		}
	}
	// Pass 2: promote clean clones (pointer swap; the displaced handler is
	// next round's clone target) and swallow-replay straddled nodes'
	// committed transitions on their committed handler — the walk already
	// applied those transitions' effects, only the state change is needed.
	for k := 0; k < w; k++ {
		c := &s.wctx[k]
		for i := 0; i < s.mergeCur[k]; i++ {
			e := &c.specLog[i]
			if e.ev.kind == evRetrans {
				// No handler ran and the clone was never refreshed for this
				// event; promoting on its account would swap in a stale (or
				// nil) clone.
				continue
			}
			v := ownerOf(e.ev)
			if s.specRejEp[v] == round {
				s.specSwallowReplay(v, e)
				s.specStats.Replayed++
			} else if s.specSwapEp[v] != round {
				s.handlers[v], s.specClones[v] = s.specClones[v], s.handlers[v]
				s.specSwapEp[v] = round
			}
		}
	}
	// Pass 3: requeue rejected events untouched — seq identity survives,
	// a later round commits them — and batch-release the segments their
	// speculative sends carved (those sends were never applied, so nothing
	// references the segments).
	for k := 0; k < w; k++ {
		c := &s.wctx[k]
		var opStart int32
		if n := s.mergeCur[k]; n > 0 {
			opStart = c.specLog[n-1].opEnd
		}
		for i := opStart; i < int32(len(c.specOps)); i++ {
			if c.specOps[i].kind == opSend && !c.specOps[i].msg.Body.Seg.IsZero() {
				s.specRelease = append(s.specRelease, c.specOps[i].msg.Body.Seg)
			}
		}
		for i := s.mergeCur[k]; i < len(c.specLog); i++ {
			s.specStats.Rejected++
			s.shards[k].push(c.specLog[i].ev)
		}
		if c.specPanicked {
			s.specStats.Rejected++
			s.shards[k].push(c.specCur)
			c.specPanicked, c.specPanic = false, nil
		}
		clearSpecOps(c.specOps)
		c.specOps = c.specOps[:0]
		c.specLog = c.specLog[:0]
	}
	s.arena.ReleaseAll(s.specRelease)
	s.specRelease = s.specRelease[:0]
}

// specSwallowReplay re-runs one committed transition on node v's committed
// handler through the swallow context: state evolves, effects are dropped
// (duplicate sends release their fresh segment immediately; Output updates
// only repair's local HasOutput view).
func (s *Sim) specSwallowReplay(v graph.NodeID, e *specExec) {
	n := &s.nodes[v]
	old := n.ctxIdx
	n.ctxIdx = ctxSwallow
	h := s.handlers[v]
	switch e.ev.kind {
	case evDeliver:
		h.Recv(n, e.ev.src, e.ev.msg)
	case evAckArrive:
		h.Ack(n, e.ev.dst, e.ev.msg)
	}
	n.ctxIdx = old
}

// clearSpecOps drops boxed output values so a truncated log's retained
// capacity pins nothing.
func clearSpecOps(ops []specOp) {
	for i := range ops {
		if ops[i].kind == opOutAny {
			ops[i].val = nil
		}
	}
}
