package shard

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/async"
	"repro/internal/graph"
	"repro/internal/wire"
)

// Workloads are shipped to workers by name: every process — coordinator,
// each worker, and the serial reference run a test compares against —
// builds handlers from the same pure function of (config, node id), so no
// handler state ever crosses a socket.

// WorkloadConfig is the per-run workload parameterization carried in the
// HELLO message.
type WorkloadConfig struct {
	// Sources are the initiating nodes (default {0}).
	Sources []graph.NodeID
	// SegWords sizes the arena payload of segment-carrying workloads
	// (segflood); 0 elsewhere.
	SegWords int
}

// NewWorkload builds the named workload's handler factory. Factories are
// deterministic in (name, cfg, id); unknown names error at HELLO time.
func NewWorkload(name string, cfg WorkloadConfig) (func(id graph.NodeID) async.Handler, error) {
	srcs := cfg.Sources
	if len(srcs) == 0 {
		srcs = []graph.NodeID{0}
	}
	isSrc := func(id graph.NodeID) bool {
		for _, s := range srcs {
			if s == id {
				return true
			}
		}
		return false
	}
	switch name {
	case "flood":
		return func(id graph.NodeID) async.Handler {
			return &floodNode{root: isSrc(id)}
		}, nil
	case "bfs":
		return func(id graph.NodeID) async.Handler {
			return &bfsNode{root: isSrc(id)}
		}, nil
	case "segflood":
		w := cfg.SegWords
		if w <= 0 {
			w = 48
		}
		return func(id graph.NodeID) async.Handler {
			return &segFloodNode{root: isSrc(id), words: w}
		}, nil
	}
	return nil, fmt.Errorf("shard: unknown workload %q", name)
}

// Workloads lists the registered workload names (CLI -list support).
func Workloads() []string { return []string{"bfs", "flood", "segflood"} }

const (
	floodProto async.Proto = 10
	bfsProto   async.Proto = 11
	segProto   async.Proto = 12
)

// floodNode relays one wave across the graph; each node outputs the node
// it first heard from (its parent in the race-determined flood tree —
// deterministic because the engine is). Sources output themselves.
type floodNode struct {
	async.NopAck
	root bool
	seen bool
}

func (f *floodNode) Init(n *async.Node) {
	if !f.root {
		return
	}
	f.seen = true
	n.Output(int64(n.ID()))
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, async.Msg{Proto: floodProto, Body: wire.Tag(1)})
	}
}

// SaveState implements wire.StateCodec (root is config, rebuilt by the
// workload factory on every process).
func (f *floodNode) SaveState(e *wire.Enc) { e.Bool(f.seen) }

// LoadState implements wire.StateCodec.
func (f *floodNode) LoadState(d *wire.Dec) { f.seen = d.Bool() }

func (f *floodNode) Recv(n *async.Node, from graph.NodeID, m async.Msg) {
	if f.seen {
		return
	}
	f.seen = true
	n.Output(int64(from))
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, async.Msg{Proto: floodProto, Body: wire.Tag(1)})
	}
}

// bfsNode computes exact hop distances from the source set by monotone
// relaxation: a node adopts any strictly smaller distance it hears and
// re-floods it. Converges to multi-source BFS distances with the node's
// final Output equal to its true distance, independent of delivery order.
type bfsNode struct {
	async.NopAck
	root bool
	have bool
	dist int64
}

func (b *bfsNode) Init(n *async.Node) {
	if !b.root {
		return
	}
	b.have, b.dist = true, 0
	n.Output(int64(0))
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, async.Msg{Proto: bfsProto, Body: wire.Body{Kind: 1, A: 0}})
	}
}

// SaveState implements wire.StateCodec.
func (b *bfsNode) SaveState(e *wire.Enc) {
	e.Bool(b.have)
	e.I64(b.dist)
}

// LoadState implements wire.StateCodec.
func (b *bfsNode) LoadState(d *wire.Dec) {
	b.have = d.Bool()
	b.dist = d.I64()
}

func (b *bfsNode) Recv(n *async.Node, from graph.NodeID, m async.Msg) {
	nd := m.Body.A + 1
	if b.have && nd >= b.dist {
		return
	}
	b.have, b.dist = true, nd
	n.Output(nd)
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, async.Msg{Proto: bfsProto, Body: wire.Body{Kind: 1, A: nd}})
	}
}

// segFloodNode is the transport-coverage workload: the wave carries an
// arena segment (words words, a pattern keyed by the sender), receivers
// verify the pattern inside the delivery callback — the only window the
// segment is alive — and output a checksum. Exercises segment re-homing
// across shard boundaries end to end.
type segFloodNode struct {
	async.NopAck
	root  bool
	words int
	seen  bool
}

func (s *segFloodNode) fill(n *async.Node) wire.Body {
	seg, w := n.Arena().Alloc(s.words)
	for i := range w {
		w[i] = int32(n.ID()) ^ int32(i)
	}
	return wire.Body{Kind: 1, A: int64(n.ID()), Seg: seg}
}

func (s *segFloodNode) relay(n *async.Node) {
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, async.Msg{Proto: segProto, Body: s.fill(n)})
	}
}

func (s *segFloodNode) Init(n *async.Node) {
	if !s.root {
		return
	}
	s.seen = true
	n.Output(int64(n.ID()))
	s.relay(n)
}

// SaveState implements wire.StateCodec (words is config).
func (s *segFloodNode) SaveState(e *wire.Enc) { e.Bool(s.seen) }

// LoadState implements wire.StateCodec.
func (s *segFloodNode) LoadState(d *wire.Dec) { s.seen = d.Bool() }

func (s *segFloodNode) Recv(n *async.Node, from graph.NodeID, m async.Msg) {
	w := n.Arena().Data(m.Body.Seg)
	sum := int64(0)
	for i, x := range w {
		if x != int32(from)^int32(i) {
			panic(fmt.Sprintf("shard: segment corrupted in transit: word %d = %d from node %d", i, x, from))
		}
		sum += int64(x)
	}
	if s.seen {
		return
	}
	s.seen = true
	n.Output(sum + m.Body.A)
	s.relay(n)
}

// ParseAdversary builds an adversary from its spec string, the form the
// coordinator ships in HELLO (every process parses the same string, so
// every engine consults an identical delay function):
//
//	fixed:<d>            constant delay d
//	random:<seed>        SeededRandom
//	skew:cut=<n>,fast=<d> fast links below node n, slow elsewhere
//	flaky:<seed>         bimodal fast/slow
//	edge:<seed>          per-edge lottery
func ParseAdversary(spec string) (async.Adversary, error) {
	name, arg, _ := strings.Cut(spec, ":")
	switch name {
	case "fixed":
		d, err := strconv.ParseFloat(arg, 64)
		if err != nil {
			return nil, fmt.Errorf("shard: adversary %q: %v", spec, err)
		}
		return async.Fixed{D: d}, nil
	case "random", "flaky", "edge":
		seed, err := strconv.ParseUint(arg, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("shard: adversary %q: %v", spec, err)
		}
		switch name {
		case "random":
			return async.SeededRandom{Seed: seed}, nil
		case "flaky":
			return async.Flaky{Seed: seed}, nil
		default:
			return async.EdgeLottery{Seed: seed}, nil
		}
	case "skew":
		var cut int64 = -1
		fast := -1.0
		for _, kv := range strings.Split(arg, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("shard: adversary %q: bad parameter %q", spec, kv)
			}
			switch k {
			case "cut":
				n, err := strconv.ParseInt(v, 10, 32)
				if err != nil {
					return nil, fmt.Errorf("shard: adversary %q: %v", spec, err)
				}
				cut = n
			case "fast":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return nil, fmt.Errorf("shard: adversary %q: %v", spec, err)
				}
				fast = f
			default:
				return nil, fmt.Errorf("shard: adversary %q: unknown parameter %q", spec, k)
			}
		}
		if cut < 0 || fast <= 0 {
			return nil, fmt.Errorf("shard: adversary %q needs cut= and fast=", spec)
		}
		return async.Skew{Cut: graph.NodeID(cut), FastD: fast}, nil
	}
	return nil, fmt.Errorf("shard: unknown adversary %q (want fixed:/random:/skew:/flaky:/edge:)", spec)
}

// sortNodeIDs sorts in place and returns its argument (HELLO ships
// sources in canonical order so every process agrees).
func sortNodeIDs(ids []graph.NodeID) []graph.NodeID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
