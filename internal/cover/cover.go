// Package cover builds sparse d-covers (Definition 2.1) and layered covers
// from the k-separated network decomposition, following Theorem 4.21:
// construct a (2d+1)-separated weak-diameter decomposition, then expand
// every cluster to its d-neighborhood. Same-color clusters are more than
// 2d+1 apart, so the d-expansions stay disjoint per color, every node lands
// in O(log n) clusters (at most one per color), and for every node v the
// expansion of v's own decomposition cluster contains v's entire d-ball.
package cover

import (
	"fmt"
	"sort"

	"repro/internal/decomp"
	"repro/internal/graph"
)

// ClusterID identifies a cluster within one Cover. 32-bit, matching the
// graph plane's compact ids: the per-node memberOf/treeOf/home tables are
// the dominant cover footprint at scale.
type ClusterID int32

// Cluster is one cover cluster: member nodes plus a rooted cluster tree
// (weak: the tree may pass through non-member Steiner nodes).
type Cluster struct {
	ID      ClusterID
	Root    graph.NodeID
	Members []graph.NodeID // ascending
	// Seeds are the decomposition-cluster members the d-expansion grew
	// from (the alive ones, under a masked build) — ascending. Repair's
	// dirty certificate tests fault distance against this set.
	Seeds []graph.NodeID
	Tree  *decomp.Tree

	// base is the decomposition cluster this cover cluster expands;
	// Repair walks the decomposition in build order and matches reusable
	// clusters through it.
	base *decomp.Cluster
}

// Has reports whether v is a member (terminal) of the cluster.
func (c *Cluster) Has(v graph.NodeID) bool {
	i := sort.Search(len(c.Members), func(i int) bool { return c.Members[i] >= v })
	return i < len(c.Members) && c.Members[i] == v
}

// ParentOf returns v's parent in the cluster tree; ok=false at the root.
func (c *Cluster) ParentOf(v graph.NodeID) (graph.NodeID, bool) {
	return c.Tree.ParentOf(v)
}

// ChildrenOf returns v's children in the cluster tree (ascending); the
// returned slice must not be mutated.
func (c *Cluster) ChildrenOf(v graph.NodeID) []graph.NodeID {
	return c.Tree.ChildrenOf(v)
}

// Cover is a sparse d-cover: a set of clusters such that every node is in
// O(log n) clusters and every node's d-ball is fully inside at least one
// cluster.
type Cover struct {
	// D is the covered radius: any two nodes at distance <= D share a
	// cluster.
	D        int
	Clusters []*Cluster
	// memberOf[v] lists clusters that contain v as a member.
	memberOf [][]ClusterID
	// treeOf[v] lists clusters whose tree v participates in (superset of
	// memberOf: Steiner nonterminals relay but are not covered).
	treeOf [][]ClusterID
	// home[v] is a cluster guaranteed to contain Ball(v, D).
	home []ClusterID

	// Retained for Repair: the fault-independent base decomposition, the
	// covered node set, the alive mask this cover was built under (nil =
	// no faults), and the graph.
	g     *graph.Graph
	dec   *decomp.Decomposition
	inS   []bool
	alive []bool
}

// MemberOf returns the clusters containing v, ascending by id. Do not
// mutate.
func (c *Cover) MemberOf(v graph.NodeID) []ClusterID { return c.memberOf[v] }

// TreeOf returns the clusters whose tree v participates in, ascending by
// id. Do not mutate.
func (c *Cover) TreeOf(v graph.NodeID) []ClusterID { return c.treeOf[v] }

// Home returns a cluster whose member set contains every node within
// distance D of v (the strengthened covering property of Definition 2.1).
func (c *Cover) Home(v graph.NodeID) ClusterID { return c.home[v] }

// Cluster returns the cluster with the given id.
func (c *Cover) Cluster(id ClusterID) *Cluster { return c.Clusters[id] }

// MaxTreeDepth returns the deepest cluster tree in the cover.
func (c *Cover) MaxTreeDepth() int {
	max := 0
	for _, cl := range c.Clusters {
		if d := cl.Tree.Depth(); d > max {
			max = d
		}
	}
	return max
}

// Build constructs a sparse d-cover of the nodes in s (nil = all nodes) by
// Theorem 4.21. Deterministic.
func Build(g *graph.Graph, d int, s []graph.NodeID) *Cover {
	return BuildMasked(g, d, s, nil)
}

// BuildMasked constructs the sparse d-cover of the alive nodes of s.
// alive (nil = no faults) masks the *expansion* only: the base
// decomposition is computed over the full set — it is fault-independent,
// which is what lets Repair patch a faulted cover incrementally instead
// of re-deriving the decomposition — while cluster seeds shrink to the
// alive members, BFS relays route only through alive nodes, and clusters
// whose seeds all died disappear. Separation only improves under a mask
// (masked distances dominate true distances), so the cover properties
// hold over the alive subgraph. Deterministic.
func BuildMasked(g *graph.Graph, d int, s []graph.NodeID, alive []bool) *Cover {
	if d < 1 {
		panic(fmt.Sprintf("cover: d must be >= 1, got %d", d))
	}
	if alive != nil && len(alive) != g.N() {
		panic(fmt.Sprintf("cover: alive mask has %d entries for %d nodes", len(alive), g.N()))
	}
	dec := decomp.Build(g, 2*d+1, s)
	inS := make([]bool, g.N())
	if s == nil {
		for i := range inS {
			inS[i] = true
		}
	} else {
		for _, v := range s {
			inS[v] = true
		}
	}
	cov := &Cover{D: d, g: g, dec: dec, inS: inS, alive: alive}
	// One epoch-stamped BFS scratch serves every cluster expansion.
	ex := newExpander(g, d)
	for _, colorClusters := range dec.Colors {
		for _, dc := range colorClusters {
			seeds := aliveSeeds(dc.Members, alive)
			if len(seeds) == 0 {
				continue // every seed died; the cluster is gone
			}
			cl := ex.expand(dc, inS, alive, seeds)
			cl.ID = ClusterID(len(cov.Clusters))
			cov.Clusters = append(cov.Clusters, cl)
		}
	}
	cov.reindex()
	return cov
}

// aliveSeeds filters members (ascending) by the mask; a nil mask shares
// the member slice itself.
func aliveSeeds(members []graph.NodeID, alive []bool) []graph.NodeID {
	if alive == nil {
		return members
	}
	out := members[:0:0]
	for _, v := range members {
		if alive[v] {
			out = append(out, v)
		}
	}
	return out
}

// reindex rebuilds the per-node lookup tables from the cluster list.
// Clusters are scanned in ascending ID order, so every per-node list
// comes out ascending; home is written from each cluster's seeds —
// every covered node seeds exactly one decomposition cluster.
func (c *Cover) reindex() {
	n := c.g.N()
	c.memberOf = make([][]ClusterID, n)
	c.treeOf = make([][]ClusterID, n)
	c.home = make([]ClusterID, n)
	for i := range c.home {
		c.home[i] = -1
	}
	for _, cl := range c.Clusters {
		for _, v := range cl.Members {
			c.memberOf[v] = append(c.memberOf[v], cl.ID)
		}
		for _, tv := range cl.Tree.Nodes() {
			c.treeOf[tv] = append(c.treeOf[tv], cl.ID)
		}
		for _, v := range cl.Seeds {
			c.home[v] = cl.ID
		}
	}
}

// expander wraps the shared epoch-stamped BFS scratch (decomp.BFSScratch)
// with the tree-splicing chain buffer.
type expander struct {
	d     int
	bfs   *decomp.BFSScratch
	chain []graph.NodeID
}

func newExpander(g *graph.Graph, d int) *expander {
	return &expander{d: d, bfs: decomp.NewBFSScratch(g)}
}

// expand grows dc to its d-neighborhood among the alive nodes of s,
// extending the Steiner tree along BFS paths (through alive relay nodes
// in G). seeds must be dc's alive members, ascending. The cloned base
// tree keeps dead members and Steiner nodes as nonterminal relics —
// identically in full builds, masked builds, and repairs, which is what
// makes repaired clusters byte-equal to from-scratch ones.
func (ex *expander) expand(dc *decomp.Cluster, inS, alive []bool, seeds []graph.NodeID) *Cluster {
	tree := dc.Tree.Clone()
	visited := ex.bfs.Run(seeds, ex.d, alive)
	members := append([]graph.NodeID(nil), seeds...)
	for _, v := range visited[len(seeds):] {
		if !inS[v] {
			continue // only cover nodes of the target set
		}
		members = append(members, v)
		ex.attachPath(tree, v)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return &Cluster{Root: tree.Root, Members: members, Seeds: seeds, Tree: tree.Finalize(), base: dc}
}

// attachPath splices the BFS path from v back to the tree into the tree.
func (ex *expander) attachPath(tree *decomp.Tree, v graph.NodeID) {
	ex.chain = ex.chain[:0]
	w := v
	for !tree.Has(w) {
		ex.chain = append(ex.chain, w)
		p := ex.bfs.Parent(w)
		if p < 0 {
			panic("cover: BFS path did not reach the cluster tree")
		}
		w = p
	}
	for i := len(ex.chain) - 1; i >= 0; i-- {
		c := ex.chain[i]
		tree.Attach(c, w)
		w = c
	}
}

// Layered is a layered sparse d-cover: sparse 2^j-covers for all
// j in 0..⌈log₂ d⌉ (§2.1).
type Layered struct {
	// Levels[j] is a sparse 2^j-cover.
	Levels []*Cover
}

// BuildLayered constructs the layered sparse cover up to radius d.
func BuildLayered(g *graph.Graph, d int, s []graph.NodeID) *Layered {
	return BuildLayeredMasked(g, d, s, nil)
}

// BuildLayeredMasked constructs the layered sparse cover of the alive
// nodes of s (see BuildMasked).
func BuildLayeredMasked(g *graph.Graph, d int, s []graph.NodeID, alive []bool) *Layered {
	if d < 1 {
		panic(fmt.Sprintf("cover: layered d must be >= 1, got %d", d))
	}
	var levels []*Cover
	for j := 0; ; j++ {
		r := 1 << uint(j)
		levels = append(levels, BuildMasked(g, r, s, alive))
		if r >= d {
			break
		}
	}
	return &Layered{Levels: levels}
}

// Level returns the sparse 2^j-cover; panics when j exceeds what was built.
func (l *Layered) Level(j int) *Cover {
	if j < 0 || j >= len(l.Levels) {
		panic(fmt.Sprintf("cover: level %d not built (have %d)", j, len(l.Levels)))
	}
	return l.Levels[j]
}

// MaxLevel returns the largest built level index.
func (l *Layered) MaxLevel() int { return len(l.Levels) - 1 }
