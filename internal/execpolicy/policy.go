// Package execpolicy centralizes the execution-policy decisions the two
// engines share: worker-count defaults and validation, and the Auto-mode
// heuristics that pick between serial and parallel execution. Keeping them
// in one place stops the async engine and the lockstep runner from
// drifting apart — both engines' WithWorkers validation, their GOMAXPROCS
// clamps, and their "is parallelism worth the coordination?" thresholds
// are the same code.
//
// The policy layer is deliberately free of engine types: it answers with
// plain choices, and each engine maps them onto its own mode enum.
package execpolicy

import (
	"fmt"
	"runtime"
)

// MaxWorkers caps every worker pool: beyond ~16 workers the merge and
// barrier costs outgrow the marginal core, and the deterministic k-way
// merges scan one cursor per worker.
const MaxWorkers = 16

// AutoMinLookahead is the smallest adversary lookahead for which Auto mode
// engages the conservative bounded-lag executor: one tick of the async
// engine's 256-slot calendar wheel. Below it, safe windows rarely hold
// more than one event and the barrier is pure overhead — that regime
// belongs to the speculative executor instead.
const AutoMinLookahead = 1.0 / 256

// AutoMultiLinks is the graph size (directed links) at which the async
// engine's Auto mode considers a worker pool at all.
const AutoMultiLinks = 4096

// AutoMultiNodes is the graph size at which the lockstep runner's Auto
// mode switches to its worker pool: below it, per-pulse pool coordination
// dominates the tiny handler steps.
const AutoMultiNodes = 2048

// AutoHugeLinks is the graph size (directed links) past which Auto mode
// treats the graph as huge: with millions of concurrent link timers even a
// lookahead far below AutoMinLookahead packs thousands of events into each
// safe window, so the windowed/speculative executors amortize their
// barriers and the serial heap discipline becomes the bottleneck.
const AutoHugeLinks = 1 << 21

// AutoHugeEventsPerWindow is the expected-events-per-safe-window level
// (lookahead × links, with per-link delays in (0, 1]) a huge graph must
// reach for Auto to engage the windowed executor below AutoMinLookahead.
const AutoHugeEventsPerWindow = 4096

// DefaultWorkers is the worker-pool size when the caller does not choose:
// every available CPU, capped at MaxWorkers.
func DefaultWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > MaxWorkers {
		w = MaxWorkers
	}
	return w
}

// ValidateWorkers rejects non-positive explicit worker counts. The engine
// name prefixes the panic so the failure reads like the engine's own.
func ValidateWorkers(engine string, k int) {
	if k < 1 {
		panic(fmt.Sprintf("%s: worker count %d < 1", engine, k))
	}
}

// AutoWorkers is the worker count Auto-mode decisions reason with: the
// configured pool clamped to GOMAXPROCS. An explicitly forced parallel
// mode keeps its configured (possibly oversubscribed) pool — tests rely on
// forcing 4 workers on 1 CPU — but Auto never volunteers more workers than
// there are CPUs to run them.
func AutoWorkers(configured int) int {
	if p := runtime.GOMAXPROCS(0); configured > p {
		return p
	}
	return configured
}

// AsyncChoice is the async engine's Auto-mode decision.
type AsyncChoice int

const (
	// AsyncSerial: pop one event at a time on the calling goroutine.
	AsyncSerial AsyncChoice = iota
	// AsyncWindows: conservative bounded-lag windows on a worker pool.
	AsyncWindows
	// AsyncSpec: speculative rounds past the safe window (requires every
	// handler to implement async.StateCloner).
	AsyncSpec
)

// AsyncAuto picks the async engine's execution path: the bounded-lag
// window executor when the adversary's lookahead makes safe windows worth
// a barrier, the speculative executor when lookahead is tiny but the
// graph is big and the handlers are cloneable, and serial otherwise.
//
// Huge graphs (AutoHugeLinks and up) get an extra windowed gate: a
// lookahead below AutoMinLookahead still engages the window executor when
// lookahead × links promises at least AutoHugeEventsPerWindow events per
// window — at that scale the per-window population, not the per-link
// lookahead, is what pays for the barrier.
func AsyncAuto(workers, links int, lookahead float64, cloneable bool) AsyncChoice {
	if AutoWorkers(workers) <= 1 || links < AutoMultiLinks {
		return AsyncSerial
	}
	if lookahead >= AutoMinLookahead {
		return AsyncWindows
	}
	if links >= AutoHugeLinks && lookahead*float64(links) >= AutoHugeEventsPerWindow {
		return AsyncWindows
	}
	if cloneable {
		return AsyncSpec
	}
	return AsyncSerial
}

// LockstepMulti reports whether the lockstep runner's Auto mode should use
// its worker pool for a graph of n nodes.
func LockstepMulti(workers, nodes int) bool {
	return AutoWorkers(workers) > 1 && nodes >= AutoMultiNodes
}

// MaxShards caps multi-process sharded runs: each shard is a whole OS
// process with its own graph plane, and past 8 ways the per-window
// coordinator round trip (a k-cursor merge plus 2k socket syscalls)
// outgrows the marginal process on the graphs that fit one machine.
const MaxShards = 8

// AutoShardLinks is the graph size (directed links) at which Auto-mode
// sharding engages at all: below ~4M links a single in-process engine
// wins outright. On the million-node smoke graph (~5.9M links, just
// past the gate) the whole multi-process protocol costs ~1% at K=2 and
// ~3% at K=4 measured on one core (BENCH_7.json — the overhead floor,
// since timesharing workers re-serialize each window), so on real
// multi-core hosts the per-window critical path divides by K against
// low-single-digit protocol cost; the procs clamp below keeps
// single-core hosts at K=1 regardless.
const AutoShardLinks = 1 << 22

// AutoShardLinksPerShard keeps Auto from over-sharding mid-size graphs:
// every shard Auto volunteers must own at least this many links, so the
// shard count grows with the graph instead of jumping straight to the
// process cap.
const AutoShardLinksPerShard = 1 << 21

// AutoShards picks the shard count for a multi-process run when the
// caller does not choose: 1 (no sharding) below AutoShardLinks, then the
// largest count that keeps every shard at AutoShardLinksPerShard links,
// clamped to the machine's processors and MaxShards.
func AutoShards(procs, links int) int {
	if links < AutoShardLinks {
		return 1
	}
	k := links / AutoShardLinksPerShard
	if k > procs {
		k = procs
	}
	if k > MaxShards {
		k = MaxShards
	}
	if k < 1 {
		k = 1
	}
	return k
}
