// Package core implements the paper's main contribution: the deterministic
// polylogarithmic-overhead synchronizer for event-driven synchronous
// algorithms (§5), together with Awerbuch's α, β and γ synchronizers
// (Appendix A) as baselines.
//
// The synchronizer materializes each synchronous send-step of a node v at
// pulse p as a virtual node (v,p) in an execution forest (§5.2). Pulse-p
// sends are gated on Go-Ahead(p), which is produced by the registration
// machinery of §3.2 running on sparse 2^(ℓ(p)+5)-covers, driven by
// p-safety convergecasts on the execution forest (§4.1.2 adapted per
// §5.3.1). Pulses p with prev(prev(p)) = 0 — the originator pulses — use
// the convergecast barriers of §4.2 instead.
package core

import (
	"fmt"

	"repro/internal/pulse"
)

// Schedule precomputes every pulse-derived table the synchronizer needs for
// a given pulse bound B (the algorithm may send at pulses 0..B-1; virtual
// nodes exist for pulses 0..B). One Schedule is shared read-only by every
// node of a run.
type Schedule struct {
	// B is the pulse bound.
	B int
	// tracked[π] lists pulses q with prev2(q) <= π < q <= B: the safety
	// convergecasts a virtual node of pulse π participates in (beyond its
	// own creation report for q = π).
	tracked [][]int
	// regAt[π<<32|q] lists sessions p (1 <= p <= B, prev(p) = q,
	// prev2(p) = π) that a virtual node of pulse π must register for when
	// its q-status resolves ready. Empty for originator pulses (barriers).
	regAt map[int64][]int
	// barrier lists pulses p in [1, B] with prev2(p) = 0, ascending: their
	// registration uses the §4.2 convergecast barriers at the originators.
	barrier []int
	// isBarrier[p] reports membership in barrier.
	isBarrier []bool
	// coverLevel[p] = ℓ(p)+5 for p in [1, B].
	coverLevel []int
	// MaxCoverLevel is the largest coverLevel.
	MaxCoverLevel int
}

// NewSchedule builds the tables for pulse bound b >= 1.
func NewSchedule(b int) *Schedule {
	if b < 1 {
		panic(fmt.Sprintf("core: pulse bound must be >= 1, got %d", b))
	}
	s := &Schedule{
		B:          b,
		tracked:    make([][]int, b+1),
		regAt:      make(map[int64][]int),
		isBarrier:  make([]bool, b+1),
		coverLevel: make([]int, b+1),
	}
	for p := 1; p <= b; p++ {
		p2 := pulse.Prev2(p)
		for pi := p2; pi < p; pi++ {
			s.tracked[pi] = append(s.tracked[pi], p)
		}
		if p2 == 0 {
			s.barrier = append(s.barrier, p)
			s.isBarrier[p] = true
		} else {
			q := pulse.Prev(p)
			k := regKey(p2, q)
			s.regAt[k] = append(s.regAt[k], p)
		}
		s.coverLevel[p] = pulse.CoverLevel(p)
		if s.coverLevel[p] > s.MaxCoverLevel {
			s.MaxCoverLevel = s.coverLevel[p]
		}
	}
	return s
}

func regKey(pi, q int) int64 { return int64(pi)<<32 | int64(q) }

// Tracked returns the safety convergecasts for a virtual node of pulse π,
// ascending. Do not mutate.
func (s *Schedule) Tracked(pi int) []int {
	if pi < 0 || pi > s.B {
		panic(fmt.Sprintf("core: pulse %d outside schedule [0,%d]", pi, s.B))
	}
	return s.tracked[pi]
}

// RegisterSessions returns the sessions a virtual node of pulse π must
// join when its q-status resolves ready. Do not mutate.
func (s *Schedule) RegisterSessions(pi, q int) []int {
	return s.regAt[regKey(pi, q)]
}

// Barrier returns the originator pulses (prev2 = 0), ascending. Do not
// mutate.
func (s *Schedule) Barrier() []int { return s.barrier }

// IsBarrier reports whether p is an originator pulse.
func (s *Schedule) IsBarrier(p int) bool {
	return p >= 1 && p <= s.B && s.isBarrier[p]
}

// CoverLevel returns ℓ(p)+5, the cover level whose clusters gate pulse p.
func (s *Schedule) CoverLevel(p int) int {
	if p < 1 || p > s.B {
		panic(fmt.Sprintf("core: pulse %d outside schedule [1,%d]", p, s.B))
	}
	return s.coverLevel[p]
}

// Consumer reports whether a virtual node of pulse π is the consumer (top)
// of the q-status convergecast: π == prev2(q). The consumer deregisters
// session q (wave pulses) or completes the dereg barrier (originator
// pulses) when its q-status resolves.
func (s *Schedule) Consumer(pi, q int) bool { return pulse.Prev2(q) == pi }
