package graph

import (
	"fmt"
	"strconv"
	"strings"
)

// FromSpec builds a graph from a compact textual description, so CLIs and
// experiments can select any generator and size without code changes.
//
// Accepted forms (sizes are decimal; x separates dimensions):
//
//	path:<n>                 path graph
//	cycle:<n>                cycle
//	grid:<rows>x<cols>       2-D grid
//	grid3d:<x>x<y>x<z>       3-D grid (implicit CSR)
//	star:<n>                 star
//	tree:<n>                 complete binary tree
//	complete:<n>             K_n
//	er:n=<n>,m=<m>[,seed=<s>]   random connected (spanning tree + extras)
//	pa:n=<n>,m=<m>[,seed=<s>]   power-law preferential attachment (implicit)
//	ring:k=<k>,c=<c>         ring of k c-cliques joined by road edges (implicit)
//
// Implicit generators validate their size against the 32-bit id space and
// return a clear error instead of allocating.
func FromSpec(spec string) (*Graph, error) {
	kind, args, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("graph: spec %q has no ':' (want e.g. grid3d:100x100x100)", spec)
	}
	switch kind {
	case "path", "cycle", "star", "tree", "complete":
		n, err := strconv.Atoi(args)
		if err != nil {
			return nil, fmt.Errorf("graph: spec %q: bad size %q", spec, args)
		}
		switch kind {
		case "path":
			return Path(n), nil
		case "cycle":
			return Cycle(n), nil
		case "star":
			return Star(n), nil
		case "tree":
			return CompleteBinaryTree(n), nil
		default:
			return Complete(n), nil
		}
	case "grid":
		dims, err := specDims(spec, args, 2)
		if err != nil {
			return nil, err
		}
		return Grid(dims[0], dims[1]), nil
	case "grid3d":
		dims, err := specDims(spec, args, 3)
		if err != nil {
			return nil, err
		}
		return Grid3D(dims[0], dims[1], dims[2])
	case "er":
		kv, err := specKV(spec, args, "n", "m", "seed")
		if err != nil {
			return nil, err
		}
		return RandomConnected(kv["n"], kv["m"], uint64(kv["seed"])), nil
	case "pa":
		kv, err := specKV(spec, args, "n", "m", "seed")
		if err != nil {
			return nil, err
		}
		return PowerLaw(kv["n"], kv["m"], uint64(kv["seed"]))
	case "ring":
		kv, err := specKV(spec, args, "k", "c")
		if err != nil {
			return nil, err
		}
		return RingOfCliques(kv["k"], kv["c"])
	default:
		return nil, fmt.Errorf("graph: unknown generator %q in spec %q (want path|cycle|grid|grid3d|star|tree|complete|er|pa|ring)", kind, spec)
	}
}

// specDims parses "AxBxC"-style dimension lists of exactly want entries.
func specDims(spec, args string, want int) ([]int, error) {
	parts := strings.Split(args, "x")
	if len(parts) != want {
		return nil, fmt.Errorf("graph: spec %q wants %d 'x'-separated dimensions, got %q", spec, want, args)
	}
	dims := make([]int, want)
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("graph: spec %q: bad dimension %q", spec, p)
		}
		dims[i] = v
	}
	return dims, nil
}

// specKV parses "k=v,k=v" argument lists. Keys beyond the first two are
// optional and default to zero; unknown keys error.
func specKV(spec, args string, keys ...string) (map[string]int, error) {
	out := make(map[string]int, len(keys))
	known := make(map[string]bool, len(keys))
	for _, k := range keys {
		known[k] = true
		out[k] = 0
	}
	seen := make(map[string]bool)
	for _, part := range strings.Split(args, ",") {
		k, vs, ok := strings.Cut(part, "=")
		if !ok || !known[k] {
			return nil, fmt.Errorf("graph: spec %q: bad argument %q (want %s)", spec, part, strings.Join(keys, "=…,")+"=…")
		}
		if seen[k] {
			return nil, fmt.Errorf("graph: spec %q: duplicate argument %q", spec, k)
		}
		seen[k] = true
		v, err := strconv.Atoi(vs)
		if err != nil {
			return nil, fmt.Errorf("graph: spec %q: bad value %q for %s", spec, vs, k)
		}
		out[k] = v
	}
	for _, k := range keys[:2] {
		if !seen[k] {
			return nil, fmt.Errorf("graph: spec %q: missing required argument %s", spec, k)
		}
	}
	return out, nil
}
