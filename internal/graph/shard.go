package graph

import (
	"fmt"
	"sort"
)

// This file is the graph half of sharded multi-process execution: a
// contiguous node partitioner with greedy edge-cut refinement, Subrange
// sub-CSR views holding only one shard's adjacency rows, and the
// boundary-link table a shard uses to route cross-shard sends.
//
// Partitions are contiguous ranges [cuts[k], cuts[k+1]) rather than
// arbitrary node sets: contiguity keeps Owner() a binary search over K+1
// ints (no 10M-entry owner array), keeps Subrange a single CSR row copy,
// and matches the locality the implicit generators already have (grid3d
// neighbors differ by ±1/±X/±XY; ring-of-cliques neighbors are
// clique-local). The greedy refinement slides each cut within a balance
// window to the position with the fewest crossing edges, a METIS-lite
// one-dimensional relaxation that is exact for the cost model "contiguous
// cuts only".

// Partition is a contiguous K-way node partition: shard k owns the global
// nodes [Cuts()[k], Cuts()[k+1]).
type Partition struct {
	cuts []NodeID // len K+1; cuts[0] == 0, cuts[K] == n, strictly increasing
}

// PartitionContiguous partitions g's nodes into k contiguous shards.
// Cuts start at the link-balanced ideal positions (equal out-link mass per
// shard) and each slides within a balance window of ±max(1, n/8k) nodes to
// the position crossed by the fewest edges, ties resolved toward the
// smaller position. Crossing counts come from the CSR alone — implicit
// generators need not materialize an edge table. k is clamped to [1, n].
func PartitionContiguous(g *Graph, k int) Partition {
	if !g.final {
		panic("graph: PartitionContiguous before Finalize")
	}
	if g.sub {
		panic("graph: PartitionContiguous on a Subrange view")
	}
	n := g.N()
	if n == 0 {
		panic("graph: PartitionContiguous on an empty graph")
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	cuts := make([]NodeID, k+1)
	cuts[k] = NodeID(n)
	if k == 1 {
		return Partition{cuts: cuts}
	}

	// cum[p] = out-links of nodes < p; cross[p] = edges {u,v}, u < p <= v,
	// i.e. the edges severed by cutting between p-1 and p. An edge {u,v}
	// with u < v crosses exactly the cut positions u+1..v, so a difference
	// array over positions integrates to the crossing counts.
	cum := make([]int64, n+1)
	cross := make([]int32, n+1)
	for v := 0; v < n; v++ {
		cum[v+1] = cum[v] + int64(g.Degree(NodeID(v)))
		for _, nb := range g.Neighbors(NodeID(v)) {
			if nb.Node > NodeID(v) {
				cross[v+1]++
				cross[nb.Node+1]--
			}
		}
	}
	for p := 1; p <= n; p++ {
		cross[p] += cross[p-1]
	}

	total := cum[n]
	slack := n / (8 * k)
	if slack < 1 {
		slack = 1
	}
	for j := 1; j < k; j++ {
		target := total * int64(j) / int64(k)
		ideal := sort.Search(n, func(p int) bool { return cum[p+1] >= target })
		lo, hi := ideal-slack, ideal+slack
		if min := int(cuts[j-1]) + 1; lo < min {
			lo = min
		}
		// Leave at least one node for each shard still to be cut off.
		if max := n - (k - j); hi > max {
			hi = max
		}
		if hi < lo {
			hi = lo
		}
		best := lo
		for p := lo + 1; p <= hi; p++ {
			if cross[p] < cross[best] {
				best = p
			}
		}
		cuts[j] = NodeID(best)
	}
	return Partition{cuts: cuts}
}

// PartitionFromCuts rebuilds a Partition from its cut positions (the form
// a coordinator ships to workers). It validates shape: cuts[0] == 0 and
// strictly increasing.
func PartitionFromCuts(cuts []NodeID) Partition {
	if len(cuts) < 2 || cuts[0] != 0 {
		panic(fmt.Sprintf("graph: malformed partition cuts %v", cuts))
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			panic(fmt.Sprintf("graph: non-increasing partition cuts %v", cuts))
		}
	}
	out := make([]NodeID, len(cuts))
	copy(out, cuts)
	return Partition{cuts: out}
}

// K returns the number of shards.
func (p Partition) K() int { return len(p.cuts) - 1 }

// Cuts returns the K+1 cut positions. The returned slice must not be
// mutated.
func (p Partition) Cuts() []NodeID { return p.cuts }

// Range returns the node range [lo, hi) owned by shard k.
func (p Partition) Range(k int) (lo, hi NodeID) { return p.cuts[k], p.cuts[k+1] }

// Owner returns the shard owning node v, by binary search over the cuts.
func (p Partition) Owner(v NodeID) int {
	lo, hi := 0, p.K()-1
	for lo < hi {
		mid := int(uint(lo+hi+1) >> 1)
		if p.cuts[mid] <= v {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// CrossLinks returns the number of directed links whose endpoints fall in
// different shards — the frame traffic a sharded run will carry per
// full sweep of the link set.
func (p Partition) CrossLinks(g *Graph) int {
	cross := 0
	for v := NodeID(0); int(v) < g.N(); v++ {
		o := p.Owner(v)
		for _, nb := range g.Neighbors(v) {
			if p.Owner(nb.Node) != o {
				cross++
			}
		}
	}
	return cross
}

// Subrange returns a finalized sub-CSR view holding only the adjacency
// rows of the global nodes [lo, hi). NodeIDs stay global (N() is
// unchanged; NodeBase()/NLocal() describe the window) while LinkIDs are
// renumbered local — link 0 is the first out-link of node lo — so engine
// per-link arrays are sized by the shard, not the whole graph.
// ReverseLink returns -1 for boundary links (destination outside the
// window); their return paths live on the destination's shard.
//
// The view copies its rows (O(local links) retained) so the caller can
// drop the whole graph after carving its shard. The edge table is not
// carried over: M() reports 0 and Neighbor.Edge values are retained as
// opaque global ids; workloads that need edge weights must run unsharded.
func (g *Graph) Subrange(lo, hi NodeID) *Graph {
	if !g.final {
		panic("graph: Subrange before Finalize")
	}
	if g.sub {
		panic("graph: Subrange of a Subrange view")
	}
	if lo < 0 || int(hi) > g.n || lo >= hi {
		panic(fmt.Sprintf("graph: Subrange [%d,%d) out of range [0,%d)", lo, hi, g.n))
	}
	nl := int(hi - lo)
	base := g.off[lo]
	flat := make([]Neighbor, g.off[hi]-base)
	copy(flat, g.flat[base:g.off[hi]])
	off := make([]int32, nl+1)
	for i := 0; i <= nl; i++ {
		off[i] = g.off[int(lo)+i] - base
	}
	rev := make([]LinkID, len(flat))
	for i := range flat {
		flat[i].Link = LinkID(i)
		if d := flat[i].Node; d >= lo && d < hi {
			rev[i] = g.rev[int32(i)+base] - LinkID(base)
		} else {
			rev[i] = -1
		}
	}
	return &Graph{
		n:        g.n,
		final:    true,
		sub:      true,
		nodeBase: lo,
		nLocal:   nl,
		flat:     flat,
		off:      off,
		rev:      rev,
	}
}

// BoundaryLink is one cross-shard out-link of a Subrange view: the local
// link id and the (remote) global destination node.
type BoundaryLink struct {
	Link LinkID
	Dst  NodeID
}

// BoundaryLinks lists the view's cross-shard out-links in ascending local
// link order. Whole graphs have none.
func (g *Graph) BoundaryLinks() []BoundaryLink {
	if !g.sub {
		return nil
	}
	var out []BoundaryLink
	for l, r := range g.rev {
		if r < 0 {
			out = append(out, BoundaryLink{Link: LinkID(l), Dst: g.flat[l].Node})
		}
	}
	return out
}

// Footprint returns the exact retained size in bytes of the graph's
// arrays — closed-form accounting that per-shard footprint reports use
// when in-process workers share one heap and a settled-heap probe would
// measure their neighbors too.
func (g *Graph) Footprint() int64 {
	return int64(len(g.flat))*12 + int64(len(g.off))*4 + int64(len(g.rev))*4 +
		int64(len(g.edgeU))*4 + int64(len(g.edgeV))*4 + int64(len(g.weights))*8
}
