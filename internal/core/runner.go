package core

import (
	"fmt"

	"repro/internal/async"
	"repro/internal/cover"
	"repro/internal/gather"
	"repro/internal/graph"
	"repro/internal/reg"
	"repro/internal/syncrun"
)

// Config describes one synchronized run (the Theorem 5.5 setting: the
// pulse bound is known, covers are given or built up front).
type Config struct {
	// Graph is the network.
	Graph *graph.Graph
	// Bound B: the synchronous algorithm must send only at pulses 0..B-1.
	// Exceeding it panics (it is a correctness contract, Appendix B).
	Bound int
	// Adversary controls message delays; nil means SeededRandom{1}.
	Adversary async.Adversary
	// Layered optionally supplies prebuilt covers (they must reach level
	// ℓ(B)+5); nil builds them from the graph.
	Layered *cover.Layered
}

// BuildLayeredFor constructs the layered covers the synchronizer needs for
// pulse bound b on g. Building them is the synchronizer's initialization
// (§4.6 / Theorem 4.22 do it asynchronously; this implementation builds
// them centrally and reports their cost separately — see DESIGN.md).
func BuildLayeredFor(g *graph.Graph, b int) *cover.Layered {
	sched := NewSchedule(b)
	return cover.BuildLayered(g, 1<<uint(sched.MaxCoverLevel), nil)
}

// Synchronize runs the synchronous algorithm produced by mk under the
// deterministic synchronizer on cfg.Graph and returns the asynchronous
// run's measurements. The outputs are exactly those of the synchronous
// execution (Theorem 5.2).
func Synchronize(cfg Config, mk func(id graph.NodeID) syncrun.Handler) async.Result {
	if cfg.Graph == nil {
		panic("core: Config.Graph is nil")
	}
	if cfg.Bound < 1 {
		panic(fmt.Sprintf("core: Config.Bound must be >= 1, got %d", cfg.Bound))
	}
	adv := cfg.Adversary
	if adv == nil {
		adv = async.SeededRandom{Seed: 1}
	}
	sched := NewSchedule(cfg.Bound)
	layered := cfg.Layered
	if layered == nil {
		layered = BuildLayeredFor(cfg.Graph, cfg.Bound)
	}
	if layered.MaxLevel() < sched.MaxCoverLevel {
		panic(fmt.Sprintf("core: layered covers reach level %d, need %d",
			layered.MaxLevel(), sched.MaxCoverLevel))
	}
	sim := async.New(cfg.Graph, adv, func(id graph.NodeID) async.Handler {
		return NewNodeHandler(sched, layered, mk(id))
	})
	return sim.Run()
}

// NewNodeHandler wires one node's synchronizer stack: the core engine plus
// one registration module and one barrier module per cover level in use.
// Callers may register additional modules on unused protos of the returned
// Mux before the simulation starts.
func NewNodeHandler(sched *Schedule, layered *cover.Layered, algo syncrun.Handler) *async.Mux {
	c := &nodeCore{
		sched:       sched,
		layered:     layered,
		algo:        algo,
		regMods:     make(map[int]*reg.Module),
		barMods:     make(map[int]*gather.Module),
		vnodes:      make(map[int]*vnode),
		recvd:       make(map[int][]syncrun.Incoming),
		recvdClosed: make(map[int]bool),
	}
	mux := async.NewMux()
	mux.Register(ProtoAlgo, c)
	mux.Register(ProtoTree, c)
	stagePulse := func(session int) int { return session }
	stageBarrier := func(session int) int { return session / 2 }
	for lvl := 5; lvl <= sched.MaxCoverLevel; lvl++ {
		cov := layered.Level(lvl)
		rm := reg.New(ProtoRegBase+async.Proto(lvl), cov, c, stagePulse)
		bm := gather.New(ProtoBarrierBase+async.Proto(lvl), cov, c, stageBarrier)
		c.regMods[lvl] = rm
		c.barMods[lvl] = bm
		mux.Register(ProtoRegBase+async.Proto(lvl), rm)
		mux.Register(ProtoBarrierBase+async.Proto(lvl), bm)
	}
	return mux
}
