package reg

import (
	"fmt"
	"sort"

	"repro/internal/async"
	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/wire"
)

// NaiveModule is the "natural attempt" of §3.2: every registration and
// deregistration is routed hop-by-hop to the cluster root, which counts
// them and broadcasts a Go-Ahead when they match. The paper points out
// that this is essentially the scheme of [AP90a] and that it congests: an
// edge below which Θ(n) clients register carries Θ(n) messages serially,
// so operations take Ω(n) time even on shallow trees. Experiment E7
// measures exactly that against the wave-based Module.
type NaiveModule struct {
	proto   async.Proto
	cov     *cover.Cover
	cb      Callbacks
	stageOf func(int) int

	// Per (cluster, session) relay and root state.
	states map[key]*naiveState
}

type naiveState struct {
	// root-only bookkeeping
	regs, deregs int
	goIssued     bool
	// relay bookkeeping: children through which clients below registered
	// (Go-Ahead is broadcast along these).
	downRoutes map[graph.NodeID]bool
	local      localState
}

// Wire kinds of the naive scheme (namespace: this module's proto); these
// deliberately reuse the wave module's numeric space — the two schemes
// never share a proto. Payloads carry A = cluster, B = session, and
// C = origin (the registering client; acks route back toward it).
const (
	nkReg wire.Kind = iota + 1
	nkRegAck
	nkDereg
	nkDeregAck
	nkGo
)

// naivePayload is the decoded form of one naive-scheme message.
type naivePayload struct {
	Kind    wire.Kind
	Cluster cover.ClusterID
	Session int
	Origin  graph.NodeID
}

func encNaive(p naivePayload) wire.Body {
	return wire.Body{Kind: p.Kind, A: int64(p.Cluster), B: int64(p.Session), C: int64(p.Origin)}
}

func decNaive(b wire.Body) naivePayload {
	return naivePayload{Kind: b.Kind, Cluster: cover.ClusterID(b.A), Session: int(b.B), Origin: graph.NodeID(b.C)}
}

var _ async.Module = (*NaiveModule)(nil)

// NewNaive builds the baseline registration module.
func NewNaive(proto async.Proto, cov *cover.Cover, cb Callbacks, stageOf func(int) int) *NaiveModule {
	if stageOf == nil {
		stageOf = func(int) int { return 0 }
	}
	return &NaiveModule{
		proto:   proto,
		cov:     cov,
		cb:      cb,
		stageOf: stageOf,
		states:  make(map[key]*naiveState),
	}
}

// Start implements async.Module.
func (m *NaiveModule) Start(*async.Node) {}

// Ack implements async.Module.
func (m *NaiveModule) Ack(*async.Node, graph.NodeID, async.Msg) {}

func (m *NaiveModule) state(k key) *naiveState {
	st := m.states[k]
	if st == nil {
		st = &naiveState{downRoutes: make(map[graph.NodeID]bool)}
		m.states[k] = st
	}
	return st
}

func (m *NaiveModule) send(n *async.Node, to graph.NodeID, p naivePayload) {
	n.Send(to, async.Msg{Proto: m.proto, Stage: m.stageOf(p.Session), Body: encNaive(p)})
}

// Register sends this node's registration toward the root.
func (m *NaiveModule) Register(n *async.Node, c cover.ClusterID, session int) {
	st := m.state(key{c: c, s: session})
	if st.local != idle {
		panic(fmt.Sprintf("reg: naive double-register at %d", n.ID()))
	}
	st.local = registering
	m.handleReg(n, naivePayload{Kind: nkReg, Cluster: c, Session: session, Origin: n.ID()}, st)
}

// Deregister sends this node's deregistration toward the root.
func (m *NaiveModule) Deregister(n *async.Node, c cover.ClusterID, session int) {
	st := m.state(key{c: c, s: session})
	if st.local != registered {
		panic(fmt.Sprintf("reg: naive deregister before registered at %d", n.ID()))
	}
	st.local = deregistered
	m.handleDereg(n, naivePayload{Kind: nkDereg, Cluster: c, Session: session, Origin: n.ID()}, st)
}

// Recv implements async.Module.
func (m *NaiveModule) Recv(n *async.Node, from graph.NodeID, msg async.Msg) {
	p := decNaive(msg.Body)
	st := m.state(key{c: p.Cluster, s: p.Session})
	switch p.Kind {
	case nkReg:
		st.downRoutes[from] = true
		m.handleReg(n, p, st)
	case nkDereg:
		m.handleDereg(n, p, st)
	case nkRegAck, nkDeregAck:
		m.routeDown(n, p, st)
	case nkGo:
		m.handleGo(n, p, st)
	default:
		panic(fmt.Sprintf("reg: naive unknown kind %d", p.Kind))
	}
}

func (m *NaiveModule) handleReg(n *async.Node, p naivePayload, st *naiveState) {
	cl := m.cov.Cluster(p.Cluster)
	if cl.Root == n.ID() {
		st.regs++
		if p.Origin == n.ID() {
			m.finishReg(n, p, st)
		} else {
			m.send(n, m.nextHopDown(n, p), naivePayload{Kind: nkRegAck, Cluster: p.Cluster, Session: p.Session, Origin: p.Origin})
		}
		return
	}
	par, _ := cl.ParentOf(n.ID())
	m.send(n, par, p)
}

func (m *NaiveModule) handleDereg(n *async.Node, p naivePayload, st *naiveState) {
	cl := m.cov.Cluster(p.Cluster)
	if cl.Root == n.ID() {
		st.deregs++
		if p.Origin == n.ID() {
			m.finishDereg(n, p, st)
		} else {
			m.send(n, m.nextHopDown(n, p), naivePayload{Kind: nkDeregAck, Cluster: p.Cluster, Session: p.Session, Origin: p.Origin})
		}
		m.rootCheckGo(n, p, st)
		return
	}
	par, _ := cl.ParentOf(n.ID())
	m.send(n, par, p)
}

// rootCheckGo issues the broadcast when registrations match
// deregistrations. Matching counts with regs > 0 approximates "everyone
// who will register has deregistered" — the naive scheme cannot know more,
// which is part of its weakness; the experiment drives it so that counts
// match exactly once.
func (m *NaiveModule) rootCheckGo(n *async.Node, p naivePayload, st *naiveState) {
	if st.goIssued || st.regs == 0 || st.regs != st.deregs {
		return
	}
	st.goIssued = true
	m.handleGo(n, naivePayload{Kind: nkGo, Cluster: p.Cluster, Session: p.Session}, st)
}

func (m *NaiveModule) handleGo(n *async.Node, p naivePayload, st *naiveState) {
	if st.local == deregistered {
		st.local = free
		m.cb.GoAhead(n, p.Cluster, p.Session)
	}
	var outs []graph.NodeID
	for ch := range st.downRoutes {
		outs = append(outs, ch)
	}
	sort.Slice(outs, func(i, j int) bool { return outs[i] < outs[j] })
	for _, ch := range outs {
		m.send(n, ch, naivePayload{Kind: nkGo, Cluster: p.Cluster, Session: p.Session})
	}
}

// routeDown forwards an ack toward its origin along the cluster tree.
func (m *NaiveModule) routeDown(n *async.Node, p naivePayload, st *naiveState) {
	if p.Origin == n.ID() {
		switch p.Kind {
		case nkRegAck:
			m.finishReg(n, p, st)
		case nkDeregAck:
			m.finishDereg(n, p, st)
		}
		return
	}
	m.send(n, m.nextHopDown(n, p), p)
}

func (m *NaiveModule) finishReg(n *async.Node, p naivePayload, st *naiveState) {
	st.local = registered
	m.cb.Registered(n, p.Cluster, p.Session)
}

func (m *NaiveModule) finishDereg(*async.Node, naivePayload, *naiveState) {
	// Deregistration acks carry no client-visible event; the client waits
	// for the Go-Ahead broadcast.
}

// nextHopDown returns this node's child on the tree path toward the
// origin.
func (m *NaiveModule) nextHopDown(n *async.Node, p naivePayload) graph.NodeID {
	cl := m.cov.Cluster(p.Cluster)
	v := p.Origin
	for {
		par, ok := cl.ParentOf(v)
		if !ok {
			panic(fmt.Sprintf("reg: naive route-down from %d missed origin %d", n.ID(), p.Origin))
		}
		if par == n.ID() {
			return v
		}
		v = par
	}
}

// LocalDone reports whether this node's client has been freed.
func (m *NaiveModule) LocalDone(c cover.ClusterID, session int) bool {
	st := m.states[key{c: c, s: session}]
	return st != nil && st.local == free
}
