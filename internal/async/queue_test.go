package async

import (
	"math/rand"
	"sort"
	"testing"
)

// TestEventQueueOrder drives the calendar queue with a randomized
// open-system workload — pops interleaved with pushes at now+d, d in (0,1]
// like the simulator — and checks it yields exactly the (t, seq) order of a
// reference sort.
func TestEventQueueOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var q eventQueue
	var seq uint64
	var now float64
	var pushed, popped []event

	push := func(d float64) {
		ev := event{t: now + d, seq: seq}
		seq++
		pushed = append(pushed, ev)
		q.push(ev)
	}
	// Seed a burst, then run pop-then-maybe-push cycles.
	for i := 0; i < 50; i++ {
		push(rng.Float64()*0.999 + 0.001)
	}
	for !q.empty() {
		ev := q.pop()
		if ev.t < now {
			t.Fatalf("time went backwards: %g after %g", ev.t, now)
		}
		now = ev.t
		popped = append(popped, ev)
		if len(pushed) < 5000 {
			for k := rng.Intn(3); k > 0; k-- {
				switch rng.Intn(4) {
				case 0:
					push(1.0) // maximal delay: lands exactly one unit out
				case 1:
					push(1.0 / (1 << 16)) // near-instant
				default:
					push(rng.Float64()*0.999 + 0.001)
				}
			}
		}
	}
	if len(popped) != len(pushed) {
		t.Fatalf("popped %d events, pushed %d", len(popped), len(pushed))
	}
	// The pop sequence must equal the (t, seq)-sorted push sequence.
	sort.Slice(pushed, func(i, j int) bool { return evLess(pushed[i], pushed[j]) })
	for i := range pushed {
		if popped[i].seq != pushed[i].seq || popped[i].t != pushed[i].t {
			t.Fatalf("pop %d = {t:%g seq:%d}, want {t:%g seq:%d}",
				i, popped[i].t, popped[i].seq, pushed[i].t, pushed[i].seq)
		}
	}
}

// TestEventQueueOverflow exercises the fallback path for events beyond the
// one-unit wheel horizon (only reachable by adversaries that break the
// delay contract; the queue must still order correctly).
func TestEventQueueOverflow(t *testing.T) {
	var q eventQueue
	for i := 0; i < 200; i++ {
		q.push(event{t: float64(i%17) * 1.7, seq: uint64(i)})
	}
	var last event
	first := true
	for !q.empty() {
		ev := q.pop()
		if !first && evLess(ev, last) {
			t.Fatalf("out of order: {t:%g seq:%d} after {t:%g seq:%d}",
				ev.t, ev.seq, last.t, last.seq)
		}
		last, first = ev, false
	}
}

// BenchmarkEventQueuePushPop measures the queue's steady-state hold
// pattern (one push per pop, delays spread over the unit interval), the
// simulator's dominant operation mix.
func BenchmarkEventQueuePushPop(b *testing.B) {
	var q eventQueue
	rng := rand.New(rand.NewSource(7))
	delays := make([]float64, 1024)
	for i := range delays {
		delays[i] = rng.Float64()*0.999 + 0.001
	}
	now := 0.0
	var seq uint64
	for i := 0; i < 512; i++ {
		q.push(event{t: now + delays[i], seq: seq})
		seq++
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := q.pop()
		now = ev.t
		q.push(event{t: now + delays[i&1023], seq: seq})
		seq++
	}
}
