package core

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/async"
	"repro/internal/graph"
	"repro/internal/syncrun"
	"repro/internal/wire"
)

// tracingAlgo wraps bfsAlgo and records every send it performs, tagged
// with the pulse, into a shared log. Used to check the strong form of
// Theorem 5.2: the synchronized execution sends exactly the synchronous
// execution's message multiset, pulse by pulse.
type tracingAlgo struct {
	inner syncrun.Handler
	log   *[]string
	me    graph.NodeID
}

type tracingAPI struct {
	syncrun.API
	t     *tracingAlgo
	pulse int
}

func (a *tracingAPI) Send(to graph.NodeID, body wire.Body) {
	*a.t.log = append(*a.t.log, fmt.Sprintf("p%d %d->%d %v", a.pulse, a.t.me, to, body))
	a.API.Send(to, body)
}

func (h *tracingAlgo) Init(n syncrun.API) {
	h.me = n.ID()
	h.inner.Init(&tracingAPI{API: n, t: h, pulse: 0})
}

func (h *tracingAlgo) Pulse(n syncrun.API, p int, recvd []syncrun.Incoming) {
	h.inner.Pulse(&tracingAPI{API: n, t: h, pulse: p}, p, recvd)
}

func sortedTrace(log []string) []string {
	out := append([]string(nil), log...)
	sort.Strings(out)
	return out
}

// TestTheorem52TraceEquivalence: the full (pulse, sender, receiver, body)
// multiset of algorithm messages must be identical between the lockstep
// run and the synchronized asynchronous run, for every adversary.
func TestTheorem52TraceEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		mk   func() syncrun.Handler
	}{
		{"bfs-grid", graph.Grid(4, 4), func() syncrun.Handler { return &bfsAlgo{src: 0} }},
		{"echo-path", graph.Path(9), func() syncrun.Handler { return &echoAlgo{root: 0} }},
		{"msbfs-er", graph.RandomConnected(18, 40, 3), func() syncrun.Handler {
			return &msBFSAlgo{sources: []graph.NodeID{0, 9}}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var syncLog []string
			mkSync := func(graph.NodeID) syncrun.Handler {
				return &tracingAlgo{inner: tc.mk(), log: &syncLog}
			}
			sres := syncrun.New(tc.g, mkSync).Run()
			want := sortedTrace(syncLog)

			for _, adv := range async.StandardAdversaries(tc.g.N(), 83) {
				var asyncLog []string
				mkAsync := func(graph.NodeID) syncrun.Handler {
					return &tracingAlgo{inner: tc.mk(), log: &asyncLog}
				}
				Synchronize(Config{Graph: tc.g, Bound: sres.Rounds + 2, Adversary: adv}, mkAsync)
				got := sortedTrace(asyncLog)
				if len(got) != len(want) {
					t.Fatalf("%s: %d messages vs %d", adv.Name(), len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s: trace diverges at %d: %q vs %q", adv.Name(), i, got[i], want[i])
					}
				}
			}
		})
	}
}

func TestTheorem54UnknownBound(t *testing.T) {
	// chainAlgo on a 24-path needs 24 pulses; doubling tries 8, 16, 32.
	g := graph.Path(24)
	mk := func(graph.NodeID) syncrun.Handler { return &chainAlgo{} }
	res, bound := SynchronizeUnknownBound(g, async.SeededRandom{Seed: 5}, mk)
	if bound != 32 {
		t.Fatalf("final bound %d, want 32", bound)
	}
	for v := 0; v < g.N(); v++ {
		if res.Outputs[graph.NodeID(v)] != v {
			t.Fatalf("node %d output %v", v, res.Outputs[graph.NodeID(v)])
		}
	}
	// Σ2^t accounting (see autobound.go): the failed attempts at bounds 8
	// and 16 are billed too, so the doubling totals must strictly exceed a
	// fresh run at the discovered bound — in messages, time, and the
	// merged per-protocol breakdown — while staying within the doubling
	// argument's small constant factor.
	fresh := Synchronize(Config{Graph: g, Bound: 32, Adversary: async.SeededRandom{Seed: 5}}, mk)
	if res.Msgs <= fresh.Msgs {
		t.Fatalf("doubling msgs %d do not include failed attempts (final attempt alone: %d)", res.Msgs, fresh.Msgs)
	}
	if res.Msgs > 4*fresh.Msgs {
		t.Fatalf("doubling msgs %d exceed the Σ2^t envelope of final-run %d", res.Msgs, fresh.Msgs)
	}
	if res.Time <= fresh.Time {
		t.Fatalf("doubling time %g does not include failed attempts (final attempt alone: %g)", res.Time, fresh.Time)
	}
	// An aborted attempt can have sends still in flight, so acks may trail
	// msgs — but never exceed them, and the failed attempts' acks count.
	if res.Acks > res.Msgs || res.Acks <= fresh.Acks {
		t.Fatalf("acks %d implausible (msgs %d, final attempt alone %d)", res.Acks, res.Msgs, fresh.Acks)
	}
	var perProtoSum uint64
	for _, n := range res.PerProto {
		perProtoSum += n
	}
	if perProtoSum != res.Msgs {
		t.Fatalf("merged PerProto sums to %d, want Msgs %d", perProtoSum, res.Msgs)
	}
	if res.PerProto[ProtoAlgo] <= fresh.PerProto[ProtoAlgo] {
		t.Fatalf("PerProto[algo] %d not merged across attempts (final attempt alone: %d)",
			res.PerProto[ProtoAlgo], fresh.PerProto[ProtoAlgo])
	}
}
