package core

import (
	"testing"

	"repro/internal/wire"
)

// TestSynchronizerCodecRoundTrips covers every synchronizer payload kind:
// replies, status reports, Go-Aheads, and the zero-copy algo framing.
func TestSynchronizerCodecRoundTrips(t *testing.T) {
	for _, m := range []replyMsg{{Pulse: 0, Chosen: true}, {Pulse: 63, Chosen: false}} {
		if got := decReply(encReply(m)); got != m {
			t.Fatalf("reply round trip: %+v vs %+v", got, m)
		}
	}
	for _, m := range []statusMsg{{Q: 4, ChildPulse: 3, Ready: true}, {Q: 64, ChildPulse: 64, Ready: false}} {
		if got := decStatus(encStatus(m)); got != m {
			t.Fatalf("status round trip: %+v vs %+v", got, m)
		}
	}
	for _, m := range []gaMsg{{Q: 8, ChildPulse: 5}, {Q: 1, ChildPulse: 0}} {
		if got := decGA(encGA(m)); got != m {
			t.Fatalf("ga round trip: %+v vs %+v", got, m)
		}
	}
	inner := wire.Body{Kind: 77, A: 1, B: -2, C: 3, D: 4}
	framed := frameAlgo(9, inner)
	if framed.Kind != kindAlgo || framed.Sub != 77 {
		t.Fatalf("frame fields: %+v", framed)
	}
	pulse, got := framed.Unframe()
	if pulse != 9 || !wire.Equal(got, inner) {
		t.Fatalf("algo framing round trip: pulse %d, %+v", pulse, got)
	}
}

// TestFrameAlgoRejectsSegments pins the retention contract: the
// synchronizer defers algorithm payloads past the carrying message's
// lifecycle, so seg-carrying payloads must be refused at the send side.
func TestFrameAlgoRejectsSegments(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for seg-carrying algorithm payload")
		}
	}()
	var a wire.Arena
	seg, _ := a.Alloc(4)
	frameAlgo(1, wire.Body{Kind: 1, Seg: seg})
}
