package async

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/wire"
)

// Shard-staged execution: the engine half of multi-process sharded runs
// (internal/shard owns the sockets and the coordinator).
//
// One Sim is built per shard over a graph.Subrange view; BeginShard flips
// it into shard-staged mode, where every schedule call parks in a log
// keyed by its triggering event's (t, seq) instead of entering the local
// queue. The cross-process protocol then alternates:
//
//   - ShardInit / ShardRunWindow execute local handler code, staging all
//     schedule calls;
//   - the worker flushes the staged log (ShardStaged) to the coordinator,
//     which k-way merges every shard's log by (trigT, trigSeq) — exactly
//     the ModeMulti barrier merge, across processes — and grants event
//     seqs in the merged order;
//   - ShardGrant pushes locally-owned events with their granted seqs,
//     ShardInject admits remote-born events routed here;
//   - the coordinator opens the next window at the global minimum pending
//     timestamp (ShardPendingMinT over all shards and in-flight grants).
//
// Because the serial engine also assigns seqs in (t, seq)-sorted order of
// the triggering events within each window (every schedule call lands at
// or past the window's end — the bounded-lag safety argument), the grant
// order reproduces serial seq assignment exactly, making per-shard
// Results, outputs, and traces merge to the byte-identical serial run.

// Exported event kinds for the cross-shard frame plane.
const (
	ShardEvDeliver   = evDeliver
	ShardEvAckArrive = evAckArrive
)

// ShardStagedView is one staged schedule call as the shard worker ships
// it: the merge key (TrigT, TrigSeq), the event's own fields, and the
// global node whose shard must execute it.
type ShardStagedView struct {
	TrigT   float64
	TrigSeq uint64
	T       float64
	Kind    uint8
	Src     graph.NodeID
	Dst     graph.NodeID
	Msg     Msg
	Owner   graph.NodeID
}

// BeginShard flips the engine into shard-staged mode. The Sim must have
// been built over the shard's Subrange view (or the whole graph when
// K=1). Incompatible with Run, DenseOutputs, and the speculative mode.
func (s *Sim) BeginShard() {
	if s.running {
		panic("async: BeginShard on a running engine")
	}
	if s.denseOut {
		panic("async: shard mode transports outputs as typed bodies; DenseOutputs is unsupported")
	}
	s.running = true
	s.shardMode = true
}

// ShardInit runs every local handler's Init in ascending node order,
// staging the schedule calls keyed (0, global node id) — globally unique
// because shards partition the node set, and merging to exactly the
// serial engine's init order because it issues schedule calls in
// ascending node order too.
func (s *Sim) ShardInit() {
	for i := range s.handlers {
		s.direct.curSeq = uint64(s.nodeBase) + uint64(i)
		s.handlers[i].Init(&s.nodes[i])
	}
	s.direct.curSeq = 0
	s.direct.now = 0
}

// ShardRunWindow drains every local event in [wStart, wStart+MinDelay)
// through the serial engine's processEvent, staging all schedule calls.
func (s *Sim) ShardRunWindow(wStart float64) {
	wEnd := wStart + s.lookahead
	for {
		ev, ok := s.events.popBefore(wEnd)
		if !ok {
			return
		}
		if ev.t < s.now {
			panic(fmt.Sprintf("async: time went backwards: %g < %g", ev.t, s.now))
		}
		s.now = ev.t
		s.steps++
		if s.steps > s.maxEvents {
			panic(fmt.Sprintf("async: exceeded %d events at t=%g (livelock?)", s.maxEvents, s.now))
		}
		s.direct.processEvent(&ev)
	}
}

// ShardPendingMinT returns the earliest timestamp still queued locally
// (staged-but-ungranted events are the coordinator's to account for).
func (s *Sim) ShardPendingMinT() (float64, bool) { return s.events.minT() }

// ShardStagedCount returns the staged-log length since the last flush.
func (s *Sim) ShardStagedCount() int { return len(s.shardLog) }

// ShardStaged returns staged entry i. Entries are sorted by (TrigT,
// TrigSeq): windows process events in that order and a single event's
// calls share its key in call order.
func (s *Sim) ShardStaged(i int) ShardStagedView {
	se := &s.shardLog[i]
	return ShardStagedView{
		TrigT:   se.trigT,
		TrigSeq: se.trigSeq,
		T:       se.ev.t,
		Kind:    se.ev.kind,
		Src:     se.ev.src,
		Dst:     se.ev.dst,
		Msg:     se.ev.msg,
		Owner:   ownerOf(se.ev),
	}
}

// ShardGrant applies the coordinator's seq grants, aligned by index with
// the staged log: local entries enter the queue with their granted seq;
// remote entries (already extracted as frames, remote[i] true) are
// dropped — their grant is consumed by the destination shard's
// ShardInject. The log resets for the next window.
func (s *Sim) ShardGrant(seqs []uint64, remote []bool) {
	if len(seqs) != len(s.shardLog) || len(remote) != len(s.shardLog) {
		panic(fmt.Sprintf("async: grant of %d/%d seqs for %d staged entries",
			len(seqs), len(remote), len(s.shardLog)))
	}
	for i := range s.shardLog {
		if remote[i] {
			continue
		}
		ev := s.shardLog[i].ev
		ev.seq = seqs[i]
		s.events.push(ev)
	}
	// Release the staged Msg values (and any segment handles already
	// extracted) for the garbage collector's sake: the log is long-lived.
	for i := range s.shardLog {
		s.shardLog[i] = stagedEv{}
	}
	s.shardLog = s.shardLog[:0]
}

// ShardInject admits one remote-born event routed to this shard. The
// local link id is recomputed here: a delivery's forward link lives on
// the sender's shard, so the event instead carries the complement of the
// local back link (dst→src), which processEvent recognizes by sign; an
// ack-return's forward link (src→dst) is local to this shard, the
// original sender's.
func (s *Sim) ShardInject(seq uint64, t float64, kind uint8, src, dst graph.NodeID, m Msg) {
	var link graph.LinkID
	switch kind {
	case evDeliver:
		back := s.g.LinkBetween(dst, src)
		if back < 0 {
			panic(fmt.Sprintf("async: remote delivery %d->%d along a non-edge", src, dst))
		}
		link = ^back
	case evAckArrive:
		link = s.g.LinkBetween(src, dst)
		if link < 0 {
			panic(fmt.Sprintf("async: remote ack %d->%d along a non-edge", src, dst))
		}
	default:
		panic(fmt.Sprintf("async: remote event of unknown kind %d", kind))
	}
	s.events.push(event{t: t, seq: seq, link: link, src: src, dst: dst, kind: kind, msg: m})
}

// ShardResult materializes this shard's slice of the run: counters and
// outputs cover local nodes only; the coordinator merges across shards.
func (s *Sim) ShardResult() Result { return s.result() }

// ShardRawOutputs visits every local node that produced an output, with
// its outval-encoded body — the form the RESULT message transports, so
// the coordinator's DecodeSlot reproduces the serial engine's decoded
// map bit for bit. Outputs that outval cannot encode (the boxed escape
// slot) and segment-carrying bodies have no cross-process representation
// and error out.
func (s *Sim) ShardRawOutputs(fn func(id graph.NodeID, b wire.Body) error) error {
	outB := s.loadedOutBodies()
	for i, has := range s.hasOut {
		if !has {
			continue
		}
		var b wire.Body
		if outB != nil {
			b = outB[i]
		}
		if b.Kind == 0 {
			id := s.nodeBase + graph.NodeID(i)
			return fmt.Errorf("async: node %d output a boxed value; shard mode transports only outval-encodable outputs", id)
		}
		if b.Seg.Len() != 0 {
			return fmt.Errorf("async: node %d output a segment-carrying body; segments do not outlive a shard run", s.nodeBase+graph.NodeID(i))
		}
		if err := fn(s.nodeBase+graph.NodeID(i), b); err != nil {
			return err
		}
	}
	return nil
}

// ShardSteps reports events processed so far (the coordinator sums and
// reports them; each shard also enforces its own MaxEvents cap).
func (s *Sim) ShardSteps() uint64 { return s.steps }

// Arena exposes the run's segment arena: the shard transport re-homes
// inbound frame segments into it and releases outbound ones after
// serialization, keeping the per-message lifecycle accounting intact
// (Live() returns to zero after a completed run).
func (s *Sim) Arena() *wire.Arena { return &s.arena }
