// Package decomp builds the k-separated weak-diameter network decomposition
// of Rozhon–Ghaffari (Theorem 4.20, Appendix C): O(log n) color classes,
// each a set of clusters pairwise more than k apart, each cluster with a
// Steiner tree of radius O(k·log³n) in G, and every edge of G appearing in
// O(log⁴n) Steiner trees overall.
//
// The builder follows the published phase/step schedule faithfully —
// b = ⌈log₂ n⌉ phases over label bits, each phase a sequence of grow-steps
// in which blue clusters BFS out to distance k and either absorb or kill
// the red nodes that propose — and is deterministic. It executes centrally
// (the asynchronous distributed construction of §4.5 lives in
// internal/abfs and reuses this package's step structure); DESIGN.md
// records this substitution.
//
// Builder state is dense and node-indexed — labels live in [0, n) so
// per-label state is slice-indexed, and the per-grow-step BFS uses
// epoch-stamped scratch buffers owned by the builder — while each Tree is
// sparse at every phase: build-phase membership is a flat open-addressed
// index over the tree's own nodes, so a growing tree costs O(tree size),
// not O(n), and many clusters can grow at once on a ten-million-node graph
// without multiplying dense arrays. No Go maps are allocated anywhere on
// the build path.
package decomp

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/graph"
)

// Tree is a rooted Steiner tree in G. Terminals are the cluster's member
// nodes; the tree may route through non-member (nonterminal) nodes.
//
// The representation has two phases, both O(tree size). While building,
// membership is a flat open-addressed index from node id to the node's
// position in the insertion-ordered node list, with depth/parent stored
// by position (allocated lazily on the first Attach, so singleton trees
// cost one struct) — O(1) expected Has and Attach with no dense per-graph
// arrays, so a partition growing many trees at once retains memory
// proportional to the sum of tree sizes, not clusters × n. Finalize packs
// the compact form: the sorted node list plus parallel depth/parent arrays
// and CSR child lists indexed by position. Post-finalize accessors resolve
// a node to its position by binary search (O(log size)). Mutation (Attach)
// is only legal before Finalize; ChildrenOf, Nodes, and Edges only after.
type Tree struct {
	Root graph.NodeID

	n      int
	size   int
	height int32
	final  bool

	// nodes lists the tree's nodes: insertion order until Finalize sorts
	// it ascending. nil while the tree is the root singleton.
	nodes []graph.NodeID

	// Build phase, parallel to nodes by insertion position; released by
	// Finalize. bdepth[i]/bparent[i] are the depth and parent node id of
	// nodes[i] (-1 at the root). htab is the open-addressed membership
	// index: linear probing over packed (node, position) words at ≤50%
	// load — a flat slice, not a Go map.
	bdepth  []int32
	bparent []int32
	htab    []int64 // (node << 32) | uint32(position); -1 = empty

	// Finalized compact state, parallel to nodes (positions 0..size-1).
	// The children of the node at position i are
	// childList[childOff[i]:childOff[i+1]], ascending.
	cdepth    []int32
	cparent   []graph.NodeID // -1 at the root
	childOff  []int32
	childList []graph.NodeID
}

// NewTree returns the singleton tree {root} over a graph of n nodes.
func NewTree(n int, root graph.NodeID) *Tree {
	if root < 0 || int(root) >= n {
		panic(fmt.Sprintf("decomp: tree root %d out of range [0,%d)", root, n))
	}
	return &Tree{Root: root, n: n, size: 1}
}

// hmix scrambles a node id into a table slot seed (variant of the 32-bit
// finalizer from MurmurHash3).
func hmix(key uint32) uint32 {
	key ^= key >> 16
	key *= 0x7feb352d
	key ^= key >> 15
	key *= 0x846ca68b
	key ^= key >> 16
	return key
}

// hfind returns v's position in the build-phase index, or -1. The table is
// never full (load ≤ 50%), so probing terminates at an empty slot.
func (t *Tree) hfind(v graph.NodeID) int32 {
	mask := uint32(len(t.htab) - 1)
	for i := hmix(uint32(v)) & mask; ; i = (i + 1) & mask {
		e := t.htab[i]
		if e < 0 {
			return -1
		}
		if graph.NodeID(e>>32) == v {
			return int32(uint32(e))
		}
	}
}

// hplace writes (v, pos) into the first free probe slot.
func (t *Tree) hplace(v graph.NodeID, pos int32) {
	mask := uint32(len(t.htab) - 1)
	i := hmix(uint32(v)) & mask
	for t.htab[i] >= 0 {
		i = (i + 1) & mask
	}
	t.htab[i] = int64(v)<<32 | int64(uint32(pos))
}

// hinsert records v at position pos, doubling the table when load would
// exceed 50%.
func (t *Tree) hinsert(v graph.NodeID, pos int32) {
	if 2*(len(t.nodes)+1) > len(t.htab) {
		old := t.htab
		t.htab = make([]int64, 2*len(old))
		for i := range t.htab {
			t.htab[i] = -1
		}
		for _, e := range old {
			if e >= 0 {
				t.hplace(graph.NodeID(e>>32), int32(uint32(e)))
			}
		}
	}
	t.hplace(v, pos)
}

// grow allocates the build-phase arrays on the first Attach.
func (t *Tree) grow() {
	t.nodes = append(make([]graph.NodeID, 0, 8), t.Root)
	t.bdepth = append(make([]int32, 0, 8), 0)
	t.bparent = append(make([]int32, 0, 8), -1)
	t.htab = make([]int64, 16)
	for i := range t.htab {
		t.htab[i] = -1
	}
	t.hplace(t.Root, 0)
}

// Attach adds child to the tree under parent. The parent must already be a
// tree node and the child must not be; calling Attach after Finalize
// panics (Clone an unfinalized copy to mutate further).
func (t *Tree) Attach(child, parent graph.NodeID) {
	if t.final {
		panic("decomp: Attach after Finalize")
	}
	if t.htab == nil {
		t.grow()
	}
	pi := t.hfind(parent)
	if pi < 0 {
		panic(fmt.Sprintf("decomp: Attach parent %d not in tree", parent))
	}
	if t.hfind(child) >= 0 {
		panic(fmt.Sprintf("decomp: Attach child %d already in tree", child))
	}
	d := t.bdepth[pi] + 1
	t.hinsert(child, int32(len(t.nodes)))
	t.nodes = append(t.nodes, child)
	t.bdepth = append(t.bdepth, d)
	t.bparent = append(t.bparent, int32(parent))
	t.size++
	if d > t.height {
		t.height = d
	}
}

// Finalize sorts the node list, packs the compact position-indexed
// depth/parent/child arrays, and releases the O(n) build scratch. It is
// idempotent and returns the tree for chaining. Builders call it once
// construction is done; afterwards the tree is immutable and safe for
// concurrent readers.
func (t *Tree) Finalize() *Tree {
	if t.final {
		return t
	}
	t.final = true
	if t.size == 1 {
		t.bdepth, t.bparent, t.htab = nil, nil, nil
		return t
	}
	// Sort positions by node id, then pack the compact arrays through the
	// permutation.
	perm := make([]int32, t.size)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(a, b int) bool { return t.nodes[perm[a]] < t.nodes[perm[b]] })
	sorted := make([]graph.NodeID, t.size)
	t.cdepth = make([]int32, t.size)
	t.cparent = make([]graph.NodeID, t.size)
	t.childOff = make([]int32, t.size+1)
	for i, p := range perm {
		sorted[i] = t.nodes[p]
		t.cdepth[i] = t.bdepth[p]
		t.cparent[i] = graph.NodeID(t.bparent[p])
	}
	t.nodes = sorted
	// ppos[i] is the position of node i's parent; counting children per
	// parent position, then prefix sums, then a fill in ascending node
	// order so every child list comes out ascending.
	ppos := make([]int32, t.size)
	for i := 0; i < t.size; i++ {
		p := t.cparent[i]
		if p < 0 {
			ppos[i] = -1
			continue
		}
		pp := int32(t.pos(p))
		ppos[i] = pp
		t.childOff[pp+1]++
	}
	for i := 0; i < t.size; i++ {
		t.childOff[i+1] += t.childOff[i]
	}
	t.childList = make([]graph.NodeID, t.size-1)
	next := make([]int32, t.size)
	copy(next, t.childOff[:t.size])
	for i, v := range t.nodes {
		if pp := ppos[i]; pp >= 0 {
			t.childList[next[pp]] = v
			next[pp]++
		}
	}
	t.bdepth, t.bparent, t.htab = nil, nil, nil
	return t
}

// pos returns v's position in the sorted node list, or -1 when v is not in
// the tree. Valid once nodes is sorted (Finalize).
func (t *Tree) pos(v graph.NodeID) int {
	lo, hi := 0, len(t.nodes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.nodes[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(t.nodes) && t.nodes[lo] == v {
		return lo
	}
	return -1
}

// Clone returns an unfinalized deep copy, ready for further Attach calls
// (cover expansion grows decomposition trees this way). Cloning a
// finalized tree re-expands the compact arrays into build form — still
// O(tree size), never O(n).
func (t *Tree) Clone() *Tree {
	out := &Tree{Root: t.Root, n: t.n, size: t.size, height: t.height}
	if t.size == 1 {
		return out
	}
	out.nodes = append([]graph.NodeID(nil), t.nodes...)
	if t.final {
		out.bdepth = append([]int32(nil), t.cdepth...)
		out.bparent = make([]int32, t.size)
		for i, p := range t.cparent {
			out.bparent[i] = int32(p)
		}
	} else {
		out.bdepth = append([]int32(nil), t.bdepth...)
		out.bparent = append([]int32(nil), t.bparent...)
	}
	tcap := 16
	for tcap < 2*t.size {
		tcap *= 2
	}
	out.htab = make([]int64, tcap)
	for i := range out.htab {
		out.htab[i] = -1
	}
	for i, v := range out.nodes {
		out.hplace(v, int32(i))
	}
	return out
}

// Has reports whether v participates in the tree (as terminal or Steiner
// node).
func (t *Tree) Has(v graph.NodeID) bool {
	if t.final {
		if t.size == 1 {
			return v == t.Root
		}
		return t.pos(v) >= 0
	}
	if t.htab == nil {
		return v == t.Root
	}
	return t.hfind(v) >= 0
}

// Size returns the number of tree nodes.
func (t *Tree) Size() int { return t.size }

// Depth returns the height of the tree (max depth over nodes), cached at
// construction.
func (t *Tree) Depth() int { return int(t.height) }

// DepthAt returns v's hop distance from the root, or -1 when v is not in
// the tree.
func (t *Tree) DepthAt(v graph.NodeID) int {
	if t.final {
		if t.size == 1 {
			if v == t.Root {
				return 0
			}
			return -1
		}
		i := t.pos(v)
		if i < 0 {
			return -1
		}
		return int(t.cdepth[i])
	}
	if t.htab == nil {
		if v == t.Root {
			return 0
		}
		return -1
	}
	i := t.hfind(v)
	if i < 0 {
		return -1
	}
	return int(t.bdepth[i])
}

// ParentOf returns v's parent in the tree; ok=false at the root and for
// nodes outside the tree.
func (t *Tree) ParentOf(v graph.NodeID) (graph.NodeID, bool) {
	if t.final {
		if t.size == 1 {
			return -1, false
		}
		i := t.pos(v)
		if i < 0 || t.cparent[i] < 0 {
			return -1, false
		}
		return t.cparent[i], true
	}
	if t.htab == nil {
		return -1, false
	}
	i := t.hfind(v)
	if i < 0 || t.bparent[i] < 0 {
		return -1, false
	}
	return graph.NodeID(t.bparent[i]), true
}

// ChildrenOf returns v's children in ascending order. Requires Finalize;
// the returned slice must not be mutated.
func (t *Tree) ChildrenOf(v graph.NodeID) []graph.NodeID {
	if !t.final {
		panic("decomp: ChildrenOf before Finalize")
	}
	if t.childOff == nil {
		return nil
	}
	i := t.pos(v)
	if i < 0 {
		return nil
	}
	return t.childList[t.childOff[i]:t.childOff[i+1]]
}

// Nodes returns all tree nodes in ascending order. Requires Finalize; the
// returned slice must not be mutated.
func (t *Tree) Nodes() []graph.NodeID {
	if !t.final {
		panic("decomp: Nodes before Finalize")
	}
	if t.nodes == nil {
		return []graph.NodeID{t.Root}
	}
	return t.nodes
}

// Edges returns the (parent, child) tree edges, sorted by parent then
// child. Requires Finalize.
func (t *Tree) Edges() [][2]graph.NodeID {
	if !t.final {
		panic("decomp: Edges before Finalize")
	}
	out := make([][2]graph.NodeID, 0, t.size-1)
	for i := range t.nodes {
		for _, c := range t.childList[t.childOff[i]:t.childOff[i+1]] {
			out = append(out, [2]graph.NodeID{t.nodes[i], c})
		}
	}
	return out
}

// Cluster is one decomposition cluster: a set of member (terminal) nodes
// plus its Steiner tree.
type Cluster struct {
	// Label is the final b-bit label shared by members.
	Label uint64
	// Color is the color class index.
	Color int
	// Members lists terminal nodes in ascending order.
	Members []graph.NodeID
	// Tree spans Members (and possibly nonterminals).
	Tree *Tree
}

// Decomposition is the output of Build.
type Decomposition struct {
	K int
	// Colors[c] lists the clusters of color c.
	Colors [][]*Cluster

	colorOf   []int32 // -1 for nodes outside the clustered set
	clusterOf []*Cluster
}

// ColorOf returns the color of a clustered node, or -1 for nodes outside
// the clustered set.
func (d *Decomposition) ColorOf(v graph.NodeID) int { return int(d.colorOf[v]) }

// ClusterOf returns the cluster of a clustered node, or nil for nodes
// outside the clustered set.
func (d *Decomposition) ClusterOf(v graph.NodeID) *Cluster { return d.clusterOf[v] }

// Clusters returns all clusters across colors.
func (d *Decomposition) Clusters() []*Cluster {
	var out []*Cluster
	for _, cs := range d.Colors {
		out = append(out, cs...)
	}
	return out
}

// Build computes a k-separated weak-diameter network decomposition of the
// nodes in S (nil means all nodes). Deterministic.
func Build(g *graph.Graph, k int, s []graph.NodeID) *Decomposition {
	if k < 1 {
		panic(fmt.Sprintf("decomp: k must be >= 1, got %d", k))
	}
	living := make([]bool, g.N())
	remaining := 0
	if s == nil {
		for i := range living {
			living[i] = true
		}
		remaining = g.N()
	} else {
		for _, v := range s {
			if !living[v] {
				living[v] = true
				remaining++
			}
		}
	}
	d := &Decomposition{
		K:         k,
		colorOf:   make([]int32, g.N()),
		clusterOf: make([]*Cluster, g.N()),
	}
	for i := range d.colorOf {
		d.colorOf[i] = -1
	}
	st := newPhaseState(g, k)
	maxColors := 4*bits.Len(uint(g.N())) + 4
	for color := 0; remaining > 0; color++ {
		if color >= maxColors {
			panic("decomp: color count exceeded 4·log n — clustering is not halving")
		}
		clusters := st.onePartition(living)
		cleared := 0
		for _, c := range clusters {
			c.Color = color
			for _, v := range c.Members {
				living[v] = false
				cleared++
				d.colorOf[v] = int32(color)
				d.clusterOf[v] = c
			}
		}
		if cleared == 0 {
			panic("decomp: partition clustered zero nodes")
		}
		remaining -= cleared
		d.Colors = append(d.Colors, clusters)
	}
	return d
}

// proposal is one (cluster label, proposing red node) pair of a grow-step;
// the same shape doubles as the (label, member) pairs of the final cluster
// assembly.
type proposal struct {
	label uint32
	node  graph.NodeID
}

// phaseState carries the builder's mutable state. One instance serves every
// partition run of a Build: all scratch is dense, node- or label-indexed
// (labels are node ids, so both spaces are [0, n)), and the per-grow-step
// BFS buffers are epoch-stamped instead of being reallocated per step.
type phaseState struct {
	g *graph.Graph
	k int
	b int
	n int

	alive       []bool
	label       []uint32
	memberCount []int32
	trees       []*Tree

	// stoppedStamp[lab] == phaseStamp marks a cluster done for the current
	// phase; propStamp[lab] == epoch marks a proposal seen this grow-step.
	stoppedStamp []int32
	propStamp    []int32

	// Grow-step BFS scratch: entries are valid iff stamp[v] == epoch.
	epoch int32
	stamp []int32
	dist  []int32
	claim []uint32
	par   []int32
	queue []graph.NodeID

	props []proposal
	chain []graph.NodeID
}

func newPhaseState(g *graph.Graph, k int) *phaseState {
	n := g.N()
	return &phaseState{
		g: g, k: k, n: n,
		b:            bits.Len(uint(n)),
		alive:        make([]bool, n),
		label:        make([]uint32, n),
		memberCount:  make([]int32, n),
		trees:        make([]*Tree, n),
		stoppedStamp: make([]int32, n),
		propStamp:    make([]int32, n),
		stamp:        make([]int32, n),
		dist:         make([]int32, n),
		claim:        make([]uint32, n),
		par:          make([]int32, n),
	}
}

// onePartition runs Lemma C.1: clusters at least half of the living nodes
// into >k-separated clusters and returns them. Nodes it kills stay for the
// next color.
func (st *phaseState) onePartition(living []bool) []*Cluster {
	nLiving := 0
	for v := 0; v < st.n; v++ {
		st.alive[v] = living[v]
		if living[v] {
			nLiving++
			st.label[v] = uint32(v)
			st.memberCount[v] = 1
			st.trees[v] = NewTree(st.n, graph.NodeID(v))
		} else {
			st.memberCount[v] = 0
			st.trees[v] = nil
		}
		st.stoppedStamp[v] = 0
		st.propStamp[v] = 0
	}
	if nLiving == 0 {
		return nil
	}
	for phase := 0; phase < st.b; phase++ {
		st.runPhase(phase)
	}
	// Survivors with the same label form the clusters: collect (label,
	// member) pairs in one pass and group runs after sorting.
	pairs := st.props[:0]
	for v := 0; v < st.n; v++ {
		if st.alive[v] {
			pairs = append(pairs, proposal{label: st.label[v], node: graph.NodeID(v)})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].label != pairs[j].label {
			return pairs[i].label < pairs[j].label
		}
		return pairs[i].node < pairs[j].node
	})
	var clusters []*Cluster
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j].label == pairs[i].label {
			j++
		}
		mem := make([]graph.NodeID, 0, j-i)
		for _, p := range pairs[i:j] {
			mem = append(mem, p.node)
		}
		clusters = append(clusters, &Cluster{
			Label:   uint64(pairs[i].label),
			Members: mem,
			Tree:    st.trees[pairs[i].label].Finalize(),
		})
		i = j
	}
	st.props = pairs[:0]
	// Invariant (III) aggregate: at least half the living nodes survive.
	survived := 0
	for _, c := range clusters {
		survived += len(c.Members)
	}
	if 2*survived < nLiving {
		panic(fmt.Sprintf("decomp: only %d of %d nodes survived a partition", survived, nLiving))
	}
	return clusters
}

func (st *phaseState) runPhase(phase int) {
	bit := uint32(1) << uint(phase)
	phaseStamp := int32(phase) + 1
	maxSteps := 10 * st.b * st.b // R = O(log² n); early break below
	for step := 0; step < maxSteps; step++ {
		if !st.growStep(bit, phaseStamp) {
			return
		}
	}
	panic("decomp: phase did not converge within R steps")
}

// growStep runs one blue-cluster grow-step of the phase and reports whether
// any cluster absorbed nodes (progress).
func (st *phaseState) growStep(bit uint32, phaseStamp int32) bool {
	// Seed the claim BFS from the living terminals of every non-stopped
	// blue cluster. Scanning nodes in ascending order seeds deterministically.
	st.epoch++
	st.queue = st.queue[:0]
	for v := 0; v < st.n; v++ {
		if !st.alive[v] || st.label[v]&bit != 0 || st.stoppedStamp[st.label[v]] == phaseStamp {
			continue
		}
		st.stamp[v] = st.epoch
		st.dist[v] = 0
		st.claim[v] = st.label[v]
		st.par[v] = -1
		st.queue = append(st.queue, graph.NodeID(v))
	}
	if len(st.queue) == 0 {
		return false
	}
	st.claimBFS()

	// Gather proposals: living red nodes reached within k. The ascending
	// node scan plus the (label, node) sort reproduces the map-based
	// builder's processing order exactly.
	st.props = st.props[:0]
	suffixMask := bit - 1
	for v := 0; v < st.n; v++ {
		if !st.alive[v] || st.label[v]&bit == 0 {
			continue // dead or blue
		}
		if st.stamp[v] != st.epoch || st.dist[v] > int32(st.k) {
			continue
		}
		lab := st.claim[v]
		// Invariant (I'): only same-suffix reds can be within k.
		if st.label[v]&suffixMask != lab&suffixMask {
			panic(fmt.Sprintf("decomp: separation invariant broken at node %d", v))
		}
		st.props = append(st.props, proposal{label: lab, node: graph.NodeID(v)})
		st.propStamp[lab] = st.epoch
	}
	sort.Slice(st.props, func(i, j int) bool {
		if st.props[i].label != st.props[j].label {
			return st.props[i].label < st.props[j].label
		}
		return st.props[i].node < st.props[j].node
	})
	progressed := false
	for i := 0; i < len(st.props); {
		j := i
		for j < len(st.props) && st.props[j].label == st.props[i].label {
			j++
		}
		lab := st.props[i].label
		if 2*(j-i)*st.b <= int(st.memberCount[lab]) {
			// Deny: proposers die; cluster stops for the phase.
			for _, p := range st.props[i:j] {
				st.kill(p.node)
			}
			st.stoppedStamp[lab] = phaseStamp
		} else {
			progressed = true
			for _, p := range st.props[i:j] {
				st.absorb(p.node, lab)
			}
		}
		i = j
	}
	// Clusters that received no proposals at all stop too (nothing within k
	// remains to grab).
	for lab := 0; lab < st.n; lab++ {
		if st.memberCount[lab] > 0 && uint32(lab)&bit == 0 &&
			st.stoppedStamp[lab] != phaseStamp && st.propStamp[lab] != st.epoch {
			st.stoppedStamp[lab] = phaseStamp
		}
	}
	return progressed
}

// claimBFS expands the seeded queue through every node of G (any state) to
// depth k, then resolves claims in BFS order: each node adopts the
// smallest-label claim among predecessors (neighbors one level closer) and
// records the BFS parent toward that cluster.
func (st *phaseState) claimBFS() {
	for head := 0; head < len(st.queue); head++ {
		v := st.queue[head]
		if st.dist[v] == int32(st.k) {
			continue
		}
		for _, nb := range st.g.Neighbors(v) {
			if st.stamp[nb.Node] != st.epoch {
				st.stamp[nb.Node] = st.epoch
				st.dist[nb.Node] = st.dist[v] + 1
				st.queue = append(st.queue, nb.Node)
			}
		}
	}
	for _, u := range st.queue {
		if st.dist[u] == 0 {
			continue
		}
		best := ^uint32(0)
		bestParent := int32(-1)
		for _, nb := range st.g.Neighbors(u) {
			w := nb.Node
			if st.stamp[w] == st.epoch && st.dist[w] == st.dist[u]-1 && st.claim[w] < best {
				best = st.claim[w]
				bestParent = int32(w)
			}
		}
		st.claim[u] = best
		st.par[u] = bestParent
	}
}

// kill removes u from the living set and from its cluster's terminals (its
// tree keeps u as a nonterminal).
func (st *phaseState) kill(u graph.NodeID) {
	st.alive[u] = false
	st.memberCount[st.label[u]]--
}

// absorb moves living red node u into the blue cluster lab, relabeling it
// and splicing the BFS path from u to the cluster into lab's Steiner tree.
func (st *phaseState) absorb(u graph.NodeID, lab uint32) {
	st.memberCount[st.label[u]]--
	st.label[u] = lab
	st.memberCount[lab]++
	tree := st.trees[lab]
	// Walk u -> parent(u) -> ... until a node already in the tree; collect
	// the chain, then attach it rootward-first.
	st.chain = st.chain[:0]
	w := u
	for !tree.Has(w) {
		st.chain = append(st.chain, w)
		if st.par[w] < 0 {
			panic("decomp: BFS path did not reach the cluster tree")
		}
		w = graph.NodeID(st.par[w])
	}
	for i := len(st.chain) - 1; i >= 0; i-- {
		c := st.chain[i]
		tree.Attach(c, w)
		w = c
	}
}
