package bench

import (
	"runtime"

	"repro/internal/async"
	"repro/internal/graph"
	"repro/internal/syncrun"
	"repro/internal/wire"
)

// mustSpec builds a graph from a FromSpec string that is known valid
// (Run pre-validates Options.Graph; experiment built-ins are static).
func mustSpec(spec string) *graph.Graph {
	g, err := graph.FromSpec(spec)
	if err != nil {
		panic("bench: bad graph spec: " + err.Error())
	}
	return g
}

// RetainedBytes reports how many heap bytes the object returned by build
// keeps live: settled HeapAlloc with the object held, minus settled
// HeapAlloc before building it. "Settled" means after back-to-back forced
// collections, so construction churn that has already become garbage is
// excluded — this is the footprint that stays resident at 10M nodes, not
// the allocation traffic on the way there. The probe is process-global
// state (one heap per process), so callers must not run it concurrently
// with other measured work.
func RetainedBytes(build func() any) int64 {
	base := settledHeap()
	obj := build()
	delta := int64(settledHeap()) - int64(base)
	runtime.KeepAlive(obj)
	if delta < 0 {
		delta = 0
	}
	return delta
}

// settledHeap returns HeapAlloc after two forced collections: the first
// finishes any concurrent cycle already in flight, the second collects
// from a clean mark so floating garbage does not linger in the reading.
func settledHeap() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// leanFlood is the async footprint workload: one flood from node 0 with a
// single bool of per-node handler state. Handler footprint stays a rounding
// error, so retained bytes after a run measure the engine's own per-link
// and per-node state — outboxes, stamps, wheels — with every link exercised
// once in each direction.
type leanFlood struct{ seen bool }

func (h *leanFlood) relay(n *async.Node, m async.Msg) {
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, m)
	}
}

func (h *leanFlood) Init(n *async.Node) {
	if n.ID() != 0 {
		return
	}
	h.seen = true
	h.relay(n, async.Msg{Proto: 10, Body: wire.Tag(1)})
}

func (h *leanFlood) Recv(n *async.Node, _ graph.NodeID, m async.Msg) {
	if h.seen {
		return
	}
	h.seen = true
	h.relay(n, m)
}

func (h *leanFlood) Ack(*async.Node, graph.NodeID, async.Msg) {}

// leanWave is the lockstep sibling of leanFlood: a one-bool wave from
// node 0, so a finished Runner's retained bytes are engine state (pulse
// buffers, CONGEST stamps, activation bitmaps), not handler payload.
type leanWave struct{ seen bool }

func (h *leanWave) Init(n syncrun.API) {
	if n.ID() != 0 {
		return
	}
	h.seen = true
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, wire.Tag(1))
	}
}

func (h *leanWave) Pulse(n syncrun.API, _ int, recvd []syncrun.Incoming) {
	if h.seen || len(recvd) == 0 {
		return
	}
	h.seen = true
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, wire.Tag(1))
	}
}

// AsyncRetainedBytes measures the asynchronous engine's resident footprint
// on g: retained heap bytes of a simulator that has completed one full
// leanFlood run (so lazily allocated per-link state for every active link
// is present), excluding the graph itself, which the caller keeps alive
// across the measurement.
func AsyncRetainedBytes(g *graph.Graph) int64 {
	return RetainedBytes(func() any {
		sim := async.New(g, async.Fixed{D: 1}, func(graph.NodeID) async.Handler {
			return &leanFlood{}
		}).WithMode(async.ModeSingle)
		sim.Run()
		return sim
	})
}

// SyncRetainedBytes measures the lockstep engine's resident footprint on
// g, mirroring AsyncRetainedBytes: retained bytes of a Runner that has
// completed one leanWave run, excluding the graph.
func SyncRetainedBytes(g *graph.Graph) int64 {
	return RetainedBytes(func() any {
		r := syncrun.New(g, func(graph.NodeID) syncrun.Handler {
			return &leanWave{}
		}).WithMode(syncrun.ModeSingle)
		r.Run()
		return r
	})
}

// GraphRetainedBytes measures the graph plane itself: retained bytes of
// the CSR arrays (offsets, targets, link table, reverse links, weights)
// built from spec.
func GraphRetainedBytes(spec string) (int64, error) {
	var err error
	b := RetainedBytes(func() any {
		var g *graph.Graph
		g, err = graph.FromSpec(spec)
		return g
	})
	if err != nil {
		return 0, err
	}
	return b, nil
}
