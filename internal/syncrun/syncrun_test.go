package syncrun

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/wire"
)

// syncBFS: source sends "join" at pulse 0; a node adopts the first pulse at
// which a join arrives as its distance, forwards once.
type syncBFS struct {
	src  graph.NodeID
	dist int
}

func (h *syncBFS) Init(n API) {
	h.dist = -1
	if n.ID() == h.src {
		h.dist = 0
		n.Output(0)
		for _, nb := range n.Neighbors() {
			n.Send(nb.Node, wire.Tag(1))
		}
	}
}

func (h *syncBFS) Pulse(n API, p int, recvd []Incoming) {
	if h.dist >= 0 || len(recvd) == 0 {
		return
	}
	h.dist = p
	n.Output(p)
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, wire.Tag(1))
	}
}

func TestSyncBFSDistances(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Path(17),
		graph.Grid(5, 8),
		graph.RandomConnected(50, 130, 2),
	} {
		want := g.BFS(0)
		res := New(g, func(graph.NodeID) Handler { return &syncBFS{src: 0} }).Run()
		if len(res.Outputs) != g.N() {
			t.Fatalf("only %d/%d outputs", len(res.Outputs), g.N())
		}
		for v, d := range want {
			if res.Outputs[graph.NodeID(v)] != d {
				t.Fatalf("node %d: output %v, want %d", v, res.Outputs[graph.NodeID(v)], d)
			}
		}
		if res.T != g.Ecc(0) {
			t.Errorf("T = %d, want ecc %d", res.T, g.Ecc(0))
		}
		// BFS sends one message per direction of each edge: M = 2m.
		if res.M != uint64(2*g.M()) {
			t.Errorf("M = %d, want %d", res.M, 2*g.M())
		}
	}
}

func TestTraceRecordsPulses(t *testing.T) {
	g := graph.Path(4)
	res := New(g, func(graph.NodeID) Handler { return &syncBFS{src: 0} }).KeepTrace().Run()
	// Pulse 0: 0->1. Pulse 1: 1->0,1->2. Pulse 2: 2->1,2->3. Pulse 3: 3->2.
	if len(res.Trace) != 6 {
		t.Fatalf("trace len = %d: %+v", len(res.Trace), res.Trace)
	}
	if res.Trace[0].Pulse != 0 || res.Trace[0].From != 0 || res.Trace[0].To != 1 {
		t.Fatalf("first trace entry = %+v", res.Trace[0])
	}
	last := res.Trace[len(res.Trace)-1]
	if last.Pulse != 3 || last.From != 3 {
		t.Fatalf("last trace entry = %+v", last)
	}
}

// pingPong exercises the "sent last pulse" activation rule: node 0 sends one
// message, then sends again when woken by its own send (no reception).
type pingPong struct{ sends int }

func (h *pingPong) Init(n API) {
	if n.ID() == 0 {
		n.Send(1, wire.Body{Kind: 1, A: 0})
		h.sends = 1
	}
}

func (h *pingPong) Pulse(n API, p int, recvd []Incoming) {
	if n.ID() == 0 && len(recvd) == 0 && h.sends < 3 {
		// Triggered by own send of pulse p-1.
		n.Send(1, wire.Body{Kind: 1, A: int64(h.sends)})
		h.sends++
	}
	if n.ID() == 1 && len(recvd) == 3 {
		n.Output(p)
	}
	if n.ID() == 1 && len(recvd) > 0 {
		h.sends += len(recvd)
		if h.sends == 3 {
			n.Output(p)
		}
	}
}

func TestSendTriggeredActivation(t *testing.T) {
	g := graph.Path(2)
	res := New(g, func(graph.NodeID) Handler { return &pingPong{} }).Run()
	if res.M != 3 {
		t.Fatalf("M = %d, want 3 (send-triggered chain)", res.M)
	}
	if res.Outputs[1] != 3 {
		t.Fatalf("node 1 output %v, want pulse 3", res.Outputs[1])
	}
}

func TestDoubleSendPanics(t *testing.T) {
	g := graph.Path(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double send")
		}
	}()
	New(g, func(id graph.NodeID) Handler { return &doubleSender{} }).Run()
}

type doubleSender struct{}

func (h *doubleSender) Init(n API) {
	if n.ID() == 0 {
		n.Send(1, wire.Tag(1))
		n.Send(1, wire.Tag(2))
	}
}
func (h *doubleSender) Pulse(API, int, []Incoming) {}

func TestQuiescenceWithNoInitiators(t *testing.T) {
	g := graph.Path(5)
	res := New(g, func(graph.NodeID) Handler { return &silent{} }).Run()
	if res.M != 0 || res.Rounds != 0 {
		t.Fatalf("silent run: M=%d rounds=%d", res.M, res.Rounds)
	}
}

type silent struct{}

func (h *silent) Init(API)                   {}
func (h *silent) Pulse(API, int, []Incoming) {}
