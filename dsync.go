// Package dsync is the public API of this reproduction of "A Near-Optimal
// Deterministic Distributed Synchronizer" (Ghaffari & Trygub, PODC 2023).
//
// It exposes:
//
//   - graph construction (re-exported from the graph substrate),
//   - the lockstep synchronous runner for event-driven algorithms,
//   - the paper's deterministic synchronizer plus Awerbuch's α/β/γ,
//   - the asynchronous BFS family of §4,
//   - ready-made deterministic asynchronous leader election and MST
//     (Corollaries 1.2–1.4),
//   - and the state plane: versioned snapshot / restore / replay of
//     stepwise runs (NewSynchronizedRun, NewLockstepRun, Replay).
//
// See README.md for a quickstart and DESIGN.md for the system inventory.
package dsync

import (
	"repro/internal/abfs"
	"repro/internal/apps"
	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/syncrun"
	"repro/internal/wire"
)

// Re-exported substrate types.
type (
	// Body is the typed wire payload every message carries: a Kind tag,
	// fixed integer words (A–D), and an optional arena-backed segment.
	// Plain value end to end — no boxing on the hot path (package wire).
	Body = wire.Body
	// Kind tags a Body's message type within its algorithm's namespace.
	Kind = wire.Kind
	// Arena recycles variable-length Body segments (API.Arena).
	Arena = wire.Arena
	// Seg is a pointer-free handle referencing an Arena segment.
	Seg = wire.Seg
	// Graph is an undirected network.
	Graph = graph.Graph
	// NodeID identifies a node.
	NodeID = graph.NodeID
	// EdgeID indexes the edge table of a Graph.
	EdgeID = graph.EdgeID
	// LinkID is a dense directed-link identifier (see graph.LinkID).
	LinkID = graph.LinkID
	// Adversary chooses asynchronous message delays.
	Adversary = async.Adversary
	// AsyncResult summarizes an asynchronous run.
	AsyncResult = async.Result
	// TraceEntry is one delivery-trace record; its Kind distinguishes
	// delivered messages from ones abandoned by the fault plane.
	TraceEntry = async.TraceEntry
	// TraceKind tags a TraceEntry (TraceDeliver / TraceUndeliverable).
	TraceKind = async.TraceKind
	// SyncResult summarizes a lockstep synchronous run.
	SyncResult = syncrun.Result
	// ExecutionMode selects how the lockstep runner steps each pulse
	// (results are byte-identical across modes).
	ExecutionMode = syncrun.ExecutionMode
	// AsyncExecutionMode selects how the asynchronous engine consumes its
	// event queue: serially, or in bounded-lag parallel time windows whose
	// width is the adversary's declared MinDelay lookahead. Results are
	// byte-identical across modes.
	AsyncExecutionMode = async.ExecutionMode
	// Algorithm is an event-driven synchronous node program.
	Algorithm = syncrun.Handler
	// API is the node-side surface an Algorithm sees.
	API = syncrun.API
	// Incoming is one received message.
	Incoming = syncrun.Incoming
	// Layered is a layered sparse cover family.
	Layered = cover.Layered
	// BFSResult is the per-node BFS output.
	BFSResult = apps.BFSResult
	// MSTResult is the per-node MST output.
	MSTResult = apps.MSTResult
	// TBFSResult is the per-node thresholded-BFS output.
	TBFSResult = apps.TBFSResult
	// Unreachable marks nodes beyond a BFS threshold (the paper's ∞).
	Unreachable = abfs.Unreachable
)

// Graph generators (deterministic; random families take a seed). The
// implicit generators — Grid3D, PowerLaw, RingOfCliques, and the textual
// GraphFromSpec front end — emit sorted CSR directly with exact
// preallocation, validate against the 32-bit id space, and return an error
// instead of allocating when a spec would overflow it.
var (
	NewGraph           = graph.New
	Path               = graph.Path
	Cycle              = graph.Cycle
	Grid               = graph.Grid
	Star               = graph.Star
	Complete           = graph.Complete
	CompleteBinaryTree = graph.CompleteBinaryTree
	RandomConnected    = graph.RandomConnected
	Dumbbell           = graph.Dumbbell
	Lollipop           = graph.Lollipop
	StarOfPaths        = graph.StarOfPaths
	WithRandomWeights  = graph.WithRandomWeights
	Grid3D             = graph.Grid3D
	PowerLaw           = graph.PowerLaw
	RingOfCliques      = graph.RingOfCliques
	GraphFromSpec      = graph.FromSpec
)

// Tag returns a words-free Body of the given kind (pure signal messages).
func Tag(k Kind) Body { return wire.Tag(k) }

// Delay adversaries for the asynchronous model (τ = 1 normalization).
func FixedDelays(d float64) Adversary    { return async.Fixed{D: d} }
func RandomDelays(seed uint64) Adversary { return async.SeededRandom{Seed: seed} }
func StandardAdversaries(n int, seed uint64) []Adversary {
	return async.StandardAdversaries(n, seed)
}

// Fault plane: seeded, pure-function crash/link/drop schedules wrapped
// around any delay adversary. Fault decisions are byte-identical across
// every execution mode and shard count.
type FaultSchedule = async.FaultSchedule

// ParseFaultSpec parses a fault-schedule spec such as
// "crash:p=0.01,drop:p=0.05,budget=3,seed=7"; "" and "none" yield nil
// (fault-free).
func ParseFaultSpec(spec string) (*FaultSchedule, error) { return async.ParseFaultSpec(spec) }

// WithFaults wraps adv in the fault schedule (returns adv unchanged when
// fs is nil or inert).
func WithFaults(adv Adversary, fs *FaultSchedule) Adversary { return async.WithFaults(adv, fs) }

// StandardFaultSchedules returns the deterministic fault-schedule matrix
// the cross-mode tests and E17 sweep share.
func StandardFaultSchedules(seed uint64) []*FaultSchedule {
	return async.StandardFaultSchedules(seed)
}

// Trace-entry kinds.
const (
	TraceDeliver       = async.TraceDeliver
	TraceUndeliverable = async.TraceUndeliverable
)

// Lockstep execution modes. ModeAuto picks the worker pool for large
// graphs; ModeSingle and ModeMulti force one path. All three produce
// byte-identical results — the choice is purely wall-clock.
const (
	ModeAuto   = syncrun.ModeAuto
	ModeSingle = syncrun.ModeSingle
	ModeMulti  = syncrun.ModeMulti
)

// Asynchronous engine execution modes (byte-identical results, wall-clock
// only). AsyncModeAuto engages the conservative bounded-lag windows when
// the adversary's MinDelay lookahead and the graph are both large enough to
// amortize the window barriers, and upgrades to speculative execution when
// the lookahead is too small for windows but every handler implements
// async.StateCloner. AsyncModeSpec forces the speculative executor
// (copy-on-write staging past the safe window with straggler rollback);
// when handlers are not cloneable it falls back to AsyncModeMulti.
const (
	AsyncModeAuto   = async.ModeAuto
	AsyncModeSingle = async.ModeSingle
	AsyncModeMulti  = async.ModeMulti
	AsyncModeSpec   = async.ModeSpec
)

// RunSync executes an event-driven synchronous algorithm in lockstep rounds
// and measures T(A) and M(A). On large graphs the engine may step
// different nodes' handlers concurrently (ModeAuto); handlers own their
// node's state and must not share mutable state across nodes — use
// RunSyncMode with ModeSingle for algorithms that need serial stepping.
func RunSync(g *Graph, mk func(NodeID) Algorithm) SyncResult {
	return syncrun.New(g, mk).Run()
}

// RunSyncMode is RunSync with an explicit execution mode (Single forces
// the sequential stepper, Multi the deterministic worker pool).
func RunSyncMode(g *Graph, mode ExecutionMode, mk func(NodeID) Algorithm) SyncResult {
	return syncrun.New(g, mk).WithMode(mode).Run()
}

// Synchronize runs the algorithm under the paper's deterministic
// synchronizer (Theorem 1.1 / 5.5): the asynchronous execution produces
// exactly the synchronous outputs. bound must exceed the last pulse at
// which the algorithm sends.
func Synchronize(g *Graph, bound int, adv Adversary, mk func(NodeID) Algorithm) AsyncResult {
	return core.Synchronize(core.Config{Graph: g, Bound: bound, Adversary: adv}, mk)
}

// SynchronizeMode is Synchronize with an explicit asynchronous-engine
// execution mode (AsyncModeSingle forces the serial event loop,
// AsyncModeMulti the bounded-lag parallel windows).
func SynchronizeMode(g *Graph, bound int, adv Adversary, mode AsyncExecutionMode,
	mk func(NodeID) Algorithm) AsyncResult {
	return core.Synchronize(core.Config{Graph: g, Bound: bound, Adversary: adv, Mode: mode}, mk)
}

// SynchronizeWithCovers is Synchronize with prebuilt layered covers
// (amortize cover construction across runs; see BuildCovers).
func SynchronizeWithCovers(g *Graph, bound int, adv Adversary, l *Layered,
	mk func(NodeID) Algorithm) AsyncResult {
	return core.Synchronize(core.Config{Graph: g, Bound: bound, Adversary: adv, Layered: l}, mk)
}

// BuildCovers constructs the layered sparse covers the synchronizer needs
// for the given pulse bound (the synchronizer's initialization). For
// finalized graphs, results are memoized per (graph, cover radius) and
// the returned value may be shared with concurrent runs — treat it as
// immutable. ResetCoverCache drops the memoized covers.
func BuildCovers(g *Graph, bound int) *Layered { return core.BuildLayeredFor(g, bound) }

// ResetCoverCache releases every layered cover memoized by BuildCovers /
// Synchronize, for long-lived processes that sweep many graphs.
func ResetCoverCache() { core.ResetCoverCache() }

// SynchronizeUnknownBound is the Theorem 5.4 setting — no bound on T(A) is
// known: doubling attempts until one completes. Returns the result and the
// discovered pulse bound.
func SynchronizeUnknownBound(g *Graph, adv Adversary, mk func(NodeID) Algorithm) (AsyncResult, int) {
	return core.SynchronizeUnknownBound(g, adv, mk)
}

// Baseline synchronizers (Appendix A).
var (
	// SynchronizeAlpha: O(1) time overhead, Θ(m) messages per pulse.
	SynchronizeAlpha = core.SynchronizeAlpha
	// SynchronizeBeta: Θ(D) time per pulse, Θ(n) messages per pulse.
	SynchronizeBeta = core.SynchronizeBeta
	// SynchronizeGamma: the cluster-based tradeoff between α and β.
	SynchronizeGamma = core.SynchronizeGamma
)

// NewBFS returns the synchronous (multi-)source BFS algorithm of
// Corollary 1.2 for use with RunSync or any synchronizer.
func NewBFS(sources []NodeID) func(NodeID) Algorithm {
	return func(NodeID) Algorithm { return &apps.BFS{Sources: sources} }
}

// NewFlood returns the flooding broadcast (each node outputs its hop
// distance from the source).
func NewFlood(source NodeID) func(NodeID) Algorithm {
	return func(NodeID) Algorithm { return &apps.Flood{Source: source} }
}

// NewEcho returns the flood-and-echo algorithm (the root outputs n).
func NewEcho(root NodeID) func(NodeID) Algorithm {
	return func(NodeID) Algorithm { return &apps.Echo{Root: root} }
}

// NewLeaderElection returns the §6 epoch algorithm plus the pulse bound it
// needs. The elected leader is the minimum node ID; every node outputs it.
func NewLeaderElection(g *Graph) (func(NodeID) Algorithm, int) {
	d := g.Diameter()
	if d < 1 {
		d = 1
	}
	layered := cover.BuildLayered(g, d, nil)
	spans := apps.LeaderSpansAll(g, layered)
	mk := func(NodeID) Algorithm { return &apps.Leader{Covers: layered, SpansAll: spans} }
	res := syncrun.New(g, mk).Run()
	return mk, res.Rounds + 2
}

// NewMST returns the Borůvka-style MST algorithm plus its pulse bound.
// Edge weights must be distinct (WithRandomWeights).
func NewMST(g *Graph) (func(NodeID) Algorithm, int) {
	tree := cover.BFSTreeCluster(g, 0)
	weights := make([]int64, g.M())
	for i := range weights {
		weights[i] = g.Weight(graph.EdgeID(i))
	}
	mk := func(NodeID) Algorithm { return &apps.MST{Barrier: tree, Weights: weights} }
	res := syncrun.New(g, mk).Run()
	return mk, res.Rounds + 2
}

// AsyncLeaderElection elects a leader asynchronously (Corollary 1.3):
// deterministic, Õ(D) time, Õ(m) messages. Every node outputs the leader.
func AsyncLeaderElection(g *Graph, adv Adversary) AsyncResult {
	mk, bound := NewLeaderElection(g)
	return Synchronize(g, bound, adv, mk)
}

// AsyncMST computes the minimum spanning tree asynchronously
// (Corollary 1.4). Every node outputs an MSTResult.
func AsyncMST(g *Graph, adv Adversary) AsyncResult {
	mk, bound := NewMST(g)
	return Synchronize(g, bound, adv, mk)
}

// AsyncBFS runs the complete asynchronous (multi-)source BFS of Theorems
// 4.23/4.24: Õ(D1) time, Õ(m) messages, no prior knowledge of D.
func AsyncBFS(g *Graph, sources []NodeID, adv Adversary) abfs.FullResult {
	return abfs.Full(g, sources, adv)
}

// AsyncBFSMode is AsyncBFS with an explicit engine execution mode.
func AsyncBFSMode(g *Graph, sources []NodeID, adv Adversary, mode AsyncExecutionMode) abfs.FullResult {
	return abfs.FullMode(g, sources, adv, mode)
}

// ThresholdedBFS runs the τ-thresholded asynchronous BFS of Theorem 4.15;
// nodes beyond τ output Unreachable.
func ThresholdedBFS(g *Graph, sources []NodeID, tau int, adv Adversary) abfs.Result {
	return abfs.Thresholded(abfs.Config{Graph: g, Sources: sources, Threshold: tau, Adversary: adv})
}

// State plane: versioned snapshot / restore / replay. A snapshot is a
// sealed, pointer-free byte frame of a run's complete state, taken at an
// event boundary (asynchronous engine) or pulse boundary (lockstep
// runner). Restoring it into a handle built over the same graph and
// algorithm continues the run byte-identically to the uninterrupted one,
// in every execution mode — so checkpoints can also fork ("what happens
// from here under a different engine?") and replay deterministically.
// Handlers participate via StateCodec; every shipped algorithm and the
// synchronizer stack implement it.
type (
	// SynchronizedRun is a stepwise synchronized execution handle
	// (async.Sim): RunSteps / Snapshot / Restore / FinishResult, or plain
	// Run to completion.
	SynchronizedRun = async.Sim
	// LockstepRun is a stepwise lockstep execution handle
	// (syncrun.Runner): RunPulses / Snapshot / Restore / FinishResult.
	LockstepRun = syncrun.Runner
	// StateCodec is the per-handler serialization contract snapshots are
	// built from (SaveState/LoadState over the wire codec).
	StateCodec = wire.StateCodec
)

// NewLockstepRun builds a stepwise lockstep runner over the synchronous
// algorithm: RunPulses(k) advances k pulses, Snapshot() checkpoints at the
// pulse boundary, FinishResult() closes a quiescent run.
func NewLockstepRun(g *Graph, mk func(NodeID) Algorithm) *LockstepRun {
	return syncrun.New(g, mk)
}

// NewSynchronizedRun assembles the paper's synchronizer stack over the
// synchronous algorithm without running it, for stepwise execution and
// checkpointing: RunSteps(k) advances k engine events, Snapshot()
// checkpoints between events, Run() finishes in any execution mode.
func NewSynchronizedRun(g *Graph, bound int, adv Adversary, mk func(NodeID) Algorithm) *SynchronizedRun {
	return core.NewSynchronizedSim(core.Config{Graph: g, Bound: bound, Adversary: adv}, mk)
}

// Replay restores a snapshot into the synchronized run handle and plays it
// to completion. Restore discards any state the handle held, so the same
// handle can replay the same snapshot repeatedly — deterministic replay
// debugging — or run snapshots taken at different points of one run.
func Replay(run *SynchronizedRun, snapshot []byte) (AsyncResult, error) {
	if err := run.Restore(snapshot); err != nil {
		return AsyncResult{}, err
	}
	return run.Run(), nil
}

// ReplayLockstep builds a fresh lockstep runner (a lockstep restore
// requires a pristine runner), restores the snapshot, and plays it to
// completion.
func ReplayLockstep(g *Graph, mk func(NodeID) Algorithm, snapshot []byte) (SyncResult, error) {
	r := syncrun.New(g, mk)
	if err := r.Restore(snapshot); err != nil {
		return SyncResult{}, err
	}
	return r.Run(), nil
}
