package bench

import (
	"reflect"
	"time"

	"repro/internal/async"
	"repro/internal/graph"
)

// e14AsyncEngineThroughput measures the asynchronous engine itself: one
// flood broadcast per row under the Fixed{1} adversary — full-unit
// lookahead, the bounded-lag executor's best case — wall-clock per
// execution mode, events per second in Single mode, and a determinism
// check that Single and the parallel windows agree bit-for-bit on the
// entire Result (time, messages, per-proto counts, outputs). It is the
// experiment-table view of the parallel-engine microbenchmarks in
// internal/async, and the asynchronous sibling of E13.
//
// Like E13 it runs as one serial job (wall-clock columns would distort
// under concurrent trials) and its timing columns are inherently
// non-reproducible; the det column must always read true. On a single-core
// host the multi column measures pure staging overhead — the honest
// baseline for the speedup the same binary gets on real hardware.
func e14AsyncEngineThroughput(c *Ctx) {
	t := c.table("flood from node 0, Fixed{1} delays; events = 4m; modes must agree exactly (det column).")
	t.head("graph", "n", "links", "single(ms)", "multi(ms)", "Kev/s", "det")
	cases := []namedGraph{
		{"grid 50x50", func() *graph.Graph { return graph.Grid(50, 50) }},
		{"er n=10k m=40k", func() *graph.Graph { return graph.RandomConnected(10_000, 40_000, 11) }},
		{"er n=20k m=80k", func() *graph.Graph { return graph.RandomConnected(20_000, 80_000, 12) }},
	}
	if c.custom != nil {
		cases = append(cases, namedGraph{c.gspec, func() *graph.Graph { return c.custom }})
	}
	t.emit(c.jobs(1, func(int) []row {
		rows := make([]row, 0, len(cases))
		for _, r := range cases {
			g := r.mk()
			mk := func(graph.NodeID) async.Handler { return &floodK{k: 1} }
			// Both modes run on equally cold engines — timing a Reset-warmed
			// engine against a fresh one would credit engine reuse (its own
			// ~-40% effect, measured by BenchmarkSimFloodReset) to the mode.
			simSingle := async.New(g, async.Fixed{D: 1}, mk).WithMode(async.ModeSingle)
			t0 := time.Now()
			single := simSingle.Run()
			dSingle := time.Since(t0)
			simMulti := async.New(g, async.Fixed{D: 1}, mk).WithMode(async.ModeMulti)
			t1 := time.Now()
			multi := simMulti.Run()
			dMulti := time.Since(t1)
			det := reflect.DeepEqual(single, multi)
			events := single.Msgs + single.Acks
			singleMs := float64(dSingle.Microseconds()) / 1000
			multiMs := float64(dMulti.Microseconds()) / 1000
			kevs := float64(events) / dSingle.Seconds() / 1000
			rows = append(rows, row{
				cols: []any{r.name, g.N(), g.Links(), singleMs, multiMs, kevs, det},
				rec: Rec{"graph": r.name, "n": g.N(), "links": g.Links(),
					"singleMs": singleMs, "multiMs": multiMs, "kEvPerSec": kevs,
					"deterministic": det},
			})
		}
		return rows
	}))
}
