package core

import (
	"fmt"
	"sort"

	"repro/internal/async"
	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/syncrun"
	"repro/internal/wire"
)

// BetaSynchronizer is Awerbuch's β (Appendix A): a global BFS tree carries,
// per pulse, a convergecast of "my subtree is safe for p" followed by a
// broadcast of "advance to p+1". Time overhead Θ(D) per pulse; message
// overhead Θ(n) per pulse.
//
// Per-pulse state is bound-indexed slices allocated once at construction.
type betaNode struct {
	algo  syncrun.Handler
	bound int
	tree  *cover.Cluster

	pulse      int
	recvd      [][]syncrun.Incoming
	sendAcked  []int
	selfSafe   []bool
	childSafe  []int // pulse -> children subtrees reported safe
	reportSent []bool
	cs         congestStamp
}

const protoBetaTree async.Proto = 4

var _ async.Handler = (*betaNode)(nil)

// NewBeta builds the β-synchronized handler for one node; tree is the
// shared BFS-tree cluster (its construction is β's initialization, which
// Appendix A ignores in the overhead accounting).
func NewBeta(algo syncrun.Handler, bound int, tree *cover.Cluster) async.Handler {
	return &betaNode{
		algo:       algo,
		bound:      bound,
		tree:       tree,
		recvd:      make([][]syncrun.Incoming, bound+1),
		sendAcked:  make([]int, bound+1),
		selfSafe:   make([]bool, bound+1),
		childSafe:  make([]int, bound+1),
		reportSent: make([]bool, bound+1),
	}
}

// Init implements async.Handler.
func (b *betaNode) Init(n *async.Node) { b.runPulse(n, 0) }

func (b *betaNode) runPulse(n *async.Node, p int) {
	b.pulse = p
	api := &betaAPI{n: n, b: b, pulse: p, epoch: b.cs.begin(n.Degree())}
	if p == 0 {
		b.algo.Init(api)
	} else {
		batch := b.recvd[p-1]
		sort.Slice(batch, func(i, j int) bool { return batch[i].From < batch[j].From })
		b.algo.Pulse(api, p, batch)
	}
	b.maybeSafe(n, p)
}

func (b *betaNode) maybeSafe(n *async.Node, p int) {
	if b.sendAcked[p] > 0 || b.pulse < p {
		return
	}
	b.selfSafe[p] = true
	b.maybeReport(n, p)
}

// maybeReport sends the subtree-safe report up the BFS tree once this node
// is safe and all tree children reported.
func (b *betaNode) maybeReport(n *async.Node, p int) {
	if b.reportSent[p] || !b.selfSafe[p] {
		return
	}
	if b.childSafe[p] < len(b.tree.ChildrenOf(n.ID())) {
		return
	}
	b.reportSent[p] = true
	if par, ok := b.tree.ParentOf(n.ID()); ok {
		n.Send(par, async.Msg{Proto: protoBetaTree, Stage: p, Body: wire.Body{Kind: kindBetaSafeUp, A: int64(p)}})
		return
	}
	// Root: the whole network is safe for p; advance everyone.
	b.advance(n, p+1)
}

func (b *betaNode) advance(n *async.Node, next int) {
	if next > b.bound {
		return
	}
	for _, ch := range b.tree.ChildrenOf(n.ID()) {
		n.Send(ch, async.Msg{Proto: protoBetaTree, Stage: next, Body: wire.Body{Kind: kindBetaAdvance, A: int64(next)}})
	}
	b.runPulse(n, next)
}

// Recv implements async.Handler.
func (b *betaNode) Recv(n *async.Node, from graph.NodeID, m async.Msg) {
	switch m.Body.Kind {
	case kindAlgo:
		pulse, inner := m.Body.Unframe()
		b.recvd[pulse] = append(b.recvd[pulse], syncrun.Incoming{From: from, Body: inner})
	case kindBetaSafeUp:
		p := int(m.Body.A)
		b.childSafe[p]++
		b.maybeReport(n, p)
	case kindBetaAdvance:
		b.advance(n, int(m.Body.A))
	default:
		panic(fmt.Sprintf("core: beta node %d got payload kind %d", n.ID(), m.Body.Kind))
	}
}

// Ack implements async.Handler.
func (b *betaNode) Ack(n *async.Node, _ graph.NodeID, m async.Msg) {
	if m.Body.Kind != kindAlgo {
		return
	}
	pulse := int(m.Body.P)
	b.sendAcked[pulse]--
	b.maybeSafe(n, pulse)
}

type betaAPI struct {
	n     *async.Node
	b     *betaNode
	pulse int
	epoch int32
}

var _ syncrun.API = (*betaAPI)(nil)

func (x *betaAPI) ID() graph.NodeID            { return x.n.ID() }
func (x *betaAPI) Neighbors() []graph.Neighbor { return x.n.Neighbors() }
func (x *betaAPI) Degree() int                 { return x.n.Degree() }
func (x *betaAPI) Output(v any)                { x.n.Output(v) }
func (x *betaAPI) OutputBody(b wire.Body)      { x.n.OutputBody(b) }
func (x *betaAPI) HasOutput() bool             { return x.n.HasOutput() }
func (x *betaAPI) Arena() *wire.Arena          { return x.n.Arena() }

func (x *betaAPI) Send(to graph.NodeID, body wire.Body) {
	x.b.cs.mark(x.n, to, x.epoch, "beta")
	x.b.sendAcked[x.pulse]++
	x.n.Send(to, async.Msg{Proto: ProtoAlgo, Stage: x.pulse, Body: frameAlgo(x.pulse, body)})
}

// SynchronizeBeta runs the algorithm under β for exactly `bound` pulses.
func SynchronizeBeta(g *graph.Graph, bound int, adv async.Adversary,
	mk func(id graph.NodeID) syncrun.Handler) async.Result {
	if adv == nil {
		adv = async.SeededRandom{Seed: 1}
	}
	tree := cover.BFSTreeCluster(g, 0)
	sim := async.New(g, adv, func(id graph.NodeID) async.Handler {
		return NewBeta(mk(id), bound, tree)
	})
	return sim.Run()
}
