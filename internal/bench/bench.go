// Package bench implements the experiment harness: one function per
// experiment in DESIGN.md's index (E1–E18), each regenerating its table of
// measured time/message complexities against the paper's predicted shape.
// Root bench_test.go and cmd/syncbench both call into this package.
//
// The harness is job-based: every experiment enumerates its independent
// trials (graph × parameter × adversary) as jobs, the runner executes them
// on a worker pool of Options.Workers goroutines, and results merge back in
// job order — so the emitted tables are byte-identical whether the run is
// serial or parallel. Each table row additionally produces a structured
// record; Options.JSON switches the output to one JSON document carrying
// every record, which is what cmd/syncbench -json emits and CI archives as
// the bench trajectory.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"text/tabwriter"

	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/execpolicy"
	"repro/internal/graph"
	"repro/internal/syncrun"
	"repro/internal/wire"
)

// Rec is one structured per-row record: column name -> raw (unformatted)
// value. encoding/json sorts map keys, so marshaling is deterministic.
type Rec map[string]any

// row pairs one table row with its structured record.
type row struct {
	cols []any
	rec  Rec
}

// experiment is one registry entry. The registry slice is the single
// ordered source of truth: All, ByName, Run, and List all drive off it.
type experiment struct {
	id    string
	title string
	run   func(*Ctx)
}

var experiments = []experiment{
	{"E1", "synchronizer overheads (sync BFS workload)", e1SynchronizerOverheads},
	{"E2", "async BFS time vs diameter (Thm 4.23)", e2BFSTimeVsD},
	{"E3", "async BFS messages vs edge count (Thm 4.23)", e3BFSMessagesVsM},
	{"E4", "multi-source BFS time vs D1 (Thm 4.24)", e4MultiSourceD1},
	{"E5", "async deterministic leader election (Cor 1.3)", e5LeaderElection},
	{"E6", "async deterministic MST (Cor 1.4)", e6MST},
	{"E7", "registration congestion — wave (§3.2) vs naive root-routing ([AP90a])", e7RegistrationCongestion},
	{"E8", "α message blow-up vs main synchronizer (App. A)", e8AlphaBlowup},
	{"E9", "delay-adversary robustness (worst-case model, §1.1)", e9AdversaryRobustness},
	{"E10", "sparse cover quality (Thm 4.21)", e10CoverQuality},
	{"E11", "link multiplexing & stage priorities (Cor 2.3 / Lem 2.5)", e11StagePipelining},
	{"E12", "gather-in-covers cost (Thm 3.1)", e12GatherCost},
	{"E13", "lockstep engine throughput by execution mode", e13EngineThroughput},
	{"E14", "async engine throughput by execution mode (bounded-lag windows)", e14AsyncEngineThroughput},
	{"E15", "speculative execution past the safe window (rollback accounting)", e15SpeculativeExecution},
	{"E16", "retained footprint vs n (graph plane + engine state)", e16Footprint},
	{"E17", "fault-plane overhead vs fault rate (crash × drop × budget)", e17FaultOverhead},
	{"E18", "state-plane snapshot overhead (frame bytes + time vs interval)", e18SnapshotOverheads},
}

func byID(id string) *experiment {
	for i := range experiments {
		if experiments[i].id == id {
			return &experiments[i]
		}
	}
	return nil
}

// Info describes one experiment for listings.
type Info struct {
	ID    string
	Title string
}

// List returns the experiments in registry order.
func List() []Info {
	out := make([]Info, len(experiments))
	for i, e := range experiments {
		out[i] = Info{ID: e.id, Title: e.title}
	}
	return out
}

// IDs returns every experiment id in registry order.
func IDs() []string {
	out := make([]string, len(experiments))
	for i, e := range experiments {
		out[i] = e.id
	}
	return out
}

// Options configures a harness run.
type Options struct {
	// Workers is the job pool size; <= 1 runs every trial serially. Tables
	// and records are byte-identical across worker counts.
	Workers int
	// JSON emits one JSON document of structured records instead of text
	// tables.
	JSON bool
	// Seed overrides every experiment's default delay-adversary seed
	// (cmd/syncbench -seed). Zero keeps the per-experiment defaults, which
	// reproduce the published tables. Experiments that deliberately use a
	// degenerate adversary (Fixed delays) are unaffected.
	Seed uint64
	// Mode selects the lockstep execution mode for experiments that run a
	// synchronous baseline (cmd/syncbench -mode). The default is ModeAuto;
	// results are byte-identical across modes, so this is a wall-clock
	// knob. E13 compares the modes explicitly and ignores it.
	Mode syncrun.ExecutionMode
	// AsyncMode selects the asynchronous engine's execution mode for every
	// experiment that runs a simulation (cmd/syncbench -mode sets both
	// engines). Also byte-identical across modes; E14 and E15 compare the
	// modes explicitly and ignore it.
	AsyncMode async.ExecutionMode
	// Graph is an optional extra topology, as a graph.FromSpec string
	// (cmd/syncbench -graph, e.g. "grid3d:100x100x100"). The engine-facing
	// experiments E13, E14, and E16 append it as an extra row after their
	// built-in cases — this is how the committed BENCH_6.json gets its
	// million-node rows without every default run paying for them. Other
	// experiments ignore it. Invalid specs fail Run before anything runs.
	Graph string
	// Shards, when >= 1, makes E14 add multi-process-protocol rows: each
	// case also runs through the sharded coordinator (in-process workers,
	// K = Shards) with its det column holding the byte-identity check
	// against the serial engine. Shards = 1 exercises the full shard
	// protocol degenerately and must change nothing else in the run
	// (cmd/syncbench -shards). Out-of-range values fail Run before
	// anything runs, like an invalid Graph spec.
	Shards int
	// Faults is an optional fault-schedule spec (async.ParseFaultSpec,
	// e.g. "crash:p=0.01,drop:p=0.05,budget=3,seed=7"; cmd/syncbench
	// -faults). When set, every experiment's delay adversary is wrapped in
	// the schedule — tables then measure the algorithms under message loss
	// and crash blackouts, not the published fault-free shapes — and E17
	// appends the spec as an extra row after its built-in schedule grid.
	// Invalid specs fail Run before anything runs.
	Faults string
	// SnapshotEvery, when > 0, appends an extra checkpoint interval to
	// every E18 case after its built-in sweep (cmd/syncbench
	// -snapshot-every), the same extra-row pattern as Graph and Faults.
	// Other experiments ignore it.
	SnapshotEvery uint64
	// Resume is an optional checkpoint file written by a sharded run
	// (shardsim/asyncbfs -snapshot-path; cmd/syncbench -resume). E18
	// appends a final row that resumes it through the sharded coordinator
	// with in-process workers, pricing restore-to-completion on a real
	// file. Missing or corrupt files fail Run before anything runs.
	Resume string
}

// ExpRecords is the JSON shape of one experiment's output.
type ExpRecords struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Rows  []Rec  `json:"rows"`
}

// Output is the top-level JSON document of a -json run.
type Output struct {
	Schema      string       `json:"schema"`
	Experiments []ExpRecords `json:"experiments"`
}

// Ctx is the per-run context handed to each experiment: table output,
// worker pool, run-wide option overrides, and the record accumulator.
type Ctx struct {
	w       io.Writer
	workers int
	seed    uint64
	mode    syncrun.ExecutionMode
	amode   async.ExecutionMode
	// gspec/custom carry the Options.Graph extra topology: the spec string
	// (used as the row label and re-built by E16's footprint probe) and the
	// graph itself, built once up front so E13 and E14 share it.
	gspec  string
	custom *graph.Graph
	// shards carries Options.Shards: E14's sharded-coordinator row count.
	shards int
	// faults/fspec carry Options.Faults: the parsed schedule wrapped
	// around every adversary c.adv hands out, and the raw spec string E17
	// uses as its extra-row label.
	faults *async.FaultSchedule
	fspec  string
	// snapEvery/resume carry Options.SnapshotEvery/Options.Resume: E18's
	// extra checkpoint interval and its optional real-file resume row.
	snapEvery uint64
	resume    string
	cur       *ExpRecords
	exps      []ExpRecords
}

// seedOr returns the run-wide adversary-seed override, or the
// experiment's default when none was given.
func (c *Ctx) seedOr(def uint64) uint64 {
	if c.seed != 0 {
		return c.seed
	}
	return def
}

// adv returns the seeded random delay adversary an experiment should use,
// honoring the -seed override and wrapping in the run-wide fault
// schedule when one was given.
func (c *Ctx) adv(def uint64) async.Adversary {
	return async.WithFaults(async.SeededRandom{Seed: c.seedOr(def)}, c.faults)
}

// runSync executes a lockstep baseline in the selected execution mode
// (results are mode-independent; only wall-clock changes).
func (c *Ctx) runSync(g *graph.Graph, mk func(graph.NodeID) syncrun.Handler) syncrun.Result {
	return syncrun.New(g, mk).WithMode(c.mode).Run()
}

// coreCfg assembles a synchronizer config honoring the run-wide async
// execution mode.
func (c *Ctx) coreCfg(g *graph.Graph, bound int, adv async.Adversary) core.Config {
	return core.Config{Graph: g, Bound: bound, Adversary: adv, Mode: c.amode}
}

// table accumulates aligned rows.
type table struct {
	w   *tabwriter.Writer
	ctx *Ctx
}

// table opens the experiment's table, printing the registry title plus the
// experiment's expectation note.
func (c *Ctx) table(note string) *table {
	fmt.Fprintf(c.w, "\n=== %s: %s ===\n", c.cur.ID, c.cur.Title)
	if note != "" {
		fmt.Fprintf(c.w, "%s\n", note)
	}
	return &table{w: tabwriter.NewWriter(c.w, 2, 4, 2, ' ', 0), ctx: c}
}

// head writes the column-header row.
func (t *table) head(cols ...any) { t.row(cols...) }

func (t *table) row(cols ...any) {
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(t.w, "\t")
		}
		switch v := c.(type) {
		case float64:
			fmt.Fprintf(t.w, "%.1f", v)
		default:
			fmt.Fprintf(t.w, "%v", v)
		}
	}
	fmt.Fprintln(t.w)
}

// emit writes the merged job rows — table lines plus structured records —
// and flushes the table.
func (t *table) emit(rows []row) {
	for _, r := range rows {
		t.row(r.cols...)
		if r.rec != nil {
			t.ctx.cur.Rows = append(t.ctx.cur.Rows, r.rec)
		}
	}
	t.w.Flush()
}

// jobs executes n independent trials on the worker pool and returns their
// rows merged in job order, so output is identical to a serial run.
func (c *Ctx) jobs(n int, fn func(i int) []row) []row {
	out := make([][]row, n)
	workers := c.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
	} else {
		var wg sync.WaitGroup
		idx := make(chan int)
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					out[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	var flat []row
	for _, rs := range out {
		flat = append(flat, rs...)
	}
	return flat
}

// Run executes the given experiments (nil or empty = all) with the given
// options, writing tables — or, with Options.JSON, one JSON document — to
// w. It errors on unknown ids without running anything.
func Run(w io.Writer, ids []string, opts Options) error {
	if len(ids) == 0 {
		ids = IDs()
	}
	for _, id := range ids {
		if byID(id) == nil {
			return fmt.Errorf("unknown experiment %q (want E1..E%d)", id, len(experiments))
		}
	}
	tw := w
	if opts.JSON {
		tw = io.Discard
	}
	if opts.Shards < 0 || opts.Shards > execpolicy.MaxShards {
		return fmt.Errorf("shards = %d out of range [0, %d]", opts.Shards, execpolicy.MaxShards)
	}
	fs, err := async.ParseFaultSpec(opts.Faults)
	if err != nil {
		return err
	}
	if opts.Resume != "" {
		data, err := os.ReadFile(opts.Resume)
		if err != nil {
			return err
		}
		if _, err := wire.OpenSnapshot(data); err != nil {
			return fmt.Errorf("resume %s: %v", opts.Resume, err)
		}
	}
	c := &Ctx{w: tw, workers: opts.Workers, seed: opts.Seed, mode: opts.Mode, amode: opts.AsyncMode, gspec: opts.Graph, shards: opts.Shards, faults: fs, fspec: opts.Faults, snapEvery: opts.SnapshotEvery, resume: opts.Resume}
	if opts.Graph != "" {
		g, err := graph.FromSpec(opts.Graph)
		if err != nil {
			return err
		}
		c.custom = g
	}
	for _, id := range ids {
		e := byID(id)
		c.exps = append(c.exps, ExpRecords{ID: e.id, Title: e.title})
		c.cur = &c.exps[len(c.exps)-1]
		e.run(c)
	}
	if opts.JSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(Output{Schema: "syncbench/v1", Experiments: c.exps})
	}
	return nil
}

// All runs every experiment serially, emitting text tables.
func All(w io.Writer) {
	if err := Run(w, nil, Options{}); err != nil {
		panic(err) // unreachable: registry ids are always valid
	}
}

// ByName runs one experiment by its id ("E1".."E16"); it reports whether
// the id was known.
func ByName(w io.Writer, id string) bool {
	if byID(id) == nil {
		return false
	}
	if err := Run(w, []string{id}, Options{}); err != nil {
		return false
	}
	return true
}

// Exported per-experiment entry points (serial, table output); root
// bench_test.go's Benchmark wrappers call these.
func E1SynchronizerOverheads(w io.Writer)  { ByName(w, "E1") }
func E2BFSTimeVsD(w io.Writer)             { ByName(w, "E2") }
func E3BFSMessagesVsM(w io.Writer)         { ByName(w, "E3") }
func E4MultiSourceD1(w io.Writer)          { ByName(w, "E4") }
func E5LeaderElection(w io.Writer)         { ByName(w, "E5") }
func E6MST(w io.Writer)                    { ByName(w, "E6") }
func E7RegistrationCongestion(w io.Writer) { ByName(w, "E7") }
func E8AlphaBlowup(w io.Writer)            { ByName(w, "E8") }
func E9AdversaryRobustness(w io.Writer)    { ByName(w, "E9") }
func E10CoverQuality(w io.Writer)          { ByName(w, "E10") }
func E11StagePipelining(w io.Writer)       { ByName(w, "E11") }
func E12GatherCost(w io.Writer)            { ByName(w, "E12") }
func E13EngineThroughput(w io.Writer)      { ByName(w, "E13") }
func E14AsyncEngineThroughput(w io.Writer) { ByName(w, "E14") }
func E15SpeculativeExecution(w io.Writer)  { ByName(w, "E15") }
func E16Footprint(w io.Writer)             { ByName(w, "E16") }
func E17FaultOverhead(w io.Writer)         { ByName(w, "E17") }
