package graph

import "sort"

// KruskalMST returns the edge ids of a minimum spanning tree computed
// centrally. Ties break by edge id, so with distinct weights the result is
// the unique MST; tests use this as ground truth for the distributed MST.
// Panics on disconnected graphs.
func (g *Graph) KruskalMST() []EdgeID {
	ids := make([]EdgeID, g.M())
	for i := range ids {
		ids[i] = EdgeID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		wa, wb := g.Weight(ids[a]), g.Weight(ids[b])
		if wa != wb {
			return wa < wb
		}
		return ids[a] < ids[b]
	})
	uf := NewUnionFind(g.n)
	out := make([]EdgeID, 0, g.n-1)
	for _, id := range ids {
		if uf.Union(int(g.edgeU[id]), int(g.edgeV[id])) {
			out = append(out, id)
		}
	}
	if g.n > 0 && len(out) != g.n-1 {
		panic("graph: KruskalMST on disconnected graph")
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// MSTWeight returns the total weight of the MST.
func (g *Graph) MSTWeight() int64 {
	var total int64
	for _, id := range g.KruskalMST() {
		total += g.Weight(id)
	}
	return total
}

// IsSpanningTree reports whether the given edge set forms a spanning tree
// of g: exactly n-1 edges, acyclic, connected.
func (g *Graph) IsSpanningTree(edges []EdgeID) bool {
	if len(edges) != g.n-1 {
		return false
	}
	uf := NewUnionFind(g.n)
	for _, id := range edges {
		if !uf.Union(int(g.edgeU[id]), int(g.edgeV[id])) {
			return false
		}
	}
	return uf.Count() == 1
}
