package shard

import (
	"testing"

	"repro/internal/async"
	"repro/internal/graph"
	"repro/internal/wire"
)

// FuzzShardFrameRoundTrip drives the cross-shard event frame codec:
// encode out of one arena, decode (re-home) into another, and require the
// event to survive bit-for-bit — including oversize segments straddling
// the arena's chunk-class boundary (1<<16 words), where the copy spans
// non-contiguous chunks.
func FuzzShardFrameRoundTrip(f *testing.F) {
	f.Add(uint8(0), int32(10), int32(0), int32(3), int32(9), uint16(1), int64(42), int64(-7), 0)
	f.Add(uint8(1), int32(11), int32(2), int32(0), int32(1), uint16(2), int64(1), int64(2), 48)
	// The chunk-class boundary, one under, one over.
	f.Add(uint8(0), int32(12), int32(1), int32(5), int32(6), uint16(3), int64(0), int64(9), 65535)
	f.Add(uint8(0), int32(12), int32(1), int32(5), int32(6), uint16(3), int64(0), int64(9), 65536)
	f.Add(uint8(0), int32(12), int32(1), int32(5), int32(6), uint16(3), int64(0), int64(9), 65537)
	f.Fuzz(func(t *testing.T, kindSel uint8, proto, stage, src, dst int32, bkind uint16, a, b int64, segWords int) {
		kind := uint8(async.ShardEvDeliver)
		if kindSel&1 == 1 {
			kind = async.ShardEvAckArrive
		}
		if segWords < 0 {
			segWords = -segWords
		}
		segWords %= 1 << 17
		body := wire.Body{Kind: wire.Kind(bkind), A: a, B: b, C: a ^ b, D: -a}
		var sa wire.Arena
		if segWords > 0 {
			seg, w := sa.Alloc(segWords)
			for i := range w {
				w[i] = int32(a) ^ int32(i)
			}
			body.Seg = seg
		}
		m := async.Msg{Proto: async.Proto(proto), Stage: int(stage), Body: body}
		frame := appendEventFrame(nil, kind, graph.NodeID(src), graph.NodeID(dst), m, &sa)

		var da wire.Arena
		gotKind, gotSrc, gotDst, gotM, used, err := decodeEventFrame(frame, &da)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if used != len(frame) {
			t.Fatalf("decode consumed %d of %d bytes", used, len(frame))
		}
		if gotKind != kind || gotSrc != graph.NodeID(src) || gotDst != graph.NodeID(dst) {
			t.Fatalf("envelope (%d,%d,%d) != (%d,%d,%d)", gotKind, gotSrc, gotDst, kind, src, dst)
		}
		if gotM.Proto != m.Proto || gotM.Stage != m.Stage {
			t.Fatalf("msg header (%d,%d) != (%d,%d)", gotM.Proto, gotM.Stage, m.Proto, m.Stage)
		}
		wantB, gotB := body, gotM.Body
		wantB.Seg, gotB.Seg = wire.Seg{}, wire.Seg{}
		if wantB != gotB {
			t.Fatalf("body %+v != %+v", gotB, wantB)
		}
		if gotM.Body.Seg.Len() != segWords {
			t.Fatalf("segment re-homed to %d words, want %d", gotM.Body.Seg.Len(), segWords)
		}
		if segWords > 0 {
			w := da.Data(gotM.Body.Seg)
			for i, x := range w {
				if x != int32(a)^int32(i) {
					t.Fatalf("segment word %d = %d, want %d", i, x, int32(a)^int32(i))
				}
			}
			da.Release(gotM.Body.Seg)
		}
		if live := da.Live(); live != 0 {
			t.Fatalf("receiving arena holds %d live segments after release", live)
		}

		// Any strict prefix must fail cleanly, never decode garbage.
		for _, cut := range []int{0, eventFrameHead - 1, len(frame) - 1} {
			if cut < 0 || cut >= len(frame) {
				continue
			}
			var ta wire.Arena
			if _, _, _, _, _, err := decodeEventFrame(frame[:cut], &ta); err == nil {
				t.Fatalf("decode of %d/%d-byte prefix succeeded", cut, len(frame))
			}
			if ta.Live() != 0 {
				t.Fatalf("failed decode leaked %d segments", ta.Live())
			}
		}
	})
}
