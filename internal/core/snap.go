package core

import (
	"fmt"
	"sort"

	"repro/internal/async"
	"repro/internal/graph"
	"repro/internal/syncrun"
	"repro/internal/wire"
)

// State codecs for the synchronizer stack and the α/β/γ baselines. Each
// handler serializes its complete mutable run state — the embedded
// synchronous algorithm first (as a blob, via its own wire.StateCodec),
// then the synchronizer's own bookkeeping — so the engine state plane can
// checkpoint and resume any synchronized run, and the Mux's codec-backed
// CloneStateInto lets the full stack run under ModeSpec without the old
// fall-back to the conservative executor.
//
// The congestStamp deliberately stays out of every frame: its epoch
// counter only ever grows and stamps are compared for equality, so a
// restored handler's fresh zero stamps can never falsely collide with a
// future epoch — the CONGEST guard re-arms itself.

var (
	_ wire.StateCodec       = (*nodeCore)(nil)
	_ async.StateCodecProbe = (*nodeCore)(nil)
	_ wire.StateCodec       = (*alphaNode)(nil)
	_ async.StateCodecProbe = (*alphaNode)(nil)
	_ wire.StateCodec       = (*betaNode)(nil)
	_ async.StateCodecProbe = (*betaNode)(nil)
	_ wire.StateCodec       = (*gammaNode)(nil)
	_ async.StateCodecProbe = (*gammaNode)(nil)
)

// --- shared helpers --------------------------------------------------------

func algoCodecOK(algo syncrun.Handler) bool {
	if _, ok := algo.(wire.StateCodec); !ok {
		return false
	}
	return true
}

func saveAlgoState(e *wire.Enc, algo syncrun.Handler) {
	sc, ok := algo.(wire.StateCodec)
	if !ok {
		panic(fmt.Sprintf("core: synchronized algorithm %T does not implement wire.StateCodec", algo))
	}
	mark := e.BeginBlob()
	sc.SaveState(e)
	e.EndBlob(mark)
}

func loadAlgoState(d *wire.Dec, algo syncrun.Handler) {
	sc, ok := algo.(wire.StateCodec)
	if !ok {
		d.Fail("core: synchronized algorithm %T does not implement wire.StateCodec", algo)
		return
	}
	end := d.BeginBlob()
	if d.Failed() {
		return
	}
	sc.LoadState(d)
	d.EndBlob(end)
}

func saveIncoming(e *wire.Enc, batch []syncrun.Incoming) {
	e.U32(uint32(len(batch)))
	for _, in := range batch {
		e.I32(int32(in.From))
		e.Body(in.Body)
	}
}

func loadIncoming(d *wire.Dec) []syncrun.Incoming {
	n := int(d.U32())
	var batch []syncrun.Incoming
	for i := 0; i < n && !d.Failed(); i++ {
		in := syncrun.Incoming{From: graph.NodeID(d.I32()), Body: d.Body()}
		if !d.Failed() {
			batch = append(batch, in)
		}
	}
	return batch
}

func sortedInts[T any](m map[int]T) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func saveIntSet(e *wire.Enc, set map[int]bool) {
	keys := sortedInts(set)
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		e.Int(k)
	}
}

func loadIntSet(d *wire.Dec) map[int]bool {
	n := int(d.U32())
	set := make(map[int]bool, n)
	for i := 0; i < n && !d.Failed(); i++ {
		set[d.Int()] = true
	}
	return set
}

func saveIntCounts(e *wire.Enc, m map[int]int) {
	keys := sortedInts(m)
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		e.Int(k)
		e.Int(m[k])
	}
}

func loadIntCounts(d *wire.Dec) map[int]int {
	n := int(d.U32())
	m := make(map[int]int, n)
	for i := 0; i < n && !d.Failed(); i++ {
		k := d.Int()
		m[k] = d.Int()
	}
	return m
}

func saveNodeList(e *wire.Enc, ids []graph.NodeID) {
	e.U32(uint32(len(ids)))
	for _, v := range ids {
		e.I32(int32(v))
	}
}

func loadNodeList(d *wire.Dec) []graph.NodeID {
	n := int(d.U32())
	var ids []graph.NodeID
	for i := 0; i < n && !d.Failed(); i++ {
		ids = append(ids, graph.NodeID(d.I32()))
	}
	return ids
}

// --- nodeCore --------------------------------------------------------------

// StateCodecOK implements async.StateCodecProbe: the core is serializable
// iff the embedded algorithm is.
func (c *nodeCore) StateCodecOK() bool { return algoCodecOK(c.algo) }

// SaveState implements wire.StateCodec.
func (c *nodeCore) SaveState(e *wire.Enc) {
	saveAlgoState(e, c.algo)
	e.Bool(c.started)
	e.Bool(c.originator)
	e.U32(uint32(len(c.initSends)))
	for _, s := range c.initSends {
		e.I32(int32(s.to))
		e.Body(s.body)
	}
	e.Int(c.barrierRegWait)

	pulses := sortedInts(c.vnodes)
	e.U32(uint32(len(pulses)))
	for _, p := range pulses {
		e.Int(p)
		saveVnode(e, c.vnodes[p])
	}

	batches := sortedInts(c.recvd)
	e.U32(uint32(len(batches)))
	for _, p := range batches {
		e.Int(p)
		saveIncoming(e, c.recvd[p])
	}
	saveIntSet(e, c.recvdClosed)
}

// LoadState implements wire.StateCodec.
func (c *nodeCore) LoadState(d *wire.Dec) {
	loadAlgoState(d, c.algo)
	c.started = d.Bool()
	c.originator = d.Bool()
	nSends := int(d.U32())
	c.initSends = nil
	for i := 0; i < nSends && !d.Failed(); i++ {
		s := capturedSend{to: graph.NodeID(d.I32()), body: d.Body()}
		if !d.Failed() {
			c.initSends = append(c.initSends, s)
		}
	}
	c.barrierRegWait = d.Int()

	nVnodes := int(d.U32())
	c.vnodes = make(map[int]*vnode, nVnodes)
	for i := 0; i < nVnodes && !d.Failed(); i++ {
		p := d.Int()
		v := loadVnode(d)
		if !d.Failed() {
			if v.pulse != p {
				d.Fail("core: vnode keyed %d carries pulse %d", p, v.pulse)
				return
			}
			c.vnodes[p] = v
		}
	}

	nBatches := int(d.U32())
	c.recvd = make(map[int][]syncrun.Incoming, nBatches)
	for i := 0; i < nBatches && !d.Failed(); i++ {
		p := d.Int()
		batch := loadIncoming(d)
		if !d.Failed() {
			c.recvd[p] = batch
		}
	}
	c.recvdClosed = loadIntSet(d)
}

func saveVnode(e *wire.Enc, v *vnode) {
	e.Int(v.pulse)
	e.I32(int32(v.parentPhys))
	e.Bool(v.parentSelf)
	e.Bool(v.hasParent)
	e.Bool(v.evaluated)
	e.Bool(v.sentAny)
	e.Int(v.outstandingReplies)
	saveNodeList(e, v.childPhys)
	e.Bool(v.selfChild)

	qs := sortedInts(v.q)
	e.U32(uint32(len(qs)))
	for _, q := range qs {
		st := v.q[q]
		e.Int(st.q)
		e.Int(st.reports)
		e.Bool(st.anyReady)
		e.Bool(st.resolved)
		e.Bool(st.ready)
		e.Bool(st.forwarded)
		e.Int(st.gateOutstanding)
		saveNodeList(e, st.readyPhys)
		e.Bool(st.readySelf)
	}
	saveIntCounts(e, v.regOutstanding)
	saveIntSet(e, v.registered)
	saveIntCounts(e, v.gaOutstanding)
}

func loadVnode(d *wire.Dec) *vnode {
	v := &vnode{
		pulse:              d.Int(),
		parentPhys:         graph.NodeID(d.I32()),
		parentSelf:         d.Bool(),
		hasParent:          d.Bool(),
		evaluated:          d.Bool(),
		sentAny:            d.Bool(),
		outstandingReplies: d.Int(),
		childPhys:          loadNodeList(d),
		selfChild:          d.Bool(),
	}
	nQ := int(d.U32())
	v.q = make(map[int]*qstate, nQ)
	for i := 0; i < nQ && !d.Failed(); i++ {
		st := &qstate{
			q:               d.Int(),
			reports:         d.Int(),
			anyReady:        d.Bool(),
			resolved:        d.Bool(),
			ready:           d.Bool(),
			forwarded:       d.Bool(),
			gateOutstanding: d.Int(),
			readyPhys:       loadNodeList(d),
			readySelf:       d.Bool(),
		}
		if !d.Failed() {
			v.q[st.q] = st
		}
	}
	v.regOutstanding = loadIntCounts(d)
	v.registered = loadIntSet(d)
	v.gaOutstanding = loadIntCounts(d)
	return v
}

// --- alpha -----------------------------------------------------------------

// StateCodecOK implements async.StateCodecProbe.
func (a *alphaNode) StateCodecOK() bool { return algoCodecOK(a.algo) }

// SaveState implements wire.StateCodec. The bound-indexed slices are fixed
// length (bound+1, set at construction), so only the entries travel.
func (a *alphaNode) SaveState(e *wire.Enc) {
	saveAlgoState(e, a.algo)
	e.Int(a.pulse)
	for p := range a.recvd {
		saveIncoming(e, a.recvd[p])
		e.Int(a.safeCnt[p])
		e.Int(a.sendAcked[p])
		e.Bool(a.selfSafe[p])
		e.Bool(a.sentSafe[p])
	}
}

// LoadState implements wire.StateCodec.
func (a *alphaNode) LoadState(d *wire.Dec) {
	loadAlgoState(d, a.algo)
	a.pulse = d.Int()
	for p := range a.recvd {
		a.recvd[p] = loadIncoming(d)
		a.safeCnt[p] = d.Int()
		a.sendAcked[p] = d.Int()
		a.selfSafe[p] = d.Bool()
		a.sentSafe[p] = d.Bool()
	}
}

// --- beta ------------------------------------------------------------------

// StateCodecOK implements async.StateCodecProbe.
func (b *betaNode) StateCodecOK() bool { return algoCodecOK(b.algo) }

// SaveState implements wire.StateCodec.
func (b *betaNode) SaveState(e *wire.Enc) {
	saveAlgoState(e, b.algo)
	e.Int(b.pulse)
	for p := range b.recvd {
		saveIncoming(e, b.recvd[p])
		e.Int(b.sendAcked[p])
		e.Bool(b.selfSafe[p])
		e.Int(b.childSafe[p])
		e.Bool(b.reportSent[p])
	}
}

// LoadState implements wire.StateCodec.
func (b *betaNode) LoadState(d *wire.Dec) {
	loadAlgoState(d, b.algo)
	b.pulse = d.Int()
	for p := range b.recvd {
		b.recvd[p] = loadIncoming(d)
		b.sendAcked[p] = d.Int()
		b.selfSafe[p] = d.Bool()
		b.childSafe[p] = d.Int()
		b.reportSent[p] = d.Bool()
	}
}

// --- gamma -----------------------------------------------------------------

// StateCodecOK implements async.StateCodecProbe.
func (gm *gammaNode) StateCodecOK() bool { return algoCodecOK(gm.algo) }

// SaveState implements wire.StateCodec.
func (gm *gammaNode) SaveState(e *wire.Enc) {
	saveAlgoState(e, gm.algo)
	e.Int(gm.pulse)
	for p := range gm.recvd {
		saveIncoming(e, gm.recvd[p])
		e.Int(gm.sendAcked[p])
		e.Bool(gm.safe[p])
	}
	keys := make([]gKey, 0, len(gm.ph))
	for k := range gm.ph {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].cluster != keys[j].cluster {
			return keys[i].cluster < keys[j].cluster
		}
		return keys[i].pulse < keys[j].pulse
	})
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		st := gm.ph[k]
		e.Int(k.cluster)
		e.Int(k.pulse)
		e.Int(st.p1Count)
		e.Bool(st.p1Sent)
		e.Bool(st.cSafe)
		e.Int(st.extSafe)
		e.Int(st.p2Count)
		e.Bool(st.p2Sent)
	}
}

// LoadState implements wire.StateCodec.
func (gm *gammaNode) LoadState(d *wire.Dec) {
	loadAlgoState(d, gm.algo)
	gm.pulse = d.Int()
	for p := range gm.recvd {
		gm.recvd[p] = loadIncoming(d)
		gm.sendAcked[p] = d.Int()
		gm.safe[p] = d.Bool()
	}
	n := int(d.U32())
	gm.ph = make(map[gKey]*gammaPhase, n)
	for i := 0; i < n && !d.Failed(); i++ {
		k := gKey{cluster: d.Int(), pulse: d.Int()}
		st := &gammaPhase{
			p1Count: d.Int(),
			p1Sent:  d.Bool(),
			cSafe:   d.Bool(),
			extSafe: d.Int(),
			p2Count: d.Int(),
			p2Sent:  d.Bool(),
		}
		if !d.Failed() {
			gm.ph[k] = st
		}
	}
}
