package pulse

import (
	"testing"
	"testing/quick"
)

// prevBrute searches Definition 4.4 literally.
func prevBrute(p int) int {
	if p == 0 {
		return 0
	}
	l := Level(p)
	limit := p - 1<<uint(l)
	for cand := limit; cand > 0; cand-- {
		if Level(cand) == l+1 {
			return cand
		}
	}
	return 0
}

func TestLevelSmallValues(t *testing.T) {
	want := map[int]int{1: 0, 2: 1, 3: 0, 4: 2, 6: 1, 8: 3, 12: 2, 20: 2, 1024: 10, 1536: 9}
	for p, l := range want {
		if got := Level(p); got != l {
			t.Errorf("Level(%d) = %d, want %d", p, got, l)
		}
	}
	if Level(0) != LevelInf {
		t.Error("Level(0) must be LevelInf")
	}
}

func TestPrevMatchesBruteForce(t *testing.T) {
	for p := 0; p <= 4096; p++ {
		if got, want := Prev(p), prevBrute(p); got != want {
			t.Fatalf("Prev(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestPrevExamples(t *testing.T) {
	// p=1 (ℓ=0): largest level-1 value ≤ 0 → 0.
	// p=4 (ℓ=2): largest level-3 value ≤ 0 → 0.
	// p=5 (ℓ=0): largest level-1 value ≤ 4 → 2 (4 has level 2).
	// p=6 (ℓ=1): largest level-2 value ≤ 4 → 4.
	// p=12 (ℓ=2): largest level-3 value ≤ 8 → 8.
	// p=20 (ℓ=2): largest level-3 value ≤ 16 → 8 (16 has level 4).
	// p=24 (ℓ=3): largest level-4 value ≤ 16 → 16.
	want := map[int]int{1: 0, 2: 0, 3: 2, 4: 0, 5: 2, 6: 4, 7: 6, 12: 8, 20: 8, 24: 16}
	for p, pr := range want {
		if got := Prev(p); got != pr {
			t.Errorf("Prev(%d) = %d, want %d", p, got, pr)
		}
	}
}

// Lemma 4.7(a): p − prev(p) ≤ 3·2^ℓ(p).
func TestLemma47a(t *testing.T) {
	for p := 1; p <= 1<<14; p++ {
		if gap := p - Prev(p); gap > 3<<uint(Level(p)) {
			t.Fatalf("p=%d: gap %d > 3·2^ℓ=%d", p, gap, 3<<uint(Level(p)))
		}
	}
}

// Lemma 4.7(b): p − prev(prev(p)) ≤ 9·2^ℓ(p).
func TestLemma47b(t *testing.T) {
	for p := 1; p <= 1<<14; p++ {
		if gap := p - Prev2(p); gap > 9<<uint(Level(p)) {
			t.Fatalf("p=%d: gap %d > 9·2^ℓ=%d", p, gap, 9<<uint(Level(p)))
		}
	}
}

// Prev strictly decreases toward zero and raises the level by exactly one
// (until hitting 0).
func TestPrevChainStructure(t *testing.T) {
	for p := 1; p <= 4096; p++ {
		pr := Prev(p)
		if pr >= p {
			t.Fatalf("Prev(%d) = %d not smaller", p, pr)
		}
		if pr != 0 && Level(pr) != Level(p)+1 {
			t.Fatalf("Prev(%d)=%d: level %d, want %d", p, pr, Level(pr), Level(p)+1)
		}
	}
}

// The prev chain from any p reaches 0 in O(log p) steps.
func TestPrevChainLength(t *testing.T) {
	for _, p := range []int{1, 7, 100, 1023, 1 << 16, 1<<16 + 3} {
		steps := 0
		for q := p; q != 0; q = Prev(q) {
			steps++
			if steps > 64 {
				t.Fatalf("prev chain from %d too long", p)
			}
		}
	}
}

// Lemma 4.14: for any p1 there are only O(t) pulses p ≤ 2^t with
// prev(prev(p)) ≤ p1 ≤ p; per level there are at most 10.
func TestLemma414PerLevelCount(t *testing.T) {
	const T = 12
	P := 1 << T
	for _, p1 := range []int{1, 17, 100, 1000, P / 2} {
		perLevel := map[int]int{}
		for p := 1; p <= P; p++ {
			if Prev2(p) <= p1 && p1 <= p {
				perLevel[Level(p)]++
			}
		}
		for l, c := range perLevel {
			if c > 10 {
				t.Fatalf("p1=%d level=%d: %d pulses, want <= 10", p1, l, c)
			}
		}
	}
}

// Lemma 4.16: #pulses p in (0, 2^t] with prev(prev(p)) = 0 is O(t).
func TestLemma416SourcePulseCount(t *testing.T) {
	for T := 1; T <= 14; T++ {
		count := 0
		for p := 1; p <= 1<<uint(T); p++ {
			if Prev2(p) == 0 {
				count++
			}
		}
		if count > 10*(T+1) {
			t.Fatalf("T=%d: %d root pulses, want O(T)", T, count)
		}
	}
}

// Lemma 4.13: Σ 2^ℓ(p) over p ≤ 2^t equals (t+1)·2^t exactly... bounded by.
func TestLemma413SumLevels(t *testing.T) {
	for T := 0; T <= 14; T++ {
		P := 1 << uint(T)
		got := SumLevels(P)
		bound := (T + 1) * P
		if got > bound {
			t.Fatalf("T=%d: SumLevels=%d > (t+1)2^t=%d", T, got, bound)
		}
		if got < P {
			t.Fatalf("T=%d: SumLevels=%d < 2^t", T, got)
		}
	}
}

func TestQuickPrevInvariants(t *testing.T) {
	f := func(raw uint16) bool {
		p := int(raw) + 1
		pr := Prev(p)
		if pr < 0 || pr >= p {
			return false
		}
		if pr != prevBrute(p) {
			return false
		}
		return p-pr <= 3<<uint(Level(p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative-level": func() { Level(-1) },
		"zero-hostdist":  func() { HostDistBound(0) },
		"zero-coverlvl":  func() { CoverLevel(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
