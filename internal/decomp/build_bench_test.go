package decomp

import (
	"testing"

	"repro/internal/graph"
)

// Construction microbenchmarks for the cluster-tree substrate. Allocation
// counts are the first-class metric: the builder's hot path is dominated by
// per-step scratch and per-tree bookkeeping, so allocs/op tracks the map
// churn the dense representation is meant to eliminate.

func benchBuild(b *testing.B, g *graph.Graph, k int) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(g, k, nil)
	}
}

func BenchmarkBuildGrid10x10K3(b *testing.B) { benchBuild(b, graph.Grid(10, 10), 3) }
func BenchmarkBuildCycle128K5(b *testing.B)  { benchBuild(b, graph.Cycle(128), 5) }
func BenchmarkBuildER128M400K3(b *testing.B) { benchBuild(b, graph.RandomConnected(128, 400, 21), 3) }
func BenchmarkBuildGrid16x16K1(b *testing.B) { benchBuild(b, graph.Grid(16, 16), 1) }
