package async

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/wire"
)

// multiFlood is the matrix workload: node 0 starts k concurrent floods
// (distinct protos, staggered stages), every node re-floods each proto
// once and outputs how many protos it has seen. It exercises outbox stage
// priority, per-stage round-robin, per-proto accounting, and typed outputs
// under heavy link contention.
type multiFlood struct {
	NopAck
	k    int
	seen map[Proto]bool
}

func (h *multiFlood) Init(n *Node) {
	h.seen = make(map[Proto]bool)
	if n.ID() != 0 {
		return
	}
	for i := 0; i < h.k; i++ {
		p := Proto(10 + i)
		h.seen[p] = true
		for _, nb := range n.Neighbors() {
			n.Send(nb.Node, Msg{Proto: p, Stage: i % 2, Body: wire.Body{Kind: 1, A: int64(i)}})
		}
	}
	n.Output(len(h.seen))
}

func (h *multiFlood) Recv(n *Node, _ graph.NodeID, m Msg) {
	if h.seen[m.Proto] {
		return
	}
	h.seen[m.Proto] = true
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, m)
	}
	n.Output(len(h.seen))
}

func (h *multiFlood) CloneStateInto(dst Handler) {
	d := dst.(*multiFlood)
	d.k = h.k
	if d.seen == nil && h.seen != nil {
		d.seen = make(map[Proto]bool, len(h.seen))
	}
	clear(d.seen)
	for p := range h.seen {
		d.seen[p] = true
	}
}

// matrixGraphs are the determinism-matrix topologies: a contention-free
// path, a cycle, a grid, a hub-heavy star, and an irregular random graph.
func matrixGraphs(seed uint64) []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"path40", graph.Path(40)},
		{"cycle48", graph.Cycle(48)},
		{"grid7x9", graph.Grid(7, 9)},
		{"star32", graph.Star(32)},
		{"er60", graph.RandomConnected(60, 150, seed)},
	}
}

func matrixAdversaries(n int, seed uint64) []Adversary {
	return []Adversary{
		Fixed{D: 1},
		Fixed{D: 0.37},
		SeededRandom{Seed: seed},
		Skew{Cut: graph.NodeID(n / 2), FastD: 1.0 / 64},
		Flaky{Seed: seed ^ 0xABCD},
		EdgeLottery{Seed: seed ^ 0x1234},
	}
}

// TestBoundedLagMatrix is the determinism contract of the parallel mode:
// across adversaries x graphs x seeds x workloads, a bounded-lag run with
// a forced 4-worker pool must produce a Result — time, quiescence,
// message and ack counts, per-proto breakdown, outputs, and the full
// delivery trace — that is deep-equal to the serial run's. Run it with
// -race: it is also the engine's data-race regression test.
func TestBoundedLagMatrix(t *testing.T) {
	workloads := []struct {
		name string
		mk   func() func(graph.NodeID) Handler
	}{
		{"flood", func() func(graph.NodeID) Handler {
			return func(graph.NodeID) Handler { return &floodHandler{} }
		}},
		{"multiflood4", func() func(graph.NodeID) Handler {
			return func(graph.NodeID) Handler { return &multiFlood{k: 4} }
		}},
	}
	for _, seed := range []uint64{3, 17} {
		for _, tg := range matrixGraphs(seed) {
			for _, adv := range matrixAdversaries(tg.g.N(), seed) {
				for _, wl := range workloads {
					serial := New(tg.g, adv, wl.mk()).WithMode(ModeSingle).KeepTrace().Run()
					par := New(tg.g, adv, wl.mk()).WithMode(ModeMulti).
						WithWorkers(4).WithMinParallel(1).KeepTrace().Run()
					if !reflect.DeepEqual(serial, par) {
						t.Fatalf("seed=%d graph=%s adv=%s workload=%s: parallel Result differs from serial\nserial:   %+v\nparallel: %+v",
							seed, tg.name, adv.Name(), wl.name, summarize(serial), summarize(par))
					}
					if len(serial.Trace) == 0 || serial.Msgs == 0 {
						t.Fatalf("seed=%d graph=%s adv=%s workload=%s: degenerate run (msgs=%d trace=%d)",
							seed, tg.name, adv.Name(), wl.name, serial.Msgs, len(serial.Trace))
					}
				}
			}
		}
	}
}

// summarize keeps matrix failure output readable (traces run to thousands
// of entries).
func summarize(r Result) Result {
	if len(r.Trace) > 8 {
		r.Trace = r.Trace[:8]
	}
	return r
}

// TestBoundedLagWorkerSweep pins determinism across pool sizes, including
// the degenerate one-worker pool (pure staging, no goroutines).
func TestBoundedLagWorkerSweep(t *testing.T) {
	g := graph.RandomConnected(50, 120, 9)
	mk := func() func(graph.NodeID) Handler {
		return func(graph.NodeID) Handler { return &multiFlood{k: 3} }
	}
	adv := Skew{Cut: 25, FastD: 1.0 / 32}
	want := New(g, adv, mk()).WithMode(ModeSingle).KeepTrace().Run()
	for _, w := range []int{1, 2, 3, 8, 16} {
		got := New(g, adv, mk()).WithMode(ModeMulti).
			WithWorkers(w).WithMinParallel(1).KeepTrace().Run()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: Result differs from serial", w)
		}
	}
}

// TestBoundedLagAutoMode smoke-checks ModeAuto: whatever it picks must
// reproduce the serial Result bit-for-bit.
func TestBoundedLagAutoMode(t *testing.T) {
	g := graph.RandomConnected(80, 2100, 5)
	mk := func() func(graph.NodeID) Handler {
		return func(graph.NodeID) Handler { return &floodHandler{} }
	}
	want := New(g, Fixed{D: 1}, mk()).WithMode(ModeSingle).Run()
	got := New(g, Fixed{D: 1}, mk()).WithMode(ModeAuto).Run()
	if !reflect.DeepEqual(want, got) {
		t.Fatal("ModeAuto Result differs from serial")
	}
}

// TestMinDelayContract samples every shipped adversary across endpoints,
// sequence numbers, and protos, asserting no Delay ever undercuts the
// declared MinDelay (the bounded-lag mode's safety condition) or leaves
// the model's (0,1] range.
func TestMinDelayContract(t *testing.T) {
	const n = 64
	advs := []Adversary{
		Fixed{D: 1},
		Fixed{D: 0.25},
		Fixed{D: 0},   // clamps to the minimum positive delay
		Fixed{D: 1.5}, // clamps to 1
		SeededRandom{Seed: 1},
		SeededRandom{Seed: 0xDEAD},
		Skew{Cut: n / 2, FastD: 1.0 / 64},
		Skew{Cut: 0, FastD: 0.5},
		Flaky{Seed: 7},
		EdgeLottery{Seed: 7},
	}
	for _, adv := range StandardAdversaries(n, 99) {
		advs = append(advs, adv)
	}
	for _, adv := range advs {
		min := adv.MinDelay()
		if min <= 0 || min > 1 {
			t.Fatalf("%s: MinDelay %g outside (0,1]", adv.Name(), min)
		}
		for from := 0; from < n; from += 3 {
			for to := 0; to < n; to += 5 {
				for seq := uint64(0); seq < 40; seq++ {
					for _, p := range []Proto{0, 1, 7, 200} {
						d := adv.Delay(graph.NodeID(from), graph.NodeID(to), seq, p)
						if d <= 0 || d > 1 {
							t.Fatalf("%s: Delay(%d,%d,%d,%d) = %g outside (0,1]",
								adv.Name(), from, to, seq, p, d)
						}
						if d < min {
							t.Fatalf("%s: Delay(%d,%d,%d,%d) = %g below declared MinDelay %g",
								adv.Name(), from, to, seq, p, d, min)
						}
					}
				}
			}
		}
	}
}

// TestResetReuse runs one engine through three Reset cycles — across
// adversaries and execution modes — and requires every rerun to reproduce
// the fresh-engine Result exactly.
func TestResetReuse(t *testing.T) {
	g := graph.RandomConnected(40, 100, 21)
	mk := func(graph.NodeID) Handler { return &multiFlood{k: 3} }
	advs := []Adversary{SeededRandom{Seed: 5}, Fixed{D: 1}, Skew{Cut: 20, FastD: 1.0 / 16}}

	var reused *Sim
	for i, adv := range advs {
		want := New(g, adv, mk).Run()
		if reused == nil {
			reused = New(g, adv, mk)
		} else {
			reused.Reset(adv, mk)
		}
		got := reused.Run()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("cycle %d (%s): reused engine Result differs from fresh engine", i, adv.Name())
		}
	}
	// A parallel run after a serial Reset cycle must still match.
	want := New(g, Fixed{D: 1}, mk).Run()
	reused.Reset(Fixed{D: 1}, mk)
	reused.WithMode(ModeMulti).WithWorkers(3).WithMinParallel(1)
	if got := reused.Run(); !reflect.DeepEqual(want, got) {
		t.Fatal("reused engine in ModeMulti differs from fresh serial engine")
	}
}

// TestRunTwicePanicsUntilReset pins the Run/Reset lifecycle contract.
func TestRunTwicePanicsUntilReset(t *testing.T) {
	g := graph.Path(2)
	mk := func(graph.NodeID) Handler { return &floodHandler{} }
	s := New(g, Fixed{D: 1}, mk)
	s.Run()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("second Run without Reset should panic")
			}
		}()
		s.Run()
	}()
	s.Reset(Fixed{D: 1}, mk)
	s.Run() // must not panic
}

// slowAck lies about its lookahead: MinDelay claims 0.5 but acks travel at
// 0.1. The engine must refuse the delay in every mode rather than produce
// an unsound window.
type lyingAdversary struct{ Fixed }

func (lyingAdversary) Delay(_, to graph.NodeID, _ uint64, _ Proto) float64 {
	if to == 0 {
		return 0.1 // ack direction back to node 0
	}
	return 0.5
}
func (lyingAdversary) MinDelay() float64 { return 0.5 }
func (lyingAdversary) Name() string      { return "lying" }

func TestMinDelayViolationPanics(t *testing.T) {
	for _, mode := range []ExecutionMode{ModeSingle, ModeMulti, ModeSpec} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("mode %s: undercutting MinDelay should panic", mode)
				}
			}()
			New(graph.Path(2), lyingAdversary{}, func(graph.NodeID) Handler {
				return &floodHandler{}
			}).WithMode(mode).WithMinParallel(1).Run()
		}()
	}
}

// panicAt floods normally but panics when a chosen node first receives —
// mid-window in ModeMulti, with staged effects in flight.
type panicAt struct {
	floodHandler
	trigger graph.NodeID
}

func (h *panicAt) Recv(n *Node, from graph.NodeID, m Msg) {
	if n.ID() == h.trigger && !h.seen {
		panic("boom")
	}
	h.floodHandler.Recv(n, from, m)
}

// CloneStateInto must be overridden: the promoted floodHandler method would
// type-assert dst to *floodHandler and miss the trigger field.
func (h *panicAt) CloneStateInto(dst Handler) {
	d := dst.(*panicAt)
	d.trigger = h.trigger
	d.seen = h.seen
}

// TestResetAfterMidWindowPanic pins the recoverable-panic contract the
// doubling harness relies on: after a ModeMulti run dies mid-window, Reset
// must clear the workers' staged events, counters, and recorded panic so
// the rearmed engine reproduces a fresh engine's Result exactly.
func TestResetAfterMidWindowPanic(t *testing.T) {
	g := graph.RandomConnected(40, 100, 7)
	mkBoom := func(graph.NodeID) Handler { return &panicAt{trigger: 20} }
	mk := func(graph.NodeID) Handler { return &floodHandler{} }
	want := New(g, Fixed{D: 1}, mk).Run()

	s := New(g, Fixed{D: 1}, mkBoom).WithMode(ModeMulti).WithWorkers(4).WithMinParallel(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the trigger panic")
			}
		}()
		s.Run()
	}()
	s.Reset(Fixed{D: 1}, mk)
	if got := s.Run(); !reflect.DeepEqual(want, got) {
		t.Fatalf("rearmed engine after mid-window panic differs from fresh engine:\n%+v\nvs\n%+v", want, got)
	}
}
