// Package wire defines the compact value message payload shared by both
// simulation engines and every protocol layer.
//
// Historically every message body in the system was an `any`: the async
// outbox slots, syncrun inboxes, and each protocol's message structs boxed
// one heap allocation per send and paid an interface type-switch per
// receive. Body replaces that with a plain value — a kind tag, a few fixed
// integer words, and an optional variable-length []int32 segment carved
// from a recycling Arena — so the send/deliver hot path of both engines
// performs zero steady-state allocations per message. Body is deliberately
// pointer-free (the segment is an 8-byte Arena handle, not a slice): the
// engine buffers that carry Bodies by value are invisible to the garbage
// collector — no scan, no write barriers on copies.
//
// # Namespaces
//
// Kind values are scoped to the protocol that carries them: the async
// engine routes by async.Proto first (via Mux), and the lockstep runner
// hosts one algorithm at a time, so two protocols may reuse the same Kind
// numbers without ambiguity.
//
// # Framing
//
// Layers that wrap another protocol's payload — the synchronizer's
// pulse-tagged algorithm messages — use Frame/Unframe. Frame stores the
// inner payload's Kind in Sub and the pulse in P, keeping the inner words
// and segment in place: framing is zero-copy and needs no extra space.
// Consequently Sub and P are RESERVED for framing layers; payload
// encoders must leave them zero (Frame panics otherwise).
//
// # Segment ownership
//
// A segment is owned by whoever holds the Body. Sending a Body transfers
// segment ownership to the engine, which releases it back to the arena
// once the message's lifecycle ends (after the ack callback in the async
// engine, after batch delivery in the lockstep runner). Three rules
// follow:
//
//   - a Body with a segment may be sent at most once; to send the same
//     payload to several neighbors, Alloc (and fill) once per send;
//   - a receiver that wants data from a delivered segment past the
//     callback must copy it out of the Arena view inside the callback;
//   - framed payloads (the synchronizer's algorithm messages) must be
//     seg-free — their delivery is deferred past the carrying message's
//     lifecycle, which would dangle the handle.
//
// Seg-free Bodies (the common case — every built-in protocol fits its
// payload in the fixed words) are unrestricted values.
package wire

// Kind identifies a message type within its protocol's namespace. Zero is
// reserved ("no message").
type Kind uint16

// Body is the universal compact message payload.
type Body struct {
	// Kind tags the payload type; the owning protocol defines the values.
	Kind Kind
	// Sub is reserved for framing layers: the framed payload's Kind.
	Sub Kind
	// P is reserved for framing layers: the framed pulse (or session).
	P int32
	// A, B, C, D are fixed integer words whose meaning is per Kind.
	A, B, C, D int64
	// Seg optionally references a variable-length segment in the run's
	// Arena (resolve with Arena.Data). The zero Seg means none. See the
	// package comment for the ownership rules.
	Seg Seg
}

// Tag returns a words-free Body of the given kind (pure signals).
func Tag(k Kind) Body { return Body{Kind: k} }

// FromBool encodes a bool into a word.
func FromBool(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// ToBool decodes a FromBool word.
func ToBool(w int64) bool { return w != 0 }

// Frame wraps inner as a framed payload of the given outer kind and pulse:
// the inner kind moves to Sub, the pulse to P, and the words and segment
// stay in place (zero-copy). Framing an already-framed Body panics —
// nesting is one level deep by design; deeper stacks must encode the inner
// payload into the segment explicitly.
func Frame(outer Kind, pulse int, inner Body) Body {
	if inner.Sub != 0 || inner.P != 0 {
		panic("wire: Frame of an already-framed Body")
	}
	inner.Sub = inner.Kind
	inner.Kind = outer
	inner.P = int32(pulse)
	return inner
}

// Unframe reverses Frame, returning the pulse and the inner payload.
func (b Body) Unframe() (pulse int, inner Body) {
	pulse = int(b.P)
	b.Kind = b.Sub
	b.Sub = 0
	b.P = 0
	return pulse, b
}

// Equal reports whether two Bodies carry the same message. Bodies are
// plain values, so this is field equality; two segment handles are equal
// exactly when they reference the same arena storage. Note that handle
// values depend on arena allocation order — identical for serial replays
// of one execution, but scheduling-dependent when a worker pool allocates
// concurrently (syncrun ModeMulti) — so cross-run comparisons of
// seg-carrying Bodies are only meaningful for serially-allocated traffic;
// compare resolved segment contents otherwise.
func Equal(a, b Body) bool { return a == b }
