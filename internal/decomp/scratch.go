package decomp

import (
	"repro/internal/graph"
)

// BFSScratch is an epoch-stamped multi-source bounded BFS over G — the
// scratch discipline the decomposition builder uses per grow-step,
// exported so the cover expander and the cover repair path share one
// allocation-free traversal: entries are valid iff stamp[v] equals the
// current epoch, so consecutive runs reuse the dense arrays with no
// clearing.
//
// Run optionally masks the traversal by an alive set, which is what
// makes incremental repair possible: a masked run from a cluster's
// surviving seeds explores exactly the region a from-scratch masked
// build would, and a masked run from the faulted nodes delimits the
// clusters whose regions a fault can have touched.
type BFSScratch struct {
	g     *graph.Graph
	epoch int32
	stamp []int32
	dist  []int32
	par   []int32
	queue []graph.NodeID
}

// NewBFSScratch returns scratch sized for g.
func NewBFSScratch(g *graph.Graph) *BFSScratch {
	n := g.N()
	return &BFSScratch{
		g:     g,
		stamp: make([]int32, n),
		dist:  make([]int32, n),
		par:   make([]int32, n),
	}
}

// Run grows a multi-source BFS from sources to the given depth. alive,
// when non-nil, restricts the traversal: dead nodes are neither visited
// nor relayed through (sources are assumed alive — pre-filter them).
// Duplicate sources are admitted once. The returned slice lists visited
// nodes in BFS order, sources first, and is only valid until the next
// Run.
func (b *BFSScratch) Run(sources []graph.NodeID, depth int, alive []bool) []graph.NodeID {
	b.epoch++
	b.queue = b.queue[:0]
	for _, v := range sources {
		if b.stamp[v] == b.epoch {
			continue
		}
		b.stamp[v] = b.epoch
		b.dist[v] = 0
		b.par[v] = -1
		b.queue = append(b.queue, v)
	}
	for head := 0; head < len(b.queue); head++ {
		v := b.queue[head]
		if b.dist[v] == int32(depth) {
			continue
		}
		for _, nb := range b.g.Neighbors(v) {
			u := nb.Node
			if b.stamp[u] == b.epoch || (alive != nil && !alive[u]) {
				continue
			}
			b.stamp[u] = b.epoch
			b.dist[u] = b.dist[v] + 1
			b.par[u] = int32(v)
			b.queue = append(b.queue, u)
		}
	}
	return b.queue
}

// Visited reports whether v was reached by the most recent Run.
func (b *BFSScratch) Visited(v graph.NodeID) bool { return b.stamp[v] == b.epoch }

// Dist returns v's BFS distance in the most recent Run; only valid when
// Visited(v).
func (b *BFSScratch) Dist(v graph.NodeID) int { return int(b.dist[v]) }

// Parent returns v's BFS predecessor in the most recent Run (-1 at a
// source); only valid when Visited(v).
func (b *BFSScratch) Parent(v graph.NodeID) graph.NodeID { return graph.NodeID(b.par[v]) }
