package bench

import (
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"repro/internal/async"
	"repro/internal/graph"
)

// BenchmarkSnapshotSweep is the committed BENCH_9 sweep: the state
// plane's overhead (E18's benchmark sibling). Each row runs the flood
// checkpointed at a fraction of its event count and reports the frame
// size, serialization cost per checkpoint, restore cost, and the
// checkpointed run's wall-clock ratio against the uninterrupted baseline.
// Every row asserts the round-trip invariant before reporting — the run
// restored from the last checkpoint must finish byte-identical to the
// baseline.
//
// The default graphs are small so `go test -bench` stays cheap; the
// committed sweep sets SNAP_BENCH_SPEC=grid3d:100x100x100 (the
// million-node smoke graph; see `make bench-snapshot`) to append the
// million-node row.
func BenchmarkSnapshotSweep(b *testing.B) {
	type snapCase struct {
		spec  string
		divs  []uint64 // checkpoint interval = eventEstimate/div + 1
		bytes bool     // report per-node byte normalization
	}
	cases := []snapCase{
		{"grid:40x40", []uint64{8, 2, 1}, false},
		{"er:n=500,m=1500,seed=3", []uint64{8, 2, 1}, false},
	}
	if spec := os.Getenv("SNAP_BENCH_SPEC"); spec != "" {
		cases = append(cases, snapCase{spec, []uint64{4}, true})
	}
	for _, tc := range cases {
		g, err := graph.FromSpec(tc.spec)
		if err != nil {
			b.Fatalf("SNAP_BENCH_SPEC %q: %v", tc.spec, err)
		}
		mk := func(id graph.NodeID) async.Handler { return &e18Flood{root: id == 0} }
		adv := async.Adversary(async.SeededRandom{Seed: 11})

		t0 := time.Now()
		base := async.New(g, adv, mk)
		for !base.RunSteps(1 << 30) {
		}
		baseRes := base.FinishResult()
		baseMs := float64(time.Since(t0)) / 1e6
		est := baseRes.Msgs + baseRes.Acks

		for _, div := range tc.divs {
			iv := est/div + 1
			b.Run(fmt.Sprintf("spec=%s/interval=%d", tc.spec, iv), func(b *testing.B) {
				var (
					snaps   uint64
					saveNs  int64
					frameB  int
					runMs   float64
					restoMs float64
				)
				for i := 0; i < b.N; i++ {
					snaps, saveNs = 0, 0
					t1 := time.Now()
					sim := async.New(g, adv, mk)
					var last []byte
					for {
						done := sim.RunSteps(iv)
						s0 := time.Now()
						snap, err := sim.Snapshot()
						saveNs += int64(time.Since(s0))
						if err != nil {
							b.Fatal(err)
						}
						snaps++
						last = snap
						if done {
							break
						}
					}
					res := sim.FinishResult()
					runMs = float64(time.Since(t1)) / 1e6
					frameB = len(last)

					r0 := time.Now()
					cont := async.New(g, adv, mk)
					if err := cont.Restore(last); err != nil {
						b.Fatal(err)
					}
					restoMs = float64(time.Since(r0)) / 1e6
					if !reflect.DeepEqual(res, baseRes) || !reflect.DeepEqual(cont.Run(), baseRes) {
						b.Fatal("checkpointed or restored run diverged from the uninterrupted baseline")
					}
				}
				b.ReportMetric(float64(snaps), "snaps")
				b.ReportMetric(float64(frameB), "frameBytes")
				b.ReportMetric(float64(saveNs)/1e6/float64(snaps), "saveMsPerSnap")
				b.ReportMetric(restoMs, "restoreMs")
				b.ReportMetric(runMs, "runMs")
				b.ReportMetric(baseMs, "baseMs")
				b.ReportMetric(runMs/baseMs, "timeX")
				if tc.bytes {
					b.ReportMetric(float64(frameB)/float64(g.N()), "frameB/node")
				}
			})
		}
	}
}
