package async

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/execpolicy"
	"repro/internal/graph"
	"repro/internal/outval"
	"repro/internal/wire"
)

// ExecutionMode selects how Sim.Run consumes the event queue. Results are
// byte-identical across modes; the choice is purely about wall-clock
// performance.
type ExecutionMode int

const (
	// ModeAuto picks a parallel executor when the graph is large enough to
	// amortize per-round coordination and more than one CPU is available:
	// ModeMulti when the adversary's lookahead makes safe windows worth a
	// barrier, ModeSpec when lookahead is tiny but every handler implements
	// StateCloner, else ModeSingle. The decision lives in
	// execpolicy.AsyncAuto, shared with the lockstep runner's heuristic.
	ModeAuto ExecutionMode = iota
	// ModeSingle pops one event at a time on the calling goroutine.
	ModeSingle
	// ModeMulti executes bounded-lag time windows on a worker pool: per
	// window, each worker drains its own node shard's event wheel, staging
	// effects that merge deterministically at the window barrier.
	ModeMulti
	// ModeSpec executes speculative rounds on a worker pool: each worker
	// optimistically drains its shard past the safe window up to an
	// adaptive horizon, running cloned handlers and logging their effects;
	// a serial commit walk at the round barrier replays the effects in
	// global (t, seq) order through the serial engine's own code path,
	// detects stragglers, and rolls back only the poisoned suffix. Requires
	// every handler to implement StateCloner; otherwise the run falls back
	// to ModeMulti (see SpecStats.FellBack).
	ModeSpec
)

func (m ExecutionMode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeSingle:
		return "single"
	case ModeMulti:
		return "multi"
	case ModeSpec:
		return "spec"
	}
	return fmt.Sprintf("ExecutionMode(%d)", int(m))
}

// Sim is a deterministic discrete-event simulation of one asynchronous
// execution: a graph, one Handler per node, and a delay adversary.
//
// All per-link state is dense: the graph's CSR link index (graph.LinkID)
// addresses a flat []outbox and []uint64 transmission-sequence array, both
// pre-sized at New, and message bodies are wire.Body values end to end —
// the send/dispatch/deliver hot path performs no map operations, no
// interface boxing, and no steady-state allocations. Per-protocol message
// counts live in a flat slice indexed by Proto (the map form exists only
// at the Result/Stats boundary), and node outputs are stored as typed
// wire.Body values (outval encoding) rather than boxed interfaces.
// Variable-length segments come from a per-run arena and are recycled when
// each message's lifecycle ends (after the sender's Ack callback).
//
// Run supports a bounded-lag parallel mode (ModeMulti): because every
// adversary declares a positive delay lower bound (Adversary.MinDelay),
// all events inside one MinDelay-wide window are pairwise independent
// across nodes — any event they cause lands at or beyond the window's end.
// Events are owned by the node whose handler they invoke (deliveries by
// the receiver, ack-returns by the sender), the calendar queue is sharded
// by owner across the workers, and each worker executes its shard's window
// slice in (t, seq) order against worker-private staging buffers. At the
// window barrier the staged schedules merge in exactly the order the
// serial engine would have issued them, so event sequence numbers — and
// therefore every tie-break, every Result field, and the message trace —
// are byte-identical to ModeSingle. Handlers on different nodes must not
// share mutable state (read-only shared data is fine), the same contract
// the lockstep runner's Multi mode imposes.
type Sim struct {
	g         *graph.Graph
	adv       Adversary
	lookahead float64 // adv.MinDelay(), validated at New/Reset
	// faults is the schedule unwrapped from a Faulty adversary at New/Reset
	// (nil when absent). It is consulted once per transmission attempt at
	// dispatch — the same point in the event order in every execution mode,
	// so fault decisions are byte-identical across Single/Multi/Spec/shard.
	faults   *FaultSchedule
	handlers []Handler
	nodes    []Node

	// nodeBase mirrors g.NodeBase(): per-node arrays (handlers, nodes,
	// hasOut, output slabs) are NLocal-sized and indexed by id - nodeBase.
	// Whole graphs have base 0, so the subtraction is free noise there.
	nodeBase graph.NodeID

	// Shard-staged mode (see shard.go): direct-context schedule calls are
	// appended to shardLog — keyed by the triggering event like ModeMulti
	// staging — instead of entering the local queue, because event seqs
	// are granted by the cross-process coordinator's merge.
	shardMode bool
	shardLog  []stagedEv

	mode        ExecutionMode
	workers     int
	minParallel int

	events  eventQueue   // ModeSingle event store
	shards  []eventQueue // ModeMulti per-worker event stores, by owner node
	sharded bool
	eventSq uint64
	now     float64

	// Per-directed-link hot state, indexed by graph.LinkID and split by
	// temperature: busy is the 1-byte in-flight flag every send and ack
	// touches; txSeq is the 4-byte transmission sequence the adversary is
	// consulted with (overflow-checked); boxes holds the lazily allocated
	// contention queues — a slot stays nil until a send finds its link
	// busy, so uncontended links cost 13 bytes, not an outbox struct.
	// Box slots are only written by the link's owning worker, so lazy
	// allocation is race-free in the parallel modes.
	busy  []bool
	txSeq []uint32
	boxes []*outbox

	// Outputs: typed bodies (Kind != 0) with a boxed escape hatch for
	// values outval cannot encode (zero body slot, value in the any slot).
	// Both value slabs are lazy — allocated once, on the first output of
	// the respective kind, published via atomic pointer so concurrent
	// owner-sharded workers agree on the slab before writing their own
	// (disjoint) slots. Only the 1-byte hasOut column is eager.
	outBodyP       atomic.Pointer[[]wire.Body]
	outAnyP        atomic.Pointer[[]any]
	outMu          sync.Mutex
	hasOut         []bool
	outCount       int
	lastOutputTime float64
	denseOut       bool

	msgs     uint64
	acks     uint64
	perProto []uint64 // dense, indexed by Proto

	// Fault-plane accounting: transmissions lost to the schedule, retries
	// scheduled, and messages abandoned with their budget exhausted.
	dropped uint64
	retrans uint64
	undeliv uint64

	keepTrace bool
	trace     []TraceEntry

	maxEvents uint64
	steps     uint64
	running   bool

	// resumed marks an engine whose state was loaded from a snapshot
	// (Restore/ShardRestoreFrame): the next run continues the interrupted
	// one, so handlers are not re-initialized and pending events already
	// populate the queue.
	resumed bool

	// inWindow is true while a parallel window or speculative round is in
	// flight — between fan-out and barrier merge, the engine's counters are
	// a committed prefix and Stats refuses to serve them as a snapshot.
	inWindow bool

	// direct is the apply-immediately execution context (ModeSingle and
	// the Init phase); wctx are the ModeMulti worker contexts.
	direct       execCtx
	wctx         []execCtx
	workerPanics []any
	mergeCur     []int

	// Speculative-executor state (ModeSpec); see spec.go. mk is retained so
	// rounds can build clone targets lazily.
	specMk        func(id graph.NodeID) Handler
	specClones    []Handler // per-node clone slot, ping-ponged with handlers
	specCloneEp   []uint64  // round epoch when specClones[v] was refreshed
	specSwapEp    []uint64  // round epoch when handlers[v]/specClones[v] swapped
	specRejEp     []uint64  // round epoch when node v owned a rejected event
	specOutEp     []uint64  // round epoch when v's speculative output view became valid
	specOutView   []bool    // speculative-phase view of hasOut[v]
	specOutSaved  []bool    // hasOut[v] at the round start (repair's evolving local view)
	specRoundEp   uint64    // current round epoch; never reused, survives Reset
	specNewMin    float64   // min t scheduled during the in-flight commit walk
	specWalking   bool      // commit walk in progress (schedule feeds specNewMin)
	specFixedSpan float64   // WithSpecHorizon; 0 = adaptive
	specRelease   []wire.Seg
	swallowCtx    execCtx
	specStats     SpecStats

	// arena backs Body.Seg segments; sent segments return to it after the
	// ack completes the message's lifecycle.
	arena wire.Arena
}

// SpecStats is the speculative executor's round accounting: how many
// barrier rounds ran, how many events were executed optimistically, how
// many of those committed, how many were rolled back and re-executed in a
// later round, and how many committed events needed their handler's state
// transition replayed because the node also owned a rolled-back event.
// Rejected/Executed is the rollback rate E15 charts per adversary. FellBack
// reports that a ModeSpec run used the bounded-lag executor instead because
// at least one handler does not implement StateCloner.
type SpecStats struct {
	Rounds    uint64
	Executed  uint64
	Committed uint64
	Rejected  uint64
	Replayed  uint64
	FellBack  bool
}

// TraceKind distinguishes delivery-trace entry types. The zero value is a
// normal delivery, so fault-free traces are unchanged by the field.
type TraceKind uint8

const (
	// TraceDeliver is a delivered message (the zero value).
	TraceDeliver TraceKind = iota
	// TraceUndeliverable records a message abandoned after its retransmit
	// budget was exhausted by the fault schedule — typed evidence instead
	// of a hang. Its (T, Seq) key is the event that issued the final failed
	// attempt.
	TraceUndeliverable
)

// TraceEntry records one delivered message (KeepTrace). Entries appear in
// delivery order — the engine's (t, seq) event order — and are identical
// across execution modes. Note that for segment-carrying bodies the Seg
// handle value, not its contents, is recorded; concurrent arena allocation
// in ModeMulti may assign different handles than ModeSingle (no shipped
// protocol carries segments in traced runs).
type TraceEntry struct {
	T        float64
	Seq      uint64
	From, To graph.NodeID
	Msg      Msg
	Kind     TraceKind
}

// Result summarizes one asynchronous run. Every field is safe to retain
// after Sim.Reset reuses the engine.
type Result struct {
	// Time is the normalized time (τ = 1) at which the last node produced
	// its output — the paper's time complexity measure (Appendix B).
	Time float64
	// QuiesceTime is when the last event of any kind fired (auxiliary
	// cleanup may continue after outputs, §1.3.1).
	QuiesceTime float64
	// Msgs counts algorithm messages (excludes link-level acks).
	Msgs uint64
	// Acks counts link-level acknowledgments (the model's 2x factor).
	Acks uint64
	// Dropped counts transmission attempts lost to the fault schedule
	// (wire drops, crashed receivers, down links). Zero without faults.
	Dropped uint64
	// Retrans counts retransmission attempts the delivery layer scheduled
	// for lost transmissions (each consumes budget and a fresh adversary
	// delay).
	Retrans uint64
	// Undeliverable counts messages abandoned with their retransmit budget
	// exhausted; each also appears as a TraceUndeliverable entry in traced
	// runs.
	Undeliverable uint64
	// PerProto breaks Msgs down by protocol tag (materialized from the
	// engine's dense counters at this boundary).
	PerProto map[Proto]uint64
	// Outputs maps node -> decoded output for nodes that called Output.
	// With DenseOutputs it carries only the rare non-encodable values;
	// everything else is in OutBodies.
	Outputs map[graph.NodeID]any
	// OutBodies/OutSet are the dense typed outputs, populated only with
	// DenseOutputs: OutSet[v] reports whether node v output, OutBodies[v]
	// is its outval-encoded value. Finishing a run in this mode allocates
	// two slices, not one interface box per node.
	OutBodies []wire.Body
	OutSet    []bool
	// Trace lists every delivered message (only with KeepTrace).
	Trace []TraceEntry
}

// New builds a simulation. mk is called once per node, in ascending node
// order, to create that node's Handler. The graph is finalized if it was
// not already (the dense link index requires it).
func New(g *graph.Graph, adv Adversary, mk func(id graph.NodeID) Handler) *Sim {
	g.Finalize()
	s := &Sim{
		g:           g,
		adv:         adv,
		lookahead:   checkedLookahead(adv),
		faults:      faultsOf(adv),
		nodeBase:    g.NodeBase(),
		handlers:    make([]Handler, g.NLocal()),
		nodes:       make([]Node, g.NLocal()),
		busy:        make([]bool, g.Links()),
		txSeq:       make([]uint32, g.Links()),
		boxes:       make([]*outbox, g.Links()),
		hasOut:      make([]bool, g.NLocal()),
		maxEvents:   1 << 34,
		workers:     execpolicy.DefaultWorkers(),
		minParallel: defaultMinParallel,
		specMk:      mk,
	}
	s.direct = execCtx{s: s, direct: true}
	for i := 0; i < g.NLocal(); i++ {
		id := s.nodeBase + graph.NodeID(i)
		s.nodes[i] = Node{id: id, sim: s}
		s.handlers[i] = mk(id)
	}
	return s
}

// li maps a global node id to its slot in the per-node arrays (identity
// on whole graphs).
func (s *Sim) li(id graph.NodeID) graph.NodeID { return id - s.nodeBase }

// checkedLookahead validates the adversary's declared delay lower bound.
func checkedLookahead(adv Adversary) float64 {
	la := adv.MinDelay()
	if la <= 0 || la > 1 {
		panic(fmt.Sprintf("async: adversary %q declares MinDelay %g outside (0,1]", adv.Name(), la))
	}
	return la
}

// defaultMinParallel is the smallest queue population for which a ModeMulti
// window fans out to goroutines; smaller windows run their shards inline
// (through the same staging, so results are identical either way).
const defaultMinParallel = 128

// WithMode selects the execution mode (default ModeAuto).
func (s *Sim) WithMode(m ExecutionMode) *Sim { s.mode = m; return s }

// WithWorkers caps the parallel worker pool (default GOMAXPROCS, capped by
// execpolicy.MaxWorkers). ModeAuto additionally clamps the pool to
// GOMAXPROCS; a forced parallel mode keeps an oversubscribed count (tests
// force 4 workers on 1 CPU to exercise the concurrent paths).
func (s *Sim) WithWorkers(k int) *Sim {
	execpolicy.ValidateWorkers("async", k)
	s.workers = k
	return s
}

// WithSpecHorizon pins the speculative round horizon to a fixed span of
// simulated time (0, the default, is adaptive: the engine doubles the
// horizon after fully-committed rounds and shrinks it to twice the
// observed commit span after a rollback). Spans below the adversary's
// MinDelay are clamped up to it at Run — the safe window always commits.
// Results are byte-identical for every horizon; the knob only trades
// speculation depth against rollback waste, and exists mainly so tests and
// experiments can force heavy-rollback regimes.
func (s *Sim) WithSpecHorizon(h float64) *Sim {
	if h < 0 || math.IsNaN(h) {
		panic(fmt.Sprintf("async: speculation horizon %g invalid", h))
	}
	s.specFixedSpan = h
	return s
}

// SpecStats reports the speculative executor's accounting for the current
// or last run (Reset zeroes it). All-zero outside ModeSpec.
func (s *Sim) SpecStats() SpecStats { return s.specStats }

// WithMinParallel sets the smallest queue population for which a ModeMulti
// window fans out to goroutines (default 128); tests lower it to force the
// concurrent path on small graphs — results are byte-identical regardless.
func (s *Sim) WithMinParallel(k int) *Sim {
	if k < 1 {
		panic(fmt.Sprintf("async: parallel threshold %d < 1", k))
	}
	s.minParallel = k
	return s
}

// KeepTrace enables message-trace recording (determinism tests compare
// traces across execution modes).
func (s *Sim) KeepTrace() *Sim { s.keepTrace = true; return s }

// DenseOutputs makes Run return outputs as the dense OutBodies/OutSet pair
// instead of materializing the Outputs map — O(1) allocations at the
// finish line instead of one interface box per node. Callers decode with
// outval.Decode; non-encodable legacy outputs still surface in the map.
func (s *Sim) DenseOutputs() *Sim { s.denseOut = true; return s }

// SetMaxEvents caps the number of processed events; exceeding it panics
// (runaway protocols are bugs, not conditions to limp through). In
// ModeMulti the cap is checked at window barriers.
func (s *Sim) SetMaxEvents(limit uint64) { s.maxEvents = limit }

// Handler returns node v's handler (tests use this to inspect final state).
func (s *Sim) Handler(v graph.NodeID) Handler { return s.handlers[s.li(v)] }

// Graph returns the simulated topology.
func (s *Sim) Graph() *graph.Graph { return s.g }

// Stats snapshots the costs accrued so far: the current simulation time
// and the message/ack counters, with the per-protocol breakdown
// materialized as a map. In ModeSingle the snapshot is exact at any point.
// In the parallel modes the counters are the committed prefix — everything
// up to the last window barrier (ModeMulti) or the last committed event
// (ModeSpec, whose commit walk replays the serial engine exactly, making
// a post-panic snapshot identical to the serial one). Calling Stats while
// a parallel window or speculative round is actually in flight — possible
// only from another goroutine or from inside a handler — panics instead of
// returning numbers that are stale by an unknowable in-flight amount.
// core.SynchronizeUnknownBound bills doubling attempts that abort before
// Run returns (Theorem 5.4's Σ 2^t accounting) from this snapshot; serial
// event order defines an aborted attempt's cost, which both the serial
// engine and the speculative commit walk provide.
func (s *Sim) Stats() (now float64, msgs, acks uint64, perProto map[Proto]uint64) {
	if s.inWindow {
		panic("async: Stats called while a parallel window is in flight; mid-run snapshots are defined only between barriers (or any time in ModeSingle)")
	}
	return s.now, s.msgs, s.acks, s.perProtoMap()
}

// FaultStats snapshots the fault-plane counters, under the same
// committed-prefix contract as Stats.
func (s *Sim) FaultStats() (dropped, retrans, undeliverable uint64) {
	if s.inWindow {
		panic("async: FaultStats called while a parallel window is in flight")
	}
	return s.dropped, s.retrans, s.undeliv
}

func (s *Sim) perProtoMap() map[Proto]uint64 {
	pp := make(map[Proto]uint64)
	for p, n := range s.perProto {
		if n != 0 {
			pp[Proto(p)] = n
		}
	}
	return pp
}

// outBodies returns the typed-output slab, allocating and publishing it on
// first use. Workers write only their owned nodes' slots; the atomic
// pointer publication orders the allocation before any cross-worker read.
func (s *Sim) outBodies() []wire.Body {
	if p := s.outBodyP.Load(); p != nil {
		return *p
	}
	s.outMu.Lock()
	defer s.outMu.Unlock()
	if p := s.outBodyP.Load(); p != nil {
		return *p
	}
	sl := make([]wire.Body, s.g.NLocal())
	s.outBodyP.Store(&sl)
	return sl
}

// outAnys is outBodies' counterpart for the boxed escape slab.
func (s *Sim) outAnys() []any {
	if p := s.outAnyP.Load(); p != nil {
		return *p
	}
	s.outMu.Lock()
	defer s.outMu.Unlock()
	if p := s.outAnyP.Load(); p != nil {
		return *p
	}
	sl := make([]any, s.g.NLocal())
	s.outAnyP.Store(&sl)
	return sl
}

// loadedOutBodies returns the typed-output slab or nil if no typed output
// has ever been recorded (readers treat nil as all-zero).
func (s *Sim) loadedOutBodies() []wire.Body {
	if p := s.outBodyP.Load(); p != nil {
		return *p
	}
	return nil
}

// loadedOutAnys is loadedOutBodies' counterpart for the boxed slab.
func (s *Sim) loadedOutAnys() []any {
	if p := s.outAnyP.Load(); p != nil {
		return *p
	}
	return nil
}

// Reset rearms the engine for another run on the same graph: counters,
// queues, outboxes, outputs, and the segment arena all return to their
// initial state while keeping every backing array they grew — the wheel
// slots, per-link outbox capacity, and arena chunks are reused, so a
// harness sweeping many trials on one topology allocates the engine once.
// mk rebuilds the per-node handlers; adv may differ from the previous run.
func (s *Sim) Reset(adv Adversary, mk func(id graph.NodeID) Handler) {
	s.adv = adv
	s.lookahead = checkedLookahead(adv)
	s.faults = faultsOf(adv)
	s.running = false
	s.resumed = false
	s.events.reset()
	for k := range s.shards {
		s.shards[k].reset()
	}
	s.sharded = false
	s.eventSq = 0
	s.now = 0
	s.direct.now = 0
	s.direct.curSeq = 0
	s.steps = 0
	for i, ob := range s.boxes {
		s.busy[i] = false
		if ob != nil {
			ob.reset()
		}
	}
	for i := range s.txSeq {
		s.txSeq[i] = 0
	}
	// The lazily built output slabs stay allocated (pooled growth); only
	// their contents clear.
	outB, outA := s.loadedOutBodies(), s.loadedOutAnys()
	for i := range s.hasOut {
		s.hasOut[i] = false
	}
	for i := range outB {
		outB[i] = wire.Body{}
	}
	for i := range outA {
		outA[i] = nil
	}
	s.outCount = 0
	s.lastOutputTime = 0
	s.msgs, s.acks = 0, 0
	s.dropped, s.retrans, s.undeliv = 0, 0, 0
	for i := range s.perProto {
		s.perProto[i] = 0
	}
	s.trace = s.trace[:0]
	// Clear worker staging state: a run that panicked mid-window (the
	// recoverable engine-panic idiom core.tryBound relies on) leaves
	// staged events, counters, and possibly a recorded panic behind.
	for k := range s.wctx {
		c := &s.wctx[k]
		c.now, c.maxT, c.lastOut = 0, 0, 0
		c.curSeq, c.msgs, c.acks, c.steps = 0, 0, 0, 0
		c.dropped, c.retrans, c.undeliv = 0, 0, 0
		c.outCount = 0
		for i := range c.perProto {
			c.perProto[i] = 0
		}
		c.staged = c.staged[:0]
		c.trace = c.trace[:0]
	}
	for k := range s.workerPanics {
		s.workerPanics[k] = nil
	}
	// Clear speculative state. The round epoch is deliberately NOT reset —
	// it must never repeat, so the per-node epoch arrays (specCloneEp and
	// friends) invalidate themselves without a scrub. Clone targets are
	// dropped because mk may build different handler types this cycle.
	s.inWindow = false
	s.specWalking = false
	for i := range s.specClones {
		s.specClones[i] = nil
	}
	for k := range s.wctx {
		c := &s.wctx[k]
		clearSpecOps(c.specOps)
		c.specOps = c.specOps[:0]
		c.specLog = c.specLog[:0]
		c.specPanicked, c.specPanic = false, nil
	}
	s.specRelease = s.specRelease[:0]
	s.specStats = SpecStats{}
	s.specMk = mk
	s.arena.Reset()
	s.shardMode = false
	s.shardLog = s.shardLog[:0]
	for i := range s.handlers {
		s.nodes[i].ctxIdx = ctxDirect
		s.handlers[i] = mk(s.nodeBase + graph.NodeID(i))
	}
}

// Run executes the simulation to quiescence and returns the result.
func (s *Sim) Run() Result {
	if s.running {
		panic("async: Run called twice (use Reset to rearm)")
	}
	if s.g.Sub() {
		panic("async: Run on a Subrange view; shard engines are driven by the internal/shard protocol")
	}
	s.running = true
	mode := s.mode
	if mode == ModeAuto {
		switch execpolicy.AsyncAuto(s.workers, s.g.Links(), s.lookahead, s.handlersCloneable()) {
		case execpolicy.AsyncWindows:
			mode = ModeMulti
		case execpolicy.AsyncSpec:
			mode = ModeSpec
		default:
			mode = ModeSingle
		}
	}
	if mode == ModeSpec && !s.handlersCloneable() {
		// Opting in is per-handler (StateCloner); a stack that cannot be
		// cloned gets the conservative executor, not an error — callers can
		// force -mode=spec fleet-wide and let each workload take what it
		// supports. SpecStats records the downgrade.
		s.specStats.FellBack = true
		mode = ModeMulti
	}
	switch mode {
	case ModeMulti:
		s.runWindows()
	case ModeSpec:
		s.runSpec()
	default:
		s.runSerial()
	}
	return s.result()
}

// handlersCloneable reports whether every handler opted into speculative
// execution. O(n) type assertions; called at most twice per Run.
func (s *Sim) handlersCloneable() bool {
	for _, h := range s.handlers {
		if _, ok := h.(StateCloner); !ok {
			return false
		}
		if pr, ok := h.(StateCodecProbe); ok && !pr.StateCodecOK() {
			return false
		}
	}
	return true
}

func (s *Sim) runSerial() {
	if !s.resumed {
		for i := range s.handlers {
			s.handlers[i].Init(&s.nodes[i])
		}
	}
	for !s.events.empty() {
		ev := s.events.pop()
		if ev.t < s.now {
			panic(fmt.Sprintf("async: time went backwards: %g < %g", ev.t, s.now))
		}
		s.now = ev.t
		s.steps++
		if s.steps > s.maxEvents {
			panic(fmt.Sprintf("async: exceeded %d events at t=%g (livelock?)", s.maxEvents, s.now))
		}
		s.direct.processEvent(&ev)
	}
}

// runWindows is the bounded-lag executor: repeatedly take the earliest
// queued timestamp wStart, execute every event in [wStart, wStart +
// lookahead) — the adversary's MinDelay guarantees no event processed in
// the window can schedule anything inside it, in exact floating-point
// arithmetic too, since fl(t+d) is monotone in t and d — and merge the
// staged effects deterministically at the barrier.
func (s *Sim) runWindows() {
	w := s.workers
	if w < 1 {
		w = 1
	}
	s.ensureWindowState(w)
	s.sharded = true
	defer func() {
		s.sharded = false
		s.inWindow = false
		for i := range s.nodes {
			s.nodes[i].ctxIdx = ctxDirect
		}
	}()
	// Init runs serially through the direct context (its schedules route
	// to the shards), exactly as in ModeSingle. A resumed run skips Init —
	// its events were restored into the serial queue and are dealt to the
	// owner shards instead, identities (t, seq) intact.
	if s.resumed {
		s.dealRestoredEvents()
	} else {
		for i := range s.handlers {
			s.handlers[i].Init(&s.nodes[i])
		}
	}
	for i := range s.nodes {
		s.nodes[i].ctxIdx = int32(i%w) + 1
	}
	// Fan out to goroutines only when windows are actually populated: the
	// previous window's event count is the predictor (window occupancy is
	// unknowable before draining, and total queue size is the wrong
	// proxy — a tiny-lookahead adversary keeps thousands of events queued
	// while every window holds one). A forced ModeMulti under such an
	// adversary therefore stays on the inline staging path — same merge,
	// same results, no per-event goroutine barrier.
	prevWindow := 0
	for {
		wStart, ok := s.minShardT()
		if !ok {
			break
		}
		if wStart < s.now {
			panic(fmt.Sprintf("async: time went backwards: %g < %g", wStart, s.now))
		}
		wEnd := wStart + s.lookahead
		s.inWindow = true
		if w == 1 || prevWindow < s.minParallel {
			for k := range s.shards {
				s.runShard(k, wEnd)
			}
		} else {
			var wg sync.WaitGroup
			for k := 0; k < w; k++ {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					defer func() {
						if p := recover(); p != nil {
							s.workerPanics[k] = p
						}
					}()
					s.runShard(k, wEnd)
				}(k)
			}
			wg.Wait()
			for k := 0; k < w; k++ {
				if p := s.workerPanics[k]; p != nil {
					panic(p)
				}
			}
		}
		stepsBefore := s.steps
		s.mergeWindow()
		s.inWindow = false
		prevWindow = int(s.steps - stepsBefore)
	}
}

// ensureWindowState sizes the shard queues and worker contexts, reusing
// them across Reset cycles when the worker count is unchanged.
func (s *Sim) ensureWindowState(w int) {
	if len(s.shards) != w {
		s.shards = make([]eventQueue, w)
		s.wctx = make([]execCtx, w)
		for k := range s.wctx {
			s.wctx[k] = execCtx{s: s}
		}
		s.workerPanics = make([]any, w)
		s.mergeCur = make([]int, w)
	}
	for k := range s.wctx {
		c := &s.wctx[k]
		c.maxT = 0
		c.lastOut = 0
	}
}

// dealRestoredEvents moves snapshot-restored events from the serial queue
// into the owner shards of a parallel run. Sequence numbers survived the
// snapshot, so shard pop order — and therefore the continuation — matches
// the serial engine's exactly.
func (s *Sim) dealRestoredEvents() {
	for !s.events.empty() {
		ev := s.events.pop()
		s.shards[int(ownerOf(ev))%len(s.shards)].push(ev)
	}
}

// minShardT returns the earliest timestamp across all shards.
func (s *Sim) minShardT() (float64, bool) {
	best, any := 0.0, false
	for k := range s.shards {
		if t, ok := s.shards[k].minT(); ok && (!any || t < best) {
			best, any = t, true
		}
	}
	return best, any
}

// runShard drains one shard's slice of the window in (t, seq) order.
func (s *Sim) runShard(k int, wEnd float64) {
	c := &s.wctx[k]
	q := &s.shards[k]
	for {
		ev, ok := q.popBefore(wEnd)
		if !ok {
			return
		}
		c.steps++
		c.maxT = ev.t // shards pop in nondecreasing t
		c.processEvent(&ev)
	}
}

// mergeWindow folds every worker's staged effects back into the engine in
// the exact order the serial engine would have produced them: counters are
// plain sums and maxima; staged schedules and trace entries k-way merge by
// their triggering event's (t, seq) — each worker's buffer is already
// sorted by that key because shards process their events in order, and no
// key appears in two buffers because each event has one owner.
func (s *Sim) mergeWindow() {
	for k := range s.wctx {
		c := &s.wctx[k]
		s.msgs += c.msgs
		s.acks += c.acks
		s.steps += c.steps
		s.dropped += c.dropped
		s.retrans += c.retrans
		s.undeliv += c.undeliv
		s.outCount += c.outCount
		c.msgs, c.acks, c.steps, c.outCount = 0, 0, 0, 0
		c.dropped, c.retrans, c.undeliv = 0, 0, 0
		if c.lastOut > s.lastOutputTime {
			s.lastOutputTime = c.lastOut
		}
		if c.maxT > s.now {
			s.now = c.maxT
		}
		for p, n := range c.perProto {
			if n != 0 {
				s.perProto = bumpProtoBy(s.perProto, Proto(p), n)
				c.perProto[p] = 0
			}
		}
	}
	if s.steps > s.maxEvents {
		panic(fmt.Sprintf("async: exceeded %d events at t=%g (livelock?)", s.maxEvents, s.now))
	}
	// Merge staged schedules; seq assignment happens in merge order, which
	// reproduces the serial engine's schedule-call order exactly.
	mergeWorkerLists(s.mergeCur, len(s.wctx),
		func(k int) []stagedEv { return s.wctx[k].staged },
		stagedLess,
		func(se *stagedEv) { s.schedule(se.ev) })
	for k := range s.wctx {
		s.wctx[k].staged = s.wctx[k].staged[:0]
	}
	if s.keepTrace {
		mergeWorkerLists(s.mergeCur, len(s.wctx),
			func(k int) []TraceEntry { return s.wctx[k].trace },
			traceLess,
			func(te *TraceEntry) { s.trace = append(s.trace, *te) })
		for k := range s.wctx {
			s.wctx[k].trace = s.wctx[k].trace[:0]
		}
	}
}

// mergeWorkerLists k-way merges the workers' per-window buffers. Each list
// is already sorted by `less` (workers emit in their shard's (t, seq)
// processing order) and no key appears in two lists (one owner per event),
// so a stable scan-for-minimum reproduces the global serial order.
func mergeWorkerLists[T any](cur []int, n int, list func(k int) []T,
	less func(a, b *T) bool, emit func(*T)) {
	for k := 0; k < n; k++ {
		cur[k] = 0
	}
	for {
		best := -1
		for k := 0; k < n; k++ {
			l := list(k)
			if cur[k] == len(l) {
				continue
			}
			if best < 0 || less(&l[cur[k]], &list(best)[cur[best]]) {
				best = k
			}
		}
		if best < 0 {
			return
		}
		emit(&list(best)[cur[best]])
		cur[best]++
	}
}

func stagedLess(a, b *stagedEv) bool {
	if a.trigT != b.trigT {
		return a.trigT < b.trigT
	}
	return a.trigSeq < b.trigSeq
}

func traceLess(a, b *TraceEntry) bool {
	if a.T != b.T {
		return a.T < b.T
	}
	return a.Seq < b.Seq
}

// result materializes the run's Result at the engine boundary.
func (s *Sim) result() Result {
	res := Result{
		Time:          s.lastOutputTime,
		QuiesceTime:   s.now,
		Msgs:          s.msgs,
		Acks:          s.acks,
		Dropped:       s.dropped,
		Retrans:       s.retrans,
		Undeliverable: s.undeliv,
		PerProto:      s.perProtoMap(),
	}
	if s.keepTrace {
		res.Trace = append([]TraceEntry(nil), s.trace...)
	}
	outB, outA := s.loadedOutBodies(), s.loadedOutAnys()
	bodyAt := func(i int) wire.Body {
		if outB == nil {
			return wire.Body{}
		}
		return outB[i]
	}
	anyAt := func(i int) any {
		if outA == nil {
			return nil
		}
		return outA[i]
	}
	if s.denseOut {
		if outB != nil {
			res.OutBodies = append([]wire.Body(nil), outB...)
		} else {
			res.OutBodies = make([]wire.Body, s.g.N())
		}
		res.OutSet = append([]bool(nil), s.hasOut...)
		for i, has := range s.hasOut {
			if has && bodyAt(i).Kind == 0 {
				if res.Outputs == nil {
					res.Outputs = make(map[graph.NodeID]any)
				}
				res.Outputs[graph.NodeID(i)] = anyAt(i)
			}
		}
		return res
	}
	outputs := make(map[graph.NodeID]any, s.outCount)
	for i, has := range s.hasOut {
		if has {
			outputs[s.nodeBase+graph.NodeID(i)] = outval.DecodeSlot(bodyAt(i), anyAt(i))
		}
	}
	res.Outputs = outputs
	return res
}

// DecodedOutputs materializes the user-facing output map of a dense-mode
// Result (for the default mode it is already in Outputs). Hot loops that
// discard intermediate outputs skip this; boundaries that keep the final
// iteration's outputs call it once.
func (r *Result) DecodedOutputs() map[graph.NodeID]any {
	if r.OutSet == nil {
		return r.Outputs
	}
	outputs := make(map[graph.NodeID]any)
	for i, has := range r.OutSet {
		if has {
			outputs[graph.NodeID(i)] = outval.DecodeSlot(r.OutBodies[i], r.Outputs[graph.NodeID(i)])
		}
	}
	return outputs
}

// execCtx is one execution context: the direct (apply-immediately) context
// of the serial engine and Init phase, or one ModeMulti worker's private
// staging state. A single code path serves both — the hot-path branch on
// `direct` keeps the two modes impossible to drift apart.
type execCtx struct {
	s      *Sim
	direct bool

	// spec marks a worker context inside a speculative round: handler
	// effects are logged as specOps instead of applied, and nothing else in
	// the engine is touched. swallow marks the straddle-repair context: a
	// handler state transition is re-executed for its state change alone,
	// its Send/Output effects discarded (they were already committed or
	// rolled back at the event level). See spec.go.
	spec    bool
	swallow bool

	// now/curSeq identify the event being processed (the parallel schedule
	// staging keys on them; the direct context mirrors Sim.now).
	now    float64
	curSeq uint64

	// Worker-private effect staging, merged at the window barrier.
	msgs, acks uint64
	steps      uint64
	dropped    uint64
	retrans    uint64
	undeliv    uint64
	outCount   int
	lastOut    float64
	maxT       float64
	perProto   []uint64
	staged     []stagedEv
	trace      []TraceEntry

	// Speculative round log (spec contexts): flat op log plus one entry per
	// executed event closing its op range. specCur is the event currently
	// inside its handler callback, so a panic can be attributed.
	specOps      []specOp
	specLog      []specExec
	specCur      event
	specPanic    any
	specPanicked bool

	// replay (direct context, commit walk only): when replayOn is set,
	// invokeRecv/invokeAck apply this logged op sequence instead of calling
	// the handler — everything else in processEvent runs as in ModeSingle.
	replay   []specOp
	replayOn bool
}

// stagedEv is one deferred schedule call, keyed by the event that issued it.
type stagedEv struct {
	ev      event
	trigT   float64
	trigSeq uint64
}

// processEvent executes one event against this context.
func (c *execCtx) processEvent(ev *event) {
	s := c.s
	c.now = ev.t
	c.curSeq = ev.seq
	switch ev.kind {
	case evDeliver:
		if s.keepTrace {
			te := TraceEntry{T: ev.t, Seq: ev.seq, From: ev.src, To: ev.dst, Msg: ev.msg}
			if c.direct {
				s.trace = append(s.trace, te)
			} else {
				c.trace = append(c.trace, te)
			}
		}
		c.invokeRecv(ev)
		// Ack travels back; its arrival frees the link.
		if c.direct {
			s.acks++
		} else {
			c.acks++
		}
		// The return path. A negative link marks a remote-injected delivery
		// (shard mode): the forward link lives on the sender's shard, so the
		// injector encoded the local back link as its complement instead of
		// relying on ReverseLink (which is -1 across a shard boundary).
		back := ev.link
		if back >= 0 {
			back = s.g.ReverseLink(back)
		} else {
			back = ^back
		}
		d := s.adv.Delay(ev.dst, ev.src, uint64(s.txSeq[back]), ev.msg.Proto)
		s.bumpTx(back)
		s.checkDelay(d)
		c.schedule(event{t: c.now + d, kind: evAckArrive, link: ev.link, src: ev.src, dst: ev.dst, msg: ev.msg})
	case evAckArrive:
		// ev.src is the original sender whose link is now free.
		s.busy[ev.link] = false
		c.dispatch(ev.src, ev.dst, ev.link)
		c.invokeAck(ev)
		// The ack ends the message's lifecycle; recycle any segment
		// (receivers copy data out if they keep it). No-op without one.
		s.arena.Release(ev.msg.Body.Seg)
	case evRetrans:
		// A backoff timer fired: retry the lost transmission. The link has
		// stayed in flight since the original send, so the attempt re-enters
		// at transmit, not send — no handler runs for this event.
		s.transmit(c, ev.src, ev.dst, ev.link, ev.msg, ev.attempt)
	}
}

// invokeRecv runs the delivery's handler callback — or, during a
// speculative commit walk, replays the effects the callback logged when it
// already ran on the clone. Either way the surrounding processEvent
// mechanics (trace, counters, ack scheduling, seq assignment) execute the
// serial engine's code on the serial engine's state.
func (c *execCtx) invokeRecv(ev *event) {
	if c.replayOn {
		c.applyOps(ev)
		return
	}
	s := c.s
	d := s.li(ev.dst)
	s.handlers[d].Recv(&s.nodes[d], ev.src, ev.msg)
}

// invokeAck is invokeRecv's counterpart for ack-return events.
func (c *execCtx) invokeAck(ev *event) {
	if c.replayOn {
		c.applyOps(ev)
		return
	}
	s := c.s
	src := s.li(ev.src)
	s.handlers[src].Ack(&s.nodes[src], ev.dst, ev.msg)
}

// applyOps replays a logged handler-effect sequence through this context.
// The ops re-enter send/setOutput exactly where the handler's own calls
// would have, so counters, outbox scheduling, and adversary consultation
// happen in the identical order.
func (c *execCtx) applyOps(ev *event) {
	owner := ownerOf(*ev)
	for i := range c.replay {
		op := &c.replay[i]
		switch op.kind {
		case opSend:
			c.send(owner, op.to, op.msg)
		case opOutBody:
			c.setOutputBody(op.to, op.msg.Body)
		case opOutAny:
			c.setOutput(op.to, op.val)
		}
	}
}

func (c *execCtx) send(from, to graph.NodeID, m Msg) {
	s := c.s
	l := s.g.LinkBetween(from, to)
	if l < 0 {
		panic(fmt.Sprintf("async: node %d sending to non-neighbor %d", from, to))
	}
	if c.spec {
		// Speculative phase: log the intent, touch nothing. The commit walk
		// applies it (or rollback releases its segment).
		c.specOps = append(c.specOps, specOp{kind: opSend, to: to, msg: m})
		return
	}
	if c.swallow {
		// Straddle repair re-runs a handler transition whose sends were
		// already committed by the walk; this duplicate message dies here,
		// and its freshly carved segment goes straight back.
		s.arena.Release(m.Body.Seg)
		return
	}
	if c.direct {
		s.msgs++
		s.perProto = bumpProtoBy(s.perProto, m.Proto, 1)
	} else {
		c.msgs++
		c.perProto = bumpProtoBy(c.perProto, m.Proto, 1)
	}
	if !s.busy[l] {
		// Uncontended fast path: an idle link's queue is necessarily empty
		// (a queued message implies an in-flight one), so push+pop of this
		// single message collapses to direct injection — no outbox is ever
		// allocated for a link that never queues behind an in-flight send.
		s.inject(c, from, to, l, m)
		return
	}
	ob := s.boxes[l]
	if ob == nil {
		ob = &outbox{}
		s.boxes[l] = ob
	}
	ob.push(m)
}

// inject marks the link in flight and performs the first transmission
// attempt.
func (s *Sim) inject(c *execCtx, from, to graph.NodeID, l graph.LinkID, m Msg) {
	s.busy[l] = true
	s.transmit(c, from, to, l, m, 0)
}

// transmit performs transmission attempt `attempt` on an in-flight link:
// consult the adversary for the hop delay as always, then ask the fault
// schedule — once, with the attempt's transmission sequence and computed
// arrival time — whether this attempt is lost. A lost attempt schedules a
// deterministic-backoff retransmission while budget remains; an exhausted
// budget surfaces as Undeliverable. Each retransmission consumes a fresh
// transmission sequence, so the adversary and the drop hash both see it as
// a new transmission. With no fault schedule this is exactly the old
// single-attempt dispatch.
func (s *Sim) transmit(c *execCtx, from, to graph.NodeID, l graph.LinkID, m Msg, attempt uint8) {
	txs := uint64(s.txSeq[l])
	d := s.adv.Delay(from, to, txs, m.Proto)
	s.bumpTx(l)
	s.checkDelay(d)
	td := c.now + d
	if s.faults == nil || !s.faults.Lost(from, to, txs, td) {
		c.schedule(event{t: td, kind: evDeliver, link: l, src: from, dst: to, msg: m})
		return
	}
	if c.direct {
		s.dropped++
	} else {
		c.dropped++
	}
	if int(attempt) >= s.faults.Budget {
		c.undeliverable(from, to, l, m)
		return
	}
	if c.direct {
		s.retrans++
	} else {
		c.retrans++
	}
	b := s.faults.backoff(attempt, s.lookahead)
	c.schedule(event{t: c.now + b, kind: evRetrans, link: l, src: from, dst: to, msg: m, attempt: attempt + 1})
}

// undeliverable abandons a message whose retransmit budget is exhausted:
// record the typed trace entry under the triggering event's (t, seq) key,
// release the payload segment (the lifecycle that would have ended at the
// ack ends here), free the link, and dispatch its next queued message. The
// engine always quiesces — protocol-level stalls under faults are surfaced
// by watchdogs (core.StallReport), never as hangs.
func (c *execCtx) undeliverable(from, to graph.NodeID, l graph.LinkID, m Msg) {
	s := c.s
	if c.direct {
		s.undeliv++
	} else {
		c.undeliv++
	}
	if s.keepTrace {
		te := TraceEntry{T: c.now, Seq: c.curSeq, From: from, To: to, Msg: m, Kind: TraceUndeliverable}
		if c.direct {
			s.trace = append(s.trace, te)
		} else {
			c.trace = append(c.trace, te)
		}
	}
	s.arena.Release(m.Body.Seg)
	s.busy[l] = false
	c.dispatch(from, to, l)
}

// bumpTx advances a link's transmission sequence, failing loudly before
// the 32-bit counter could wrap (4 billion messages on ONE link exceeds
// any configured event cap).
func (s *Sim) bumpTx(l graph.LinkID) {
	s.txSeq[l]++
	if s.txSeq[l] == math.MaxUint32 {
		panic(fmt.Sprintf("async: transmission sequence overflow on link %d", l))
	}
}

// dispatch injects the next queued message of the (from,to) link, if any.
// Links that never contended have no outbox and return immediately.
func (c *execCtx) dispatch(from, to graph.NodeID, l graph.LinkID) {
	s := c.s
	ob := s.boxes[l]
	if ob == nil {
		return
	}
	m, ok := ob.pop()
	if !ok {
		return
	}
	s.inject(c, from, to, l, m)
}

// checkDelay enforces both the model's (0,1] delay contract and the
// adversary's own MinDelay declaration — the bounded-lag mode's safety
// rests on the latter, so violating it fails loudly in every mode.
func (s *Sim) checkDelay(d float64) {
	if d <= 0 || d > 1 {
		panic(fmt.Sprintf("async: adversary %q returned delay %g outside (0,1]", s.adv.Name(), d))
	}
	if d < s.lookahead {
		panic(fmt.Sprintf("async: adversary %q returned delay %g below its declared MinDelay %g",
			s.adv.Name(), d, s.lookahead))
	}
}

func (c *execCtx) schedule(ev event) {
	if c.direct {
		s := c.s
		if s.shardMode {
			// Event seqs are assigned by the coordinator's cross-shard
			// merge; park the call keyed by its triggering event, exactly
			// like ModeMulti worker staging.
			s.shardLog = append(s.shardLog, stagedEv{ev: ev, trigT: c.now, trigSeq: c.curSeq})
			return
		}
		s.schedule(ev)
		return
	}
	c.staged = append(c.staged, stagedEv{ev: ev, trigT: c.now, trigSeq: c.curSeq})
}

func (s *Sim) schedule(ev event) {
	ev.seq = s.eventSq
	s.eventSq++
	if s.specWalking && ev.t < s.specNewMin {
		// Straggler frontier: the commit walk may not commit any already-
		// speculated event past the earliest timestamp it has scheduled.
		s.specNewMin = ev.t
	}
	if s.sharded {
		s.shards[int(ownerOf(ev))%len(s.shards)].push(ev)
	} else {
		s.events.push(ev)
	}
}

// ownerOf is the node whose handler the event invokes: deliveries run the
// receiver, ack-returns run the original sender. Owner-sharding makes every
// piece of state an event touches — the handler, the node's outgoing
// outboxes and transmission counters, its output slot — private to one
// worker within a window.
func ownerOf(ev event) graph.NodeID {
	if ev.kind == evDeliver {
		return ev.dst
	}
	return ev.src
}

// noteFirstOutput updates the time-to-output clock for a node's first
// Output call.
func (c *execCtx) noteFirstOutput() {
	s := c.s
	if c.direct {
		s.outCount++
		if s.now > s.lastOutputTime {
			s.lastOutputTime = s.now
		}
		return
	}
	c.outCount++
	if c.now > c.lastOut {
		c.lastOut = c.now
	}
}

func (c *execCtx) setOutputBody(id graph.NodeID, b wire.Body) {
	if b.Kind == 0 {
		panic(fmt.Sprintf("async: node %d output a Body with zero Kind", id))
	}
	s := c.s
	if c.spec {
		c.specOps = append(c.specOps, specOp{kind: opOutBody, to: id, msg: Msg{Body: b}})
		s.specTouchOut(id)
		return
	}
	if c.swallow {
		s.specOutSaved[id] = true
		return
	}
	i := s.li(id)
	if !s.hasOut[i] {
		s.hasOut[i] = true
		c.noteFirstOutput()
	}
	s.outBodies()[i] = b
	if outA := s.loadedOutAnys(); outA != nil {
		outA[i] = nil
	}
}

func (c *execCtx) setOutput(id graph.NodeID, v any) {
	if b, ok := outval.Encode(v); ok {
		c.setOutputBody(id, b)
		return
	}
	s := c.s
	if c.spec {
		c.specOps = append(c.specOps, specOp{kind: opOutAny, to: id, val: v})
		s.specTouchOut(id)
		return
	}
	if c.swallow {
		s.specOutSaved[id] = true
		return
	}
	i := s.li(id)
	if !s.hasOut[i] {
		s.hasOut[i] = true
		c.noteFirstOutput()
	}
	if outB := s.loadedOutBodies(); outB != nil {
		outB[i] = wire.Body{}
	}
	s.outAnys()[i] = v
}

// hasOutput answers Node.HasOutput through the node's execution context:
// the committed array in serial/window execution, the per-round overlay
// during a speculative phase, and repair's evolving local view during a
// swallow replay. Each view reproduces what the serial engine's hasOut
// would say at the same point in the event order.
func (c *execCtx) hasOutput(id graph.NodeID) bool {
	s := c.s
	if c.spec {
		if s.specOutEp[id] != s.specRoundEp {
			s.specOutEp[id] = s.specRoundEp
			s.specOutView[id] = s.hasOut[id]
			s.specOutSaved[id] = s.hasOut[id]
		}
		return s.specOutView[id]
	}
	if c.swallow {
		if s.specOutEp[id] == s.specRoundEp {
			return s.specOutSaved[id]
		}
		return s.hasOut[id]
	}
	return s.hasOut[s.li(id)]
}

// bumpProtoBy adds n to the dense per-proto counter, growing the slice to
// cover p on first sight (growth happens a handful of times per run; the
// steady state indexes and adds, no hashing).
func bumpProtoBy(pp []uint64, p Proto, n uint64) []uint64 {
	if p < 0 {
		panic(fmt.Sprintf("async: negative proto %d", p))
	}
	if int(p) >= len(pp) {
		pp = append(pp, make([]uint64, int(p)+1-len(pp))...)
	}
	pp[p] += n
	return pp
}

const (
	evDeliver uint8 = iota + 1
	evAckArrive
	// evRetrans is a fault-plane backoff timer: retry the lost message on
	// its still-in-flight link. Owned by the sender (like evAckArrive), so
	// it is always shard-local and never crosses a coordinator wire.
	evRetrans
)

// event is one scheduled occurrence. Field order packs the 32-bit ids, the
// 1-byte kind, and the 1-byte retransmission attempt into one word, keeping
// the struct at 96 bytes — the wheel slots hold these by value.
type event struct {
	t       float64
	seq     uint64
	link    graph.LinkID // the forward link src→dst
	src     graph.NodeID // sender of the original message
	dst     graph.NodeID // receiver of the original message
	kind    uint8
	attempt uint8 // evRetrans: attempt number of the retry it triggers
	msg     Msg
}
