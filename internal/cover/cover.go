// Package cover builds sparse d-covers (Definition 2.1) and layered covers
// from the k-separated network decomposition, following Theorem 4.21:
// construct a (2d+1)-separated weak-diameter decomposition, then expand
// every cluster to its d-neighborhood. Same-color clusters are more than
// 2d+1 apart, so the d-expansions stay disjoint per color, every node lands
// in O(log n) clusters (at most one per color), and for every node v the
// expansion of v's own decomposition cluster contains v's entire d-ball.
package cover

import (
	"fmt"
	"sort"

	"repro/internal/decomp"
	"repro/internal/graph"
)

// ClusterID identifies a cluster within one Cover. 32-bit, matching the
// graph plane's compact ids: the per-node memberOf/treeOf/home tables are
// the dominant cover footprint at scale.
type ClusterID int32

// Cluster is one cover cluster: member nodes plus a rooted cluster tree
// (weak: the tree may pass through non-member Steiner nodes).
type Cluster struct {
	ID      ClusterID
	Root    graph.NodeID
	Members []graph.NodeID // ascending
	Tree    *decomp.Tree
}

// Has reports whether v is a member (terminal) of the cluster.
func (c *Cluster) Has(v graph.NodeID) bool {
	i := sort.Search(len(c.Members), func(i int) bool { return c.Members[i] >= v })
	return i < len(c.Members) && c.Members[i] == v
}

// ParentOf returns v's parent in the cluster tree; ok=false at the root.
func (c *Cluster) ParentOf(v graph.NodeID) (graph.NodeID, bool) {
	return c.Tree.ParentOf(v)
}

// ChildrenOf returns v's children in the cluster tree (ascending); the
// returned slice must not be mutated.
func (c *Cluster) ChildrenOf(v graph.NodeID) []graph.NodeID {
	return c.Tree.ChildrenOf(v)
}

// Cover is a sparse d-cover: a set of clusters such that every node is in
// O(log n) clusters and every node's d-ball is fully inside at least one
// cluster.
type Cover struct {
	// D is the covered radius: any two nodes at distance <= D share a
	// cluster.
	D        int
	Clusters []*Cluster
	// memberOf[v] lists clusters that contain v as a member.
	memberOf [][]ClusterID
	// treeOf[v] lists clusters whose tree v participates in (superset of
	// memberOf: Steiner nonterminals relay but are not covered).
	treeOf [][]ClusterID
	// home[v] is a cluster guaranteed to contain Ball(v, D).
	home []ClusterID
}

// MemberOf returns the clusters containing v, ascending by id. Do not
// mutate.
func (c *Cover) MemberOf(v graph.NodeID) []ClusterID { return c.memberOf[v] }

// TreeOf returns the clusters whose tree v participates in, ascending by
// id. Do not mutate.
func (c *Cover) TreeOf(v graph.NodeID) []ClusterID { return c.treeOf[v] }

// Home returns a cluster whose member set contains every node within
// distance D of v (the strengthened covering property of Definition 2.1).
func (c *Cover) Home(v graph.NodeID) ClusterID { return c.home[v] }

// Cluster returns the cluster with the given id.
func (c *Cover) Cluster(id ClusterID) *Cluster { return c.Clusters[id] }

// MaxTreeDepth returns the deepest cluster tree in the cover.
func (c *Cover) MaxTreeDepth() int {
	max := 0
	for _, cl := range c.Clusters {
		if d := cl.Tree.Depth(); d > max {
			max = d
		}
	}
	return max
}

// Build constructs a sparse d-cover of the nodes in s (nil = all nodes) by
// Theorem 4.21. Deterministic.
func Build(g *graph.Graph, d int, s []graph.NodeID) *Cover {
	if d < 1 {
		panic(fmt.Sprintf("cover: d must be >= 1, got %d", d))
	}
	dec := decomp.Build(g, 2*d+1, s)
	cov := &Cover{
		D:        d,
		memberOf: make([][]ClusterID, g.N()),
		treeOf:   make([][]ClusterID, g.N()),
		home:     make([]ClusterID, g.N()),
	}
	for i := range cov.home {
		cov.home[i] = -1
	}
	inS := make([]bool, g.N())
	if s == nil {
		for i := range inS {
			inS[i] = true
		}
	} else {
		for _, v := range s {
			inS[v] = true
		}
	}
	// One epoch-stamped BFS scratch serves every cluster expansion.
	ex := newExpander(g, d)
	id := ClusterID(0)
	for _, colorClusters := range dec.Colors {
		for _, dc := range colorClusters {
			cl := ex.expand(dc, inS)
			cl.ID = id
			cov.Clusters = append(cov.Clusters, cl)
			for _, v := range cl.Members {
				cov.memberOf[v] = append(cov.memberOf[v], cl.ID)
			}
			for _, tv := range cl.Tree.Nodes() {
				cov.treeOf[tv] = append(cov.treeOf[tv], cl.ID)
			}
			for _, v := range dc.Members {
				cov.home[v] = cl.ID
			}
			id++
		}
	}
	return cov
}

// expander holds the multi-source BFS scratch shared across all cluster
// expansions of one Build: entries are valid iff stamp[v] == epoch, so no
// per-cluster clearing or allocation happens.
type expander struct {
	g     *graph.Graph
	d     int
	epoch int32
	stamp []int32
	dist  []int32
	par   []int32
	queue []graph.NodeID
	chain []graph.NodeID
}

func newExpander(g *graph.Graph, d int) *expander {
	n := g.N()
	return &expander{
		g: g, d: d,
		stamp: make([]int32, n),
		dist:  make([]int32, n),
		par:   make([]int32, n),
	}
}

// expand grows dc to its d-neighborhood among nodes of s, extending the
// Steiner tree along BFS paths (through any relay nodes in G).
func (ex *expander) expand(dc *decomp.Cluster, inS []bool) *Cluster {
	tree := dc.Tree.Clone()
	// Multi-source BFS from the cluster members through all of G.
	ex.epoch++
	ex.queue = ex.queue[:0]
	for _, v := range dc.Members {
		ex.stamp[v] = ex.epoch
		ex.dist[v] = 0
		ex.par[v] = -1
		ex.queue = append(ex.queue, v)
	}
	seeds := len(ex.queue)
	for head := 0; head < len(ex.queue); head++ {
		v := ex.queue[head]
		if ex.dist[v] == int32(ex.d) {
			continue
		}
		for _, nb := range ex.g.Neighbors(v) {
			if ex.stamp[nb.Node] != ex.epoch {
				ex.stamp[nb.Node] = ex.epoch
				ex.dist[nb.Node] = ex.dist[v] + 1
				ex.par[nb.Node] = int32(v)
				ex.queue = append(ex.queue, nb.Node)
			}
		}
	}
	members := append([]graph.NodeID(nil), dc.Members...)
	for _, v := range ex.queue[seeds:] {
		if !inS[v] {
			continue // only cover nodes of the target set
		}
		members = append(members, v)
		ex.attachPath(tree, v)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return &Cluster{Root: tree.Root, Members: members, Tree: tree.Finalize()}
}

// attachPath splices the BFS path from v back to the tree into the tree.
func (ex *expander) attachPath(tree *decomp.Tree, v graph.NodeID) {
	ex.chain = ex.chain[:0]
	w := v
	for !tree.Has(w) {
		ex.chain = append(ex.chain, w)
		if ex.par[w] < 0 {
			panic("cover: BFS path did not reach the cluster tree")
		}
		w = graph.NodeID(ex.par[w])
	}
	for i := len(ex.chain) - 1; i >= 0; i-- {
		c := ex.chain[i]
		tree.Attach(c, w)
		w = c
	}
}

// Layered is a layered sparse d-cover: sparse 2^j-covers for all
// j in 0..⌈log₂ d⌉ (§2.1).
type Layered struct {
	// Levels[j] is a sparse 2^j-cover.
	Levels []*Cover
}

// BuildLayered constructs the layered sparse cover up to radius d.
func BuildLayered(g *graph.Graph, d int, s []graph.NodeID) *Layered {
	if d < 1 {
		panic(fmt.Sprintf("cover: layered d must be >= 1, got %d", d))
	}
	var levels []*Cover
	for j := 0; ; j++ {
		r := 1 << uint(j)
		levels = append(levels, Build(g, r, s))
		if r >= d {
			break
		}
	}
	return &Layered{Levels: levels}
}

// Level returns the sparse 2^j-cover; panics when j exceeds what was built.
func (l *Layered) Level(j int) *Cover {
	if j < 0 || j >= len(l.Levels) {
		panic(fmt.Sprintf("cover: level %d not built (have %d)", j, len(l.Levels)))
	}
	return l.Levels[j]
}

// MaxLevel returns the largest built level index.
func (l *Layered) MaxLevel() int { return len(l.Levels) - 1 }
