package graph

// UnionFind is a disjoint-set forest with union by rank and path halving.
type UnionFind struct {
	parent []int
	rank   []int
	count  int
}

// NewUnionFind returns n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int, n),
		rank:   make([]int, n),
		count:  n,
	}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the representative of x.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of x and y; returns false if already joined.
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.count--
	return true
}

// Count returns the number of disjoint sets.
func (uf *UnionFind) Count() int { return uf.count }

// Same reports whether x and y are in the same set.
func (uf *UnionFind) Same(x, y int) bool { return uf.Find(x) == uf.Find(y) }
