package async

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/wire"
)

// segPing streams `count` variable-length payloads over one link, each
// carrying its sequence number and a checksummed segment. The receiver
// validates every segment inside Recv (the only window the ownership
// rules allow); the engine releases each segment after the ack.
type segPing struct {
	remaining int
	sent      int
	got       int
	bad       int
}

func (h *segPing) send(n *Node) {
	seg, view := n.Arena().Alloc(5 + h.sent%7)
	for i := range view {
		view[i] = int32(h.sent + i)
	}
	n.Send(1, Msg{Proto: 1, Body: wire.Body{Kind: 1, A: int64(h.sent), Seg: seg}})
	h.sent++
	h.remaining--
}

func (h *segPing) Init(n *Node) {
	if n.ID() == 0 {
		h.send(n)
	}
}

func (h *segPing) Recv(n *Node, _ graph.NodeID, m Msg) {
	h.got++
	view := n.Arena().Data(m.Body.Seg)
	if len(view) != 5+int(m.Body.A)%7 {
		h.bad++
		return
	}
	for i, v := range view {
		if v != int32(int(m.Body.A)+i) {
			h.bad++
			return
		}
	}
}

func (h *segPing) Ack(n *Node, _ graph.NodeID, _ Msg) {
	if h.remaining > 0 {
		h.send(n)
	} else {
		n.Output(true)
	}
}

func TestSegmentTrafficDeliversAndRecycles(t *testing.T) {
	g := graph.Path(2)
	hs := make([]*segPing, 2)
	s := New(g, SeededRandom{Seed: 3}, func(id graph.NodeID) Handler {
		hs[id] = &segPing{remaining: 500}
		return hs[id]
	})
	s.Run()
	if hs[1].got != 500 || hs[1].bad != 0 {
		t.Fatalf("receiver saw %d segments, %d corrupted", hs[1].got, hs[1].bad)
	}
	// One message in flight at a time: the arena must recycle a handful of
	// size classes, not carve 500 segments.
	carves, recycles := s.arena.Stats()
	if carves > 8 {
		t.Fatalf("arena carved %d segments for serialized traffic; recycling broken (recycled %d)", carves, recycles)
	}
}
