package apps

import (
	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/wire"
)

// Wire kinds of every algorithm in this package. Each algorithm owns its
// own namespace (one algorithm per run; under the synchronizer the kind
// rides in the frame's Sub field), but the values are kept globally
// distinct anyway so mixed traces stay unambiguous when debugging.
const (
	kindFlood     wire.Kind = 1 // Flood token (signal)
	kindEchoToken wire.Kind = 2 // Echo join token (signal)
	kindEchoCount wire.Kind = 3 // Echo subtree count; A = size

	kindBFSJoin wire.Kind = 10 // BFS join proposal; A = claimed source

	kindTBFSJoin       wire.Kind = 20 // A = source
	kindTBFSAccept     wire.Kind = 21 // signal
	kindTBFSReject     wire.Kind = 22 // signal
	kindTBFSProbe      wire.Kind = 23 // signal
	kindTBFSProbeReply wire.Kind = 24 // A = reached
	kindTBFSEcho       wire.Kind = 25 // A = frontier

	kindLeadUp   wire.Kind = 30 // A = level, B = cluster, C = min
	kindLeadDown wire.Kind = 31 // A = level, B = cluster, C = min, D = isLeader

	kindMSTTest     wire.Kind = 40 // A = phase, B = fragment
	kindMSTMOE      wire.Kind = 41 // A = phase<<1|none, B = weight, C = U, D = V
	kindMSTDecision wire.Kind = 42 // same layout as kindMSTMOE
	kindMSTConnect  wire.Kind = 43 // A = phase
	kindMSTNewFrag  wire.Kind = 44 // A = phase, B = fragment
	kindMSTBarUp    wire.Kind = 45 // A = barrier sequence
	kindMSTBarDown  wire.Kind = 46 // A = barrier sequence
)

// --- leader codec ----------------------------------------------------------

func encLeadUp(m leadUp) wire.Body {
	return wire.Body{Kind: kindLeadUp, A: int64(m.Level), B: int64(m.Cluster), C: int64(m.Min)}
}

func decLeadUp(b wire.Body) leadUp {
	return leadUp{Level: int(b.A), Cluster: cover.ClusterID(b.B), Min: graph.NodeID(b.C)}
}

func encLeadDown(m leadDown) wire.Body {
	return wire.Body{Kind: kindLeadDown, A: int64(m.Level), B: int64(m.Cluster),
		C: int64(m.Min), D: wire.FromBool(m.IsLeader)}
}

func decLeadDown(b wire.Body) leadDown {
	return leadDown{Level: int(b.A), Cluster: cover.ClusterID(b.B),
		Min: graph.NodeID(b.C), IsLeader: wire.ToBool(b.D)}
}

// --- MST codec -------------------------------------------------------------

// encMSTEdge packs an MOE candidate with its phase: the None bit shares A
// with the phase (a None edge's W/U/V are meaningless and encode as zero).
func encMSTEdge(k wire.Kind, phase int, e mstEdge) wire.Body {
	a := int64(phase) << 1
	if e.None {
		return wire.Body{Kind: k, A: a | 1}
	}
	return wire.Body{Kind: k, A: a, B: e.W, C: int64(e.U), D: int64(e.V)}
}

func decMSTEdge(b wire.Body) (phase int, e mstEdge) {
	phase = int(b.A >> 1)
	if b.A&1 != 0 {
		return phase, mstEdge{None: true}
	}
	return phase, mstEdge{W: b.B, U: graph.NodeID(b.C), V: graph.NodeID(b.D)}
}
