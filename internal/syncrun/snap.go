package syncrun

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/wire"
)

// Lockstep state plane: snapshot / restore of a Runner at pulse
// boundaries. The frame carries the complete mutable run state — pulse
// clock, message and output accounting, every handler's protocol state via
// its wire.StateCodec, the next pulse's pending deliveries and activation
// set, and the trace — so restoring it into a Runner built over the same
// graph and handler constructor continues the run with byte-identical
// Results in every execution mode.
//
// The CONGEST guard (sentAt) deliberately stays out of the frame: its
// stamps are pulse+1 values compared for equality only, and the pulse
// clock is strictly increasing, so a restored run's fresh zero stamps can
// never falsely match a future pulse — the guard re-arms itself.

// Snapshot serializes the runner's state into a sealed frame. Legal
// before Run, between RunPulses calls, or after quiescence — pulse
// boundaries, where the current pulse's buffer is drained and all pending
// work sits in the next-pulse buffer.
func (r *Runner) Snapshot() ([]byte, error) {
	e := wire.NewEnc(&r.arena)
	// Header.
	e.U32(uint32(r.g.N()))
	e.Bool(r.keepTrace)
	e.Bool(r.started || r.resumed)

	// Counters.
	e.Int(r.pulse)
	e.Int(r.lastOut)
	e.U64(r.msgs)
	e.Bool(r.done)

	// Nodes: output slot plus handler state, in index order.
	outB, outA := r.loadedOutBodies(), r.loadedOutAnys()
	for i := 0; i < r.g.N(); i++ {
		e.Bool(r.hasOut[i])
		if r.hasOut[i] {
			var b wire.Body
			if outB != nil {
				b = outB[i]
			}
			if b.Kind == 0 {
				var v any
				if outA != nil {
					v = outA[i]
				}
				return nil, fmt.Errorf("syncrun: node %d output a boxed %T; snapshots carry only outval-encodable outputs", i, v)
			}
			e.Body(b)
		}
		sc, ok := r.handlers[i].(wire.StateCodec)
		if !ok {
			return nil, fmt.Errorf("syncrun: handler %T of node %d does not implement wire.StateCodec; runner state cannot be snapshotted", r.handlers[i], i)
		}
		mark := e.BeginBlob()
		sc.SaveState(e)
		e.EndBlob(mark)
	}

	// Next pulse's pending deliveries, as per-receiver chains in receiver
	// order (chain order is the serial application order batch replays).
	nChains := 0
	for to := 0; to < r.g.N(); to++ {
		if r.nxt.ep[to] == r.nxt.epoch {
			nChains++
		}
	}
	e.U32(uint32(nChains))
	for to := 0; to < r.g.N(); to++ {
		if r.nxt.ep[to] != r.nxt.epoch {
			continue
		}
		e.I32(int32(to))
		cnt := 0
		for i := r.nxt.head[to]; i >= 0; i = r.nxt.pend[i].next {
			cnt++
		}
		e.U32(uint32(cnt))
		for i := r.nxt.head[to]; i >= 0; i = r.nxt.pend[i].next {
			e.I32(int32(r.nxt.pend[i].in.From))
			e.Body(r.nxt.pend[i].in.Body)
		}
	}

	// Activation set, in index order off the bitmap.
	e.U32(uint32(r.nxt.active))
	for w, word := range r.nxt.bits {
		base := w << 6
		for word != 0 {
			e.I32(int32(base + bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}

	// Trace.
	e.U32(uint32(len(r.trace)))
	for i := range r.trace {
		te := &r.trace[i]
		e.Int(te.Pulse)
		e.I32(int32(te.From))
		e.I32(int32(te.To))
		e.RawBody(te.Body)
	}
	return wire.SealSnapshot(e.Bytes()), nil
}

// Restore loads a Snapshot frame into this runner, which must be freshly
// built (never stepped) over the same graph and handler constructor as the
// snapshotted one. The next Run or RunPulses continues the interrupted
// run.
func (r *Runner) Restore(data []byte) error {
	if r.started || r.resumed || r.pulse != 0 {
		return fmt.Errorf("syncrun: Restore into a runner that already ran (build a fresh one)")
	}
	payload, err := wire.OpenSnapshot(data)
	if err != nil {
		return err
	}
	d := wire.NewDec(payload, &r.arena)
	if n := d.U32(); !d.Failed() && int(n) != r.g.N() {
		return fmt.Errorf("syncrun: snapshot of a %d-node graph restored into %d nodes", n, r.g.N())
	}
	if kt := d.Bool(); !d.Failed() && kt != r.keepTrace {
		return fmt.Errorf("syncrun: snapshot traced=%v, runner traced=%v", kt, r.keepTrace)
	}
	inited := d.Bool()

	r.pulse = d.Int()
	r.lastOut = d.Int()
	r.msgs = d.U64()
	r.done = d.Bool()

	for i := 0; i < r.g.N() && !d.Failed(); i++ {
		if d.Bool() {
			b := d.Body()
			if !d.Failed() && b.Kind == 0 {
				d.Fail("node %d output record has zero kind", i)
				break
			}
			r.hasOut[i] = true
			r.outBodies()[i] = b
		}
		sc, ok := r.handlers[i].(wire.StateCodec)
		if !ok {
			r.restoreFailed()
			return fmt.Errorf("syncrun: handler %T of node %d does not implement wire.StateCodec; snapshot cannot be restored", r.handlers[i], i)
		}
		end := d.BeginBlob()
		if d.Failed() {
			break
		}
		sc.LoadState(d)
		d.EndBlob(end)
	}

	nChains := int(d.U32())
	for c := 0; c < nChains && !d.Failed(); c++ {
		to := graph.NodeID(d.I32())
		cnt := int(d.U32())
		if d.Failed() {
			break
		}
		if int(to) < 0 || int(to) >= r.g.N() {
			d.Fail("delivery chain for node %d outside the graph", to)
			break
		}
		for i := 0; i < cnt && !d.Failed(); i++ {
			from := graph.NodeID(d.I32())
			body := d.Body()
			if !d.Failed() {
				r.nxt.deliver(to, Incoming{From: from, Body: body})
			}
		}
	}

	nActive := int(d.U32())
	for i := 0; i < nActive && !d.Failed(); i++ {
		v := graph.NodeID(d.I32())
		if int(v) < 0 || int(v) >= r.g.N() {
			d.Fail("active node %d outside the graph", v)
			break
		}
		r.nxt.activate(v)
	}

	nTrace := int(d.U32())
	for i := 0; i < nTrace && !d.Failed(); i++ {
		var te TraceEntry
		te.Pulse = d.Int()
		te.From = graph.NodeID(d.I32())
		te.To = graph.NodeID(d.I32())
		te.Body = d.RawBody()
		if !d.Failed() {
			r.trace = append(r.trace, te)
		}
	}
	if err := d.Err(); err != nil {
		r.restoreFailed()
		return err
	}
	if d.Remaining() != 0 {
		r.restoreFailed()
		return fmt.Errorf("syncrun: snapshot frame has %d trailing bytes", d.Remaining())
	}
	r.resumed = inited
	return nil
}

// restoreFailed returns the runner to its pristine pre-Restore state after
// a failed decode, releasing every segment the partial decode carved.
func (r *Runner) restoreFailed() {
	r.pulse, r.lastOut, r.msgs = 0, 0, 0
	r.done = false
	for i := range r.hasOut {
		r.hasOut[i] = false
	}
	if outB := r.loadedOutBodies(); outB != nil {
		for i := range outB {
			outB[i] = wire.Body{}
		}
	}
	r.trace = r.trace[:0]
	r.nxt.refill()
	for i := range r.nxt.bits {
		r.nxt.bits[i] = 0
	}
	r.nxt.active = 0
	r.arena.Reset()
}

// RunPulses advances up to n pulses, initializing handlers on the first
// call (unless the runner was restored from a snapshot). It reports
// whether the network is still active; callers interleave Snapshot between
// calls to checkpoint at any pulse, then FinishResult once it returns
// false.
func (r *Runner) RunPulses(n int) bool {
	mode := r.start()
	for ; n > 0; n-- {
		if !r.stepPulse(mode) {
			return false
		}
	}
	return !r.done
}

// FinishResult materializes the Result of a stepped run after RunPulses
// reported quiescence.
func (r *Runner) FinishResult() Result {
	if !r.done {
		panic("syncrun: FinishResult before quiescence")
	}
	return r.finish()
}
