package core

import (
	"repro/internal/async"
	"repro/internal/wire"
)

// Protocol tags used by the synchronizer. Registration and barrier modules
// get one proto per cover level on top of these bases.
const (
	// ProtoAlgo carries algorithm messages and their chosen/declined
	// replies (the execution forest's edges).
	ProtoAlgo async.Proto = 1
	// ProtoTree carries safety-status reports and Go-Ahead propagation on
	// the execution forest.
	ProtoTree async.Proto = 2
	// ProtoRegBase + coverLevel carries §3.2 registration traffic.
	ProtoRegBase async.Proto = 100
	// ProtoBarrierBase + coverLevel carries §4.2 originator barriers.
	ProtoBarrierBase async.Proto = 200
)

// Wire kinds of every payload this package puts on a link. The main
// synchronizer and the α/β/γ baselines share one namespace: each routes by
// kind inside a single Recv, and distinct values keep the decode
// unambiguous even for handlers that see several message families.
const (
	// kindAlgo is one synchronous-algorithm message: sent by virtual node
	// (sender, P), creating or feeding virtual node (receiver, P+1). It is
	// a framed payload (wire.Frame): P carries the pulse, Sub the embedded
	// algorithm's own kind, and the words/segment pass through untouched.
	kindAlgo wire.Kind = 1
	// kindReply answers a kindAlgo message: whether the receiver chose the
	// sender as its execution-forest parent. A = pulse (echoing the algo
	// message's), B = chosen.
	kindReply wire.Kind = 2
	// kindStatus is a safety-convergecast report: the sender's virtual
	// node of pulse B reports its subtree's Q-status to its
	// execution-forest parent of pulse B-1. A = Q, B = child pulse,
	// C = ready (non-Q-empty and Q-safe; !ready = Q-empty, which per
	// §4.1.2 also implies Q-safe).
	kindStatus wire.Kind = 3
	// kindGA propagates Go-Ahead(Q) down the execution forest; the
	// receiver's virtual node has pulse B. A = Q, B = child pulse.
	kindGA wire.Kind = 4

	// kindAlphaSafe is α's SAFE(p) flood; A = pulse.
	kindAlphaSafe wire.Kind = 5
	// kindBetaSafeUp is β's subtree-safe convergecast; A = pulse.
	kindBetaSafeUp wire.Kind = 6
	// kindBetaAdvance is β's advance broadcast; A = the pulse to run.
	kindBetaAdvance wire.Kind = 7

	// γ tree traffic; A = cluster index, B = pulse (kindGammaCSafe crosses
	// a designated inter-cluster edge and carries only the pulse).
	kindGammaP1Up        wire.Kind = 8
	kindGammaClusterSafe wire.Kind = 9
	kindGammaCSafe       wire.Kind = 10
	kindGammaP2Up        wire.Kind = 11
	kindGammaAdvance     wire.Kind = 12
)

// frameAlgo wraps one embedded-algorithm payload as a pulse-tagged
// kindAlgo message (zero-copy; see wire.Frame). Algorithm payloads must be
// seg-free: the synchronizer retains them until Go-Ahead evaluates the
// pulse, far past the carrying message's lifecycle, so an arena-backed
// segment would dangle.
func frameAlgo(pulse int, body wire.Body) wire.Body {
	if !body.Seg.IsZero() {
		panic("core: synchronized algorithm payloads must not carry segments")
	}
	return wire.Frame(kindAlgo, pulse, body)
}

// replyMsg answers an algorithm message: whether the receiver chose the
// sender as its execution-forest parent. Pulse echoes the algo message's.
type replyMsg struct {
	Pulse  int
	Chosen bool
}

func encReply(m replyMsg) wire.Body {
	return wire.Body{Kind: kindReply, A: int64(m.Pulse), B: wire.FromBool(m.Chosen)}
}

func decReply(b wire.Body) replyMsg {
	return replyMsg{Pulse: int(b.A), Chosen: wire.ToBool(b.B)}
}

// statusMsg is a safety-convergecast report: the sender's virtual node of
// pulse ChildPulse reports its subtree's Q-status (ready = non-Q-empty and
// Q-safe; !Ready = Q-empty, which per §4.1.2 also implies Q-safe) to its
// execution-forest parent of pulse ChildPulse-1.
type statusMsg struct {
	Q          int
	ChildPulse int
	Ready      bool
}

func encStatus(m statusMsg) wire.Body {
	return wire.Body{Kind: kindStatus, A: int64(m.Q), B: int64(m.ChildPulse), C: wire.FromBool(m.Ready)}
}

func decStatus(b wire.Body) statusMsg {
	return statusMsg{Q: int(b.A), ChildPulse: int(b.B), Ready: wire.ToBool(b.C)}
}

// gaMsg propagates Go-Ahead(Q) down the execution forest; the receiver's
// virtual node has pulse ChildPulse.
type gaMsg struct {
	Q          int
	ChildPulse int
}

func encGA(m gaMsg) wire.Body {
	return wire.Body{Kind: kindGA, A: int64(m.Q), B: int64(m.ChildPulse)}
}

func decGA(b wire.Body) gaMsg {
	return gaMsg{Q: int(b.A), ChildPulse: int(b.B)}
}
