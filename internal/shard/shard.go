package shard

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/async"
	"repro/internal/execpolicy"
	"repro/internal/graph"
	"repro/internal/outval"
	"repro/internal/wire"
)

// Launch selects how workers come to life.
type Launch int

const (
	// LaunchInProc serves every worker on a goroutine in this process,
	// over real unix sockets — the full protocol with none of the process
	// management, which is what determinism tests race-detect.
	LaunchInProc Launch = iota
	// LaunchProcess re-execs this binary once per shard (MaybeWorker in
	// the child's main turns it into a worker).
	LaunchProcess
)

// Config parameterizes one sharded run.
type Config struct {
	// GraphSpec is the graph.FromSpec string every process builds
	// independently — topologies ship as generator programs, not bytes.
	GraphSpec string
	// Graph optionally pre-builds the topology (LaunchInProc only, for
	// tests over graphs with no spec string). GraphSpec wins when both
	// are set; LaunchProcess requires GraphSpec.
	Graph *graph.Graph
	// Shards is K; 0 picks execpolicy.AutoShards.
	Shards int
	// Workload names a registered workload (see NewWorkload).
	Workload string
	// Adversary is the delay-adversary spec (see ParseAdversary).
	Adversary string
	// Faults is the fault-schedule spec (see async.ParseFaultSpec); ""
	// or "none" runs fault-free. Every worker wraps its adversary in the
	// same schedule, and fault decisions are pure functions of
	// (seed, link, txSeq, epoch), so the sharded run stays byte-identical
	// to the serial faulty run.
	Faults string
	// Sources are the workload's initiating nodes (default {0}).
	Sources []graph.NodeID
	// SegWords sizes segment payloads for segment-carrying workloads.
	SegWords int
	// KeepTrace records delivery traces (merged across shards).
	KeepTrace bool
	// Launch picks goroutine or process workers.
	Launch Launch
	// CeilingMB fails the run if any worker's settled heap exceeds it
	// (LaunchProcess only; in-process workers share one heap). 0 = off.
	CeilingMB int64
	// WorkerArgs, when set, provides extra argv for spawned workers (the
	// environment variables are always set; cmd/shardsim passes
	// ["-shard-worker"] so process listings identify workers).
	WorkerArgs []string
	// SnapshotEvery, when > 0, checkpoints the run at the first FLUSH
	// barrier after every N executed events (cumulative across shards),
	// writing the sealed distributed snapshot to SnapshotPath.
	SnapshotEvery uint64
	// SnapshotPath is the checkpoint file (atomically replaced at each
	// checkpoint). Required when SnapshotEvery > 0.
	SnapshotPath string
	// ResumeFrom resumes a checkpointed run from its snapshot file. The
	// workload identity (graph, adversary, faults, workload, sources,
	// trace flag) is taken from the file; Shards may differ from the
	// checkpoint's K — frames are re-split across the new partition.
	ResumeFrom string
}

// ShardInfo is one worker's self-report.
type ShardInfo struct {
	Nodes, Links, Boundary int
	Steps                  uint64
	SegLive                int
	// GraphBytes is the exact retained size of the shard's sub-CSR view
	// (closed form). EngineBytes/HeapMB are settled-heap probes, only
	// meaningful for process workers (0 in-process).
	GraphBytes  int64
	EngineBytes int64
	HeapMB      int64
}

// Stats is the coordinator's accounting of where wall-clock went.
type Stats struct {
	Shards      int
	Windows     uint64
	Frames      uint64
	FrameBytes  uint64
	CrossLinks  int
	TotalEvents uint64
	// StartupNs spans launch to the last init flush: process spawn, graph
	// generation, partition carving, handler Init.
	StartupNs int64
	// WorkerNs sums each window's slowest worker's execution time —
	// the critical path spent simulating.
	WorkerNs int64
	// CommNs sums each window's barrier overhead: time from OPEN writes
	// to the last FLUSH arrival, minus that window's WorkerNs share.
	CommNs int64
	// MergeNs sums coordinator-side merge + routing + OPEN serialization.
	MergeNs int64
	// Snapshots counts checkpoints written; SnapshotNs sums the time from
	// the flagged OPEN writes to the sealed file landing on disk.
	Snapshots  uint64
	SnapshotNs int64
}

// Report is a completed sharded run.
type Report struct {
	Result async.Result
	Stats  Stats
	Shards []ShardInfo
	Cuts   []graph.NodeID
}

// Run executes cfg to completion and merges the shards' executions. The
// merged Result is byte-identical to running the same workload through
// the serial single-process engine.
func Run(cfg Config) (*Report, error) {
	if cfg.SnapshotEvery > 0 && cfg.SnapshotPath == "" {
		return nil, fmt.Errorf("shard: SnapshotEvery without a SnapshotPath")
	}
	var resumeHdr *snapHeader
	var resumeFrames [][]byte
	if cfg.ResumeFrom != "" {
		var err error
		cfg, resumeHdr, resumeFrames, err = loadResume(cfg)
		if err != nil {
			return nil, err
		}
	}
	full := cfg.Graph
	if cfg.GraphSpec != "" {
		g, err := graph.FromSpec(cfg.GraphSpec)
		if err != nil {
			return nil, err
		}
		full = g
	}
	if full == nil {
		return nil, fmt.Errorf("shard: config names no graph")
	}
	if cfg.Launch == LaunchProcess && cfg.GraphSpec == "" {
		return nil, fmt.Errorf("shard: process workers need a GraphSpec to rebuild the topology")
	}
	k := cfg.Shards
	if k == 0 {
		k = execpolicy.AutoShards(runtime.GOMAXPROCS(0), full.Links())
	}
	if k < 1 {
		return nil, fmt.Errorf("shard: %d shards", k)
	}
	if k > full.N() {
		k = full.N()
	}
	if _, err := ParseAdversary(cfg.Adversary); err != nil {
		return nil, err
	}
	if _, err := async.ParseFaultSpec(cfg.Faults); err != nil {
		return nil, err
	}
	if _, err := NewWorkload(cfg.Workload, WorkloadConfig{Sources: cfg.Sources, SegWords: cfg.SegWords}); err != nil {
		return nil, err
	}
	part := graph.PartitionContiguous(full, k)
	k = part.K()

	c := &coord{
		cfg:  cfg,
		part: part,
		stats: Stats{
			Shards:     k,
			CrossLinks: part.CrossLinks(full),
		},
	}
	if resumeHdr != nil {
		frames, err := resplitForResume(resumeFrames, part, resumeHdr.NextSeq)
		if err != nil {
			return nil, err
		}
		c.resumeFrames = frames
		c.resumeSeq = resumeHdr.NextSeq
	}
	return c.run(full)
}

// coord is the coordinator's per-run state.
type coord struct {
	cfg   Config
	part  graph.Partition
	stats Stats

	conns []workerConn

	// Resume state: per-shard engine frames to ship after HELLO, and the
	// grant counter the checkpoint froze.
	resumeFrames [][]byte
	resumeSeq    uint64
}

// workerConn is one connected worker.
type workerConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	buf  []byte // receive buffer, reused across windows

	// Decoded current flush.
	hasMin  bool
	minT    float64
	execNs  uint64
	steps   uint64
	entries []flushEntry

	// OPEN under construction.
	grants  []uint64
	inbound []byte
	inCount uint32

	err error // in-proc worker outcome
}

// flushEntry is one staged schedule call as received; frame views the
// connection's receive buffer and is copied during routing.
type flushEntry struct {
	trigT   float64
	trigSeq uint64
	evT     float64
	owner   graph.NodeID
	frame   []byte // nil for local entries
}

func (c *coord) run(full *graph.Graph) (rep *Report, err error) {
	dir, err := os.MkdirTemp("", "shardsim")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	sockPath := filepath.Join(dir, "coord.sock")
	ln, err := net.Listen("unix", sockPath)
	if err != nil {
		return nil, err
	}
	defer ln.Close()

	k := c.part.K()
	c.conns = make([]workerConn, k)
	t0 := time.Now()

	// Launch. In-process workers share the already-built graph read-only;
	// process workers regenerate from the spec. Any launch or serve error
	// surfaces through the protocol reads below (a dead worker's socket
	// read fails), and the deferred cleanup reaps children.
	var procs []*exec.Cmd
	defer func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
		}
	}()
	if c.cfg.Launch == LaunchProcess {
		exe, err := os.Executable()
		if err != nil {
			return nil, err
		}
		for i := 0; i < k; i++ {
			cmd := exec.Command(exe, c.cfg.WorkerArgs...)
			cmd.Env = append(os.Environ(),
				EnvSocket+"="+sockPath,
				fmt.Sprintf("%s=%d", EnvIndex, i))
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				return nil, err
			}
			procs = append(procs, cmd)
		}
	} else {
		for i := 0; i < k; i++ {
			go func(i int) {
				conn, derr := net.Dial("unix", sockPath)
				if derr != nil {
					return
				}
				defer conn.Close()
				if serr := serveWorker(conn, i, full, false); serr != nil {
					// Surfaces as a protocol read error coordinator-side;
					// keep the cause for the error message.
					c.conns[i].err = serr
				}
			}(i)
		}
	}

	// Accept and identify the K workers.
	type accepted struct {
		conn net.Conn
		r    *bufio.Reader
		idx  int
		err  error
	}
	if dl, ok := ln.(*net.UnixListener); ok {
		dl.SetDeadline(time.Now().Add(60 * time.Second))
	}
	for i := 0; i < k; i++ {
		conn, aerr := ln.Accept()
		if aerr != nil {
			return nil, c.workerError(fmt.Errorf("shard: accepting workers: %v", aerr))
		}
		r := bufio.NewReaderSize(conn, 1<<16)
		typ, payload, merr := readMsg(r, nil)
		if merr != nil || typ != msgJoin || len(payload) != 4 {
			conn.Close()
			return nil, c.workerError(fmt.Errorf("shard: bad JOIN handshake (%v)", merr))
		}
		idx := int(uint32(payload[0]) | uint32(payload[1])<<8 | uint32(payload[2])<<16 | uint32(payload[3])<<24)
		if idx < 0 || idx >= k || c.conns[idx].conn != nil {
			conn.Close()
			return nil, fmt.Errorf("shard: worker joined with bad index %d", idx)
		}
		c.conns[idx].conn = conn
		c.conns[idx].r = r
		c.conns[idx].w = bufio.NewWriterSize(conn, 1<<16)
	}
	defer func() {
		for i := range c.conns {
			if c.conns[i].conn != nil {
				c.conns[i].conn.Close()
			}
		}
	}()

	// HELLO (plus the restored engine frame when resuming).
	hcfg := hello{
		GraphSpec: c.cfg.GraphSpec,
		Cuts:      c.part.Cuts(),
		Adversary: c.cfg.Adversary,
		Faults:    c.cfg.Faults,
		Workload:  c.cfg.Workload,
		Sources:   sortNodeIDs(append([]graph.NodeID(nil), c.cfg.Sources...)),
		SegWords:  c.cfg.SegWords,
		KeepTrace: c.cfg.KeepTrace,
		Resume:    c.resumeFrames != nil,
	}
	for i := range c.conns {
		hcfg.Self = i
		payload, jerr := json.Marshal(&hcfg)
		if jerr != nil {
			return nil, jerr
		}
		if werr := writeMsg(c.conns[i].w, msgHello, payload); werr != nil {
			return nil, c.workerError(werr)
		}
		if c.resumeFrames != nil {
			if werr := writeMsg(c.conns[i].w, msgFrame, c.resumeFrames[i]); werr != nil {
				return nil, c.workerError(werr)
			}
		}
	}

	// Window protocol: alternate (read all flushes) / (merge, open). A
	// checkpoint rides a window boundary: when cumulative executed events
	// cross the next SnapshotEvery multiple, the OPENs carry a snapshot
	// flag and each worker sends its engine frame back before running.
	nextSeq := c.resumeSeq
	nextSnapAt := c.cfg.SnapshotEvery
	windowStart := time.Time{}
	first := true
	for {
		maxExec := uint64(0)
		totalSteps := uint64(0)
		for i := range c.conns {
			if err := c.readFlush(&c.conns[i]); err != nil {
				return nil, c.workerError(err)
			}
			if c.conns[i].execNs > maxExec {
				maxExec = c.conns[i].execNs
			}
			totalSteps += c.conns[i].steps
		}
		if first {
			c.stats.StartupNs = int64(time.Since(t0))
			first = false
		} else {
			wait := int64(time.Since(windowStart))
			c.stats.WorkerNs += int64(maxExec)
			if over := wait - int64(maxExec); over > 0 {
				c.stats.CommNs += over
			}
		}

		mergeT := time.Now()
		wStart, pending := c.merge(&nextSeq)
		if !pending {
			break
		}
		snap := c.cfg.SnapshotEvery > 0 && totalSteps >= nextSnapAt
		for i := range c.conns {
			if err := c.writeOpen(&c.conns[i], wStart, snap); err != nil {
				return nil, c.workerError(err)
			}
		}
		c.stats.MergeNs += int64(time.Since(mergeT))
		if snap {
			snapT := time.Now()
			if err := c.collectSnapshot(nextSeq, totalSteps); err != nil {
				return nil, c.workerError(err)
			}
			c.stats.Snapshots++
			c.stats.SnapshotNs += int64(time.Since(snapT))
			nextSnapAt = (totalSteps/c.cfg.SnapshotEvery + 1) * c.cfg.SnapshotEvery
		}
		c.stats.Windows++
		windowStart = time.Now()
	}

	// FINISH + merge results.
	for i := range c.conns {
		if err := writeMsg(c.conns[i].w, msgFinish, nil); err != nil {
			return nil, c.workerError(err)
		}
	}
	rep = &Report{Cuts: c.part.Cuts(), Shards: make([]ShardInfo, k)}
	var traces [][]async.TraceEntry
	for i := range c.conns {
		if err := c.readResult(&c.conns[i], rep, i, &traces); err != nil {
			return nil, c.workerError(err)
		}
	}
	if c.cfg.KeepTrace {
		rep.Result.Trace = mergeTraces(traces)
	}
	rep.Stats = c.stats
	for i := range rep.Shards {
		si := &rep.Shards[i]
		rep.Stats.TotalEvents += si.Steps
		if si.SegLive != 0 {
			return nil, fmt.Errorf("shard: worker %d leaked %d arena segments", i, si.SegLive)
		}
		if c.cfg.CeilingMB > 0 && c.cfg.Launch == LaunchProcess && si.HeapMB > c.cfg.CeilingMB {
			return nil, fmt.Errorf("shard: worker %d settled heap %d MB exceeds %d MB ceiling",
				i, si.HeapMB, c.cfg.CeilingMB)
		}
	}
	if c.cfg.Launch == LaunchProcess {
		for _, p := range procs {
			if werr := p.Wait(); werr != nil {
				return nil, fmt.Errorf("shard: worker exited: %v", werr)
			}
		}
		procs = nil
	}
	return rep, nil
}

// workerError augments a protocol error with any in-process worker cause.
func (c *coord) workerError(err error) error {
	for i := range c.conns {
		if c.conns[i].err != nil {
			return fmt.Errorf("%v (worker %d: %v)", err, i, c.conns[i].err)
		}
	}
	return err
}

// readFlush decodes one worker's flush into its connection state.
func (c *coord) readFlush(wc *workerConn) error {
	typ, payload, err := readMsg(wc.r, wc.buf)
	if err != nil {
		return err
	}
	wc.buf = payload[:0]
	if typ != msgFlush {
		return fmt.Errorf("shard: expected FLUSH, got message type %d", typ)
	}
	rd := reader{b: payload}
	wc.hasMin = rd.u8() != 0
	wc.minT = rd.f64()
	wc.execNs = rd.u64()
	wc.steps = rd.u64()
	n := int(rd.u32())
	wc.entries = wc.entries[:0]
	for i := 0; i < n; i++ {
		e := flushEntry{
			trigT:   rd.f64(),
			trigSeq: rd.u64(),
			evT:     rd.f64(),
			owner:   graph.NodeID(rd.i32()),
		}
		if rd.u8() != 0 {
			e.frame = rd.take(int(rd.u32()))
		}
		if rd.bad {
			break
		}
		wc.entries = append(wc.entries, e)
	}
	return rd.err("FLUSH")
}

// merge k-way merges the flushed logs by (trigT, trigSeq) — the serial
// engine's schedule-call order — granting seqs in merge order and routing
// remote entries' frames to their destination shard. Returns the next
// window's start (the global minimum pending timestamp) and whether any
// event is pending anywhere.
func (c *coord) merge(nextSeq *uint64) (wStart float64, pending bool) {
	for i := range c.conns {
		wc := &c.conns[i]
		wc.grants = wc.grants[:0]
		wc.inbound = wc.inbound[:0]
		wc.inCount = 0
	}
	cur := make([]int, len(c.conns))
	newMin := math.Inf(1)
	for {
		best := -1
		for i := range c.conns {
			es := c.conns[i].entries
			if cur[i] == len(es) {
				continue
			}
			if best < 0 || entryLess(&es[cur[i]], &c.conns[best].entries[cur[best]]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		e := &c.conns[best].entries[cur[best]]
		cur[best]++
		seq := *nextSeq
		*nextSeq++
		c.conns[best].grants = append(c.conns[best].grants, seq)
		if e.evT < newMin {
			newMin = e.evT
		}
		if e.frame != nil {
			dst := &c.conns[c.part.Owner(e.owner)]
			dst.inbound = appendU64(dst.inbound, seq)
			dst.inbound = appendF64(dst.inbound, e.evT)
			dst.inbound = appendU32(dst.inbound, uint32(len(e.frame)))
			dst.inbound = append(dst.inbound, e.frame...)
			dst.inCount++
			c.stats.Frames++
			c.stats.FrameBytes += uint64(len(e.frame))
		}
	}
	wStart = newMin
	for i := range c.conns {
		if wc := &c.conns[i]; wc.hasMin && wc.minT < wStart {
			wStart = wc.minT
		}
	}
	return wStart, !math.IsInf(wStart, 1)
}

func entryLess(a, b *flushEntry) bool {
	if a.trigT != b.trigT {
		return a.trigT < b.trigT
	}
	return a.trigSeq < b.trigSeq
}

// writeOpen sends one worker its grants and routed inbound events, plus
// the snapshot flag requesting an engine frame before the window runs.
func (c *coord) writeOpen(wc *workerConn, wStart float64, snap bool) error {
	out := appendF64(nil, wStart)
	out = appendU32(out, uint32(len(wc.grants)))
	for _, s := range wc.grants {
		out = appendU64(out, s)
	}
	out = appendU32(out, wc.inCount)
	out = append(out, wc.inbound...)
	if snap {
		out = appendU8(out, 1)
	} else {
		out = appendU8(out, 0)
	}
	return writeMsg(wc.w, msgOpen, out)
}

// collectSnapshot reads one engine frame per worker (the response to a
// snapshot-flagged OPEN) and seals them, with the run's configuration and
// the frozen grant counter, into the checkpoint file.
func (c *coord) collectSnapshot(nextSeq, totalSteps uint64) error {
	frames := make([][]byte, len(c.conns))
	for i := range c.conns {
		wc := &c.conns[i]
		typ, payload, err := readMsg(wc.r, nil)
		if err != nil {
			return err
		}
		if typ != msgSnapFrame {
			return fmt.Errorf("shard: expected SNAPFRAME, got message type %d", typ)
		}
		frames[i] = payload
	}
	hdr := snapHeader{
		GraphSpec: c.cfg.GraphSpec,
		Adversary: c.cfg.Adversary,
		Faults:    c.cfg.Faults,
		Workload:  c.cfg.Workload,
		Sources:   sortNodeIDs(append([]graph.NodeID(nil), c.cfg.Sources...)),
		SegWords:  c.cfg.SegWords,
		KeepTrace: c.cfg.KeepTrace,
		Shards:    c.part.K(),
		NextSeq:   nextSeq,
		Steps:     totalSteps,
	}
	return writeSnapshotFile(c.cfg.SnapshotPath, &hdr, frames)
}

// readResult decodes one worker's RESULT and folds it into the report.
func (c *coord) readResult(wc *workerConn, rep *Report, idx int, traces *[][]async.TraceEntry) error {
	typ, payload, err := readMsg(wc.r, wc.buf)
	if err != nil {
		return err
	}
	wc.buf = payload[:0]
	if typ != msgResult {
		return fmt.Errorf("shard: expected RESULT, got message type %d", typ)
	}
	rd := reader{b: payload}
	res := &rep.Result
	if t := rd.f64(); t > res.Time {
		res.Time = t
	}
	if q := rd.f64(); q > res.QuiesceTime {
		res.QuiesceTime = q
	}
	res.Msgs += rd.u64()
	res.Acks += rd.u64()
	res.Dropped += rd.u64()
	res.Retrans += rd.u64()
	res.Undeliverable += rd.u64()
	si := &rep.Shards[idx]
	si.Steps = rd.u64()
	si.SegLive = int(rd.u64())
	si.Nodes = int(rd.u32())
	si.Links = int(rd.u32())
	si.Boundary = int(rd.u32())
	si.GraphBytes = int64(rd.u64())
	si.EngineBytes = int64(rd.u64())
	si.HeapMB = int64(rd.u64())
	np := int(rd.u32())
	for i := 0; i < np; i++ {
		p := async.Proto(rd.i32())
		n := rd.u64()
		if rd.bad {
			break
		}
		if res.PerProto == nil {
			res.PerProto = make(map[async.Proto]uint64)
		}
		res.PerProto[p] += n
	}
	no := int(rd.u32())
	for i := 0; i < no; i++ {
		id := graph.NodeID(rd.i32())
		raw := rd.take(wire.BodyWireSize)
		if rd.bad {
			break
		}
		if res.Outputs == nil {
			res.Outputs = make(map[graph.NodeID]any)
		}
		if _, dup := res.Outputs[id]; dup {
			return fmt.Errorf("shard: node %d reported an output from two shards", id)
		}
		res.Outputs[id] = outval.DecodeSlot(wire.DecodeBody(raw), nil)
	}
	nt := int(rd.u32())
	var tr []async.TraceEntry
	if nt > 0 {
		tr = make([]async.TraceEntry, 0, nt)
	}
	for i := 0; i < nt; i++ {
		te := async.TraceEntry{
			T:    rd.f64(),
			Seq:  rd.u64(),
			From: graph.NodeID(rd.i32()),
			To:   graph.NodeID(rd.i32()),
		}
		te.Msg.Proto = async.Proto(rd.i32())
		te.Msg.Stage = int(rd.i32())
		raw := rd.take(wire.BodyWireSize)
		if rd.bad {
			break
		}
		te.Msg.Body = wire.DecodeBody(raw)
		te.Kind = async.TraceKind(rd.u8())
		tr = append(tr, te)
	}
	if c.cfg.KeepTrace {
		*traces = append(*traces, tr)
	}
	return rd.err("RESULT")
}

// mergeTraces k-way merges per-shard delivery traces by (T, Seq); shards
// record their local deliveries in that order already.
func mergeTraces(traces [][]async.TraceEntry) []async.TraceEntry {
	total := 0
	for _, tr := range traces {
		total += len(tr)
	}
	out := make([]async.TraceEntry, 0, total)
	cur := make([]int, len(traces))
	for {
		best := -1
		for i, tr := range traces {
			if cur[i] == len(tr) {
				continue
			}
			if best < 0 || traceEntryLess(&tr[cur[i]], &traces[best][cur[best]]) {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, traces[best][cur[best]])
		cur[best]++
	}
}

func traceEntryLess(a, b *async.TraceEntry) bool {
	if a.T != b.T {
		return a.T < b.T
	}
	return a.Seq < b.Seq
}
