package shard

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
)

// BenchmarkShardSweep measures the multi-process engine across shard
// counts. The default graph is a small smoke so `go test -bench` stays
// cheap; the committed BENCH_7 sweep sets
//
//	SHARD_BENCH_SPEC=grid3d:100x100x100 SHARD_BENCH_SHARDS=1,2,4,8
//
// (the million-node smoke graph; see `make bench-shard`). Reported
// metrics break each
// run's wall clock into the coordinator's ledger: worker execution
// (critical path), barrier/communication wait, and merge time, all
// per-window, plus startup (process spawn + graph generation).
func BenchmarkShardSweep(b *testing.B) {
	spec := os.Getenv("SHARD_BENCH_SPEC")
	if spec == "" {
		spec = "grid3d:16x16x16"
	}
	shards := []int{1, 2}
	if s := os.Getenv("SHARD_BENCH_SHARDS"); s != "" {
		shards = shards[:0]
		for _, f := range strings.Split(s, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				b.Fatalf("SHARD_BENCH_SHARDS: %v", err)
			}
			shards = append(shards, k)
		}
	}
	for _, k := range shards {
		b.Run(fmt.Sprintf("spec=%s/shards=%d", spec, k), func(b *testing.B) {
			var last *Report
			for i := 0; i < b.N; i++ {
				rep, err := Run(Config{
					GraphSpec: spec,
					Workload:  "flood",
					// fixed:1 gives full-unit lookahead (~300 windows on the
					// million-node grid); random's 2^-20 MinDelay would
					// degenerate every window to a handful of events and
					// measure only barrier overhead.
					Adversary: "fixed:1",
					Shards:    k,
					Launch:    LaunchProcess,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = rep
			}
			st := last.Stats
			b.ReportMetric(float64(st.TotalEvents)*float64(b.N)/(b.Elapsed().Seconds()*1e6), "events/µs")
			b.ReportMetric(float64(st.Windows), "windows")
			if st.Windows > 0 {
				b.ReportMetric(float64(st.WorkerNs)/float64(st.Windows), "workerNs/win")
				b.ReportMetric(float64(st.CommNs)/float64(st.Windows), "commNs/win")
				b.ReportMetric(float64(st.MergeNs)/float64(st.Windows), "mergeNs/win")
			}
			b.ReportMetric(float64(st.StartupNs)/1e6, "startupMs")
			b.ReportMetric(float64(st.Frames), "frames")
		})
	}
}
