// Incremental cover repair. A node fault invalidates only the clusters
// whose d-expansion BFS regions the fault can have touched; every other
// cluster of the pre-fault cover is provably byte-identical in a
// from-scratch masked rebuild and is reused as-is.
//
// The dirty certificate: a cluster's masked expansion explores exactly
// the nodes within masked distance D of its seed set, and examines no
// edge incident to any node farther than D. One bounded multi-source BFS
// from the faulted nodes — over the *pre-fault* alive mask, to depth D —
// therefore reaches a cluster's seed iff the fault lies inside that
// cluster's explored region (including the case where the fault *is* a
// seed, at distance 0). Unreached clusters keep their seed set, their
// BFS frontier, and their spliced tree unchanged; reached clusters are
// re-expanded under the new mask by the same code path a from-scratch
// build runs, so golden equality holds by construction.
package cover

import (
	"repro/internal/decomp"
	"repro/internal/graph"
)

// RepairStats accounts one Repair call.
type RepairStats struct {
	// Faulted counts the newly-dead nodes actually applied (nodes that
	// were already dead, and duplicates, are skipped).
	Faulted int
	// Dirty counts clusters whose explored region touched a fault
	// (Dirty = Rebuilt + Dropped).
	Dirty int
	// Reused counts clean clusters carried over without rebuilding.
	Reused int
	// Rebuilt counts dirty clusters re-expanded under the new mask.
	Rebuilt int
	// Dropped counts clusters whose last alive seed died.
	Dropped int
}

// Repair returns the cover of base's node set with the given nodes
// additionally faulted, reusing every cluster whose region no fault
// touched. The result equals BuildMasked over the combined mask; base is
// not mutated. When every listed node is already dead, base itself is
// returned.
func Repair(base *Cover, faulted []graph.NodeID) (*Cover, RepairStats) {
	g := base.g
	if g == nil {
		panic("cover: Repair on a cover without retained build state")
	}
	var st RepairStats
	newAlive := make([]bool, g.N())
	if base.alive == nil {
		for i := range newAlive {
			newAlive[i] = true
		}
	} else {
		copy(newAlive, base.alive)
	}
	eff := make([]graph.NodeID, 0, len(faulted))
	for _, v := range faulted {
		if newAlive[v] {
			newAlive[v] = false
			eff = append(eff, v)
		}
	}
	st.Faulted = len(eff)
	if len(eff) == 0 {
		st.Reused = len(base.Clusters)
		return base, st
	}

	// Dirty-region sweep: one BFS over the pre-fault mask. The faulted
	// nodes themselves were alive under it, so they may seed and relay.
	dirty := decomp.NewBFSScratch(g)
	dirty.Run(eff, base.D, base.alive)

	out := &Cover{D: base.D, g: g, dec: base.dec, inS: base.inS, alive: newAlive}
	ex := newExpander(g, base.D)
	cursor := 0
	for _, colorClusters := range base.dec.Colors {
		for _, dc := range colorClusters {
			var old *Cluster
			if cursor < len(base.Clusters) && base.Clusters[cursor].base == dc {
				old = base.Clusters[cursor]
				cursor++
			}
			if old == nil {
				// Already dropped in base; masks only shrink, so it
				// stays dropped.
				continue
			}
			clean := true
			for _, v := range old.Seeds {
				if dirty.Visited(v) {
					clean = false
					break
				}
			}
			if clean {
				st.Reused++
				cp := *old
				cp.ID = ClusterID(len(out.Clusters))
				out.Clusters = append(out.Clusters, &cp)
				continue
			}
			st.Dirty++
			seeds := aliveSeeds(old.Seeds, newAlive)
			if len(seeds) == 0 {
				st.Dropped++
				continue
			}
			cl := ex.expand(dc, base.inS, newAlive, seeds)
			cl.ID = ClusterID(len(out.Clusters))
			out.Clusters = append(out.Clusters, cl)
			st.Rebuilt++
		}
	}
	out.reindex()
	return out, st
}

// RepairLayered repairs every level of a layered cover (see Repair).
func RepairLayered(base *Layered, faulted []graph.NodeID) (*Layered, []RepairStats) {
	out := &Layered{Levels: make([]*Cover, len(base.Levels))}
	stats := make([]RepairStats, len(base.Levels))
	for j, cov := range base.Levels {
		out.Levels[j], stats[j] = Repair(cov, faulted)
	}
	return out, stats
}
