// Package syncrun executes event-driven synchronous algorithms (§5.1,
// Appendix B of the paper) in lockstep rounds and measures their time
// complexity T(A) (rounds until every node has output) and message
// complexity M(A) (total messages).
//
// The event-driven interpretation is enforced structurally: a node's
// handler runs in round p only when the node received a message that round
// or sent one in round p-1 — it cannot wake up because "r rounds passed".
// Handlers do receive the current pulse number p; this is exactly the
// information the synchronizer of §5 reconstructs (it proves
// pulse(v,p) = p), so providing it changes nothing about synchronizability
// while making algorithms like BFS natural to write.
//
// The engine is dense and allocation-free at steady state: message bodies
// are wire.Body values (no interface boxing), each pulse's deliveries live
// in one flat pool threaded into per-receiver chains by epoch-stamped
// head/tail cursors (12 bytes of per-node state per buffer instead of a
// per-node slice), the activation set is a bitmap iterated in node-index
// order, and the CONGEST one-message-per-link-per-pulse guard is a flat
// pulse-stamp array indexed by the graph's dense LinkID. Because active
// nodes step in ascending index order and each sends at most once per
// neighbor, every receiver's chain is sorted by sender by construction.
//
// Runner supports three execution modes. Single steps the activation set
// on one goroutine. Multi shards it across a worker pool; each worker
// buffers its sends and outputs, and the buffers merge in shard order
// after a barrier, which reproduces Single's send order exactly — Result
// (outputs, T, M, trace) is byte-identical across modes. Auto picks Multi
// for graphs large enough to amortize the pool.
package syncrun

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/execpolicy"
	"repro/internal/graph"
	"repro/internal/outval"
	"repro/internal/wire"
)

// Incoming is one received message: the sender and the payload, both plain
// values — delivery never boxes. The recvd batch handed to Pulse is
// engine-owned scratch, valid only during the call (its backing array is
// reused for the next node's batch, and a Body segment is recycled when
// the receiving Pulse returns); copy entries out inside Pulse to retain
// them.
type Incoming struct {
	From graph.NodeID
	Body wire.Body
}

// API is the surface an event-driven synchronous algorithm sees. The
// lockstep Runner in this package implements it with *Node; the
// synchronizer of internal/core implements it again so the identical
// algorithm code runs asynchronously.
type API interface {
	// ID returns this node's identifier.
	ID() graph.NodeID
	// Neighbors returns adjacent nodes in ascending order.
	Neighbors() []graph.Neighbor
	// Degree returns the node degree.
	Degree() int
	// Send transmits body to a neighbor; it arrives next pulse. At most
	// one message per neighbor per pulse (CONGEST link capacity). Segment
	// ownership transfers to the engine at Send (see package wire).
	Send(to graph.NodeID, body wire.Body)
	// Arena returns the run's segment arena for variable-length payloads.
	Arena() *wire.Arena
	// Output records this node's final output. Primitive values (int,
	// int64, bool, graph.NodeID) are stored as typed wire.Body entries
	// without boxing; anything else falls back to a boxed escape slot.
	Output(v any)
	// OutputBody records this node's final output as a typed wire.Body
	// (non-zero Kind; outval decodes it at the Result boundary) — the
	// allocation-free path for struct results.
	OutputBody(b wire.Body)
	// HasOutput reports whether output was already produced.
	HasOutput() bool
}

// Handler is an event-driven synchronous node program. One Handler
// instance exists per node and owns that node's state. Handlers on
// different nodes must not share mutable state (shared read-only data is
// fine): under ModeMulti — which ModeAuto selects for large graphs —
// different nodes' Pulse calls run concurrently on a worker pool.
type Handler interface {
	// Init runs at pulse 0. Initiator nodes send their first messages here.
	Init(n API)
	// Pulse runs at pulse p > 0 if this node received messages sent at
	// pulse p-1 (recvd, sorted by sender) or itself sent at pulse p-1.
	// It may send messages (which then carry pulse p). recvd is only
	// valid during the call (see Incoming).
	Pulse(n API, p int, recvd []Incoming)
}

// ExecutionMode selects how the Runner steps each pulse's activation set.
// Results are byte-identical across modes; the choice is purely about
// wall-clock performance.
type ExecutionMode int

const (
	// ModeAuto picks ModeMulti when the graph is large enough to amortize
	// the worker pool and more than one CPU is available, else ModeSingle.
	ModeAuto ExecutionMode = iota
	// ModeSingle steps active nodes sequentially on the calling goroutine.
	ModeSingle
	// ModeMulti shards the activation set across a worker pool with
	// per-worker send buffers merged deterministically.
	ModeMulti
)

func (m ExecutionMode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeSingle:
		return "single"
	case ModeMulti:
		return "multi"
	}
	return fmt.Sprintf("ExecutionMode(%d)", int(m))
}

// Node is the Runner's API implementation. It is 16 bytes: effects route
// through a sink index — 0 applies immediately to the Runner, k+1 buffers
// in worker sink k — resolved per call instead of held as a pointer.
type Node struct {
	id      graph.NodeID
	sinkIdx int32 // set per step; 0 = direct, k+1 = workerSinks[k]
	run     *Runner
}

var _ API = (*Node)(nil)

// ID returns the node id.
func (n *Node) ID() graph.NodeID { return n.id }

// Neighbors returns adjacent nodes in ascending order.
func (n *Node) Neighbors() []graph.Neighbor { return n.run.g.Neighbors(n.id) }

// Degree returns the node degree.
func (n *Node) Degree() int { return n.run.g.Degree(n.id) }

// Send transmits body to neighbor `to`; it arrives next pulse. At most one
// message per neighbor per pulse (CONGEST-style link capacity; the async
// ack discipline enforces the same limit, so algorithms written against
// this runner synchronize without surprises).
func (n *Node) Send(to graph.NodeID, body wire.Body) {
	r := n.run
	l := r.g.LinkBetween(n.id, to)
	if l < 0 {
		panic(fmt.Sprintf("syncrun: node %d sending to non-neighbor %d", n.id, to))
	}
	stamp := int32(r.pulse) + 1
	if r.sentAt[l] == stamp {
		panic(fmt.Sprintf("syncrun: node %d sent twice to %d in one pulse", n.id, to))
	}
	r.sentAt[l] = stamp
	if n.sinkIdx == 0 {
		r.record(n.id, to, body)
		return
	}
	sink := &r.workerSinks[n.sinkIdx-1]
	sink.sends = append(sink.sends, pendingSend{from: n.id, to: to, body: body})
}

// Output records this node's final output.
func (n *Node) Output(v any) {
	if b, ok := outval.Encode(v); ok {
		n.OutputBody(b)
		return
	}
	r := n.run
	if outB := r.loadedOutBodies(); outB != nil {
		outB[n.id] = wire.Body{}
	}
	r.outAnys()[n.id] = v
	n.noteOutput()
}

// OutputBody records this node's final output as a typed wire.Body.
func (n *Node) OutputBody(b wire.Body) {
	if b.Kind == 0 {
		panic(fmt.Sprintf("syncrun: node %d output a Body with zero Kind", n.id))
	}
	r := n.run
	r.outBodies()[n.id] = b
	if outA := r.loadedOutAnys(); outA != nil {
		outA[n.id] = nil
	}
	n.noteOutput()
}

// noteOutput updates the first-output bookkeeping (T clock, activation of
// the worker sink's new-output flag).
func (n *Node) noteOutput() {
	r := n.run
	had := r.hasOut[n.id]
	r.hasOut[n.id] = true
	if had {
		return
	}
	if n.sinkIdx == 0 {
		if r.pulse > r.lastOut {
			r.lastOut = r.pulse
		}
		return
	}
	r.workerSinks[n.sinkIdx-1].newOut = true
}

// HasOutput reports whether this node already produced output.
func (n *Node) HasOutput() bool { return n.run.hasOut[n.id] }

// Arena returns the run's segment arena. Sent segments are recycled after
// the receiving pulse's batch is delivered; the arena is safe for the
// Multi-mode worker pool.
func (n *Node) Arena() *wire.Arena { return &n.run.arena }

// TraceEntry records one message for trace-equivalence checking against the
// synchronized asynchronous execution (Theorem 5.2).
type TraceEntry struct {
	Pulse    int
	From, To graph.NodeID
	Body     wire.Body
}

// Result summarizes a synchronous run.
type Result struct {
	// T is the paper's T(A): rounds until the last node outputs.
	T int
	// Rounds is the round at which the network went quiet.
	Rounds int
	// M is the paper's M(A): total messages sent.
	M uint64
	// Outputs maps node -> decoded output. With WithDenseOutputs it
	// carries only the rare non-encodable values; everything else is in
	// OutBodies.
	Outputs map[graph.NodeID]any
	// OutBodies/OutSet are the dense typed outputs, populated only with
	// WithDenseOutputs: OutSet[v] reports whether node v output,
	// OutBodies[v] is its outval-encoded value.
	OutBodies []wire.Body
	OutSet    []bool
	// Trace lists every message with its pulse (in deterministic order).
	Trace []TraceEntry
}

// pendingSend is one buffered worker-mode send, applied at merge time.
type pendingSend struct {
	from, to graph.NodeID
	body     wire.Body
}

// sendSink is one worker's effect buffer: sends accumulate in call order
// and newOut records whether any node produced its first output, both
// drained deterministically after the pulse barrier. scratch is the
// worker's reusable batch-materialization buffer (serial stepping uses the
// Runner's own scratch instead).
type sendSink struct {
	sends   []pendingSend
	newOut  bool
	scratch []Incoming
}

// pendMsg is one pending delivery in a pulse buffer's flat pool, threaded
// into its receiver's chain by pool index (-1 terminates).
type pendMsg struct {
	in   Incoming
	next int32
}

// pulseBuf is one side of the double-buffered pulse state. The pulse's
// deliveries sit in one flat pool (pend, appended in serial application
// order) threaded into per-receiver chains by head/tail cursors; ep stamps
// which cursors belong to the buffer's current fill epoch, so rearming the
// buffer is a counter bump plus a pool truncation instead of clearing n
// per-node slices. Chains materialize already sorted by sender: senders
// apply in ascending node order and each sends at most once per receiver.
type pulseBuf struct {
	pend   []pendMsg
	head   []int32
	tail   []int32
	ep     []uint32
	epoch  uint32
	bits   []uint64
	active int // number of set bits
}

func newPulseBuf(n int, epoch uint32) pulseBuf {
	return pulseBuf{
		head:  make([]int32, n),
		tail:  make([]int32, n),
		ep:    make([]uint32, n),
		epoch: epoch,
		bits:  make([]uint64, (n+63)/64),
	}
}

func (b *pulseBuf) activate(v graph.NodeID) {
	w, m := uint(v)>>6, uint64(1)<<(uint(v)&63)
	if b.bits[w]&m == 0 {
		b.bits[w] |= m
		b.active++
	}
}

// deliver appends one message to the pool and splices it onto the
// receiver's chain.
func (b *pulseBuf) deliver(to graph.NodeID, in Incoming) {
	idx := int32(len(b.pend))
	b.pend = append(b.pend, pendMsg{in: in, next: -1})
	if b.ep[to] == b.epoch {
		b.pend[b.tail[to]].next = idx
	} else {
		b.ep[to] = b.epoch
		b.head[to] = idx
	}
	b.tail[to] = idx
}

// batch materializes node to's chain into scratch (reused across calls;
// the returned slice aliases it). Nodes active only because they sent get
// an empty batch: their cursor epoch never reached this fill epoch.
func (b *pulseBuf) batch(to graph.NodeID, scratch []Incoming) []Incoming {
	scratch = scratch[:0]
	if b.ep[to] != b.epoch {
		return scratch
	}
	for i := b.head[to]; i >= 0; i = b.pend[i].next {
		scratch = append(scratch, b.pend[i].in)
	}
	return scratch
}

// refill rearms the buffer as the next pulse's fill target: the pool
// empties (capacity kept) and the epoch bump invalidates every node's
// cursors at once. pendMsg holds no pointers, so the retained capacity
// pins nothing for the GC.
func (b *pulseBuf) refill() {
	b.pend = b.pend[:0]
	if b.epoch == math.MaxUint32 {
		panic("syncrun: pulse epoch counter overflow")
	}
	b.epoch++
}

// Runner executes one synchronous algorithm on one graph.
type Runner struct {
	g        *graph.Graph
	handlers []Handler
	nodes    []Node

	mode        ExecutionMode
	workers     int
	minParallel int

	pulse int
	cur   pulseBuf // being processed this pulse
	nxt   pulseBuf // being filled for next pulse

	// started marks that Init ran (or was skipped on a resumed run); done
	// marks quiescence; resumed marks state loaded from a snapshot, whose
	// continuation skips Init (see snap.go).
	started bool
	done    bool
	resumed bool

	// sentAt is the CONGEST guard: per directed link, the stamp
	// (pulse+1) of the last pulse a message was sent on it.
	sentAt []int32

	// Outputs: typed bodies (Kind != 0) with a boxed escape hatch for
	// values outval cannot encode (body zero, value in the any slab).
	// Both value slabs are lazy — allocated on the first output of the
	// respective kind, published via atomic pointer so concurrent worker
	// Pulses agree on the slab before writing their own (disjoint) slots.
	// Only the 1-byte hasOut column is eager.
	outBodyP  atomic.Pointer[[]wire.Body]
	outAnyP   atomic.Pointer[[]any]
	outMu     sync.Mutex
	hasOut    []bool
	denseOut  bool
	lastOut   int
	msgs      uint64
	trace     []TraceEntry
	maxRounds int
	keepTrace bool

	// scratch is the serial-mode batch-materialization buffer (each
	// worker sink carries its own).
	scratch []Incoming

	// Multi-mode scratch, allocated on first parallel pulse.
	activeIDs    []graph.NodeID
	workerSinks  []sendSink
	workerPanics []any

	// arena backs Body.Seg segments; delivered segments return to it after
	// the receiving pulse's batch is processed.
	arena wire.Arena
}

// New builds a Runner; mk creates each node's handler. The graph is
// finalized if it was not already (the dense link index requires it).
func New(g *graph.Graph, mk func(id graph.NodeID) Handler) *Runner {
	g.Finalize()
	r := &Runner{
		g:        g,
		handlers: make([]Handler, g.N()),
		nodes:    make([]Node, g.N()),
		// cur's epoch trails nxt's by one; each refill bumps past every
		// stamp the buffer has ever written, so stale cursors never match.
		cur:         newPulseBuf(g.N(), 0),
		nxt:         newPulseBuf(g.N(), 1),
		sentAt:      make([]int32, g.Links()),
		hasOut:      make([]bool, g.N()),
		maxRounds:   1 << 22,
		workers:     execpolicy.DefaultWorkers(),
		minParallel: defaultMinParallel,
	}
	for i := 0; i < g.N(); i++ {
		id := graph.NodeID(i)
		r.nodes[i] = Node{id: id, run: r}
		r.handlers[i] = mk(id)
	}
	return r
}

// defaultMinParallel is the smallest activation set Multi mode fans out;
// smaller sets step inline (results are identical either way).
const defaultMinParallel = 128

// KeepTrace enables message-trace recording (used by equivalence tests).
func (r *Runner) KeepTrace() *Runner { r.keepTrace = true; return r }

// WithDenseOutputs makes Run return outputs as the dense OutBodies/OutSet
// pair instead of materializing the Outputs map — O(1) allocations at the
// finish line instead of one interface box per node. Callers decode with
// outval.Decode; non-encodable legacy outputs still surface in the map.
func (r *Runner) WithDenseOutputs() *Runner { r.denseOut = true; return r }

// WithMode selects the execution mode (default ModeAuto).
func (r *Runner) WithMode(m ExecutionMode) *Runner { r.mode = m; return r }

// WithWorkers caps the Multi-mode worker pool (default GOMAXPROCS, capped
// by execpolicy.MaxWorkers). ModeAuto additionally clamps the pool to
// GOMAXPROCS; a forced ModeMulti keeps an oversubscribed count (tests
// force several workers on 1 CPU to exercise the concurrent path).
func (r *Runner) WithWorkers(k int) *Runner {
	execpolicy.ValidateWorkers("syncrun", k)
	r.workers = k
	return r
}

// WithMinParallel sets the smallest activation set Multi mode fans out to
// the pool (default 128); smaller sets step inline. Tests and benchmarks
// lower it to force the parallel path on small graphs — results are
// byte-identical regardless.
func (r *Runner) WithMinParallel(k int) *Runner {
	if k < 1 {
		panic(fmt.Sprintf("syncrun: parallel threshold %d < 1", k))
	}
	r.minParallel = k
	return r
}

// SetMaxRounds caps the number of rounds; exceeding it panics.
func (r *Runner) SetMaxRounds(limit int) { r.maxRounds = limit }

// Handler returns node v's handler for post-run inspection.
func (r *Runner) Handler(v graph.NodeID) Handler { return r.handlers[v] }

// outBodies returns the typed-output slab, allocating and publishing it on
// first use. Workers write only their own nodes' slots; the atomic pointer
// publication orders the allocation before any cross-worker read.
func (r *Runner) outBodies() []wire.Body {
	if p := r.outBodyP.Load(); p != nil {
		return *p
	}
	r.outMu.Lock()
	defer r.outMu.Unlock()
	if p := r.outBodyP.Load(); p != nil {
		return *p
	}
	sl := make([]wire.Body, r.g.N())
	r.outBodyP.Store(&sl)
	return sl
}

// outAnys is outBodies' counterpart for the boxed escape slab.
func (r *Runner) outAnys() []any {
	if p := r.outAnyP.Load(); p != nil {
		return *p
	}
	r.outMu.Lock()
	defer r.outMu.Unlock()
	if p := r.outAnyP.Load(); p != nil {
		return *p
	}
	sl := make([]any, r.g.N())
	r.outAnyP.Store(&sl)
	return sl
}

// loadedOutBodies returns the typed-output slab or nil if no typed output
// has ever been recorded (readers treat nil as all-zero).
func (r *Runner) loadedOutBodies() []wire.Body {
	if p := r.outBodyP.Load(); p != nil {
		return *p
	}
	return nil
}

// loadedOutAnys is loadedOutBodies' counterpart for the boxed slab.
func (r *Runner) loadedOutAnys() []any {
	if p := r.outAnyP.Load(); p != nil {
		return *p
	}
	return nil
}

// Run executes to quiescence and returns measurements.
func (r *Runner) Run() Result {
	mode := r.start()
	for r.stepPulse(mode) {
	}
	return r.finish()
}

// start resolves the execution mode and runs pulse 0 (Init) on the first
// call — unless the runner resumed from a snapshot, whose pulse 0 already
// happened in the interrupted run.
func (r *Runner) start() ExecutionMode {
	mode := r.mode
	if mode == ModeAuto {
		if execpolicy.LockstepMulti(r.workers, r.g.N()) {
			mode = ModeMulti
		} else {
			mode = ModeSingle
		}
	}
	if !r.started {
		r.started = true
		if !r.resumed {
			// Pulse 0: initiators act; their sends land in nxt.
			for i := range r.handlers {
				r.handlers[i].Init(&r.nodes[i])
			}
		}
	}
	return mode
}

// stepPulse advances the clock and executes one pulse, reporting false
// once the network is quiet (the clock still advances past the final
// pulse, preserving Rounds = pulse-1).
func (r *Runner) stepPulse(mode ExecutionMode) bool {
	if r.done {
		return false
	}
	r.pulse++
	if r.pulse > r.maxRounds {
		panic(fmt.Sprintf("syncrun: exceeded %d rounds", r.maxRounds))
	}
	if r.nxt.active == 0 {
		r.done = true
		return false
	}
	r.cur, r.nxt = r.nxt, r.cur
	r.nxt.refill()
	if mode == ModeMulti && r.cur.active >= r.minParallel && r.workers > 1 {
		r.stepParallel()
	} else {
		r.stepSerial()
	}
	return true
}

// finish materializes the run's Result.
func (r *Runner) finish() Result {
	res := Result{
		T:      r.lastOut,
		Rounds: r.pulse - 1,
		M:      r.msgs,
		Trace:  r.trace,
	}
	outB, outA := r.loadedOutBodies(), r.loadedOutAnys()
	if r.denseOut {
		if outB == nil {
			outB = make([]wire.Body, r.g.N())
		}
		res.OutBodies = outB
		res.OutSet = r.hasOut
		for i, has := range r.hasOut {
			if has && outB[i].Kind == 0 {
				if res.Outputs == nil {
					res.Outputs = make(map[graph.NodeID]any)
				}
				var v any
				if outA != nil {
					v = outA[i]
				}
				res.Outputs[graph.NodeID(i)] = v
			}
		}
		return res
	}
	outputs := make(map[graph.NodeID]any)
	for i, has := range r.hasOut {
		if has {
			var b wire.Body
			if outB != nil {
				b = outB[i]
			}
			var v any
			if outA != nil {
				v = outA[i]
			}
			outputs[graph.NodeID(i)] = outval.DecodeSlot(b, v)
		}
	}
	res.Outputs = outputs
	return res
}

// stepSerial runs one pulse on the calling goroutine, iterating active
// nodes in index order straight off the bitmap.
func (r *Runner) stepSerial() {
	for w, word := range r.cur.bits {
		if word == 0 {
			continue
		}
		r.cur.bits[w] = 0
		base := w << 6
		for word != 0 {
			v := graph.NodeID(base + bits.TrailingZeros64(word))
			word &= word - 1
			r.stepNode(v, 0)
		}
	}
	r.cur.active = 0
}

// stepNode materializes node v's batch into its sink's scratch buffer,
// delivers it, and recycles the batch's segments.
func (r *Runner) stepNode(v graph.NodeID, sinkIdx int32) {
	scratchP := &r.scratch
	if sinkIdx > 0 {
		scratchP = &r.workerSinks[sinkIdx-1].scratch
	}
	batch := r.cur.batch(v, *scratchP)
	*scratchP = batch
	n := &r.nodes[v]
	n.sinkIdx = sinkIdx
	r.handlers[v].Pulse(n, r.pulse, batch)
	n.sinkIdx = 0
	for i := range batch {
		r.arena.Release(batch[i].Body.Seg) // the batch was the segment's last use
	}
}

// stepParallel runs one pulse on the worker pool: contiguous shards of the
// (index-ordered) activation set step concurrently, buffering their
// effects; the buffers merge in shard order, reproducing serial order.
func (r *Runner) stepParallel() {
	ids := r.activeIDs[:0]
	for w, word := range r.cur.bits {
		if word == 0 {
			continue
		}
		r.cur.bits[w] = 0
		base := w << 6
		for word != 0 {
			ids = append(ids, graph.NodeID(base+bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	r.activeIDs = ids
	r.cur.active = 0

	w := r.workers
	if w > len(ids) {
		w = len(ids)
	}
	if r.workerSinks == nil || len(r.workerSinks) < w {
		r.workerSinks = make([]sendSink, r.workers)
		r.workerPanics = make([]any, r.workers)
	}
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		lo, hi := k*len(ids)/w, (k+1)*len(ids)/w
		wg.Add(1)
		go func(k int, shard []graph.NodeID) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					r.workerPanics[k] = p
				}
			}()
			for _, v := range shard {
				r.stepNode(v, int32(k)+1)
			}
		}(k, ids[lo:hi])
	}
	wg.Wait()
	for k := 0; k < w; k++ {
		if p := r.workerPanics[k]; p != nil {
			panic(p)
		}
	}
	// Deterministic merge: shards in ascending node order, sends in call
	// order — exactly the serial application order.
	for k := 0; k < w; k++ {
		sink := &r.workerSinks[k]
		for _, ps := range sink.sends {
			r.record(ps.from, ps.to, ps.body)
		}
		if sink.newOut && r.pulse > r.lastOut {
			r.lastOut = r.pulse
		}
		for i := range sink.sends {
			sink.sends[i] = pendingSend{}
		}
		sink.sends = sink.sends[:0]
		sink.newOut = false
	}
}

// record applies one send: deliver into the next pulse's chain pool and
// activate both endpoints.
func (r *Runner) record(from, to graph.NodeID, body wire.Body) {
	r.msgs++
	r.nxt.deliver(to, Incoming{From: from, Body: body})
	r.nxt.activate(to)
	r.nxt.activate(from)
	if r.keepTrace {
		// A seg-carrying trace Body keeps only the handle; its storage is
		// recycled after delivery, so traces of seg traffic are compared
		// by handle, not resolved afterwards.
		r.trace = append(r.trace, TraceEntry{Pulse: r.pulse, From: from, To: to, Body: body})
	}
}
