package shard

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"strconv"
	"time"

	"repro/internal/async"
	"repro/internal/graph"
	"repro/internal/wire"
)

// Worker entry points. A worker process is a re-exec of the coordinator's
// own binary: the coordinator sets EnvSocket/EnvIndex and the child's
// main calls MaybeWorker before anything else. Test binaries hook the
// same pair in TestMain, and cmd/shardsim additionally accepts the
// -shard-worker flag form for debuggability (ps shows what the process
// is).

// EnvSocket names the coordinator's unix socket in a worker's
// environment; its presence is what makes a process a worker.
const EnvSocket = "REPRO_SHARD_SOCKET"

// EnvIndex is the worker's shard index.
const EnvIndex = "REPRO_SHARD_INDEX"

// MaybeWorker turns the current process into a shard worker when the
// environment says so, never returning in that case (the process exits
// when its shard completes). A no-op otherwise.
func MaybeWorker() {
	sock := os.Getenv(EnvSocket)
	if sock == "" {
		return
	}
	idx, err := strconv.Atoi(os.Getenv(EnvIndex))
	if err != nil {
		fmt.Fprintf(os.Stderr, "shard worker: bad %s: %v\n", EnvIndex, err)
		os.Exit(1)
	}
	if err := RunWorker(sock, idx); err != nil {
		fmt.Fprintf(os.Stderr, "shard worker %d: %v\n", idx, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// RunWorker dials the coordinator and serves one shard to completion.
func RunWorker(socket string, idx int) error {
	conn, err := net.Dial("unix", socket)
	if err != nil {
		return err
	}
	defer conn.Close()
	return serveWorker(conn, idx, nil, true)
}

// hello is the coordinator→worker configuration message (JSON: it is
// sent once, so schema clarity beats byte-shaving).
type hello struct {
	GraphSpec string
	Cuts      []graph.NodeID
	Self      int
	Adversary string
	Faults    string
	Workload  string
	Sources   []graph.NodeID
	SegWords  int
	KeepTrace bool
	// Resume announces that a FRAME message follows HELLO: the worker
	// restores its engine from the frame instead of running ShardInit.
	Resume bool
}

// settledHeap is the worker-side twin of the bench probe: heap bytes
// retained after consecutive collections.
func settledHeap() int64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// serveWorker runs the worker side of the window protocol. full, when
// non-nil, is a pre-built whole graph (in-process launch: the
// coordinator's graph is shared read-only instead of re-generated);
// ownProcess enables the settled-heap probes, which are only meaningful
// when this worker is alone on its heap.
func serveWorker(conn net.Conn, idx int, full *graph.Graph, ownProcess bool) error {
	r := bufio.NewReaderSize(conn, 1<<16)
	w := bufio.NewWriterSize(conn, 1<<16)

	if err := writeMsg(w, msgJoin, appendU32(nil, uint32(idx))); err != nil {
		return err
	}
	typ, payload, err := readMsg(r, nil)
	if err != nil {
		return err
	}
	if typ != msgHello {
		return fmt.Errorf("shard: worker expected HELLO, got message type %d", typ)
	}
	var cfg hello
	if err := json.Unmarshal(payload, &cfg); err != nil {
		return fmt.Errorf("shard: bad HELLO: %v", err)
	}
	if cfg.Self != idx {
		return fmt.Errorf("shard: HELLO for shard %d reached worker %d", cfg.Self, idx)
	}

	startNs := time.Now()
	if full == nil {
		full, err = graph.FromSpec(cfg.GraphSpec)
		if err != nil {
			return fmt.Errorf("shard: worker %d: %v", idx, err)
		}
	}
	part := graph.PartitionFromCuts(cfg.Cuts)
	if idx >= part.K() {
		return fmt.Errorf("shard: worker index %d outside %d-way partition", idx, part.K())
	}
	sub := full
	if part.K() > 1 {
		lo, hi := part.Range(idx)
		sub = full.Subrange(lo, hi)
		full = nil // the whole graph was transient scaffolding; let it go
	}
	adv, err := ParseAdversary(cfg.Adversary)
	if err != nil {
		return err
	}
	fs, err := async.ParseFaultSpec(cfg.Faults)
	if err != nil {
		return err
	}
	adv = async.WithFaults(adv, fs)
	mk, err := NewWorkload(cfg.Workload, WorkloadConfig{Sources: cfg.Sources, SegWords: cfg.SegWords})
	if err != nil {
		return err
	}
	graphHeap := int64(0)
	if ownProcess {
		graphHeap = settledHeap()
	}
	sim := async.New(sub, adv, mk)
	if cfg.KeepTrace {
		sim.KeepTrace()
	}
	sim.BeginShard()

	// The window loop. remoteFlags stays aligned with the staged log
	// between flush and grant; out/scratch are reused across windows.
	var (
		out     []byte
		scratch []byte
		seqs    []uint64
		remote  []bool
		inBuf   []byte
	)
	if cfg.Resume {
		typ, frame, ferr := readMsg(r, nil)
		if ferr != nil {
			return ferr
		}
		if typ != msgFrame {
			return fmt.Errorf("shard: worker expected FRAME, got message type %d", typ)
		}
		if rerr := sim.ShardRestoreFrame(frame); rerr != nil {
			return fmt.Errorf("shard: worker %d restore: %v", idx, rerr)
		}
	} else {
		sim.ShardInit()
	}
	// The first flush's exec time covers startup + graph build + Init so
	// the coordinator can report startup separately from steady windows.
	execNs := uint64(time.Since(startNs))
	for {
		// FLUSH: wheel minimum, exec time, then the staged log.
		out = out[:0]
		minT, hasMin := sim.ShardPendingMinT()
		if hasMin {
			out = appendU8(out, 1)
		} else {
			out = appendU8(out, 0)
		}
		out = appendF64(out, minT)
		out = appendU64(out, execNs)
		out = appendU64(out, sim.ShardSteps())
		n := sim.ShardStagedCount()
		out = appendU32(out, uint32(n))
		remote = remote[:0]
		for i := 0; i < n; i++ {
			v := sim.ShardStaged(i)
			isRemote := part.Owner(v.Owner) != idx
			remote = append(remote, isRemote)
			out = appendF64(out, v.TrigT)
			out = appendU64(out, v.TrigSeq)
			out = appendF64(out, v.T)
			out = appendI32(out, int32(v.Owner))
			if isRemote {
				out = appendU8(out, 1)
				scratch = appendEventFrame(scratch[:0], v.Kind, v.Src, v.Dst, v.Msg, sim.Arena())
				out = appendU32(out, uint32(len(scratch)))
				out = append(out, scratch...)
				// The frame now owns the payload; the local segment's
				// lifecycle ends here, exactly where the serial engine's
				// ack-side Release would have been reached remotely.
				sim.Arena().Release(v.Msg.Body.Seg)
			} else {
				out = appendU8(out, 0)
			}
		}
		if err := writeMsg(w, msgFlush, out); err != nil {
			return err
		}

		typ, payload, err := readMsg(r, inBuf)
		if err != nil {
			return err
		}
		inBuf = payload[:0]
		if typ == msgFinish {
			break
		}
		if typ != msgOpen {
			return fmt.Errorf("shard: worker expected OPEN/FINISH, got message type %d", typ)
		}
		rd := reader{b: payload}
		wStart := rd.f64()
		ng := int(rd.u32())
		seqs = seqs[:0]
		for i := 0; i < ng; i++ {
			seqs = append(seqs, rd.u64())
		}
		if rd.bad {
			return rd.err("OPEN")
		}
		sim.ShardGrant(seqs, remote)
		ni := int(rd.u32())
		for i := 0; i < ni; i++ {
			seq := rd.u64()
			t := rd.f64()
			fl := int(rd.u32())
			fb := rd.take(fl)
			if rd.bad {
				return rd.err("OPEN")
			}
			kind, src, dst, m, used, err := decodeEventFrame(fb, sim.Arena())
			if err != nil {
				return err
			}
			if used != fl {
				return fmt.Errorf("shard: inbound frame has %d trailing bytes", fl-used)
			}
			sim.ShardInject(seq, t, kind, src, dst, m)
		}
		snap := rd.u8() != 0
		if err := rd.err("OPEN"); err != nil {
			return err
		}
		if snap {
			// Grants applied, inbound injected: the staged log is empty and
			// every pending event sits in the queue — serialize and ship the
			// engine frame before running the window.
			enc := wire.NewEnc(sim.Arena())
			if serr := sim.ShardSnapshotFrame(enc); serr != nil {
				return serr
			}
			if werr := writeMsg(w, msgSnapFrame, enc.Bytes()); werr != nil {
				return werr
			}
		}
		t0 := time.Now()
		sim.ShardRunWindow(wStart)
		execNs = uint64(time.Since(t0))
	}

	// RESULT: counters, footprint, outputs, trace.
	res := sim.ShardResult()
	engineHeap := int64(0)
	heapMB := int64(0)
	if ownProcess {
		settled := settledHeap()
		engineHeap = settled - graphHeap
		heapMB = (settled + (1 << 20) - 1) >> 20 // round up: a live process is never 0 MB
	}
	out = out[:0]
	out = appendF64(out, res.Time)
	out = appendF64(out, res.QuiesceTime)
	out = appendU64(out, res.Msgs)
	out = appendU64(out, res.Acks)
	out = appendU64(out, res.Dropped)
	out = appendU64(out, res.Retrans)
	out = appendU64(out, res.Undeliverable)
	out = appendU64(out, sim.ShardSteps())
	out = appendU64(out, uint64(sim.Arena().Live()))
	out = appendU32(out, uint32(sub.NLocal()))
	out = appendU32(out, uint32(sub.Links()))
	out = appendU32(out, uint32(len(sub.BoundaryLinks())))
	out = appendU64(out, uint64(sub.Footprint()))
	out = appendU64(out, uint64(engineHeap))
	out = appendU64(out, uint64(heapMB))
	out = appendU32(out, uint32(len(res.PerProto)))
	for _, p := range sortedProtos(res.PerProto) {
		out = appendI32(out, int32(p))
		out = appendU64(out, res.PerProto[p])
	}
	nOut := 0
	mark := len(out)
	out = appendU32(out, 0)
	err = sim.ShardRawOutputs(func(id graph.NodeID, b wire.Body) error {
		out = appendI32(out, int32(id))
		out = wire.AppendBody(out, b)
		nOut++
		return nil
	})
	if err != nil {
		return err
	}
	putU32At(out, mark, uint32(nOut))
	out = appendU32(out, uint32(len(res.Trace)))
	for i := range res.Trace {
		te := &res.Trace[i]
		out = appendF64(out, te.T)
		out = appendU64(out, te.Seq)
		out = appendI32(out, int32(te.From))
		out = appendI32(out, int32(te.To))
		out = appendI32(out, int32(te.Msg.Proto))
		out = appendI32(out, int32(te.Msg.Stage))
		out = wire.AppendBody(out, te.Msg.Body)
		out = appendU8(out, uint8(te.Kind))
	}
	return writeMsg(w, msgResult, out)
}

func putU32At(b []byte, off int, v uint32) {
	b[off] = byte(v)
	b[off+1] = byte(v >> 8)
	b[off+2] = byte(v >> 16)
	b[off+3] = byte(v >> 24)
}

func sortedProtos(pp map[async.Proto]uint64) []async.Proto {
	out := make([]async.Proto, 0, len(pp))
	for p := range pp {
		out = append(out, p)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
