package async

// eventQueue is a bucketed calendar queue specialized for this simulator:
// all delays lie in (0,1], so every pending event's timestamp is within one
// normalized time unit of the clock. The unit is split into cqBuckets
// ticks; a rotating wheel of cqBuckets slots holds the events of the next
// full unit, one tick per slot, and each slot is a small hand-rolled
// binary min-heap ordered by (t, seq). Events beyond the wheel horizon —
// only possible for pathological adversaries that violate the (0,1] delay
// contract before the simulator's own validation fires, or for
// floating-point edge cases at exactly t = now+1 — fall back to a global
// overflow heap and migrate onto the wheel as the clock advances, so the
// queue degrades to the classic binary heap instead of breaking.
//
// Hand-rolled heaps matter here: container/heap's interface signature
// boxes every pushed event into an `any`, one allocation per event. The
// specialized heaps move events by value and allocate only on slice
// growth, which the wheel amortizes away by reusing slot capacity.
//
// Pop order is exactly the seed heap's (t, seq) order: tick(t) is a
// monotone function of t, slots are drained in tick order, and each slot
// orders its events by (t, seq).
type eventQueue struct {
	wheel    [cqBuckets][]event
	overflow []event
	size     int
	onWheel  int
	cur      int64 // current tick; all queued events have tick >= cur
}

// cqBuckets is the wheel resolution (a power of two so the slot index is a
// mask). 256 slots over the unit delay range keeps slots near-singleton
// for diffuse adversaries while costing 4KB of slot headers.
const cqBuckets = 256

func cqTick(t float64) int64 { return int64(t * cqBuckets) }

func (q *eventQueue) push(ev event) {
	q.size++
	k := cqTick(ev.t)
	if k < q.cur {
		// Floating-point underflow of tick vs. the clock's own tick; the
		// event still pops in (t,seq) order from the current slot.
		k = q.cur
	}
	if k >= q.cur+cqBuckets {
		evHeapPush(&q.overflow, ev)
		return
	}
	q.onWheel++
	evHeapPush(&q.wheel[k&(cqBuckets-1)], ev)
}

func (q *eventQueue) empty() bool { return q.size == 0 }

// pop removes and returns the earliest event by (t, seq).
func (q *eventQueue) pop() event {
	if q.size == 0 {
		panic("async: pop from empty event queue")
	}
	ev, _ := q.popBefore(maxEventTime)
	return ev
}

// maxEventTime (2^64) exceeds every reachable event timestamp — the event
// cap bounds runs to ~2^34 time units — so popBefore(maxEventTime) never
// refuses a queued event.
const maxEventTime = float64(1<<63) * 2

// advance moves the clock to the next non-empty slot. The caller must hold
// size > 0. It returns the slot, which is non-empty.
func (q *eventQueue) advance() *[]event {
	for {
		slot := &q.wheel[q.cur&(cqBuckets-1)]
		if len(*slot) > 0 {
			return slot
		}
		if q.onWheel == 0 {
			// Nothing on the wheel: jump straight to the first overflow tick.
			q.cur = cqTick(q.overflow[0].t)
		} else {
			q.cur++
		}
		// Overflow events that entered the horizon move onto the wheel.
		for len(q.overflow) > 0 && cqTick(q.overflow[0].t) < q.cur+cqBuckets {
			ev := evHeapPop(&q.overflow)
			k := cqTick(ev.t)
			if k < q.cur {
				k = q.cur
			}
			q.onWheel++
			evHeapPush(&q.wheel[k&(cqBuckets-1)], ev)
		}
	}
}

// popBefore removes and returns the earliest event by (t, seq) if its
// timestamp is strictly below limit; otherwise it leaves the queue intact
// and reports false. The bounded-lag executor drains each shard's window
// [wStart, wStart+lookahead) with it.
//
// The earliest event is always in the first non-empty slot at or after cur:
// tick(t) is monotone in t, slots hold only events of their own tick (or
// events clamped INTO the then-current slot, which are even earlier), and
// every overflow event's timestamp lies beyond the whole wheel horizon.
func (q *eventQueue) popBefore(limit float64) (event, bool) {
	if q.size == 0 {
		return event{}, false
	}
	slot := q.advance()
	if (*slot)[0].t >= limit {
		return event{}, false
	}
	q.size--
	q.onWheel--
	return evHeapPop(slot), true
}

// minT reports the earliest queued timestamp without removing the event.
// It advances the clock past empty slots exactly as popBefore would, so a
// minT/popBefore pair per window does the slot walk only once.
func (q *eventQueue) minT() (float64, bool) {
	if q.size == 0 {
		return 0, false
	}
	return (*q.advance())[0].t, true
}

// reset empties the queue in place, keeping every slot's and the overflow
// heap's capacity for the next run. Events are pointer-free values, so the
// retained arrays pin nothing.
func (q *eventQueue) reset() {
	for i := range q.wheel {
		q.wheel[i] = q.wheel[i][:0]
	}
	q.overflow = q.overflow[:0]
	q.size = 0
	q.onWheel = 0
	q.cur = 0
}

// forEach visits every queued event in unspecified order (snapshot
// serialization; restore re-pushes, and pop order depends only on the
// events' own (t, seq) keys, not on insertion order).
func (q *eventQueue) forEach(fn func(*event)) {
	for i := range q.wheel {
		for j := range q.wheel[i] {
			fn(&q.wheel[i][j])
		}
	}
	for j := range q.overflow {
		fn(&q.overflow[j])
	}
}

func evLess(a, b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

func evHeapPush(h *[]event, ev event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !evLess(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func evHeapPop(h *[]event) event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	// Zero the vacated slot so the retained backing array does not pin the
	// popped event's Msg body (handlers may drop large payloads).
	s[n] = event{}
	*h = s[:n]
	s = s[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && evLess(s[l], s[least]) {
			least = l
		}
		if r < n && evLess(s[r], s[least]) {
			least = r
		}
		if least == i {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return top
}
