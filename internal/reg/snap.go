package reg

import (
	"sort"

	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/wire"
)

var _ wire.StateCodec = (*Module)(nil)

// SaveState implements wire.StateCodec: every (cluster, session) state in
// sorted key order. Configuration (proto, cover, callbacks, stage map) is
// reconstructed by the module's constructor and stays out of the frame.
func (m *Module) SaveState(e *wire.Enc) {
	keys := make([]key, 0, len(m.states))
	for k := range m.states {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].c != keys[j].c {
			return keys[i].c < keys[j].c
		}
		return keys[i].s < keys[j].s
	})
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		st := m.states[k]
		e.I64(int64(k.c))
		e.Int(k.s)
		e.U8(uint8(st.local))
		e.Bool(st.finished)
		e.Bool(st.pending)
		e.Bool(st.upDirty)
		e.U32(uint32(len(st.invokers)))
		for _, v := range st.invokers {
			e.I32(int32(v))
		}
		marks := make([]graph.NodeID, 0, len(st.childMark))
		for ch := range st.childMark {
			marks = append(marks, ch)
		}
		sort.Slice(marks, func(i, j int) bool { return marks[i] < marks[j] })
		e.U32(uint32(len(marks)))
		for _, ch := range marks {
			e.I32(int32(ch))
			e.U8(uint8(st.childMark[ch]))
		}
	}
}

// LoadState implements wire.StateCodec.
func (m *Module) LoadState(d *wire.Dec) {
	n := int(d.U32())
	m.states = make(map[key]*state, n)
	for i := 0; i < n && !d.Failed(); i++ {
		k := key{c: cover.ClusterID(d.I64()), s: d.Int()}
		st := &state{
			local:    localState(d.U8()),
			finished: d.Bool(),
			pending:  d.Bool(),
			upDirty:  d.Bool(),
		}
		nInv := int(d.U32())
		for j := 0; j < nInv && !d.Failed(); j++ {
			st.invokers = append(st.invokers, graph.NodeID(d.I32()))
		}
		nMarks := int(d.U32())
		st.childMark = make(map[graph.NodeID]edgeMark, nMarks)
		for j := 0; j < nMarks && !d.Failed(); j++ {
			ch := graph.NodeID(d.I32())
			st.childMark[ch] = edgeMark(d.U8())
		}
		if st.local > free {
			d.Fail("reg: state for cluster %d session %d has local state %d", k.c, k.s, st.local)
		}
		if !d.Failed() {
			m.states[k] = st
		}
	}
}
