package main

import "testing"

func TestInferMode(t *testing.T) {
	cases := []struct {
		name   string
		mode   string
		shards int
	}{
		// The exact last-segment rule from the single/multi/spec era: a
		// parent name that mentions a mode must not override the segment.
		{"BenchmarkSimFloodRandomModes/single", "single", 0},
		{"BenchmarkSimFloodRandomModes/multi", "multi", 0},
		{"BenchmarkSimFloodSpec/spec", "spec", 0},
		{"BenchmarkFromSpecGrid3D", "spec", 0},
		{"BenchmarkSimFlood", "default", 0},
		// The sharded runs: a shards=K segment anywhere in the path wins
		// over the "spec" substring that the graph-spec label drags in.
		{"BenchmarkShardSweep/spec=grid3d:100x100x100/shards=1", "shard", 1},
		{"BenchmarkShardSweep/spec=grid3d:100x100x100/shards=8", "shard", 8},
		{"BenchmarkShardSweep/spec=pa:n=1000,m=2,seed=3/shards=2", "shard", 2},
		{"BenchmarkCoordinator/shard", "shard", 0},
		// Malformed counts fall through to the substring rules.
		{"BenchmarkX/shards=zero", "default", 0},
		{"BenchmarkX/shards=-2", "default", 0},
	}
	for _, c := range cases {
		mode, shards := inferMode(c.name)
		if mode != c.mode || shards != c.shards {
			t.Errorf("inferMode(%q) = (%q, %d), want (%q, %d)", c.name, mode, shards, c.mode, c.shards)
		}
	}
}

func TestParseLineShard(t *testing.T) {
	line := "BenchmarkShardSweep/spec=grid3d:100x100x100/shards=4-8  1  1234567 ns/op  12.5 events/µs  300 windows  4500 commNs/win"
	b, ok := parseLine(line)
	if !ok {
		t.Fatal("parseLine rejected a well-formed shard sweep line")
	}
	if b.Name != "BenchmarkShardSweep/spec=grid3d:100x100x100/shards=4" {
		t.Errorf("Name = %q (GOMAXPROCS suffix not stripped?)", b.Name)
	}
	if b.Mode != "shard" || b.Shards != 4 {
		t.Errorf("Mode/Shards = %q/%d, want shard/4", b.Mode, b.Shards)
	}
	if b.Gomaxprocs != 8 {
		t.Errorf("Gomaxprocs = %d, want 8", b.Gomaxprocs)
	}
	if b.NsPerOp != 1234567 {
		t.Errorf("NsPerOp = %v", b.NsPerOp)
	}
	for unit, want := range map[string]float64{"events/µs": 12.5, "windows": 300, "commNs/win": 4500} {
		if got := b.Metrics[unit]; got != want {
			t.Errorf("Metrics[%q] = %v, want %v", unit, got, want)
		}
	}
}
