// Package graph provides the network substrate used throughout the
// reproduction: an undirected graph type with adjacency lists, weighted
// edges, deterministic generators for the topology families exercised in
// the experiments, exact reference algorithms (BFS, multi-source BFS,
// diameter, MST) used as ground truth by the tests, and a union-find.
//
// Finalize compiles the adjacency structure into CSR form: all adjacency
// entries live in one contiguous slice, and every ordered pair of adjacent
// nodes gets a dense LinkID — the entry's index in that slice. Simulation
// engines index per-directed-link state ([]outbox, sequence counters,
// CONGEST stamps) by LinkID instead of hashing (u,v) pairs.
//
// All ids are 32-bit: a graph holds at most MaxNodes nodes and MaxEdges
// edges, so per-link and per-node engine state stays compact at the
// ten-million-node scale. Construction checks the limits explicitly.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a node. Nodes are numbered 0..n-1; the paper's unique
// O(log n)-bit identifiers are the NodeIDs themselves.
type NodeID int32

// EdgeID indexes the edge table (see Edge/Weight accessors).
type EdgeID int32

// LinkID is a dense identifier for one directed link (an ordered pair of
// adjacent nodes). Links are numbered 0..2m-1 in CSR order: node 0's
// out-links first (ascending destination), then node 1's, and so on. Valid
// only after Finalize.
type LinkID int32

// MaxNodes is the largest supported node count (NodeIDs are int32).
const MaxNodes = math.MaxInt32

// MaxEdges is the largest supported edge count: 2m directed links must fit
// in the int32 LinkID space.
const MaxEdges = math.MaxInt32 / 2

// Edge is an undirected edge {U, V} with an optional weight (used by MST
// workloads; weight 0 elsewhere). U < V always holds after normalization.
type Edge struct {
	U, V   NodeID
	Weight int64
}

// Neighbor is one adjacency entry: the node on the other side of Edge,
// plus the dense id of the directed link toward it (set by Finalize).
type Neighbor struct {
	Node NodeID
	Edge EdgeID
	Link LinkID
}

// Graph is an immutable undirected graph. Build one with New and AddEdge,
// then call Finalize; generators return finalized graphs.
//
// Storage is struct-of-arrays: the edge table is two NodeID columns plus a
// weight column that stays nil while every weight is zero, and adjacency
// lives in one flat CSR slice (12 bytes per directed link) addressed by
// int32 offsets. The temporary per-node adjacency lists used during
// construction are released by Finalize.
type Graph struct {
	n     int
	final bool

	// Sub-view window (Subrange): the CSR arrays cover only the nodes
	// [nodeBase, nodeBase+nLocal) and their out-links, with local LinkIDs.
	// Whole graphs have nodeBase == 0 and nLocal == n; the sub flag
	// distinguishes a genuine sub-view from a whole graph (whose nLocal
	// field is simply never set).
	sub      bool
	nodeBase NodeID
	nLocal   int

	// Edge table. weights is nil until the first nonzero weight.
	edgeU, edgeV []NodeID
	weights      []int64

	// Construction-only adjacency lists; nil after Finalize.
	adj [][]Neighbor

	// CSR arrays, built by Finalize. Node v's adjacency row is
	// flat[off[v-nodeBase]:off[v-nodeBase+1]], so the LinkID of adjacency
	// entry i of node v is off[v-nodeBase]+i.
	flat []Neighbor
	off  []int32
	rev  []LinkID // LinkID -> the opposite-direction link
}

// New returns an empty graph on n nodes.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	if n > MaxNodes {
		panic(fmt.Sprintf("graph: node count %d exceeds MaxNodes (%d)", n, MaxNodes))
	}
	return &Graph{n: n, adj: make([][]Neighbor, n)}
}

// N returns the number of nodes. For a Subrange view this is still the
// node count of the underlying whole graph: NodeIDs stay global.
func (g *Graph) N() int { return g.n }

// NLocal returns the number of nodes whose adjacency rows this graph
// holds: N() for a whole graph, hi-lo for a Subrange view.
func (g *Graph) NLocal() int {
	if g.sub {
		return g.nLocal
	}
	return g.n
}

// NodeBase returns the first node id covered by this graph's CSR arrays
// (0 for whole graphs). A Subrange view holds rows for the global nodes
// [NodeBase(), NodeBase()+NLocal()).
func (g *Graph) NodeBase() NodeID { return g.nodeBase }

// Sub reports whether this graph is a Subrange view of a larger graph.
func (g *Graph) Sub() bool { return g.sub }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edgeU) }

// Links returns the number of directed links (2·M). Valid after Finalize.
func (g *Graph) Links() int { return len(g.flat) }

// Final reports whether Finalize has run.
func (g *Graph) Final() bool { return g.final }

// Edge returns edge e.
func (g *Graph) Edge(e EdgeID) Edge {
	return Edge{U: g.edgeU[e], V: g.edgeV[e], Weight: g.Weight(e)}
}

// EdgeU returns the smaller endpoint of edge e.
func (g *Graph) EdgeU(e EdgeID) NodeID { return g.edgeU[e] }

// EdgeV returns the larger endpoint of edge e.
func (g *Graph) EdgeV(e EdgeID) NodeID { return g.edgeV[e] }

// Weight returns the weight of edge e (0 when the graph is unweighted).
func (g *Graph) Weight(e EdgeID) int64 {
	if g.weights == nil {
		return 0
	}
	return g.weights[e]
}

// Weighted reports whether any edge carries a nonzero weight.
func (g *Graph) Weighted() bool { return g.weights != nil }

// AddEdge adds the undirected edge {u, v} with weight w. Self-loops and
// out-of-range endpoints panic: topology construction bugs are programmer
// errors, not runtime conditions. Parallel edges are rejected at Finalize.
func (g *Graph) AddEdge(u, v NodeID, w int64) EdgeID {
	if g.final {
		panic("graph: AddEdge after Finalize")
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	if u < 0 || v < 0 || int(u) >= g.n || int(v) >= g.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.n))
	}
	if len(g.edgeU) >= MaxEdges {
		panic(fmt.Sprintf("graph: edge count exceeds MaxEdges (%d)", MaxEdges))
	}
	if u > v {
		u, v = v, u
	}
	id := EdgeID(len(g.edgeU))
	g.edgeU = append(g.edgeU, u)
	g.edgeV = append(g.edgeV, v)
	g.setWeight(id, w)
	g.adj[u] = append(g.adj[u], Neighbor{Node: v, Edge: id})
	g.adj[v] = append(g.adj[v], Neighbor{Node: u, Edge: id})
	return id
}

// setWeight records w for the just-appended edge id, materializing the
// weight column on the first nonzero weight.
func (g *Graph) setWeight(id EdgeID, w int64) {
	if g.weights == nil {
		if w == 0 {
			return
		}
		g.weights = make([]int64, int(id), cap(g.edgeU))
	}
	g.weights = append(g.weights, w)
}

// Finalize sorts adjacency lists (determinism), checks simplicity, and
// compiles the CSR link index, releasing the construction-time adjacency
// lists. It returns the graph to allow chaining.
func (g *Graph) Finalize() *Graph {
	if g.final {
		return g
	}
	seen := make(map[[2]NodeID]struct{}, len(g.edgeU))
	for e := range g.edgeU {
		key := [2]NodeID{g.edgeU[e], g.edgeV[e]}
		if _, dup := seen[key]; dup {
			panic(fmt.Sprintf("graph: parallel edge {%d,%d}", key[0], key[1]))
		}
		seen[key] = struct{}{}
	}
	for _, nbrs := range g.adj {
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i].Node < nbrs[j].Node })
	}
	// Flatten into CSR form and assign dense LinkIDs.
	links := 2 * len(g.edgeU)
	g.flat = make([]Neighbor, 0, links)
	g.off = make([]int32, g.n+1)
	for v := range g.adj {
		g.off[v] = int32(len(g.flat))
		for _, nb := range g.adj[v] {
			nb.Link = LinkID(len(g.flat))
			g.flat = append(g.flat, nb)
		}
	}
	g.off[g.n] = int32(len(g.flat))
	g.adj = nil
	g.final = true
	// Reverse-link table: the opposite direction of each link, so engines
	// resolve ack/return paths in O(1) with no hashing or search.
	g.rev = make([]LinkID, links)
	for v := 0; v < g.n; v++ {
		for _, nb := range g.flat[g.off[v]:g.off[v+1]] {
			g.rev[nb.Link] = g.LinkBetween(nb.Node, NodeID(v))
		}
	}
	return g
}

// Neighbors returns the adjacency list of v in ascending node order. After
// Finalize each entry carries the directed LinkID v→entry.Node. The
// returned slice must not be mutated.
func (g *Graph) Neighbors(v NodeID) []Neighbor {
	if g.final {
		v -= g.nodeBase
		return g.flat[g.off[v]:g.off[v+1]]
	}
	return g.adj[v]
}

// Degree returns the degree of v.
func (g *Graph) Degree(v NodeID) int {
	if g.final {
		v -= g.nodeBase
		return int(g.off[v+1] - g.off[v])
	}
	return len(g.adj[v])
}

// Other returns the endpoint of edge e that is not v.
func (g *Graph) Other(e EdgeID, v NodeID) NodeID {
	if g.edgeU[e] == v {
		return g.edgeV[e]
	}
	if g.edgeV[e] == v {
		return g.edgeU[e]
	}
	panic(fmt.Sprintf("graph: node %d not on edge %d", v, e))
}

// NeighborIndex returns the position of v in u's adjacency list, or -1 if
// {u,v} is not an edge. O(log degree) after Finalize.
func (g *Graph) NeighborIndex(u, v NodeID) int {
	nbrs := g.Neighbors(u)
	if !g.final {
		for i, nb := range nbrs {
			if nb.Node == v {
				return i
			}
		}
		return -1
	}
	lo, hi := 0, len(nbrs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if nbrs[mid].Node < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(nbrs) && nbrs[lo].Node == v {
		return lo
	}
	return -1
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	return g.NeighborIndex(u, v) >= 0
}

// EdgeBetween returns the edge id joining u and v, or -1.
func (g *Graph) EdgeBetween(u, v NodeID) EdgeID {
	i := g.NeighborIndex(u, v)
	if i < 0 {
		return -1
	}
	return g.Neighbors(u)[i].Edge
}

// LinkBetween returns the dense id of the directed link u→v, or -1 if
// {u,v} is not an edge. O(log degree); hot paths that already hold a
// Neighbor entry should use its Link field instead. Requires Finalize.
func (g *Graph) LinkBetween(u, v NodeID) LinkID {
	if !g.final {
		panic("graph: LinkBetween before Finalize")
	}
	i := g.NeighborIndex(u, v)
	if i < 0 {
		return -1
	}
	return LinkID(int(g.off[u-g.nodeBase]) + i)
}

// LinkOffset returns the first LinkID out of v; v's out-links are the
// contiguous range [LinkOffset(v), LinkOffset(v)+Degree(v)). Requires
// Finalize.
func (g *Graph) LinkOffset(v NodeID) LinkID {
	if !g.final {
		panic("graph: LinkOffset before Finalize")
	}
	return LinkID(g.off[v-g.nodeBase])
}

// LinkSrc returns the source node of directed link l: the unique v with
// off[v] <= l < off[v+1], found by binary search (the graph does not
// retain a 2m-entry source column; engines carry src/dst in their events
// and only cold paths resolve a bare LinkID).
func (g *Graph) LinkSrc(l LinkID) NodeID {
	if !g.final {
		panic("graph: LinkSrc before Finalize")
	}
	lo, hi := 0, g.NLocal()-1
	for lo < hi {
		mid := int(uint(lo+hi+1) >> 1)
		if g.off[mid] <= int32(l) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return NodeID(lo) + g.nodeBase
}

// LinkDst returns the destination node of directed link l.
func (g *Graph) LinkDst(l LinkID) NodeID { return g.flat[l].Node }

// ReverseLink returns the link of the opposite direction of l (the ack /
// return path). Requires Finalize.
func (g *Graph) ReverseLink(l LinkID) LinkID {
	if !g.final {
		panic("graph: ReverseLink before Finalize")
	}
	return g.rev[l]
}

// Connected reports whether the graph is connected (true for n <= 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}
