package syncrun

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/wire"
)

// benchBFS is the minimal event-driven BFS used to exercise one lockstep
// pulse: every node forwards the first join it receives, so every directed
// edge carries exactly one message over the run.
type benchBFS struct{ dist int }

func (h *benchBFS) Init(n API) {
	h.dist = -1
	if n.ID() == 0 {
		h.dist = 0
		n.Output(0)
		for _, nb := range n.Neighbors() {
			n.Send(nb.Node, wire.Body{Kind: 1, A: int64(n.ID())})
		}
	}
}

func (h *benchBFS) Pulse(n API, p int, recvd []Incoming) {
	if h.dist >= 0 || len(recvd) == 0 {
		return
	}
	h.dist = p
	n.Output(p)
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, wire.Body{Kind: 1, A: int64(n.ID())})
	}
}

func benchLockstep(b *testing.B, g *graph.Graph, cfg func(*Runner)) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := New(g, func(graph.NodeID) Handler { return &benchBFS{} })
		if cfg != nil {
			cfg(r)
		}
		res := r.Run()
		if res.M != uint64(2*g.M()) {
			b.Fatalf("M = %d, want %d", res.M, 2*g.M())
		}
	}
	b.ReportMetric(float64(2*g.M()), "msgs/op")
}

// BenchmarkLockstepPulse measures the per-pulse path of the lockstep
// runner — activation bookkeeping, inbox delivery, CONGEST guard — via a
// BFS whose pulse count is the grid diameter.
func BenchmarkLockstepPulse(b *testing.B) {
	benchLockstep(b, graph.Grid(30, 30), nil)
}

// BenchmarkLockstepPulseMulti is the same workload on the worker pool with
// the fan-out threshold forced low, measuring parallel-mode overhead on a
// moderate graph (the pool pays off at larger scale; results are
// byte-identical either way).
func BenchmarkLockstepPulseMulti(b *testing.B) {
	benchLockstep(b, graph.Grid(30, 30), func(r *Runner) {
		r.WithMode(ModeMulti).WithMinParallel(1)
	})
}

// BenchmarkLockstepPulseLarge runs BFS on a 160k-edge random graph in both
// modes, the scale ModeAuto targets.
func BenchmarkLockstepPulseLarge(b *testing.B) {
	g := graph.RandomConnected(40000, 160000, 9)
	b.Run("single", func(b *testing.B) {
		benchLockstep(b, g, func(r *Runner) { r.WithMode(ModeSingle) })
	})
	b.Run("multi", func(b *testing.B) {
		benchLockstep(b, g, func(r *Runner) { r.WithMode(ModeMulti) })
	})
}
