package outval

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/wire"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	cases := []any{int(0), int(42), int(-7), int64(1 << 40), true, false, graph.NodeID(13)}
	for _, v := range cases {
		b, ok := Encode(v)
		if !ok {
			t.Fatalf("Encode(%v) not encodable", v)
		}
		if b.Kind == 0 {
			t.Fatalf("Encode(%v) produced zero Kind", v)
		}
		if got := Decode(b); got != v {
			t.Fatalf("round trip %v (%T) -> %v (%T)", v, v, got, got)
		}
	}
}

func TestNonEncodable(t *testing.T) {
	for _, v := range []any{"string", 3.5, struct{ X int }{1}, nil} {
		if _, ok := Encode(v); ok {
			t.Fatalf("Encode(%v) unexpectedly encodable", v)
		}
	}
}

type testOut struct{ A, B int64 }

const kindTestOut wire.Kind = 0x7711

func init() {
	Register(kindTestOut, func(b wire.Body) any { return testOut{A: b.A, B: b.B} })
}

func TestRegisteredDecode(t *testing.T) {
	got := Decode(wire.Body{Kind: kindTestOut, A: 3, B: -9})
	if got != (testOut{A: 3, B: -9}) {
		t.Fatalf("registered decode = %v", got)
	}
}

func TestDecodeUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Decode of unregistered kind should panic")
		}
	}()
	Decode(wire.Body{Kind: 0x7999})
}

func TestRegisterReservedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("registering a reserved kind should panic")
		}
	}()
	Register(KindInt, func(wire.Body) any { return nil })
}
