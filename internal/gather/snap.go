package gather

import (
	"sort"

	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/wire"
)

var _ wire.StateCodec = (*Module)(nil)

// SaveState implements wire.StateCodec: per-(cluster, session) convergecast
// state plus per-session callback state, both in sorted key order. The
// cover, proto, callbacks, and stage map are constructor-owned and stay
// out of the frame.
func (m *Module) SaveState(e *wire.Enc) {
	keys := make([]key, 0, len(m.states))
	for k := range m.states {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].c != keys[j].c {
			return keys[i].c < keys[j].c
		}
		return keys[i].s < keys[j].s
	})
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		st := m.states[k]
		e.I64(int64(k.c))
		e.Int(k.s)
		e.Bool(st.began)
		e.Bool(st.localDone)
		done := make([]graph.NodeID, 0, len(st.childDone))
		for ch := range st.childDone {
			done = append(done, ch)
		}
		sort.Slice(done, func(i, j int) bool { return done[i] < done[j] })
		e.U32(uint32(len(done)))
		for _, ch := range done {
			e.I32(int32(ch))
		}
		e.Bool(st.reported)
		e.Bool(st.confirmed)
	}

	sess := make([]int, 0, len(m.sessions))
	for s := range m.sessions {
		sess = append(sess, s)
	}
	sort.Ints(sess)
	e.U32(uint32(len(sess)))
	for _, s := range sess {
		ns := m.sessions[s]
		e.Int(s)
		e.Bool(ns.began)
		e.Bool(ns.markedAll)
		e.Int(ns.confirmed)
		e.Bool(ns.fired)
	}
}

// LoadState implements wire.StateCodec.
func (m *Module) LoadState(d *wire.Dec) {
	nStates := int(d.U32())
	m.states = make(map[key]*clusterState, nStates)
	for i := 0; i < nStates && !d.Failed(); i++ {
		k := key{c: cover.ClusterID(d.I64()), s: d.Int()}
		st := &clusterState{
			began:     d.Bool(),
			localDone: d.Bool(),
		}
		nDone := int(d.U32())
		st.childDone = make(map[graph.NodeID]bool, nDone)
		for j := 0; j < nDone && !d.Failed(); j++ {
			st.childDone[graph.NodeID(d.I32())] = true
		}
		st.reported = d.Bool()
		st.confirmed = d.Bool()
		if !d.Failed() {
			m.states[k] = st
		}
	}

	nSess := int(d.U32())
	m.sessions = make(map[int]*nodeSession, nSess)
	for i := 0; i < nSess && !d.Failed(); i++ {
		s := d.Int()
		ns := &nodeSession{
			began:     d.Bool(),
			markedAll: d.Bool(),
			confirmed: d.Int(),
			fired:     d.Bool(),
		}
		if !d.Failed() {
			m.sessions[s] = ns
		}
	}
}
