// Package async implements the asynchronous message-passing model of the
// paper (§1.1, Appendix B) as a deterministic discrete-event simulator:
//
//   - Message delays are chosen by a pluggable adversary and lie in (0, τ]
//     with τ = 1 (the normalized time unit, unknown to algorithms).
//   - Each node must wait for a link-level acknowledgment before injecting
//     the next message into the same directed link (Appendix B, "a subtlety
//     in message delays"). The link layer enforces this.
//   - When several subroutines want the same link, pending messages are
//     scheduled by stage priority (lower stage first, Lemma 2.5) and
//     round-robin across protocols within a stage (Lemma 2.2 / Cor 2.3).
//
// Algorithms are event-driven Handlers: they react to Init, Recv, and Ack
// events and may call Send and Output; they never see the clock.
package async

import (
	"repro/internal/graph"
	"repro/internal/wire"
)

// Proto identifies an algorithmic subroutine for fair link scheduling and
// per-protocol message accounting. Values are chosen by the application.
type Proto int32

// Msg is one network message. It is a plain value end to end: queuing,
// delivery, and acknowledgment never box the payload.
type Msg struct {
	// Proto tags the subroutine this message belongs to. The link layer
	// round-robins across protos within a stage.
	Proto Proto
	// Stage is the sequential-composition stage (Lemma 2.5). Lower stages
	// are always scheduled before higher stages on a contended link.
	Stage int
	// Body is the algorithm payload. Its Kind namespace is per Proto. If
	// it carries a segment, ownership transfers to the engine at Send: the
	// segment is recycled after the sender's Ack callback returns, and
	// receivers must copy its data out inside the delivery callback to
	// retain it (see package wire).
	Body wire.Body
}

// Handler is an event-driven node program. One Handler instance exists per
// node; it holds all per-node state. Handlers run only inside simulator
// callbacks, so they need no locking.
type Handler interface {
	// Init runs once at time 0, before any message is delivered.
	Init(n *Node)
	// Recv is invoked when a message arrives.
	Recv(n *Node, from graph.NodeID, m Msg)
	// Ack is invoked when the link-level acknowledgment for a previously
	// sent message returns to the sender (i.e. the message is known
	// delivered). Pulse-safety logic in the synchronizer depends on this.
	Ack(n *Node, to graph.NodeID, m Msg)
}

// StateCloner is the opt-in contract for speculative execution (ModeSpec).
// A handler that implements it can be run optimistically past the safe
// window: each round the engine copies its state into a clone, lets the
// clone execute events whose order is not yet certain, and either promotes
// the clone at the round barrier or discards it and repairs from the
// committed original. Handlers that do not implement StateCloner silently
// fall back to the conservative bounded-lag executor (Result.SpecStats
// reports the fallback), so opting in is purely a performance feature.
//
// CloneStateInto must copy the receiver's complete mutable state into dst.
// dst is always a handler built by the same mk function for the same node,
// so implementations may type-assert it; per-node immutable configuration
// set by mk is already present in dst (copying it again is harmless). The
// copy should reuse dst's existing capacity (maps via clear-and-refill,
// slices via truncate-and-append): the engine ping-pongs two instances per
// node across rounds, so a capacity-reusing copy makes steady-state
// speculation allocation-free.
//
// Two sharp edges:
//
//   - Embedding: a handler that embeds another handler type inherits its
//     CloneStateInto via method promotion, which copies only the embedded
//     part — and its dst type assertion will fail loudly at the outer type.
//     Wrapper handlers must implement CloneStateInto themselves.
//   - Arena segments: a handler that retains arena segments across events
//     should not opt in — a discarded clone's unsent segments are not
//     released until the next Sim.Reset.
//
// The engine may call mk (to build clone targets, at most once per node)
// and CloneStateInto concurrently for different nodes.
type StateCloner interface {
	Handler
	// CloneStateInto copies the receiver's mutable state into dst, reusing
	// dst's capacity where possible.
	CloneStateInto(dst Handler)
}

// NopAck can be embedded by handlers that do not care about acks.
type NopAck struct{}

// Ack implements Handler with a no-op.
func (NopAck) Ack(*Node, graph.NodeID, Msg) {}

// Node is the API surface a Handler sees: its identity, its local view of
// the topology (neighbor list only — nodes do not know the global graph),
// sending, and producing output.
type Node struct {
	id graph.NodeID
	// ctxIdx routes the node's effects: ctxDirect is the engine's direct
	// context (ModeSingle and merges), k > 0 is worker context wctx[k-1]
	// (exactly one worker owns a node inside a window, so the index is
	// stable for the window's duration), ctxSwallow is the speculative
	// straddle-repair context. An index instead of a pointer keeps Node at
	// 16 bytes — the engine holds one Node per simulated node.
	ctxIdx int32
	sim    *Sim
}

// Context-index values for Node.ctxIdx.
const (
	ctxDirect  int32 = 0
	ctxSwallow int32 = -1
)

// ctx resolves the node's execution context.
func (n *Node) ctx() *execCtx {
	if n.ctxIdx == ctxDirect {
		return &n.sim.direct
	}
	if n.ctxIdx > 0 {
		return &n.sim.wctx[n.ctxIdx-1]
	}
	return &n.sim.swallowCtx
}

// ID returns this node's identifier.
func (n *Node) ID() graph.NodeID { return n.id }

// Neighbors returns the IDs of adjacent nodes in ascending order. The slice
// must not be mutated.
func (n *Node) Neighbors() []graph.Neighbor { return n.sim.g.Neighbors(n.id) }

// Degree returns the node's degree.
func (n *Node) Degree() int { return n.sim.g.Degree(n.id) }

// Send enqueues m on the directed link to neighbor `to`. Panics if `to` is
// not a neighbor: algorithms in this model can only talk over graph edges.
func (n *Node) Send(to graph.NodeID, m Msg) { n.ctx().send(n.id, to, m) }

// Output records this node's final output for the problem being solved.
// The simulator's time-to-output clock stops when the last node outputs.
// Calling Output again overwrites the value but does not move the clock
// backwards. Primitive values (int, int64, bool, graph.NodeID) are stored
// as typed wire.Body entries without boxing; anything else falls back to a
// boxed escape slot. Algorithms with struct results should prefer
// OutputBody with a registered outval decoder.
func (n *Node) Output(v any) { n.ctx().setOutput(n.id, v) }

// OutputBody records this node's final output as a typed wire.Body —
// the allocation-free path. The Kind must be non-zero and either one of
// outval's reserved primitive kinds or a kind with a registered outval
// decoder, so Result materialization can produce the user-facing value.
func (n *Node) OutputBody(b wire.Body) { n.ctx().setOutputBody(n.id, b) }

// HasOutput reports whether this node has already produced output. The
// answer is routed through the node's execution context: a speculative
// round sees its own not-yet-committed Output calls, exactly as the serial
// engine would at the same point in the event order.
func (n *Node) HasOutput() bool { return n.ctx().hasOutput(n.id) }

// NeighborIndex returns the position of `to` in this node's neighbor list,
// or -1 if `to` is not a neighbor. Dense per-neighbor state (CONGEST
// stamps, per-link counters) indexes by this instead of hashing NodeIDs.
func (n *Node) NeighborIndex(to graph.NodeID) int {
	return n.sim.g.NeighborIndex(n.id, to)
}

// Arena returns the simulation's segment arena. Handlers that send
// variable-length payloads carve Body.Seg from it; the engine returns each
// sent segment to the arena when the message's lifecycle ends (after the
// sender's Ack callback), so steady-state traffic allocates nothing.
func (n *Node) Arena() *wire.Arena { return &n.sim.arena }
