package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestShardSnapshotResume is the distributed-snapshot identity matrix: a
// checkpointed K-way run must (a) produce the same result as the
// uncheckpointed run — snapshotting is observation, not perturbation —
// and (b) resume from its last checkpoint at a different shard count K′
// to the same final result, byte for byte (counters, outputs, PerProto,
// full trace). Frames are relocatable, so the re-split across K′ is the
// part under test.
func TestShardSnapshotResume(t *testing.T) {
	cases := []struct {
		name     string
		cfg      Config
		every    uint64
		resumeKs []int
	}{
		{
			name: "flood",
			cfg: Config{
				GraphSpec: "grid:10x10",
				Workload:  "flood",
				Adversary: "random:7",
				KeepTrace: true,
				Shards:    3,
			},
			every:    150,
			resumeKs: []int{1, 2, 3, 4},
		},
		{
			name: "bfs-faults",
			cfg: Config{
				GraphSpec: "pa:n=150,m=2,seed=5",
				Workload:  "bfs",
				Adversary: "flaky:11",
				Faults:    "drop:p=0.1,budget=3,seed=5",
				KeepTrace: true,
				Shards:    2,
			},
			every:    400,
			resumeKs: []int{1, 3},
		},
		{
			name: "segflood",
			cfg: Config{
				GraphSpec: "grid3d:4x4x4",
				Workload:  "segflood",
				Adversary: "random:5",
				SegWords:  33,
				Shards:    2,
			},
			every:    100,
			resumeKs: []int{1, 4},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := serialRun(t, tc.cfg)
			path := filepath.Join(t.TempDir(), "ckpt.bin")
			cfg := tc.cfg
			cfg.SnapshotEvery = tc.every
			cfg.SnapshotPath = path
			rep, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			compareResults(t, rep.Result, want)
			if rep.Stats.Snapshots == 0 {
				t.Fatal("run completed without writing a checkpoint — raise the event count or lower SnapshotEvery")
			}
			if _, err := os.Stat(path); err != nil {
				t.Fatal(err)
			}
			for _, k := range tc.resumeKs {
				t.Run(fmt.Sprintf("resume-k=%d", k), func(t *testing.T) {
					rrep, err := Run(Config{ResumeFrom: path, Shards: k})
					if err != nil {
						t.Fatal(err)
					}
					compareResults(t, rrep.Result, want)
					if rrep.Stats.Shards != k {
						t.Errorf("resumed at %d shards, asked for %d", rrep.Stats.Shards, k)
					}
				})
			}
		})
	}
}

// TestShardSnapshotErrors pins the checkpoint configuration and file
// validation: a cadence without a path, a resume from a missing file, and
// a resume from a corrupted file all fail before any worker is spawned.
func TestShardSnapshotErrors(t *testing.T) {
	if _, err := Run(Config{GraphSpec: "grid:4x4", Workload: "flood",
		Adversary: "fixed:0.5", SnapshotEvery: 10}); err == nil {
		t.Error("SnapshotEvery without SnapshotPath accepted")
	}
	if _, err := Run(Config{ResumeFrom: filepath.Join(t.TempDir(), "absent.bin")}); err == nil {
		t.Error("resume from a missing file accepted")
	}

	// Write a real checkpoint, then corrupt it.
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	cfg := Config{
		GraphSpec:     "grid:10x10",
		Workload:      "flood",
		Adversary:     "random:7",
		Shards:        2,
		SnapshotEvery: 100,
		SnapshotPath:  path,
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"flipped":   func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b },
		"empty":     func([]byte) []byte { return nil },
	} {
		t.Run(name, func(t *testing.T) {
			bad := filepath.Join(dir, name+".bin")
			if err := os.WriteFile(bad, mutate(append([]byte(nil), data...)), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Run(Config{ResumeFrom: bad}); err == nil {
				t.Error("corrupted checkpoint accepted")
			}
		})
	}
}
