package bench

import (
	"io"

	"repro/internal/abfs"
	"repro/internal/apps"
	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/syncrun"
)

func bfsMk(sources []graph.NodeID) func(graph.NodeID) syncrun.Handler {
	return func(graph.NodeID) syncrun.Handler { return &apps.BFS{Sources: sources} }
}

// E1SynchronizerOverheads compares α, β, γ, and the main synchronizer on
// the same synchronous BFS: time overhead T(A')/T(A) and message overhead
// M(A')/M(A) per Appendix A and Theorem 1.1. Expected shape: α wins time
// and loses messages as T·m grows; β pays Θ(D) time per pulse; the main
// synchronizer keeps both overheads polylogarithmic.
func E1SynchronizerOverheads(w io.Writer) {
	t := newTable(w, "E1: synchronizer overheads (sync BFS workload)",
		"overheads = async/sync; α time ≈ O(1)/pulse, β time ≈ Θ(D)/pulse, main = polylog")
	t.row("graph", "n", "m", "D", "T(A)", "M(A)", "sync", "time-ovh", "msg-ovh")
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle64", graph.Cycle(64)},
		{"grid8x8", graph.Grid(8, 8)},
		{"er96", graph.RandomConnected(96, 300, 7)},
	}
	for _, tc := range graphs {
		g := tc.g
		mk := bfsMk([]graph.NodeID{0})
		sres := syncrun.New(g, mk).Run()
		bound := sres.Rounds + 2
		adv := async.SeededRandom{Seed: 3}
		runs := []struct {
			name string
			res  async.Result
		}{
			{"alpha", core.SynchronizeAlpha(g, bound, adv, mk)},
			{"beta", core.SynchronizeBeta(g, bound, adv, mk)},
			{"gamma", core.SynchronizeGamma(g, bound, adv, mk)},
			{"main", core.Synchronize(core.Config{Graph: g, Bound: bound, Adversary: adv}, mk)},
		}
		for _, r := range runs {
			t.row(tc.name, g.N(), g.M(), g.Diameter(), sres.T, sres.M, r.name,
				r.res.Time/float64(sres.T), float64(r.res.Msgs)/float64(sres.M))
		}
	}
	t.flush()
}

// E2BFSTimeVsD measures the complete asynchronous BFS (Theorem 4.23):
// time should scale near-linearly in D (polylog factors on top).
func E2BFSTimeVsD(w io.Writer) {
	t := newTable(w, "E2: async BFS time vs diameter (Thm 4.23)",
		"time/D should stay within polylog factors as D doubles")
	t.row("graph", "n", "m", "D", "iters", "time", "time/D", "msgs")
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle32", graph.Cycle(32)},
		{"cycle64", graph.Cycle(64)},
		{"cycle128", graph.Cycle(128)},
		{"grid6x6", graph.Grid(6, 6)},
		{"grid8x12", graph.Grid(8, 12)},
	} {
		g := tc.g
		res := abfs.Full(g, []graph.NodeID{0}, async.SeededRandom{Seed: 5})
		d := g.Diameter()
		t.row(tc.name, g.N(), g.M(), d, res.Iterations, res.Time,
			res.Time/float64(d), res.Msgs)
	}
	t.flush()
}

// E3BFSMessagesVsM fixes n and sweeps m: messages should scale near-
// linearly in m (Theorem 4.23's Õ(m)).
func E3BFSMessagesVsM(w io.Writer) {
	t := newTable(w, "E3: async BFS messages vs edge count (Thm 4.23)",
		"msgs/m should stay within polylog factors as m grows")
	t.row("n", "m", "D", "time", "msgs", "msgs/m")
	n := 96
	for _, m := range []int{150, 300, 600, 1200} {
		g := graph.RandomConnected(n, m, 11)
		res := abfs.Full(g, []graph.NodeID{0}, async.SeededRandom{Seed: 5})
		t.row(n, g.M(), g.Diameter(), res.Time, res.Msgs,
			float64(res.Msgs)/float64(g.M()))
	}
	t.flush()
}

// E4MultiSourceD1 shows Theorem 4.24: multi-source BFS terminates in time
// governed by D1 (max distance to the closest source), not the diameter.
func E4MultiSourceD1(w io.Writer) {
	t := newTable(w, "E4: multi-source BFS time vs D1 (Thm 4.24)",
		"with more sources D1 shrinks and so should the time, at fixed D")
	t.row("sources", "D", "D1", "iters", "time", "time/D1", "msgs")
	g := graph.Grid(10, 10)
	d := g.Diameter()
	sets := [][]graph.NodeID{
		{0},
		{0, 99},
		{0, 9, 90, 99},
		{0, 9, 90, 99, 44, 45, 54, 55},
	}
	for _, sources := range sets {
		d1 := g.BallRadius(sources)
		res := abfs.Full(g, sources, async.SeededRandom{Seed: 9})
		t.row(len(sources), d, d1, res.Iterations, res.Time,
			res.Time/float64(d1), res.Msgs)
	}
	t.flush()
}

// E5LeaderElection measures Corollary 1.3: deterministic asynchronous
// leader election in Õ(D) time and Õ(m) messages.
func E5LeaderElection(w io.Writer) {
	t := newTable(w, "E5: async deterministic leader election (Cor 1.3)",
		"time/D and msgs/m should stay within polylog factors")
	t.row("graph", "n", "m", "D", "T(A)", "M(A)", "time", "time/D", "msgs", "msgs/m")
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle32", graph.Cycle(32)},
		{"cycle64", graph.Cycle(64)},
		{"grid6x6", graph.Grid(6, 6)},
		{"grid8x8", graph.Grid(8, 8)},
		{"er64", graph.RandomConnected(64, 200, 13)},
	} {
		g := tc.g
		d := g.Diameter()
		layered := cover.BuildLayered(g, d, nil)
		spans := apps.LeaderSpansAll(g, layered)
		mk := func(graph.NodeID) syncrun.Handler {
			return &apps.Leader{Covers: layered, SpansAll: spans}
		}
		sres := syncrun.New(g, mk).Run()
		res := core.Synchronize(core.Config{Graph: g, Bound: sres.Rounds + 2,
			Adversary: async.SeededRandom{Seed: 17}}, mk)
		t.row(tc.name, g.N(), g.M(), d, sres.T, sres.M, res.Time,
			res.Time/float64(d), res.Msgs, float64(res.Msgs)/float64(g.M()))
	}
	t.flush()
}

// E6MST measures Corollary 1.4 (with the documented Borůvka substitution):
// asynchronous deterministic MST with Õ(m) messages.
func E6MST(w io.Writer) {
	t := newTable(w, "E6: async deterministic MST (Cor 1.4)",
		"msgs/m should stay within polylog factors; MST verified against Kruskal")
	t.row("graph", "n", "m", "T(A)", "M(A)", "time", "msgs", "msgs/m", "correct")
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"er24", graph.WithRandomWeights(graph.RandomConnected(24, 70, 3), 5)},
		{"er48", graph.WithRandomWeights(graph.RandomConnected(48, 150, 3), 5)},
		{"grid6x6", graph.WithRandomWeights(graph.Grid(6, 6), 5)},
	} {
		g := tc.g
		tree := cover.BFSTreeCluster(g, 0)
		weights := make([]int64, g.M())
		for i, e := range g.Edges {
			weights[i] = e.Weight
		}
		mk := func(graph.NodeID) syncrun.Handler {
			return &apps.MST{Barrier: tree, Weights: weights}
		}
		sres := syncrun.New(g, mk).Run()
		res := core.Synchronize(core.Config{Graph: g, Bound: sres.Rounds + 2,
			Adversary: async.SeededRandom{Seed: 19}}, mk)
		t.row(tc.name, g.N(), g.M(), sres.T, sres.M, res.Time, res.Msgs,
			float64(res.Msgs)/float64(g.M()), mstCorrect(g, res.Outputs))
	}
	t.flush()
}

func mstCorrect(g *graph.Graph, outputs map[graph.NodeID]any) bool {
	want := make(map[[2]graph.NodeID]bool)
	for _, id := range g.KruskalMST() {
		e := g.Edges[id]
		want[[2]graph.NodeID{e.U, e.V}] = true
	}
	got := make(map[[2]graph.NodeID]bool)
	for v := 0; v < g.N(); v++ {
		out, ok := outputs[graph.NodeID(v)]
		if !ok {
			return false
		}
		res, ok := out.(apps.MSTResult)
		if !ok {
			return false
		}
		for _, nb := range res.TreeNeighbors {
			key := [2]graph.NodeID{graph.NodeID(v), nb}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			got[key] = true
		}
	}
	if len(got) != len(want) {
		return false
	}
	for e := range want {
		if !got[e] {
			return false
		}
	}
	return true
}
