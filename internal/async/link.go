package async

// outbox holds the messages a node has queued on one directed link but not
// yet injected (the ack discipline allows one in-flight message per link).
// Scheduling follows the paper's two composition rules:
//
//   - Stage priority (Lemma 2.5): a message of a lower stage is always
//     injected before any message of a higher stage.
//   - Round-robin across protocols within a stage (Lemma 2.2 / Cor 2.3):
//     the link cycles fairly through the protocols that have pending
//     messages, simulating "one copy of the edge per subroutine" with a
//     k-factor slowdown for k contending subroutines.
//
// Outboxes are allocated lazily, one per CONTENDED directed link: the
// simulator's []*outbox slot stays nil until a send finds the link busy
// (see execCtx.send's uncontended fast path), so a ten-million-link flood
// whose links never queue two messages costs one pointer per link, not a
// queue structure. The in-flight flag itself lives in the engine's dense
// []bool. The internal queues are plain slices — protocols per stage are
// few (the synchronizer stack registers tens at most), so linear scans
// beat hashing.
//
// Zeroing rules: popped message slots are cleared (so retained capacity
// never pins a delivered body), but drained stageQueue and protoFIFO slots
// are only truncated, never dropped — their slice capacity rotates back
// into use when the stage or protocol reappears on the link. A link that
// reaches steady state therefore stops allocating entirely, even when its
// outbox fully drains between messages (the common, uncontended case).
type outbox struct {
	queued int
	stages []stageQueue // sorted ascending by stage
}

type stageQueue struct {
	stage  int
	queued int
	protos []protoFIFO // rotation order (first-appearance order)
	next   int         // round-robin cursor into protos
}

// protoFIFO is one protocol's pending-message queue on one link: a slice
// ring that compacts to msgs[:0] whenever it drains, reusing capacity.
type protoFIFO struct {
	proto Proto
	head  int
	msgs  []Msg
}

func (o *outbox) push(m Msg) {
	o.queued++
	// Find or insert the stage queue, keeping stages sorted.
	lo, hi := 0, len(o.stages)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if o.stages[mid].stage < m.Stage {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(o.stages) || o.stages[lo].stage != m.Stage {
		// Grow by one, then rotate the tail slot — whose protoFIFO capacity
		// survives from a previously drained stage — into position lo.
		n := len(o.stages)
		if n < cap(o.stages) {
			o.stages = o.stages[:n+1]
		} else {
			o.stages = append(o.stages, stageQueue{})
		}
		tail := o.stages[n]
		copy(o.stages[lo+1:], o.stages[lo:n])
		tail.stage = m.Stage
		o.stages[lo] = tail
	}
	sq := &o.stages[lo]
	sq.queued++
	for i := range sq.protos {
		if sq.protos[i].proto == m.Proto {
			sq.protos[i].msgs = append(sq.protos[i].msgs, m)
			return
		}
	}
	// Grow the rotation by one, reusing a drained protoFIFO's msgs capacity
	// when the slice has room beyond its length.
	n := len(sq.protos)
	if n < cap(sq.protos) {
		sq.protos = sq.protos[:n+1]
	} else {
		sq.protos = append(sq.protos, protoFIFO{})
	}
	pf := &sq.protos[n]
	pf.proto = m.Proto
	pf.msgs = append(pf.msgs, m)
}

// pop removes and returns the next message per the scheduling discipline.
// The second return is false when the outbox is empty.
func (o *outbox) pop() (Msg, bool) {
	if o.queued == 0 {
		// Retire any lingering drained stages so long-lived links do not
		// accumulate stale rotation state (capacity is kept for reuse).
		for len(o.stages) > 0 {
			o.removeFrontStage()
		}
		return Msg{}, false
	}
	// Stages are sorted ascending and drained stages are removed, so the
	// front stage always holds the next message.
	for o.stages[0].queued == 0 {
		o.removeFrontStage()
	}
	sq := &o.stages[0]
	m := sq.pop()
	o.queued--
	if sq.queued == 0 {
		o.removeFrontStage()
	}
	return m, true
}

// reset empties the outbox in place for engine reuse (Sim.Reset), keeping
// the stage rotation's and every protoFIFO's capacity. Msg slots are
// pointer-free values, so the retained arrays pin nothing.
func (o *outbox) reset() {
	o.queued = 0
	for i := range o.stages {
		sq := &o.stages[i]
		sq.stage = 0
		sq.queued = 0
		sq.next = 0
		for j := range sq.protos {
			sq.protos[j].head = 0
			sq.protos[j].msgs = sq.protos[j].msgs[:0]
		}
		sq.protos = sq.protos[:0]
	}
	o.stages = o.stages[:0]
}

// removeFrontStage retires the drained front stage, rotating its slot —
// scalars reset, protoFIFO capacity intact (each FIFO already reset itself
// when it drained) — past the slice's length for later reuse.
func (o *outbox) removeFrontStage() {
	front := o.stages[0]
	copy(o.stages, o.stages[1:])
	front.stage = 0
	front.queued = 0
	front.next = 0
	front.protos = front.protos[:0]
	o.stages[len(o.stages)-1] = front
	o.stages = o.stages[:len(o.stages)-1]
}

// pop returns the next message of a non-empty stage, round-robining across
// its protocols.
func (sq *stageQueue) pop() Msg {
	n := len(sq.protos)
	for i := 0; i < n; i++ {
		pf := &sq.protos[(sq.next+i)%n]
		if pf.head == len(pf.msgs) {
			continue
		}
		m := pf.msgs[pf.head]
		pf.msgs[pf.head] = Msg{} // release the body for GC
		pf.head++
		if pf.head == len(pf.msgs) {
			pf.head = 0
			pf.msgs = pf.msgs[:0]
		}
		sq.next = (sq.next + i + 1) % n
		sq.queued--
		return m
	}
	panic("async: stageQueue.pop on empty stage")
}
