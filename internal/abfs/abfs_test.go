package abfs

import (
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/async"
	"repro/internal/graph"
)

// checkThresholded validates Definition 4.2 semantics on the outputs.
func checkThresholded(t *testing.T, g *graph.Graph, sources []graph.NodeID, tau int, res Result) {
	t.Helper()
	dist, _ := g.MultiBFS(sources)
	isSource := map[graph.NodeID]bool{}
	for _, s := range sources {
		isSource[s] = true
	}
	for v := 0; v < g.N(); v++ {
		id := graph.NodeID(v)
		out, ok := res.Outputs[id]
		if !ok {
			t.Fatalf("node %d has no output (dist=%d tau=%d)", v, dist[v], tau)
		}
		switch o := out.(type) {
		case apps.TBFSResult:
			if dist[v] > tau {
				t.Fatalf("node %d reached at dist %d but true dist %d > tau %d", v, o.Dist, dist[v], tau)
			}
			if o.Dist != dist[v] {
				t.Fatalf("node %d dist %d, want %d", v, o.Dist, dist[v])
			}
		case apps.TBFSSourceDone:
			if !isSource[id] {
				t.Fatalf("node %d got SourceDone but is not a source", v)
			}
		case Unreachable:
			if dist[v] <= tau {
				t.Fatalf("node %d output ∞ but dist %d <= tau %d", v, dist[v], tau)
			}
		default:
			t.Fatalf("node %d: unexpected output %T", v, out)
		}
	}
	wantComplete := g.BallRadius(sources) <= tau
	if res.Complete != wantComplete {
		t.Fatalf("Complete=%v, want %v (D1=%d tau=%d)", res.Complete, wantComplete, g.BallRadius(sources), tau)
	}
}

func TestThresholdedCutsAtTau(t *testing.T) {
	g := graph.Path(24)
	for _, tau := range []int{1, 3, 8, 30} {
		res := Thresholded(Config{Graph: g, Sources: []graph.NodeID{0}, Threshold: tau,
			Adversary: async.SeededRandom{Seed: 2}})
		checkThresholded(t, g, []graph.NodeID{0}, tau, res)
	}
}

func TestThresholdedMultiSource(t *testing.T) {
	g := graph.Grid(5, 5)
	sources := []graph.NodeID{0, 24}
	for _, tau := range []int{2, 4, 9} {
		res := Thresholded(Config{Graph: g, Sources: sources, Threshold: tau,
			Adversary: async.SeededRandom{Seed: 7}})
		checkThresholded(t, g, sources, tau, res)
	}
}

func TestThresholdedAdversaries(t *testing.T) {
	g := graph.RandomConnected(20, 45, 11)
	sources := []graph.NodeID{3}
	for _, adv := range async.StandardAdversaries(g.N(), 61) {
		res := Thresholded(Config{Graph: g, Sources: sources, Threshold: 2, Adversary: adv})
		checkThresholded(t, g, sources, 2, res)
	}
}

func TestFullBFS(t *testing.T) {
	for _, tc := range []struct {
		name    string
		g       *graph.Graph
		sources []graph.NodeID
	}{
		{"path20", graph.Path(20), []graph.NodeID{0}},
		{"grid4x5", graph.Grid(4, 5), []graph.NodeID{0}},
		{"er24-multi", graph.RandomConnected(24, 55, 5), []graph.NodeID{0, 13}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res := Full(tc.g, tc.sources, async.SeededRandom{Seed: 3})
			dist, _ := tc.g.MultiBFS(tc.sources)
			d1 := tc.g.BallRadius(tc.sources)
			if res.FinalThreshold < d1 {
				t.Fatalf("final threshold %d < D1 %d", res.FinalThreshold, d1)
			}
			if res.FinalThreshold >= 4*d1+4 {
				t.Fatalf("final threshold %d overshoots D1 %d", res.FinalThreshold, d1)
			}
			for v := 0; v < tc.g.N(); v++ {
				out := res.Outputs[graph.NodeID(v)]
				switch o := out.(type) {
				case apps.TBFSResult:
					if o.Dist != dist[v] {
						t.Fatalf("node %d dist %d, want %d", v, o.Dist, dist[v])
					}
				case apps.TBFSSourceDone:
					// source
				default:
					t.Fatalf("node %d: unexpected final output %T", v, out)
				}
			}
		})
	}
}

func TestFullBFSIterationCount(t *testing.T) {
	g := graph.Path(30)
	res := Full(g, []graph.NodeID{0}, async.Fixed{D: 1})
	// D1 = 29: thresholds 1,2,4,8,16,32 -> 6 iterations.
	if res.Iterations != 6 {
		t.Fatalf("iterations = %d, want 6", res.Iterations)
	}
}

func TestCheckLevel(t *testing.T) {
	want := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5}
	for tau, lvl := range want {
		if got := checkLevel(tau); got != lvl {
			t.Errorf("checkLevel(%d) = %d, want %d", tau, got, lvl)
		}
	}
}

// TestFullModeMatchesSerial runs the complete doubling BFS — every
// iteration on the reused bounded-lag engine — and requires the aggregate
// FullResult (summed costs, decoded final outputs, iteration count) to
// deep-equal the serial run's.
func TestFullModeMatchesSerial(t *testing.T) {
	g := graph.Grid(6, 6)
	sources := []graph.NodeID{0, 35}
	for _, adv := range []async.Adversary{
		async.Fixed{D: 1},
		async.SeededRandom{Seed: 23},
	} {
		serial := FullMode(g, sources, adv, async.ModeSingle)
		par := FullMode(g, sources, adv, async.ModeMulti)
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("%s: FullMode parallel differs from serial:\n%+v\nvs\n%+v", adv.Name(), serial, par)
		}
		if bad := apps.CheckBFSOutputs(g, sources, toBFSOutputs(serial.Outputs)); bad >= 0 {
			t.Fatalf("%s: node %d has wrong BFS output", adv.Name(), bad)
		}
	}
}

// toBFSOutputs adapts TBFS outputs to the BFS checker's shape.
func toBFSOutputs(outputs map[graph.NodeID]any) map[graph.NodeID]any {
	conv := make(map[graph.NodeID]any, len(outputs))
	for v, o := range outputs {
		switch x := o.(type) {
		case apps.TBFSResult:
			conv[v] = apps.BFSResult{Dist: x.Dist, Parent: x.Parent, Source: x.Source}
		case apps.TBFSSourceDone:
			conv[v] = apps.BFSResult{Dist: 0, Parent: -1, Source: v}
		default:
			conv[v] = o
		}
	}
	return conv
}
