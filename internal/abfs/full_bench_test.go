package abfs

import (
	"testing"

	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/graph"
)

// BenchmarkFullBFS measures the complete doubling BFS end to end: five-ish
// thresholded iterations per op, all on one engine rearmed with Sim.Reset,
// intermediate iterations in dense-output mode. The interesting trend is
// allocs/op and bytes/op versus the rebuild-everything-per-iteration
// baseline this replaced.
func BenchmarkFullBFS(b *testing.B) {
	g := graph.Grid(8, 12)
	core.BuildLayeredFor(g, 100) // warm the cover cache like a sweep does
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Full(g, []graph.NodeID{0}, async.SeededRandom{Seed: 5})
		if len(res.Outputs) != g.N() {
			b.Fatal("incomplete")
		}
	}
}
