// Package abfs assembles the paper's asynchronous BFS algorithms (§4):
//
//   - Thresholded multi-source BFS (Theorems 4.11/4.15): the synchronous
//     τ-thresholded BFS of internal/apps runs under the deterministic
//     synchronizer of internal/core, and the §4.1.2 checking stage — a
//     gather over a 2^⌈log₂τ⌉-cover with process "being a source and
//     becoming τ-safe" — tells every unreached node that its distance
//     exceeds τ, so it outputs ∞.
//
//   - The complete BFS in Õ(D) time and Õ(m) messages (Theorems
//     4.23/4.24): doubling iterations of thresholded BFS, terminated by
//     the Approach-2 frontier convergecast. Each iteration is one
//     asynchronous execution; iteration costs are summed exactly as Lemma
//     2.5's sequential-composition bound adds isolated stage times
//     (DESIGN.md records this composition-at-the-harness substitution;
//     covers are built centrally, as everywhere in this reproduction).
package abfs

import (
	"fmt"
	"math/bits"

	"repro/internal/apps"
	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/gather"
	"repro/internal/graph"
	"repro/internal/outval"
	"repro/internal/wire"
)

// Unreachable is the output of nodes whose distance to every source
// exceeds the threshold (the paper's ∞ symbol, Definition 4.2).
type Unreachable struct{}

// KindOutUnreachable is the typed-output encoding of Unreachable (a pure
// tag; see outval for the output-kind namespace).
const KindOutUnreachable wire.Kind = 0x7D01

func init() {
	outval.Register(KindOutUnreachable, func(wire.Body) any { return Unreachable{} })
}

// protoCheck carries the checking-stage gather (distinct from every proto
// the synchronizer stack uses).
const protoCheck async.Proto = 90

// Result of one thresholded asynchronous BFS execution.
type Result struct {
	async.Result
	// Complete reports whether every node was reached (no frontier beyond
	// the threshold at any source).
	Complete bool
}

// checkGlue bridges the synchronized TBFS and the checking-stage gather on
// one node: non-sources mark done immediately; a source marks done when
// its termination echo completes; on NeighborhoodDone an unreached node
// outputs ∞.
type checkGlue struct {
	tb       *apps.TBFS
	gm       *gather.Module
	isSource bool
	node     *async.Node
	srcDone  bool
	frontier bool
}

var _ async.Module = (*checkGlue)(nil)
var _ gather.Callbacks = (*checkGlue)(nil)
var _ wire.StateCodec = (*checkGlue)(nil)
var _ async.Rebinder = (*checkGlue)(nil)

// SaveState implements wire.StateCodec. The TBFS handler and the gather
// module serialize themselves via their own codecs in the enclosing Mux;
// the glue's own mutable state is just the source-echo verdict.
func (cg *checkGlue) SaveState(e *wire.Enc) {
	e.Bool(cg.srcDone)
	e.Bool(cg.frontier)
}

// LoadState implements wire.StateCodec.
func (cg *checkGlue) LoadState(d *wire.Dec) {
	cg.srcDone = d.Bool()
	cg.frontier = d.Bool()
}

// Rebind implements async.Rebinder: on a restored engine Start does not
// run again, so re-capture the node handle onSourceDone needs.
func (cg *checkGlue) Rebind(n *async.Node) { cg.node = n }

// Start implements async.Module.
func (cg *checkGlue) Start(n *async.Node) {
	cg.node = n
	if !cg.isSource {
		cg.gm.MarkDone(n, 0)
		return
	}
	cg.gm.Begin(n, 0)
	if cg.srcDone { // echo finished before Start ordering (tiny graphs)
		cg.gm.MarkDone(n, 0)
	}
}

// Recv implements async.Module (the glue owns no wire traffic).
func (cg *checkGlue) Recv(n *async.Node, _ graph.NodeID, m async.Msg) {
	panic(fmt.Sprintf("abfs: glue at node %d got unexpected message (proto %d, kind %d)", n.ID(), m.Proto, m.Body.Kind))
}

// Ack implements async.Module.
func (cg *checkGlue) Ack(*async.Node, graph.NodeID, async.Msg) {}

// onSourceDone is called from inside the synchronized algorithm when this
// source's echo completes.
func (cg *checkGlue) onSourceDone(frontier bool) {
	cg.srcDone = true
	cg.frontier = frontier
	if cg.node != nil {
		cg.gm.MarkDone(cg.node, 0)
	}
}

// NeighborhoodDone implements gather.Callbacks: the τ-ball is settled.
func (cg *checkGlue) NeighborhoodDone(n *async.Node, _ int) {
	if !cg.tb.Reached() {
		n.OutputBody(wire.Tag(KindOutUnreachable))
	}
}

// Config parameterizes one thresholded run.
type Config struct {
	Graph     *graph.Graph
	Sources   []graph.NodeID
	Threshold int
	Adversary async.Adversary
	// Layered covers; nil builds them (they must reach the synchronizer's
	// level for bound 2·Threshold+4 and the checking level ⌈log₂τ⌉).
	Layered *cover.Layered
	// Mode selects the asynchronous engine's execution mode (default
	// ModeAuto); results are byte-identical across modes.
	Mode async.ExecutionMode
}

// pulseBound returns the synchronizer bound for a τ-thresholded BFS: joins
// live τ pulses, probes and the echo double back, plus slack.
func pulseBound(tau int) int { return 2*tau + 6 }

// BuildLayeredFor constructs covers sufficient for a τ-thresholded run.
func BuildLayeredFor(g *graph.Graph, tau int) *cover.Layered {
	return core.BuildLayeredFor(g, pulseBound(tau))
}

// checkLevel returns ⌈log₂ τ⌉: the cover level whose clusters contain
// every τ-ball.
func checkLevel(tau int) int {
	if tau < 1 {
		panic(fmt.Sprintf("abfs: threshold must be >= 1, got %d", tau))
	}
	return bits.Len(uint(tau - 1))
}

// Thresholded runs one asynchronous τ-thresholded multi-source BFS.
// Outputs: apps.TBFSResult for reached non-source nodes,
// apps.TBFSSourceDone at sources, Unreachable{} beyond the threshold.
func Thresholded(cfg Config) Result {
	res, _ := thresholdedOn(nil, cfg, false)
	return res
}

// thresholdedOn runs one thresholded iteration, either on a fresh engine
// (sim nil) or by rearming a previous iteration's engine via Sim.Reset —
// the doubling loop of Full reuses one engine's event wheel, outboxes, and
// arena across all its iterations. dense selects the engine's dense-output
// mode (no Outputs map materialization; the caller decodes OutBodies).
func thresholdedOn(sim *async.Sim, cfg Config, dense bool) (Result, *async.Sim) {
	if len(cfg.Sources) == 0 {
		panic("abfs: no sources")
	}
	adv := cfg.Adversary
	if adv == nil {
		adv = async.SeededRandom{Seed: 1}
	}
	bound := pulseBound(cfg.Threshold)
	sched := core.NewSchedule(bound)
	layered := cfg.Layered
	if layered == nil {
		layered = core.BuildLayeredFor(cfg.Graph, bound)
	}
	lvl := checkLevel(cfg.Threshold)
	if lvl > layered.MaxLevel() {
		panic(fmt.Sprintf("abfs: covers reach level %d, checking needs %d", layered.MaxLevel(), lvl))
	}
	checkCov := layered.Level(lvl)

	isSource := make([]bool, cfg.Graph.N())
	for _, s := range cfg.Sources {
		isSource[s] = true
	}
	glues := make([]*checkGlue, cfg.Graph.N())
	mk := func(id graph.NodeID) async.Handler {
		tb := &apps.TBFS{Sources: cfg.Sources, Threshold: cfg.Threshold}
		glue := &checkGlue{tb: tb, isSource: isSource[id]}
		glue.gm = gather.New(protoCheck, checkCov, glue, nil)
		tb.OnSourceDone = glue.onSourceDone
		glues[id] = glue
		stack := core.NewNodeHandler(sched, layered, tb)
		stack.Register(protoCheck, glue.gm)
		stack.Register(protoCheck+1, glue)
		return stack
	}
	if sim == nil {
		sim = async.New(cfg.Graph, adv, mk).WithMode(cfg.Mode)
		if dense {
			sim.DenseOutputs()
		}
	} else {
		sim.Reset(adv, mk)
	}
	res := sim.Run()
	complete := true
	for _, s := range cfg.Sources {
		if !glues[s].srcDone {
			panic(fmt.Sprintf("abfs: source %d never completed its echo", s))
		}
		if glues[s].frontier {
			complete = false
		}
	}
	return Result{Result: res, Complete: complete}, sim
}

// FullResult aggregates the doubling iterations of the complete BFS.
type FullResult struct {
	// Outputs is the final iteration's per-node result.
	Outputs map[graph.NodeID]any
	// Time and Msgs sum the iterations (sequential composition).
	Time float64
	Msgs uint64
	// Iterations is the number of doubling rounds executed.
	Iterations int
	// FinalThreshold is the τ of the last iteration.
	FinalThreshold int
}

// Full runs the complete asynchronous (multi-source) BFS of Theorems
// 4.23/4.24: thresholds 1, 2, 4, … until the Approach-2 frontier
// convergecast reports no unreached neighbor anywhere.
func Full(g *graph.Graph, sources []graph.NodeID, adv async.Adversary) FullResult {
	return FullMode(g, sources, adv, async.ModeAuto)
}

// FullMode is Full with an explicit engine execution mode. One simulation
// engine serves every doubling iteration (rearmed with Sim.Reset between
// them), and intermediate iterations run with dense outputs — only the
// winning iteration's outputs are decoded into the result map.
func FullMode(g *graph.Graph, sources []graph.NodeID, adv async.Adversary,
	mode async.ExecutionMode) FullResult {
	out := FullResult{}
	var sim *async.Sim
	for tau := 1; ; tau *= 2 {
		var res Result
		res, sim = thresholdedOn(sim, Config{Graph: g, Sources: sources,
			Threshold: tau, Adversary: adv, Mode: mode}, true)
		out.Iterations++
		out.Time += res.Time
		out.Msgs += res.Msgs
		out.FinalThreshold = tau
		if res.Complete {
			out.Outputs = res.DecodedOutputs()
			return out
		}
		if tau > 4*g.N() {
			panic("abfs: doubling ran away — frontier bit broken")
		}
	}
}
