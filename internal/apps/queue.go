package apps

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/syncrun"
	"repro/internal/wire"
)

// sendQueue serializes an algorithm's sends to one message per neighbor
// per pulse (the CONGEST link capacity). Queued messages drain over
// subsequent pulses: sending at pulse p wakes the node at p+1 even without
// receptions (the event-driven model's send-trigger, §5.1), so draining
// needs no clock. Algorithms that may address several cluster trees over
// the same edge in one pulse route every send through a queue.
type sendQueue struct {
	q map[graph.NodeID][]wire.Body
}

// Send enqueues body for neighbor `to`.
func (s *sendQueue) Send(to graph.NodeID, body wire.Body) {
	if s.q == nil {
		s.q = make(map[graph.NodeID][]wire.Body)
	}
	s.q[to] = append(s.q[to], body)
}

// Flush transmits at most one queued message per neighbor. Call it exactly
// once at the end of every Init/Pulse.
func (s *sendQueue) Flush(n syncrun.API) {
	if len(s.q) == 0 {
		return
	}
	targets := make([]graph.NodeID, 0, len(s.q))
	for to := range s.q {
		targets = append(targets, to)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	for _, to := range targets {
		buf := s.q[to]
		n.Send(to, buf[0])
		if len(buf) == 1 {
			delete(s.q, to)
		} else {
			s.q[to] = buf[1:]
		}
	}
}

// Empty reports whether nothing is queued.
func (s *sendQueue) Empty() bool { return len(s.q) == 0 }
