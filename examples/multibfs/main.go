// Multi-source BFS (Theorem 4.24): k replica servers sit in a data-center
// grid; every rack must find its closest replica. The complete
// asynchronous BFS terminates in Õ(D1) time — governed by the distance to
// the closest source, not the network diameter — which this example shows
// by sweeping the replica count.
package main

import (
	"fmt"

	dsync "repro"
	"repro/internal/apps"
)

func main() {
	g := dsync.Grid(9, 9)
	fmt.Printf("grid 9x9: n=%d m=%d D=%d\n", g.N(), g.M(), g.Diameter())

	sets := [][]dsync.NodeID{
		{0},                // one replica in a corner
		{0, 80},            // two opposite corners
		{0, 8, 72, 80},     // all four corners
		{0, 8, 72, 80, 40}, // corners plus center
	}
	for _, sources := range sets {
		d1 := g.BallRadius(sources)
		res := dsync.AsyncBFS(g, sources, dsync.RandomDelays(3))
		fmt.Printf("replicas=%d D1=%2d -> iterations=%d time=%8.1f msgs=%d\n",
			len(sources), d1, res.Iterations, res.Time, res.Msgs)
	}

	// Show a few assignments from the last run.
	res := dsync.AsyncBFS(g, sets[3], dsync.RandomDelays(3))
	for _, v := range []int{4, 36, 44, 76} {
		if out, ok := res.Outputs[dsync.NodeID(v)].(apps.TBFSResult); ok {
			fmt.Printf("rack %2d -> replica %2d at distance %d\n", v, out.Source, out.Dist)
		}
	}
}
