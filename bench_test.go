package dsync

import (
	"io"
	"os"
	"testing"

	"repro/internal/bench"
)

// Each benchmark regenerates one experiment table from DESIGN.md's index.
// The table prints once (to stdout) regardless of b.N; iterations beyond
// the first re-run the workload silently so -benchtime still measures it.

func runExperiment(b *testing.B, fn func(io.Writer)) {
	b.Helper()
	fn(os.Stdout)
	for i := 1; i < b.N; i++ {
		fn(io.Discard)
	}
}

func BenchmarkE1SynchronizerOverheads(b *testing.B) {
	runExperiment(b, bench.E1SynchronizerOverheads)
}

func BenchmarkE2BFSTimeVsD(b *testing.B) { runExperiment(b, bench.E2BFSTimeVsD) }

func BenchmarkE3BFSMessagesVsM(b *testing.B) { runExperiment(b, bench.E3BFSMessagesVsM) }

func BenchmarkE4MultiSourceD1(b *testing.B) { runExperiment(b, bench.E4MultiSourceD1) }

func BenchmarkE5LeaderElection(b *testing.B) { runExperiment(b, bench.E5LeaderElection) }

func BenchmarkE6MST(b *testing.B) { runExperiment(b, bench.E6MST) }

func BenchmarkE7RegistrationCongestion(b *testing.B) {
	runExperiment(b, bench.E7RegistrationCongestion)
}

func BenchmarkE8AlphaBlowup(b *testing.B) { runExperiment(b, bench.E8AlphaBlowup) }

func BenchmarkE9AdversaryRobustness(b *testing.B) {
	runExperiment(b, bench.E9AdversaryRobustness)
}

func BenchmarkE10CoverQuality(b *testing.B) { runExperiment(b, bench.E10CoverQuality) }

func BenchmarkE11StagePipelining(b *testing.B) { runExperiment(b, bench.E11StagePipelining) }

func BenchmarkE12GatherCost(b *testing.B) { runExperiment(b, bench.E12GatherCost) }

func BenchmarkE13EngineThroughput(b *testing.B) {
	runExperiment(b, bench.E13EngineThroughput)
}

func BenchmarkE14AsyncEngineThroughput(b *testing.B) {
	runExperiment(b, bench.E14AsyncEngineThroughput)
}

func BenchmarkE15SpeculativeExecution(b *testing.B) {
	runExperiment(b, bench.E15SpeculativeExecution)
}

func BenchmarkE16Footprint(b *testing.B) { runExperiment(b, bench.E16Footprint) }
