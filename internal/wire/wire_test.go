package wire

import (
	"testing"
	"unsafe"
)

// TestBodyIsPointerFree pins the property the engines' performance depends
// on: a Body (and anything embedding it by value) must contain no
// pointers, so inbox/outbox/event buffers are noscan and copies pay no
// write barriers.
func TestBodyIsPointerFree(t *testing.T) {
	type probe struct{ b Body }
	if unsafe.Sizeof(probe{}) != unsafe.Sizeof(Body{}) {
		t.Skip("padding changed; re-derive")
	}
	// reflect has no direct "contains pointers" query; rely on the
	// compile-time shape instead: every field is a scalar or Seg (two
	// scalars). This test exists to fail loudly if someone adds a slice,
	// map, or pointer field back.
	if unsafe.Sizeof(Body{}) != 48 {
		t.Fatalf("Body is %d bytes, want 48 (Kind+Sub+P header, 4 words, Seg handle)", unsafe.Sizeof(Body{}))
	}
	if unsafe.Sizeof(Seg{}) != 8 {
		t.Fatalf("Seg is %d bytes, want 8", unsafe.Sizeof(Seg{}))
	}
}

func TestFrameUnframeRoundTrip(t *testing.T) {
	var a Arena
	seg, view := a.Alloc(3)
	view[0], view[1], view[2] = 9, 8, 7
	inner := Body{Kind: 7, A: 1, B: -2, C: 3, D: 1 << 40, Seg: seg}
	outer := Frame(3, 12, inner)
	if outer.Kind != 3 || outer.Sub != 7 || outer.P != 12 {
		t.Fatalf("frame fields: %+v", outer)
	}
	pulse, got := outer.Unframe()
	if pulse != 12 {
		t.Fatalf("pulse = %d, want 12", pulse)
	}
	if !Equal(got, inner) {
		t.Fatalf("round trip lost data: %+v vs %+v", got, inner)
	}
	if d := a.Data(got.Seg); len(d) != 3 || d[0] != 9 || d[2] != 7 {
		t.Fatalf("segment through framing = %v", d)
	}
}

func TestFrameRejectsNested(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double framing")
		}
	}()
	Frame(1, 0, Frame(2, 3, Body{Kind: 4}))
}

func TestBoolWords(t *testing.T) {
	if !ToBool(FromBool(true)) || ToBool(FromBool(false)) {
		t.Fatal("bool words do not round-trip")
	}
}

func TestArenaAllocDataRelease(t *testing.T) {
	var a Arena
	s1, v1 := a.Alloc(5)
	if s1.Len() != 5 || len(v1) != 5 {
		t.Fatalf("len = %d/%d, want 5", s1.Len(), len(v1))
	}
	for i := range v1 {
		v1[i] = int32(i + 1)
	}
	if d := a.Data(s1); d[4] != 5 {
		t.Fatalf("Data view = %v", d)
	}
	a.Release(s1)
	s2, v2 := a.Alloc(7) // same class: must reuse s1's storage
	if s2.off != s1.off {
		t.Fatalf("same-class alloc after release got fresh storage (off %d vs %d)", s2.off, s1.off)
	}
	for i, v := range v2 {
		if v != 0 {
			t.Fatalf("recycled segment not zeroed at %d: %d", i, v)
		}
	}
	carves, rec := a.Stats()
	if carves != 1 || rec != 1 {
		t.Fatalf("stats = %d carves, %d recycled; want 1, 1", carves, rec)
	}
}

func TestArenaEdgeCases(t *testing.T) {
	var a Arena
	if s, v := a.Alloc(0); !s.IsZero() || v != nil {
		t.Fatal("Alloc(0) must return the zero Seg")
	}
	if s, v := a.Alloc(-3); !s.IsZero() || v != nil {
		t.Fatal("Alloc(<0) must return the zero Seg")
	}
	a.Release(Seg{}) // must not panic
	if d := a.Data(Seg{}); d != nil {
		t.Fatal("Data of the zero Seg must be nil")
	}
	one, _ := a.Alloc(1)
	if one.Len() != 1 {
		t.Fatalf("Alloc(1) len = %d", one.Len())
	}
	// Oversize class: gets a dedicated chunk, still recycles.
	big, bv := a.Alloc(1 << 18)
	if len(bv) != 1<<18 {
		t.Fatalf("oversize len = %d", len(bv))
	}
	bv[1<<18-1] = 42
	a.Release(big)
	big2, bv2 := a.Alloc(1 << 18)
	if big2.off != big.off || bv2[1<<18-1] != 0 {
		t.Fatal("oversize segment not recycled and zeroed")
	}
}

func TestArenaViewsStayValidAcrossGrowth(t *testing.T) {
	var a Arena
	s1, v1 := a.Alloc(4)
	v1[0] = 77
	// Force many new chunks.
	for i := 0; i < 40; i++ {
		a.Alloc(1 << 15)
	}
	if d := a.Data(s1); d[0] != 77 {
		t.Fatalf("early view invalidated by growth: %v", d[:1])
	}
	if &v1[0] != &a.Data(s1)[0] {
		t.Fatal("chunk storage moved")
	}
}

func TestArenaSteadyStateStopsAllocating(t *testing.T) {
	var a Arena
	for i := 0; i < 100; i++ {
		s, _ := a.Alloc(9)
		a.Release(s)
	}
	carves, rec := a.Stats()
	if carves != 1 {
		t.Fatalf("steady-state loop carved %d times, want 1", carves)
	}
	if rec != 99 {
		t.Fatalf("recycled %d times, want 99", rec)
	}
}

// TestArenaReset verifies the engine-reuse contract: Reset invalidates
// handles, retains standard chunks (no fresh carving for a repeat of the
// same workload), drops oversize chunks, and hands out zeroed segments
// again.
func TestArenaReset(t *testing.T) {
	var a Arena
	// A workload with a few size classes plus one oversize segment.
	fill := func() []Seg {
		var segs []Seg
		for i := 0; i < 50; i++ {
			s, view := a.Alloc(1 << (i % 6))
			for j := range view {
				view[j] = int32(i + 1)
			}
			segs = append(segs, s)
		}
		s, _ := a.Alloc(1 << 17) // oversize: dedicated chunk
		return append(segs, s)
	}
	fill()
	carves1, _ := a.Stats()
	a.Reset()
	segs := fill()
	carves2, _ := a.Stats()
	// The second fill re-carves the SAME standard chunk storage: only the
	// oversize chunk (dropped at Reset) forces a fresh allocation.
	if carves2-carves1 != uint64(len(segs)) {
		t.Fatalf("post-reset fill carved %d times, want %d (bump-carving reused chunks)",
			carves2-carves1, len(segs))
	}
	for _, s := range segs[:len(segs)-1] {
		view := a.Data(s)
		// fill wrote i+1 everywhere; a dirty reused chunk would have shown
		// stale values at Alloc time (Alloc must return zeroed storage —
		// checked below with a third cycle).
		if len(view) == 0 {
			t.Fatal("empty view after reset")
		}
	}
	a.Reset()
	s, view := a.Alloc(32)
	for j, w := range view {
		if w != 0 {
			t.Fatalf("reused segment word %d = %d, want 0", j, w)
		}
	}
	a.Release(s)
}

// TestArenaOversizeBoundaryClass pins the c == chunkBits boundary: a
// dedicated oversize chunk whose size equals a standard chunk's must never
// be re-carved by the bump cursor while its segment is live, nor survive
// Reset as a "standard" chunk.
func TestArenaOversizeBoundaryClass(t *testing.T) {
	var a Arena
	// Dedicated chunk of exactly 1<<chunkBits words (class == chunkBits).
	big, bigView := a.Alloc(1 << chunkBits)
	for i := range bigView {
		bigView[i] = 7
	}
	// Exhaust standard chunks so the bump cursor must advance repeatedly —
	// it must skip the oversize chunk, not re-carve it.
	for i := 0; i < 3*(1<<(chunkBits-10)); i++ {
		_, view := a.Alloc(1 << 10)
		for j := range view {
			view[j] = -1
		}
	}
	for i, w := range a.Data(big) {
		if w != 7 {
			t.Fatalf("oversize segment word %d = %d: bump cursor re-carved a live dedicated chunk", i, w)
		}
	}
	a.Reset()
	// The dedicated chunk is dropped at Reset; fresh allocations must be
	// zeroed regardless of which retained chunk serves them.
	for i := 0; i < 3*(1<<(chunkBits-10)); i++ {
		_, view := a.Alloc(1 << 10)
		for j, w := range view {
			if w != 0 {
				t.Fatalf("post-reset alloc %d word %d = %d, want 0", i, j, w)
			}
		}
	}
}

func TestArenaLiveAndReleaseAll(t *testing.T) {
	var a Arena
	if a.Live() != 0 {
		t.Fatalf("fresh arena live = %d", a.Live())
	}
	var segs []Seg
	for i := 0; i < 5; i++ {
		s, _ := a.Alloc(8)
		segs = append(segs, s)
	}
	if a.Live() != 5 {
		t.Fatalf("live after 5 allocs = %d", a.Live())
	}
	a.Release(segs[4])
	if a.Live() != 4 {
		t.Fatalf("live after one release = %d", a.Live())
	}
	// ReleaseAll skips zero Segs and releases the rest under one lock.
	a.ReleaseAll([]Seg{segs[0], {}, segs[1], {}})
	if a.Live() != 2 {
		t.Fatalf("live after batch release = %d", a.Live())
	}
	// Released storage must actually be recycled.
	s, _ := a.Alloc(8)
	if s.off != segs[1].off && s.off != segs[0].off && s.off != segs[4].off {
		t.Fatalf("batch-released segment not recycled (off %d)", s.off)
	}
	a.ReleaseAll(nil) // must not panic
	a.Reset()
	if a.Live() != 0 {
		t.Fatalf("live after Reset = %d", a.Live())
	}
}
