package core

import (
	"testing"
	"testing/quick"

	"repro/internal/async"
	"repro/internal/graph"
	"repro/internal/syncrun"
	"repro/internal/wire"
)

// Tiny-graph edge cases: the synchronizer must handle K2, stars, and
// graphs where every node is an originator.
func TestSynchronizerK2(t *testing.T) {
	g := graph.Path(2)
	mk := func(graph.NodeID) syncrun.Handler { return &pingAlgo{rounds: 6} }
	syncRes := syncrun.New(g, mk).Run()
	res := Synchronize(Config{Graph: g, Bound: 8, Adversary: async.SeededRandom{Seed: 1}}, mk)
	for v, want := range syncRes.Outputs {
		if res.Outputs[v] != want {
			t.Fatalf("node %d: %v vs %v", v, res.Outputs[v], want)
		}
	}
}

func TestSynchronizerAllOriginators(t *testing.T) {
	// Every node floods at pulse 0 (all-originator barrier stress).
	g := graph.Grid(3, 4)
	mk := func(id graph.NodeID) syncrun.Handler { return &allInit{} }
	syncRes := syncrun.New(g, mk).Run()
	for _, adv := range async.StandardAdversaries(g.N(), 71) {
		res := Synchronize(Config{Graph: g, Bound: 4, Adversary: adv}, mk)
		if len(res.Outputs) != len(syncRes.Outputs) {
			t.Fatalf("%s: outputs %d vs %d", adv.Name(), len(res.Outputs), len(syncRes.Outputs))
		}
		for v, want := range syncRes.Outputs {
			if res.Outputs[v] != want {
				t.Fatalf("%s: node %d got %v want %v", adv.Name(), v, res.Outputs[v], want)
			}
		}
	}
}

// allInit: every node announces its ID to all neighbors at pulse 0 and
// outputs the sum of IDs heard at pulse 1.
type allInit struct{ sum int }

func (h *allInit) Init(n syncrun.API) {
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, wire.Body{Kind: tkPing, A: int64(n.ID())})
	}
}

func (h *allInit) Pulse(n syncrun.API, p int, recvd []syncrun.Incoming) {
	if p != 1 {
		return
	}
	for _, in := range recvd {
		h.sum += int(in.Body.A)
	}
	n.Output(h.sum)
}

func TestSynchronizerStar(t *testing.T) {
	g := graph.Star(9)
	mk := func(graph.NodeID) syncrun.Handler { return &bfsAlgo{src: 0} }
	syncRes := syncrun.New(g, mk).Run()
	res := Synchronize(Config{Graph: g, Bound: 4, Adversary: async.Flaky{Seed: 3}}, mk)
	for v, want := range syncRes.Outputs {
		if res.Outputs[v] != want {
			t.Fatalf("node %d: %v vs %v", v, res.Outputs[v], want)
		}
	}
}

// Property: on random graphs with random seeds, the synchronized
// multi-source BFS always matches the lockstep run.
func TestSynchronizerRandomSweepProperty(t *testing.T) {
	f := func(rawSeed uint16, rawN uint8) bool {
		n := 8 + int(rawN)%16
		g := graph.RandomConnected(n, n+n/2, uint64(rawSeed)+1)
		sources := []graph.NodeID{0, graph.NodeID(n / 2)}
		mk := func(graph.NodeID) syncrun.Handler { return &msBFSAlgo{sources: sources} }
		syncRes := syncrun.New(g, mk).Run()
		res := Synchronize(Config{Graph: g, Bound: syncRes.Rounds + 2,
			Adversary: async.SeededRandom{Seed: uint64(rawSeed) * 13}}, mk)
		if len(res.Outputs) != len(syncRes.Outputs) {
			return false
		}
		for v, want := range syncRes.Outputs {
			if res.Outputs[v] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// A silent algorithm (no originators) must terminate with no messages.
func TestSynchronizerSilentAlgorithm(t *testing.T) {
	g := graph.Path(6)
	mk := func(graph.NodeID) syncrun.Handler { return &silentAlgo{} }
	res := Synchronize(Config{Graph: g, Bound: 2, Adversary: async.Fixed{D: 1}}, mk)
	// Barrier traffic only; no algorithm messages.
	if res.PerProto[ProtoAlgo] != 0 {
		t.Fatalf("silent algorithm sent %d algo messages", res.PerProto[ProtoAlgo])
	}
	if res.Outputs[3] != "quiet" {
		t.Fatalf("output %v", res.Outputs[3])
	}
}

type silentAlgo struct{}

func (h *silentAlgo) Init(n syncrun.API)                         { n.Output("quiet") }
func (h *silentAlgo) Pulse(syncrun.API, int, []syncrun.Incoming) {}
