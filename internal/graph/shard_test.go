package graph

import (
	"reflect"
	"testing"
)

// Golden pins for the contiguous partitioner on the implicit-generator
// suite. The cuts are load-bearing: the shard coordinator ships them to
// workers and the cross-shard protocol's determinism proof assumes every
// process derives the identical partition, so a drifting cut means the
// partitioner stopped being a pure function of the graph. The pinned
// values also document that refinement finds the structural seams: grid3d
// cuts land on whole z-planes (144 boundary edges = one 12x12 plane) and
// ring-of-cliques cuts land between cliques (2 severed ring edges per
// cut).
func TestPartitionGolden(t *testing.T) {
	cases := []struct {
		spec  string
		k     int
		cuts  []NodeID
		cross int // directed boundary links over the whole partition
		// per-shard boundary-table pins: count and sum of Link+Dst over
		// all entries (a cheap digest that moves if any entry moves)
		boundary []int
		bsum     []int
	}{
		{"grid3d:12x12x12", 2, []NodeID{0, 864, 1728}, 288,
			[]int{144, 144}, []int{760512, 172320}},
		{"grid3d:12x12x12", 4, []NodeID{0, 432, 864, 1296, 1728}, 864,
			[]int{144, 288, 288, 144}, []int{345792, 538848, 663264, 234528}},
		{"pa:n=2000,m=3,seed=7", 2, []NodeID{0, 382, 2000}, 5768,
			[]int{2884, 2884}, []int{10488547, 10196672}},
		{"ring:k=50,c=6", 2, []NodeID{0, 132, 300}, 4,
			[]int{2, 2}, []int{1139, 1021}},
		{"ring:k=50,c=6", 4, []NodeID{0, 66, 144, 216, 300}, 8,
			[]int{2, 2, 2, 2}, []int{721, 624, 742, 657}},
	}
	for _, c := range cases {
		g, err := FromSpec(c.spec)
		if err != nil {
			t.Fatal(err)
		}
		p := PartitionContiguous(g, c.k)
		if !reflect.DeepEqual(p.Cuts(), c.cuts) {
			t.Errorf("%s k=%d: cuts %v, want %v", c.spec, c.k, p.Cuts(), c.cuts)
			continue
		}
		if got := p.CrossLinks(g); got != c.cross {
			t.Errorf("%s k=%d: %d cross links, want %d", c.spec, c.k, got, c.cross)
		}
		for s := 0; s < c.k; s++ {
			lo, hi := p.Range(s)
			sub := g.Subrange(lo, hi)
			b := sub.BoundaryLinks()
			sum := 0
			for _, bl := range b {
				sum += int(bl.Link) + int(bl.Dst)
			}
			if len(b) != c.boundary[s] || sum != c.bsum[s] {
				t.Errorf("%s k=%d shard %d: boundary table (%d, digest %d), want (%d, %d)",
					c.spec, c.k, s, len(b), sum, c.boundary[s], c.bsum[s])
			}
		}
	}
}

// TestSubrangeView checks that a Subrange view answers every accessor the
// engines use identically to the whole graph, modulo the local link
// renumbering: Neighbors/Degree/LinkBetween/LinkOffset/LinkSrc/LinkDst
// agree after shifting links by the shard's first global link, and
// ReverseLink round-trips for interior links while boundary links report
// -1.
func TestSubrangeView(t *testing.T) {
	for _, spec := range []string{"grid3d:7x5x3", "pa:n=300,m=2,seed=3", "ring:k=9,c=4"} {
		g, err := FromSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		p := PartitionContiguous(g, 3)
		for s := 0; s < p.K(); s++ {
			lo, hi := p.Range(s)
			sub := g.Subrange(lo, hi)
			if sub.N() != g.N() || sub.NLocal() != int(hi-lo) || sub.NodeBase() != lo || !sub.Sub() {
				t.Fatalf("%s shard %d: window N=%d NLocal=%d base=%d", spec, s, sub.N(), sub.NLocal(), sub.NodeBase())
			}
			shift := int(g.LinkOffset(lo))
			for v := lo; v < hi; v++ {
				if sub.Degree(v) != g.Degree(v) {
					t.Fatalf("%s shard %d: Degree(%d) = %d, want %d", spec, s, v, sub.Degree(v), g.Degree(v))
				}
				if got, want := int(sub.LinkOffset(v))+shift, int(g.LinkOffset(v)); got != want {
					t.Fatalf("%s shard %d: LinkOffset(%d) local+shift = %d, want %d", spec, s, v, got, want)
				}
				for i, nb := range sub.Neighbors(v) {
					wnb := g.Neighbors(v)[i]
					if nb.Node != wnb.Node || int(nb.Link)+shift != int(wnb.Link) {
						t.Fatalf("%s shard %d: Neighbors(%d)[%d] = %+v, want node %d link %d",
							spec, s, v, i, nb, wnb.Node, int(wnb.Link)-shift)
					}
					if got := sub.LinkBetween(v, nb.Node); got != nb.Link {
						t.Fatalf("%s shard %d: LinkBetween(%d,%d) = %d, want %d", spec, s, v, nb.Node, got, nb.Link)
					}
					if got := sub.LinkSrc(nb.Link); got != v {
						t.Fatalf("%s shard %d: LinkSrc(%d) = %d, want %d", spec, s, nb.Link, got, v)
					}
					if got := sub.LinkDst(nb.Link); got != nb.Node {
						t.Fatalf("%s shard %d: LinkDst(%d) = %d, want %d", spec, s, nb.Link, got, nb.Node)
					}
					rv := sub.ReverseLink(nb.Link)
					if nb.Node >= lo && nb.Node < hi {
						if int(rv)+shift != int(g.ReverseLink(wnb.Link)) {
							t.Fatalf("%s shard %d: ReverseLink(%d) = %d, want %d",
								spec, s, nb.Link, rv, int(g.ReverseLink(wnb.Link))-shift)
						}
					} else if rv != -1 {
						t.Fatalf("%s shard %d: boundary ReverseLink(%d) = %d, want -1", spec, s, nb.Link, rv)
					}
				}
			}
			// The boundary table and the rev == -1 links must be the same set.
			nb := 0
			for l := 0; l < sub.Links(); l++ {
				if sub.ReverseLink(LinkID(l)) < 0 {
					nb++
				}
			}
			if b := sub.BoundaryLinks(); len(b) != nb {
				t.Fatalf("%s shard %d: %d boundary entries, %d rev=-1 links", spec, s, len(b), nb)
			}
			// Exact closed-form footprint: 12 B per flat entry + the 4 B
			// reverse table + the offset column.
			want := int64(sub.Links())*16 + int64(sub.NLocal()+1)*4
			if got := sub.Footprint(); got != want {
				t.Fatalf("%s shard %d: Footprint() = %d, want %d", spec, s, got, want)
			}
		}
	}
}

// TestPartitionOwner checks Owner against the definition on every node,
// and the shipped-cuts round trip.
func TestPartitionOwner(t *testing.T) {
	g, err := FromSpec("pa:n=500,m=3,seed=11")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 3, 7} {
		p := PartitionContiguous(g, k)
		q := PartitionFromCuts(p.Cuts())
		if !reflect.DeepEqual(p.Cuts(), q.Cuts()) {
			t.Fatalf("k=%d: cuts round trip %v -> %v", k, p.Cuts(), q.Cuts())
		}
		if p.K() != k {
			t.Fatalf("K() = %d, want %d", p.K(), k)
		}
		for v := NodeID(0); int(v) < g.N(); v++ {
			o := p.Owner(v)
			if lo, hi := p.Range(o); v < lo || v >= hi {
				t.Fatalf("k=%d: Owner(%d) = %d but range is [%d,%d)", k, v, o, lo, hi)
			}
		}
	}
	// Total link mass per shard stays within 2x of ideal on this skewed
	// graph: the balance window bounds how far refinement can wander.
	p := PartitionContiguous(g, 4)
	ideal := g.Links() / 4
	for s := 0; s < 4; s++ {
		lo, hi := p.Range(s)
		mass := int(g.LinkOffset(hi-1)) + g.Degree(hi-1) - int(g.LinkOffset(lo))
		if mass > 2*ideal {
			t.Errorf("shard %d holds %d links, ideal %d: balance window violated", s, mass, ideal)
		}
	}
}
