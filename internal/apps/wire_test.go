package apps

import (
	"testing"

	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/wire"
)

// TestLeaderCodecRoundTrips covers both leader-election kinds.
func TestLeaderCodecRoundTrips(t *testing.T) {
	ups := []leadUp{
		{Level: 0, Cluster: 0, Min: 0},
		{Level: 3, Cluster: 17, Min: 42},
		{Level: 9, Cluster: 1 << 20, Min: noCandidate},
	}
	for _, m := range ups {
		b := encLeadUp(m)
		if b.Kind != kindLeadUp {
			t.Fatalf("leadUp kind = %d", b.Kind)
		}
		if got := decLeadUp(b); got != m {
			t.Fatalf("leadUp round trip: %+v vs %+v", got, m)
		}
	}
	downs := []leadDown{
		{Level: 0, Cluster: 0, Min: 0, IsLeader: false},
		{Level: 5, Cluster: 9, Min: 3, IsLeader: true},
	}
	for _, m := range downs {
		b := encLeadDown(m)
		if b.Kind != kindLeadDown {
			t.Fatalf("leadDown kind = %d", b.Kind)
		}
		if got := decLeadDown(b); got != m {
			t.Fatalf("leadDown round trip: %+v vs %+v", got, m)
		}
	}
}

// TestMSTEdgeCodecRoundTrips covers the packed MOE/decision payloads,
// including the None identity whose phase shares a word with the flag.
func TestMSTEdgeCodecRoundTrips(t *testing.T) {
	cases := []struct {
		phase int
		e     mstEdge
	}{
		{1, mstEdge{W: 7, U: 0, V: 1}},
		{12, mstEdge{W: -1 << 40, U: 30000, V: 2}},
		{3, mstEdge{None: true}},
		{1 << 20, mstEdge{None: true}},
	}
	for _, k := range []wire.Kind{kindMSTMOE, kindMSTDecision} {
		for _, tc := range cases {
			b := encMSTEdge(k, tc.phase, tc.e)
			if b.Kind != k {
				t.Fatalf("kind = %d, want %d", b.Kind, k)
			}
			phase, e := decMSTEdge(b)
			if phase != tc.phase || e != tc.e {
				t.Fatalf("round trip: (%d, %+v) vs (%d, %+v)", phase, e, tc.phase, tc.e)
			}
		}
	}
}

// FuzzLeaderCodec fuzzes the leadDown codec (the widest payload: four
// words including a flag).
func FuzzLeaderCodec(f *testing.F) {
	f.Add(0, int64(0), int64(0), false)
	f.Add(7, int64(123), int64(5), true)
	f.Fuzz(func(t *testing.T, level int, cluster, min int64, isLeader bool) {
		if level < 0 {
			return
		}
		m := leadDown{Level: level, Cluster: cover.ClusterID(cluster), Min: graph.NodeID(min), IsLeader: isLeader}
		if got := decLeadDown(encLeadDown(m)); got != m {
			t.Fatalf("round trip: %+v vs %+v", got, m)
		}
	})
}

// FuzzMSTEdgeCodec fuzzes the packed edge payload: the phase/None packing
// must never lose or invent an edge.
func FuzzMSTEdgeCodec(f *testing.F) {
	f.Add(1, int64(9), int64(0), int64(1), false)
	f.Add(30, int64(-1), int64(7), int64(8), true)
	f.Fuzz(func(t *testing.T, phase int, w, u, v int64, none bool) {
		if phase < 0 || phase > 1<<40 {
			return
		}
		e := mstEdge{W: w, U: graph.NodeID(u), V: graph.NodeID(v), None: none}
		if none {
			e = mstEdge{None: true} // canonical identity: W/U/V are meaningless
		}
		gotPhase, gotE := decMSTEdge(encMSTEdge(kindMSTMOE, phase, e))
		if gotPhase != phase || gotE != e {
			t.Fatalf("round trip: (%d, %+v) vs (%d, %+v)", gotPhase, gotE, phase, e)
		}
	})
}
