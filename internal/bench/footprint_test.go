package bench

import "testing"

// Pinned resident footprints on grid3d:32x32x32 (n=32768, 190464 directed
// links), measured by the RetainedBytes probe after one completed flood.
// The pins are the values of the compact 32-bit layout this package
// shipped with BENCH_6; the tests fail at >10% growth so a regression in
// any per-link or per-node table is caught before it multiplies by ten
// million nodes. If a deliberate layout change moves a number, re-measure
// with E16 and update the pin in the same commit.
const (
	pinGraphBytesPerLink = 20.8  // CSR: target+link+reverse+weights+offsets
	pinAsyncBytesPerLink = 28.4  // outboxes, seq stamps, wheel, busy/boxes
	pinSyncBytesPerNode  = 101.0 // pulse-buffer cursors, stamps, bitmaps

	// benchFiveEraBytesPerLink is the BENCH_5-era resident cost of the
	// graph plane plus the async engine per directed link (≈52 B/link of
	// 64-bit Neighbor/EdgeID graph tables + ≈48 B/link of eagerly allocated
	// per-link engine state). The compact layout must keep its ≥1.8×
	// advantage over it.
	benchFiveEraBytesPerLink = 100.0
	footprintHeadroom        = 1.10
)

func TestFootprintPins(t *testing.T) {
	if testing.Short() {
		t.Skip("footprint probe")
	}
	if raceEnabled {
		t.Skip("race shadow state inflates allocation sizes; pins hold on uninstrumented builds")
	}
	const spec = "grid3d:32x32x32"
	g := mustSpec(spec)
	links, n := float64(g.Links()), float64(g.N())

	gBytes, err := GraphRetainedBytes(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(gBytes) / links; got > pinGraphBytesPerLink*footprintHeadroom {
		t.Errorf("graph plane retains %.2f B/link, pin %.1f (+10%% ceiling %.1f)",
			got, pinGraphBytesPerLink, pinGraphBytesPerLink*footprintHeadroom)
	}
	aBytes := AsyncRetainedBytes(g)
	if got := float64(aBytes) / links; got > pinAsyncBytesPerLink*footprintHeadroom {
		t.Errorf("async engine retains %.2f B/link, pin %.1f (+10%% ceiling %.1f)",
			got, pinAsyncBytesPerLink, pinAsyncBytesPerLink*footprintHeadroom)
	}
	sBytes := SyncRetainedBytes(g)
	if got := float64(sBytes) / n; got > pinSyncBytesPerNode*footprintHeadroom {
		t.Errorf("lockstep engine retains %.2f B/node, pin %.1f (+10%% ceiling %.1f)",
			got, pinSyncBytesPerNode, pinSyncBytesPerNode*footprintHeadroom)
	}

	// The headline acceptance bar: graph + async engine resident bytes per
	// directed link must stay at least 1.8x below the BENCH_5-era layout.
	if got := float64(gBytes+aBytes) / links; got*1.8 > benchFiveEraBytesPerLink {
		t.Errorf("graph+async retain %.2f B/link; 1.8x bar requires <= %.2f",
			got, benchFiveEraBytesPerLink/1.8)
	}
}

// TestGeneratorAllocPins pins the allocation count of each implicit
// generator: CSR arrays are exactly preallocated from closed-form counts,
// so construction is a fixed handful of allocations regardless of size —
// no per-edge appends, no intermediate adjacency maps. A drifting count
// means an intermediate structure crept back in.
func TestGeneratorAllocPins(t *testing.T) {
	cases := []struct {
		spec string
		max  float64
	}{
		{"grid3d:16x16x16", 12},
		{"pa:n=2000,m=3,seed=7", 16},
		{"ring:k=50,c=6", 13},
	}
	for _, c := range cases {
		if got := testing.AllocsPerRun(5, func() { mustSpec(c.spec) }); got > c.max {
			t.Errorf("%s: %v allocs per build, pin %v", c.spec, got, c.max)
		}
	}
}
