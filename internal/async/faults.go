package async

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// FaultSchedule is a seeded, pure-function fault plane: node crash/recover
// intervals, link up/down epochs, and per-(link, transmission) message
// drops. Every decision is a hash of (Seed, identity, epoch-or-seq) — no
// state, no clock reads — so the schedule answers identically no matter
// which execution mode, worker, or shard asks, and byte-identical runs
// stay byte-identical under faults.
//
// The crash model is a receive blackout: a node crashed at time t loses
// every data message that would arrive at t (the sender's retransmit
// budget pays for the outage), while the link-level ack channel stays
// reliable — the sender always learns the fate of an attempt. Crashes and
// link outages are epoch-granular (whole multiples of EpochLen) and
// recover on their own; drops are per-transmission and independent.
//
// The zero schedule (all probabilities zero) injects nothing; Budget then
// only matters if a probability is raised.
type FaultSchedule struct {
	// Seed keys every hash; two schedules with different seeds fault
	// different (node, epoch) and (link, seq) sets.
	Seed uint64
	// CrashP is the per-(node, epoch) crash probability in [0, 1).
	CrashP float64
	// DropP is the per-transmission message-loss probability in [0, 1).
	DropP float64
	// LinkP is the per-(undirected link, epoch) outage probability in
	// [0, 1). A down link loses data messages in both directions.
	LinkP float64
	// Budget is how many retransmissions follow a lost attempt before the
	// message surfaces as Undeliverable (total attempts = 1 + Budget).
	Budget int
	// Backoff is the base retransmit delay; attempt k waits
	// Backoff * 2^k, clamped into [adversary MinDelay, 1]. Zero means
	// DefaultBackoff.
	Backoff float64
	// EpochLen is the crash/link epoch length in normalized time units;
	// zero means 1 (the normalized delay unit τ).
	EpochLen float64
}

// DefaultBackoff is the base retransmit delay when Backoff is zero: 1/64
// of the normalized time unit, doubling per attempt.
const DefaultBackoff = 1.0 / 64

// MaxRetransmitBudget bounds Budget: event timestamps and counters stay
// sane, and an exhausted budget is reachable in bounded simulated time.
const MaxRetransmitBudget = 64

// Salts separate the three hash families.
const (
	saltCrash uint64 = 0xC5A5C5A5C5A5C5A5
	saltLink  uint64 = 0x11BB11BB11BB11BB
	saltDrop  uint64 = 0xD80FD80FD80FD80F
)

// Validate checks the schedule's parameters; engines and CLIs reject a bad
// schedule before anything runs.
func (f *FaultSchedule) Validate() error {
	check := func(name string, p float64) error {
		if math.IsNaN(p) || p < 0 || p >= 1 {
			return fmt.Errorf("faults: %s probability %g outside [0, 1)", name, p)
		}
		return nil
	}
	if err := check("crash", f.CrashP); err != nil {
		return err
	}
	if err := check("drop", f.DropP); err != nil {
		return err
	}
	if err := check("link", f.LinkP); err != nil {
		return err
	}
	if f.Budget < 0 || f.Budget > MaxRetransmitBudget {
		return fmt.Errorf("faults: retransmit budget %d outside [0, %d]", f.Budget, MaxRetransmitBudget)
	}
	if math.IsNaN(f.Backoff) || f.Backoff < 0 || f.Backoff > 1 {
		return fmt.Errorf("faults: backoff %g outside [0, 1]", f.Backoff)
	}
	if math.IsNaN(f.EpochLen) || f.EpochLen < 0 {
		return fmt.Errorf("faults: epoch length %g negative", f.EpochLen)
	}
	return nil
}

// epochLen resolves the default.
func (f *FaultSchedule) epochLen() float64 {
	if f.EpochLen == 0 {
		return 1
	}
	return f.EpochLen
}

// Epoch maps a simulation time to its fault epoch index.
func (f *FaultSchedule) Epoch(t float64) uint64 {
	if t <= 0 {
		return 0
	}
	return uint64(t / f.epochLen())
}

// rand01 maps a hash to [0, 1).
func rand01(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// CrashedEpoch reports whether node v is crashed throughout epoch e.
func (f *FaultSchedule) CrashedEpoch(v graph.NodeID, e uint64) bool {
	if f.CrashP <= 0 {
		return false
	}
	return rand01(mix(f.Seed^saltCrash, mix(uint64(uint32(v)), e))) < f.CrashP
}

// Crashed reports whether node v is crashed at time t.
func (f *FaultSchedule) Crashed(v graph.NodeID, t float64) bool {
	return f.CrashedEpoch(v, f.Epoch(t))
}

// LinkDownEpoch reports whether the undirected link {a, b} is down
// throughout epoch e.
func (f *FaultSchedule) LinkDownEpoch(a, b graph.NodeID, e uint64) bool {
	if f.LinkP <= 0 {
		return false
	}
	if a > b {
		a, b = b, a
	}
	key := uint64(uint32(a))<<32 | uint64(uint32(b))
	return rand01(mix(f.Seed^saltLink, mix(key, e))) < f.LinkP
}

// LinkDown reports whether the undirected link {a, b} is down at time t.
func (f *FaultSchedule) LinkDown(a, b graph.NodeID, t float64) bool {
	return f.LinkDownEpoch(a, b, f.Epoch(t))
}

// Drop reports whether transmission seq on the directed link from→to is
// dropped on the wire (independent of crashes and link epochs).
func (f *FaultSchedule) Drop(from, to graph.NodeID, seq uint64) bool {
	if f.DropP <= 0 {
		return false
	}
	key := uint64(uint32(from))<<32 | uint64(uint32(to))
	return rand01(mix(f.Seed^saltDrop, mix(key, seq))) < f.DropP
}

// Lost is the engine's single dispatch-time question: is the transmission
// with sequence seq on from→to, arriving at time tArrive, lost — dropped
// on the wire, addressed to a crashed receiver, or riding a down link?
func (f *FaultSchedule) Lost(from, to graph.NodeID, seq uint64, tArrive float64) bool {
	if f.DropP <= 0 && f.CrashP <= 0 && f.LinkP <= 0 {
		return false
	}
	if f.Drop(from, to, seq) {
		return true
	}
	e := f.Epoch(tArrive)
	return f.CrashedEpoch(to, e) || f.LinkDownEpoch(from, to, e)
}

// Active reports whether the schedule can fault anything at all.
func (f *FaultSchedule) Active() bool {
	return f != nil && (f.CrashP > 0 || f.DropP > 0 || f.LinkP > 0)
}

// CrashedSet returns the sorted node ids of [0, n) crashed during epoch e
// — the construction layer's invalidation input (see core.BuildLayeredFor's
// epoch cache).
func (f *FaultSchedule) CrashedSet(n int, e uint64) []graph.NodeID {
	var out []graph.NodeID
	for v := 0; v < n; v++ {
		if f.CrashedEpoch(graph.NodeID(v), e) {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// backoff is attempt k's retransmit delay: exponential in k, floored at
// the adversary's declared MinDelay so a retransmission never lands inside
// the bounded-lag safe window, capped at the normalized unit.
func (f *FaultSchedule) backoff(attempt uint8, lookahead float64) float64 {
	base := f.Backoff
	if base <= 0 {
		base = DefaultBackoff
	}
	d := base * float64(uint64(1)<<attempt)
	if d < lookahead {
		d = lookahead
	}
	if d > 1 {
		d = 1
	}
	return d
}

// String renders the schedule in ParseFaultSpec's grammar (canonical
// clause order; defaulted fields are omitted).
func (f *FaultSchedule) String() string {
	var parts []string
	add := func(s string) { parts = append(parts, s) }
	if f.CrashP > 0 {
		add("crash:p=" + strconv.FormatFloat(f.CrashP, 'g', -1, 64))
	}
	if f.DropP > 0 {
		add("drop:p=" + strconv.FormatFloat(f.DropP, 'g', -1, 64))
	}
	if f.LinkP > 0 {
		add("link:p=" + strconv.FormatFloat(f.LinkP, 'g', -1, 64))
	}
	if f.Budget != 0 {
		add("budget=" + strconv.Itoa(f.Budget))
	}
	if f.Seed != 0 {
		add("seed=" + strconv.FormatUint(f.Seed, 10))
	}
	if f.Backoff != 0 {
		add("backoff=" + strconv.FormatFloat(f.Backoff, 'g', -1, 64))
	}
	if f.EpochLen != 0 {
		add("epoch=" + strconv.FormatFloat(f.EpochLen, 'g', -1, 64))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParseFaultSpec parses the -faults CLI grammar: comma-separated clauses
//
//	crash:p=0.01   per-(node, epoch) crash probability
//	drop:p=0.05    per-transmission loss probability
//	link:p=0.02    per-(link, epoch) outage probability
//	budget=3       retransmissions per lost message (default 0)
//	seed=7         schedule seed
//	backoff=0.125  base retransmit delay (default 1/64, doubling)
//	epoch=0.5      crash/link epoch length (default 1)
//
// "" and "none" mean no fault plane (nil schedule). The result is
// validated; wiring it around an adversary is Faulty{Inner, Schedule}.
func ParseFaultSpec(spec string) (*FaultSchedule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	f := &FaultSchedule{}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val := clause, ""
		if i := strings.IndexAny(clause, ":="); i >= 0 {
			key, val = clause[:i], clause[i+1:]
		}
		switch key {
		case "crash", "drop", "link":
			val = strings.TrimPrefix(val, "p=")
			p, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad %s probability %q", key, val)
			}
			switch key {
			case "crash":
				f.CrashP = p
			case "drop":
				f.DropP = p
			case "link":
				f.LinkP = p
			}
		case "budget":
			b, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("faults: bad budget %q", val)
			}
			f.Budget = b
		case "seed":
			s, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q", val)
			}
			f.Seed = s
		case "backoff":
			b, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad backoff %q", val)
			}
			f.Backoff = b
		case "epoch":
			e, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad epoch length %q", val)
			}
			f.EpochLen = e
		default:
			return nil, fmt.Errorf("faults: unknown clause %q (want crash:p=, drop:p=, link:p=, budget=, seed=, backoff=, epoch=)", clause)
		}
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// Faulty wraps any delay adversary with a fault schedule. Delays — and the
// MinDelay lookahead the bounded-lag and speculative executors build
// windows from — pass through unchanged; the engine unwraps the schedule
// at New/Reset and consults it at dispatch, once per transmission attempt.
type Faulty struct {
	Inner    Adversary
	Schedule *FaultSchedule
}

// Delay delegates to the wrapped adversary.
func (f Faulty) Delay(from, to graph.NodeID, seq uint64, p Proto) float64 {
	return f.Inner.Delay(from, to, seq, p)
}

// MinDelay preserves the wrapped adversary's lookahead declaration.
func (f Faulty) MinDelay() float64 { return f.Inner.MinDelay() }

// Name tags the wrapped adversary's name with the fault spec.
func (f Faulty) Name() string { return f.Inner.Name() + "+faults(" + f.Schedule.String() + ")" }

// WithFaults wraps adv with fs; a nil or inactive schedule returns adv
// unchanged so fault-free configurations pay nothing.
func WithFaults(adv Adversary, fs *FaultSchedule) Adversary {
	if !fs.Active() {
		return adv
	}
	return Faulty{Inner: adv, Schedule: fs}
}

// faultsOf extracts the fault schedule the engine enforces at dispatch.
func faultsOf(adv Adversary) *FaultSchedule {
	if f, ok := adv.(Faulty); ok && f.Schedule.Active() {
		return f.Schedule
	}
	return nil
}

// StandardFaultSchedules is the suite robustness tests sweep: pure drops,
// drops with a deeper budget, epoch crashes, link churn, and the combined
// plane. All are deterministic in seed.
func StandardFaultSchedules(seed uint64) []*FaultSchedule {
	return []*FaultSchedule{
		{Seed: seed, DropP: 0.05, Budget: 3},
		{Seed: seed ^ 0xFEED, DropP: 0.25, Budget: 1},
		{Seed: seed, CrashP: 0.02, Budget: 4, EpochLen: 0.5},
		{Seed: seed, LinkP: 0.05, Budget: 2},
		{Seed: seed ^ 0xBEEF, CrashP: 0.01, DropP: 0.1, LinkP: 0.02, Budget: 3},
	}
}
