// Command syncbench regenerates the experiment tables of EXPERIMENTS.md.
//
// Usage:
//
//	syncbench                      # run every experiment
//	syncbench -exp E5              # run one experiment (E1..E18)
//	syncbench -exp E2,E3,E4        # run a subset, in the given order
//	syncbench -list                # list experiment ids and titles
//	syncbench -parallel 8          # run independent trials on 8 workers
//	syncbench -json                # emit structured JSON records
//	syncbench -exp E13 -json       # the CI bench-trajectory smoke run
//	syncbench -seed 42             # override every adversary seed
//	syncbench -mode multi          # force an execution mode, both engines
//	syncbench -exp E16 -graph grid3d:100x100x100   # add a million-node row
//	syncbench -exp E14 -shards 2       # add multi-process shard-protocol rows
//	syncbench -exp E17 -faults crash:p=0.01,drop:p=0.05,budget=3,seed=7
//	syncbench -exp E18 -snapshot-every 100000  # extra checkpoint-interval row
//	syncbench -exp E18 -resume run.ckpt        # price restoring a real checkpoint
//
// Tables are byte-identical for any -parallel or -mode value; -json
// replaces the tables with one syncbench/v1 JSON document of per-row
// records. -seed 0 (the default) keeps the per-experiment seeds that
// reproduce the published tables; any other value sweeps every seeded
// adversary, matching what cmd/synchronize's -seed flag does there.
// -mode selects the execution mode of BOTH engines: the lockstep runner's
// worker pool and the async engine's bounded-lag parallel windows (E13,
// E14, and E15 compare the modes explicitly and ignore it). -mode spec
// forces the async engine's speculative executor (the lockstep runner,
// which has no safe window to speculate past, keeps its Auto pool); spec
// runs fall back to multi wherever handlers are not cloneable.
//
// -graph takes a graph.FromSpec string (grid3d:XxYxZ, pa:n=…,m=…,
// ring:k=…,c=…, and the classic families) and appends it as an extra row
// to the engine-facing experiments E13, E14, and E16; other experiments
// ignore it. The implicit generators build sorted CSR directly, so a
// ten-million-node spec is a few hundred megabytes, not a hash-map blowup.
//
// -faults takes a fault-schedule spec (async.ParseFaultSpec form:
// crash:p=…, drop:p=…, link:p=…, budget=…, backoff=…, epoch=…, seed=…)
// and wraps every experiment's delay adversary in it — the tables then
// measure behavior under deterministic message loss and crash blackouts
// instead of the published fault-free shapes. E17 additionally appends
// the spec as an extra row after its built-in schedule grid.
//
// -snapshot-every appends an extra checkpoint interval to E18's sweep, and
// -resume points E18 at a checkpoint file written by a sharded run
// (shardsim/asyncbfs -snapshot-path), adding a row that prices a full
// restore-to-completion; both are validated before any experiment runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/async"
	"repro/internal/bench"
	"repro/internal/syncrun"
)

func main() {
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "", "comma-separated experiment ids (E1..E18); empty = all")
	parallel := flag.Int("parallel", 1, "worker-pool size for independent trials (1 = serial)")
	jsonOut := flag.Bool("json", false, "emit structured JSON records instead of text tables")
	list := flag.Bool("list", false, "list experiment ids and titles, then exit")
	seed := flag.Uint64("seed", 0, "delay adversary seed; 0 keeps each experiment's default")
	mode := flag.String("mode", "auto", "execution mode for both engines: auto|single|multi|spec")
	graphSpec := flag.String("graph", "", "extra topology for E13/E14/E16, as a graph spec (e.g. grid3d:100x100x100)")
	shards := flag.Int("shards", 0, "add E14 rows running the multi-process shard protocol with K workers (0 = off; 1 = degenerate single-shard run, byte-identical)")
	faults := flag.String("faults", "", "fault schedule wrapped around every adversary (e.g. crash:p=0.01,drop:p=0.05,budget=3,seed=7); empty = fault-free")
	snapEvery := flag.Uint64("snapshot-every", 0, "extra checkpoint interval for E18's sweep (0 = built-ins only)")
	resume := flag.String("resume", "", "checkpoint file for E18's restore-to-completion row (from shardsim/asyncbfs -snapshot-path)")
	flag.Parse()
	if *list {
		for _, info := range bench.List() {
			fmt.Printf("%-4s %s\n", info.ID, info.Title)
		}
		return 0
	}
	var execMode syncrun.ExecutionMode
	var asyncMode async.ExecutionMode
	switch *mode {
	case "auto":
		execMode, asyncMode = syncrun.ModeAuto, async.ModeAuto
	case "single":
		execMode, asyncMode = syncrun.ModeSingle, async.ModeSingle
	case "multi":
		execMode, asyncMode = syncrun.ModeMulti, async.ModeMulti
	case "spec":
		// Speculation is an async-engine concept; the lockstep runner has no
		// windows to speculate past, so it gets its Auto pool. The async
		// engine itself falls back to multi for non-cloneable handlers.
		execMode, asyncMode = syncrun.ModeAuto, async.ModeSpec
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q (want auto|single|multi|spec)\n", *mode)
		return 2
	}
	var ids []string
	if *exp != "" {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	opts := bench.Options{Workers: *parallel, JSON: *jsonOut, Seed: *seed, Mode: execMode, AsyncMode: asyncMode, Graph: *graphSpec, Shards: *shards, Faults: *faults, SnapshotEvery: *snapEvery, Resume: *resume}
	if err := bench.Run(os.Stdout, ids, opts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	return 0
}
