// Command asyncbfs runs the complete asynchronous BFS (Theorems 4.23/4.24)
// on a chosen topology and prints per-node distances plus the run's
// measured complexity.
//
// Usage:
//
//	asyncbfs -graph grid -rows 6 -cols 8 -sources 0,47 -seed 3
//	asyncbfs -graph cycle -n 64
//	asyncbfs -graph er -n 80 -m 240
//	asyncbfs -graph grid3d:215x215x215 -quiet   # spec form; ~10M nodes
//
// A -graph value containing ':' is parsed as a graph.FromSpec string
// (grid3d:XxYxZ, pa:n=…,m=…,seed=…, ring:k=…,c=…, and the classic
// families), which reaches the implicit CSR generators sized for
// ten-million-node runs. The header's exact-diameter column is computed
// only for graphs small enough for its O(n·m) sweep; huge graphs print
// D=- instead of stalling before the run starts.
//
// -shards K (K > 0) runs the multi-process sharded engine instead: K
// worker processes (re-execs of this binary) compute multi-source BFS hop
// distances by monotone relaxation under the same seeded delay adversary.
// That is a different algorithm from the default run's synchronizer-stack
// BFS — it reports exact distances but no parent/threshold structure, and
// its message count is the relaxation volume, not Theorem 4.23's — so the
// two modes print distances that agree while the rest of the summary
// differs by design.
//
// Sharded runs checkpoint and resume: -snapshot-every N -snapshot-path F
// writes a consistent distributed snapshot every N executed events, and
// -resume F continues a checkpointed run — at the same shard count or any
// other (-shards applies to the resumed run; the graph, adversary, fault
// schedule, and sources come from the file).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	dsync "repro"
	"repro/internal/apps"
	"repro/internal/shard"
)

func main() {
	shard.MaybeWorker() // -shards worker re-execs never return from this
	os.Exit(run())
}

func run() int {
	var (
		kind    = flag.String("graph", "grid", "topology: path|cycle|grid|er|tree, or a spec like grid3d:100x100x100")
		n       = flag.Int("n", 36, "node count (path/cycle/er/tree)")
		m       = flag.Int("m", 0, "edge count (er; default 3n)")
		rows    = flag.Int("rows", 6, "grid rows")
		cols    = flag.Int("cols", 6, "grid cols")
		seed    = flag.Uint64("seed", 1, "delay adversary seed")
		sources = flag.String("sources", "0", "comma-separated source IDs")
		mode    = flag.String("mode", "auto", "async engine execution mode: auto|single|multi|spec")
		quiet   = flag.Bool("quiet", false, "suppress per-node output")
		shards  = flag.Int("shards", 0, "run multi-source BFS on K sharded worker processes instead of the synchronizer stack (0 = off)")
		faults  = flag.String("faults", "", "fault schedule (e.g. drop:p=0.05,budget=3,seed=7); empty = fault-free")
		snapN   = flag.Uint64("snapshot-every", 0, "with -shards: checkpoint the run every N executed events (requires -snapshot-path)")
		snapP   = flag.String("snapshot-path", "", "checkpoint file the sharded run writes (atomically replaced at each checkpoint)")
		resume  = flag.String("resume", "", "resume a sharded run from a checkpoint file; graph/workload identity comes from the file, -shards stays yours")
	)
	flag.Parse()
	var execMode dsync.AsyncExecutionMode
	switch *mode {
	case "auto":
		execMode = dsync.AsyncModeAuto
	case "single":
		execMode = dsync.AsyncModeSingle
	case "multi":
		execMode = dsync.AsyncModeMulti
	case "spec":
		// The synchronizer stack's state codecs double as its StateCloner,
		// so this runs genuinely speculatively (no fallback; the regression
		// test on SpecStats().FellBack pins it).
		execMode = dsync.AsyncModeSpec
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q (want auto|single|multi|spec)\n", *mode)
		return 2
	}
	g, err := buildGraph(*kind, *n, *m, *rows, *cols, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	srcs, err := parseSources(*sources, g.N())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fs, err := dsync.ParseFaultSpec(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *resume != "" {
		return runResumed(*resume, *shards, *snapN, *snapP, *quiet)
	}
	if (*snapN > 0 || *snapP != "") && *shards <= 0 {
		fmt.Fprintln(os.Stderr, "-snapshot-every/-snapshot-path checkpoint the sharded engine; add -shards K")
		return 2
	}
	if *shards > 0 {
		return runSharded(g, *kind, *n, *m, *rows, *cols, *seed, srcs, *shards, *quiet, *faults, *snapN, *snapP)
	}
	res := dsync.AsyncBFSMode(g, srcs, dsync.WithFaults(dsync.RandomDelays(*seed), fs), execMode)
	// The exact diameter is an O(n·m) all-pairs sweep — a header nicety on
	// small graphs, hours of preamble on ten million nodes. Skip it there.
	diam := "-"
	if g.N() <= maxDiameterNodes {
		diam = strconv.Itoa(g.Diameter())
	}
	fmt.Printf("graph=%s n=%d m=%d D=%s sources=%v\n", *kind, g.N(), g.M(), diam, srcs)
	fmt.Printf("iterations=%d final-threshold=%d time=%.1f msgs=%d\n",
		res.Iterations, res.FinalThreshold, res.Time, res.Msgs)
	if *quiet {
		return 0
	}
	for v := 0; v < g.N(); v++ {
		switch o := res.Outputs[dsync.NodeID(v)].(type) {
		case apps.TBFSResult:
			fmt.Printf("node %3d: dist=%d parent=%d source=%d\n", v, o.Dist, o.Parent, o.Source)
		case apps.TBFSSourceDone:
			fmt.Printf("node %3d: source (dist=0)\n", v)
		default:
			fmt.Printf("node %3d: %v\n", v, o)
		}
	}
	return 0
}

// maxDiameterNodes bounds the graphs whose exact diameter the header
// reports; above it the O(n·m) sweep would dwarf the BFS being measured.
const maxDiameterNodes = 1 << 14

// runSharded computes the distances on K worker processes via the
// shard coordinator's monotone-relaxation BFS workload.
func runSharded(g *dsync.Graph, kind string, n, m, rows, cols int, seed uint64, srcs []dsync.NodeID, k int, quiet bool, faults string, snapN uint64, snapP string) int {
	spec, err := specFor(kind, n, m, rows, cols, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	rep, err := shard.Run(shard.Config{
		GraphSpec:     spec,
		Workload:      "bfs",
		Adversary:     fmt.Sprintf("random:%d", seed),
		Faults:        faults,
		Sources:       srcs,
		Shards:        k,
		Launch:        shard.LaunchProcess,
		SnapshotEvery: snapN,
		SnapshotPath:  snapP,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	res := rep.Result
	fmt.Printf("graph=%s n=%d m=%d sources=%v shards=%d cuts=%v\n", spec, g.N(), g.M(), srcs, rep.Stats.Shards, rep.Cuts)
	fmt.Printf("time=%.1f msgs=%d windows=%d frames=%d (relaxation BFS: distances only)\n",
		res.Time, res.Msgs, rep.Stats.Windows, rep.Stats.Frames)
	if quiet {
		return 0
	}
	for v := 0; v < g.N(); v++ {
		if d, ok := res.Outputs[dsync.NodeID(v)].(int64); ok {
			fmt.Printf("node %3d: dist=%d\n", v, d)
		} else {
			fmt.Printf("node %3d: unreached\n", v)
		}
	}
	return 0
}

// runResumed continues a checkpointed sharded run. The checkpoint file
// carries the workload identity (graph, adversary, faults, sources), so
// the topology flags are ignored; -shards picks the resumed shard count,
// which may differ from the checkpoint's.
func runResumed(path string, k int, snapN uint64, snapP string, quiet bool) int {
	rep, err := shard.Run(shard.Config{
		ResumeFrom:    path,
		Shards:        k,
		Launch:        shard.LaunchProcess,
		SnapshotEvery: snapN,
		SnapshotPath:  snapP,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	res := rep.Result
	fmt.Printf("resumed=%s shards=%d cuts=%v\n", path, rep.Stats.Shards, rep.Cuts)
	fmt.Printf("time=%.1f msgs=%d windows=%d frames=%d (relaxation BFS: distances only)\n",
		res.Time, res.Msgs, rep.Stats.Windows, rep.Stats.Frames)
	if quiet {
		return 0
	}
	ids := make([]int, 0, len(res.Outputs))
	for v := range res.Outputs {
		ids = append(ids, int(v))
	}
	sort.Ints(ids)
	for _, v := range ids {
		fmt.Printf("node %3d: dist=%v\n", v, res.Outputs[dsync.NodeID(v)])
	}
	return 0
}

// specFor maps the classic flag form onto its graph.FromSpec equivalent,
// the shape worker processes rebuild the graph from.
func specFor(kind string, n, m, rows, cols int, seed uint64) (string, error) {
	if strings.Contains(kind, ":") {
		return kind, nil
	}
	switch kind {
	case "path", "cycle", "tree":
		return fmt.Sprintf("%s:%d", kind, n), nil
	case "grid":
		return fmt.Sprintf("grid:%dx%d", rows, cols), nil
	case "er":
		if m == 0 {
			m = 3 * n
		}
		return fmt.Sprintf("er:n=%d,m=%d,seed=%d", n, m, seed), nil
	default:
		return "", fmt.Errorf("unknown graph kind %q", kind)
	}
}

func buildGraph(kind string, n, m, rows, cols int, seed uint64) (*dsync.Graph, error) {
	if strings.Contains(kind, ":") {
		return dsync.GraphFromSpec(kind)
	}
	switch kind {
	case "path":
		return dsync.Path(n), nil
	case "cycle":
		return dsync.Cycle(n), nil
	case "grid":
		return dsync.Grid(rows, cols), nil
	case "tree":
		return dsync.CompleteBinaryTree(n), nil
	case "er":
		if m == 0 {
			m = 3 * n
		}
		return dsync.RandomConnected(n, m, seed), nil
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}

func parseSources(s string, n int) ([]dsync.NodeID, error) {
	var out []dsync.NodeID
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 0 || v >= n {
			return nil, fmt.Errorf("bad source %q (need 0..%d)", part, n-1)
		}
		out = append(out, dsync.NodeID(v))
	}
	return out, nil
}
