package core

import "repro/internal/async"

// Protocol tags used by the synchronizer. Registration and barrier modules
// get one proto per cover level on top of these bases.
const (
	// ProtoAlgo carries algorithm messages and their chosen/declined
	// replies (the execution forest's edges).
	ProtoAlgo async.Proto = 1
	// ProtoTree carries safety-status reports and Go-Ahead propagation on
	// the execution forest.
	ProtoTree async.Proto = 2
	// ProtoRegBase + coverLevel carries §3.2 registration traffic.
	ProtoRegBase async.Proto = 100
	// ProtoBarrierBase + coverLevel carries §4.2 originator barriers.
	ProtoBarrierBase async.Proto = 200
)

// algoMsg is one synchronous-algorithm message: sent by virtual node
// (sender, Pulse), creating or feeding virtual node (receiver, Pulse+1).
type algoMsg struct {
	Pulse int
	Body  any
}

// replyMsg answers an algoMsg: whether the receiver chose the sender as
// its execution-forest parent. Pulse echoes the algoMsg's pulse.
type replyMsg struct {
	Pulse  int
	Chosen bool
}

// statusMsg is a safety-convergecast report: the sender's virtual node of
// pulse ChildPulse reports its subtree's Q-status (ready = non-Q-empty and
// Q-safe; !Ready = Q-empty, which per §4.1.2 also implies Q-safe) to its
// execution-forest parent of pulse ChildPulse-1.
type statusMsg struct {
	Q          int
	ChildPulse int
	Ready      bool
}

// gaMsg propagates Go-Ahead(Q) down the execution forest; the receiver's
// virtual node has pulse ChildPulse.
type gaMsg struct {
	Q          int
	ChildPulse int
}
