// Package pulse implements the pulse arithmetic of §4.1.1: the level ℓ(p)
// of a pulse, the prev(p) chain, and host-distance bounds (Lemma 4.7).
// Both the asynchronous BFS and the general synchronizer hang their entire
// safety/registration schedule on these three functions.
package pulse

import "math/bits"

// LevelInf is the level of pulse 0 (the paper defines ℓ(0) = ∞).
const LevelInf = 1 << 30

// Level returns ℓ(p): the exponent of the highest power of 2 dividing p,
// and LevelInf for p = 0 (Definition 4.3). Negative pulses panic.
func Level(p int) int {
	switch {
	case p < 0:
		panic("pulse: negative pulse")
	case p == 0:
		return LevelInf
	default:
		return bits.TrailingZeros64(uint64(p))
	}
}

// Prev returns prev(p) (Definition 4.4): the largest p̃ ≥ 0 such that
// ℓ(p̃) = ℓ(p)+1 and p̃ ≤ p − 2^ℓ(p), clamped at 0; prev(0) = 0.
func Prev(p int) int {
	if p == 0 {
		return 0
	}
	l := Level(p)
	step := 1 << uint(l)
	cand := p - step // divisible by 2^(l+1) since p = odd·2^l
	if cand <= 0 {
		return 0
	}
	if Level(cand) == l+1 {
		return cand
	}
	// cand divisible by 2^(l+2) or more; step back one 2^(l+1) block.
	cand -= 2 * step
	if cand <= 0 {
		return 0
	}
	return cand
}

// Prev2 returns prev(prev(p)).
func Prev2(p int) int { return Prev(Prev(p)) }

// The bounds of Lemma 4.7, used when sizing cover radii:
//
//	p − prev(p)        ≤ 3·2^ℓ(p)
//	p − prev(prev(p))  ≤ 9·2^ℓ(p)
//
// HostDistBound returns 3·2^ℓ(p) (the distance from a node of pulse p to
// its host, Lemma 4.7(c)); Host2DistBound returns 9·2^ℓ(p) (to the host's
// host, Lemma 4.7(d)). Both panic for p = 0, whose host is itself.
func HostDistBound(p int) int {
	if p <= 0 {
		panic("pulse: HostDistBound needs p > 0")
	}
	return 3 << uint(Level(p))
}

// Host2DistBound returns 9·2^ℓ(p); see HostDistBound.
func Host2DistBound(p int) int {
	if p <= 0 {
		panic("pulse: Host2DistBound needs p > 0")
	}
	return 9 << uint(Level(p))
}

// CoverLevel returns ℓ(p)+5: registrations for pulse p use clusters of the
// sparse 2^(ℓ(p)+5)-cover (§4.1.2).
func CoverLevel(p int) int {
	if p <= 0 {
		panic("pulse: CoverLevel needs p > 0")
	}
	return Level(p) + 5
}

// SumLevels returns Σ_{p=1..P} 2^ℓ(p); Lemma 4.13 proves it is O(P·log P).
// Benchmarks use it as the predicted time-shape of the pulse schedule.
func SumLevels(P int) int {
	total := 0
	for p := 1; p <= P; p++ {
		total += 1 << uint(Level(p))
	}
	return total
}
