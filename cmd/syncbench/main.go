// Command syncbench regenerates the experiment tables of EXPERIMENTS.md.
//
// Usage:
//
//	syncbench            # run every experiment
//	syncbench -exp E5    # run one experiment (E1..E13)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "", "experiment id (E1..E13); empty = all")
	flag.Parse()
	if *exp == "" {
		bench.All(os.Stdout)
		return 0
	}
	if !bench.ByName(os.Stdout, *exp) {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want E1..E13)\n", *exp)
		return 2
	}
	return 0
}
