package reg

import (
	"fmt"
	"testing"

	"repro/internal/async"
	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/wire"
)

const (
	protoReg  async.Proto = 1
	protoOrch async.Proto = 2
)

// regAPI abstracts Module and NaiveModule so the same harness drives both.
type regAPI interface {
	async.Module
	Register(n *async.Node, c cover.ClusterID, session int)
	Deregister(n *async.Node, c cover.ClusterID, session int)
	LocalDone(c cover.ClusterID, session int) bool
}

type evKind int

const (
	evRegistered evKind = iota + 1
	evDeregister
	evGoAhead
)

type event struct {
	kind evKind
	node graph.NodeID
	c    cover.ClusterID
	s    int
}

// world is the shared (single-threaded simulator) test state.
type world struct {
	log      []event
	expected int // total (node, cluster, session) registrations expected
	regDone  int
	floodOn  bool
	mkMod    func(cb Callbacks) regAPI
}

// client drives one node: registers in its clusters at Start, floods a
// deregistration wave once everyone registered, deregisters on the wave,
// and records Go-Aheads.
type client struct {
	w        *world
	mod      regAPI
	sessions map[int][]cover.ClusterID // session -> clusters to join
	reged    map[[2]int]bool           // (cluster, session) -> registration done
	derged   map[[2]int]bool
	flooded  bool
	outstand int
}

func (c *client) Start(n *async.Node) {
	for s, cs := range c.sessions {
		for _, cid := range cs {
			c.outstand++
			c.mod.Register(n, cid, s)
		}
	}
}

func (c *client) Recv(n *async.Node, _ graph.NodeID, m async.Msg) {
	// Deregistration flood.
	c.onFlood(n)
	_ = m
}

func (c *client) Ack(*async.Node, graph.NodeID, async.Msg) {}

func (c *client) onFlood(n *async.Node) {
	if c.flooded {
		return
	}
	c.flooded = true
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, async.Msg{Proto: protoOrch, Body: wire.Tag(1)})
	}
	c.deregisterReady(n)
}

func (c *client) deregisterReady(n *async.Node) {
	for key := range c.reged {
		if !c.derged[key] {
			c.derged[key] = true
			c.w.log = append(c.w.log, event{kind: evDeregister, node: n.ID(), c: cover.ClusterID(key[0]), s: key[1]})
			c.mod.Deregister(n, cover.ClusterID(key[0]), key[1])
		}
	}
}

// Registered implements Callbacks.
func (c *client) Registered(n *async.Node, cid cover.ClusterID, s int) {
	c.reged[[2]int{int(cid), s}] = true
	c.w.log = append(c.w.log, event{kind: evRegistered, node: n.ID(), c: cid, s: s})
	c.w.regDone++
	if c.flooded {
		// Flood already passed: deregister late registrations immediately.
		c.deregisterReady(n)
		return
	}
	if c.w.regDone == c.w.expected && !c.w.floodOn {
		c.w.floodOn = true
		c.onFlood(n)
	}
}

// GoAhead implements Callbacks.
func (c *client) GoAhead(n *async.Node, cid cover.ClusterID, s int) {
	c.w.log = append(c.w.log, event{kind: evGoAhead, node: n.ID(), c: cid, s: s})
}

// runScenario wires clients into a simulation and checks both guarantees.
func runScenario(t *testing.T, g *graph.Graph, cov *cover.Cover,
	sessions map[graph.NodeID]map[int][]cover.ClusterID, adv async.Adversary, naive bool) {
	t.Helper()
	w := &world{}
	if naive {
		w.mkMod = func(cb Callbacks) regAPI { return NewNaive(protoReg, cov, cb, nil) }
	} else {
		w.mkMod = func(cb Callbacks) regAPI { return New(protoReg, cov, cb, nil) }
	}
	for _, ss := range sessions {
		for _, cs := range ss {
			w.expected += len(cs)
		}
	}
	clients := make(map[graph.NodeID]*client)
	sim := async.New(g, adv, func(id graph.NodeID) async.Handler {
		cl := &client{
			w:        w,
			sessions: sessions[id],
			reged:    make(map[[2]int]bool),
			derged:   make(map[[2]int]bool),
		}
		cl.mod = w.mkMod(cl)
		clients[id] = cl
		mux := async.NewMux()
		mux.Register(protoReg, cl.mod)
		mux.Register(protoOrch, cl)
		return mux
	})
	sim.Run()

	// Liveness (Guarantee 2): every registrant got its Go-Ahead.
	for id, ss := range sessions {
		for s, cs := range ss {
			for _, cid := range cs {
				if !clients[id].mod.LocalDone(cid, s) {
					t.Fatalf("adv=%s: node %d never freed in cluster %d session %d",
						adv.Name(), id, cid, s)
				}
			}
		}
	}

	// Guarantee 1: when v receives Go-Ahead in (c,s), every u that
	// registered in (c,s) before v deregistered had already deregistered.
	type keyT struct {
		node graph.NodeID
		c    cover.ClusterID
		s    int
	}
	regAt := map[keyT]int{}
	derAt := map[keyT]int{}
	for i, e := range w.log {
		switch e.kind {
		case evRegistered:
			regAt[keyT{e.node, e.c, e.s}] = i
		case evDeregister:
			derAt[keyT{e.node, e.c, e.s}] = i
		}
	}
	for i, e := range w.log {
		if e.kind != evGoAhead {
			continue
		}
		vDereg, ok := derAt[keyT{e.node, e.c, e.s}]
		if !ok {
			t.Fatalf("adv=%s: GoAhead for %d without deregistration", adv.Name(), e.node)
		}
		for k, uReg := range regAt {
			if k.c != e.c || k.s != e.s {
				continue
			}
			if uReg < vDereg {
				uDereg, ok := derAt[k]
				if !ok || uDereg > i {
					t.Fatalf("adv=%s: guarantee 1 broken: node %d freed at %d but %d (registered %d < dereg %d) not deregistered",
						adv.Name(), e.node, i, k.node, uReg, vDereg)
				}
			}
		}
	}
}

// allMembersSessions registers every member of every cluster for session 0.
func allMembersSessions(cov *cover.Cover, n int) map[graph.NodeID]map[int][]cover.ClusterID {
	out := make(map[graph.NodeID]map[int][]cover.ClusterID)
	for v := 0; v < n; v++ {
		ids := cov.MemberOf(graph.NodeID(v))
		if len(ids) == 0 {
			continue
		}
		out[graph.NodeID(v)] = map[int][]cover.ClusterID{0: append([]cover.ClusterID(nil), ids...)}
	}
	return out
}

func TestWaveRegistrationAllAdversaries(t *testing.T) {
	g := graph.Grid(5, 6)
	cov := cover.Build(g, 2, nil)
	sessions := allMembersSessions(cov, g.N())
	for _, adv := range async.StandardAdversaries(g.N(), 3) {
		t.Run(adv.Name(), func(t *testing.T) {
			runScenario(t, g, cov, sessions, adv, false)
		})
	}
}

func TestWaveRegistrationSeedSweep(t *testing.T) {
	g := graph.RandomConnected(40, 90, 8)
	cov := cover.Build(g, 2, nil)
	sessions := allMembersSessions(cov, g.N())
	for seed := uint64(1); seed <= 12; seed++ {
		runScenario(t, g, cov, sessions, async.SeededRandom{Seed: seed}, false)
	}
}

func TestWaveMultiSession(t *testing.T) {
	g := graph.Path(20)
	cov := cover.Build(g, 2, nil)
	sessions := make(map[graph.NodeID]map[int][]cover.ClusterID)
	for v := 0; v < g.N(); v++ {
		ids := cov.MemberOf(graph.NodeID(v))
		ss := make(map[int][]cover.ClusterID)
		for s := 0; s < 3; s++ {
			ss[s] = append([]cover.ClusterID(nil), ids...)
		}
		sessions[graph.NodeID(v)] = ss
	}
	for seed := uint64(1); seed <= 6; seed++ {
		runScenario(t, g, cov, sessions, async.SeededRandom{Seed: seed}, false)
	}
}

func TestWaveSubsetOfClients(t *testing.T) {
	// Only a few nodes register; relays must still carry the waves.
	g := graph.Path(24)
	cl := cover.PathCluster(0, pathNodes(24))
	cov := cover.NewExplicit(24, 23, []*cover.Cluster{cl})
	sessions := map[graph.NodeID]map[int][]cover.ClusterID{
		5:  {0: {0}},
		11: {0: {0}},
		23: {0: {0}},
	}
	for _, adv := range async.StandardAdversaries(g.N(), 5) {
		runScenario(t, g, cov, sessions, adv, false)
	}
}

func pathNodes(n int) []graph.NodeID {
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(i)
	}
	return out
}

// TestCrossingRegistration reproduces the subtle race the paper's fix
// addresses: an ancestor (node 2) starts registering while the descendant's
// (node 5) deregistration wave passes through it. Swept across adversaries
// and seeds to hit many interleavings.
func TestCrossingRegistration(t *testing.T) {
	g := graph.Path(6)
	cl := cover.PathCluster(0, pathNodes(6))
	cov := cover.NewExplicit(6, 5, []*cover.Cluster{cl})
	sessions := map[graph.NodeID]map[int][]cover.ClusterID{
		2: {0: {0}},
		5: {0: {0}},
	}
	advs := async.StandardAdversaries(g.N(), 1)
	for seed := uint64(1); seed <= 10; seed++ {
		advs = append(advs, async.SeededRandom{Seed: seed * 977})
	}
	for i, adv := range advs {
		t.Run(fmt.Sprintf("%s-%d", adv.Name(), i), func(t *testing.T) {
			runScenario(t, g, cov, sessions, adv, false)
		})
	}
}

func TestWaveStarOfPaths(t *testing.T) {
	// Deep congestion topology (the E7 workload) at small scale.
	g := graph.StarOfPaths(4, 6)
	cl := cover.BFSTreeCluster(g, 0)
	cov := cover.NewExplicit(g.N(), g.N(), []*cover.Cluster{cl})
	sessions := make(map[graph.NodeID]map[int][]cover.ClusterID)
	for v := 0; v < g.N(); v++ {
		sessions[graph.NodeID(v)] = map[int][]cover.ClusterID{0: {0}}
	}
	for seed := uint64(1); seed <= 5; seed++ {
		runScenario(t, g, cov, sessions, async.SeededRandom{Seed: seed}, false)
	}
}

func TestNaiveRegistration(t *testing.T) {
	g := graph.StarOfPaths(3, 4)
	cl := cover.BFSTreeCluster(g, 0)
	cov := cover.NewExplicit(g.N(), g.N(), []*cover.Cluster{cl})
	sessions := make(map[graph.NodeID]map[int][]cover.ClusterID)
	for v := 0; v < g.N(); v++ {
		sessions[graph.NodeID(v)] = map[int][]cover.ClusterID{0: {0}}
	}
	for seed := uint64(1); seed <= 5; seed++ {
		runScenario(t, g, cov, sessions, async.SeededRandom{Seed: seed}, true)
	}
}

func TestRootAsClient(t *testing.T) {
	g := graph.Path(8)
	cl := cover.PathCluster(0, pathNodes(8))
	cov := cover.NewExplicit(8, 7, []*cover.Cluster{cl})
	sessions := map[graph.NodeID]map[int][]cover.ClusterID{
		0: {0: {0}}, // the root itself registers
		7: {0: {0}},
	}
	for seed := uint64(1); seed <= 5; seed++ {
		runScenario(t, g, cov, sessions, async.SeededRandom{Seed: seed}, false)
	}
}

func TestDoubleRegisterPanics(t *testing.T) {
	g := graph.Path(3)
	cl := cover.PathCluster(0, pathNodes(3))
	cov := cover.NewExplicit(3, 2, []*cover.Cluster{cl})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double register")
		}
	}()
	sim := async.New(g, async.Fixed{D: 1}, func(id graph.NodeID) async.Handler {
		mux := async.NewMux()
		var mod *Module
		cb := &nopCB{}
		mod = New(protoReg, cov, cb, nil)
		mux.Register(protoReg, mod)
		mux.Register(protoOrch, &doubleReg{mod: mod, me: id})
		return mux
	})
	sim.Run()
}

type nopCB struct{}

func (nopCB) Registered(*async.Node, cover.ClusterID, int) {}
func (nopCB) GoAhead(*async.Node, cover.ClusterID, int)    {}

type doubleReg struct {
	mod *Module
	me  graph.NodeID
}

func (d *doubleReg) Start(n *async.Node) {
	if d.me == 2 {
		d.mod.Register(n, 0, 0)
		d.mod.Register(n, 0, 0)
	}
}
func (d *doubleReg) Recv(*async.Node, graph.NodeID, async.Msg) {}
func (d *doubleReg) Ack(*async.Node, graph.NodeID, async.Msg)  {}

// TestMessageProportionality: Guarantee 2's accounting — total reg-proto
// messages are O(ops · h).
func TestMessageProportionality(t *testing.T) {
	g := graph.Path(32)
	cl := cover.PathCluster(0, pathNodes(32))
	cov := cover.NewExplicit(32, 31, []*cover.Cluster{cl})
	sessions := map[graph.NodeID]map[int][]cover.ClusterID{
		31: {0: {0}}, 15: {0: {0}}, 7: {0: {0}},
	}
	w := &world{mkMod: func(cb Callbacks) regAPI { return New(protoReg, cov, cb, nil) }}
	w.expected = 3
	sim := async.New(g, async.Fixed{D: 1}, func(id graph.NodeID) async.Handler {
		cl := &client{w: w, sessions: sessions[id], reged: make(map[[2]int]bool), derged: make(map[[2]int]bool)}
		cl.mod = w.mkMod(cl)
		mux := async.NewMux()
		mux.Register(protoReg, cl.mod)
		mux.Register(protoOrch, cl)
		return mux
	})
	res := sim.Run()
	// 3 clients, height 31: registration+deregistration+goahead waves are
	// each <= height hops per client, so <= ~6*31 + slack.
	if res.PerProto[protoReg] > 8*31 {
		t.Fatalf("registration proto used %d messages, want O(ops*h)=~%d", res.PerProto[protoReg], 6*31)
	}
}
