package wire

import (
	"fmt"
	"math"
)

// Snapshot codec: the byte plane engine and protocol state serializes
// through when a run is checkpointed (async.Sim.Snapshot, syncrun.Runner
// Snapshot, the shard coordinator's distributed snapshot) and the common
// carrier for per-protocol state codecs (StateCodec).
//
// The codec is deliberately primitive — fixed-width little-endian scalars,
// length-prefixed strings and blobs, and Body values in the same raw-image
// form the cross-shard frame plane uses (AppendBodySeg: the 48-byte image
// plus the referenced arena segment's words inlined) — because snapshot
// frames share the wire plane's contract: a same-machine format whose
// encode path is memcpy, not a portable storage schema.
//
// Enc is append-only and infallible. Dec carries a sticky error: the first
// short read or failed validation latches, every later read returns the
// zero value, and the caller checks Err() once at the end — per-protocol
// LoadState implementations therefore contain no error plumbing, yet a
// truncated or corrupted frame surfaces as a clean error, never a panic or
// a type confusion.

// Enc is the snapshot encoder: an append-based buffer plus the arena
// segment-carrying Bodies resolve against.
type Enc struct {
	buf   []byte
	arena *Arena
}

// NewEnc returns an encoder whose Body calls resolve segments against a
// (nil is fine for streams that carry no segment-inlined bodies).
func NewEnc(a *Arena) *Enc { return &Enc{arena: a} }

// Reset empties the encoder, keeping its buffer capacity.
func (e *Enc) Reset() { e.buf = e.buf[:0] }

// Bytes returns the encoded stream (valid until the next Reset/append).
func (e *Enc) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Enc) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a bool as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// I32 appends a little-endian int32.
func (e *Enc) I32(v int32) { e.U32(uint32(v)) }

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// I64 appends a little-endian int64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as a 64-bit value.
func (e *Enc) Int(v int) { e.U64(uint64(int64(v))) }

// F64 appends a float64 as its IEEE-754 bit pattern.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Body appends b in frame form: the raw image with its segment words
// inlined (AppendBodySeg). Decode with Dec.Body, which re-homes the
// segment into the receiving arena.
func (e *Enc) Body(b Body) { e.buf = AppendBodySeg(e.buf, b, e.arena) }

// Raw appends pre-encoded bytes verbatim (the re-partitioner's copy path
// for records it routes without decoding).
func (e *Enc) Raw(b []byte) { e.buf = append(e.buf, b...) }

// RawBody appends b's raw 48-byte image, segment handle verbatim and
// contents not inlined. For record-only bodies (trace entries) whose
// segments are never resolved after restore.
func (e *Enc) RawBody(b Body) { e.buf = AppendBody(e.buf, b) }

// BeginBlob reserves a u32 length prefix for a nested blob and returns its
// patch mark. The matching EndBlob back-patches the length, making the
// blob skippable (Dec.SkipBlob) and verifiable (Dec.BeginBlob/EndBlob)
// without understanding its contents — the property the shard
// re-partitioner relies on to route per-protocol state it cannot decode.
func (e *Enc) BeginBlob() int {
	mark := len(e.buf)
	e.U32(0)
	return mark
}

// EndBlob back-patches the length prefix reserved by BeginBlob.
func (e *Enc) EndBlob(mark int) {
	n := uint32(len(e.buf) - mark - 4)
	e.buf[mark] = byte(n)
	e.buf[mark+1] = byte(n >> 8)
	e.buf[mark+2] = byte(n >> 16)
	e.buf[mark+3] = byte(n >> 24)
}

// Dec is the snapshot decoder. The zero value is unusable; build with
// NewDec. All reads return the zero value once the sticky error latches.
type Dec struct {
	b      []byte
	off    int
	arena  *Arena
	segs   []Seg // segments allocated by Body, for release on a failed restore
	failed bool
	reason string
}

// NewDec returns a decoder over b whose Body calls re-home segments into a
// (nil is fine for streams without segment-inlined bodies).
func NewDec(b []byte, a *Arena) *Dec { return &Dec{b: b, arena: a} }

// Err returns the sticky error, or nil if every read so far succeeded.
func (d *Dec) Err() error {
	if !d.failed {
		return nil
	}
	return fmt.Errorf("wire: snapshot decode: %s", d.reason)
}

// Failed reports whether the sticky error has latched.
func (d *Dec) Failed() bool { return d.failed }

// Fail latches a validation error (used by LoadState implementations for
// semantic checks the raw codec cannot see: out-of-range ids, impossible
// counts). The first failure wins.
func (d *Dec) Fail(format string, args ...any) {
	if d.failed {
		return
	}
	d.failed = true
	d.reason = fmt.Sprintf(format, args...)
}

// Remaining returns the number of unread bytes (0 after failure).
func (d *Dec) Remaining() int {
	if d.failed {
		return 0
	}
	return len(d.b) - d.off
}

// Segs returns the segments allocated by Body calls so far. A caller whose
// restore fails releases them (or resets the whole arena) so a corrupted
// snapshot leaks nothing.
func (d *Dec) Segs() []Seg { return d.segs }

func (d *Dec) need(n int) bool {
	if d.failed {
		return false
	}
	if len(d.b)-d.off < n {
		d.Fail("truncated: need %d bytes at offset %d of %d", n, d.off, len(d.b))
		return false
	}
	return true
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

// Bool reads a Bool-encoded byte.
func (d *Dec) Bool() bool { return d.U8() != 0 }

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	if !d.need(4) {
		return 0
	}
	b := d.b[d.off:]
	d.off += 4
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// I32 reads a little-endian int32.
func (d *Dec) I32() int32 { return int32(d.U32()) }

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	if !d.need(8) {
		return 0
	}
	b := d.b[d.off:]
	d.off += 8
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// I64 reads a little-endian int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Int reads an Int-encoded value.
func (d *Dec) Int() int { return int(d.I64()) }

// F64 reads an IEEE-754 float64.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Str reads a length-prefixed string.
func (d *Dec) Str() string {
	n := int(d.U32())
	if !d.need(n) {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

// Body decodes an Enc.Body frame, re-homing any inlined segment into the
// decoder's arena. The allocated segment is tracked in Segs for release on
// a failed restore. A frame whose declared segment length exceeds the
// remaining input (or the arena's class bound) fails cleanly before any
// allocation.
func (d *Dec) Body() Body {
	if !d.need(BodyWireSize) {
		return Body{}
	}
	// Validate the declared segment length against the remaining input
	// before DecodeBodySeg allocates: Arena.Alloc panics past its class
	// bound, and a corrupted length must surface as an error instead.
	probe := DecodeBody(d.b[d.off:])
	if n := probe.Seg.Len(); n < 0 || n >= 1<<(maxClass-1) {
		d.Fail("body segment of %d words out of range", n)
		return Body{}
	}
	b, used, err := DecodeBodySeg(d.b[d.off:], d.arena)
	if err != nil {
		d.Fail("%v", err)
		return Body{}
	}
	d.off += used
	if !b.Seg.IsZero() {
		d.segs = append(d.segs, b.Seg)
	}
	return b
}

// SkipBody advances past an Enc.Body frame without re-homing its segment,
// returning the raw frame bytes (re-encodable verbatim with Enc.Raw).
func (d *Dec) SkipBody() []byte {
	if !d.need(BodyWireSize) {
		return nil
	}
	probe := DecodeBody(d.b[d.off:])
	n := probe.Seg.Len()
	if n < 0 || n >= 1<<(maxClass-1) {
		d.Fail("body segment of %d words out of range", n)
		return nil
	}
	total := BodyWireSize + 4*n
	if !d.need(total) {
		return nil
	}
	raw := d.b[d.off : d.off+total]
	d.off += total
	return raw
}

// RawBody decodes an Enc.RawBody image (segment handle verbatim).
func (d *Dec) RawBody() Body {
	if !d.need(BodyWireSize) {
		return Body{}
	}
	b := DecodeBody(d.b[d.off:])
	d.off += BodyWireSize
	return b
}

// BeginBlob reads a blob's length prefix and returns the absolute offset
// at which the blob must end; pass it to EndBlob after decoding the
// contents. A length pointing past the input fails immediately.
func (d *Dec) BeginBlob() int {
	n := int(d.U32())
	if d.failed {
		return d.off
	}
	end := d.off + n
	if n < 0 || end > len(d.b) {
		d.Fail("blob of %d bytes exceeds remaining input %d", n, len(d.b)-d.off)
		return d.off
	}
	return end
}

// EndBlob verifies the decode consumed exactly the blob returned by
// BeginBlob — a codec that reads more or less than its SaveState wrote is
// a bug surfaced here, not silent frame skew.
func (d *Dec) EndBlob(end int) {
	if d.failed {
		return
	}
	if d.off != end {
		d.Fail("blob length mismatch: decoder stopped at %d, blob ends at %d", d.off, end)
	}
}

// SkipBlob reads a blob's length prefix and returns its raw contents
// without interpreting them (the re-partitioner's opaque routing path).
func (d *Dec) SkipBlob() []byte {
	end := d.BeginBlob()
	if d.failed {
		return nil
	}
	raw := d.b[d.off:end]
	d.off = end
	return raw
}

// StateCodec is the per-protocol state contract of the snapshot plane:
// anything owning mutable per-node protocol state — an async Handler, a
// syncrun Handler, a Mux module — implements it to become checkpointable.
// SaveState appends the complete mutable state; LoadState reads exactly
// that stream back into the receiver, overwriting (not merging with) its
// current state: maps clear-and-refill, slices truncate-and-append, so a
// reused or ping-ponged target ends identical to the saved instance.
// Immutable per-node configuration (ids, topology, bounds) is already
// present in the receiver — both calls run on instances built by the same
// constructor — and stays out of the stream. LoadState reports corruption
// via the decoder's sticky error (Dec.Fail for semantic checks); it must
// not panic on malformed input.
type StateCodec interface {
	SaveState(e *Enc)
	LoadState(d *Dec)
}

// Snapshot container framing: magic, version, payload length, and an
// FNV-1a checksum over the payload. OpenSnapshot rejects anything that
// does not round-trip — bit corruption surfaces here, truncation either
// here or as a Dec sticky error.
const (
	snapMagic   = 0x50414e53 // "SNAP", little-endian
	SnapVersion = 1
)

// snapHeaderLen is the sealed-frame overhead: magic, version, payload
// length, checksum.
const snapHeaderLen = 4 + 4 + 8 + 8

func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// SealSnapshot wraps an encoded payload in the versioned container.
func SealSnapshot(payload []byte) []byte {
	out := make([]byte, 0, snapHeaderLen+len(payload))
	e := Enc{buf: out}
	e.U32(snapMagic)
	e.U32(SnapVersion)
	e.U64(uint64(len(payload)))
	e.U64(fnv1a(payload))
	e.buf = append(e.buf, payload...)
	return e.buf
}

// OpenSnapshot validates a sealed frame and returns its payload (aliasing
// data). It rejects bad magic, unknown versions, truncation, trailing
// garbage, and checksum mismatches.
func OpenSnapshot(data []byte) ([]byte, error) {
	if len(data) < snapHeaderLen {
		return nil, fmt.Errorf("wire: snapshot of %d bytes is shorter than its %d-byte header", len(data), snapHeaderLen)
	}
	d := NewDec(data, nil)
	if m := d.U32(); m != snapMagic {
		return nil, fmt.Errorf("wire: bad snapshot magic %#x", m)
	}
	if v := d.U32(); v != SnapVersion {
		return nil, fmt.Errorf("wire: snapshot version %d, this build reads %d", v, SnapVersion)
	}
	n := d.U64()
	sum := d.U64()
	payload := data[snapHeaderLen:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("wire: snapshot payload is %d bytes, header declares %d", len(payload), n)
	}
	if got := fnv1a(payload); got != sum {
		return nil, fmt.Errorf("wire: snapshot checksum mismatch (%#x != %#x): corrupted frame", got, sum)
	}
	return payload, nil
}
