package core

import (
	"fmt"

	"repro/internal/async"
	"repro/internal/graph"
	"repro/internal/pulse"
	"repro/internal/syncrun"
)

// captureAPI adapts the asynchronous node to the synchronous algorithm's
// API. During Init it captures sends into the originator buffer; during
// Pulse it releases them as pulse-tagged algorithm messages.
type captureAPI struct {
	n       *async.Node
	core    *nodeCore
	vn      *vnode // nil while capturing Init
	capture bool
	sentTo  map[graph.NodeID]bool
}

var _ syncrun.API = (*captureAPI)(nil)

func (a *captureAPI) ID() graph.NodeID            { return a.n.ID() }
func (a *captureAPI) Neighbors() []graph.Neighbor { return a.n.Neighbors() }
func (a *captureAPI) Degree() int                 { return a.n.Degree() }
func (a *captureAPI) Output(v any)                { a.n.Output(v) }
func (a *captureAPI) HasOutput() bool             { return a.n.HasOutput() }

func (a *captureAPI) Send(to graph.NodeID, body any) {
	if a.sentTo == nil {
		a.sentTo = make(map[graph.NodeID]bool)
	}
	if a.sentTo[to] {
		panic(fmt.Sprintf("core: node %d sent twice to %d in one pulse", a.n.ID(), to))
	}
	a.sentTo[to] = true
	if a.capture {
		a.core.initSends = append(a.core.initSends, capturedSend{to: to, body: body})
		return
	}
	a.vn.sentAny = true
	a.core.sendAlgo(a.n, a.vn, to, body)
}

func prevOf(p int) int   { return pulse.Prev(p) }
func prevPrev(p int) int { return pulse.Prev2(p) }
