// Package outval encodes node outputs as typed wire.Body values so the
// engines can store them in dense, pointer-free arrays instead of boxing
// every output into an interface. Primitive Go values the engines see all
// the time (int, int64, bool, graph.NodeID) encode into reserved kinds
// handled here; algorithm packages register decoders for their own
// fixed-size result structs (apps.BFSResult, abfs.Unreachable, …) under
// kinds of their choosing, and Decode dispatches on the Kind tag when a
// Result boundary materializes user-facing values.
//
// Registration happens in package init functions only; after init the
// registry is read-only, so concurrent decodes (the parallel experiment
// harness) need no locking.
package outval

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/wire"
)

// Reserved kinds for engine-encoded primitives. They live at the top of
// the Kind space so no algorithm's message or output kinds collide.
const (
	// KindInt carries a Go int in A.
	KindInt wire.Kind = 0x7F01
	// KindInt64 carries an int64 in A.
	KindInt64 wire.Kind = 0x7F02
	// KindBool carries a bool in A (wire.FromBool encoding).
	KindBool wire.Kind = 0x7F03
	// KindNode carries a graph.NodeID in A.
	KindNode wire.Kind = 0x7F04
)

// decoders maps registered output kinds to their decode funcs. Written
// only during init (Register documents the contract); read concurrently.
var decoders = map[wire.Kind]func(wire.Body) any{}

// Register installs the decoder for one output kind. It must be called
// from a package init function (the registry is lock-free by virtue of
// init's happens-before edge); registering a reserved kind or the same
// kind twice panics.
func Register(k wire.Kind, dec func(wire.Body) any) {
	if _, ok := primDecode(wire.Body{Kind: k}); ok {
		panic(fmt.Sprintf("outval: kind %d is reserved for primitives", k))
	}
	if _, dup := decoders[k]; dup {
		panic(fmt.Sprintf("outval: output kind %d registered twice", k))
	}
	decoders[k] = dec
}

// Encode converts the primitive output values the engines accept through
// the legacy Output(any) path into a Body. The second return reports
// whether v was encodable; callers fall back to boxed storage otherwise.
func Encode(v any) (wire.Body, bool) {
	switch x := v.(type) {
	case int:
		return wire.Body{Kind: KindInt, A: int64(x)}, true
	case int64:
		return wire.Body{Kind: KindInt64, A: x}, true
	case bool:
		return wire.Body{Kind: KindBool, A: wire.FromBool(x)}, true
	case graph.NodeID:
		return wire.Body{Kind: KindNode, A: int64(x)}, true
	}
	return wire.Body{}, false
}

// primDecode decodes the reserved primitive kinds.
func primDecode(b wire.Body) (any, bool) {
	switch b.Kind {
	case KindInt:
		return int(b.A), true
	case KindInt64:
		return b.A, true
	case KindBool:
		return wire.ToBool(b.A), true
	case KindNode:
		return graph.NodeID(b.A), true
	}
	return nil, false
}

// Decode materializes the user-facing value of an output Body: reserved
// primitive kinds decode here, registered kinds dispatch to their decoder,
// and an unknown kind panics — an output Body reaching a Result boundary
// without a decoder is a wiring bug, not data.
func Decode(b wire.Body) any {
	if v, ok := primDecode(b); ok {
		return v
	}
	if dec, ok := decoders[b.Kind]; ok {
		return dec(b)
	}
	panic(fmt.Sprintf("outval: no decoder registered for output kind %d", b.Kind))
}

// DecodeSlot materializes one engine output slot: a typed body (non-zero
// Kind) decodes, the zero body means the value lives in the boxed escape
// slot. Both engines' Result boundaries and every dense-output consumer
// share this rule through here.
func DecodeSlot(b wire.Body, escape any) any {
	if b.Kind != 0 {
		return Decode(b)
	}
	return escape
}
