package bench

import (
	"fmt"
	"reflect"
	"time"

	"repro/internal/async"
	"repro/internal/graph"
	"repro/internal/shard"
)

// e14AsyncEngineThroughput measures the asynchronous engine itself: one
// flood broadcast per row under the Fixed{1} adversary — full-unit
// lookahead, the bounded-lag executor's best case — wall-clock per
// execution mode, events per second in Single mode, and a determinism
// check that Single and the parallel windows agree bit-for-bit on the
// entire Result (time, messages, per-proto counts, outputs). It is the
// experiment-table view of the parallel-engine microbenchmarks in
// internal/async, and the asynchronous sibling of E13.
//
// Like E13 it runs as one serial job (wall-clock columns would distort
// under concurrent trials) and its timing columns are inherently
// non-reproducible; the det column must always read true. On a single-core
// host the multi column measures pure staging overhead — the honest
// baseline for the speedup the same binary gets on real hardware.
//
// With Options.Shards >= 1 each case gets one extra "shards=K" row that
// runs the same flood through the multi-process window protocol
// (in-process workers over unix sockets): the single(ms) column is then
// the serial engine on the shard package's flood workload, multi(ms) the
// sharded wall clock, and det the byte-identity of the merged Result.
func e14AsyncEngineThroughput(c *Ctx) {
	t := c.table("flood from node 0, Fixed{1} delays; events = 4m; modes must agree exactly (det column).")
	t.head("graph", "n", "links", "single(ms)", "multi(ms)", "Kev/s", "det")
	cases := []namedGraph{
		{"grid 50x50", func() *graph.Graph { return graph.Grid(50, 50) }},
		{"er n=10k m=40k", func() *graph.Graph { return graph.RandomConnected(10_000, 40_000, 11) }},
		{"er n=20k m=80k", func() *graph.Graph { return graph.RandomConnected(20_000, 80_000, 12) }},
	}
	if c.custom != nil {
		cases = append(cases, namedGraph{c.gspec, func() *graph.Graph { return c.custom }})
	}
	t.emit(c.jobs(1, func(int) []row {
		rows := make([]row, 0, len(cases))
		for _, r := range cases {
			g := r.mk()
			mk := func(graph.NodeID) async.Handler { return &floodK{k: 1} }
			// Both modes run on equally cold engines — timing a Reset-warmed
			// engine against a fresh one would credit engine reuse (its own
			// ~-40% effect, measured by BenchmarkSimFloodReset) to the mode.
			simSingle := async.New(g, async.Fixed{D: 1}, mk).WithMode(async.ModeSingle)
			t0 := time.Now()
			single := simSingle.Run()
			dSingle := time.Since(t0)
			simMulti := async.New(g, async.Fixed{D: 1}, mk).WithMode(async.ModeMulti)
			t1 := time.Now()
			multi := simMulti.Run()
			dMulti := time.Since(t1)
			det := reflect.DeepEqual(single, multi)
			events := single.Msgs + single.Acks
			singleMs := float64(dSingle.Microseconds()) / 1000
			multiMs := float64(dMulti.Microseconds()) / 1000
			kevs := float64(events) / dSingle.Seconds() / 1000
			rows = append(rows, row{
				cols: []any{r.name, g.N(), g.Links(), singleMs, multiMs, kevs, det},
				rec: Rec{"graph": r.name, "n": g.N(), "links": g.Links(),
					"singleMs": singleMs, "multiMs": multiMs, "kEvPerSec": kevs,
					"deterministic": det},
			})
		}
		if c.shards >= 1 {
			for _, r := range cases {
				rows = append(rows, e14ShardRow(c, r))
			}
		}
		return rows
	}))
}

// e14ShardRow runs one E14 case through the sharded coordinator and its
// serial reference, or nothing when Options.Shards is off.
func e14ShardRow(c *Ctx, r namedGraph) row {
	g := r.mk()
	mk, err := shard.NewWorkload("flood", shard.WorkloadConfig{Sources: []graph.NodeID{0}})
	if err != nil {
		panic(err) // unreachable: "flood" is a registered workload
	}
	simSerial := async.New(g, async.Fixed{D: 1}, mk).WithMode(async.ModeSingle)
	t0 := time.Now()
	serial := simSerial.Run()
	dSerial := time.Since(t0)
	t1 := time.Now()
	rep, err := shard.Run(shard.Config{
		Graph:     g,
		Workload:  "flood",
		Adversary: "fixed:1",
		Sources:   []graph.NodeID{0},
		Shards:    c.shards,
		Launch:    shard.LaunchInProc,
	})
	dShard := time.Since(t1)
	det := err == nil && reflect.DeepEqual(serial, rep.Result) // err short-circuits before rep is touched
	name := fmt.Sprintf("%s shards=%d", r.name, c.shards)
	events := serial.Msgs + serial.Acks
	serialMs := float64(dSerial.Microseconds()) / 1000
	shardMs := float64(dShard.Microseconds()) / 1000
	kevs := float64(events) / dShard.Seconds() / 1000
	return row{
		cols: []any{name, g.N(), g.Links(), serialMs, shardMs, kevs, det},
		rec: Rec{"graph": name, "n": g.N(), "links": g.Links(), "shards": c.shards,
			"singleMs": serialMs, "multiMs": shardMs, "kEvPerSec": kevs,
			"deterministic": det},
	}
}
