package syncrun

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/wire"
)

// forceMulti returns a runner with the worker pool forced on regardless of
// graph or activation-set size.
func forceMulti(g *graph.Graph, mk func(graph.NodeID) Handler) *Runner {
	return New(g, mk).WithMode(ModeMulti).WithWorkers(4).WithMinParallel(1)
}

func TestMultiSendTriggeredActivation(t *testing.T) {
	g := graph.Path(2)
	res := forceMulti(g, func(graph.NodeID) Handler { return &pingPong{} }).Run()
	if res.M != 3 {
		t.Fatalf("M = %d, want 3 (send-triggered chain)", res.M)
	}
	if res.Outputs[1] != 3 {
		t.Fatalf("node 1 output %v, want pulse 3", res.Outputs[1])
	}
}

func TestMultiDoubleSendPanics(t *testing.T) {
	g := graph.Path(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double send in Multi mode")
		}
	}()
	forceMulti(g, func(graph.NodeID) Handler { return &doubleSender{} }).Run()
}

// pulseDoubleSender violates CONGEST inside Pulse (not Init), so the panic
// crosses the worker-pool boundary and must still surface to the caller.
type pulseDoubleSender struct{}

func (h *pulseDoubleSender) Init(n API) {
	if n.ID() == 0 {
		n.Send(1, wire.Tag(1))
	}
}

func (h *pulseDoubleSender) Pulse(n API, p int, recvd []Incoming) {
	if n.ID() == 1 && len(recvd) > 0 {
		n.Send(0, wire.Tag(1))
		n.Send(0, wire.Tag(2))
	}
}

func TestMultiWorkerPanicPropagates(t *testing.T) {
	g := graph.Path(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected worker panic to propagate")
		}
	}()
	forceMulti(g, func(graph.NodeID) Handler { return &pulseDoubleSender{} }).Run()
}

func TestMultiBFSMatchesSingle(t *testing.T) {
	g := graph.RandomConnected(300, 900, 4)
	mk := func(graph.NodeID) Handler { return &syncBFS{src: 0} }
	single := New(g, mk).WithMode(ModeSingle).KeepTrace().Run()
	multi := forceMulti(g, mk).KeepTrace().Run()
	if single.T != multi.T || single.M != multi.M || single.Rounds != multi.Rounds {
		t.Fatalf("scalars differ: %+v vs %+v", single, multi)
	}
	for i := range single.Trace {
		a, b := single.Trace[i], multi.Trace[i]
		if a.Pulse != b.Pulse || a.From != b.From || a.To != b.To || !wire.Equal(a.Body, b.Body) {
			t.Fatalf("trace[%d]: %+v vs %+v", i, a, b)
		}
	}
	for v, out := range single.Outputs {
		if multi.Outputs[v] != out {
			t.Fatalf("node %d: %v vs %v", v, out, multi.Outputs[v])
		}
	}
}

// TestBatchesSortedBySender checks the order-preserving delivery property
// that replaced the per-batch sort: every Pulse batch arrives sorted by
// sender, in both modes.
type sortChecker struct {
	t    *testing.T
	seen bool
}

func (h *sortChecker) Init(n API) {
	// Star center is node 0; leaves all send to it at pulse 1.
	if n.ID() != 0 {
		n.Send(0, wire.Body{Kind: 1, A: int64(n.ID())})
	}
}

func (h *sortChecker) Pulse(n API, p int, recvd []Incoming) {
	for i := 1; i < len(recvd); i++ {
		if recvd[i-1].From >= recvd[i].From {
			h.t.Errorf("batch not sorted by sender: %v before %v", recvd[i-1].From, recvd[i].From)
		}
	}
	if n.ID() == 0 && len(recvd) > 0 {
		h.seen = true
	}
}

func TestBatchesSortedBySender(t *testing.T) {
	g := graph.Star(200)
	for _, mode := range []ExecutionMode{ModeSingle, ModeMulti} {
		var center *sortChecker
		r := New(g, func(id graph.NodeID) Handler {
			h := &sortChecker{t: t}
			if id == 0 {
				center = h
			}
			return h
		}).WithMode(mode).WithWorkers(4).WithMinParallel(1)
		r.Run()
		if !center.seen {
			t.Fatalf("mode %v: center received no batch", mode)
		}
	}
}
