package bench

import (
	"io"
	"runtime"
	"testing"
)

// Harness wall-time: the same deterministic experiment subset executed
// serially vs on the job runner's worker pool. The tables are byte-
// identical either way; only the wall-clock differs.

func BenchmarkHarnessSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := Run(io.Discard, deterministicSubset, Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHarnessParallel(b *testing.B) {
	workers := runtime.NumCPU()
	for i := 0; i < b.N; i++ {
		if err := Run(io.Discard, deterministicSubset, Options{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}
