// Package cover builds sparse d-covers (Definition 2.1) and layered covers
// from the k-separated network decomposition, following Theorem 4.21:
// construct a (2d+1)-separated weak-diameter decomposition, then expand
// every cluster to its d-neighborhood. Same-color clusters are more than
// 2d+1 apart, so the d-expansions stay disjoint per color, every node lands
// in O(log n) clusters (at most one per color), and for every node v the
// expansion of v's own decomposition cluster contains v's entire d-ball.
package cover

import (
	"fmt"
	"sort"

	"repro/internal/decomp"
	"repro/internal/graph"
)

// ClusterID identifies a cluster within one Cover.
type ClusterID int

// Cluster is one cover cluster: member nodes plus a rooted cluster tree
// (weak: the tree may pass through non-member Steiner nodes).
type Cluster struct {
	ID      ClusterID
	Root    graph.NodeID
	Members []graph.NodeID // ascending
	Tree    *decomp.Tree
}

// Has reports whether v is a member (terminal) of the cluster.
func (c *Cluster) Has(v graph.NodeID) bool {
	i := sort.Search(len(c.Members), func(i int) bool { return c.Members[i] >= v })
	return i < len(c.Members) && c.Members[i] == v
}

// ParentOf returns v's parent in the cluster tree; ok=false at the root.
func (c *Cluster) ParentOf(v graph.NodeID) (graph.NodeID, bool) {
	p, ok := c.Tree.Parent[v]
	return p, ok
}

// ChildrenOf returns v's children in the cluster tree (ascending); the
// returned slice must not be mutated.
func (c *Cluster) ChildrenOf(v graph.NodeID) []graph.NodeID {
	return c.Tree.Children[v]
}

// Cover is a sparse d-cover: a set of clusters such that every node is in
// O(log n) clusters and every node's d-ball is fully inside at least one
// cluster.
type Cover struct {
	// D is the covered radius: any two nodes at distance <= D share a
	// cluster.
	D        int
	Clusters []*Cluster
	// memberOf[v] lists clusters that contain v as a member.
	memberOf [][]ClusterID
	// treeOf[v] lists clusters whose tree v participates in (superset of
	// memberOf: Steiner nonterminals relay but are not covered).
	treeOf [][]ClusterID
	// home[v] is a cluster guaranteed to contain Ball(v, D).
	home []ClusterID
}

// MemberOf returns the clusters containing v, ascending by id. Do not
// mutate.
func (c *Cover) MemberOf(v graph.NodeID) []ClusterID { return c.memberOf[v] }

// TreeOf returns the clusters whose tree v participates in, ascending by
// id. Do not mutate.
func (c *Cover) TreeOf(v graph.NodeID) []ClusterID { return c.treeOf[v] }

// Home returns a cluster whose member set contains every node within
// distance D of v (the strengthened covering property of Definition 2.1).
func (c *Cover) Home(v graph.NodeID) ClusterID { return c.home[v] }

// Cluster returns the cluster with the given id.
func (c *Cover) Cluster(id ClusterID) *Cluster { return c.Clusters[id] }

// MaxTreeDepth returns the deepest cluster tree in the cover.
func (c *Cover) MaxTreeDepth() int {
	max := 0
	for _, cl := range c.Clusters {
		if d := cl.Tree.Depth(); d > max {
			max = d
		}
	}
	return max
}

// Build constructs a sparse d-cover of the nodes in s (nil = all nodes) by
// Theorem 4.21. Deterministic.
func Build(g *graph.Graph, d int, s []graph.NodeID) *Cover {
	if d < 1 {
		panic(fmt.Sprintf("cover: d must be >= 1, got %d", d))
	}
	dec := decomp.Build(g, 2*d+1, s)
	cov := &Cover{
		D:        d,
		memberOf: make([][]ClusterID, g.N()),
		treeOf:   make([][]ClusterID, g.N()),
		home:     make([]ClusterID, g.N()),
	}
	for i := range cov.home {
		cov.home[i] = -1
	}
	inS := make([]bool, g.N())
	if s == nil {
		for i := range inS {
			inS[i] = true
		}
	} else {
		for _, v := range s {
			inS[v] = true
		}
	}
	// decClusterIdx maps a decomposition cluster to its expanded cover
	// cluster id, to fill home[].
	type expanded struct {
		cl  *Cluster
		dec *decomp.Cluster
	}
	var all []expanded
	for _, colorClusters := range dec.Colors {
		for _, dc := range colorClusters {
			all = append(all, expanded{cl: expandCluster(g, d, dc, inS), dec: dc})
		}
	}
	for i, ex := range all {
		ex.cl.ID = ClusterID(i)
		cov.Clusters = append(cov.Clusters, ex.cl)
		for _, v := range ex.cl.Members {
			cov.memberOf[v] = append(cov.memberOf[v], ex.cl.ID)
		}
		for tv := range ex.cl.Tree.DepthOf {
			cov.treeOf[tv] = append(cov.treeOf[tv], ex.cl.ID)
		}
		for _, v := range ex.dec.Members {
			cov.home[v] = ex.cl.ID
		}
	}
	return cov
}

// expandCluster grows dc to its d-neighborhood among nodes of s, extending
// the Steiner tree along BFS paths (through any relay nodes in G).
func expandCluster(g *graph.Graph, d int, dc *decomp.Cluster, inS []bool) *Cluster {
	tree := cloneTree(dc.Tree)
	// Multi-source BFS from the cluster members through all of G.
	dist := make([]int, g.N())
	par := make([]graph.NodeID, g.N())
	for i := range dist {
		dist[i] = -1
		par[i] = -1
	}
	var queue, order []graph.NodeID
	for _, v := range dc.Members {
		dist[v] = 0
		queue = append(queue, v)
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if dist[v] == d {
			continue
		}
		for _, nb := range g.Neighbors(v) {
			if dist[nb.Node] < 0 {
				dist[nb.Node] = dist[v] + 1
				par[nb.Node] = v
				queue = append(queue, nb.Node)
				order = append(order, nb.Node)
			}
		}
	}
	members := append([]graph.NodeID(nil), dc.Members...)
	for _, v := range order {
		if !inS[v] {
			continue // only cover nodes of the target set
		}
		members = append(members, v)
		attachPath(tree, v, par)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return &Cluster{Root: tree.Root, Members: members, Tree: tree}
}

// attachPath splices the BFS path from v back to the tree into the tree.
func attachPath(tree *decomp.Tree, v graph.NodeID, par []graph.NodeID) {
	var chain []graph.NodeID
	w := v
	for !tree.Has(w) {
		chain = append(chain, w)
		w = par[w]
		if w < 0 {
			panic("cover: BFS path did not reach the cluster tree")
		}
	}
	for i := len(chain) - 1; i >= 0; i-- {
		c := chain[i]
		tree.Parent[c] = w
		tree.Children[w] = insertSorted(tree.Children[w], c)
		tree.DepthOf[c] = tree.DepthOf[w] + 1
		w = c
	}
}

func cloneTree(t *decomp.Tree) *decomp.Tree {
	out := &decomp.Tree{
		Root:     t.Root,
		Parent:   make(map[graph.NodeID]graph.NodeID, len(t.Parent)),
		Children: make(map[graph.NodeID][]graph.NodeID, len(t.Children)),
		DepthOf:  make(map[graph.NodeID]int, len(t.DepthOf)),
	}
	for k, v := range t.Parent {
		out.Parent[k] = v
	}
	for k, v := range t.Children {
		out.Children[k] = append([]graph.NodeID(nil), v...)
	}
	for k, v := range t.DepthOf {
		out.DepthOf[k] = v
	}
	return out
}

func insertSorted(s []graph.NodeID, v graph.NodeID) []graph.NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Layered is a layered sparse d-cover: sparse 2^j-covers for all
// j in 0..⌈log₂ d⌉ (§2.1).
type Layered struct {
	// Levels[j] is a sparse 2^j-cover.
	Levels []*Cover
}

// BuildLayered constructs the layered sparse cover up to radius d.
func BuildLayered(g *graph.Graph, d int, s []graph.NodeID) *Layered {
	if d < 1 {
		panic(fmt.Sprintf("cover: layered d must be >= 1, got %d", d))
	}
	var levels []*Cover
	for j := 0; ; j++ {
		r := 1 << uint(j)
		levels = append(levels, Build(g, r, s))
		if r >= d {
			break
		}
	}
	return &Layered{Levels: levels}
}

// Level returns the sparse 2^j-cover; panics when j exceeds what was built.
func (l *Layered) Level(j int) *Cover {
	if j < 0 || j >= len(l.Levels) {
		panic(fmt.Sprintf("cover: level %d not built (have %d)", j, len(l.Levels)))
	}
	return l.Levels[j]
}

// MaxLevel returns the largest built level index.
func (l *Layered) MaxLevel() int { return len(l.Levels) - 1 }
