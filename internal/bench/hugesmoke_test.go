package bench

import (
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/async"
	"repro/internal/graph"
	"repro/internal/shard"
	"repro/internal/syncrun"
)

// smokeHeapCeilingMB caps the settled live heap with the graph plane and
// BOTH finished engines still held: a million-node grid3d costs ~124 MB of
// CSR, ~130 MB of async engine, and ~250 MB of lockstep runner + BFS
// handler state + dense outputs. The ceiling has slack for runtime size
// classes but sits far below what the pre-compact (64-bit ids, eager
// per-link slices) layout needed, so a wholesale footprint regression
// fails the smoke even if every unit pin is individually evaded.
const smokeHeapCeilingMB = 1024

// TestMillionNodeSmoke is the CI million-node gate: build a 1M-node
// implicit grid3d, run an async flood and a lockstep BFS to completion,
// and check message counts, BFS depth, and the peak-footprint ceiling.
// It is opt-in (SMOKE_1M=1) because it costs tens of seconds and hundreds
// of megabytes — the dedicated CI job runs it; `go test ./...` skips it.
func TestMillionNodeSmoke(t *testing.T) {
	if os.Getenv("SMOKE_1M") == "" {
		t.Skip("set SMOKE_1M=1 to run the million-node smoke (CI smoke-1m job)")
	}
	g := mustSpec("grid3d:100x100x100")
	if g.N() != 1_000_000 {
		t.Fatalf("n = %d, want 1,000,000", g.N())
	}

	sim := async.New(g, async.Fixed{D: 1}, func(graph.NodeID) async.Handler {
		return &leanFlood{}
	})
	fres := sim.Run()
	// Every node relays the flood exactly once to all its neighbors, so
	// messages equal directed links and every link acks once.
	if fres.Msgs != uint64(g.Links()) || fres.Acks != fres.Msgs {
		t.Errorf("flood msgs/acks = %d/%d, want %d/%d", fres.Msgs, fres.Acks, g.Links(), g.Links())
	}

	r := syncrun.New(g, func(graph.NodeID) syncrun.Handler {
		return &apps.BFS{Sources: []graph.NodeID{0}}
	}).WithDenseOutputs()
	bres := r.Run()
	// From corner 0 the farthest cell is the opposite corner: 3·99 hops.
	if bres.T != 297 {
		t.Errorf("BFS T = %d, want 297", bres.T)
	}
	outs := 0
	for _, set := range bres.OutSet {
		if set {
			outs++
		}
	}
	if outs != g.N() {
		t.Errorf("BFS produced %d outputs, want %d", outs, g.N())
	}

	if mb := settledHeap() / (1 << 20); mb > smokeHeapCeilingMB {
		t.Errorf("settled live heap %d MB exceeds the %d MB ceiling", mb, smokeHeapCeilingMB)
	}
	// Keep everything reachable until after the heap reading.
	runtime.KeepAlive(g)
	runtime.KeepAlive(sim)
	runtime.KeepAlive(r)
}

// TestTenMillionNodeRun is the full-scale run behind DESIGN.md's memory
// model numbers: a ~10M-node grid3d (215³ = 9,938,375 nodes, ~59.4M
// directed links), async flood and lockstep BFS to completion, with
// per-phase wall time, throughput, and retained bytes logged. Opt-in via
// SMOKE_10M=1 and -v; it wants ~5 GB of RAM and a few minutes.
func TestTenMillionNodeRun(t *testing.T) {
	if os.Getenv("SMOKE_10M") == "" {
		t.Skip("set SMOKE_10M=1 to run the ten-million-node measurement")
	}
	const spec = "grid3d:215x215x215"
	t0 := time.Now()
	gBytes, err := GraphRetainedBytes(spec)
	if err != nil {
		t.Fatal(err)
	}
	g := mustSpec(spec)
	links, n := float64(g.Links()), float64(g.N())
	t.Logf("graph: n=%d links=%d built twice in %.1fs, retained %.0f MB (%.1f B/link)",
		g.N(), g.Links(), time.Since(t0).Seconds(), float64(gBytes)/(1<<20), float64(gBytes)/links)

	sim := async.New(g, async.Fixed{D: 1}, func(graph.NodeID) async.Handler {
		return &leanFlood{}
	})
	t1 := time.Now()
	fres := sim.Run()
	floodSec := time.Since(t1).Seconds()
	if fres.Msgs != uint64(g.Links()) {
		t.Errorf("flood msgs = %d, want %d", fres.Msgs, g.Links())
	}
	events := fres.Msgs + fres.Acks
	// The engine's retained bytes are the settled-heap drop when it is
	// released (rebuilding a 10M-node engine just to probe it would double
	// the runtime; the release delta measures the same resident set). The
	// KeepAlive pins the engine through the first reading; it is dead —
	// and collected — by the second.
	withSim := settledHeap()
	runtime.KeepAlive(sim)
	aBytes := int64(withSim) - int64(settledHeap())
	t.Logf("flood: %d events in %.1fs (%.2f Mev/s), engine retained %.0f MB (%.1f B/link)",
		events, floodSec, float64(events)/floodSec/1e6, float64(aBytes)/(1<<20), float64(aBytes)/links)

	r := syncrun.New(g, func(graph.NodeID) syncrun.Handler {
		return &apps.BFS{Sources: []graph.NodeID{0}}
	}).WithDenseOutputs()
	t2 := time.Now()
	bres := r.Run()
	bfsSec := time.Since(t2).Seconds()
	if bres.T != 3*214 {
		t.Errorf("BFS T = %d, want %d", bres.T, 3*214)
	}
	withR := settledHeap()
	runtime.KeepAlive(r)
	sBytes := int64(withR) - int64(settledHeap())
	t.Logf("BFS: T=%d, %d msgs in %.1fs (%.2f Mmsg/s), engine retained %.0f MB (%.1f B/node)",
		bres.T, bres.M, bfsSec, float64(bres.M)/bfsSec/1e6, float64(sBytes)/(1<<20), float64(sBytes)/n)
	runtime.KeepAlive(g)
	totalLinks := uint64(g.Links())
	g = nil // the shard phase re-derives everything from the spec; free ~1.2 GB first

	// Sharded attribution: the same flood on K worker processes, each
	// reporting its own graph plane (closed-form sub-CSR bytes), engine
	// delta, and settled heap — the per-process split of the aggregate
	// numbers above (SMOKE_10M_SHARDS overrides K, default 2).
	k := 2
	if s := os.Getenv("SMOKE_10M_SHARDS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			t.Fatalf("bad SMOKE_10M_SHARDS %q", s)
		}
		k = v
	}
	t3 := time.Now()
	rep, err := shard.Run(shard.Config{
		GraphSpec: spec,
		Workload:  "flood",
		Adversary: "fixed:1",
		Shards:    k,
		Launch:    shard.LaunchProcess,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Msgs != totalLinks {
		t.Errorf("sharded flood msgs = %d, want %d", rep.Result.Msgs, totalLinks)
	}
	st := rep.Stats
	t.Logf("sharded flood (K=%d): %d events in %.1fs wall — windows=%d frames=%d, startup=%.1fs worker=%.1fs comm=%.1fs merge=%.1fs",
		k, st.TotalEvents, time.Since(t3).Seconds(), st.Windows, st.Frames,
		float64(st.StartupNs)/1e9, float64(st.WorkerNs)/1e9, float64(st.CommNs)/1e9, float64(st.MergeNs)/1e9)
	for i, si := range rep.Shards {
		t.Logf("  shard %d: nodes=%d links=%d boundary=%d — graph %.0f MB (%.1f B/link), engine %.0f MB (%.1f B/link), settled heap %d MB",
			i, si.Nodes, si.Links, si.Boundary,
			float64(si.GraphBytes)/(1<<20), float64(si.GraphBytes)/float64(si.Links),
			float64(si.EngineBytes)/(1<<20), float64(si.EngineBytes)/float64(si.Links), si.HeapMB)
	}
}
