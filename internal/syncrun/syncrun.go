// Package syncrun executes event-driven synchronous algorithms (§5.1,
// Appendix B of the paper) in lockstep rounds and measures their time
// complexity T(A) (rounds until every node has output) and message
// complexity M(A) (total messages).
//
// The event-driven interpretation is enforced structurally: a node's
// handler runs in round p only when the node received a message that round
// or sent one in round p-1 — it cannot wake up because "r rounds passed".
// Handlers do receive the current pulse number p; this is exactly the
// information the synchronizer of §5 reconstructs (it proves
// pulse(v,p) = p), so providing it changes nothing about synchronizability
// while making algorithms like BFS natural to write.
package syncrun

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Incoming is one received message: the sender and the payload.
type Incoming struct {
	From graph.NodeID
	Body any
}

// API is the surface an event-driven synchronous algorithm sees. The
// lockstep Runner in this package implements it with *Node; the
// synchronizer of internal/core implements it again so the identical
// algorithm code runs asynchronously.
type API interface {
	// ID returns this node's identifier.
	ID() graph.NodeID
	// Neighbors returns adjacent nodes in ascending order.
	Neighbors() []graph.Neighbor
	// Degree returns the node degree.
	Degree() int
	// Send transmits body to a neighbor; it arrives next pulse. At most
	// one message per neighbor per pulse (CONGEST link capacity).
	Send(to graph.NodeID, body any)
	// Output records this node's final output.
	Output(v any)
	// HasOutput reports whether output was already produced.
	HasOutput() bool
}

// Handler is an event-driven synchronous node program.
type Handler interface {
	// Init runs at pulse 0. Initiator nodes send their first messages here.
	Init(n API)
	// Pulse runs at pulse p > 0 if this node received messages sent at
	// pulse p-1 (recvd, sorted by sender) or itself sent at pulse p-1.
	// It may send messages (which then carry pulse p).
	Pulse(n API, p int, recvd []Incoming)
}

// Node is the Runner's API implementation.
type Node struct {
	id     graph.NodeID
	run    *Runner
	sentTo map[graph.NodeID]bool // per-pulse CONGEST guard
}

var _ API = (*Node)(nil)

// ID returns the node id.
func (n *Node) ID() graph.NodeID { return n.id }

// Neighbors returns adjacent nodes in ascending order.
func (n *Node) Neighbors() []graph.Neighbor { return n.run.g.Neighbors(n.id) }

// Degree returns the node degree.
func (n *Node) Degree() int { return n.run.g.Degree(n.id) }

// Send transmits body to neighbor `to`; it arrives next pulse. At most one
// message per neighbor per pulse (CONGEST-style link capacity; the async
// ack discipline enforces the same limit, so algorithms written against
// this runner synchronize without surprises).
func (n *Node) Send(to graph.NodeID, body any) {
	if n.run.g.EdgeBetween(n.id, to) < 0 {
		panic(fmt.Sprintf("syncrun: node %d sending to non-neighbor %d", n.id, to))
	}
	if n.sentTo[to] {
		panic(fmt.Sprintf("syncrun: node %d sent twice to %d in one pulse", n.id, to))
	}
	n.sentTo[to] = true
	n.run.record(n.id, to, body)
}

// Output records this node's final output.
func (n *Node) Output(v any) { n.run.setOutput(n.id, v) }

// HasOutput reports whether this node already produced output.
func (n *Node) HasOutput() bool {
	_, ok := n.run.outputs[n.id]
	return ok
}

// TraceEntry records one message for trace-equivalence checking against the
// synchronized asynchronous execution (Theorem 5.2).
type TraceEntry struct {
	Pulse    int
	From, To graph.NodeID
	Body     any
}

// Result summarizes a synchronous run.
type Result struct {
	// T is the paper's T(A): rounds until the last node outputs.
	T int
	// Rounds is the round at which the network went quiet.
	Rounds int
	// M is the paper's M(A): total messages sent.
	M uint64
	// Outputs maps node -> output.
	Outputs map[graph.NodeID]any
	// Trace lists every message with its pulse (in deterministic order).
	Trace []TraceEntry
}

// Runner executes one synchronous algorithm on one graph.
type Runner struct {
	g        *graph.Graph
	handlers []Handler
	nodes    []Node

	pulse     int
	inflight  map[graph.NodeID][]Incoming // messages sent this pulse
	sentNow   map[graph.NodeID]bool       // who sent this pulse
	outputs   map[graph.NodeID]any
	lastOut   int
	msgs      uint64
	trace     []TraceEntry
	maxRounds int
	keepTrace bool
}

// New builds a Runner; mk creates each node's handler.
func New(g *graph.Graph, mk func(id graph.NodeID) Handler) *Runner {
	r := &Runner{
		g:         g,
		handlers:  make([]Handler, g.N()),
		nodes:     make([]Node, g.N()),
		inflight:  make(map[graph.NodeID][]Incoming),
		sentNow:   make(map[graph.NodeID]bool),
		outputs:   make(map[graph.NodeID]any, g.N()),
		maxRounds: 1 << 22,
	}
	for i := 0; i < g.N(); i++ {
		id := graph.NodeID(i)
		r.nodes[i] = Node{id: id, run: r}
		r.handlers[i] = mk(id)
	}
	return r
}

// KeepTrace enables message-trace recording (used by equivalence tests).
func (r *Runner) KeepTrace() *Runner { r.keepTrace = true; return r }

// SetMaxRounds caps the number of rounds; exceeding it panics.
func (r *Runner) SetMaxRounds(limit int) { r.maxRounds = limit }

// Handler returns node v's handler for post-run inspection.
func (r *Runner) Handler(v graph.NodeID) Handler { return r.handlers[v] }

// Run executes to quiescence and returns measurements.
func (r *Runner) Run() Result {
	// Pulse 0: initiators act.
	for i := range r.handlers {
		n := &r.nodes[i]
		n.sentTo = make(map[graph.NodeID]bool)
		r.handlers[i].Init(n)
	}
	for r.pulse = 1; ; r.pulse++ {
		if r.pulse > r.maxRounds {
			panic(fmt.Sprintf("syncrun: exceeded %d rounds", r.maxRounds))
		}
		inbox := r.inflight
		senders := r.sentNow
		if len(inbox) == 0 && len(senders) == 0 {
			break
		}
		r.inflight = make(map[graph.NodeID][]Incoming)
		r.sentNow = make(map[graph.NodeID]bool)

		// Activation set: received this pulse or sent last pulse.
		active := make(map[graph.NodeID]bool, len(inbox)+len(senders))
		for v := range inbox {
			active[v] = true
		}
		for v := range senders {
			active[v] = true
		}
		ids := make([]graph.NodeID, 0, len(active))
		for v := range active {
			ids = append(ids, v)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

		for _, v := range ids {
			batch := inbox[v]
			sort.Slice(batch, func(i, j int) bool { return batch[i].From < batch[j].From })
			n := &r.nodes[v]
			n.sentTo = make(map[graph.NodeID]bool)
			r.handlers[v].Pulse(n, r.pulse, batch)
		}
	}
	return Result{
		T:       r.lastOut,
		Rounds:  r.pulse - 1,
		M:       r.msgs,
		Outputs: r.outputs,
		Trace:   r.trace,
	}
}

func (r *Runner) record(from, to graph.NodeID, body any) {
	r.msgs++
	r.inflight[to] = append(r.inflight[to], Incoming{From: from, Body: body})
	r.sentNow[from] = true
	if r.keepTrace {
		r.trace = append(r.trace, TraceEntry{Pulse: r.pulse, From: from, To: to, Body: body})
	}
}

func (r *Runner) setOutput(id graph.NodeID, v any) {
	if _, had := r.outputs[id]; !had && r.pulse > r.lastOut {
		r.lastOut = r.pulse
	}
	r.outputs[id] = v
}
