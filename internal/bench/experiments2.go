package bench

import (
	"io"

	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/gather"
	"repro/internal/graph"
	"repro/internal/reg"
	"repro/internal/syncrun"
)

// regClient drives one node for E7: register in all clusters at Start,
// deregister as soon as registered, stop at the Go-Ahead.
type regClient struct {
	mod interface {
		async.Module
		Register(n *async.Node, c cover.ClusterID, session int)
		Deregister(n *async.Node, c cover.ClusterID, session int)
	}
	clusters []cover.ClusterID
}

func (c *regClient) Start(n *async.Node) {
	for _, cid := range c.clusters {
		c.mod.Register(n, cid, 0)
	}
}
func (c *regClient) Recv(*async.Node, graph.NodeID, async.Msg) {}
func (c *regClient) Ack(*async.Node, graph.NodeID, async.Msg)  {}

// Registered implements reg.Callbacks.
func (c *regClient) Registered(n *async.Node, cid cover.ClusterID, s int) {
	c.mod.Deregister(n, cid, s)
}

// GoAhead implements reg.Callbacks.
func (c *regClient) GoAhead(n *async.Node, _ cover.ClusterID, _ int) {
	n.Output(true)
}

// E7RegistrationCongestion reproduces §3.2's core claim: the "natural"
// route-everything-to-the-root registration needs Ω(n) time on a shallow
// tree with many registrants behind one edge, while the wave-based
// algorithm stays proportional to the tree height per operation.
func E7RegistrationCongestion(w io.Writer) {
	t := newTable(w, "E7: registration congestion — wave (§3.2) vs naive root-routing ([AP90a])",
		"star-of-paths: every node registers once; naive funnels Θ(n) messages through the hub")
	t.row("deg", "pathLen", "n", "scheme", "time", "msgs")
	for _, tc := range []struct{ deg, plen int }{{4, 8}, {8, 16}, {8, 32}} {
		g := graph.StarOfPaths(tc.deg, tc.plen)
		cl := cover.BFSTreeCluster(g, 0)
		cov := cover.NewExplicit(g.N(), g.N(), []*cover.Cluster{cl})
		for _, scheme := range []string{"wave", "naive"} {
			sim := async.New(g, async.Fixed{D: 1}, func(id graph.NodeID) async.Handler {
				client := &regClient{clusters: []cover.ClusterID{0}}
				if scheme == "wave" {
					client.mod = reg.New(1, cov, client, nil)
				} else {
					client.mod = reg.NewNaive(1, cov, client, nil)
				}
				mux := async.NewMux()
				mux.Register(1, client.mod)
				mux.Register(2, client)
				return mux
			})
			res := sim.Run()
			t.row(tc.deg, tc.plen, g.N(), scheme, res.QuiesceTime, res.Msgs)
		}
	}
	t.flush()
}

// E8AlphaBlowup isolates Appendix A's α message term M(A) + Θ(T(A)·m):
// a token ping-pong (T = M = rounds) on a dense low-diameter graph.
func E8AlphaBlowup(w io.Writer) {
	t := newTable(w, "E8: α message blow-up vs main synchronizer (App. A)",
		"ping workload: M(A)=T(A)=n on ER(n, 6n); α pays Θ(T·m), main stays polylog/pulse")
	t.row("n", "m", "M(A)", "alpha-msgs", "main-msgs", "ratio", "alpha-time", "main-time")
	for _, n := range []int{64, 128, 256} {
		g := graph.RandomConnected(n, 6*n, 5)
		rounds := n
		mk := func(graph.NodeID) syncrun.Handler { return &pingAlgo{rounds: rounds} }
		alpha := core.SynchronizeAlpha(g, rounds+1, async.Fixed{D: 1}, mk)
		main := core.Synchronize(core.Config{Graph: g, Bound: rounds + 1,
			Adversary: async.Fixed{D: 1}}, mk)
		t.row(n, g.M(), rounds, alpha.Msgs, main.Msgs,
			float64(alpha.Msgs)/float64(main.Msgs), alpha.Time, main.Time)
	}
	t.flush()
}

// pingAlgo bounces a token between nodes 0 and 1 (T = M = rounds).
type pingAlgo struct{ rounds int }

func (h *pingAlgo) Init(n syncrun.API) {
	if n.ID() == 0 {
		n.Send(1, 0)
	}
}

func (h *pingAlgo) Pulse(n syncrun.API, _ int, recvd []syncrun.Incoming) {
	if len(recvd) == 0 {
		return
	}
	k := recvd[0].Body.(int)
	if k+1 >= h.rounds {
		n.Output(k)
		return
	}
	n.Send(recvd[0].From, k+1)
}

// E9AdversaryRobustness runs the synchronized BFS under every standard
// delay adversary: outputs must be identical (determinism of the
// synchronized algorithm, Theorem 5.2); time varies within the bound.
func E9AdversaryRobustness(w io.Writer) {
	t := newTable(w, "E9: delay-adversary robustness (worst-case model, §1.1)",
		"synchronized BFS on grid 6x6; outputs must match the lockstep run under every adversary")
	t.row("adversary", "time", "msgs", "outputs-match")
	g := graph.Grid(6, 6)
	mk := bfsMk([]graph.NodeID{0})
	sres := syncrun.New(g, mk).Run()
	for _, adv := range async.StandardAdversaries(g.N(), 77) {
		res := core.Synchronize(core.Config{Graph: g, Bound: sres.Rounds + 2, Adversary: adv}, mk)
		match := len(res.Outputs) == len(sres.Outputs)
		for v, want := range sres.Outputs {
			if res.Outputs[v] != want {
				match = false
			}
		}
		t.row(adv.Name(), res.Time, res.Msgs, match)
	}
	t.flush()
}

// E10CoverQuality verifies Theorem 4.21's construction quality empirically:
// tree stretch (depth/d), per-edge tree congestion, per-node membership.
func E10CoverQuality(w io.Writer) {
	t := newTable(w, "E10: sparse cover quality (Thm 4.21)",
		"bounds: depth = O(d·log³n), congestion = O(log⁴n), membership = O(log n)")
	t.row("graph", "d", "clusters", "maxDepth", "depth/d", "maxCongestion", "maxMembership")
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"grid10x10", graph.Grid(10, 10)},
		{"er128", graph.RandomConnected(128, 400, 21)},
	} {
		for _, d := range []int{1, 2, 4, 8} {
			cov := cover.Build(tc.g, d, nil)
			maxDepth, maxMem := 0, 0
			cong := map[[2]graph.NodeID]int{}
			for _, cl := range cov.Clusters {
				if dep := cl.Tree.Depth(); dep > maxDepth {
					maxDepth = dep
				}
				for _, e := range cl.Tree.Edges() {
					key := e
					if key[0] > key[1] {
						key[0], key[1] = key[1], key[0]
					}
					cong[key]++
				}
			}
			maxCong := 0
			for _, c := range cong {
				if c > maxCong {
					maxCong = c
				}
			}
			for v := 0; v < tc.g.N(); v++ {
				if len(cov.MemberOf(graph.NodeID(v))) > maxMem {
					maxMem = len(cov.MemberOf(graph.NodeID(v)))
				}
			}
			t.row(tc.name, d, len(cov.Clusters), maxDepth,
				float64(maxDepth)/float64(d), maxCong, maxMem)
		}
	}
	t.flush()
}

// floodK is the E11 workload: node 0 starts k floods (one per proto); every
// node outputs once it has seen all k.
type floodK struct {
	k      int
	staged bool
	seen   map[async.Proto]bool
}

func (h *floodK) Start(n *async.Node) {
	h.seen = make(map[async.Proto]bool)
	if n.ID() != 0 {
		return
	}
	for i := 0; i < h.k; i++ {
		p := async.Proto(10 + i)
		h.seen[p] = true
		stage := 0
		if h.staged {
			stage = i
		}
		for _, nb := range n.Neighbors() {
			n.Send(nb.Node, async.Msg{Proto: p, Stage: stage, Body: "f"})
		}
	}
	if h.k == len(h.seen) && n.ID() == 0 {
		n.Output(true)
	}
}

func (h *floodK) Init(n *async.Node) { h.Start(n) }

func (h *floodK) Recv(n *async.Node, _ graph.NodeID, m async.Msg) {
	if h.seen[m.Proto] {
		return
	}
	h.seen[m.Proto] = true
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, m)
	}
	if len(h.seen) == h.k {
		n.Output(true)
	}
}

func (h *floodK) Ack(*async.Node, graph.NodeID, async.Msg) {}

// E11StagePipelining measures the composition machinery of §2.2: k
// simultaneous floods share every link of a path. Round-robin multiplexing
// (Cor 2.3) pipelines them in ≈ D + k time rather than k·D; stage
// priorities (Lem 2.5) preserve the same completion bound while strictly
// ordering the flows.
func E11StagePipelining(w io.Writer) {
	t := newTable(w, "E11: link multiplexing & stage priorities (Cor 2.3 / Lem 2.5)",
		"k floods over one path: pipelined completion ≈ D+k, far below the naive k·D")
	t.row("k", "D", "scheduling", "time", "time/(D+k)", "k·D")
	g := graph.Path(64)
	d := g.Diameter()
	for _, k := range []int{1, 2, 4, 8} {
		for _, staged := range []bool{false, true} {
			name := "round-robin"
			if staged {
				name = "staged"
			}
			kk := k
			sim := async.New(g, async.Fixed{D: 1}, func(graph.NodeID) async.Handler {
				return &floodK{k: kk, staged: staged}
			})
			res := sim.Run()
			t.row(k, d, name, res.Time, res.Time/float64(d+k), k*d)
		}
	}
	t.flush()
}

// gatherBench drives one gather session for E12.
type gatherBench struct {
	mod *gather.Module
}

func (c *gatherBench) Start(n *async.Node)                       { c.mod.MarkDone(n, 0) }
func (c *gatherBench) Recv(*async.Node, graph.NodeID, async.Msg) {}
func (c *gatherBench) Ack(*async.Node, graph.NodeID, async.Msg)  {}

// NeighborhoodDone implements gather.Callbacks.
func (c *gatherBench) NeighborhoodDone(n *async.Node, _ int) { n.Output(true) }

// E12GatherCost measures Theorem 3.1: completion detection in a sparse
// d-cover costs O(1) messages per tree edge per cluster and O(d·polylog)
// time.
func E12GatherCost(w io.Writer) {
	t := newTable(w, "E12: gather-in-covers cost (Thm 3.1)",
		"msgs vs 2·Σ|tree| budget; time grows with d, not n")
	t.row("graph", "d", "time", "msgs", "budget", "msgs/budget")
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"grid8x8", graph.Grid(8, 8)},
		{"er96", graph.RandomConnected(96, 250, 33)},
	} {
		for _, d := range []int{1, 2, 4} {
			cov := cover.Build(tc.g, d, nil)
			budget := uint64(0)
			for _, cl := range cov.Clusters {
				budget += uint64(2 * len(cl.Tree.DepthOf))
			}
			sim := async.New(tc.g, async.SeededRandom{Seed: 3}, func(graph.NodeID) async.Handler {
				gb := &gatherBench{}
				gb.mod = gather.New(1, cov, gb, nil)
				mux := async.NewMux()
				mux.Register(1, gb.mod)
				mux.Register(2, gb)
				return mux
			})
			res := sim.Run()
			t.row(tc.name, d, res.Time, res.Msgs, budget,
				float64(res.Msgs)/float64(budget))
		}
	}
	t.flush()
}
