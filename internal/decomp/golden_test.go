package decomp

import (
	"math/bits"
	"sort"
	"testing"

	"repro/internal/graph"
)

// This file carries a faithful copy of the seed's map-based builder as a
// reference implementation, and asserts the dense builder produces
// identical clusters, tree parents, and depths on the generator suite. The
// dense rewrite is a data-layout change only; any divergence here is a
// semantics regression.

type refTree struct {
	root     graph.NodeID
	parent   map[graph.NodeID]graph.NodeID
	children map[graph.NodeID][]graph.NodeID
	depthOf  map[graph.NodeID]int
}

func (t *refTree) has(v graph.NodeID) bool {
	if v == t.root {
		return true
	}
	_, ok := t.parent[v]
	return ok
}

type refCluster struct {
	label   uint64
	color   int
	members []graph.NodeID
	tree    *refTree
}

type refState struct {
	g      *graph.Graph
	k      int
	b      int
	alive  []bool
	label  []uint64
	trees  map[uint64]*refTree
	member map[uint64]map[graph.NodeID]bool
}

type refSeed struct {
	node  graph.NodeID
	label uint64
}

func refBuild(g *graph.Graph, k int, s []graph.NodeID) [][]*refCluster {
	living := make([]bool, g.N())
	remaining := 0
	if s == nil {
		for i := range living {
			living[i] = true
		}
		remaining = g.N()
	} else {
		for _, v := range s {
			if !living[v] {
				living[v] = true
				remaining++
			}
		}
	}
	var colors [][]*refCluster
	for color := 0; remaining > 0; color++ {
		clusters := refOnePartition(g, k, living)
		cleared := 0
		for _, c := range clusters {
			c.color = color
			for _, v := range c.members {
				living[v] = false
				cleared++
			}
		}
		remaining -= cleared
		colors = append(colors, clusters)
	}
	return colors
}

func refOnePartition(g *graph.Graph, k int, living []bool) []*refCluster {
	st := &refState{
		g:      g,
		k:      k,
		alive:  make([]bool, g.N()),
		label:  make([]uint64, g.N()),
		trees:  make(map[uint64]*refTree),
		member: make(map[uint64]map[graph.NodeID]bool),
	}
	nLiving := 0
	for v := 0; v < g.N(); v++ {
		if living[v] {
			st.alive[v] = true
			nLiving++
			lab := uint64(v)
			st.label[v] = lab
			st.trees[lab] = &refTree{
				root:     graph.NodeID(v),
				parent:   make(map[graph.NodeID]graph.NodeID),
				children: make(map[graph.NodeID][]graph.NodeID),
				depthOf:  map[graph.NodeID]int{graph.NodeID(v): 0},
			}
			st.member[lab] = map[graph.NodeID]bool{graph.NodeID(v): true}
		}
	}
	if nLiving == 0 {
		return nil
	}
	st.b = bits.Len(uint(g.N()))
	for phase := 0; phase < st.b; phase++ {
		st.runPhase(phase)
	}
	var labels []uint64
	for lab, mem := range st.member {
		if len(mem) > 0 {
			labels = append(labels, lab)
		}
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	clusters := make([]*refCluster, 0, len(labels))
	for _, lab := range labels {
		mem := make([]graph.NodeID, 0, len(st.member[lab]))
		for v := range st.member[lab] {
			mem = append(mem, v)
		}
		sort.Slice(mem, func(i, j int) bool { return mem[i] < mem[j] })
		clusters = append(clusters, &refCluster{label: lab, members: mem, tree: st.trees[lab]})
	}
	return clusters
}

func (st *refState) runPhase(phase int) {
	bit := uint64(1) << uint(phase)
	stopped := make(map[uint64]bool)
	maxSteps := 10 * st.b * st.b
	for step := 0; step < maxSteps; step++ {
		sources := st.activeBlueSources(bit, stopped)
		if len(sources) == 0 {
			return
		}
		dist, claim, parent := st.claimBFS(sources)
		proposals := make(map[uint64][]graph.NodeID)
		for v := 0; v < st.g.N(); v++ {
			id := graph.NodeID(v)
			if !st.alive[v] || st.label[v]&bit == 0 {
				continue
			}
			if dist[v] < 0 || dist[v] > st.k {
				continue
			}
			proposals[claim[v]] = append(proposals[claim[v]], id)
		}
		progressed := false
		var labs []uint64
		for lab := range proposals {
			labs = append(labs, lab)
		}
		sort.Slice(labs, func(i, j int) bool { return labs[i] < labs[j] })
		for _, lab := range labs {
			props := proposals[lab]
			sort.Slice(props, func(i, j int) bool { return props[i] < props[j] })
			if 2*len(props)*st.b <= len(st.member[lab]) {
				for _, u := range props {
					st.alive[u] = false
					delete(st.member[st.label[u]], u)
				}
				stopped[lab] = true
				continue
			}
			progressed = true
			for _, u := range props {
				st.absorb(u, lab, parent)
			}
		}
		for lab, mem := range st.member {
			if lab&bit == 0 && len(mem) > 0 && !stopped[lab] && len(proposals[lab]) == 0 {
				stopped[lab] = true
			}
		}
		if !progressed {
			return
		}
	}
	panic("refBuild: phase did not converge")
}

func (st *refState) activeBlueSources(bit uint64, stopped map[uint64]bool) []refSeed {
	var out []refSeed
	for lab, mem := range st.member {
		if lab&bit != 0 || len(mem) == 0 || stopped[lab] {
			continue
		}
		for v := range mem {
			out = append(out, refSeed{node: v, label: lab})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].label != out[j].label {
			return out[i].label < out[j].label
		}
		return out[i].node < out[j].node
	})
	return out
}

func (st *refState) claimBFS(sources []refSeed) (dist []int, claim []uint64, parent []graph.NodeID) {
	n := st.g.N()
	dist = make([]int, n)
	claim = make([]uint64, n)
	parent = make([]graph.NodeID, n)
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	var order, queue []graph.NodeID
	for _, s := range sources {
		if dist[s.node] != 0 {
			dist[s.node] = 0
			claim[s.node] = s.label
			queue = append(queue, s.node)
			order = append(order, s.node)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if dist[v] == st.k {
			continue
		}
		for _, nb := range st.g.Neighbors(v) {
			if dist[nb.Node] < 0 {
				dist[nb.Node] = dist[v] + 1
				queue = append(queue, nb.Node)
				order = append(order, nb.Node)
			}
		}
	}
	for _, u := range order {
		if dist[u] == 0 {
			continue
		}
		best := uint64(1<<63 - 1)
		bestParent := graph.NodeID(-1)
		for _, nb := range st.g.Neighbors(u) {
			w := nb.Node
			if dist[w] == dist[u]-1 && claim[w] < best {
				best = claim[w]
				bestParent = w
			}
		}
		claim[u] = best
		parent[u] = bestParent
	}
	return dist, claim, parent
}

func (st *refState) absorb(u graph.NodeID, lab uint64, parent []graph.NodeID) {
	delete(st.member[st.label[u]], u)
	st.label[u] = lab
	st.member[lab][u] = true
	tree := st.trees[lab]
	var chain []graph.NodeID
	w := u
	for !tree.has(w) {
		chain = append(chain, w)
		w = parent[w]
	}
	for i := len(chain) - 1; i >= 0; i-- {
		c := chain[i]
		tree.parent[c] = w
		tree.children[w] = append(tree.children[w], c)
		tree.depthOf[c] = tree.depthOf[w] + 1
		w = c
	}
}

// TestDenseMatchesReference is the golden equivalence test: the dense
// builder must produce identical colors, labels, members, tree parents,
// and depths to the seed's map-based semantics on the generator suite.
func TestDenseMatchesReference(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		k    int
		s    []graph.NodeID
	}{
		{"path64-k3", graph.Path(64), 3, nil},
		{"cycle50-k5", graph.Cycle(50), 5, nil},
		{"grid8x8-k3", graph.Grid(8, 8), 3, nil},
		{"grid10x10-k1", graph.Grid(10, 10), 1, nil},
		{"tree63-k4", graph.CompleteBinaryTree(63), 4, nil},
		{"er80-k3", graph.RandomConnected(80, 200, 17), 3, nil},
		{"er96-k5", graph.RandomConnected(96, 300, 7), 5, nil},
		{"star40-k2", graph.Star(40), 2, nil},
		{"complete20-k1", graph.Complete(20), 1, nil},
		{"dumbbell-k3", graph.Dumbbell(8, 10), 3, nil},
		{"grid9x9-k3-evens", graph.Grid(9, 9), 3, evens(81)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Build(tc.g, tc.k, tc.s)
			want := refBuild(tc.g, tc.k, tc.s)
			if len(got.Colors) != len(want) {
				t.Fatalf("colors: got %d, want %d", len(got.Colors), len(want))
			}
			for c := range want {
				if len(got.Colors[c]) != len(want[c]) {
					t.Fatalf("color %d: got %d clusters, want %d", c, len(got.Colors[c]), len(want[c]))
				}
				for i, wc := range want[c] {
					gc := got.Colors[c][i]
					if gc.Label != wc.label || gc.Color != wc.color {
						t.Fatalf("color %d cluster %d: got (label=%d,color=%d), want (%d,%d)",
							c, i, gc.Label, gc.Color, wc.label, wc.color)
					}
					if len(gc.Members) != len(wc.members) {
						t.Fatalf("cluster %d: got %d members, want %d", i, len(gc.Members), len(wc.members))
					}
					for j := range wc.members {
						if gc.Members[j] != wc.members[j] {
							t.Fatalf("cluster %d member %d: got %d, want %d", i, j, gc.Members[j], wc.members[j])
						}
					}
					compareTrees(t, gc.Tree, wc.tree)
				}
			}
		})
	}
}

func compareTrees(t *testing.T, got *Tree, want *refTree) {
	t.Helper()
	if got.Root != want.root {
		t.Fatalf("tree root: got %d, want %d", got.Root, want.root)
	}
	if got.Size() != len(want.depthOf) {
		t.Fatalf("tree size: got %d, want %d", got.Size(), len(want.depthOf))
	}
	for _, v := range got.Nodes() {
		wd, ok := want.depthOf[v]
		if !ok {
			t.Fatalf("node %d in dense tree but not reference", v)
		}
		if got.DepthAt(v) != wd {
			t.Fatalf("depth of %d: got %d, want %d", v, got.DepthAt(v), wd)
		}
		gp, gok := got.ParentOf(v)
		wp, wok := want.parent[v]
		if gok != wok || (gok && gp != wp) {
			t.Fatalf("parent of %d: got (%d,%v), want (%d,%v)", v, gp, gok, wp, wok)
		}
	}
}

func evens(n int) []graph.NodeID {
	var s []graph.NodeID
	for v := 0; v < n; v += 2 {
		s = append(s, graph.NodeID(v))
	}
	return s
}
