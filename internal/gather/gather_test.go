package gather

import (
	"fmt"
	"testing"

	"repro/internal/async"
	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/wire"
)

const (
	protoGather async.Proto = 1
	protoFlood  async.Proto = 2
)

type evKind int

const (
	evMarked evKind = iota + 1
	evDone
)

type event struct {
	kind    evKind
	node    graph.NodeID
	session int
}

type world struct {
	log []event
}

// gclient marks its local process done when a flood message reaches it,
// then waits for NeighborhoodDone.
type gclient struct {
	w        *world
	mod      *Module
	flooded  bool
	useChain bool
	chain    *Chain
}

func (c *gclient) Start(n *async.Node) {
	if c.useChain {
		c.chain.Begin(n)
	} else {
		c.mod.Begin(n, 0)
	}
	if n.ID() == 0 {
		c.onFlood(n)
	}
}

func (c *gclient) Recv(n *async.Node, _ graph.NodeID, m async.Msg) {
	if m.Proto == protoFlood {
		c.onFlood(n)
	}
}

func (c *gclient) Ack(*async.Node, graph.NodeID, async.Msg) {}

func (c *gclient) onFlood(n *async.Node) {
	if c.flooded {
		return
	}
	c.flooded = true
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, async.Msg{Proto: protoFlood, Body: wire.Tag(1)})
	}
	c.w.log = append(c.w.log, event{kind: evMarked, node: n.ID()})
	if c.useChain {
		c.chain.MarkDone(n)
	} else {
		c.mod.MarkDone(n, 0)
	}
}

// NeighborhoodDone implements Callbacks.
func (c *gclient) NeighborhoodDone(n *async.Node, session int) {
	if c.useChain {
		c.chain.OnNeighborhoodDone(n, session)
		return
	}
	c.w.log = append(c.w.log, event{kind: evDone, node: n.ID(), session: session})
	n.Output(true)
}

func runGather(t *testing.T, g *graph.Graph, d int, adv async.Adversary) *world {
	t.Helper()
	cov := cover.Build(g, d, nil)
	w := &world{}
	sim := async.New(g, adv, func(id graph.NodeID) async.Handler {
		cl := &gclient{w: w}
		cl.mod = New(protoGather, cov, cl, nil)
		mux := async.NewMux()
		mux.Register(protoGather, cl.mod)
		mux.Register(protoFlood, cl)
		return mux
	})
	res := sim.Run()
	if len(res.Outputs) != g.N() {
		t.Fatalf("adv=%s: only %d/%d nodes finished gathering", adv.Name(), len(res.Outputs), g.N())
	}
	return w
}

// checkOrdering: Done(v) must appear after Marked(u) for every u within
// distance radius of v.
func checkOrdering(t *testing.T, g *graph.Graph, radius int, log []event) {
	t.Helper()
	markedAt := map[graph.NodeID]int{}
	for i, e := range log {
		if e.kind == evMarked {
			markedAt[e.node] = i
		}
	}
	for i, e := range log {
		if e.kind != evDone {
			continue
		}
		for _, u := range g.Ball(e.node, radius) {
			at, ok := markedAt[u]
			if !ok || at > i {
				t.Fatalf("node %d heard neighborhood-done at %d before %d (dist<=%d) marked",
					e.node, i, u, radius)
			}
		}
	}
}

func TestGatherTheorem31(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		d    int
	}{
		{"path30-d4", graph.Path(30), 4},
		{"grid6x6-d2", graph.Grid(6, 6), 2},
		{"er50-d3", graph.RandomConnected(50, 110, 12), 3},
	}
	for _, tc := range cases {
		for _, adv := range async.StandardAdversaries(tc.g.N(), 9) {
			t.Run(fmt.Sprintf("%s-%s", tc.name, adv.Name()), func(t *testing.T) {
				w := runGather(t, tc.g, tc.d, adv)
				checkOrdering(t, tc.g, tc.d, w.log)
			})
		}
	}
}

func TestGatherMessageBound(t *testing.T) {
	g := graph.Grid(7, 7)
	d := 2
	cov := cover.Build(g, d, nil)
	w := &world{}
	sim := async.New(g, async.Fixed{D: 1}, func(id graph.NodeID) async.Handler {
		cl := &gclient{w: w}
		cl.mod = New(protoGather, cov, cl, nil)
		mux := async.NewMux()
		mux.Register(protoGather, cl.mod)
		mux.Register(protoFlood, cl)
		return mux
	})
	res := sim.Run()
	// 2 messages (up+down) per tree edge per cluster; tree edges total =
	// sum over clusters of |tree|-1.
	budget := uint64(0)
	for _, cl := range cov.Clusters {
		budget += uint64(2 * cl.Tree.Size())
	}
	if res.PerProto[protoGather] > budget {
		t.Fatalf("gather used %d messages, budget %d", res.PerProto[protoGather], budget)
	}
}

// chainClient wires Chain (Theorem 3.2) with L stages.
type chainWorld struct {
	w *world
	l int
}

func TestGatherChainTheorem32(t *testing.T) {
	g := graph.Path(40)
	d, l := 2, 3
	cov := cover.Build(g, d, nil)
	w := &world{}
	sim := async.New(g, async.SeededRandom{Seed: 5}, func(id graph.NodeID) async.Handler {
		cl := &gclient{w: w, useChain: true}
		cl.mod = New(protoGather, cov, cl, nil)
		cl.chain = &Chain{
			Mod: cl.mod, L: l, Base: 0,
			Final: func(n *async.Node) {
				w.log = append(w.log, event{kind: evDone, node: n.ID()})
				n.Output(true)
			},
		}
		mux := async.NewMux()
		mux.Register(protoGather, cl.mod)
		mux.Register(protoFlood, cl)
		return mux
	})
	res := sim.Run()
	if len(res.Outputs) != g.N() {
		t.Fatalf("only %d/%d chain-finished", len(res.Outputs), g.N())
	}
	// Final(v) must come after every node within d·L marked done.
	checkOrdering(t, g, d*l, w.log)
}

func TestGatherChainAdversaries(t *testing.T) {
	g := graph.Grid(5, 5)
	d, l := 1, 4
	cov := cover.Build(g, d, nil)
	for _, adv := range async.StandardAdversaries(g.N(), 2) {
		w := &world{}
		sim := async.New(g, adv, func(id graph.NodeID) async.Handler {
			cl := &gclient{w: w, useChain: true}
			cl.mod = New(protoGather, cov, cl, nil)
			cl.chain = &Chain{
				Mod: cl.mod, L: l, Base: 0,
				Final: func(n *async.Node) {
					w.log = append(w.log, event{kind: evDone, node: n.ID()})
					n.Output(true)
				},
			}
			mux := async.NewMux()
			mux.Register(protoGather, cl.mod)
			mux.Register(protoFlood, cl)
			return mux
		})
		res := sim.Run()
		if len(res.Outputs) != g.N() {
			t.Fatalf("%s: only %d/%d chain-finished", adv.Name(), len(res.Outputs), g.N())
		}
		checkOrdering(t, g, d*l, w.log)
	}
}

func TestDoneQuery(t *testing.T) {
	g := graph.Path(6)
	cov := cover.Build(g, 2, nil)
	var mods []*Module
	w := &world{}
	sim := async.New(g, async.Fixed{D: 1}, func(id graph.NodeID) async.Handler {
		cl := &gclient{w: w}
		cl.mod = New(protoGather, cov, cl, nil)
		mods = append(mods, cl.mod)
		mux := async.NewMux()
		mux.Register(protoGather, cl.mod)
		mux.Register(protoFlood, cl)
		return mux
	})
	sim.Run()
	for i, m := range mods {
		if !m.Done(0) {
			t.Fatalf("node %d not Done after run", i)
		}
		if m.Done(99) {
			t.Fatalf("node %d Done for unknown session", i)
		}
	}
}
