package async

// outbox holds the messages a node has queued on one directed link but not
// yet injected (the ack discipline allows one in-flight message per link).
// Scheduling follows the paper's two composition rules:
//
//   - Stage priority (Lemma 2.5): a message of a lower stage is always
//     injected before any message of a higher stage.
//   - Round-robin across protocols within a stage (Lemma 2.2 / Cor 2.3):
//     the link cycles fairly through the protocols that have pending
//     messages, simulating "one copy of the edge per subroutine" with a
//     k-factor slowdown for k contending subroutines.
type outbox struct {
	busy   bool
	stages []*stageQueue // sorted ascending by stage
	queued int
}

type stageQueue struct {
	stage  int
	protos []Proto // rotation order (first-appearance order)
	queues map[Proto][]Msg
	next   int // round-robin cursor into protos
}

func (o *outbox) push(m Msg) {
	o.queued++
	// Find or insert the stage queue, keeping stages sorted.
	lo, hi := 0, len(o.stages)
	for lo < hi {
		mid := (lo + hi) / 2
		if o.stages[mid].stage < m.Stage {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(o.stages) || o.stages[lo].stage != m.Stage {
		sq := &stageQueue{stage: m.Stage, queues: make(map[Proto][]Msg)}
		o.stages = append(o.stages, nil)
		copy(o.stages[lo+1:], o.stages[lo:])
		o.stages[lo] = sq
	}
	sq := o.stages[lo]
	if _, ok := sq.queues[m.Proto]; !ok {
		sq.protos = append(sq.protos, m.Proto)
	}
	sq.queues[m.Proto] = append(sq.queues[m.Proto], m)
}

// pop removes and returns the next message per the scheduling discipline.
// The second return is false when the outbox is empty.
func (o *outbox) pop() (Msg, bool) {
	for len(o.stages) > 0 {
		sq := o.stages[0]
		if m, ok := sq.pop(); ok {
			o.queued--
			if sq.empty() {
				o.stages = o.stages[1:]
			}
			return m, true
		}
		o.stages = o.stages[1:]
	}
	return Msg{}, false
}

func (sq *stageQueue) pop() (Msg, bool) {
	n := len(sq.protos)
	for i := 0; i < n; i++ {
		p := sq.protos[(sq.next+i)%n]
		q := sq.queues[p]
		if len(q) == 0 {
			continue
		}
		m := q[0]
		sq.queues[p] = q[1:]
		sq.next = (sq.next + i + 1) % n
		return m, true
	}
	return Msg{}, false
}

func (sq *stageQueue) empty() bool {
	for _, q := range sq.queues {
		if len(q) > 0 {
			return false
		}
	}
	return true
}
