// Quickstart: write an event-driven synchronous algorithm once, run it in
// lockstep rounds, then run the *same code* asynchronously under the
// paper's deterministic synchronizer and check the outputs agree.
package main

import (
	"fmt"

	dsync "repro"
)

// hops is a tiny synchronous algorithm: node 0 floods a token; every node
// outputs the pulse at which the token reached it (= its BFS distance).
// Note the event-driven style (Appendix B of the paper): no node ever
// references the round number except through the pulse of a reception.
//
// Messages are typed wire bodies: a Kind tag plus fixed integer words,
// never a boxed interface. A pure signal like this token needs only the
// tag.
type hops struct{ seen bool }

const tokenKind dsync.Kind = 1

func (h *hops) Init(n dsync.API) {
	if n.ID() == 0 {
		h.seen = true
		n.Output(0)
		for _, nb := range n.Neighbors() {
			n.Send(nb.Node, dsync.Tag(tokenKind))
		}
	}
}

func (h *hops) Pulse(n dsync.API, p int, recvd []dsync.Incoming) {
	if h.seen || len(recvd) == 0 {
		return
	}
	h.seen = true
	n.Output(p)
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, dsync.Tag(tokenKind))
	}
}

func main() {
	g := dsync.Grid(4, 6)
	mk := func(dsync.NodeID) dsync.Algorithm { return &hops{} }

	// 1. Synchronous world: lockstep rounds.
	sres := dsync.RunSync(g, mk)
	fmt.Printf("synchronous:  T(A)=%d rounds, M(A)=%d messages\n", sres.T, sres.M)

	// 2. Asynchronous world: adversarial delays, same algorithm, same
	// outputs — the synchronizer guarantees it (Theorem 5.2).
	ares := dsync.Synchronize(g, sres.Rounds+2, dsync.RandomDelays(42), mk)
	fmt.Printf("asynchronous: time=%.1f, msgs=%d\n", ares.Time, ares.Msgs)

	mismatches := 0
	for v, want := range sres.Outputs {
		if ares.Outputs[v] != want {
			mismatches++
		}
	}
	fmt.Printf("outputs identical across worlds: %v (%d nodes)\n",
		mismatches == 0, len(sres.Outputs))
	for v := 0; v < g.N(); v++ {
		fmt.Printf("node %2d: distance %v\n", v, ares.Outputs[dsync.NodeID(v)])
	}
}
