package core

import (
	"sync"

	"repro/internal/async"
	"repro/internal/cover"
	"repro/internal/graph"
)

// Fault-aware cover caching. The fault plane partitions simulated time
// into epochs (async.FaultSchedule.Epoch) and decides crashes per
// (node, epoch) as a pure hash — so the set of alive nodes, and with it
// the layered cover the synchronizer should run on, is a deterministic
// function of (graph, radius, schedule, epoch). The cache below keys on
// exactly that tuple. A miss does not rebuild from scratch: it repairs
// the fault-free base cover (itself memoized by BuildLayeredFor),
// rebuilding only the clusters whose BFS regions a crashed node touches
// (cover.Repair's dirty certificate); everything else is shared with the
// base cover structurally.

type epochCoverKey struct {
	g      *graph.Graph
	radius int
	fs     async.FaultSchedule // value key: the schedule is all-scalar
	epoch  uint64
}

var epochCoverCache = struct {
	sync.Mutex
	entries map[epochCoverKey]*cover.Layered
	order   []epochCoverKey
}{entries: make(map[epochCoverKey]*cover.Layered)}

const epochCoverCacheCap = 64

// ResetEpochCoverCache drops every memoized fault-epoch cover.
func ResetEpochCoverCache() {
	epochCoverCache.Lock()
	epochCoverCache.entries = make(map[epochCoverKey]*cover.Layered)
	epochCoverCache.order = nil
	epochCoverCache.Unlock()
}

// BuildLayeredForEpoch returns the layered covers for pulse bound b on g
// under fs at the given fault epoch: the covers of the alive node set,
// derived from the fault-free base covers by incremental repair. The
// returned stats describe the repair that ran (nil on a cache hit, on a
// fault-free schedule, and on an epoch with no crashes). Results are
// memoized per (graph, radius, schedule, epoch) for finalized graphs.
func BuildLayeredForEpoch(g *graph.Graph, b int, fs *async.FaultSchedule, epoch uint64) (*cover.Layered, []cover.RepairStats) {
	if !fs.Active() || fs.CrashP == 0 {
		return BuildLayeredFor(g, b), nil
	}
	faulted := fs.CrashedSet(g.N(), epoch)
	if len(faulted) == 0 {
		return BuildLayeredFor(g, b), nil
	}
	sched := NewSchedule(b)
	radius := 1 << uint(sched.MaxCoverLevel)
	if !g.Final() {
		base := cover.BuildLayered(g, radius, nil)
		l, stats := cover.RepairLayered(base, faulted)
		return l, stats
	}
	key := epochCoverKey{g: g, radius: radius, fs: *fs, epoch: epoch}
	epochCoverCache.Lock()
	if l, ok := epochCoverCache.entries[key]; ok {
		epochCoverCache.Unlock()
		return l, nil
	}
	epochCoverCache.Unlock()
	// Repair outside the lock (like BuildLayeredFor): repairs of
	// independent epochs must not serialize, and a concurrent duplicate
	// repair is deterministic, so last-write-wins is harmless.
	base := BuildLayeredFor(g, b)
	l, stats := cover.RepairLayered(base, faulted)
	epochCoverCache.Lock()
	if cached, ok := epochCoverCache.entries[key]; ok {
		l = cached
	} else {
		if len(epochCoverCache.order) >= epochCoverCacheCap {
			oldest := epochCoverCache.order[0]
			epochCoverCache.order = epochCoverCache.order[1:]
			delete(epochCoverCache.entries, oldest)
		}
		epochCoverCache.entries[key] = l
		epochCoverCache.order = append(epochCoverCache.order, key)
	}
	epochCoverCache.Unlock()
	return l, stats
}
