package syncrun

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/outval"
	"repro/internal/wire"
)

// typedOutAlgo outputs its distance through the typed path at pulse 1 and
// node 0 additionally exercises the legacy boxed escape (a string).
type typedOutAlgo struct{}

func (typedOutAlgo) Init(n API) {
	if n.ID() == 0 {
		n.Output("root") // non-encodable: boxed escape slot
		for _, nb := range n.Neighbors() {
			n.Send(nb.Node, wire.Tag(1))
		}
	}
}

func (typedOutAlgo) Pulse(n API, p int, recvd []Incoming) {
	if len(recvd) == 0 || n.HasOutput() {
		return
	}
	n.OutputBody(wire.Body{Kind: outval.KindInt, A: int64(p)})
	for _, nb := range n.Neighbors() {
		if nb.Node != recvd[0].From {
			n.Send(nb.Node, wire.Tag(1))
		}
	}
}

// TestTypedOutputs checks both storage paths decode correctly at the
// Result boundary in the default (map) mode.
func TestTypedOutputs(t *testing.T) {
	g := graph.Path(4)
	res := New(g, func(graph.NodeID) Handler { return typedOutAlgo{} }).Run()
	want := map[graph.NodeID]any{0: "root", 1: 1, 2: 2, 3: 3}
	if !reflect.DeepEqual(res.Outputs, want) {
		t.Fatalf("outputs = %v, want %v", res.Outputs, want)
	}
}

// TestDenseOutputs checks the dense mode: typed outputs land in
// OutBodies/OutSet, only the legacy escape materializes in the map.
func TestDenseOutputs(t *testing.T) {
	g := graph.Path(4)
	res := New(g, func(graph.NodeID) Handler { return typedOutAlgo{} }).
		WithDenseOutputs().Run()
	if len(res.Outputs) != 1 || res.Outputs[0] != "root" {
		t.Fatalf("dense-mode map = %v, want only the legacy escape", res.Outputs)
	}
	for v := 1; v <= 3; v++ {
		if !res.OutSet[v] {
			t.Fatalf("node %d missing from OutSet", v)
		}
		if got := outval.Decode(res.OutBodies[v]); got != v {
			t.Fatalf("node %d dense output = %v, want %d", v, got, v)
		}
	}
	if !res.OutSet[0] || res.OutBodies[0].Kind != 0 {
		t.Fatal("legacy escape should appear in OutSet with a zero-kind body")
	}
}

// TestDenseOutputsModeIdentical pins dense-output equality across the
// lockstep execution modes.
func TestDenseOutputsModeIdentical(t *testing.T) {
	g := graph.RandomConnected(300, 700, 3)
	mk := func(graph.NodeID) Handler { return typedOutAlgo{} }
	single := New(g, mk).WithMode(ModeSingle).WithDenseOutputs().Run()
	multi := New(g, mk).WithMode(ModeMulti).WithMinParallel(1).WithDenseOutputs().Run()
	if !reflect.DeepEqual(single, multi) {
		t.Fatal("dense results differ across modes")
	}
}
