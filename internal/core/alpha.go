package core

import (
	"fmt"
	"sort"

	"repro/internal/async"
	"repro/internal/graph"
	"repro/internal/syncrun"
	"repro/internal/wire"
)

// AlphaSynchronizer is Awerbuch's α synchronizer (Appendix A): every node
// generates every pulse 1..B. A node is safe for pulse p once all its
// pulse-p messages are acknowledged (the simulator's link acks already
// provide this), after which it tells every neighbor SAFE(p); a node
// generates pulse p+1 once it holds SAFE(p) from all neighbors.
//
// Time overhead is O(1) per pulse — optimal — but the safety traffic costs
// Θ(m) messages per pulse, i.e. M(A') = M(A) + Θ(T(A)·m): the blow-up
// experiment E8 measures exactly this term.
//
// All per-pulse state is bound-indexed slices allocated once at
// construction (the pulse bound is known up front), not maps.
type alphaNode struct {
	algo  syncrun.Handler
	bound int

	pulse     int
	recvd     [][]syncrun.Incoming
	safeCnt   []int // pulse -> neighbors that sent SAFE(p)
	sendAcked []int // pulse -> outstanding acks for algorithm sends
	selfSafe  []bool
	sentSafe  []bool
	cs        congestStamp
}

const protoAlphaSafe async.Proto = 3

var _ async.Handler = (*alphaNode)(nil)

// NewAlpha builds the α-synchronized handler for one node.
func NewAlpha(algo syncrun.Handler, bound int) async.Handler {
	return &alphaNode{
		algo:      algo,
		bound:     bound,
		recvd:     make([][]syncrun.Incoming, bound+1),
		safeCnt:   make([]int, bound+1),
		sendAcked: make([]int, bound+1),
		selfSafe:  make([]bool, bound+1),
		sentSafe:  make([]bool, bound+1),
	}
}

// Init implements async.Handler: run pulse 0.
func (a *alphaNode) Init(n *async.Node) {
	a.runPulse(n, 0)
}

func (a *alphaNode) runPulse(n *async.Node, p int) {
	a.pulse = p
	api := &alphaAPI{n: n, a: a, pulse: p, epoch: a.cs.begin(n.Degree())}
	if p == 0 {
		a.algo.Init(api)
	} else {
		batch := a.recvd[p-1]
		sort.Slice(batch, func(i, j int) bool { return batch[i].From < batch[j].From })
		a.algo.Pulse(api, p, batch)
	}
	a.maybeSafe(n, p)
}

// maybeSafe declares this node safe for pulse p once its pulse-p sends are
// all acknowledged, then floods SAFE(p) to neighbors.
func (a *alphaNode) maybeSafe(n *async.Node, p int) {
	if a.sentSafe[p] || a.sendAcked[p] > 0 {
		return
	}
	a.sentSafe[p] = true
	a.selfSafe[p] = true
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, async.Msg{Proto: protoAlphaSafe, Stage: p, Body: wire.Body{Kind: kindAlphaSafe, A: int64(p)}})
	}
	a.maybeAdvance(n, p)
}

func (a *alphaNode) maybeAdvance(n *async.Node, p int) {
	if a.pulse != p || p+1 > a.bound {
		return
	}
	if !a.selfSafe[p] || a.safeCnt[p] < n.Degree() {
		return
	}
	a.runPulse(n, p+1)
}

// Recv implements async.Handler.
func (a *alphaNode) Recv(n *async.Node, from graph.NodeID, m async.Msg) {
	switch m.Body.Kind {
	case kindAlgo:
		pulse, inner := m.Body.Unframe()
		a.recvd[pulse] = append(a.recvd[pulse], syncrun.Incoming{From: from, Body: inner})
	case kindAlphaSafe:
		p := int(m.Body.A)
		a.safeCnt[p]++
		a.maybeAdvance(n, p)
	default:
		panic(fmt.Sprintf("core: alpha node %d got payload kind %d", n.ID(), m.Body.Kind))
	}
}

// Ack implements async.Handler: algorithm-message acks gate safety.
func (a *alphaNode) Ack(n *async.Node, _ graph.NodeID, m async.Msg) {
	if m.Body.Kind != kindAlgo {
		return
	}
	pulse := int(m.Body.P)
	a.sendAcked[pulse]--
	a.maybeSafe(n, pulse)
}

// alphaAPI is the synchronous API bound to one α pulse.
type alphaAPI struct {
	n     *async.Node
	a     *alphaNode
	pulse int
	epoch int32
}

var _ syncrun.API = (*alphaAPI)(nil)

func (x *alphaAPI) ID() graph.NodeID            { return x.n.ID() }
func (x *alphaAPI) Neighbors() []graph.Neighbor { return x.n.Neighbors() }
func (x *alphaAPI) Degree() int                 { return x.n.Degree() }
func (x *alphaAPI) Output(v any)                { x.n.Output(v) }
func (x *alphaAPI) OutputBody(b wire.Body)      { x.n.OutputBody(b) }
func (x *alphaAPI) HasOutput() bool             { return x.n.HasOutput() }
func (x *alphaAPI) Arena() *wire.Arena          { return x.n.Arena() }

func (x *alphaAPI) Send(to graph.NodeID, body wire.Body) {
	x.a.cs.mark(x.n, to, x.epoch, "alpha")
	x.a.sendAcked[x.pulse]++
	x.n.Send(to, async.Msg{Proto: ProtoAlgo, Stage: x.pulse, Body: frameAlgo(x.pulse, body)})
}

// SynchronizeAlpha runs the algorithm under the α synchronizer for exactly
// `bound` pulses.
func SynchronizeAlpha(g *graph.Graph, bound int, adv async.Adversary,
	mk func(id graph.NodeID) syncrun.Handler) async.Result {
	if adv == nil {
		adv = async.SeededRandom{Seed: 1}
	}
	sim := async.New(g, adv, func(id graph.NodeID) async.Handler {
		return NewAlpha(mk(id), bound)
	})
	return sim.Run()
}
