package bench

// e16Footprint measures the resident memory of the three planes a
// ten-million-node run lives on: the CSR graph itself, the asynchronous
// engine after one completed flood (so all lazily allocated per-link state
// is present), and the lockstep runner after one completed wave. Every
// value is retained heap bytes after GC settles — what stays resident, not
// allocation churn — and the normalized columns (graph and async bytes per
// directed link, lockstep bytes per node) must stay flat as n grows: any
// O(n·diameter) scratch or per-link regression shows up as a rising slope.
//
// The built-in ladder spans 4k–80k nodes across all three implicit
// generators; Options.Graph (cmd/syncbench -graph) appends one more row,
// which is how the committed BENCH_6.json gets its million-node entry.
//
// E16 runs as one serial job: the probe reads process-global heap state,
// so concurrent trials would bleed into each other's baselines. The byte
// counts are stable in practice but depend on the runtime's size classes,
// so they are pinned loosely by footprint_test.go rather than replayed
// byte-identically here.
func e16Footprint(c *Ctx) {
	t := c.table("retained heap bytes after GC; engines measured after one completed flood; per-link and per-node columns must stay flat as n grows.")
	t.head("graph", "n", "links", "graphKB", "gB/link", "asyncKB", "aB/link", "syncKB", "sB/node")
	specs := []string{
		"grid3d:16x16x16",
		"grid3d:32x32x32",
		"grid3d:40x40x50",
		"pa:n=50000,m=4,seed=7",
		"ring:k=4000,c=8",
	}
	if c.gspec != "" {
		specs = append(specs, c.gspec)
	}
	t.emit(c.jobs(1, func(int) []row {
		rows := make([]row, 0, len(specs))
		for _, spec := range specs {
			gBytes, err := GraphRetainedBytes(spec)
			if err != nil {
				// Run validated Options.Graph and the built-ins are static,
				// so a failure here is a harness bug.
				panic("bench: E16 spec failed: " + err.Error())
			}
			g := c.custom
			if spec != c.gspec || g == nil {
				g = mustSpec(spec)
			}
			aBytes := AsyncRetainedBytes(g)
			sBytes := SyncRetainedBytes(g)
			n, links := g.N(), g.Links()
			gPerLink := float64(gBytes) / float64(links)
			aPerLink := float64(aBytes) / float64(links)
			sPerNode := float64(sBytes) / float64(n)
			rows = append(rows, row{
				cols: []any{spec, n, links,
					float64(gBytes) / 1024, gPerLink,
					float64(aBytes) / 1024, aPerLink,
					float64(sBytes) / 1024, sPerNode},
				rec: Rec{"graph": spec, "n": n, "links": links,
					"graphBytes": gBytes, "graphBytesPerLink": gPerLink,
					"asyncBytes": aBytes, "asyncBytesPerLink": aPerLink,
					"syncBytes": sBytes, "syncBytesPerNode": sPerNode},
			})
		}
		return rows
	}))
}
