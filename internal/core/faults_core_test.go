package core

import (
	"reflect"
	"testing"

	"repro/internal/async"
	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/syncrun"
)

// TestSynchronizeFaultMode pins the synchronizer stack's cross-mode
// determinism under faults: the full Result of a synchronized run with a
// drop schedule must be identical between the serial engine and the
// bounded-lag parallel windows.
func TestSynchronizeFaultMode(t *testing.T) {
	g := graph.Grid(5, 6)
	bound := g.Diameter() + 2
	fs := &async.FaultSchedule{Seed: 13, DropP: 0.15, Budget: 3}
	mk := func(graph.NodeID) syncrun.Handler { return &bfsAlgo{src: 0} }
	adv := async.WithFaults(async.SeededRandom{Seed: 6}, fs)
	want := Synchronize(Config{Graph: g, Bound: bound, Adversary: adv, Mode: async.ModeSingle}, mk)
	got := Synchronize(Config{Graph: g, Bound: bound, Adversary: adv, Mode: async.ModeMulti, Workers: 4}, mk)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("synchronized run under faults differs between Single and Multi")
	}
	if want.Dropped == 0 || want.Retrans == 0 {
		t.Fatalf("schedule exercised nothing: dropped=%d retrans=%d", want.Dropped, want.Retrans)
	}
}

// TestWatchdogVerdicts: a fault-free run must never read as stalled; a
// run whose retransmit budget is exhausted early must.
func TestWatchdogVerdicts(t *testing.T) {
	g := graph.Grid(5, 6)
	bound := g.Diameter() + 2
	mk := func(graph.NodeID) syncrun.Handler { return &bfsAlgo{src: 0} }

	res, rep := SynchronizeWatched(Config{Graph: g, Bound: bound, Adversary: async.SeededRandom{Seed: 6}}, mk)
	if rep.IsStalled() {
		t.Fatalf("fault-free run reported stalled: %+v", rep)
	}
	if rep.Nodes != g.N() || rep.Outputs != len(res.Outputs) {
		t.Fatalf("report miscounted: %+v vs %d outputs", rep, len(res.Outputs))
	}

	fs := &async.FaultSchedule{Seed: 5, DropP: 0.4, Budget: 0}
	res, rep = SynchronizeWatched(Config{Graph: g, Bound: bound,
		Adversary: async.WithFaults(async.SeededRandom{Seed: 6}, fs)}, mk)
	if res.Undeliverable == 0 {
		t.Fatal("budget-0 schedule abandoned nothing")
	}
	if !rep.IsStalled() {
		t.Fatalf("starved run not flagged: %+v (outputs=%d of %d)", rep, len(res.Outputs), g.N())
	}
	if rep.Undeliverable != res.Undeliverable {
		t.Fatalf("report undeliverable %d != result %d", rep.Undeliverable, res.Undeliverable)
	}
}

// TestUnknownBoundFaultBilling: the doubling runner must bill fault
// counters across attempts and stop doubling on a stalled quiescence
// instead of retrying forever (a larger bound cannot resurrect a message
// whose budget is spent).
func TestUnknownBoundFaultBilling(t *testing.T) {
	g := graph.Grid(4, 5)
	mk := func(graph.NodeID) syncrun.Handler { return &bfsAlgo{src: 0} }
	fs := &async.FaultSchedule{Seed: 5, DropP: 0.4, Budget: 0}
	res, bound, rep := SynchronizeUnknownBoundWatched(g,
		async.WithFaults(async.SeededRandom{Seed: 6}, fs), mk)
	if bound < 8 {
		t.Fatalf("bound = %d", bound)
	}
	if res.Dropped == 0 || res.Undeliverable == 0 {
		t.Fatalf("no fault billing: %+v", res)
	}
	if !rep.IsStalled() {
		t.Fatalf("stall not reported: %+v", rep)
	}

	// Fault-free reference still works and reports clean.
	res, _, rep = SynchronizeUnknownBoundWatched(g, async.SeededRandom{Seed: 6}, mk)
	if rep.IsStalled() || res.Dropped != 0 {
		t.Fatalf("clean run misreported: %+v / %+v", res, rep)
	}
	if len(res.Outputs) != g.N() {
		t.Fatalf("clean run incomplete: %d outputs", len(res.Outputs))
	}
}

// TestBuildLayeredForEpochCache pins the invalidation-aware cover cache:
// fault-free schedules hit the fault-free cache, identical
// (graph, schedule, epoch) keys return the identical repaired cover, and
// the repair equals a from-scratch masked build of the same epoch.
func TestBuildLayeredForEpochCache(t *testing.T) {
	ResetEpochCoverCache()
	g := graph.Grid(8, 8)
	g.Finalize()
	b := 32

	clean, stats := BuildLayeredForEpoch(g, b, nil, 0)
	if stats != nil {
		t.Fatalf("fault-free epoch build reported repair stats: %+v", stats)
	}
	if clean != BuildLayeredFor(g, b) {
		t.Fatal("fault-free epoch build missed the base cache")
	}

	fs := &async.FaultSchedule{Seed: 11, CrashP: 0.05, Budget: 1}
	l1, stats1 := BuildLayeredForEpoch(g, b, fs, 2)
	l2, _ := BuildLayeredForEpoch(g, b, fs, 2)
	if l1 != l2 {
		t.Fatal("identical epoch key rebuilt instead of hitting the cache")
	}
	faulted := fs.CrashedSet(g.N(), 2)
	if len(faulted) == 0 {
		t.Fatal("schedule crashed nobody at epoch 2; pick a different seed")
	}
	if stats1 == nil {
		t.Fatal("crash epoch reported no repair stats")
	}
	base := BuildLayeredFor(g, b)
	wantRepaired, _ := cover.RepairLayered(base, faulted)
	if !reflect.DeepEqual(l1, wantRepaired) {
		t.Fatal("cached epoch cover differs from direct repair")
	}

	// A different epoch with a different crashed set is a different entry.
	var other uint64
	for e := uint64(3); e < 64; e++ {
		set := fs.CrashedSet(g.N(), e)
		if len(set) > 0 && !reflect.DeepEqual(set, faulted) {
			other = e
			break
		}
	}
	if other != 0 {
		l3, _ := BuildLayeredForEpoch(g, b, fs, other)
		if l3 == l1 {
			t.Fatal("distinct crashed sets shared a cache entry")
		}
	}
}
