package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestByName(t *testing.T) {
	var sb strings.Builder
	if !ByName(&sb, "E10") {
		t.Fatal("E10 unknown")
	}
	if !strings.Contains(sb.String(), "sparse cover quality") {
		t.Fatalf("unexpected output: %s", sb.String())
	}
	if ByName(io.Discard, "E99") {
		t.Fatal("E99 should be unknown")
	}
}

func TestRegistryOrdered(t *testing.T) {
	ids := IDs()
	if len(ids) != 18 {
		t.Fatalf("registry has %d experiments, want 18", len(ids))
	}
	for i, id := range ids {
		if want := fmt.Sprintf("E%d", i+1); id != want {
			t.Fatalf("registry[%d] = %s, want %s", i, id, want)
		}
	}
	infos := List()
	for i, info := range infos {
		if info.ID != ids[i] || info.Title == "" {
			t.Fatalf("List()[%d] = %+v inconsistent with IDs()", i, info)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if err := Run(io.Discard, []string{"E7", "bogus"}, Options{}); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

// deterministicSubset lists experiments whose outputs carry no wall-clock
// measurements, so their tables must be byte-identical across worker
// counts (E13's single/multi millisecond columns vary run to run and are
// excluded).
var deterministicSubset = []string{"E7", "E9", "E10", "E11", "E12"}

// TestParallelMatchesSerial is the harness determinism contract: a
// parallel run merges job results in job order, so tables and JSON records
// are byte-identical to the serial run.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweeps")
	}
	var serial, parallel bytes.Buffer
	if err := Run(&serial, deterministicSubset, Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := Run(&parallel, deterministicSubset, Options{Workers: 8}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatalf("parallel tables differ from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), parallel.String())
	}

	var serialJSON, parallelJSON bytes.Buffer
	if err := Run(&serialJSON, deterministicSubset, Options{Workers: 1, JSON: true}); err != nil {
		t.Fatal(err)
	}
	if err := Run(&parallelJSON, deterministicSubset, Options{Workers: 8, JSON: true}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialJSON.Bytes(), parallelJSON.Bytes()) {
		t.Fatal("parallel JSON differs from serial")
	}
}

// TestJSONOutputShape checks the syncbench/v1 document structure: schema
// tag, one experiment entry per requested id, and non-empty row records.
func TestJSONOutputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	var buf bytes.Buffer
	if err := Run(&buf, []string{"E7", "E11"}, Options{JSON: true}); err != nil {
		t.Fatal(err)
	}
	var out Output
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if out.Schema != "syncbench/v1" {
		t.Fatalf("schema = %q", out.Schema)
	}
	if len(out.Experiments) != 2 || out.Experiments[0].ID != "E7" || out.Experiments[1].ID != "E11" {
		t.Fatalf("experiments = %+v", out.Experiments)
	}
	for _, e := range out.Experiments {
		if len(e.Rows) == 0 {
			t.Fatalf("experiment %s has no rows", e.ID)
		}
		for _, r := range e.Rows {
			if len(r) == 0 {
				t.Fatalf("experiment %s has an empty record", e.ID)
			}
		}
	}
}

func TestCheapExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweeps")
	}
	for _, id := range []string{"E7", "E9", "E11", "E12"} {
		if !ByName(io.Discard, id) {
			t.Fatalf("%s missing", id)
		}
	}
}

// TestE10CoverQualityInvariants re-checks the E10 empirical metrics
// against Theorem 4.21's bounds on the experiment's own graph suite:
// depth = O(d·log³n), congestion = O(log⁴n), membership = O(log n).
func TestE10CoverQualityInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("cover sweeps")
	}
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid10x10", graph.Grid(10, 10)},
		{"er128", graph.RandomConnected(128, 400, 21)},
	}
	for _, tc := range cases {
		logn := bits.Len(uint(tc.g.N()))
		for _, d := range []int{1, 2, 4, 8} {
			q := MeasureCoverQuality(tc.g, d)
			if q.Clusters == 0 {
				t.Fatalf("%s d=%d: no clusters", tc.name, d)
			}
			if bound := 3*d*logn*logn*logn + 4*d + 8; q.MaxDepth > bound {
				t.Fatalf("%s d=%d: maxDepth %d > O(d·log³n) bound %d", tc.name, d, q.MaxDepth, bound)
			}
			if bound := logn*logn*logn*logn + 8; q.MaxCongestion > bound {
				t.Fatalf("%s d=%d: congestion %d > O(log⁴n) bound %d", tc.name, d, q.MaxCongestion, bound)
			}
			if bound := 4*logn + 4; q.MaxMembership > bound {
				t.Fatalf("%s d=%d: membership %d > O(log n) bound %d", tc.name, d, q.MaxMembership, bound)
			}
		}
	}
}
