# Build/test/bench entry points. CI runs the same targets.

# The engine microbenchmark suite committed as the bench trajectory:
# the four PR-3 engine benchmarks (async flood under random + fixed
# delays, lockstep pulse serial + worker-pool) plus the bounded-lag
# parallel-async and engine-reuse benchmarks added with the async
# ExecutionMode work.
ASYNC_BENCH  = BenchmarkSimFlood$$|BenchmarkSimFloodFixed|BenchmarkSimFloodParallel|BenchmarkSimFloodReset
SYNC_BENCH   = BenchmarkLockstepPulse$$|BenchmarkLockstepPulseMulti
BENCH_OUT    = BENCH_4.json
BENCH_NOTE  ?= engine microbenchmark suite; multi-mode columns measure staging overhead when GOMAXPROCS=1 (single-core CI) and parallel speedup otherwise

.PHONY: build test race bench fmt vet

build:
	go build ./...

test: build
	go test ./...

race:
	go test -race ./internal/async/ ./internal/syncrun/ ./internal/apps/ ./internal/bench/ ./internal/core/

fmt:
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then echo "gofmt needed on:"; echo "$$fmt"; exit 1; fi

vet:
	go vet ./...

# Separate recipe lines so a failing benchmark suite fails the target
# instead of being swallowed by a pipe (benchjson would happily emit a
# truncated document from whatever lines did arrive).
bench:
	go test -run '^$$' -bench '$(ASYNC_BENCH)' -benchmem ./internal/async/ > .bench-async.out
	go test -run '^$$' -bench '$(SYNC_BENCH)' -benchmem ./internal/syncrun/ > .bench-sync.out
	cat .bench-async.out .bench-sync.out | go run ./cmd/benchjson -note "$(BENCH_NOTE)" > $(BENCH_OUT)
	rm -f .bench-async.out .bench-sync.out
	@cat $(BENCH_OUT)
