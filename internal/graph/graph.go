// Package graph provides the network substrate used throughout the
// reproduction: an undirected graph type with adjacency lists, weighted
// edges, deterministic generators for the topology families exercised in
// the experiments, exact reference algorithms (BFS, multi-source BFS,
// diameter, MST) used as ground truth by the tests, and a union-find.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node. Nodes are numbered 0..n-1; the paper's unique
// O(log n)-bit identifiers are the NodeIDs themselves.
type NodeID int

// EdgeID indexes into Graph.Edges.
type EdgeID int

// Edge is an undirected edge {U, V} with an optional weight (used by MST
// workloads; weight 0 elsewhere). U < V always holds after normalization.
type Edge struct {
	U, V   NodeID
	Weight int64
}

// Neighbor is one adjacency entry: the node on the other side of Edge.
type Neighbor struct {
	Node NodeID
	Edge EdgeID
}

// Graph is an immutable undirected graph. Build one with New and AddEdge,
// then call Finalize; generators return finalized graphs.
type Graph struct {
	n     int
	Edges []Edge
	adj   [][]Neighbor
	final bool
}

// New returns an empty graph on n nodes.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Graph{n: n, adj: make([][]Neighbor, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.Edges) }

// AddEdge adds the undirected edge {u, v} with weight w. Self-loops and
// out-of-range endpoints panic: topology construction bugs are programmer
// errors, not runtime conditions. Parallel edges are rejected at Finalize.
func (g *Graph) AddEdge(u, v NodeID, w int64) EdgeID {
	if g.final {
		panic("graph: AddEdge after Finalize")
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	if u < 0 || v < 0 || int(u) >= g.n || int(v) >= g.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.n))
	}
	if u > v {
		u, v = v, u
	}
	id := EdgeID(len(g.Edges))
	g.Edges = append(g.Edges, Edge{U: u, V: v, Weight: w})
	g.adj[u] = append(g.adj[u], Neighbor{Node: v, Edge: id})
	g.adj[v] = append(g.adj[v], Neighbor{Node: u, Edge: id})
	return id
}

// Finalize sorts adjacency lists (determinism) and checks simplicity.
// It returns the graph to allow chaining.
func (g *Graph) Finalize() *Graph {
	if g.final {
		return g
	}
	seen := make(map[[2]NodeID]struct{}, len(g.Edges))
	for _, e := range g.Edges {
		key := [2]NodeID{e.U, e.V}
		if _, dup := seen[key]; dup {
			panic(fmt.Sprintf("graph: parallel edge {%d,%d}", e.U, e.V))
		}
		seen[key] = struct{}{}
	}
	for _, nbrs := range g.adj {
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i].Node < nbrs[j].Node })
	}
	g.final = true
	return g
}

// Neighbors returns the adjacency list of v. The returned slice must not be
// mutated.
func (g *Graph) Neighbors(v NodeID) []Neighbor { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }

// Other returns the endpoint of edge e that is not v.
func (g *Graph) Other(e EdgeID, v NodeID) NodeID {
	ed := g.Edges[e]
	if ed.U == v {
		return ed.V
	}
	if ed.V == v {
		return ed.U
	}
	panic(fmt.Sprintf("graph: node %d not on edge %d", v, e))
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	for _, nb := range g.adj[u] {
		if nb.Node == v {
			return true
		}
	}
	return false
}

// EdgeBetween returns the edge id joining u and v, or -1.
func (g *Graph) EdgeBetween(u, v NodeID) EdgeID {
	for _, nb := range g.adj[u] {
		if nb.Node == v {
			return nb.Edge
		}
	}
	return -1
}

// Connected reports whether the graph is connected (true for n <= 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}
