package bench

import (
	"io"
	"strings"
	"testing"
)

func TestByName(t *testing.T) {
	var sb strings.Builder
	if !ByName(&sb, "E10") {
		t.Fatal("E10 unknown")
	}
	if !strings.Contains(sb.String(), "sparse cover quality") {
		t.Fatalf("unexpected output: %s", sb.String())
	}
	if ByName(io.Discard, "E99") {
		t.Fatal("E99 should be unknown")
	}
}

func TestCheapExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweeps")
	}
	for _, id := range []string{"E7", "E9", "E11", "E12"} {
		if !ByName(io.Discard, id) {
			t.Fatalf("%s missing", id)
		}
	}
}
