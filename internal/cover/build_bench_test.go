package cover

import (
	"testing"

	"repro/internal/graph"
)

// Cover-construction microbenchmarks: cover.Build clones and expands every
// decomposition tree, so it multiplies any per-tree overhead of the
// underlying representation.

func benchCoverBuild(b *testing.B, g *graph.Graph, d int) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(g, d, nil)
	}
}

func BenchmarkCoverGrid10x10D2(b *testing.B) { benchCoverBuild(b, graph.Grid(10, 10), 2) }
func BenchmarkCoverER96D2(b *testing.B)      { benchCoverBuild(b, graph.RandomConnected(96, 250, 33), 2) }
func BenchmarkCoverPath64D4(b *testing.B)    { benchCoverBuild(b, graph.Path(64), 4) }
