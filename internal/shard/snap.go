package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/async"
	"repro/internal/graph"
	"repro/internal/wire"
)

// Distributed snapshot. The coordinator checkpoints at a FLUSH barrier:
// after a window's grants and routed frames have been applied, every
// pending event lives in exactly one shard's queue and no schedule call is
// staged anywhere, so the union of the K engine frames is the complete
// global state (the classic consistent-cut argument, with the barrier
// standing in for marker messages). The OPEN message carries a snapshot
// flag; flagged workers serialize their engine (async.ShardSnapshotFrame)
// and send it back before running the window, and the coordinator seals
// header + K length-prefixed frames into one file.
//
// Resume rebuilds the run from the file alone: the header replays the
// HELLO configuration, and the frames — relocatable by construction — are
// re-split across the resumed partition (async.ResplitEngineFrames), so a
// checkpoint taken at K shards restores at any K′.

// snapHeader is the sealed file's JSON preamble: everything a resumed
// coordinator needs to rebuild workers byte-identically.
type snapHeader struct {
	GraphSpec string
	Adversary string
	Faults    string
	Workload  string
	Sources   []graph.NodeID
	SegWords  int
	KeepTrace bool
	// Shards is K at checkpoint time (the frame count).
	Shards int
	// NextSeq is the coordinator's grant counter at the barrier; the
	// resumed merge loop continues from it.
	NextSeq uint64
	// Steps is the cumulative executed-event count at the barrier
	// (progress reporting; the authoritative counters ride in frame 0).
	Steps uint64
}

// sealShardSnapshot assembles the checkpoint payload:
//
//	u32 header len | header JSON | K × (u32 frame len | frame)
//
// and seals it with the wire container (magic, version, checksum).
func sealShardSnapshot(hdr *snapHeader, frames [][]byte) ([]byte, error) {
	hb, err := json.Marshal(hdr)
	if err != nil {
		return nil, err
	}
	payload := appendU32(nil, uint32(len(hb)))
	payload = append(payload, hb...)
	for _, f := range frames {
		payload = appendU32(payload, uint32(len(f)))
		payload = append(payload, f...)
	}
	return wire.SealSnapshot(payload), nil
}

// openShardSnapshot parses a sealed checkpoint into its header and the
// per-shard engine frames.
func openShardSnapshot(data []byte) (*snapHeader, [][]byte, error) {
	payload, err := wire.OpenSnapshot(data)
	if err != nil {
		return nil, nil, err
	}
	rd := reader{b: payload}
	hb := rd.take(int(rd.u32()))
	if rd.bad {
		return nil, nil, fmt.Errorf("shard: truncated snapshot header")
	}
	var hdr snapHeader
	if err := json.Unmarshal(hb, &hdr); err != nil {
		return nil, nil, fmt.Errorf("shard: bad snapshot header: %v", err)
	}
	if hdr.Shards < 1 {
		return nil, nil, fmt.Errorf("shard: snapshot of %d shards", hdr.Shards)
	}
	frames := make([][]byte, hdr.Shards)
	for i := range frames {
		frames[i] = rd.take(int(rd.u32()))
		if rd.bad {
			return nil, nil, fmt.Errorf("shard: snapshot truncated at frame %d of %d", i, hdr.Shards)
		}
	}
	if err := rd.err("snapshot"); err != nil {
		return nil, nil, err
	}
	return &hdr, frames, nil
}

// writeSnapshotFile seals and atomically replaces path (write-temp-rename,
// so a crash mid-checkpoint never corrupts the previous checkpoint).
func writeSnapshotFile(path string, hdr *snapHeader, frames [][]byte) error {
	data, err := sealShardSnapshot(hdr, frames)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// loadResume reads a checkpoint file and folds its header into cfg: the
// workload identity (graph, adversary, faults, workload, sources, trace
// flag) comes from the file — a resume must continue the checkpointed run,
// not a reconfigured one — while execution choices (Shards, Launch,
// snapshot cadence, ceilings) stay the caller's. The frames are re-split
// for the resumed shard count once the partition is known (coord.run).
func loadResume(cfg Config) (Config, *snapHeader, [][]byte, error) {
	data, err := os.ReadFile(cfg.ResumeFrom)
	if err != nil {
		return cfg, nil, nil, err
	}
	hdr, frames, err := openShardSnapshot(data)
	if err != nil {
		return cfg, nil, nil, fmt.Errorf("shard: %s: %v", filepath.Base(cfg.ResumeFrom), err)
	}
	cfg.GraphSpec = hdr.GraphSpec
	cfg.Adversary = hdr.Adversary
	cfg.Faults = hdr.Faults
	cfg.Workload = hdr.Workload
	cfg.Sources = hdr.Sources
	cfg.SegWords = hdr.SegWords
	cfg.KeepTrace = hdr.KeepTrace
	if hdr.GraphSpec == "" && cfg.Graph == nil {
		return cfg, nil, nil, fmt.Errorf("shard: snapshot carries no graph spec and no pre-built graph was supplied")
	}
	return cfg, hdr, frames, nil
}

// resplitForResume routes the checkpoint's frames onto the resumed
// partition (possibly a different K) via the engine-frame re-splitter.
func resplitForResume(frames [][]byte, part graph.Partition, nextSeq uint64) ([][]byte, error) {
	return async.ResplitEngineFrames(frames, part.K(), part.Owner, nextSeq)
}
