package cover

import (
	"fmt"
	"sort"

	"repro/internal/decomp"
	"repro/internal/graph"
)

// NewExplicit assembles a Cover from hand-built clusters. It is used by
// tests and by the baseline synchronizers (β uses a single BFS-tree
// cluster; γ uses a partition). Home(v) is the first cluster listing v as
// a member; callers are responsible for the covering property if they rely
// on it.
func NewExplicit(n, d int, clusters []*Cluster) *Cover {
	cov := &Cover{
		D:        d,
		Clusters: clusters,
		memberOf: make([][]ClusterID, n),
		treeOf:   make([][]ClusterID, n),
		home:     make([]ClusterID, n),
	}
	for i := range cov.home {
		cov.home[i] = -1
	}
	for i, cl := range clusters {
		if cl.ID != ClusterID(i) {
			panic(fmt.Sprintf("cover: explicit cluster %d has ID %d", i, cl.ID))
		}
		for _, v := range cl.Members {
			cov.memberOf[v] = append(cov.memberOf[v], cl.ID)
			if cov.home[v] < 0 {
				cov.home[v] = cl.ID
			}
		}
		for _, tv := range cl.Tree.Nodes() {
			cov.treeOf[tv] = append(cov.treeOf[tv], cl.ID)
		}
	}
	return cov
}

// BFSTreeCluster builds a single cluster spanning all of g: the BFS tree
// rooted at root. Every node is a member.
func BFSTreeCluster(g *graph.Graph, root graph.NodeID) *Cluster {
	tree := decomp.NewTree(g.N(), root)
	dist := g.BFS(root)
	// Parent = smallest-ID neighbor one level closer.
	order := make([]graph.NodeID, 0, g.N())
	for v := 0; v < g.N(); v++ {
		if dist[v] < 0 {
			panic(fmt.Sprintf("cover: BFSTreeCluster on graph disconnected at %d", v))
		}
		order = append(order, graph.NodeID(v))
	}
	sort.Slice(order, func(i, j int) bool {
		if dist[order[i]] != dist[order[j]] {
			return dist[order[i]] < dist[order[j]]
		}
		return order[i] < order[j]
	})
	members := make([]graph.NodeID, 0, g.N())
	for _, v := range order {
		members = append(members, v)
		if v == root {
			continue
		}
		for _, nb := range g.Neighbors(v) {
			if dist[nb.Node] == dist[v]-1 {
				tree.Attach(v, nb.Node)
				break
			}
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return &Cluster{ID: 0, Root: root, Members: members, Tree: tree.Finalize()}
}

// PathCluster builds one cluster whose tree is the path v0-v1-…-vk rooted
// at v0; all path nodes are members. Test helper for controlled tree
// shapes.
func PathCluster(id ClusterID, nodes []graph.NodeID) *Cluster {
	if len(nodes) == 0 {
		panic("cover: empty PathCluster")
	}
	max := nodes[0]
	for _, v := range nodes {
		if v > max {
			max = v
		}
	}
	tree := decomp.NewTree(int(max)+1, nodes[0])
	for i := 1; i < len(nodes); i++ {
		tree.Attach(nodes[i], nodes[i-1])
	}
	members := append([]graph.NodeID(nil), nodes...)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return &Cluster{ID: id, Root: nodes[0], Members: members, Tree: tree.Finalize()}
}
