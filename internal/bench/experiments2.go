package bench

import (
	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/gather"
	"repro/internal/graph"
	"repro/internal/reg"
	"repro/internal/syncrun"
	"repro/internal/wire"
)

// regClient drives one node for E7: register in all clusters at Start,
// deregister as soon as registered, stop at the Go-Ahead.
type regClient struct {
	mod interface {
		async.Module
		Register(n *async.Node, c cover.ClusterID, session int)
		Deregister(n *async.Node, c cover.ClusterID, session int)
	}
	clusters []cover.ClusterID
}

func (c *regClient) Start(n *async.Node) {
	for _, cid := range c.clusters {
		c.mod.Register(n, cid, 0)
	}
}
func (c *regClient) Recv(*async.Node, graph.NodeID, async.Msg) {}
func (c *regClient) Ack(*async.Node, graph.NodeID, async.Msg)  {}

// Registered implements reg.Callbacks.
func (c *regClient) Registered(n *async.Node, cid cover.ClusterID, s int) {
	c.mod.Deregister(n, cid, s)
}

// GoAhead implements reg.Callbacks.
func (c *regClient) GoAhead(n *async.Node, _ cover.ClusterID, _ int) {
	n.Output(true)
}

// e7RegistrationCongestion reproduces §3.2's core claim: the "natural"
// route-everything-to-the-root registration needs Ω(n) time on a shallow
// tree with many registrants behind one edge, while the wave-based
// algorithm stays proportional to the tree height per operation.
func e7RegistrationCongestion(c *Ctx) {
	t := c.table("star-of-paths: every node registers once; naive funnels Θ(n) messages through the hub")
	t.head("deg", "pathLen", "n", "scheme", "time", "msgs")
	cases := []struct{ deg, plen int }{{4, 8}, {8, 16}, {8, 32}}
	t.emit(c.jobs(len(cases), func(i int) []row {
		tc := cases[i]
		g := graph.StarOfPaths(tc.deg, tc.plen)
		cl := cover.BFSTreeCluster(g, 0)
		cov := cover.NewExplicit(g.N(), g.N(), []*cover.Cluster{cl})
		rows := make([]row, 0, 2)
		// One engine serves both schemes: the second run rearms it with
		// Reset, reusing the event wheel, outboxes, and arena.
		var sim *async.Sim
		for _, scheme := range []string{"wave", "naive"} {
			scheme := scheme
			mk := func(id graph.NodeID) async.Handler {
				client := &regClient{clusters: []cover.ClusterID{0}}
				if scheme == "wave" {
					client.mod = reg.New(1, cov, client, nil)
				} else {
					client.mod = reg.NewNaive(1, cov, client, nil)
				}
				mux := async.NewMux()
				mux.Register(1, client.mod)
				mux.Register(2, client)
				return mux
			}
			if sim == nil {
				sim = async.New(g, async.Fixed{D: 1}, mk).WithMode(c.amode)
			} else {
				sim.Reset(async.Fixed{D: 1}, mk)
			}
			res := sim.Run()
			rows = append(rows, row{
				cols: []any{tc.deg, tc.plen, g.N(), scheme, res.QuiesceTime, res.Msgs},
				rec: Rec{"degree": tc.deg, "pathLen": tc.plen, "n": g.N(), "scheme": scheme,
					"time": res.QuiesceTime, "msgs": res.Msgs},
			})
		}
		return rows
	}))
}

// e8AlphaBlowup isolates Appendix A's α message term M(A) + Θ(T(A)·m):
// a token ping-pong (T = M = rounds) on a dense low-diameter graph.
func e8AlphaBlowup(c *Ctx) {
	t := c.table("ping workload: M(A)=T(A)=n on ER(n, 6n); α pays Θ(T·m), main stays polylog/pulse")
	t.head("n", "m", "M(A)", "alpha-msgs", "main-msgs", "ratio", "alpha-time", "main-time")
	ns := []int{64, 128, 256}
	t.emit(c.jobs(len(ns), func(i int) []row {
		n := ns[i]
		g := graph.RandomConnected(n, 6*n, 5)
		rounds := n
		mk := func(graph.NodeID) syncrun.Handler { return &pingAlgo{rounds: rounds} }
		alpha := core.SynchronizeAlpha(g, rounds+1, async.Fixed{D: 1}, mk)
		main := core.Synchronize(c.coreCfg(g, rounds+1, async.Fixed{D: 1}), mk)
		ratio := float64(alpha.Msgs) / float64(main.Msgs)
		return []row{{
			cols: []any{n, g.M(), rounds, alpha.Msgs, main.Msgs, ratio, alpha.Time, main.Time},
			rec: Rec{"n": n, "m": g.M(), "syncM": rounds, "alphaMsgs": alpha.Msgs,
				"mainMsgs": main.Msgs, "msgRatio": ratio,
				"alphaTime": alpha.Time, "mainTime": main.Time},
		}}
	}))
}

// pingAlgo bounces a token between nodes 0 and 1 (T = M = rounds). The
// counter rides in the body's A word.
type pingAlgo struct{ rounds int }

const kindPing wire.Kind = 1

func (h *pingAlgo) Init(n syncrun.API) {
	if n.ID() == 0 {
		n.Send(1, wire.Body{Kind: kindPing})
	}
}

func (h *pingAlgo) Pulse(n syncrun.API, _ int, recvd []syncrun.Incoming) {
	if len(recvd) == 0 {
		return
	}
	k := int(recvd[0].Body.A)
	if k+1 >= h.rounds {
		n.Output(k)
		return
	}
	n.Send(recvd[0].From, wire.Body{Kind: kindPing, A: int64(k + 1)})
}

// e9AdversaryRobustness runs the synchronized BFS under every standard
// delay adversary: outputs must be identical (determinism of the
// synchronized algorithm, Theorem 5.2); time varies within the bound.
func e9AdversaryRobustness(c *Ctx) {
	t := c.table("synchronized BFS on grid 6x6; outputs must match the lockstep run under every adversary")
	t.head("adversary", "time", "msgs", "outputs-match")
	// The graph, lockstep baseline, and adversary suite are shared across
	// jobs: all deterministic, read-only once built, one adversary per job.
	g := graph.Grid(6, 6)
	mk := bfsMk([]graph.NodeID{0})
	sres := c.runSync(g, mk)
	advs := async.StandardAdversaries(g.N(), c.seedOr(77))
	t.emit(c.jobs(len(advs), func(i int) []row {
		adv := advs[i]
		res := core.Synchronize(c.coreCfg(g, sres.Rounds+2, adv), mk)
		match := len(res.Outputs) == len(sres.Outputs)
		for v, want := range sres.Outputs {
			if res.Outputs[v] != want {
				match = false
			}
		}
		return []row{{
			cols: []any{adv.Name(), res.Time, res.Msgs, match},
			rec:  Rec{"adversary": adv.Name(), "time": res.Time, "msgs": res.Msgs, "outputsMatch": match},
		}}
	}))
}

// e10CoverQuality verifies Theorem 4.21's construction quality empirically:
// tree stretch (depth/d), per-edge tree congestion, per-node membership.
func e10CoverQuality(c *Ctx) {
	t := c.table("bounds: depth = O(d·log³n), congestion = O(log⁴n), membership = O(log n)")
	t.head("graph", "d", "clusters", "maxDepth", "depth/d", "maxCongestion", "maxMembership")
	graphs := []namedGraph{
		{"grid10x10", func() *graph.Graph { return graph.Grid(10, 10) }},
		{"er128", func() *graph.Graph { return graph.RandomConnected(128, 400, 21) }},
	}
	ds := []int{1, 2, 4, 8}
	t.emit(c.jobs(len(graphs)*len(ds), func(i int) []row {
		tc := graphs[i/len(ds)]
		d := ds[i%len(ds)]
		g := tc.mk()
		q := MeasureCoverQuality(g, d)
		return []row{{
			cols: []any{tc.name, d, q.Clusters, q.MaxDepth,
				float64(q.MaxDepth) / float64(d), q.MaxCongestion, q.MaxMembership},
			rec: Rec{"graph": tc.name, "d": d, "clusters": q.Clusters, "maxDepth": q.MaxDepth,
				"depthPerD":     float64(q.MaxDepth) / float64(d),
				"maxCongestion": q.MaxCongestion, "maxMembership": q.MaxMembership},
		}}
	}))
}

// CoverQuality aggregates the E10 empirical metrics of one (graph, d)
// cover build; tests reuse it to assert the Theorem 4.21 bounds.
type CoverQuality struct {
	Clusters      int
	MaxDepth      int
	MaxCongestion int
	MaxMembership int
}

// MeasureCoverQuality builds the sparse d-cover of g and measures the E10
// quality metrics.
func MeasureCoverQuality(g *graph.Graph, d int) CoverQuality {
	cov := cover.Build(g, d, nil)
	q := CoverQuality{Clusters: len(cov.Clusters)}
	cong := map[[2]graph.NodeID]int{}
	for _, cl := range cov.Clusters {
		if dep := cl.Tree.Depth(); dep > q.MaxDepth {
			q.MaxDepth = dep
		}
		for _, e := range cl.Tree.Edges() {
			key := e
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			cong[key]++
		}
	}
	for _, n := range cong {
		if n > q.MaxCongestion {
			q.MaxCongestion = n
		}
	}
	for v := 0; v < g.N(); v++ {
		if len(cov.MemberOf(graph.NodeID(v))) > q.MaxMembership {
			q.MaxMembership = len(cov.MemberOf(graph.NodeID(v)))
		}
	}
	return q
}

// floodK is the E11 workload: node 0 starts k floods (one per proto); every
// node outputs once it has seen all k.
type floodK struct {
	k      int
	staged bool
	seen   map[async.Proto]bool
}

func (h *floodK) Start(n *async.Node) {
	h.seen = make(map[async.Proto]bool)
	if n.ID() != 0 {
		return
	}
	for i := 0; i < h.k; i++ {
		p := async.Proto(10 + i)
		h.seen[p] = true
		stage := 0
		if h.staged {
			stage = i
		}
		for _, nb := range n.Neighbors() {
			n.Send(nb.Node, async.Msg{Proto: p, Stage: stage, Body: wire.Tag(1)})
		}
	}
	if h.k == len(h.seen) && n.ID() == 0 {
		n.Output(true)
	}
}

func (h *floodK) Init(n *async.Node) { h.Start(n) }

func (h *floodK) Recv(n *async.Node, _ graph.NodeID, m async.Msg) {
	if h.seen[m.Proto] {
		return
	}
	h.seen[m.Proto] = true
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, m)
	}
	if len(h.seen) == h.k {
		n.Output(true)
	}
}

func (h *floodK) Ack(*async.Node, graph.NodeID, async.Msg) {}

func (h *floodK) CloneStateInto(dst async.Handler) {
	d := dst.(*floodK)
	d.k = h.k
	d.staged = h.staged
	if d.seen == nil && h.seen != nil {
		d.seen = make(map[async.Proto]bool, len(h.seen))
	}
	clear(d.seen)
	for p := range h.seen {
		d.seen[p] = true
	}
}

// e11StagePipelining measures the composition machinery of §2.2: k
// simultaneous floods share every link of a path. Round-robin multiplexing
// (Cor 2.3) pipelines them in ≈ D + k time rather than k·D; stage
// priorities (Lem 2.5) preserve the same completion bound while strictly
// ordering the flows.
func e11StagePipelining(c *Ctx) {
	t := c.table("k floods over one path: pipelined completion ≈ D+k, far below the naive k·D")
	t.head("k", "D", "scheduling", "time", "time/(D+k)", "k·D")
	ks := []int{1, 2, 4, 8}
	t.emit(c.jobs(len(ks)*2, func(i int) []row {
		k := ks[i/2]
		staged := i%2 == 1
		name := "round-robin"
		if staged {
			name = "staged"
		}
		g := graph.Path(64)
		d := g.Diameter()
		sim := async.New(g, async.Fixed{D: 1}, func(graph.NodeID) async.Handler {
			return &floodK{k: k, staged: staged}
		}).WithMode(c.amode)
		res := sim.Run()
		norm := res.Time / float64(d+k)
		return []row{{
			cols: []any{k, d, name, res.Time, norm, k * d},
			rec: Rec{"k": k, "diameter": d, "scheduling": name, "time": res.Time,
				"timePerDPlusK": norm, "kTimesD": k * d},
		}}
	}))
}

// gatherBench drives one gather session for E12.
type gatherBench struct {
	mod *gather.Module
}

func (c *gatherBench) Start(n *async.Node)                       { c.mod.MarkDone(n, 0) }
func (c *gatherBench) Recv(*async.Node, graph.NodeID, async.Msg) {}
func (c *gatherBench) Ack(*async.Node, graph.NodeID, async.Msg)  {}

// NeighborhoodDone implements gather.Callbacks.
func (c *gatherBench) NeighborhoodDone(n *async.Node, _ int) { n.Output(true) }

// e12GatherCost measures Theorem 3.1: completion detection in a sparse
// d-cover costs O(1) messages per tree edge per cluster and O(d·polylog)
// time.
func e12GatherCost(c *Ctx) {
	t := c.table("msgs vs 2·Σ|tree| budget; time grows with d, not n")
	t.head("graph", "d", "time", "msgs", "budget", "msgs/budget")
	graphs := []namedGraph{
		{"grid8x8", func() *graph.Graph { return graph.Grid(8, 8) }},
		{"er96", func() *graph.Graph { return graph.RandomConnected(96, 250, 33) }},
	}
	ds := []int{1, 2, 4}
	t.emit(c.jobs(len(graphs)*len(ds), func(i int) []row {
		tc := graphs[i/len(ds)]
		d := ds[i%len(ds)]
		g := tc.mk()
		cov := cover.Build(g, d, nil)
		budget := uint64(0)
		for _, cl := range cov.Clusters {
			budget += uint64(2 * cl.Tree.Size())
		}
		sim := async.New(g, c.adv(3), func(id graph.NodeID) async.Handler {
			gb := &gatherBench{}
			gb.mod = gather.New(1, cov, gb, nil)
			mux := async.NewMux()
			mux.Register(1, gb.mod)
			mux.Register(2, gb)
			return mux
		}).WithMode(c.amode)
		res := sim.Run()
		perBudget := float64(res.Msgs) / float64(budget)
		return []row{{
			cols: []any{tc.name, d, res.Time, res.Msgs, budget, perBudget},
			rec: Rec{"graph": tc.name, "d": d, "time": res.Time, "msgs": res.Msgs,
				"budget": budget, "msgsPerBudget": perBudget},
		}}
	}))
}
