package apps_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/syncrun"
)

// boundFor measures the synchronous round count and returns a safe pulse
// bound (the Theorem 5.5 "known T(A)" setting).
func boundFor(g *graph.Graph, mk func(graph.NodeID) syncrun.Handler) (int, syncrun.Result) {
	res := syncrun.New(g, mk).Run()
	return res.Rounds + 2, res
}

// TestCorollary12AsyncBFS: deterministic asynchronous BFS via the
// synchronizer (paper Corollary 1.2).
func TestCorollary12AsyncBFS(t *testing.T) {
	g := graph.Grid(5, 6)
	sources := []graph.NodeID{0}
	mk := func(graph.NodeID) syncrun.Handler { return &apps.BFS{Sources: sources} }
	bound, _ := boundFor(g, mk)
	for _, adv := range async.StandardAdversaries(g.N(), 31) {
		res := core.Synchronize(core.Config{Graph: g, Bound: bound, Adversary: adv}, mk)
		if bad := apps.CheckBFSOutputs(g, sources, res.Outputs); bad >= 0 {
			t.Fatalf("%s: async BFS wrong at node %d", adv.Name(), bad)
		}
	}
}

// TestCorollary12MultiSource: the multi-source extension with
// closest-source trees (Theorem 4.24's statement).
func TestCorollary12MultiSource(t *testing.T) {
	g := graph.RandomConnected(36, 80, 23)
	sources := []graph.NodeID{1, 17, 30}
	mk := func(graph.NodeID) syncrun.Handler { return &apps.BFS{Sources: sources} }
	bound, _ := boundFor(g, mk)
	res := core.Synchronize(core.Config{Graph: g, Bound: bound, Adversary: async.SeededRandom{Seed: 4}}, mk)
	if bad := apps.CheckBFSOutputs(g, sources, res.Outputs); bad >= 0 {
		t.Fatalf("async multi-source BFS wrong at node %d", bad)
	}
}

// TestCorollary13AsyncLeaderElection: deterministic asynchronous leader
// election (paper Corollary 1.3).
func TestCorollary13AsyncLeaderElection(t *testing.T) {
	g := graph.Grid(4, 5)
	d := g.Diameter()
	layered := cover.BuildLayered(g, d, nil)
	spans := apps.LeaderSpansAll(g, layered)
	mk := func(graph.NodeID) syncrun.Handler {
		return &apps.Leader{Covers: layered, SpansAll: spans}
	}
	bound, syncRes := boundFor(g, mk)
	for _, adv := range async.StandardAdversaries(g.N(), 41) {
		res := core.Synchronize(core.Config{Graph: g, Bound: bound, Adversary: adv}, mk)
		if len(res.Outputs) != g.N() {
			t.Fatalf("%s: %d/%d outputs", adv.Name(), len(res.Outputs), g.N())
		}
		for v := 0; v < g.N(); v++ {
			if res.Outputs[graph.NodeID(v)] != graph.NodeID(0) {
				t.Fatalf("%s: node %d elected %v", adv.Name(), v, res.Outputs[graph.NodeID(v)])
			}
		}
	}
	t.Logf("leader election: T(A)=%d M(A)=%d", syncRes.T, syncRes.M)
}

// TestCorollary14AsyncMST: deterministic asynchronous MST (paper
// Corollary 1.4, with the documented Borůvka substitution for Elkin'20).
func TestCorollary14AsyncMST(t *testing.T) {
	g := graph.WithRandomWeights(graph.RandomConnected(24, 60, 3), 9)
	tree := cover.BFSTreeCluster(g, 0)
	weights := make([]int64, g.M())
	for i := range weights {
		weights[i] = g.Weight(graph.EdgeID(i))
	}
	mk := func(graph.NodeID) syncrun.Handler {
		return &apps.MST{Barrier: tree, Weights: weights}
	}
	bound, _ := boundFor(g, mk)
	wantEdges := make(map[[2]graph.NodeID]bool)
	for _, id := range g.KruskalMST() {
		e := g.Edge(id)
		wantEdges[[2]graph.NodeID{e.U, e.V}] = true
	}
	for _, adv := range async.StandardAdversaries(g.N(), 51) {
		res := core.Synchronize(core.Config{Graph: g, Bound: bound, Adversary: adv}, mk)
		got := make(map[[2]graph.NodeID]bool)
		for v := 0; v < g.N(); v++ {
			out, ok := res.Outputs[graph.NodeID(v)]
			if !ok {
				t.Fatalf("%s: node %d missing MST output", adv.Name(), v)
			}
			for _, nb := range out.(apps.MSTResult).TreeNeighbors {
				key := [2]graph.NodeID{graph.NodeID(v), nb}
				if key[0] > key[1] {
					key[0], key[1] = key[1], key[0]
				}
				got[key] = true
			}
		}
		if len(got) != len(wantEdges) {
			t.Fatalf("%s: MST has %d edges, want %d", adv.Name(), len(got), len(wantEdges))
		}
		for e := range wantEdges {
			if !got[e] {
				t.Fatalf("%s: MST missing %v", adv.Name(), e)
			}
		}
	}
}
