package core

import (
	"strings"

	"repro/internal/async"
	"repro/internal/graph"
	"repro/internal/syncrun"
)

// SynchronizeUnknownBound is the Theorem 5.4 setting: no bound on T(A) is
// known. It runs doubling attempts — pulse bounds 8, 16, 32, … — summing
// time and message costs across attempts, until one attempt completes
// within its bound. The paper interleaves cover construction with the
// simulation inside a single execution; this harness restarts instead,
// which Lemma 2.5's sequential-composition argument prices identically up
// to a constant factor (Σ 2^t ≤ 2·2^T; DESIGN.md records the
// substitution). Deterministic algorithms make restarts exact replays, so
// the final outputs are unchanged.
func SynchronizeUnknownBound(g *graph.Graph, adv async.Adversary,
	mk func(id graph.NodeID) syncrun.Handler) (async.Result, int) {
	var total async.Result
	for bound := 8; ; bound *= 2 {
		res, ok := tryBound(g, bound, adv, mk)
		total.Time += res.Time
		total.Msgs += res.Msgs
		total.Acks += res.Acks
		if ok {
			total.QuiesceTime += res.QuiesceTime
			total.Outputs = res.Outputs
			total.PerProto = res.PerProto
			return total, bound
		}
		if bound > 64*g.N() {
			panic("core: unknown-bound doubling ran away")
		}
	}
}

// tryBound attempts one synchronized run; ok=false when the algorithm hit
// the pulse bound (the only recoverable panic; everything else re-panics).
func tryBound(g *graph.Graph, bound int, adv async.Adversary,
	mk func(id graph.NodeID) syncrun.Handler) (res async.Result, ok bool) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		msg, isStr := r.(string)
		if !isStr || !strings.Contains(msg, "bound too small") {
			panic(r)
		}
		// The failed attempt's partial costs are lost with the unwound
		// simulation; the reported totals therefore cover completed
		// attempts only (a lower bound on the Theorem 5.4 cost, tight up
		// to the constant factor Σ2^t ≤ 2·2^T).
		res, ok = async.Result{}, false
	}()
	return Synchronize(Config{Graph: g, Bound: bound, Adversary: adv}, mk), true
}
