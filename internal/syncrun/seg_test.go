package syncrun

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/wire"
)

// segBounce ping-pongs a checksummed variable-length segment for `rounds`
// pulses; each receiver validates the payload inside Pulse (segments are
// recycled when the batch is consumed).
type segBounce struct {
	rounds int
	bad    int
}

func (h *segBounce) send(n API, k int) {
	seg, view := n.Arena().Alloc(3 + k%5)
	for i := range view {
		view[i] = int32(k + i)
	}
	var to graph.NodeID = 1
	if n.ID() == 1 {
		to = 0
	}
	n.Send(to, wire.Body{Kind: 1, A: int64(k), Seg: seg})
}

func (h *segBounce) Init(n API) {
	if n.ID() == 0 {
		h.send(n, 0)
	}
}

func (h *segBounce) Pulse(n API, p int, recvd []Incoming) {
	if len(recvd) == 0 {
		return
	}
	b := recvd[0].Body
	k := int(b.A)
	view := n.Arena().Data(b.Seg)
	if len(view) != 3+k%5 {
		h.bad++
	} else {
		for i, v := range view {
			if v != int32(k+i) {
				h.bad++
				break
			}
		}
	}
	if k+1 >= h.rounds {
		n.Output(k)
		return
	}
	h.send(n, k+1)
}

func TestSegmentTrafficDeliversAndRecycles(t *testing.T) {
	g := graph.Path(2)
	hs := make([]*segBounce, 2)
	r := New(g, func(id graph.NodeID) Handler {
		hs[id] = &segBounce{rounds: 400}
		return hs[id]
	})
	res := r.Run()
	if res.M != 400 {
		t.Fatalf("M = %d, want 400", res.M)
	}
	if hs[0].bad+hs[1].bad != 0 {
		t.Fatalf("%d corrupted segments", hs[0].bad+hs[1].bad)
	}
	carves, recycles := r.arena.Stats()
	if carves > 8 {
		t.Fatalf("arena carved %d segments for serialized traffic; recycling broken (recycled %d)", carves, recycles)
	}
}
