package core

import (
	"fmt"

	"repro/internal/async"
	"repro/internal/graph"
	"repro/internal/pulse"
	"repro/internal/syncrun"
	"repro/internal/wire"
)

// congestStamp enforces the CONGEST one-message-per-neighbor-per-pulse
// contract with a dense per-neighbor-index epoch array instead of a
// per-pulse map: begin() opens a new epoch (one pulse evaluation), mark()
// stamps a neighbor slot and panics on a repeat within the epoch. The
// array is sized to the node's degree once and reused for every pulse.
type congestStamp struct {
	stamp []int32
	epoch int32
}

// begin opens a new epoch for a node of the given degree and returns it.
func (c *congestStamp) begin(deg int) int32 {
	if c.stamp == nil {
		c.stamp = make([]int32, deg)
	}
	c.epoch++
	return c.epoch
}

// mark records a send to `to` in the given epoch. It resolves `to` via the
// graph's sorted adjacency (O(log degree), no hashing) and panics on a
// non-neighbor or a second send to the same neighbor in one epoch.
func (c *congestStamp) mark(n *async.Node, to graph.NodeID, epoch int32, who string) {
	idx := n.NeighborIndex(to)
	if idx < 0 {
		panic(fmt.Sprintf("core: %s node %d sending to non-neighbor %d", who, n.ID(), to))
	}
	if c.stamp[idx] == epoch {
		panic(fmt.Sprintf("core: %s node %d sent twice to %d in one pulse", who, n.ID(), to))
	}
	c.stamp[idx] = epoch
}

// captureAPI adapts the asynchronous node to the synchronous algorithm's
// API. During Init it captures sends into the originator buffer; during
// Pulse it releases them as pulse-tagged algorithm messages.
type captureAPI struct {
	n       *async.Node
	core    *nodeCore
	vn      *vnode // nil while capturing Init
	capture bool
	epoch   int32
}

var _ syncrun.API = (*captureAPI)(nil)

// newAPI binds one pulse evaluation (or the Init capture) of the embedded
// algorithm to a fresh congest epoch.
func (c *nodeCore) newAPI(n *async.Node, vn *vnode, capture bool) *captureAPI {
	return &captureAPI{n: n, core: c, vn: vn, capture: capture, epoch: c.cs.begin(n.Degree())}
}

func (a *captureAPI) ID() graph.NodeID            { return a.n.ID() }
func (a *captureAPI) Neighbors() []graph.Neighbor { return a.n.Neighbors() }
func (a *captureAPI) Degree() int                 { return a.n.Degree() }
func (a *captureAPI) Output(v any)                { a.n.Output(v) }
func (a *captureAPI) OutputBody(b wire.Body)      { a.n.OutputBody(b) }
func (a *captureAPI) HasOutput() bool             { return a.n.HasOutput() }
func (a *captureAPI) Arena() *wire.Arena          { return a.n.Arena() }

func (a *captureAPI) Send(to graph.NodeID, body wire.Body) {
	a.core.cs.mark(a.n, to, a.epoch, "synchronizer")
	if a.capture {
		a.core.initSends = append(a.core.initSends, capturedSend{to: to, body: body})
		return
	}
	a.vn.sentAny = true
	a.core.sendAlgo(a.n, a.vn, to, body)
}

func prevOf(p int) int   { return pulse.Prev(p) }
func prevPrev(p int) int { return pulse.Prev2(p) }
