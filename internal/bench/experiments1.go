package bench

import (
	"repro/internal/abfs"
	"repro/internal/apps"
	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/syncrun"
)

func bfsMk(sources []graph.NodeID) func(graph.NodeID) syncrun.Handler {
	return func(graph.NodeID) syncrun.Handler { return &apps.BFS{Sources: sources} }
}

// namedGraph defers topology construction into the job so parallel trials
// never share a builder.
type namedGraph struct {
	name string
	mk   func() *graph.Graph
}

// e1SynchronizerOverheads compares α, β, γ, and the main synchronizer on
// the same synchronous BFS: time overhead T(A')/T(A) and message overhead
// M(A')/M(A) per Appendix A and Theorem 1.1. Expected shape: α wins time
// and loses messages as T·m grows; β pays Θ(D) time per pulse; the main
// synchronizer keeps both overheads polylogarithmic.
func e1SynchronizerOverheads(c *Ctx) {
	t := c.table("overheads = async/sync; α time ≈ O(1)/pulse, β time ≈ Θ(D)/pulse, main = polylog")
	t.head("graph", "n", "m", "D", "T(A)", "M(A)", "sync", "time-ovh", "msg-ovh")
	graphs := []namedGraph{
		{"cycle64", func() *graph.Graph { return graph.Cycle(64) }},
		{"grid8x8", func() *graph.Graph { return graph.Grid(8, 8) }},
		{"er96", func() *graph.Graph { return graph.RandomConnected(96, 300, 7) }},
	}
	t.emit(c.jobs(len(graphs), func(i int) []row {
		tc := graphs[i]
		g := tc.mk()
		mk := bfsMk([]graph.NodeID{0})
		sres := c.runSync(g, mk)
		bound := sres.Rounds + 2
		adv := c.adv(3)
		runs := []struct {
			name string
			res  async.Result
		}{
			{"alpha", core.SynchronizeAlpha(g, bound, adv, mk)},
			{"beta", core.SynchronizeBeta(g, bound, adv, mk)},
			{"gamma", core.SynchronizeGamma(g, bound, adv, mk)},
			{"main", core.Synchronize(c.coreCfg(g, bound, adv), mk)},
		}
		rows := make([]row, 0, len(runs))
		for _, r := range runs {
			timeOvh := r.res.Time / float64(sres.T)
			msgOvh := float64(r.res.Msgs) / float64(sres.M)
			rows = append(rows, row{
				cols: []any{tc.name, g.N(), g.M(), g.Diameter(), sres.T, sres.M, r.name, timeOvh, msgOvh},
				rec: Rec{"graph": tc.name, "n": g.N(), "m": g.M(), "diameter": g.Diameter(),
					"syncT": sres.T, "syncM": sres.M, "synchronizer": r.name,
					"time": r.res.Time, "msgs": r.res.Msgs,
					"timeOverhead": timeOvh, "msgOverhead": msgOvh},
			})
		}
		return rows
	}))
}

// e2BFSTimeVsD measures the complete asynchronous BFS (Theorem 4.23):
// time should scale near-linearly in D (polylog factors on top).
func e2BFSTimeVsD(c *Ctx) {
	t := c.table("time/D should stay within polylog factors as D doubles")
	t.head("graph", "n", "m", "D", "iters", "time", "time/D", "msgs")
	cases := []namedGraph{
		{"cycle32", func() *graph.Graph { return graph.Cycle(32) }},
		{"cycle64", func() *graph.Graph { return graph.Cycle(64) }},
		{"cycle128", func() *graph.Graph { return graph.Cycle(128) }},
		{"grid6x6", func() *graph.Graph { return graph.Grid(6, 6) }},
		{"grid8x12", func() *graph.Graph { return graph.Grid(8, 12) }},
	}
	t.emit(c.jobs(len(cases), func(i int) []row {
		tc := cases[i]
		g := tc.mk()
		res := abfs.FullMode(g, []graph.NodeID{0}, c.adv(5), c.amode)
		d := g.Diameter()
		perD := res.Time / float64(d)
		return []row{{
			cols: []any{tc.name, g.N(), g.M(), d, res.Iterations, res.Time, perD, res.Msgs},
			rec: Rec{"graph": tc.name, "n": g.N(), "m": g.M(), "diameter": d,
				"iterations": res.Iterations, "time": res.Time, "timePerD": perD, "msgs": res.Msgs},
		}}
	}))
}

// e3BFSMessagesVsM fixes n and sweeps m: messages should scale near-
// linearly in m (Theorem 4.23's Õ(m)).
func e3BFSMessagesVsM(c *Ctx) {
	t := c.table("msgs/m should stay within polylog factors as m grows")
	t.head("n", "m", "D", "time", "msgs", "msgs/m")
	const n = 96
	ms := []int{150, 300, 600, 1200}
	t.emit(c.jobs(len(ms), func(i int) []row {
		g := graph.RandomConnected(n, ms[i], 11)
		res := abfs.FullMode(g, []graph.NodeID{0}, c.adv(5), c.amode)
		perM := float64(res.Msgs) / float64(g.M())
		return []row{{
			cols: []any{n, g.M(), g.Diameter(), res.Time, res.Msgs, perM},
			rec: Rec{"n": n, "m": g.M(), "diameter": g.Diameter(),
				"time": res.Time, "msgs": res.Msgs, "msgsPerM": perM},
		}}
	}))
}

// e4MultiSourceD1 shows Theorem 4.24: multi-source BFS terminates in time
// governed by D1 (max distance to the closest source), not the diameter.
func e4MultiSourceD1(c *Ctx) {
	t := c.table("with more sources D1 shrinks and so should the time, at fixed D")
	t.head("sources", "D", "D1", "iters", "time", "time/D1", "msgs")
	sets := [][]graph.NodeID{
		{0},
		{0, 99},
		{0, 9, 90, 99},
		{0, 9, 90, 99, 44, 45, 54, 55},
	}
	t.emit(c.jobs(len(sets), func(i int) []row {
		sources := sets[i]
		g := graph.Grid(10, 10)
		d := g.Diameter()
		d1 := g.BallRadius(sources)
		res := abfs.FullMode(g, sources, c.adv(9), c.amode)
		perD1 := res.Time / float64(d1)
		return []row{{
			cols: []any{len(sources), d, d1, res.Iterations, res.Time, perD1, res.Msgs},
			rec: Rec{"sources": len(sources), "diameter": d, "d1": d1,
				"iterations": res.Iterations, "time": res.Time, "timePerD1": perD1, "msgs": res.Msgs},
		}}
	}))
}

// e5LeaderElection measures Corollary 1.3: deterministic asynchronous
// leader election in Õ(D) time and Õ(m) messages.
func e5LeaderElection(c *Ctx) {
	t := c.table("time/D and msgs/m should stay within polylog factors")
	t.head("graph", "n", "m", "D", "T(A)", "M(A)", "time", "time/D", "msgs", "msgs/m")
	cases := []namedGraph{
		{"cycle32", func() *graph.Graph { return graph.Cycle(32) }},
		{"cycle64", func() *graph.Graph { return graph.Cycle(64) }},
		{"grid6x6", func() *graph.Graph { return graph.Grid(6, 6) }},
		{"grid8x8", func() *graph.Graph { return graph.Grid(8, 8) }},
		{"er64", func() *graph.Graph { return graph.RandomConnected(64, 200, 13) }},
	}
	t.emit(c.jobs(len(cases), func(i int) []row {
		tc := cases[i]
		g := tc.mk()
		d := g.Diameter()
		layered := cover.BuildLayered(g, d, nil)
		spans := apps.LeaderSpansAll(g, layered)
		mk := func(graph.NodeID) syncrun.Handler {
			return &apps.Leader{Covers: layered, SpansAll: spans}
		}
		sres := c.runSync(g, mk)
		res := core.Synchronize(c.coreCfg(g, sres.Rounds+2, c.adv(17)), mk)
		perD := res.Time / float64(d)
		perM := float64(res.Msgs) / float64(g.M())
		return []row{{
			cols: []any{tc.name, g.N(), g.M(), d, sres.T, sres.M, res.Time, perD, res.Msgs, perM},
			rec: Rec{"graph": tc.name, "n": g.N(), "m": g.M(), "diameter": d,
				"syncT": sres.T, "syncM": sres.M, "time": res.Time, "timePerD": perD,
				"msgs": res.Msgs, "msgsPerM": perM},
		}}
	}))
}

// e6MST measures Corollary 1.4 (with the documented Borůvka substitution):
// asynchronous deterministic MST with Õ(m) messages.
func e6MST(c *Ctx) {
	t := c.table("msgs/m should stay within polylog factors; MST verified against Kruskal")
	t.head("graph", "n", "m", "T(A)", "M(A)", "time", "msgs", "msgs/m", "correct")
	cases := []namedGraph{
		{"er24", func() *graph.Graph { return graph.WithRandomWeights(graph.RandomConnected(24, 70, 3), 5) }},
		{"er48", func() *graph.Graph { return graph.WithRandomWeights(graph.RandomConnected(48, 150, 3), 5) }},
		{"grid6x6", func() *graph.Graph { return graph.WithRandomWeights(graph.Grid(6, 6), 5) }},
	}
	t.emit(c.jobs(len(cases), func(i int) []row {
		tc := cases[i]
		g := tc.mk()
		tree := cover.BFSTreeCluster(g, 0)
		weights := make([]int64, g.M())
		for j := range weights {
			weights[j] = g.Weight(graph.EdgeID(j))
		}
		mk := func(graph.NodeID) syncrun.Handler {
			return &apps.MST{Barrier: tree, Weights: weights}
		}
		sres := c.runSync(g, mk)
		res := core.Synchronize(c.coreCfg(g, sres.Rounds+2, c.adv(19)), mk)
		perM := float64(res.Msgs) / float64(g.M())
		correct := mstCorrect(g, res.Outputs)
		return []row{{
			cols: []any{tc.name, g.N(), g.M(), sres.T, sres.M, res.Time, res.Msgs, perM, correct},
			rec: Rec{"graph": tc.name, "n": g.N(), "m": g.M(), "syncT": sres.T, "syncM": sres.M,
				"time": res.Time, "msgs": res.Msgs, "msgsPerM": perM, "correct": correct},
		}}
	}))
}

func mstCorrect(g *graph.Graph, outputs map[graph.NodeID]any) bool {
	want := make(map[[2]graph.NodeID]bool)
	for _, id := range g.KruskalMST() {
		want[[2]graph.NodeID{g.EdgeU(id), g.EdgeV(id)}] = true
	}
	got := make(map[[2]graph.NodeID]bool)
	for v := 0; v < g.N(); v++ {
		out, ok := outputs[graph.NodeID(v)]
		if !ok {
			return false
		}
		res, ok := out.(apps.MSTResult)
		if !ok {
			return false
		}
		for _, nb := range res.TreeNeighbors {
			key := [2]graph.NodeID{graph.NodeID(v), nb}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			got[key] = true
		}
	}
	if len(got) != len(want) {
		return false
	}
	for e := range want {
		if !got[e] {
			return false
		}
	}
	return true
}
