package shard

import (
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/async"
	"repro/internal/graph"
)

func TestMain(m *testing.M) {
	// Process-launch tests re-exec this test binary as their workers;
	// MaybeWorker turns those children into shard workers and never
	// returns in them.
	MaybeWorker()
	os.Exit(m.Run())
}

// serialRun executes cfg's workload through the single-process serial
// engine — the byte-identity reference every sharded run is held to.
func serialRun(t testing.TB, cfg Config) async.Result {
	t.Helper()
	g, err := graph.FromSpec(cfg.GraphSpec)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := ParseAdversary(cfg.Adversary)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := async.ParseFaultSpec(cfg.Faults)
	if err != nil {
		t.Fatal(err)
	}
	adv = async.WithFaults(adv, fs)
	mk, err := NewWorkload(cfg.Workload, WorkloadConfig{Sources: cfg.Sources, SegWords: cfg.SegWords})
	if err != nil {
		t.Fatal(err)
	}
	sim := async.New(g, adv, mk).WithMode(async.ModeSingle)
	if cfg.KeepTrace {
		sim.KeepTrace()
	}
	return sim.Run()
}

// compareResults diffs field by field so a mismatch names what diverged
// instead of dumping two multi-screen structs.
func compareResults(t *testing.T, got, want async.Result) {
	t.Helper()
	if got.Time != want.Time {
		t.Errorf("Time = %v, want %v", got.Time, want.Time)
	}
	if got.QuiesceTime != want.QuiesceTime {
		t.Errorf("QuiesceTime = %v, want %v", got.QuiesceTime, want.QuiesceTime)
	}
	if got.Msgs != want.Msgs {
		t.Errorf("Msgs = %d, want %d", got.Msgs, want.Msgs)
	}
	if got.Acks != want.Acks {
		t.Errorf("Acks = %d, want %d", got.Acks, want.Acks)
	}
	if got.Dropped != want.Dropped || got.Retrans != want.Retrans || got.Undeliverable != want.Undeliverable {
		t.Errorf("fault counters = %d/%d/%d, want %d/%d/%d (dropped/retrans/undeliverable)",
			got.Dropped, got.Retrans, got.Undeliverable,
			want.Dropped, want.Retrans, want.Undeliverable)
	}
	if !reflect.DeepEqual(got.PerProto, want.PerProto) {
		t.Errorf("PerProto = %v, want %v", got.PerProto, want.PerProto)
	}
	if !reflect.DeepEqual(got.Outputs, want.Outputs) {
		t.Errorf("Outputs diverge: %d entries vs %d", len(got.Outputs), len(want.Outputs))
		for id, w := range want.Outputs {
			if g, ok := got.Outputs[id]; !ok || !reflect.DeepEqual(g, w) {
				t.Errorf("  node %d: got %v (%T), want %v (%T)", id, g, g, w, w)
			}
		}
		for id := range got.Outputs {
			if _, ok := want.Outputs[id]; !ok {
				t.Errorf("  node %d: extra output %v", id, got.Outputs[id])
			}
		}
	}
	if len(got.Trace) != len(want.Trace) {
		t.Fatalf("Trace length %d, want %d", len(got.Trace), len(want.Trace))
	}
	for i := range want.Trace {
		if !reflect.DeepEqual(got.Trace[i], want.Trace[i]) {
			t.Fatalf("Trace[%d] = %+v, want %+v", i, got.Trace[i], want.Trace[i])
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("results differ outside the named fields: %+v vs %+v", got, want)
	}
}

// TestShardMatrix is the byte-identity matrix: adversaries × graphs ×
// seeds × shard counts, every sharded run (in-process workers over real
// unix sockets) compared DeepEqual — outputs, counters, PerProto, and the
// full delivery trace — against the serial engine.
func TestShardMatrix(t *testing.T) {
	graphs := []struct {
		spec string
		n    int
	}{
		{"grid3d:5x5x5", 125},
		{"grid:10x10", 100},
		{"pa:n=200,m=2,seed=5", 200},
		{"ring:k=8,c=4", 32},
	}
	advs := []string{"fixed:0.5", "skew:cut=60,fast=0.25", "random:%d", "flaky:%d", "edge:%d"}
	seeds := []uint64{3, 17}
	for _, gr := range graphs {
		for _, advT := range advs {
			for _, seed := range seeds {
				adv := advT
				if strings.Contains(advT, "%d") {
					adv = fmt.Sprintf(advT, seed)
				}
				// The seed also varies the source set, so the unseeded
				// adversaries get two distinct runs too.
				sources := []graph.NodeID{0}
				if seed == 17 {
					sources = []graph.NodeID{0, graph.NodeID(gr.n - 1)}
				}
				cfg := Config{
					GraphSpec: gr.spec,
					Workload:  "flood",
					Adversary: adv,
					Sources:   sources,
					KeepTrace: true,
				}
				want := serialRun(t, cfg)
				for _, k := range []int{1, 2, 4} {
					cfg := cfg
					cfg.Shards = k
					t.Run(fmt.Sprintf("%s/%s/seed=%d/k=%d", gr.spec, adv, seed, k), func(t *testing.T) {
						rep, err := Run(cfg)
						if err != nil {
							t.Fatal(err)
						}
						compareResults(t, rep.Result, want)
						if rep.Stats.Shards != k {
							t.Errorf("Stats.Shards = %d, want %d", rep.Stats.Shards, k)
						}
						if k > 1 && rep.Stats.Frames == 0 {
							t.Errorf("no cross-shard frames on a %d-way run", k)
						}
					})
				}
			}
		}
	}
}

// TestShardBFS covers the monotone-relaxation workload, whose nodes
// output repeatedly (only the final value survives) and whose message
// volume depends on delivery order — still byte-identical when sharded.
func TestShardBFS(t *testing.T) {
	for _, spec := range []string{"grid3d:5x5x5", "pa:n=200,m=2,seed=5"} {
		cfg := Config{
			GraphSpec: spec,
			Workload:  "bfs",
			Adversary: "random:9",
			KeepTrace: true,
		}
		want := serialRun(t, cfg)
		for _, k := range []int{2, 4} {
			cfg := cfg
			cfg.Shards = k
			t.Run(fmt.Sprintf("%s/k=%d", spec, k), func(t *testing.T) {
				rep, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				compareResults(t, rep.Result, want)
			})
		}
	}
}

// TestShardSegTransport pushes arena segments across shard boundaries:
// every message carries a pattern-filled segment that the receiver
// verifies word-for-word inside the delivery callback, so any re-homing
// bug panics the worker. Traces are excluded (segment handles are
// arena-local, the documented caveat); everything else must match, and
// Run itself fails if any worker's arena has live segments at the end.
func TestShardSegTransport(t *testing.T) {
	cases := []struct {
		spec  string
		words int
	}{
		{"grid:8x8", 96},
		{"grid3d:4x4x4", 7},
		// One segment spanning multiple arena chunks (chunk = 1<<16 words).
		{"cycle:6", 70000},
	}
	for _, c := range cases {
		cfg := Config{
			GraphSpec: c.spec,
			Workload:  "segflood",
			Adversary: "random:5",
			SegWords:  c.words,
		}
		want := serialRun(t, cfg)
		for _, k := range []int{2, 4} {
			cfg := cfg
			cfg.Shards = k
			t.Run(fmt.Sprintf("%s/words=%d/k=%d", c.spec, c.words, k), func(t *testing.T) {
				rep, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				compareResults(t, rep.Result, want)
			})
		}
	}
}

// TestShardProcess runs real worker processes (re-execs of this test
// binary) end to end, including the settled-heap self-reports and the
// per-process ceiling check.
func TestShardProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	cfg := Config{
		GraphSpec: "grid3d:6x6x6",
		Workload:  "flood",
		Adversary: "fixed:0.5",
		Shards:    2,
		KeepTrace: true,
		Launch:    LaunchProcess,
		CeilingMB: 1024,
	}
	want := serialRun(t, cfg)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, rep.Result, want)
	if rep.Stats.Windows == 0 || rep.Stats.StartupNs <= 0 {
		t.Errorf("implausible stats: %+v", rep.Stats)
	}
	for i, si := range rep.Shards {
		if si.GraphBytes <= 0 || si.Nodes <= 0 {
			t.Errorf("shard %d self-report implausible: %+v", i, si)
		}
		if si.HeapMB <= 0 {
			t.Errorf("shard %d reported no settled heap (process workers must probe)", i)
		}
	}
}

// TestShardConfigErrors pins the sanity checks that run before any
// process is spawned.
func TestShardConfigErrors(t *testing.T) {
	base := Config{GraphSpec: "grid:4x4", Workload: "flood", Adversary: "fixed:0.5"}
	for name, mutate := range map[string]func(*Config){
		"no graph":        func(c *Config) { c.GraphSpec = "" },
		"bad spec":        func(c *Config) { c.GraphSpec = "nope:3" },
		"bad workload":    func(c *Config) { c.Workload = "nope" },
		"bad adversary":   func(c *Config) { c.Adversary = "nope:1" },
		"negative shards": func(c *Config) { c.Shards = -1 },
		"process w/o spec": func(c *Config) {
			c.GraphSpec = ""
			g, _ := graph.FromSpec("grid:4x4")
			c.Graph = g
			c.Launch = LaunchProcess
		},
	} {
		t.Run(name, func(t *testing.T) {
			cfg := base
			mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

// TestShardAuto exercises the Shards=0 path (execpolicy.AutoShards keeps
// small graphs unsharded) and oversized K (clamped to n).
func TestShardAuto(t *testing.T) {
	cfg := Config{GraphSpec: "grid:6x6", Workload: "flood", Adversary: "fixed:0.5", KeepTrace: true}
	want := serialRun(t, cfg)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Shards != 1 {
		t.Errorf("auto sharded a %d-link toy graph %d ways", 36, rep.Stats.Shards)
	}
	compareResults(t, rep.Result, want)

	cfg.GraphSpec = "cycle:5"
	cfg.Shards = 64
	want = serialRun(t, cfg)
	rep, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Shards > 5 {
		t.Errorf("K=%d exceeds the 5-node graph", rep.Stats.Shards)
	}
	compareResults(t, rep.Result, want)
}

// TestShardFaultMatrix extends the byte-identity matrix to the fault
// plane: fault schedules × graphs × shard counts, every sharded run
// compared field-for-field (counters, outputs, full trace including
// Undeliverable entries) against the serial engine with the identical
// schedule. Fault decisions are pure functions of (seed, endpoints,
// txSeq, epoch), so shard boundaries must not shift a single drop.
func TestShardFaultMatrix(t *testing.T) {
	faults := []string{
		"drop:p=0.1,budget=3,seed=5",
		"drop:p=0.3,budget=0,seed=9",
		"crash:p=0.02,drop:p=0.05,budget=2,seed=7",
		"link:p=0.05,budget=2,seed=11",
	}
	graphs := []string{"grid:10x10", "pa:n=150,m=2,seed=5", "ring:k=8,c=4"}
	for _, spec := range faults {
		for _, gr := range graphs {
			cfg := Config{
				GraphSpec: gr,
				Workload:  "flood",
				Adversary: "random:13",
				Faults:    spec,
				KeepTrace: true,
			}
			want := serialRun(t, cfg)
			for _, k := range []int{1, 2, 4} {
				cfg := cfg
				cfg.Shards = k
				t.Run(fmt.Sprintf("%s/%s/k=%d", gr, spec, k), func(t *testing.T) {
					rep, err := Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					compareResults(t, rep.Result, want)
					if rep.Result.Dropped != rep.Result.Retrans+rep.Result.Undeliverable {
						t.Errorf("dropped %d != retrans %d + undeliverable %d",
							rep.Result.Dropped, rep.Result.Retrans, rep.Result.Undeliverable)
					}
				})
			}
			if want.Dropped == 0 {
				t.Errorf("%s on %s dropped nothing — matrix row is vacuous", spec, gr)
			}
		}
	}
}

// TestShardFaultProcess is the end-to-end cross-process check: real
// worker processes under a combined crash+drop schedule, byte-identical
// to serial. The fault counters and trace Kind bytes travel the RESULT
// wire protocol, so this also pins their serialization.
func TestShardFaultProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	cfg := Config{
		GraphSpec: "grid3d:5x5x5",
		Workload:  "flood",
		Adversary: "skew:cut=60,fast=0.25",
		Faults:    "crash:p=0.01,drop:p=0.1,budget=2,seed=3",
		Shards:    2,
		KeepTrace: true,
		Launch:    LaunchProcess,
		CeilingMB: 1024,
	}
	want := serialRun(t, cfg)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, rep.Result, want)
	if want.Dropped == 0 {
		t.Error("process fault run dropped nothing — check the schedule")
	}
}

// TestShardFaultConfigError pins Run's early validation of the fault
// spec string.
func TestShardFaultConfigError(t *testing.T) {
	cfg := Config{GraphSpec: "grid:4x4", Workload: "flood", Adversary: "fixed:0.5", Faults: "drop:p=2"}
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid fault spec accepted")
	}
}
